// Memory allocators backing tensor storage.
//
// Two strategies, mirroring the paper's §4.3 memory-planning study:
//  - NaiveAllocator: one malloc/free per request (what an eager framework
//    effectively does per operator output).
//  - PoolingAllocator: size-bucketed free lists that recycle storage blocks,
//    used by the VM for dynamically-sized allocations; combined with the
//    static storage-coalescing pass this reproduces the reported reductions
//    in allocation count and latency.
//
// Thread-safety contract (serving subsystem, src/serve/):
//   All Allocator implementations are safe for concurrent Alloc/Free from
//   multiple threads. Free-list bookkeeping is serialized by an internal
//   mutex; statistics are NOT behind it — counters shard across
//   cache-line-padded per-thread cells (obs::Counter, the same 16-cell
//   design as the metrics plane) and live/peak are a relaxed atomic pair,
//   so accounting never adds contention to the allocation hot path and
//   stats() may be scraped concurrently from any thread. Buffers may be
//   allocated on one thread and released on another (the refcounted Buffer
//   calls back into its source allocator from whichever thread drops the
//   last reference). The serving VMPool still gives each worker VM its
//   *own* PoolingAllocator so the free-list mutex is uncontended and each
//   worker's lists stay warm with the bucket sizes it serves.
//
// Observability: every PoolingAllocator additionally records its pool
// events (hit/miss/refill/free) into the process-global ledger exported at
// /metrics as nimble_pool_events_total{event=...}; per-allocator breakdowns
// (per worker, per model) are sampled from stats()/PoolClasses() by
// serve::Server::MemoryScopes for GET /debug/memory. See src/obs/memory.h.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/memory.h"
#include "src/obs/metrics.h"
#include "src/runtime/device.h"

namespace nimble {
namespace runtime {

/// A raw storage block. Refcounted via shared_ptr; freed back to its
/// allocator on destruction.
class Allocator;

struct Buffer {
  void* data = nullptr;
  size_t size = 0;
  Device device;
  Allocator* source = nullptr;

  ~Buffer();
};

/// Statistics used by tests, the memory-planning benchmark, and the
/// /debug/memory exporter. A stats() snapshot merges the sharded counters;
/// it is monotone but may miss increments in flight during the merge —
/// exactly the consistency a scrape expects. live/peak are exact (single
/// atomic pair, not sharded: peak = max-over-time of live needs the true
/// running sum, and each serving allocator is effectively single-writer).
struct AllocStats {
  int64_t alloc_calls = 0;     // requests served
  int64_t system_allocs = 0;   // requests that hit the OS allocator
  int64_t bytes_allocated = 0; // cumulative bytes of blocks handed out
                               // (bucket/alignment-padded — same base as
                               // bytes_freed and live_bytes, so
                               // allocated == freed + live exactly)
  int64_t peak_bytes = 0;      // high-water mark of live bytes
  int64_t live_bytes = 0;
  int64_t free_calls = 0;      // buffers released back to the allocator
  int64_t bytes_freed = 0;     // cumulative bytes of those buffers
  int64_t pool_hits = 0;       // allocs served from a free list
  int64_t pool_refills = 0;    // frees that returned a block to a free list
  int64_t pool_frees = 0;      // blocks released to the OS (cap or Trim)
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Allocates a block of at least `size` bytes aligned to `alignment`.
  virtual std::shared_ptr<Buffer> Alloc(size_t size, size_t alignment,
                                        Device device) = 0;

  /// Called by ~Buffer. Default releases to the OS.
  virtual void Free(Buffer* buffer);

  /// Merged snapshot of the sharded counters (minus the ResetStats
  /// baseline) plus the exact live/peak pair. Lock-free on the counters;
  /// takes the mutex only to read the baseline consistently.
  AllocStats stats() const;

  /// Re-baselines every counter to zero and clears live/peak. Intended for
  /// benchmarks measuring deltas across phases; counters keep accumulating
  /// underneath (the sharded cells cannot be zeroed while other threads
  /// record), stats() simply subtracts the snapshot taken here.
  void ResetStats();

 protected:
  /// Sharded counter slots backing AllocStats (minus live/peak).
  enum CounterId {
    kAllocCalls = 0,
    kSystemAllocs,
    kBytesAllocated,
    kFreeCalls,
    kBytesFreed,
    kPoolHits,
    kPoolRefills,
    kPoolFrees,
    kNumCounters,
  };
  /// One relaxed add on the calling thread's cell.
  void Count(CounterId id, int64_t delta = 1) {
    counters_[id].Increment(delta);
  }
  /// live += bytes, folding the new value into peak (relaxed CAS loop).
  void AddLive(int64_t bytes);
  void SubLive(int64_t bytes) {
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// SystemAlloc/SystemFree hit the OS allocator; they update only the
  /// sharded counters, so they need no lock.
  std::shared_ptr<Buffer> SystemAlloc(size_t size, size_t alignment, Device device);
  void SystemFree(Buffer* buffer);

  /// Serializes free-list bookkeeping (PoolingAllocator) and the
  /// ResetStats baseline. No longer guards counters.
  mutable std::mutex mu_;

 private:
  obs::Counter counters_[kNumCounters];
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  /// Raw counter values at the last ResetStats (guarded by mu_).
  int64_t baseline_[kNumCounters] = {};
};

/// malloc/free per request.
class NaiveAllocator : public Allocator {
 public:
  std::shared_ptr<Buffer> Alloc(size_t size, size_t alignment, Device device) override;
};

/// Size-bucketed recycling pool. Blocks are rounded up to the next power of
/// two and returned to per-(device,size) free lists instead of the OS.
/// Safe for concurrent use; see the thread-safety contract above.
class PoolingAllocator : public Allocator {
 public:
  explicit PoolingAllocator(size_t max_cached_bytes = 1ull << 30)
      : max_cached_bytes_(max_cached_bytes) {}
  ~PoolingAllocator() override;

  std::shared_ptr<Buffer> Alloc(size_t size, size_t alignment, Device device) override;
  void Free(Buffer* buffer) override;

  /// Releases every cached block back to the OS. Thread-safe (takes the
  /// allocator mutex); safe while other threads allocate, though it only
  /// trims what is free at that instant.
  void Trim();

  size_t cached_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cached_bytes_;
  }

  /// Free-list occupancy per bucket size (merged across devices), for the
  /// /debug/memory per-size-class table. Takes the allocator mutex.
  std::vector<obs::PoolClassOccupancy> PoolClasses() const;

 private:
  struct Key {
    DeviceType type;
    int id;
    size_t size;
    bool operator<(const Key& o) const {
      if (type != o.type) return type < o.type;
      if (id != o.id) return id < o.id;
      return size < o.size;
    }
  };
  std::map<Key, std::vector<void*>> pool_;
  size_t cached_bytes_ = 0;
  size_t max_cached_bytes_;
};

/// Process-wide default allocators, never destroyed. A VirtualMachine
/// constructed without an explicit allocator uses the pooling one; serving
/// pool workers instead lease *private* PoolingAllocators (see
/// src/serve/vm_pool.h) so their hot paths never contend on these.
NaiveAllocator* GlobalNaiveAllocator();
PoolingAllocator* GlobalPoolingAllocator();

}  // namespace runtime
}  // namespace nimble
