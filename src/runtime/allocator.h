// Memory allocators backing tensor storage.
//
// Two strategies, mirroring the paper's §4.3 memory-planning study:
//  - NaiveAllocator: one malloc/free per request (what an eager framework
//    effectively does per operator output).
//  - PoolingAllocator: size-bucketed free lists that recycle storage blocks,
//    used by the VM for dynamically-sized allocations; combined with the
//    static storage-coalescing pass this reproduces the reported reductions
//    in allocation count and latency.
//
// Thread-safety contract (serving subsystem, src/serve/):
//   All Allocator implementations are safe for concurrent Alloc/Free from
//   multiple threads — a single internal mutex serializes free-list and
//   statistics bookkeeping. Buffers may be allocated on one thread and
//   released on another (the refcounted Buffer calls back into its source
//   allocator from whichever thread drops the last reference).
//   The mutex makes correctness unconditional, but the serving VMPool still
//   gives each worker VM its *own* PoolingAllocator so the hot allocation
//   path is uncontended and each worker's free lists stay warm with the
//   bucket sizes of the sequence lengths it serves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/runtime/device.h"

namespace nimble {
namespace runtime {

/// A raw storage block. Refcounted via shared_ptr; freed back to its
/// allocator on destruction.
class Allocator;

struct Buffer {
  void* data = nullptr;
  size_t size = 0;
  Device device;
  Allocator* source = nullptr;

  ~Buffer();
};

/// Statistics used by tests and the memory-planning benchmark.
struct AllocStats {
  int64_t alloc_calls = 0;     // requests served
  int64_t system_allocs = 0;   // requests that hit the OS allocator
  int64_t bytes_allocated = 0; // cumulative bytes requested
  int64_t peak_bytes = 0;      // high-water mark of live bytes
  int64_t live_bytes = 0;
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Allocates a block of at least `size` bytes aligned to `alignment`.
  virtual std::shared_ptr<Buffer> Alloc(size_t size, size_t alignment,
                                        Device device) = 0;

  /// Called by ~Buffer. Default releases to the OS.
  virtual void Free(Buffer* buffer);

  /// Snapshot of the counters (copied under the lock).
  AllocStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = AllocStats{};
  }

 protected:
  /// SystemAlloc/SystemFree update stats and must be called with mu_ held.
  std::shared_ptr<Buffer> SystemAlloc(size_t size, size_t alignment, Device device);
  void SystemFree(Buffer* buffer);
  mutable std::mutex mu_;
  AllocStats stats_;
};

/// malloc/free per request.
class NaiveAllocator : public Allocator {
 public:
  std::shared_ptr<Buffer> Alloc(size_t size, size_t alignment, Device device) override;
};

/// Size-bucketed recycling pool. Blocks are rounded up to the next power of
/// two and returned to per-(device,size) free lists instead of the OS.
/// Safe for concurrent use; see the thread-safety contract above.
class PoolingAllocator : public Allocator {
 public:
  explicit PoolingAllocator(size_t max_cached_bytes = 1ull << 30)
      : max_cached_bytes_(max_cached_bytes) {}
  ~PoolingAllocator() override;

  std::shared_ptr<Buffer> Alloc(size_t size, size_t alignment, Device device) override;
  void Free(Buffer* buffer) override;

  /// Releases every cached block back to the OS. Thread-safe (takes the
  /// allocator mutex); safe while other threads allocate, though it only
  /// trims what is free at that instant.
  void Trim();

  size_t cached_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cached_bytes_;
  }

 private:
  struct Key {
    DeviceType type;
    int id;
    size_t size;
    bool operator<(const Key& o) const {
      if (type != o.type) return type < o.type;
      if (id != o.id) return id < o.id;
      return size < o.size;
    }
  };
  std::map<Key, std::vector<void*>> pool_;
  size_t cached_bytes_ = 0;
  size_t max_cached_bytes_;
};

/// Process-wide default allocators, never destroyed. A VirtualMachine
/// constructed without an explicit allocator uses the pooling one; serving
/// pool workers instead lease *private* PoolingAllocators (see
/// src/serve/vm_pool.h) so their hot paths never contend on these.
NaiveAllocator* GlobalNaiveAllocator();
PoolingAllocator* GlobalPoolingAllocator();

}  // namespace runtime
}  // namespace nimble
