// Tagged runtime object representation (§5.2).
//
// The VM manipulates coarse-grained objects: tensors, algebraic data types
// (which double as tuples), closures, and raw storage blocks. Objects are
// reference counted via shared_ptr; Move instructions copy references, not
// payloads, so register operations stay cheap regardless of tensor size.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/ndarray.h"

namespace nimble {
namespace runtime {

enum class ObjectTag : uint8_t {
  kTensor = 0,
  kADT = 1,      // constructor tag + fields; tuples use tag 0
  kClosure = 2,
  kStorage = 3,  // result of AllocStorage, consumed by AllocTensor
};

class Object {
 public:
  explicit Object(ObjectTag tag) : tag_(tag) {}
  virtual ~Object() = default;
  ObjectTag tag() const { return tag_; }

 private:
  ObjectTag tag_;
};

using ObjectRef = std::shared_ptr<Object>;

class TensorObj : public Object {
 public:
  explicit TensorObj(NDArray data)
      : Object(ObjectTag::kTensor), data(std::move(data)) {}
  NDArray data;
};

/// Algebraic data type instance. `ctor_tag` identifies the constructor
/// within its type; tuples are ADTs with ctor_tag == kTupleTag.
class ADTObj : public Object {
 public:
  static constexpr uint32_t kTupleTag = 0xffffffffu;

  ADTObj(uint32_t ctor_tag, std::vector<ObjectRef> fields)
      : Object(ObjectTag::kADT), ctor_tag(ctor_tag), fields(std::move(fields)) {}

  uint32_t ctor_tag;
  std::vector<ObjectRef> fields;
};

/// Closure over a VM function: function index + captured free variables.
class ClosureObj : public Object {
 public:
  ClosureObj(int32_t func_index, std::vector<ObjectRef> captured)
      : Object(ObjectTag::kClosure), func_index(func_index),
        captured(std::move(captured)) {}

  int32_t func_index;
  std::vector<ObjectRef> captured;
};

/// A raw storage region produced by AllocStorage (§4.3) that tensors are
/// multiplexed onto via AllocTensor at various offsets.
class StorageObj : public Object {
 public:
  explicit StorageObj(std::shared_ptr<Buffer> buffer)
      : Object(ObjectTag::kStorage), buffer(std::move(buffer)) {}
  std::shared_ptr<Buffer> buffer;
};

// ---- convenience constructors & accessors -------------------------------

inline ObjectRef MakeTensor(NDArray data) {
  return std::make_shared<TensorObj>(std::move(data));
}

inline ObjectRef MakeTuple(std::vector<ObjectRef> fields) {
  return std::make_shared<ADTObj>(ADTObj::kTupleTag, std::move(fields));
}

inline ObjectRef MakeADT(uint32_t tag, std::vector<ObjectRef> fields) {
  return std::make_shared<ADTObj>(tag, std::move(fields));
}

inline ObjectRef MakeClosure(int32_t func_index, std::vector<ObjectRef> captured) {
  return std::make_shared<ClosureObj>(func_index, std::move(captured));
}

/// Downcasts with checks. Throws nimble::Error on tag mismatch.
const NDArray& AsTensor(const ObjectRef& obj);
ADTObj* AsADT(const ObjectRef& obj);
ClosureObj* AsClosure(const ObjectRef& obj);
StorageObj* AsStorage(const ObjectRef& obj);

/// Human-readable rendering for debugging and example programs.
std::string ObjectToString(const ObjectRef& obj, int64_t max_elems = 8);

}  // namespace runtime
}  // namespace nimble
