// NDArray: an n-dimensional tensor view over refcounted storage.
//
// An NDArray is (storage, byte offset, shape, dtype). Storage is shared so
// multiple tensors can be multiplexed onto one coalesced region, which is
// exactly what the memory-planning pass (§4.3) produces via
// alloc_storage/alloc_tensor.
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/allocator.h"
#include "src/runtime/device.h"
#include "src/runtime/dtype.h"
#include "src/support/logging.h"
#include "src/support/rng.h"

namespace nimble {
namespace runtime {

using ShapeVec = std::vector<int64_t>;

inline int64_t NumElements(const ShapeVec& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

inline std::string ShapeToString(const ShapeVec& shape) {
  std::string s = "(";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + ")";
}

class NDArray {
 public:
  NDArray() = default;

  /// Allocates a fresh dense tensor on `device` through `alloc`.
  static NDArray Empty(ShapeVec shape, DataType dtype,
                       Device device = Device::CPU(),
                       Allocator* alloc = GlobalNaiveAllocator());

  /// Creates a tensor view at `byte_offset` into existing storage.
  static NDArray FromStorage(std::shared_ptr<Buffer> storage, size_t byte_offset,
                             ShapeVec shape, DataType dtype);

  /// Allocates and fills from host data (always CPU source).
  template <typename T>
  static NDArray FromVector(const std::vector<T>& values, ShapeVec shape,
                            Device device = Device::CPU()) {
    NIMBLE_CHECK_EQ(static_cast<int64_t>(values.size()), NumElements(shape));
    NDArray arr = Empty(std::move(shape), DTypeOf<T>(), device);
    std::memcpy(arr.raw_data(), values.data(), values.size() * sizeof(T));
    return arr;
  }

  /// Scalar (rank-0) tensor.
  template <typename T>
  static NDArray Scalar(T value, Device device = Device::CPU()) {
    NDArray arr = Empty({}, DTypeOf<T>(), device);
    *static_cast<T*>(arr.raw_data()) = value;
    return arr;
  }

  bool defined() const { return storage_ != nullptr; }
  const ShapeVec& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  DataType dtype() const { return dtype_; }
  Device device() const { return storage_ ? storage_->device : Device::CPU(); }
  int64_t num_elements() const { return NumElements(shape_); }
  size_t nbytes() const { return static_cast<size_t>(num_elements()) * dtype_.bytes(); }
  const std::shared_ptr<Buffer>& storage() const { return storage_; }
  size_t byte_offset() const { return byte_offset_; }

  void* raw_data() const {
    NIMBLE_ICHECK(storage_ != nullptr) << "use of undefined NDArray";
    return static_cast<char*>(storage_->data) + byte_offset_;
  }

  template <typename T>
  T* data() const {
    NIMBLE_ICHECK(DTypeOf<T>() == dtype_)
        << "dtype mismatch: tensor is " << dtype_.ToString();
    return static_cast<T*>(raw_data());
  }

  /// Element access for rank-1/2 convenience in tests (float32 only).
  float& at(int64_t i) const { return data<float>()[i]; }
  float& at(int64_t i, int64_t j) const {
    return data<float>()[i * shape_[1] + j];
  }

  /// Returns a new view with a different shape (same storage, same size).
  NDArray Reshape(ShapeVec new_shape) const;

  /// Deep copy onto `device`, counting a cross-device transfer when devices
  /// differ (and charging DeviceCopyConfig::latency_ns()).
  NDArray CopyTo(Device device, Allocator* alloc = GlobalNaiveAllocator()) const;

  /// Copies contents from another array of identical size/dtype.
  void CopyFrom(const NDArray& other);

  /// Fills with a scalar value (dtype-converted).
  void Fill(double value);

  /// Fills with deterministic uniform values in [lo, hi).
  void FillUniform(support::Rng& rng, double lo = -1.0, double hi = 1.0);

  std::string ToString(int64_t max_elems = 16) const;

 private:
  std::shared_ptr<Buffer> storage_;
  size_t byte_offset_ = 0;
  ShapeVec shape_;
  DataType dtype_;
};

/// Creates a rank-1 int64 tensor holding `shape` — the runtime representation
/// of a shape value, consumed and produced by shape-function kernels (§4.2).
NDArray ShapeTensor(const ShapeVec& shape);

/// Reads back a shape tensor into a ShapeVec.
ShapeVec ShapeFromTensor(const NDArray& arr);

}  // namespace runtime
}  // namespace nimble
