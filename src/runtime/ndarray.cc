#include "src/runtime/ndarray.h"

#include <chrono>
#include <sstream>
#include <thread>

namespace nimble {
namespace runtime {

NDArray NDArray::Empty(ShapeVec shape, DataType dtype, Device device,
                       Allocator* alloc) {
  NDArray arr;
  size_t bytes = static_cast<size_t>(NumElements(shape)) * dtype.bytes();
  arr.storage_ = alloc->Alloc(bytes, 64, device);
  arr.byte_offset_ = 0;
  arr.shape_ = std::move(shape);
  arr.dtype_ = dtype;
  return arr;
}

NDArray NDArray::FromStorage(std::shared_ptr<Buffer> storage, size_t byte_offset,
                             ShapeVec shape, DataType dtype) {
  size_t bytes = static_cast<size_t>(NumElements(shape)) * dtype.bytes();
  NIMBLE_CHECK_LE(byte_offset + bytes, storage->size)
      << "tensor (offset " << byte_offset << ", " << bytes
      << " bytes) exceeds storage of " << storage->size << " bytes";
  NDArray arr;
  arr.storage_ = std::move(storage);
  arr.byte_offset_ = byte_offset;
  arr.shape_ = std::move(shape);
  arr.dtype_ = dtype;
  return arr;
}

NDArray NDArray::Reshape(ShapeVec new_shape) const {
  NIMBLE_CHECK_EQ(NumElements(new_shape), num_elements())
      << "reshape must preserve element count";
  NDArray arr = *this;
  arr.shape_ = std::move(new_shape);
  return arr;
}

NDArray NDArray::CopyTo(Device device, Allocator* alloc) const {
  NDArray dst = Empty(shape_, dtype_, device, alloc);
  if (device != this->device()) {
    DeviceCopyConfig::copies_performed()++;
    if (int64_t ns = DeviceCopyConfig::latency_ns(); ns > 0) {
      auto start = std::chrono::steady_clock::now();
      while (std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count() < ns) {
        // busy-wait to model transfer + synchronization latency
      }
    }
  }
  std::memcpy(dst.raw_data(), raw_data(), nbytes());
  return dst;
}

void NDArray::CopyFrom(const NDArray& other) {
  NIMBLE_CHECK_EQ(other.num_elements(), num_elements());
  NIMBLE_CHECK(other.dtype() == dtype_);
  std::memcpy(raw_data(), other.raw_data(), nbytes());
}

void NDArray::Fill(double value) {
  int64_t n = num_elements();
  switch (dtype_.code()) {
    case DTypeCode::kFloat32: {
      float* p = static_cast<float*>(raw_data());
      for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(value);
      break;
    }
    case DTypeCode::kFloat64: {
      double* p = static_cast<double*>(raw_data());
      for (int64_t i = 0; i < n; ++i) p[i] = value;
      break;
    }
    case DTypeCode::kInt32: {
      int32_t* p = static_cast<int32_t*>(raw_data());
      for (int64_t i = 0; i < n; ++i) p[i] = static_cast<int32_t>(value);
      break;
    }
    case DTypeCode::kInt64: {
      int64_t* p = static_cast<int64_t*>(raw_data());
      for (int64_t i = 0; i < n; ++i) p[i] = static_cast<int64_t>(value);
      break;
    }
    case DTypeCode::kUInt8:
    case DTypeCode::kBool: {
      uint8_t* p = static_cast<uint8_t*>(raw_data());
      for (int64_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(value);
      break;
    }
  }
}

void NDArray::FillUniform(support::Rng& rng, double lo, double hi) {
  int64_t n = num_elements();
  NIMBLE_CHECK(dtype_ == DataType::Float32()) << "FillUniform expects float32";
  float* p = static_cast<float*>(raw_data());
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(rng.Uniform(lo, hi));
}

std::string NDArray::ToString(int64_t max_elems) const {
  std::ostringstream os;
  os << "NDArray" << ShapeToString(shape_) << " " << dtype_.ToString() << " "
     << device().ToString() << " [";
  int64_t n = std::min(num_elements(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    switch (dtype_.code()) {
      case DTypeCode::kFloat32: os << data<float>()[i]; break;
      case DTypeCode::kFloat64: os << data<double>()[i]; break;
      case DTypeCode::kInt32: os << data<int32_t>()[i]; break;
      case DTypeCode::kInt64: os << data<int64_t>()[i]; break;
      default: os << static_cast<int>(static_cast<uint8_t*>(raw_data())[i]);
    }
  }
  if (num_elements() > max_elems) os << ", ...";
  os << "]";
  return os.str();
}

NDArray ShapeTensor(const ShapeVec& shape) {
  NDArray arr = NDArray::Empty({static_cast<int64_t>(shape.size())},
                               DataType::Int64(), Device::CPU());
  int64_t* p = arr.data<int64_t>();
  for (size_t i = 0; i < shape.size(); ++i) p[i] = shape[i];
  return arr;
}

ShapeVec ShapeFromTensor(const NDArray& arr) {
  NIMBLE_CHECK(arr.dtype() == DataType::Int64()) << "shape tensor must be int64";
  NIMBLE_CHECK_LE(arr.ndim(), 1) << "shape tensor must be rank-1";
  ShapeVec out(static_cast<size_t>(arr.num_elements()));
  const int64_t* p = arr.data<int64_t>();
  for (size_t i = 0; i < out.size(); ++i) out[i] = p[i];
  return out;
}

}  // namespace runtime
}  // namespace nimble
