// Device abstraction.
//
// The paper evaluates on Intel CPUs, ARM CPUs and Nvidia GPUs. This repo has
// one host CPU; to preserve the *heterogeneous execution* behaviour (§4.4:
// shape functions on CPU, kernels on an accelerator, device_copy between
// them) we provide a *simulated GPU*: a separate address space on the host
// whose buffers may only be touched by kernels launched with that device and
// which requires explicit DeviceCopy to move data, with an optional simulated
// per-copy latency so benchmarks can demonstrate placement-induced transfer
// costs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "src/support/logging.h"

namespace nimble {
namespace runtime {

enum class DeviceType : uint8_t {
  kCPU = 0,
  kSimGPU = 1,  // simulated accelerator (separate address space)
};

struct Device {
  DeviceType type = DeviceType::kCPU;
  int id = 0;

  static Device CPU(int id = 0) { return Device{DeviceType::kCPU, id}; }
  static Device SimGPU(int id = 0) { return Device{DeviceType::kSimGPU, id}; }

  bool operator==(const Device& o) const { return type == o.type && id == o.id; }
  bool operator!=(const Device& o) const { return !(*this == o); }

  bool is_cpu() const { return type == DeviceType::kCPU; }

  std::string ToString() const {
    std::string base = type == DeviceType::kCPU ? "cpu" : "simgpu";
    return base + "(" + std::to_string(id) + ")";
  }
};

/// Global knob: artificial nanoseconds charged per DeviceCopy between
/// distinct devices, to model PCIe-style transfer + synchronization cost.
/// Zero by default so unit tests are fast; benchmarks may enable it.
/// Counters are atomic: concurrent serving workers (src/serve/) may perform
/// device copies simultaneously.
struct DeviceCopyConfig {
  static std::atomic<int64_t>& latency_ns() {
    static std::atomic<int64_t> ns{0};
    return ns;
  }
  static std::atomic<int64_t>& copies_performed() {
    static std::atomic<int64_t> n{0};
    return n;
  }
};

}  // namespace runtime
}  // namespace nimble
