// Tensor element data types.
#pragma once

#include <cstdint>
#include <string>

#include "src/support/logging.h"

namespace nimble {
namespace runtime {

/// Scalar element type of a tensor. The VM's object representation and the
/// kernel library dispatch on this.
enum class DTypeCode : uint8_t {
  kFloat32 = 0,
  kFloat64 = 1,
  kInt32 = 2,
  kInt64 = 3,
  kUInt8 = 4,
  kBool = 5,
};

class DataType {
 public:
  DataType() : code_(DTypeCode::kFloat32) {}
  explicit DataType(DTypeCode code) : code_(code) {}

  static DataType Float32() { return DataType(DTypeCode::kFloat32); }
  static DataType Float64() { return DataType(DTypeCode::kFloat64); }
  static DataType Int32() { return DataType(DTypeCode::kInt32); }
  static DataType Int64() { return DataType(DTypeCode::kInt64); }
  static DataType UInt8() { return DataType(DTypeCode::kUInt8); }
  static DataType Bool() { return DataType(DTypeCode::kBool); }

  DTypeCode code() const { return code_; }

  size_t bytes() const {
    switch (code_) {
      case DTypeCode::kFloat32:
      case DTypeCode::kInt32:
        return 4;
      case DTypeCode::kFloat64:
      case DTypeCode::kInt64:
        return 8;
      case DTypeCode::kUInt8:
      case DTypeCode::kBool:
        return 1;
    }
    NIMBLE_FATAL() << "unknown dtype code";
  }

  bool is_float() const {
    return code_ == DTypeCode::kFloat32 || code_ == DTypeCode::kFloat64;
  }
  bool is_int() const {
    return code_ == DTypeCode::kInt32 || code_ == DTypeCode::kInt64 ||
           code_ == DTypeCode::kUInt8;
  }

  std::string ToString() const {
    switch (code_) {
      case DTypeCode::kFloat32: return "float32";
      case DTypeCode::kFloat64: return "float64";
      case DTypeCode::kInt32: return "int32";
      case DTypeCode::kInt64: return "int64";
      case DTypeCode::kUInt8: return "uint8";
      case DTypeCode::kBool: return "bool";
    }
    return "unknown";
  }

  /// Parses the textual form produced by ToString().
  static DataType FromString(const std::string& s) {
    if (s == "float32") return Float32();
    if (s == "float64") return Float64();
    if (s == "int32") return Int32();
    if (s == "int64") return Int64();
    if (s == "uint8") return UInt8();
    if (s == "bool") return Bool();
    NIMBLE_FATAL() << "unknown dtype string: " << s;
  }

  bool operator==(const DataType& o) const { return code_ == o.code_; }
  bool operator!=(const DataType& o) const { return code_ != o.code_; }

 private:
  DTypeCode code_;
};

/// Maps a C++ type to the corresponding DataType, for typed accessors.
template <typename T>
DataType DTypeOf();
template <> inline DataType DTypeOf<float>() { return DataType::Float32(); }
template <> inline DataType DTypeOf<double>() { return DataType::Float64(); }
template <> inline DataType DTypeOf<int32_t>() { return DataType::Int32(); }
template <> inline DataType DTypeOf<int64_t>() { return DataType::Int64(); }
template <> inline DataType DTypeOf<uint8_t>() { return DataType::UInt8(); }

}  // namespace runtime
}  // namespace nimble
