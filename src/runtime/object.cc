#include "src/runtime/object.h"

#include <sstream>

namespace nimble {
namespace runtime {

const NDArray& AsTensor(const ObjectRef& obj) {
  NIMBLE_CHECK(obj != nullptr) << "null object where tensor expected";
  NIMBLE_CHECK(obj->tag() == ObjectTag::kTensor)
      << "expected tensor object, got tag " << static_cast<int>(obj->tag());
  return static_cast<TensorObj*>(obj.get())->data;
}

ADTObj* AsADT(const ObjectRef& obj) {
  NIMBLE_CHECK(obj != nullptr) << "null object where ADT expected";
  NIMBLE_CHECK(obj->tag() == ObjectTag::kADT)
      << "expected ADT object, got tag " << static_cast<int>(obj->tag());
  return static_cast<ADTObj*>(obj.get());
}

ClosureObj* AsClosure(const ObjectRef& obj) {
  NIMBLE_CHECK(obj != nullptr) << "null object where closure expected";
  NIMBLE_CHECK(obj->tag() == ObjectTag::kClosure)
      << "expected closure object, got tag " << static_cast<int>(obj->tag());
  return static_cast<ClosureObj*>(obj.get());
}

StorageObj* AsStorage(const ObjectRef& obj) {
  NIMBLE_CHECK(obj != nullptr) << "null object where storage expected";
  NIMBLE_CHECK(obj->tag() == ObjectTag::kStorage)
      << "expected storage object, got tag " << static_cast<int>(obj->tag());
  return static_cast<StorageObj*>(obj.get());
}

std::string ObjectToString(const ObjectRef& obj, int64_t max_elems) {
  if (obj == nullptr) return "null";
  std::ostringstream os;
  switch (obj->tag()) {
    case ObjectTag::kTensor:
      os << AsTensor(obj).ToString(max_elems);
      break;
    case ObjectTag::kADT: {
      auto* adt = AsADT(obj);
      if (adt->ctor_tag == ADTObj::kTupleTag) {
        os << "(";
      } else {
        os << "ctor#" << adt->ctor_tag << "(";
      }
      for (size_t i = 0; i < adt->fields.size(); ++i) {
        if (i) os << ", ";
        os << ObjectToString(adt->fields[i], max_elems);
      }
      os << ")";
      break;
    }
    case ObjectTag::kClosure:
      os << "closure(func=" << AsClosure(obj)->func_index << ")";
      break;
    case ObjectTag::kStorage:
      os << "storage(" << AsStorage(obj)->buffer->size << " bytes)";
      break;
  }
  return os.str();
}

}  // namespace runtime
}  // namespace nimble
