#include "src/runtime/allocator.h"

#include <algorithm>
#include <cstdlib>

#include "src/support/logging.h"

namespace nimble {
namespace runtime {

namespace {
// 256-byte granularity: fine enough to keep footprint close to a static
// plan (the paper reports <=8% extra), coarse enough that recurring dynamic
// shapes hit the same bucket.
size_t RoundUpBucket(size_t n) {
  if (n < 16) n = 16;
  return (n + 255) / 256 * 256;
}
}  // namespace

Buffer::~Buffer() {
  if (source != nullptr && data != nullptr) source->Free(this);
}

AllocStats Allocator::stats() const {
  int64_t raw[kNumCounters];
  for (int i = 0; i < kNumCounters; ++i) raw[i] = counters_[i].Value();
  AllocStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.alloc_calls = raw[kAllocCalls] - baseline_[kAllocCalls];
    s.system_allocs = raw[kSystemAllocs] - baseline_[kSystemAllocs];
    s.bytes_allocated = raw[kBytesAllocated] - baseline_[kBytesAllocated];
    s.free_calls = raw[kFreeCalls] - baseline_[kFreeCalls];
    s.bytes_freed = raw[kBytesFreed] - baseline_[kBytesFreed];
    s.pool_hits = raw[kPoolHits] - baseline_[kPoolHits];
    s.pool_refills = raw[kPoolRefills] - baseline_[kPoolRefills];
    s.pool_frees = raw[kPoolFrees] - baseline_[kPoolFrees];
  }
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  return s;
}

void Allocator::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kNumCounters; ++i) baseline_[i] = counters_[i].Value();
  live_bytes_.store(0, std::memory_order_relaxed);
  peak_bytes_.store(0, std::memory_order_relaxed);
}

void Allocator::AddLive(int64_t bytes) {
  int64_t live =
      live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_bytes_.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
  }
}

std::shared_ptr<Buffer> Allocator::SystemAlloc(size_t size, size_t alignment,
                                               Device device) {
  if (alignment < alignof(std::max_align_t)) alignment = alignof(std::max_align_t);
  size_t padded = (size + alignment - 1) / alignment * alignment;
  if (padded == 0) padded = alignment;
  void* ptr = std::aligned_alloc(alignment, padded);
  NIMBLE_CHECK(ptr != nullptr) << "allocation of " << size << " bytes failed";
  auto buf = std::make_shared<Buffer>();
  buf->data = ptr;
  buf->size = padded;
  buf->device = device;
  buf->source = this;
  Count(kSystemAllocs);
  return buf;
}

void Allocator::SystemFree(Buffer* buffer) {
  std::free(buffer->data);
  buffer->data = nullptr;
}

void Allocator::Free(Buffer* buffer) {
  Count(kFreeCalls);
  Count(kBytesFreed, static_cast<int64_t>(buffer->size));
  SubLive(static_cast<int64_t>(buffer->size));
  SystemFree(buffer);
}

std::shared_ptr<Buffer> NaiveAllocator::Alloc(size_t size, size_t alignment,
                                              Device device) {
  Count(kAllocCalls);
  auto buf = SystemAlloc(size, alignment, device);
  // Count the block actually handed out (alignment-padded), not the bytes
  // requested: bytes_allocated, bytes_freed, and live_bytes then share one
  // base, and allocated == freed + live holds exactly at any quiescent
  // point (the drain-leak sentinel in tests/test_serve.cc).
  Count(kBytesAllocated, static_cast<int64_t>(buf->size));
  AddLive(static_cast<int64_t>(buf->size));
  return buf;
}

PoolingAllocator::~PoolingAllocator() { Trim(); }

std::shared_ptr<Buffer> PoolingAllocator::Alloc(size_t size, size_t alignment,
                                                Device device) {
  Count(kAllocCalls);
  size_t bucket = RoundUpBucket(size);
  Key key{device.type, device.id, bucket};
  void* recycled = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pool_.find(key);
    if (it != pool_.end() && !it->second.empty()) {
      recycled = it->second.back();
      it->second.pop_back();
      cached_bytes_ -= bucket;
    }
  }
  if (recycled != nullptr) {
    Count(kPoolHits);
    obs::RecordPoolEvent(obs::PoolEvent::kHit);
    auto buf = std::make_shared<Buffer>();
    buf->data = recycled;
    buf->size = bucket;
    buf->device = device;
    buf->source = this;
    // Same single-base rule as NaiveAllocator::Alloc: count the bucket the
    // caller gets, so allocated == freed + live stays an identity.
    Count(kBytesAllocated, static_cast<int64_t>(bucket));
    AddLive(static_cast<int64_t>(bucket));
    return buf;
  }
  obs::RecordPoolEvent(obs::PoolEvent::kMiss);
  auto buf = SystemAlloc(bucket, alignment, device);
  Count(kBytesAllocated, static_cast<int64_t>(buf->size));
  AddLive(static_cast<int64_t>(buf->size));
  return buf;
}

void PoolingAllocator::Free(Buffer* buffer) {
  Count(kFreeCalls);
  Count(kBytesFreed, static_cast<int64_t>(buffer->size));
  SubLive(static_cast<int64_t>(buffer->size));
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cached_bytes_ + buffer->size <= max_cached_bytes_) {
      Key key{buffer->device.type, buffer->device.id, buffer->size};
      pool_[key].push_back(buffer->data);
      cached_bytes_ += buffer->size;
      buffer->data = nullptr;
      pooled = true;
    }
  }
  if (pooled) {
    Count(kPoolRefills);
    obs::RecordPoolEvent(obs::PoolEvent::kRefill);
  } else {
    Count(kPoolFrees);
    obs::RecordPoolEvent(obs::PoolEvent::kFree);
    SystemFree(buffer);
  }
}

void PoolingAllocator::Trim() {
  int64_t trimmed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, blocks] : pool_) {
      for (void* ptr : blocks) std::free(ptr);
      trimmed += static_cast<int64_t>(blocks.size());
      blocks.clear();
    }
    cached_bytes_ = 0;
  }
  if (trimmed > 0) {
    Count(kPoolFrees, trimmed);
    obs::RecordPoolEvent(obs::PoolEvent::kFree, trimmed);
  }
}

std::vector<obs::PoolClassOccupancy> PoolingAllocator::PoolClasses() const {
  std::map<int64_t, int64_t> blocks_by_size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, blocks] : pool_) {
      if (!blocks.empty()) {
        blocks_by_size[static_cast<int64_t>(key.size)] +=
            static_cast<int64_t>(blocks.size());
      }
    }
  }
  std::vector<obs::PoolClassOccupancy> out;
  out.reserve(blocks_by_size.size());
  for (const auto& [bucket, blocks] : blocks_by_size) {
    out.push_back({bucket, blocks, bucket * blocks});
  }
  return out;
}

NaiveAllocator* GlobalNaiveAllocator() {
  static NaiveAllocator alloc;
  return &alloc;
}

PoolingAllocator* GlobalPoolingAllocator() {
  static PoolingAllocator alloc;
  return &alloc;
}

}  // namespace runtime
}  // namespace nimble
