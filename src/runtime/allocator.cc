#include "src/runtime/allocator.h"

#include <cstdlib>

#include "src/support/logging.h"

namespace nimble {
namespace runtime {

namespace {
// 256-byte granularity: fine enough to keep footprint close to a static
// plan (the paper reports <=8% extra), coarse enough that recurring dynamic
// shapes hit the same bucket.
size_t RoundUpBucket(size_t n) {
  if (n < 16) n = 16;
  return (n + 255) / 256 * 256;
}
}  // namespace

Buffer::~Buffer() {
  if (source != nullptr && data != nullptr) source->Free(this);
}

std::shared_ptr<Buffer> Allocator::SystemAlloc(size_t size, size_t alignment,
                                               Device device) {
  if (alignment < alignof(std::max_align_t)) alignment = alignof(std::max_align_t);
  size_t padded = (size + alignment - 1) / alignment * alignment;
  if (padded == 0) padded = alignment;
  void* ptr = std::aligned_alloc(alignment, padded);
  NIMBLE_CHECK(ptr != nullptr) << "allocation of " << size << " bytes failed";
  auto buf = std::make_shared<Buffer>();
  buf->data = ptr;
  buf->size = padded;
  buf->device = device;
  buf->source = this;
  stats_.system_allocs++;
  return buf;
}

void Allocator::SystemFree(Buffer* buffer) {
  std::free(buffer->data);
  buffer->data = nullptr;
}

void Allocator::Free(Buffer* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.live_bytes -= static_cast<int64_t>(buffer->size);
  SystemFree(buffer);
}

std::shared_ptr<Buffer> NaiveAllocator::Alloc(size_t size, size_t alignment,
                                              Device device) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.alloc_calls++;
  stats_.bytes_allocated += static_cast<int64_t>(size);
  auto buf = SystemAlloc(size, alignment, device);
  stats_.live_bytes += static_cast<int64_t>(buf->size);
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.live_bytes);
  return buf;
}

PoolingAllocator::~PoolingAllocator() { Trim(); }

std::shared_ptr<Buffer> PoolingAllocator::Alloc(size_t size, size_t alignment,
                                                Device device) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.alloc_calls++;
  stats_.bytes_allocated += static_cast<int64_t>(size);
  size_t bucket = RoundUpBucket(size);
  Key key{device.type, device.id, bucket};
  auto it = pool_.find(key);
  if (it != pool_.end() && !it->second.empty()) {
    void* ptr = it->second.back();
    it->second.pop_back();
    cached_bytes_ -= bucket;
    auto buf = std::make_shared<Buffer>();
    buf->data = ptr;
    buf->size = bucket;
    buf->device = device;
    buf->source = this;
    stats_.live_bytes += static_cast<int64_t>(bucket);
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.live_bytes);
    return buf;
  }
  auto buf = SystemAlloc(bucket, alignment, device);
  stats_.live_bytes += static_cast<int64_t>(buf->size);
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.live_bytes);
  return buf;
}

void PoolingAllocator::Free(Buffer* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.live_bytes -= static_cast<int64_t>(buffer->size);
  if (cached_bytes_ + buffer->size > max_cached_bytes_) {
    SystemFree(buffer);
    return;
  }
  Key key{buffer->device.type, buffer->device.id, buffer->size};
  pool_[key].push_back(buffer->data);
  cached_bytes_ += buffer->size;
  buffer->data = nullptr;
}

void PoolingAllocator::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, blocks] : pool_) {
    for (void* ptr : blocks) std::free(ptr);
    blocks.clear();
  }
  cached_bytes_ = 0;
}

NaiveAllocator* GlobalNaiveAllocator() {
  static NaiveAllocator alloc;
  return &alloc;
}

PoolingAllocator* GlobalPoolingAllocator() {
  static PoolingAllocator alloc;
  return &alloc;
}

}  // namespace runtime
}  // namespace nimble
