// PackPlan: pack a bucket of same-model requests into one tensor.
//
// The batch scheduler (src/serve/) groups similar-length requests; this
// layer turns such a group into a single VM invocation. AnalyzeBatch decides
// whether a batch may run packed — the executable must carry a
// vm::BatchedEntrySpec for the requests' entry point, and every request must
// match the spec's calling convention (see the fallback rules in
// docs/ARCHITECTURE.md). Two packing layouts exist, selected by the spec:
//
// Time-major (recurrent models; BatchedEntrySpec::Layout::kTimeMajor):
//   packed  [Lmax, B, D]   packed[t, r, :] = request r's row t, zero rows
//                          beyond its true length
//   max_len i64 scalar     = Lmax
//   lengths [B, 1] i64     true per-request lengths
//   states  [B, W] x k     zero-filled recurrent initial states
//   result  [B, W_out]     row r sliced back out per request
//
// Batch-major row map (row-independent feed-forward entries;
// kBatchMajorRowMap): requests' rows are concatenated with NO padding into
// one [R, D] tensor (R = sum of lengths; the per-request row ranges are the
// host-side "row map"), the batched function maps rows to rows, and the
// [R, W_out] result is sliced back into per-request [len, W_out] tensors.
//
// For an executable *variant* specialized to a shape bucket
// (vm::Executable::variant, produced for serve::ExecCache), AnalyzeBatch
// additionally requires every request's length to equal the variant's baked
// length (and the batch size to match a baked batch size), and PackPlan
// packs to exactly the variant's Lmax — by construction such batches carry
// zero padding.
//
// Unpacked results are copies, so a request's result never pins the whole
// batch buffer.
//
// Bit-identity contract: a packed run must reproduce the per-request path
// bit for bit. Two rules enforce it here; the batched function itself (e.g.
// models::BuildLSTM's @main_batched) guarantees the rest via exact `where`
// masking (a row-map entry is row-independent, which is the whole property):
//   - every kernel the entry uses computes batch rows independently and in
//     the same per-row order for any row count (true of the repo's dense /
//     elementwise / lstm_cell kernels);
//   - the executable's dense dispatch must not mix kernel families between
//     the row counts the per-request path sees and the row counts the
//     packed path sees: residue coverage has to be full (every M
//     specialized) or empty (every M generic) — or, for a time-major batch,
//     cover the batch's own row count, since a time-major entry's dense
//     calls all run on [B, *] activations (the convention bucket-tuned
//     variant tables rely on). AnalyzeBatch rejects everything else.
//
// Thread-safety: AnalyzeBatch and PackPlan only read the executable and the
// requests; each pool worker builds its own plans with its own allocator.
#pragma once

#include <string>
#include <vector>

#include "src/runtime/allocator.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/object.h"
#include "src/serve/request.h"
#include "src/vm/executable.h"

namespace nimble {
namespace batch {

/// Outcome of AnalyzeBatch: `spec != nullptr` means the batch may run
/// packed; otherwise `reason` names the first fallback rule that fired
/// (surfaced in logs/tests, never an error — the per-request loop handles
/// everything packing cannot).
struct PackCheck {
  const vm::BatchedEntrySpec* spec = nullptr;
  std::string reason;
  bool ok() const { return spec != nullptr; }
};

/// Decides whether `requests` (all for `exec`, all sharing one entry
/// function) can execute as one packed invocation. For a variant executable
/// this includes the exact-shape requirements described above.
PackCheck AnalyzeBatch(const vm::Executable& exec,
                       const std::vector<serve::Request>& requests);

/// The request's sequence tensor per the spec ([len, feature_width]
/// float32 at seq_arg), or nullptr with `reason` set when the argument does
/// not match. Shared with the continuous slot-map runner (step_runner.cc),
/// which validates requests one at a time as it splices them.
const runtime::NDArray* SeqTensor(const vm::BatchedEntrySpec& spec,
                                  const serve::Request& request,
                                  std::string* reason);

/// The request's true sequence length (from len_arg, else the row count of
/// `seq`), validated to [1, rows]; -1 with `reason` set on a violation.
int64_t SeqLength(const vm::BatchedEntrySpec& spec,
                  const serve::Request& request, const runtime::NDArray& seq,
                  std::string* reason);

class PackPlan {
 public:
  /// Builds the plan for a batch AnalyzeBatch accepted. `spec` must outlive
  /// the plan (it lives in the executable, which the batch holds alive).
  /// `forced_max_len` > 0 pins the packed length (a variant's exact Lmax)
  /// instead of the batch's own maximum; it must not be smaller than any
  /// request's length. Ignored by the row-map layout, which never pads.
  static PackPlan Build(const vm::BatchedEntrySpec& spec,
                        const std::vector<serve::Request>& requests,
                        int64_t forced_max_len = 0);

  /// Packs the requests' sequences per the spec's layout and materializes
  /// the batched argument list, allocating every tensor from `alloc` (the
  /// pool worker's PoolingAllocator, so packed buffers recycle across
  /// batches).
  std::vector<runtime::ObjectRef> PackArgs(
      const std::vector<serve::Request>& requests,
      runtime::Allocator* alloc) const;

  /// Slices the batched result back into per-request tensors: row r of
  /// [B, W] as [1, W] (time-major), or the request's [len, W] row range of
  /// [R, W] (row map).
  std::vector<runtime::NDArray> Unpack(const runtime::ObjectRef& result,
                                       runtime::Allocator* alloc) const;

  int64_t batch_size() const { return static_cast<int64_t>(lengths_.size()); }
  int64_t max_len() const { return max_len_; }
  const std::vector<int64_t>& lengths() const { return lengths_; }

  /// Padding-overhead accounting over the packed input, in elements:
  /// time-major packs total = Lmax * B * D of which padded are zero rows;
  /// a row-map pack is dense by construction (padded == 0).
  int64_t total_elements() const;
  int64_t padded_elements() const;

 private:
  const vm::BatchedEntrySpec* spec_ = nullptr;
  std::vector<int64_t> lengths_;
  int64_t max_len_ = 0;
};

}  // namespace batch
}  // namespace nimble
