// PackPlan: pad-and-pack a bucket of same-model requests into one tensor.
//
// The batch scheduler (src/serve/) groups similar-length requests; this
// layer turns such a group into a single VM invocation. AnalyzeBatch decides
// whether a batch may run packed — the executable must carry a
// vm::BatchedEntrySpec for the requests' entry point, and every request must
// match the spec's calling convention (see the fallback rules in
// docs/ARCHITECTURE.md). PackPlan then builds the batched argument list:
//
//   packed  [Lmax, B, D]   time-major; packed[t, r, :] = request r's row t,
//                          zero rows beyond its true length
//   max_len i64 scalar     = Lmax
//   lengths [B, 1] i64     true per-request lengths
//   states  [B, W] x k     zero-filled recurrent initial states
//
// and Unpack slices row r of the [B, W_out] result back into a fresh
// [1, W_out] tensor per request (a copy, so a request's result never pins
// the whole batch buffer).
//
// Bit-identity contract: a packed run must reproduce the per-request path
// bit for bit. Two rules enforce it here; the batched function itself (e.g.
// models::BuildLSTM's @main_batched) guarantees the rest via exact `where`
// masking:
//   - every kernel the entry uses computes batch rows independently and in
//     the same per-row order for any row count (true of the repo's dense /
//     elementwise / lstm_cell kernels);
//   - the executable's dense dispatch must not mix kernel families across
//     row counts: residue coverage has to be full (every M specialized) or
//     empty (every M generic), because the specialized and generic dense
//     kernels accumulate in different orders. AnalyzeBatch rejects partial
//     coverage.
//
// Thread-safety: AnalyzeBatch and PackPlan only read the executable and the
// requests; each pool worker builds its own plans with its own allocator.
#pragma once

#include <string>
#include <vector>

#include "src/runtime/allocator.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/object.h"
#include "src/serve/request.h"
#include "src/vm/executable.h"

namespace nimble {
namespace batch {

/// Outcome of AnalyzeBatch: `spec != nullptr` means the batch may run
/// packed; otherwise `reason` names the first fallback rule that fired
/// (surfaced in logs/tests, never an error — the per-request loop handles
/// everything packing cannot).
struct PackCheck {
  const vm::BatchedEntrySpec* spec = nullptr;
  std::string reason;
  bool ok() const { return spec != nullptr; }
};

/// Decides whether `requests` (all for `exec`, all sharing one entry
/// function) can execute as one packed invocation.
PackCheck AnalyzeBatch(const vm::Executable& exec,
                       const std::vector<serve::Request>& requests);

class PackPlan {
 public:
  /// Builds the plan for a batch AnalyzeBatch accepted. `spec` must outlive
  /// the plan (it lives in the executable, which the batch holds alive).
  static PackPlan Build(const vm::BatchedEntrySpec& spec,
                        const std::vector<serve::Request>& requests);

  /// Pads and packs the requests' sequences and materializes the batched
  /// argument list, allocating every tensor from `alloc` (the pool worker's
  /// PoolingAllocator, so packed buffers recycle across batches).
  std::vector<runtime::ObjectRef> PackArgs(
      const std::vector<serve::Request>& requests,
      runtime::Allocator* alloc) const;

  /// Slices row r of the batched [B, W] result into a fresh [1, W] tensor
  /// per request.
  std::vector<runtime::NDArray> Unpack(const runtime::ObjectRef& result,
                                       runtime::Allocator* alloc) const;

  int64_t batch_size() const { return static_cast<int64_t>(lengths_.size()); }
  int64_t max_len() const { return max_len_; }
  const std::vector<int64_t>& lengths() const { return lengths_; }

  /// Padding-overhead accounting over the packed input, in elements:
  /// total = Lmax * B * D, padded = total - sum(lengths) * D.
  int64_t total_elements() const;
  int64_t padded_elements() const;

 private:
  const vm::BatchedEntrySpec* spec_ = nullptr;
  std::vector<int64_t> lengths_;
  int64_t max_len_ = 0;
};

}  // namespace batch
}  // namespace nimble
