#include "src/batch/pack_plan.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/obs/memory.h"
#include "src/support/logging.h"

namespace nimble {
namespace batch {

using runtime::DataType;
using runtime::NDArray;
using runtime::ObjectRef;

namespace {

/// Builds a failure reason; only called on rejection branches so the
/// per-batch success path never constructs a stream.
template <typename... Parts>
std::string Why(const serve::Request& request, const Parts&... parts) {
  std::ostringstream why;
  why << "request " << request.id;
  (why << ... << parts);
  return why.str();
}

NDArray ZeroTensor(runtime::ShapeVec shape, DataType dtype,
                   runtime::Allocator* alloc) {
  NDArray arr =
      NDArray::Empty(std::move(shape), dtype, runtime::Device::CPU(), alloc);
  std::memset(arr.raw_data(), 0, arr.nbytes());
  return arr;
}

}  // namespace

const NDArray* SeqTensor(const vm::BatchedEntrySpec& spec,
                         const serve::Request& request, std::string* reason) {
  if (static_cast<size_t>(spec.seq_arg) >= request.args.size()) {
    *reason = Why(request, " has no arg ", spec.seq_arg);
    return nullptr;
  }
  const ObjectRef& obj = request.args[static_cast<size_t>(spec.seq_arg)];
  if (obj == nullptr || obj->tag() != runtime::ObjectTag::kTensor) {
    *reason = Why(request, " arg ", spec.seq_arg, " is not a tensor");
    return nullptr;
  }
  const NDArray& seq = runtime::AsTensor(obj);
  if (seq.ndim() != 2 || seq.shape()[1] != spec.feature_width ||
      seq.dtype() != DataType::Float32()) {
    *reason = Why(request, " sequence is ",
                  runtime::ShapeToString(seq.shape()), " ",
                  seq.dtype().ToString(), ", expected [len, ",
                  spec.feature_width, "] float32");
    return nullptr;
  }
  return &seq;
}

int64_t SeqLength(const vm::BatchedEntrySpec& spec,
                  const serve::Request& request, const NDArray& seq,
                  std::string* reason) {
  int64_t rows = seq.shape()[0];
  if (spec.len_arg < 0) return rows;
  if (static_cast<size_t>(spec.len_arg) >= request.args.size()) {
    *reason = Why(request, " has no length arg ", spec.len_arg);
    return -1;
  }
  const ObjectRef& obj = request.args[static_cast<size_t>(spec.len_arg)];
  if (obj == nullptr || obj->tag() != runtime::ObjectTag::kTensor) {
    *reason = Why(request, " length arg is not a tensor");
    return -1;
  }
  const NDArray& len_arr = runtime::AsTensor(obj);
  if (len_arr.num_elements() != 1 || len_arr.dtype() != DataType::Int64()) {
    *reason = Why(request, " length arg is not an int64 scalar");
    return -1;
  }
  int64_t len = len_arr.data<int64_t>()[0];
  if (len < 1 || len > rows) {
    *reason = Why(request, " length ", len, " outside [1, rows=", rows, "]");
    return -1;
  }
  return len;
}

PackCheck AnalyzeBatch(const vm::Executable& exec,
                       const std::vector<serve::Request>& requests) {
  PackCheck check;
  if (requests.empty()) {
    check.reason = "empty batch";
    return check;
  }
  const std::string& function = requests.front().function;
  for (const serve::Request& request : requests) {
    if (request.function != function) {
      check.reason = "mixed entry points in one batch";
      return check;
    }
  }
  const vm::BatchedEntrySpec* spec = exec.FindBatched(function);
  if (spec == nullptr) {
    check.reason = "no batched entry for '" + function + "'";
    return check;
  }
  bool time_major = spec->layout == vm::BatchedEntrySpec::Layout::kTimeMajor;
  if (!time_major && spec->num_state_args != 0) {
    check.reason = "row-map batched entry cannot take state arguments";
    return check;
  }
  // Variant shape gate first (it implies the most precise reason): a
  // specialized executable only serves batches of exactly its baked shape.
  const vm::Executable::VariantInfo& variant = exec.variant;
  if (variant.is_variant() && variant.specialized_batch > 0 &&
      static_cast<int64_t>(requests.size()) != variant.specialized_batch) {
    std::ostringstream why;
    why << "variant is specialized to batches of " << variant.specialized_batch
        << ", got " << requests.size();
    check.reason = why.str();
    return check;
  }
  // Bit-identity guard (see the header): dispatch must route every row
  // count this executable can see — the batch's own row count on the packed
  // path (a time-major entry's dense calls all run on [B, *] activations)
  // and the single row of the per-request path — to the specialized dense
  // kernel family, exactly like the full-coverage table the results are
  // compared against; mixing in the generic kernel changes accumulation
  // order. Full and empty coverage are always safe; a bucket-tuned variant
  // table passes by covering exactly those two residues.
  int variants = exec.dispatch_table.num_variants();
  bool full_or_empty = variants == codegen::kTileRows || variants == 1;
  int batch_residue =
      static_cast<int>(requests.size() % static_cast<size_t>(codegen::kTileRows));
  if (!full_or_empty &&
      !(time_major && exec.dispatch_table.Covers(batch_residue) &&
        exec.dispatch_table.Covers(1 % codegen::kTileRows))) {
    std::ostringstream why;
    why << "dense dispatch coverage (mask=0x" << std::hex
        << exec.dispatch_table.residue_mask() << std::dec
        << ") does not cover this batch's rows; mixing kernel families "
           "breaks per-row bit-identity";
    check.reason = why.str();
    return check;
  }
  for (const serve::Request& request : requests) {
    const NDArray* seq = SeqTensor(*spec, request, &check.reason);
    if (seq == nullptr) return check;
    int64_t len = SeqLength(*spec, request, *seq, &check.reason);
    if (len < 0) return check;
    if (variant.is_variant() && len != variant.specialized_len) {
      check.reason = Why(request, " length ", len,
                         " does not match the variant's specialized length ",
                         variant.specialized_len);
      return check;
    }
  }
  check.spec = spec;
  return check;
}

PackPlan PackPlan::Build(const vm::BatchedEntrySpec& spec,
                         const std::vector<serve::Request>& requests,
                         int64_t forced_max_len) {
  PackPlan plan;
  plan.spec_ = &spec;
  plan.lengths_.reserve(requests.size());
  std::string reason;
  for (const serve::Request& request : requests) {
    const NDArray* seq = SeqTensor(spec, request, &reason);
    NIMBLE_CHECK(seq != nullptr) << "PackPlan::Build without AnalyzeBatch: "
                                 << reason;
    int64_t len = SeqLength(spec, request, *seq, &reason);
    NIMBLE_CHECK_GE(len, 1) << "PackPlan::Build without AnalyzeBatch: "
                            << reason;
    plan.lengths_.push_back(len);
    plan.max_len_ = std::max(plan.max_len_, len);
  }
  if (forced_max_len > 0 &&
      spec.layout == vm::BatchedEntrySpec::Layout::kTimeMajor) {
    NIMBLE_CHECK_GE(forced_max_len, plan.max_len_)
        << "variant Lmax smaller than a request's length";
    plan.max_len_ = forced_max_len;
  }
  return plan;
}

std::vector<ObjectRef> PackPlan::PackArgs(
    const std::vector<serve::Request>& requests,
    runtime::Allocator* alloc) const {
  const vm::BatchedEntrySpec& spec = *spec_;
  int64_t B = batch_size();
  int64_t D = spec.feature_width;
  NIMBLE_CHECK_EQ(static_cast<size_t>(B), requests.size());

  if (spec.layout == vm::BatchedEntrySpec::Layout::kBatchMajorRowMap) {
    // Dense concatenation: every request's rows back to back, no padding.
    int64_t R = 0;
    for (int64_t len : lengths_) R += len;
    NDArray packed = NDArray::Empty({R, D}, DataType::Float32(),
                                    runtime::Device::CPU(), alloc);
    float* pp = packed.data<float>();
    for (int64_t r = 0; r < B; ++r) {
      const NDArray& seq =
          runtime::AsTensor(requests[static_cast<size_t>(r)]
                                .args[static_cast<size_t>(spec.seq_arg)]);
      int64_t len = lengths_[static_cast<size_t>(r)];
      std::memcpy(pp, seq.data<float>(),
                  static_cast<size_t>(len * D) * sizeof(float));
      pp += len * D;
    }
    // One ledger add for the whole gather, not one per row (see
    // src/obs/memory.h on RecordCopy granularity).
    obs::RecordCopy(obs::CopySite::kPack,
                    R * D * static_cast<int64_t>(sizeof(float)));
    return {runtime::MakeTensor(std::move(packed))};
  }

  // Time-major pad-and-pack: zero the buffer once, then interleave each
  // request's rows at stride B. An exact-length batch (the executable
  // cache's carved batches) writes every row, so the upfront zeroing is
  // skipped.
  NDArray packed =
      padded_elements() == 0
          ? NDArray::Empty({max_len_, B, D}, DataType::Float32(),
                           runtime::Device::CPU(), alloc)
          : ZeroTensor({max_len_, B, D}, DataType::Float32(), alloc);
  float* pp = packed.data<float>();
  for (int64_t r = 0; r < B; ++r) {
    const NDArray& seq =
        runtime::AsTensor(requests[static_cast<size_t>(r)]
                              .args[static_cast<size_t>(spec.seq_arg)]);
    const float* ps = seq.data<float>();
    for (int64_t t = 0; t < lengths_[static_cast<size_t>(r)]; ++t) {
      std::memcpy(pp + (t * B + r) * D, ps + t * D,
                  static_cast<size_t>(D) * sizeof(float));
    }
  }
  obs::RecordCopy(obs::CopySite::kPack,
                  (total_elements() - padded_elements()) *
                      static_cast<int64_t>(sizeof(float)));

  NDArray max_len = NDArray::Empty({}, DataType::Int64(),
                                   runtime::Device::CPU(), alloc);
  max_len.data<int64_t>()[0] = max_len_;

  NDArray lengths = NDArray::Empty({B, 1}, DataType::Int64(),
                                   runtime::Device::CPU(), alloc);
  for (int64_t r = 0; r < B; ++r) {
    lengths.data<int64_t>()[r] = lengths_[static_cast<size_t>(r)];
  }

  std::vector<ObjectRef> args;
  args.reserve(3 + static_cast<size_t>(spec.num_state_args));
  args.push_back(runtime::MakeTensor(std::move(packed)));
  args.push_back(runtime::MakeTensor(std::move(max_len)));
  args.push_back(runtime::MakeTensor(std::move(lengths)));
  for (int32_t s = 0; s < spec.num_state_args; ++s) {
    args.push_back(runtime::MakeTensor(
        ZeroTensor({B, spec.state_width}, DataType::Float32(), alloc)));
  }
  return args;
}

std::vector<NDArray> PackPlan::Unpack(const ObjectRef& result,
                                      runtime::Allocator* alloc) const {
  const NDArray& batched = runtime::AsTensor(result);
  int64_t B = batch_size();

  if (spec_->layout == vm::BatchedEntrySpec::Layout::kBatchMajorRowMap) {
    // [R, W] rows-to-rows result: slice each request's row range back out.
    int64_t R = 0;
    for (int64_t len : lengths_) R += len;
    NIMBLE_CHECK_EQ(batched.ndim(), 2)
        << "row-map batched entry must return [R, W], got "
        << runtime::ShapeToString(batched.shape());
    NIMBLE_CHECK_EQ(batched.shape()[0], R)
        << "row-map batched result rows do not match the packed rows";
    int64_t W = batched.shape()[1];
    size_t row_bytes = static_cast<size_t>(W) * batched.dtype().bytes();
    const char* src = static_cast<const char*>(batched.raw_data());
    std::vector<NDArray> outs;
    outs.reserve(static_cast<size_t>(B));
    for (int64_t r = 0; r < B; ++r) {
      int64_t len = lengths_[static_cast<size_t>(r)];
      NDArray out = NDArray::Empty({len, W}, batched.dtype(),
                                   runtime::Device::CPU(), alloc);
      std::memcpy(out.raw_data(), src, static_cast<size_t>(len) * row_bytes);
      src += static_cast<size_t>(len) * row_bytes;
      outs.push_back(std::move(out));
    }
    obs::RecordCopy(obs::CopySite::kUnpack,
                    R * static_cast<int64_t>(row_bytes));
    return outs;
  }

  NIMBLE_CHECK_EQ(batched.ndim(), 2)
      << "batched entry must return [B, W], got "
      << runtime::ShapeToString(batched.shape());
  NIMBLE_CHECK_EQ(batched.shape()[0], B)
      << "batched result rows do not match the batch";
  int64_t W = batched.shape()[1];
  size_t row_bytes = static_cast<size_t>(W) * batched.dtype().bytes();
  const char* src = static_cast<const char*>(batched.raw_data());
  std::vector<NDArray> outs;
  outs.reserve(static_cast<size_t>(B));
  for (int64_t r = 0; r < B; ++r) {
    NDArray out = NDArray::Empty({1, W}, batched.dtype(),
                                 runtime::Device::CPU(), alloc);
    std::memcpy(out.raw_data(), src + r * row_bytes, row_bytes);
    outs.push_back(std::move(out));
  }
  obs::RecordCopy(obs::CopySite::kUnpack, B * static_cast<int64_t>(row_bytes));
  return outs;
}

int64_t PackPlan::total_elements() const {
  if (spec_->layout == vm::BatchedEntrySpec::Layout::kBatchMajorRowMap) {
    int64_t used = 0;
    for (int64_t len : lengths_) used += len;
    return used * spec_->feature_width;
  }
  return max_len_ * batch_size() * spec_->feature_width;
}

int64_t PackPlan::padded_elements() const {
  if (spec_->layout == vm::BatchedEntrySpec::Layout::kBatchMajorRowMap) {
    return 0;  // dense concatenation never pads
  }
  int64_t used = 0;
  for (int64_t len : lengths_) used += len;
  return (max_len_ * batch_size() - used) * spec_->feature_width;
}

}  // namespace batch
}  // namespace nimble
