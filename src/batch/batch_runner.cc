#include "src/batch/batch_runner.h"

#include <utility>
#include <vector>

#include "src/batch/pack_plan.h"
#include "src/obs/trace.h"
#include "src/support/logging.h"

namespace nimble {
namespace batch {

// The request's trace (stages through unpack stamped) rides along for the
// X-Nimble-Trace echo.
void NotifyComplete(serve::Request& request, runtime::ObjectRef result,
                    std::exception_ptr error) {
  if (!request.on_complete) return;
  try {
    request.on_complete(std::move(result), std::move(error), request.trace);
  } catch (const std::exception& e) {
    NIMBLE_LOG(WARNING) << "request on_complete callback threw: " << e.what();
  } catch (...) {
    NIMBLE_LOG(WARNING) << "request on_complete callback threw";
  }
}

void FinishTrace(obs::Tracer* tracer, serve::Request& request, bool ok) {
  if (!request.trace.enabled) return;
  request.trace.ok = ok;
  request.trace.write_end = obs::SteadyClock::now();
  if (tracer != nullptr) tracer->Commit(request.trace);
}

namespace {

/// VMProfile counters before an invocation, so the per-category times of
/// exactly this invocation can be folded into a trace's exec span (the
/// profile accumulates across every Invoke since the worker's last Reset).
struct ProfileMark {
  int64_t kernel_nanos = 0;
  int64_t shape_func_nanos = 0;
  int64_t total_nanos = 0;
  int64_t instructions = 0;
};

ProfileMark MarkProfile(const vm::VirtualMachine& vm) {
  const vm::VMProfile& p = vm.profile();
  return ProfileMark{p.kernel_nanos, p.shape_func_nanos, p.total_nanos,
                     p.instructions};
}

void FoldProfile(const vm::VirtualMachine& vm, const ProfileMark& before,
                 obs::TraceContext& trace) {
  const vm::VMProfile& p = vm.profile();
  trace.vm.kernel_nanos = p.kernel_nanos - before.kernel_nanos;
  trace.vm.shape_func_nanos = p.shape_func_nanos - before.shape_func_nanos;
  trace.vm.other_nanos =
      (p.total_nanos - before.total_nanos) - trace.vm.kernel_nanos;
  trace.vm.instructions = p.instructions - before.instructions;
}

/// The pre-tensor-batching behavior, verbatim: one Invoke per request, each
/// promise fulfilled with the result or the exception it threw. `on_done`
/// (stats) runs BEFORE the async completion hook: a client that receives
/// its response and immediately queries stats must find its own request
/// already counted.
void RunPerRequest(vm::VirtualMachine& vm, serve::Batch& batch,
                   const RequestDoneFn& on_done) {
  for (serve::Request& request : batch.requests) {
    bool traced = request.trace.enabled;
    ProfileMark mark;
    int64_t alloc_mark = 0;
    if (traced) {
      // No pack/unpack on this path: both spans collapse to zero width at
      // the invocation boundaries.
      auto now = obs::SteadyClock::now();
      request.trace.pack_start = now;
      request.trace.pack_end = now;
      mark = MarkProfile(vm);
      alloc_mark = vm.allocator()->stats().bytes_allocated;
    }
    bool ok = true;
    runtime::ObjectRef result;
    std::exception_ptr error;
    try {
      result = vm.Invoke(request.function, std::move(request.args));
      request.promise.set_value(result);
    } catch (...) {
      ok = false;
      error = std::current_exception();
      request.promise.set_exception(error);
    }
    if (traced) {
      auto now = obs::SteadyClock::now();
      request.trace.exec_end = now;
      request.trace.unpack_end = now;
      FoldProfile(vm, mark, request.trace);
      // No pack/unpack copies on this path; the exec span still reports
      // the invocation's allocator traffic.
      request.trace.alloc_bytes =
          vm.allocator()->stats().bytes_allocated - alloc_mark;
    }
    if (on_done) on_done(request, ok);
    NotifyComplete(request, std::move(result), std::move(error));
    FinishTrace(batch.tracer, request, ok);
  }
}

}  // namespace

BatchRunResult RunBatch(vm::VirtualMachine& vm, serve::Batch& batch,
                        bool tensor_batching, const RequestDoneFn& on_done) {
  BatchRunResult result;
  if (tensor_batching && batch.exec != nullptr) {
    PackCheck check = AnalyzeBatch(*batch.exec, batch.requests);
    if (check.ok()) {
      // Pack, invoke once, unpack. Request args are only read, so a failure
      // anywhere in the try leaves the batch intact for the per-request
      // loop. The try must NOT extend over promise fulfillment: once any
      // promise is set, falling through to RunPerRequest would set it
      // again and throw out of the worker. A variant executable's plan
      // packs to exactly the variant's baked Lmax.
      PackPlan plan = PackPlan::Build(*check.spec, batch.requests,
                                      batch.exec->variant.specialized_len);
      // Pack/exec/unpack stamps are shared by every request of the batch
      // (they ran as one invocation); one clock read per boundary.
      bool traced = !batch.requests.empty() &&
                    batch.requests.front().trace.enabled;
      obs::SteadyClock::time_point pack_start{}, pack_end{}, exec_end{},
          unpack_end{};
      ProfileMark mark;
      int64_t alloc_mark = 0;
      int64_t alloc_delta = 0;
      std::vector<runtime::NDArray> outs;
      bool packed_ok = false;
      try {
        if (traced) {
          pack_start = obs::SteadyClock::now();
          mark = MarkProfile(vm);
          alloc_mark = vm.allocator()->stats().bytes_allocated;
        }
        auto args = plan.PackArgs(batch.requests, vm.allocator());
        if (traced) pack_end = obs::SteadyClock::now();
        auto batched =
            vm.Invoke(check.spec->batched_function, std::move(args));
        if (traced) exec_end = obs::SteadyClock::now();
        outs = plan.Unpack(batched, vm.allocator());
        if (traced) {
          unpack_end = obs::SteadyClock::now();
          alloc_delta = vm.allocator()->stats().bytes_allocated - alloc_mark;
        }
        NIMBLE_CHECK_EQ(outs.size(), batch.requests.size());
        packed_ok = true;
      } catch (const std::exception& e) {
        result.fallback_reason = std::string("packed invocation failed: ") +
                                 e.what();
      } catch (...) {
        result.fallback_reason = "packed invocation failed";
      }
      if (packed_ok) {
        for (size_t i = 0; i < batch.requests.size(); ++i) {
          serve::Request& request = batch.requests[i];
          if (request.trace.enabled) {
            request.trace.packed = true;
            // Which (possibly tuner-measured) dense config served this
            // batch — the variant's baked config when the scheduler stamped
            // a cache variant, the generic executable's otherwise.
            request.trace.dense_config =
                batch.exec->dense_config.ToString() +
                (batch.exec->dense_config_tuned ? "*" : "");
            request.trace.pack_start = pack_start;
            request.trace.pack_end = pack_end;
            request.trace.exec_end = exec_end;
            request.trace.unpack_end = unpack_end;
            FoldProfile(vm, mark, request.trace);
            // The batch's allocator traffic is shared (one invocation);
            // the copied bytes are this request's own pack share plus its
            // unpacked output slice.
            request.trace.alloc_bytes = alloc_delta;
            request.trace.copied_bytes =
                plan.lengths()[i] * check.spec->feature_width *
                    static_cast<int64_t>(sizeof(float)) +
                static_cast<int64_t>(outs[i].nbytes());
          }
          auto result_ref = runtime::MakeTensor(std::move(outs[i]));
          request.promise.set_value(result_ref);
          if (on_done) on_done(request, /*ok=*/true);
          NotifyComplete(request, std::move(result_ref), nullptr);
          FinishTrace(batch.tracer, request, /*ok=*/true);
        }
        result.packed = true;
        result.padded_elements = plan.padded_elements();
        result.total_elements = plan.total_elements();
        return result;
      }
    } else {
      result.fallback_reason = std::move(check.reason);
    }
  }
  RunPerRequest(vm, batch, on_done);
  return result;
}

}  // namespace batch
}  // namespace nimble
