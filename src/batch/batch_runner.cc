#include "src/batch/batch_runner.h"

#include <utility>
#include <vector>

#include "src/batch/pack_plan.h"
#include "src/support/logging.h"

namespace nimble {
namespace batch {

namespace {

/// Invokes the request's asynchronous completion hook, if any. Runs after
/// the promise is fulfilled, on the worker thread. The hook's contract says
/// it must not throw; a violation is contained here (logged, swallowed) so
/// a broken callback cannot take the worker thread down with it.
void NotifyComplete(serve::Request& request, runtime::ObjectRef result,
                    std::exception_ptr error) {
  if (!request.on_complete) return;
  try {
    request.on_complete(std::move(result), std::move(error));
  } catch (const std::exception& e) {
    NIMBLE_LOG(WARNING) << "request on_complete callback threw: " << e.what();
  } catch (...) {
    NIMBLE_LOG(WARNING) << "request on_complete callback threw";
  }
}

/// The pre-tensor-batching behavior, verbatim: one Invoke per request, each
/// promise fulfilled with the result or the exception it threw. `on_done`
/// (stats) runs BEFORE the async completion hook: a client that receives
/// its response and immediately queries stats must find its own request
/// already counted.
void RunPerRequest(vm::VirtualMachine& vm, serve::Batch& batch,
                   const RequestDoneFn& on_done) {
  for (serve::Request& request : batch.requests) {
    bool ok = true;
    runtime::ObjectRef result;
    std::exception_ptr error;
    try {
      result = vm.Invoke(request.function, std::move(request.args));
      request.promise.set_value(result);
    } catch (...) {
      ok = false;
      error = std::current_exception();
      request.promise.set_exception(error);
    }
    if (on_done) on_done(request, ok);
    NotifyComplete(request, std::move(result), std::move(error));
  }
}

}  // namespace

BatchRunResult RunBatch(vm::VirtualMachine& vm, serve::Batch& batch,
                        bool tensor_batching, const RequestDoneFn& on_done) {
  BatchRunResult result;
  if (tensor_batching && batch.exec != nullptr) {
    PackCheck check = AnalyzeBatch(*batch.exec, batch.requests);
    if (check.ok()) {
      // Pack, invoke once, unpack. Request args are only read, so a failure
      // anywhere in the try leaves the batch intact for the per-request
      // loop. The try must NOT extend over promise fulfillment: once any
      // promise is set, falling through to RunPerRequest would set it
      // again and throw out of the worker. A variant executable's plan
      // packs to exactly the variant's baked Lmax.
      PackPlan plan = PackPlan::Build(*check.spec, batch.requests,
                                      batch.exec->variant.specialized_len);
      std::vector<runtime::NDArray> outs;
      bool packed_ok = false;
      try {
        auto args = plan.PackArgs(batch.requests, vm.allocator());
        auto batched =
            vm.Invoke(check.spec->batched_function, std::move(args));
        outs = plan.Unpack(batched, vm.allocator());
        NIMBLE_CHECK_EQ(outs.size(), batch.requests.size());
        packed_ok = true;
      } catch (const std::exception& e) {
        result.fallback_reason = std::string("packed invocation failed: ") +
                                 e.what();
      } catch (...) {
        result.fallback_reason = "packed invocation failed";
      }
      if (packed_ok) {
        for (size_t i = 0; i < batch.requests.size(); ++i) {
          auto result = runtime::MakeTensor(std::move(outs[i]));
          batch.requests[i].promise.set_value(result);
          if (on_done) on_done(batch.requests[i], /*ok=*/true);
          NotifyComplete(batch.requests[i], std::move(result), nullptr);
        }
        result.packed = true;
        result.padded_elements = plan.padded_elements();
        result.total_elements = plan.total_elements();
        return result;
      }
    } else {
      result.fallback_reason = std::move(check.reason);
    }
  }
  RunPerRequest(vm, batch, on_done);
  return result;
}

}  // namespace batch
}  // namespace nimble
