#include "src/batch/batch_runner.h"

#include <utility>
#include <vector>

#include "src/batch/pack_plan.h"
#include "src/support/logging.h"

namespace nimble {
namespace batch {

namespace {

/// The pre-tensor-batching behavior, verbatim: one Invoke per request, each
/// promise fulfilled with the result or the exception it threw.
void RunPerRequest(vm::VirtualMachine& vm, serve::Batch& batch,
                   const RequestDoneFn& on_done) {
  for (serve::Request& request : batch.requests) {
    bool ok = true;
    try {
      auto result = vm.Invoke(request.function, std::move(request.args));
      request.promise.set_value(std::move(result));
    } catch (...) {
      ok = false;
      request.promise.set_exception(std::current_exception());
    }
    if (on_done) on_done(request, ok);
  }
}

}  // namespace

BatchRunResult RunBatch(vm::VirtualMachine& vm, serve::Batch& batch,
                        bool tensor_batching, const RequestDoneFn& on_done) {
  BatchRunResult result;
  if (tensor_batching && batch.exec != nullptr) {
    PackCheck check = AnalyzeBatch(*batch.exec, batch.requests);
    if (check.ok()) {
      // Pack, invoke once, unpack. Request args are only read, so a failure
      // anywhere in the try leaves the batch intact for the per-request
      // loop. The try must NOT extend over promise fulfillment: once any
      // promise is set, falling through to RunPerRequest would set it
      // again and throw out of the worker. A variant executable's plan
      // packs to exactly the variant's baked Lmax.
      PackPlan plan = PackPlan::Build(*check.spec, batch.requests,
                                      batch.exec->variant.specialized_len);
      std::vector<runtime::NDArray> outs;
      bool packed_ok = false;
      try {
        auto args = plan.PackArgs(batch.requests, vm.allocator());
        auto batched =
            vm.Invoke(check.spec->batched_function, std::move(args));
        outs = plan.Unpack(batched, vm.allocator());
        NIMBLE_CHECK_EQ(outs.size(), batch.requests.size());
        packed_ok = true;
      } catch (const std::exception& e) {
        result.fallback_reason = std::string("packed invocation failed: ") +
                                 e.what();
      } catch (...) {
        result.fallback_reason = "packed invocation failed";
      }
      if (packed_ok) {
        for (size_t i = 0; i < batch.requests.size(); ++i) {
          batch.requests[i].promise.set_value(
              runtime::MakeTensor(std::move(outs[i])));
          if (on_done) on_done(batch.requests[i], /*ok=*/true);
        }
        result.packed = true;
        result.padded_elements = plan.padded_elements();
        result.total_elements = plan.total_elements();
        return result;
      }
    } else {
      result.fallback_reason = std::move(check.reason);
    }
  }
  RunPerRequest(vm, batch, on_done);
  return result;
}

}  // namespace batch
}  // namespace nimble
