// BatchRunner: execute a serve::Batch on a VM, packed when possible.
//
// The layer between the batch scheduler and the VM. With tensor batching
// enabled, a batch that passes AnalyzeBatch runs as ONE invocation of the
// executable's batched entry point (pad, pack, invoke, unpack — see
// pack_plan.h); anything else falls back to the per-request Invoke loop the
// pool ran before this subsystem existed. Fallback is per batch and
// automatic — a model without a batched entry, a malformed argument, or a
// throwing packed invocation all degrade to the sequential path, never to
// an error for the whole batch.
//
// Promise discipline: RunBatch fulfills every request's promise exactly
// once (value or exception) and calls `on_done(request, ok)` right after
// each fulfillment so the caller can record stats; on the packed path all
// requests complete together. Packing never moves request arguments, which
// is what makes the fall-through after a packed failure safe.
#pragma once

#include <exception>
#include <functional>
#include <string>

#include "src/obs/trace.h"
#include "src/serve/request.h"
#include "src/vm/vm.h"

namespace nimble {
namespace batch {

struct BatchRunResult {
  /// True when the batch executed as one packed invocation.
  bool packed = false;
  /// Why a tensor-batching attempt fell back (empty when packed or when
  /// tensor batching was not requested).
  std::string fallback_reason;
  /// Padding-overhead accounting of the packed input (zero when not packed):
  /// padded zero elements vs total packed elements.
  int64_t padded_elements = 0;
  int64_t total_elements = 0;
};

using RequestDoneFn =
    std::function<void(const serve::Request& request, bool ok)>;

/// Invokes the request's asynchronous completion hook, if any. Runs after
/// the promise is fulfilled, on the worker thread. The hook's contract says
/// it must not throw; a violation is contained here (logged, swallowed) so
/// a broken callback cannot take the worker thread down with it. Shared by
/// the batch path here and the continuous slot-map runner
/// (step_runner.cc) — both must finish requests with the same discipline.
void NotifyComplete(serve::Request& request, runtime::ObjectRef result,
                    std::exception_ptr error);

/// Closes the trace (the write span covers serialization inside the
/// completion hook plus the handoff to the event loop) and commits it.
/// Must run AFTER NotifyComplete, last thing per request. `tracer` may be
/// null (trace still closed, just not committed).
void FinishTrace(obs::Tracer* tracer, serve::Request& request, bool ok);

/// Runs every request of `batch` on `vm` (which must already be bound to
/// `batch.exec`), fulfilling all promises. `tensor_batching` requests the
/// packed path; `on_done` may be null.
BatchRunResult RunBatch(vm::VirtualMachine& vm, serve::Batch& batch,
                        bool tensor_batching, const RequestDoneFn& on_done);

}  // namespace batch
}  // namespace nimble
