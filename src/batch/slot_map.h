// SlotMap: the persistent batch of continuous (iteration-level) batching.
//
// Classic packed batching (pack_plan.h) admits a group of requests, runs
// them to the longest member's length, and only then admits the next group:
// short requests wait for long ones, and the padded rows beyond each
// request's true length are pure waste. Continuous batching replaces the
// group with a persistent map of B slots over which the step runner
// (step_runner.h) executes ONE recurrence step at a time. Each slot holds
// one in-flight request; a slot RETIRES the step its request's row reaches
// its own length (the result row is emitted immediately), and a queued
// request SPLICES into a free slot at the next step boundary. No slot ever
// waits for another, so structural padding is zero by construction — the
// only waste is idle slots when fewer than B requests are in flight, which
// is accounted separately (ServeStats::RecordStep).
//
// The SlotMap itself is the bookkeeping state machine: which slot holds
// which request, how far along each row is, and the admission order. It
// enforces the lifecycle invariants with NIMBLE_CHECK — splicing into an
// occupied slot, retiring a free slot (double-retire), or destroying a map
// with live slots is a serving-layer bug, never a recoverable condition.
// Admission order is recorded per splice (`admit_seq`, a monotonic counter)
// so tests can assert FIFO admission against arrival order.
//
// Thread-safety: none. A SlotMap belongs to exactly one StepRunner thread.
#pragma once

#include <cstdint>
#include <vector>

#include "src/serve/request.h"

namespace nimble {
namespace batch {

class SlotMap {
 public:
  struct Slot {
    /// The in-flight request (moved in at splice, moved out at retire).
    serve::Request request;
    /// True sequence length of the request's row (validated at splice).
    int64_t length = 0;
    /// Next timestep to feed, in [0, length]. The runner advances this
    /// after each step; the slot is finished when pos == length.
    int64_t pos = 0;
    /// Monotonic admission number stamped at splice (FIFO evidence);
    /// starts at 1, so 0 always means "never admitted".
    uint64_t admit_seq = 0;
    bool occupied = false;
  };

  /// Lifetime counters, exposed for stats and the test harness.
  struct Counters {
    uint64_t splices = 0;
    uint64_t retires = 0;
    int64_t max_occupancy = 0;
  };

  explicit SlotMap(int64_t num_slots);
  /// A map must be drained (every splice retired) before it dies; a live
  /// slot here means a request's promise would silently never resolve.
  ~SlotMap();

  SlotMap(const SlotMap&) = delete;
  SlotMap& operator=(const SlotMap&) = delete;

  /// Moves `request` into the lowest-numbered free slot and returns its
  /// index. CHECK-fails when Full() — callers gate on Full() first.
  int64_t Splice(serve::Request request, int64_t length);

  /// Empties `slot` and returns its request. CHECK-fails when the slot is
  /// free (double-retire) — a slot retires exactly once per splice.
  serve::Request Retire(int64_t slot);

  /// The slot's live state; CHECK-fails when the slot is free.
  Slot& At(int64_t slot);
  const Slot& At(int64_t slot) const;

  int64_t num_slots() const { return static_cast<int64_t>(slots_.size()); }
  int64_t occupied() const { return occupied_; }
  bool Full() const { return occupied_ == num_slots(); }
  bool Empty() const { return occupied_ == 0; }
  bool IsOccupied(int64_t slot) const;
  const Counters& counters() const { return counters_; }

 private:
  std::vector<Slot> slots_;
  int64_t occupied_ = 0;
  uint64_t next_admit_seq_ = 1;  // 0 is the "never admitted" sentinel
  Counters counters_;
};

}  // namespace batch
}  // namespace nimble
