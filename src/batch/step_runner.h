// StepRunner: the continuous (iteration-level) batching execution loop.
//
// Classic serving (BatchScheduler + VMPool) batches whole requests: a group
// is admitted together, padded to its longest member, and the batch holds
// its workers until every row finishes. This runner replaces that with a
// persistent batch — a SlotMap of B rows over which it drives the model's
// single-step twin (vm::BatchedEntrySpec::step_function) one recurrence
// step per iteration:
//
//   loop:
//     splice   queued requests into free slots (FIFO, at this step
//              boundary only; the slot's state rows are zeroed — a spliced
//              row starts from exactly the solo initial state)
//     step     gather each live slot's next input row into x_t, invoke
//              step_function once over all B rows, adopt the returned
//              states as next step's inputs
//     retire   every slot whose row just reached its own length: slice its
//              result row out of the result state, fulfil the promise,
//              run the completion hook, commit the trace — immediately,
//              not when the rest of the batch finishes
//
// Bit-identity: the step twin freezes inactive rows exactly (`where` on the
// active mask) and the repo's kernels compute rows independently in the
// same per-row order for any row count, so by induction over steps a
// request's row goes through the identical arithmetic sequence whether it
// ran solo, in a batch that opened and closed together, or spliced into
// the middle of a long-running batch. tests/sched_harness.cc drives
// thousands of randomized arrival/length schedules asserting exactly this
// (bitwise, against the sequential path) plus the slot-map invariants.
//
// Padding: zero by construction — no slot is ever padded to another slot's
// length. Every step still computes all B rows, so an idle slot (fewer
// live requests than slots) wastes its row's compute; that is reported
// honestly as its own metric (ServeStats::RecordStep ->
// continuous_idle_row_steps), never folded into the padding counters.
//
// Threading: one runner owns one thread, one VM, one SlotMap. It pops its
// model's RequestQueue directly (the queue stays the admission/backpressure
// boundary: TrySubmit still sheds with 429 upstream); a Server with
// continuous models never routes them through the BatchScheduler.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/batch/slot_map.h"
#include "src/obs/step_journal.h"
#include "src/obs/trace.h"
#include "src/runtime/allocator.h"
#include "src/runtime/ndarray.h"
#include "src/serve/channel.h"
#include "src/serve/request.h"
#include "src/serve/stats.h"
#include "src/vm/executable.h"
#include "src/vm/vm.h"

namespace nimble {
namespace batch {

/// Outcome of AnalyzeContinuous: `spec != nullptr` means the executable can
/// serve `function` continuously; otherwise `reason` names the first
/// registration rule that fired.
struct ContinuousCheck {
  const vm::BatchedEntrySpec* spec = nullptr;
  std::string reason;
  bool ok() const { return spec != nullptr; }
};

/// Decides whether `exec` can serve entry `function` with a persistent
/// batch of `num_slots` rows. Requires a time-major batched spec carrying a
/// step twin, a generic (non-variant) executable, recurrent state to carry
/// (num_state_args >= 1, result_state in range), and — the bit-identity
/// gate mirroring AnalyzeBatch — dense dispatch coverage that routes both
/// row counts this path sees (num_slots on every step, 1 on the sequential
/// reference) to one kernel family: full, empty, or covering exactly those
/// two residues.
ContinuousCheck AnalyzeContinuous(const vm::Executable& exec,
                                  const std::string& function,
                                  int64_t num_slots);

class StepRunner {
 public:
  /// `exec` must pass AnalyzeContinuous for `function` and `num_slots`
  /// (CHECKed). `queue` is the model's request queue; the runner drains it
  /// until Close()d and empty. `model_stats`/`aggregate_stats`/`tracer`/
  /// `journal` may be null. Constructs the VM on the caller's thread (the
  /// VM constructor populates the process kernel registries, which must
  /// happen before worker threads run); call Start() to begin serving.
  StepRunner(std::shared_ptr<vm::Executable> exec, std::string function,
             int64_t num_slots, serve::Channel<serve::Request>* queue,
             serve::ServeStats* model_stats,
             serve::ServeStats* aggregate_stats, obs::Tracer* tracer,
             obs::StepJournal* journal = nullptr);

  /// Joins (the queue must already be closed) and releases the leased
  /// allocator.
  ~StepRunner();

  StepRunner(const StepRunner&) = delete;
  StepRunner& operator=(const StepRunner&) = delete;

  /// Starts the runner thread. Call exactly once.
  void Start();

  /// Waits for the runner to exit: every admitted request retired, queue
  /// closed and drained. Idempotent.
  void Join();

  int64_t num_slots() const { return num_slots_; }
  /// Requests retired (completed or failed) so far. Thread-safe, relaxed.
  int64_t requests_completed() const {
    return requests_completed_.load(std::memory_order_relaxed);
  }

  // Health published for the stall watchdog (obs::RunnerHealth). All
  // thread-safe, relaxed: the watchdog tolerates a stale read — it only
  // declares a stall after a multi-hundred-millisecond deadline.
  /// Slots currently holding live requests.
  int64_t live_rows() const {
    return live_rows_.load(std::memory_order_relaxed);
  }
  /// Step-twin invocations completed (including failed steps: a throwing
  /// step is still forward progress, not a wedge).
  int64_t steps_completed() const {
    return steps_completed_.load(std::memory_order_relaxed);
  }
  /// Steady-clock nanos of the last completed step or splice; 0 until the
  /// runner first makes progress.
  int64_t last_progress_ns() const {
    return last_progress_ns_.load(std::memory_order_relaxed);
  }

  /// The runner's leased allocator (never null), for per-model memory
  /// scopes (serve::Server::MemoryScopes / GET /debug/memory). Its stats()
  /// are safe to sample from any thread.
  runtime::PoolingAllocator* allocator() const { return allocator_; }

 private:
  void Loop();
  /// Validates and splices one request, or fails it in place (malformed
  /// arguments reject with an exception through the normal completion
  /// sequence — never into a slot).
  void Admit(SlotMap& slots, serve::Request request);
  /// One step over all slots: gather, invoke, adopt states, retire
  /// finished rows.
  void RunStep(SlotMap& slots);
  /// Fails every live slot with `error` (a thrown step poisons all
  /// in-flight states; fresh requests are unaffected).
  void FailAll(SlotMap& slots, std::exception_ptr error);
  void Complete(serve::Request request, runtime::ObjectRef result,
                std::exception_ptr error);

  std::shared_ptr<vm::Executable> exec_;
  const vm::BatchedEntrySpec* spec_;  // points into *exec_
  std::string function_;
  int64_t num_slots_;
  serve::Channel<serve::Request>* queue_;
  serve::ServeStats* model_stats_;
  serve::ServeStats* aggregate_stats_;
  obs::Tracer* tracer_;
  obs::StepJournal* journal_;
  /// Journal event accumulation is skipped entirely when false (journal
  /// null or disabled) — the journal-off half of the overhead A/B.
  bool journal_on_;
  runtime::PoolingAllocator* allocator_;  // leased, never null
  std::unique_ptr<vm::VirtualMachine> vm_;
  /// Persistent step arguments, reused across invocations: x_t [B, D],
  /// active [B, 1] i64, then num_state_args states [B, W]. States are
  /// replaced by each invocation's returned tensors (freshly allocated by
  /// the VM, so mutating rows between invocations aliases nothing).
  runtime::NDArray x_t_;
  runtime::NDArray active_;
  std::vector<runtime::NDArray> states_;
  /// Step sequence number, 0-based: splices at the boundary before step s
  /// carry splice_step = s; a row whose final step is s retires with
  /// retire_step = s, so retire_step - splice_step + 1 == length.
  /// Runner-thread only.
  int64_t step_seq_ = 0;
  /// Splice/retire events accumulated since the last journal push (splices
  /// in Admit, retires in RunStep/FailAll); moved into one StepRecord per
  /// step. Runner-thread only; unused when !journal_on_.
  std::vector<obs::StepEvent> pending_events_;
  /// Per-slot VM-profile accumulation across a tenancy: each live slot is
  /// attributed the full step delta (the same every-request-gets-the-batch
  /// semantics as the packed path), zeroed at splice, stamped into the
  /// retiring request's trace. Runner-thread only.
  std::vector<obs::ExecProfile> slot_profiles_;
  /// Per-slot memory attribution across a tenancy, same discipline as
  /// slot_profiles_: copied bytes are the row's own gather/retire traffic,
  /// alloc bytes the shared per-step allocator delta (profiling on only).
  /// Zeroed at splice, stamped into the retiring request's trace.
  /// Runner-thread only.
  std::vector<int64_t> slot_copied_bytes_;
  std::vector<int64_t> slot_alloc_bytes_;
  std::atomic<int64_t> requests_completed_{0};
  std::atomic<int64_t> live_rows_{0};
  std::atomic<int64_t> steps_completed_{0};
  std::atomic<int64_t> last_progress_ns_{0};
  std::thread thread_;
  bool joined_ = false;
};

}  // namespace batch
}  // namespace nimble
