#include "src/batch/slot_map.h"

#include <algorithm>
#include <utility>

#include "src/support/logging.h"

namespace nimble {
namespace batch {

SlotMap::SlotMap(int64_t num_slots) {
  NIMBLE_CHECK_GE(num_slots, 1) << "SlotMap needs at least one slot";
  slots_.resize(static_cast<size_t>(num_slots));
}

SlotMap::~SlotMap() {
  // Not NIMBLE_CHECK: a destructor must not throw during unwinding. The
  // runner CHECKs the same condition on its clean exit path; this log only
  // fires when teardown is already abnormal.
  if (occupied_ != 0) {
    NIMBLE_LOG(ERROR) << "SlotMap destroyed with " << occupied_
                      << " live slot(s); their requests never resolved";
  }
}

int64_t SlotMap::Splice(serve::Request request, int64_t length) {
  NIMBLE_CHECK(!Full()) << "Splice into a full slot map";
  NIMBLE_CHECK_GE(length, 1) << "spliced request must have length >= 1";
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.occupied) continue;
    slot.request = std::move(request);
    slot.length = length;
    slot.pos = 0;
    slot.admit_seq = next_admit_seq_++;
    slot.occupied = true;
    ++occupied_;
    ++counters_.splices;
    counters_.max_occupancy = std::max(counters_.max_occupancy, occupied_);
    return static_cast<int64_t>(i);
  }
  NIMBLE_FATAL() << "SlotMap occupancy count out of sync with slots";
  return -1;  // unreachable
}

serve::Request SlotMap::Retire(int64_t slot) {
  Slot& s = At(slot);  // CHECKs occupancy: a second retire dies here
  serve::Request request = std::move(s.request);
  s = Slot{};  // reset length/pos/admit_seq so stale state cannot leak
  --occupied_;
  ++counters_.retires;
  return request;
}

SlotMap::Slot& SlotMap::At(int64_t slot) {
  NIMBLE_CHECK(slot >= 0 && slot < num_slots())
      << "slot " << slot << " outside [0, " << num_slots() << ")";
  Slot& s = slots_[static_cast<size_t>(slot)];
  NIMBLE_CHECK(s.occupied) << "slot " << slot << " is not occupied";
  return s;
}

const SlotMap::Slot& SlotMap::At(int64_t slot) const {
  return const_cast<SlotMap*>(this)->At(slot);
}

bool SlotMap::IsOccupied(int64_t slot) const {
  NIMBLE_CHECK(slot >= 0 && slot < num_slots())
      << "slot " << slot << " outside [0, " << num_slots() << ")";
  return slots_[static_cast<size_t>(slot)].occupied;
}

}  // namespace batch
}  // namespace nimble
