#include "src/batch/step_runner.h"

#include <cstring>
#include <sstream>
#include <utility>

#include "src/batch/batch_runner.h"
#include "src/batch/pack_plan.h"
#include "src/obs/memory.h"
#include "src/serve/vm_pool.h"
#include "src/support/logging.h"

namespace nimble {
namespace batch {

using runtime::DataType;
using runtime::NDArray;
using runtime::ObjectRef;

namespace {

/// VMProfile counters before an invocation, so exactly this step's
/// per-category times can be folded into the journal record and the
/// per-slot accumulators (same pattern as batch_runner.cc).
struct ProfileMark {
  int64_t kernel_nanos = 0;
  int64_t shape_func_nanos = 0;
  int64_t total_nanos = 0;
  int64_t instructions = 0;
};

ProfileMark MarkProfile(const vm::VirtualMachine& vm) {
  const vm::VMProfile& p = vm.profile();
  return ProfileMark{p.kernel_nanos, p.shape_func_nanos, p.total_nanos,
                     p.instructions};
}

}  // namespace

ContinuousCheck AnalyzeContinuous(const vm::Executable& exec,
                                  const std::string& function,
                                  int64_t num_slots) {
  ContinuousCheck check;
  if (num_slots < 1) {
    check.reason = "continuous serving needs at least one slot";
    return check;
  }
  const vm::BatchedEntrySpec* spec = exec.FindBatched(function);
  if (spec == nullptr) {
    check.reason = "no batched entry for '" + function + "'";
    return check;
  }
  if (spec->layout != vm::BatchedEntrySpec::Layout::kTimeMajor) {
    check.reason = "continuous serving requires the time-major layout";
    return check;
  }
  if (spec->step_function.empty()) {
    check.reason = "model emits no step twin (BatchedEntrySpec::step_function)";
    return check;
  }
  if (spec->num_state_args < 1 || spec->state_width < 1 ||
      spec->feature_width < 1) {
    check.reason = "step twin needs recurrent state and a feature width";
    return check;
  }
  if (spec->result_state < 0 || spec->result_state >= spec->num_state_args) {
    std::ostringstream why;
    why << "result_state " << spec->result_state << " outside [0, "
        << spec->num_state_args << ")";
    check.reason = why.str();
    return check;
  }
  if (exec.variant.is_variant()) {
    // A variant bakes one (Lmax, B) shape; the persistent batch has no
    // Lmax at all. Continuous models run the generic executable only.
    check.reason = "continuous serving requires the generic executable, "
                   "not a length-specialized variant";
    return check;
  }
  // Bit-identity gate, mirroring AnalyzeBatch: every dense call of the step
  // twin runs on [num_slots, *] activations and the sequential reference
  // runs on [1, *]; both row counts must route to one kernel family.
  int variants = exec.dispatch_table.num_variants();
  bool full_or_empty = variants == codegen::kTileRows || variants == 1;
  int step_residue =
      static_cast<int>(num_slots % static_cast<int64_t>(codegen::kTileRows));
  if (!full_or_empty && !(exec.dispatch_table.Covers(step_residue) &&
                          exec.dispatch_table.Covers(1 % codegen::kTileRows))) {
    std::ostringstream why;
    why << "dense dispatch coverage (mask=0x" << std::hex
        << exec.dispatch_table.residue_mask() << std::dec
        << ") does not cover " << num_slots
        << "-slot steps; mixing kernel families breaks per-row bit-identity";
    check.reason = why.str();
    return check;
  }
  check.spec = spec;
  return check;
}

StepRunner::StepRunner(std::shared_ptr<vm::Executable> exec,
                       std::string function, int64_t num_slots,
                       serve::Channel<serve::Request>* queue,
                       serve::ServeStats* model_stats,
                       serve::ServeStats* aggregate_stats, obs::Tracer* tracer,
                       obs::StepJournal* journal)
    : exec_(std::move(exec)),
      function_(std::move(function)),
      num_slots_(num_slots),
      queue_(queue),
      model_stats_(model_stats),
      aggregate_stats_(aggregate_stats),
      tracer_(tracer),
      journal_(journal),
      journal_on_(journal != nullptr && journal->enabled()) {
  NIMBLE_CHECK(exec_ != nullptr);
  NIMBLE_CHECK(queue_ != nullptr);
  ContinuousCheck check = AnalyzeContinuous(*exec_, function_, num_slots_);
  NIMBLE_CHECK(check.ok()) << "StepRunner on an ineligible executable: "
                           << check.reason;
  spec_ = check.spec;
  allocator_ = serve::LeaseWorkerAllocator();
  vm_ = std::make_unique<vm::VirtualMachine>(exec_, allocator_);
  // Per-category VM timing feeds both the per-request exec-span fold and
  // the journal's per-step profile; off when neither consumer is on (the
  // obs-off half of the overhead A/B pays for no timers).
  vm_->EnableProfiling((tracer_ != nullptr && tracer_->enabled()) ||
                       journal_on_);
  slot_profiles_.resize(static_cast<size_t>(num_slots_));
  slot_copied_bytes_.resize(static_cast<size_t>(num_slots_), 0);
  slot_alloc_bytes_.resize(static_cast<size_t>(num_slots_), 0);
  // Persistent step arguments. Zero-filled: idle rows stay all-zero until a
  // splice claims them, so the very first step reads defined memory.
  auto zeros = [this](runtime::ShapeVec shape, DataType dtype) {
    NDArray arr = NDArray::Empty(std::move(shape), dtype,
                                 runtime::Device::CPU(), allocator_);
    std::memset(arr.raw_data(), 0, arr.nbytes());
    return arr;
  };
  x_t_ = zeros({num_slots_, spec_->feature_width}, DataType::Float32());
  active_ = zeros({num_slots_, 1}, DataType::Int64());
  states_.reserve(static_cast<size_t>(spec_->num_state_args));
  for (int32_t s = 0; s < spec_->num_state_args; ++s) {
    states_.push_back(zeros({num_slots_, spec_->state_width},
                            DataType::Float32()));
  }
}

StepRunner::~StepRunner() {
  Join();
  // Step arguments hold this allocator's buffers; drop them before the
  // allocator goes back to the registry. Retired result rows handed to
  // clients keep it alive on their own (see vm_pool.h).
  x_t_ = NDArray();
  active_ = NDArray();
  states_.clear();
  vm_.reset();
  serve::ReleaseWorkerAllocator(allocator_);
}

void StepRunner::Start() {
  NIMBLE_CHECK(!thread_.joinable()) << "StepRunner started twice";
  thread_ = std::thread([this] { Loop(); });
}

void StepRunner::Join() {
  if (joined_) return;
  if (thread_.joinable()) thread_.join();
  joined_ = true;
}

void StepRunner::Loop() {
  SlotMap slots(num_slots_);
  while (true) {
    // Admission, at step boundaries only. An empty slot map blocks on the
    // queue (no requests -> no spinning); otherwise drain without waiting —
    // in-flight rows must keep stepping while the queue is quiet.
    if (slots.Empty()) {
      std::optional<serve::Request> request = queue_->Pop();
      if (!request.has_value()) break;  // queue closed and fully drained
      Admit(slots, std::move(*request));
    }
    while (!slots.Full()) {
      std::optional<serve::Request> request = queue_->TryPop();
      if (!request.has_value()) break;
      Admit(slots, std::move(*request));
    }
    if (slots.Empty()) continue;  // every admitted request was rejected
    RunStep(slots);
  }
  // The loop only falls out when the queue is closed+drained AND the map is
  // empty; a live slot here would be a leaked request.
  NIMBLE_CHECK(slots.Empty()) << "StepRunner exiting with live slots";
}

void StepRunner::Admit(SlotMap& slots, serve::Request request) {
  std::string reason;
  const NDArray* seq = SeqTensor(*spec_, request, &reason);
  int64_t length =
      seq != nullptr ? SeqLength(*spec_, request, *seq, &reason) : -1;
  // Splice time is this request's dispatch: queue wait ends here, exec
  // starts here — even though it shares every following step invocation
  // with its slot-mates.
  auto now = serve::Clock::now();
  request.dispatch_time = now;
  if (request.trace.enabled) {
    request.trace.sched = now;
    request.trace.dispatch = now;
    // No packed tensor is built on this path; the pack span collapses to
    // zero width at the splice boundary, and `packed` stays false — the
    // request shares steps via slot residency, not a padded gather (the
    // stats side agrees: packed_batches is 0 on this path).
    request.trace.pack_start = now;
    request.trace.pack_end = now;
    request.trace.packed = false;
  }
  if (length < 0) {
    Complete(std::move(request), nullptr,
             std::make_exception_ptr(
                 Error("continuous admission rejected: " + reason)));
    return;
  }
  // Queued-behind-splice wait: enqueue -> this splice. This is exactly the
  // trace's queue span (dispatch was stamped above).
  double wait_us =
      now > request.enqueue_time
          ? std::chrono::duration<double, std::micro>(now -
                                                      request.enqueue_time)
                .count()
          : 0.0;
  int64_t id = request.id;
  int64_t slot = slots.Splice(std::move(request), length);
  // Zero the slot's state rows: a spliced row starts from exactly the solo
  // initial state (the previous tenant's final values must not leak into
  // the new request's arithmetic). The returned state tensors are the VM's
  // freshly-allocated outputs that only this runner still reads, so the
  // in-place row write aliases nothing.
  for (NDArray& state : states_) {
    std::memset(state.data<float>() + slot * spec_->state_width, 0,
                static_cast<size_t>(spec_->state_width) * sizeof(float));
  }
  // Step-level trace detail: the slot this request occupies and the step
  // seq its first computed step will carry (the next RunStep).
  obs::TraceContext& trace = slots.At(slot).request.trace;
  if (trace.enabled) {
    trace.continuous = true;
    trace.slot = slot;
    trace.splice_step = step_seq_;
  }
  slot_profiles_[static_cast<size_t>(slot)] = obs::ExecProfile{};
  slot_copied_bytes_[static_cast<size_t>(slot)] = 0;
  slot_alloc_bytes_[static_cast<size_t>(slot)] = 0;
  if (journal_on_) {
    pending_events_.push_back(obs::StepEvent{obs::StepEvent::Kind::kSplice,
                                             id, slot, length});
  }
  live_rows_.store(slots.occupied(), std::memory_order_relaxed);
  last_progress_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          obs::SteadyClock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  if (model_stats_ != nullptr) model_stats_->RecordSplice(wait_us);
  if (aggregate_stats_ != nullptr) aggregate_stats_->RecordSplice(wait_us);
}

void StepRunner::RunStep(SlotMap& slots) {
  const auto step_start = obs::SteadyClock::now();
  const int64_t B = num_slots_;
  const int64_t D = spec_->feature_width;
  const int64_t W = spec_->state_width;
  float* xp = x_t_.data<float>();
  int64_t* ap = active_.data<int64_t>();
  for (int64_t i = 0; i < B; ++i) {
    if (slots.IsOccupied(i)) {
      const SlotMap::Slot& slot = slots.At(i);
      const NDArray& seq = runtime::AsTensor(
          slot.request.args[static_cast<size_t>(spec_->seq_arg)]);
      std::memcpy(xp + i * D, seq.data<float>() + slot.pos * D,
                  static_cast<size_t>(D) * sizeof(float));
      slot_copied_bytes_[static_cast<size_t>(i)] +=
          D * static_cast<int64_t>(sizeof(float));
      ap[i] = 1;
    } else {
      // Idle rows compute on zeros: deterministic garbage the `where`
      // freeze discards, and no stale tenant data survives a retire.
      std::memset(xp + i * D, 0, static_cast<size_t>(D) * sizeof(float));
      ap[i] = 0;
    }
  }
  int64_t occupied = slots.occupied();
  if (occupied > 0) {
    // One ledger add per gather pass (not per row): the step-state copy
    // site must stay inside the hot loop's overhead budget.
    obs::RecordCopy(obs::CopySite::kStepState,
                    occupied * D * static_cast<int64_t>(sizeof(float)));
  }

  std::vector<ObjectRef> args;
  args.reserve(2 + states_.size());
  args.push_back(runtime::MakeTensor(x_t_));
  args.push_back(runtime::MakeTensor(active_));
  for (const NDArray& state : states_) {
    args.push_back(runtime::MakeTensor(state));
  }
  const bool profiling = (tracer_ != nullptr && tracer_->enabled()) ||
                         journal_on_;
  ProfileMark mark;
  int64_t alloc_mark = 0;
  if (profiling) {
    mark = MarkProfile(*vm_);
    alloc_mark = allocator_->stats().bytes_allocated;
  }

  auto progress = [this](obs::SteadyClock::time_point now) {
    steps_completed_.fetch_add(1, std::memory_order_relaxed);
    last_progress_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  };
  auto push_record = [&](obs::SteadyClock::time_point end, bool ok,
                         const obs::ExecProfile& vm_delta) {
    if (!journal_on_) return;
    obs::StepRecord record;
    record.step = step_seq_;
    record.start = step_start;
    record.duration_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             end - step_start)
                             .count();
    record.active_rows = occupied;
    record.num_slots = B;
    record.ok = ok;
    record.events = std::move(pending_events_);
    pending_events_.clear();
    record.vm = vm_delta;
    journal_->Push(std::move(record));
  };

  ObjectRef result;
  try {
    result = vm_->Invoke(spec_->step_function, std::move(args));
  } catch (...) {
    // The step poisoned every in-flight row's state at once; fail them all
    // and keep serving — the next splice zeroes its rows regardless. A
    // throwing step is still forward progress for the watchdog (the runner
    // is serving errors, not wedged), and still a journal record: its
    // retire events keep splices and retires balanced.
    FailAll(slots, std::current_exception());
    auto now = obs::SteadyClock::now();
    push_record(now, /*ok=*/false, obs::ExecProfile{});
    progress(now);
    step_seq_++;
    return;
  }

  // Fold this invocation's VM-profile delta: the journal records it per
  // step; each live slot accumulates it for the retiring request's trace
  // (every resident request is attributed the full step, the same
  // semantics as the packed path).
  obs::ExecProfile step_vm;
  if (profiling) {
    const vm::VMProfile& p = vm_->profile();
    step_vm.kernel_nanos = p.kernel_nanos - mark.kernel_nanos;
    step_vm.shape_func_nanos = p.shape_func_nanos - mark.shape_func_nanos;
    step_vm.other_nanos =
        (p.total_nanos - mark.total_nanos) - step_vm.kernel_nanos;
    step_vm.instructions = p.instructions - mark.instructions;
    int64_t step_alloc = allocator_->stats().bytes_allocated - alloc_mark;
    for (int64_t i = 0; i < B; ++i) {
      if (!slots.IsOccupied(i)) continue;
      obs::ExecProfile& acc = slot_profiles_[static_cast<size_t>(i)];
      acc.kernel_nanos += step_vm.kernel_nanos;
      acc.shape_func_nanos += step_vm.shape_func_nanos;
      acc.other_nanos += step_vm.other_nanos;
      acc.instructions += step_vm.instructions;
      // Allocator traffic is shared per step, like the VM profile: every
      // resident row is attributed the full invocation's delta.
      slot_alloc_bytes_[static_cast<size_t>(i)] += step_alloc;
    }
  }

  // Adopt the returned states as next step's inputs.
  runtime::ADTObj* tuple = runtime::AsADT(result);
  NIMBLE_CHECK_EQ(tuple->fields.size(), states_.size())
      << "step twin returned the wrong number of states";
  for (size_t s = 0; s < states_.size(); ++s) {
    states_[s] = runtime::AsTensor(tuple->fields[s]);
  }

  // Retire every slot whose row just took its final step.
  const NDArray& result_state =
      states_[static_cast<size_t>(spec_->result_state)];
  for (int64_t i = 0; i < B; ++i) {
    if (!slots.IsOccupied(i)) continue;
    SlotMap::Slot& slot = slots.At(i);
    slot.pos++;
    if (slot.pos < slot.length) continue;
    int64_t length = slot.length;
    auto exec_end = obs::SteadyClock::now();
    // Copy, not slice: the request's result must not pin the whole
    // persistent state tensor (same rule as PackPlan::Unpack).
    NDArray out = NDArray::Empty({1, W}, DataType::Float32(),
                                 runtime::Device::CPU(), allocator_);
    std::memcpy(out.data<float>(), result_state.data<float>() + i * W,
                static_cast<size_t>(W) * sizeof(float));
    // Retires are rare (one per request), so a per-row ledger add is fine.
    obs::RecordCopy(obs::CopySite::kStepState,
                    W * static_cast<int64_t>(sizeof(float)));
    slot_copied_bytes_[static_cast<size_t>(i)] +=
        W * static_cast<int64_t>(sizeof(float));
    serve::Request request = slots.Retire(i);
    if (request.trace.enabled) {
      request.trace.exec_end = exec_end;
      request.trace.unpack_end = obs::SteadyClock::now();
      request.trace.retire_step = step_seq_;
      request.trace.vm = slot_profiles_[static_cast<size_t>(i)];
      request.trace.copied_bytes = slot_copied_bytes_[static_cast<size_t>(i)];
      request.trace.alloc_bytes = slot_alloc_bytes_[static_cast<size_t>(i)];
    }
    if (journal_on_) {
      pending_events_.push_back(obs::StepEvent{obs::StepEvent::Kind::kRetire,
                                               request.id, i, length});
    }
    Complete(std::move(request), runtime::MakeTensor(std::move(out)),
             nullptr);
  }
  live_rows_.store(slots.occupied(), std::memory_order_relaxed);

  auto step_end = obs::SteadyClock::now();
  double duration_us =
      std::chrono::duration<double, std::micro>(step_end - step_start)
          .count();
  if (model_stats_ != nullptr) {
    model_stats_->RecordStep(occupied, B, duration_us);
  }
  if (aggregate_stats_ != nullptr) {
    aggregate_stats_->RecordStep(occupied, B, duration_us);
  }
  push_record(step_end, /*ok=*/true, step_vm);
  progress(step_end);
  step_seq_++;
}

void StepRunner::FailAll(SlotMap& slots, std::exception_ptr error) {
  for (int64_t i = 0; i < num_slots_; ++i) {
    if (!slots.IsOccupied(i)) continue;
    int64_t length = slots.At(i).length;
    serve::Request request = slots.Retire(i);
    if (request.trace.enabled) {
      auto now = obs::SteadyClock::now();
      request.trace.exec_end = now;
      request.trace.unpack_end = now;
      request.trace.retire_step = step_seq_;
      request.trace.vm = slot_profiles_[static_cast<size_t>(i)];
      request.trace.copied_bytes = slot_copied_bytes_[static_cast<size_t>(i)];
      request.trace.alloc_bytes = slot_alloc_bytes_[static_cast<size_t>(i)];
    }
    if (journal_on_) {
      pending_events_.push_back(obs::StepEvent{obs::StepEvent::Kind::kRetire,
                                               request.id, i, length});
    }
    Complete(std::move(request), nullptr, error);
  }
  live_rows_.store(0, std::memory_order_relaxed);
}

void StepRunner::Complete(serve::Request request, ObjectRef result,
                          std::exception_ptr error) {
  bool ok = error == nullptr;
  if (ok) {
    request.promise.set_value(result);
  } else {
    request.promise.set_exception(error);
  }
  // Stats before the completion hook, same as the pool workers: a client
  // that receives its response and immediately scrapes /stats must find
  // its own request counted.
  auto now = serve::Clock::now();
  double latency_us = std::chrono::duration<double, std::micro>(
                          now - request.enqueue_time)
                          .count();
  double queue_wait_us =
      request.dispatch_time > request.enqueue_time
          ? std::chrono::duration<double, std::micro>(request.dispatch_time -
                                                      request.enqueue_time)
                .count()
          : 0.0;
  double exec_us = latency_us - queue_wait_us;
  if (model_stats_ != nullptr) {
    model_stats_->RecordCompletion(latency_us, queue_wait_us, exec_us, ok,
                                   now);
  }
  if (aggregate_stats_ != nullptr) {
    aggregate_stats_->RecordCompletion(latency_us, queue_wait_us, exec_us, ok,
                                       now);
  }
  requests_completed_.fetch_add(1, std::memory_order_relaxed);
  NotifyComplete(request, std::move(result), std::move(error));
  FinishTrace(tracer_, request, ok);
}

}  // namespace batch
}  // namespace nimble
