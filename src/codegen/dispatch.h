// Shape-based kernel dispatch (§4.5).
//
// A DenseDispatchTable holds up to kTileRows residue-specialized kernel
// entries plus the generic symbolic fallback. At call time the table selects
// by `M mod kTileRows`; a residue without a specialized entry runs the
// checked generic kernel. `num_variants` = 8 is the paper's "full dispatch",
// 1 is "no dispatch" (only the generic kernel).
//
// The table also exposes counters so benchmarks and tests can observe which
// path executed — and can route to a "third-party library" kernel when
// profiling has marked it faster (the paper's library-vs-compiled choice).
//
// Ownership contract (docs/ARCHITECTURE.md):
//   Dispatch configuration is *per table owner*. core::Compile writes a
//   table into the vm::Executable it produces, and the VM threads that table
//   into kernels through kernels::KernelContext, so serving model A while
//   compiling model B cannot race on dispatch state. Every other dense-kernel
//   caller (the baselines, the Figure 3 benchmark, kernels::RunKernel) owns
//   a private table the same way; there is no process-global dispatch state.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/codegen/dense_kernels.h"
#include "src/runtime/ndarray.h"

namespace nimble {
namespace codegen {

struct DenseConfig;
class KernelPool;

using DenseKernelFn = void (*)(const float* x, const float* w, float* out,
                               int64_t m, int64_t n, int64_t k);

/// Minimum multiply-accumulate count (M*N*K) before the cache-blocked path
/// is worth taking on its own (no pool, contraction within the lane-depth
/// limit): below it the residue-dispatch tile kernels already run at cache
/// speed and blocking only adds loop overhead.
inline constexpr int64_t kDenseBlockedMinMacs = int64_t{1} << 20;

/// Counters are atomic so concurrent VM workers (src/serve/) can share the
/// global table; increments use relaxed ordering — they are observability,
/// not synchronization.
struct DispatchStats {
  std::atomic<int64_t> specialized_calls{0};
  std::atomic<int64_t> fallback_calls{0};
  /// Calls routed to the cache-blocked (tiled) dense path, and the subset
  /// of those that actually ran partitioned across the kernel pool.
  std::atomic<int64_t> blocked_calls{0};
  std::atomic<int64_t> parallel_calls{0};
  std::array<std::atomic<int64_t>, kTileRows> per_residue{};
  void Reset() {
    specialized_calls = 0;
    fallback_calls = 0;
    blocked_calls = 0;
    parallel_calls = 0;
    for (auto& r : per_residue) r = 0;
  }
};

class DenseDispatchTable {
 public:
  /// Builds a table with `num_variants` specialized kernels. Variants cover
  /// residues {0, s, 2s, ...} with stride s = kTileRows / num_variants.
  /// num_variants must divide kTileRows; 1 means no specialization.
  explicit DenseDispatchTable(int num_variants = kTileRows);

  /// Rebuilds the kernel table in place (and resets the stats). Not safe to
  /// call while other threads are executing Run — a table is configured once
  /// (by core::Compile or Executable::Load, before the executable is handed
  /// to any VM) and is read-only afterwards.
  void Configure(int num_variants);

  /// Rebuilds the table with specialized kernels at exactly the residues set
  /// in `residue_mask` (bit r covers residue r); every other residue runs
  /// the checked generic kernel. This is how a bucket-specialized executable
  /// variant (src/serve/exec_cache.h) carries a table tuned to the only M
  /// values its batches can produce, instead of paying for full coverage.
  /// Same thread-safety contract as Configure.
  void ConfigureResidues(uint32_t residue_mask);

  /// True when residue r routes to a specialized kernel.
  bool Covers(int r) const { return table_[static_cast<size_t>(r)] != nullptr; }
  /// Bitmask of specialized residues (bit r set iff Covers(r)).
  uint32_t residue_mask() const;

  /// Runs x[M,K] · w[N,K]^T -> out[M,N], dispatching on M mod kTileRows.
  void Run(const runtime::NDArray& x, const runtime::NDArray& w,
           const runtime::NDArray& out) const;

  void Run(const float* x, const float* w, float* out, int64_t m, int64_t n,
           int64_t k) const;

  /// Tuned/parallel-aware entry point: shapes past the blocked-path
  /// thresholds run the cache-blocked kernel with `config`'s tile factors
  /// (nullptr -> the default DenseConfig), partitioned across `pool` when
  /// the work is large enough (nullptr -> single-threaded). Everything else
  /// takes exactly the plain Run path above. All routes are bitwise
  /// identical to MicroRow1F32 per output element.
  void Run(const float* x, const float* w, float* out, int64_t m, int64_t n,
           int64_t k, const DenseConfig* config, KernelPool* pool) const;

  void Run(const runtime::NDArray& x, const runtime::NDArray& w,
           const runtime::NDArray& out, const DenseConfig* config,
           KernelPool* pool) const;

  int num_variants() const { return num_variants_; }
  DispatchStats& stats() const { return stats_; }

 private:
  int num_variants_;
  std::array<DenseKernelFn, kTileRows> table_{};  // nullptr => fallback
  mutable DispatchStats stats_;
};

/// Returns the residue-specialized kernel for residue r (r in [0, 8)).
DenseKernelFn ResidueKernel(int r);

}  // namespace codegen
}  // namespace nimble
