#include "src/codegen/parallel.h"

#include <cstdlib>

#include "src/codegen/tuner.h"
#include "src/support/logging.h"

namespace nimble {
namespace codegen {

namespace {

/// Set while a thread is executing pool tasks; a ParallelFor issued from
/// inside a task runs inline instead of deadlocking on the submit lock.
thread_local bool t_in_pool_task = false;

std::atomic<int64_t> g_parallel_threshold{int64_t{1} << 22};

std::atomic<int> g_configured_threads{0};

int ResolveGlobalThreads() {
  int configured = g_configured_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  if (const char* env = std::getenv("NIMBLE_KERNEL_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<int>(hw > 8 ? 8 : hw);
}

}  // namespace

KernelPool::KernelPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

KernelPool::~KernelPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

KernelPool* KernelPool::Global() {
  // Leaked on purpose: kernels may run until process exit, and static
  // destruction order vs the serving threads is otherwise a hazard.
  static KernelPool* pool = [] {
    int n = ResolveGlobalThreads();
    return n > 1 ? new KernelPool(n) : nullptr;
  }();
  return pool;
}

void KernelPool::ConfigureGlobal(int num_threads) {
  g_configured_threads.store(num_threads, std::memory_order_relaxed);
}

void KernelPool::RunTasks(Job* job) {
  busy_.fetch_add(1, std::memory_order_relaxed);
  t_in_pool_task = true;
  int64_t ran = 0;
  std::exception_ptr error;
  int64_t i;
  while ((i = job->next.fetch_add(1, std::memory_order_relaxed)) <
         job->num_tasks) {
    try {
      (*job->fn)(i);
    } catch (...) {
      if (error == nullptr) error = std::current_exception();
    }
    ++ran;
  }
  t_in_pool_task = false;
  busy_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  job->completed += ran;
  if (error != nullptr && job->error == nullptr) job->error = error;
  if (job->completed == job->num_tasks) done_cv_.notify_all();
}

void KernelPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen = 0;
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    Job* job = job_;
    // A worker that wakes after the submitter already retired the job sees
    // job_ == nullptr and goes back to sleep; one that wakes in time pins
    // the job with a ref BEFORE dropping the lock, so the submitter cannot
    // pop its stack frame while this worker still dereferences it.
    if (job == nullptr) continue;
    job->refs++;
    lock.unlock();
    RunTasks(job);
    lock.lock();
    job->refs--;
    if (job->refs == 0 && job->completed == job->num_tasks) {
      done_cv_.notify_all();
    }
  }
}

bool KernelPool::TryParallelFor(int64_t num_tasks,
                                const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) return true;
  if (num_threads_ <= 1 || t_in_pool_task) return false;
  std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
  if (!submit.owns_lock()) return false;  // occupied: caller goes serial

  Job job;
  job.fn = &fn;
  job.num_tasks = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunTasks(&job);  // the caller claims tasks alongside the workers
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.completed == job.num_tasks && job.refs == 0;
    });
    job_ = nullptr;
  }
  if (job.error != nullptr) std::rethrow_exception(job.error);
  return true;
}

int64_t DenseParallelThreshold() {
  return g_parallel_threshold.load(std::memory_order_relaxed);
}

void SetDenseParallelThreshold(int64_t macs) {
  g_parallel_threshold.store(macs < 1 ? 1 : macs, std::memory_order_relaxed);
}

bool DenseBlockedParallel(const float* x, const float* w, float* out,
                          int64_t m, int64_t n, int64_t k,
                          const DenseConfig& config, KernelPool* pool) {
  int64_t cells = DenseCellCount(m, n, config);
  if (pool != nullptr && cells > 1) {
    bool ran = pool->TryParallelFor(cells, [&](int64_t cell) {
      DenseBlockedCell(x, w, out, m, n, k, config, cell);
    });
    if (ran) return true;
  }
  DenseBlocked(x, w, out, m, n, k, config);
  return false;
}

}  // namespace codegen
}  // namespace nimble
