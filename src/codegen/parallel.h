// Intra-op kernel parallelism: a small persistent thread pool plus the
// (row-tile × neuron-block) partitioner for the blocked dense kernel.
//
// Design constraints, in order:
//   1. Bit-identity. Work is split ONLY across the M (row-tile) and N
//      (neuron-block) dimensions — never across K — so every output element
//      is produced by exactly one task running the exact per-element
//      accumulation order of MicroRow1F32 (src/codegen/dense_kernels.h).
//      Cells write disjoint output ranges, so results are bitwise identical
//      for any thread count, including 1.
//   2. No blocking on the hot path. TryParallelFor never waits for the pool
//      to free up: when another caller holds it (several VM workers can hit
//      large denses at once), the caller simply runs its loop serially.
//      Small shapes never reach the pool at all (the sized-work threshold
//      in DenseDispatchTable::Run).
//   3. TSan-clean. Job hand-off is mutex+condvar, task claiming is one
//      atomic counter, and completion is signalled back under the same
//      mutex, so every task's writes happen-before the caller's return.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nimble {
namespace codegen {

struct DenseConfig;

class KernelPool {
 public:
  /// A pool that executes tasks on `num_threads` threads total, the caller
  /// included: the pool spawns num_threads - 1 persistent workers, and the
  /// caller claims tasks alongside them. num_threads <= 1 spawns nothing
  /// (ParallelFor then runs inline).
  explicit KernelPool(int num_threads);
  ~KernelPool();

  KernelPool(const KernelPool&) = delete;
  KernelPool& operator=(const KernelPool&) = delete;

  /// Process-wide pool shared by every VM (src/vm/vm.cc threads it to
  /// kernels through KernelContext). Sized on first use from
  /// ConfigureGlobal if called, else NIMBLE_KERNEL_THREADS, else
  /// hardware_concurrency clamped to [1, 8]. Returns nullptr when the
  /// resolved size is <= 1 (a pool of one is just overhead).
  static KernelPool* Global();

  /// Overrides the global pool's size; must be called before the first
  /// Global() (harness/bench startup). 0 restores the default resolution.
  static void ConfigureGlobal(int num_threads);

  int num_threads() const { return num_threads_; }

  /// Threads currently executing partitioned work (the caller counts while
  /// it claims tasks). Exported as the nimble_kernel_threads_busy gauge.
  int64_t busy() const { return busy_.load(std::memory_order_relaxed); }

  /// Runs fn(i) for every i in [0, num_tasks) across the pool and returns
  /// once ALL tasks completed. Returns false without running anything when
  /// the pool is occupied by another caller or this thread is already
  /// inside a pool task (no nested parallelism) — the caller then runs its
  /// serial loop instead. fn must be safe to call concurrently on distinct
  /// task indices; a throwing task is rethrown on the calling thread after
  /// the remaining tasks drain.
  bool TryParallelFor(int64_t num_tasks, const std::function<void(int64_t)>& fn);

 private:
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t num_tasks = 0;
    std::atomic<int64_t> next{0};
    // Guarded by mu_. The job lives on the submitter's stack: a worker
    // holds a ref (taken under mu_ before it first touches the job) for as
    // long as it may dereference it, and the submitter only returns once
    // completed == num_tasks and refs == 0 — no late worker can touch a
    // dead job, and workers that wake after job_ is cleared never enter.
    int64_t completed = 0;
    int64_t refs = 0;
    std::exception_ptr error;  // first failure
  };

  void WorkerLoop();
  /// Claims and runs tasks until the job is exhausted (caller side; the
  /// ref/epoch bookkeeping around worker entry lives in WorkerLoop).
  void RunTasks(Job* job);

  int num_threads_;
  std::atomic<int64_t> busy_{0};

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new job epoch
  std::condition_variable done_cv_;  // the submitting caller waits here
  uint64_t epoch_ = 0;
  Job* job_ = nullptr;  // valid for the current epoch only
  bool stop_ = false;
  /// Serializes submitters without blocking them (try_lock in
  /// TryParallelFor): one job in flight at a time.
  std::mutex submit_mu_;

  std::vector<std::thread> workers_;
};

/// Minimum multiply-accumulate count (M*N*K) before a dense call is worth
/// handing to the pool; below it the wake-up cost dwarfs the win and the
/// call stays single-threaded. Runtime-settable so the randomized harness
/// can force tiny shapes through the parallel path (--pool).
int64_t DenseParallelThreshold();
void SetDenseParallelThreshold(int64_t macs);

/// Cache-blocked dense over the pool: DenseBlocked's (row-tile ×
/// neuron-block) cells distributed across pool threads. Falls back to the
/// serial loop when the pool is null, single-threaded, busy, or the
/// decomposition yields a single cell. Bitwise identical to DenseBlocked —
/// and to the residue-dispatch kernels — for every thread count. Returns
/// true iff the pool actually partitioned the work (the output is complete
/// either way).
bool DenseBlockedParallel(const float* x, const float* w, float* out,
                          int64_t m, int64_t n, int64_t k,
                          const DenseConfig& config, KernelPool* pool);

}  // namespace codegen
}  // namespace nimble
