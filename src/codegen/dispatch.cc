#include "src/codegen/dispatch.h"

#include "src/support/logging.h"

namespace nimble {
namespace codegen {

void DenseSymbolicChecked(const float* x, const float* w, float* out,
                          int64_t m, int64_t n, int64_t k) {
  for (int64_t i0 = 0; i0 < m; i0 += kTileRows) {
    int64_t rows = std::min<int64_t>(kTileRows, m - i0);  // boundary check
    MicroRowsDynF32(x + i0 * k, w, out + i0 * n, rows, n, k, n);
  }
}

DenseKernelFn ResidueKernel(int r) {
  switch (r) {
    case 0: return DenseResidue<0>;
    case 1: return DenseResidue<1>;
    case 2: return DenseResidue<2>;
    case 3: return DenseResidue<3>;
    case 4: return DenseResidue<4>;
    case 5: return DenseResidue<5>;
    case 6: return DenseResidue<6>;
    case 7: return DenseResidue<7>;
    default:
      NIMBLE_FATAL() << "residue out of range: " << r;
  }
}

DenseDispatchTable::DenseDispatchTable(int num_variants) {
  Configure(num_variants);
}

void DenseDispatchTable::Configure(int num_variants) {
  NIMBLE_CHECK(num_variants >= 1 && num_variants <= kTileRows &&
               kTileRows % num_variants == 0)
      << "num_variants must divide the tile factor " << kTileRows;
  num_variants_ = num_variants;
  table_.fill(nullptr);
  stats_.Reset();
  if (num_variants == 1) return;  // no dispatch: generic kernel only
  int stride = kTileRows / num_variants;
  for (int v = 0; v < num_variants; ++v) {
    int r = v * stride;
    table_[r] = ResidueKernel(r);
  }
}

void DenseDispatchTable::Run(const float* x, const float* w, float* out,
                             int64_t m, int64_t n, int64_t k) const {
  int r = static_cast<int>(m % kTileRows);
  stats_.per_residue[r].fetch_add(1, std::memory_order_relaxed);
  if (DenseKernelFn fn = table_[r]; fn != nullptr) {
    stats_.specialized_calls.fetch_add(1, std::memory_order_relaxed);
    fn(x, w, out, m, n, k);
  } else {
    stats_.fallback_calls.fetch_add(1, std::memory_order_relaxed);
    DenseSymbolicChecked(x, w, out, m, n, k);
  }
}

void DenseDispatchTable::Run(const runtime::NDArray& x, const runtime::NDArray& w,
                             const runtime::NDArray& out) const {
  NIMBLE_CHECK_EQ(x.ndim(), 2);
  NIMBLE_CHECK_EQ(w.ndim(), 2);
  int64_t m = x.shape()[0], k = x.shape()[1], n = w.shape()[0];
  NIMBLE_CHECK_EQ(w.shape()[1], k) << "dense: contraction mismatch";
  NIMBLE_CHECK_EQ(out.shape()[0], m);
  NIMBLE_CHECK_EQ(out.shape()[1], n);
  Run(x.data<float>(), w.data<float>(), out.data<float>(), m, n, k);
}

DenseDispatchTable& DenseDispatchTable::Global() {
  static DenseDispatchTable table(kTileRows);
  return table;
}

void DenseDispatchTable::ConfigureGlobal(int num_variants) {
  Global().Configure(num_variants);
}

}  // namespace codegen
}  // namespace nimble
