#include "src/codegen/dispatch.h"

#include "src/codegen/parallel.h"
#include "src/codegen/tuner.h"
#include "src/support/logging.h"

namespace nimble {
namespace codegen {

namespace {

// ---- rows-in-lanes 8-row tile ----------------------------------------------
//
// The batched-serving layout: one vector lane per batch row, weights
// broadcast across lanes, so an 8-request packed batch streams each weight
// row ONCE instead of 8 times and does 8 rows of multiply-add per vector op.
// Per-lane arithmetic is exactly MicroRow1F32's order (4 chains over k,
// (a0+a1)+(a2+a3), scalar tail), and the function is compiled WITHOUT fused
// multiply-add, so every row's bits match the single-row kernel —
// bit-identity across per-request and packed execution (src/batch/).
//
// Runtime-dispatched: x86-64 with AVX2 takes the lane path; everything else
// (and k beyond the transpose buffer) falls back to row-at-a-time.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NIMBLE_DENSE_LANES 1

typedef float v8sf __attribute__((vector_size(32)));

/// Largest contraction depth the stack-resident transpose buffer covers
/// (32 KiB); deeper contractions use the scalar tile — or, on the blocked
/// path, K-chunking (MicroTile8LanesChunkedF32 below).
constexpr int64_t kMaxLaneDepth = kMicroTileDepthLimit;

/// Widest column block whose accumulator chains the chunked tile keeps
/// resident (4 chains x 8 lanes x 4 bytes = 128 B per column -> 16 KiB).
/// DenseConfigSpace tops out at block_n = 128, so a tuned cell never
/// splits; wider ad-hoc calls are chunked internally.
constexpr int64_t kMaxChunkCols = 128;

__attribute__((target("avx2"))) void MicroTile8LanesF32(
    const float* x, const float* w, float* out, int64_t n_cols,
    int64_t k_depth, int64_t out_stride) {
  // Transpose the 8 x k tile once so the row dimension is lane-contiguous.
  alignas(32) v8sf xT[kMaxLaneDepth];
  int64_t k4 = (k_depth / 4) * 4;
  for (int64_t kk = 0; kk < k4; ++kk) {
    for (int r = 0; r < 8; ++r) xT[kk][r] = x[r * k_depth + kk];
  }
  // Two output columns per iteration: their accumulator sets are
  // independent, which hides the vector-add latency the 4 chains of a
  // single column cannot. Per-(row, column) arithmetic is untouched.
  int64_t n = 0;
  for (; n + 2 <= n_cols; n += 2) {
    const float* wrow0 = w + n * k_depth;
    const float* wrow1 = wrow0 + k_depth;
    v8sf a0 = {}, a1 = {}, a2 = {}, a3 = {};
    v8sf b0 = {}, b1 = {}, b2 = {}, b3 = {};
    for (int64_t kk = 0; kk + 4 <= k4; kk += 4) {
      v8sf x0 = xT[kk + 0], x1 = xT[kk + 1], x2 = xT[kk + 2], x3 = xT[kk + 3];
      a0 += x0 * wrow0[kk + 0];
      a1 += x1 * wrow0[kk + 1];
      a2 += x2 * wrow0[kk + 2];
      a3 += x3 * wrow0[kk + 3];
      b0 += x0 * wrow1[kk + 0];
      b1 += x1 * wrow1[kk + 1];
      b2 += x2 * wrow1[kk + 2];
      b3 += x3 * wrow1[kk + 3];
    }
    for (int r = 0; r < 8; ++r) {
      float fin0 = (a0[r] + a1[r]) + (a2[r] + a3[r]);
      float fin1 = (b0[r] + b1[r]) + (b2[r] + b3[r]);
      for (int64_t kk = k4; kk < k_depth; ++kk) {
        fin0 += x[r * k_depth + kk] * wrow0[kk];
        fin1 += x[r * k_depth + kk] * wrow1[kk];
      }
      out[r * out_stride + n] = fin0;
      out[r * out_stride + n + 1] = fin1;
    }
  }
  for (; n < n_cols; ++n) {
    const float* wrow = w + n * k_depth;
    v8sf acc0 = {}, acc1 = {}, acc2 = {}, acc3 = {};
    for (int64_t kk = 0; kk + 4 <= k4; kk += 4) {
      acc0 += xT[kk + 0] * wrow[kk + 0];
      acc1 += xT[kk + 1] * wrow[kk + 1];
      acc2 += xT[kk + 2] * wrow[kk + 2];
      acc3 += xT[kk + 3] * wrow[kk + 3];
    }
    for (int r = 0; r < 8; ++r) {
      float fin = (acc0[r] + acc1[r]) + (acc2[r] + acc3[r]);
      for (int64_t kk = k4; kk < k_depth; ++kk) {
        fin += x[r * k_depth + kk] * wrow[kk];
      }
      out[r * out_stride + n] = fin;
    }
  }
}

/// The K-chunked tile (<= kMaxChunkCols columns): per-column accumulator
/// chains persist across chunks in `acc`, so splitting K at multiples of 4
/// leaves every chain's += sequence — and therefore every output bit —
/// exactly MicroRow1F32's. Chunking restores the transpose-buffer locality
/// for any depth: each 8 x bk slab of x is transposed once and reused by
/// every column of the block while it is still L1-resident.
__attribute__((target("avx2"))) void MicroTile8LanesChunkedF32(
    const float* x, const float* w, float* out, int64_t n_cols,
    int64_t k_depth, int64_t out_stride, int64_t bk) {
  alignas(32) v8sf acc[4 * kMaxChunkCols];
  for (int64_t i = 0; i < 4 * n_cols; ++i) acc[i] = v8sf{};
  alignas(32) v8sf xT[kMaxLaneDepth];
  int64_t k4 = (k_depth / 4) * 4;
  for (int64_t c0 = 0; c0 < k4; c0 += bk) {
    int64_t c1 = std::min(c0 + bk, k4);
    for (int64_t kk = c0; kk < c1; ++kk) {
      for (int r = 0; r < 8; ++r) xT[kk - c0][r] = x[r * k_depth + kk];
    }
    // Column pairs, like the unchunked tile: two independent accumulator
    // sets hide the vector-add latency, and each xT load is shared.
    int64_t n = 0;
    for (; n + 2 <= n_cols; n += 2) {
      const float* wrow0 = w + n * k_depth;
      const float* wrow1 = wrow0 + k_depth;
      v8sf a0 = acc[4 * n + 0], a1 = acc[4 * n + 1];
      v8sf a2 = acc[4 * n + 2], a3 = acc[4 * n + 3];
      v8sf b0 = acc[4 * n + 4], b1 = acc[4 * n + 5];
      v8sf b2 = acc[4 * n + 6], b3 = acc[4 * n + 7];
      for (int64_t kk = c0; kk + 4 <= c1; kk += 4) {
        const v8sf* xt = xT + (kk - c0);
        v8sf x0 = xt[0], x1 = xt[1], x2 = xt[2], x3 = xt[3];
        a0 += x0 * wrow0[kk + 0];
        a1 += x1 * wrow0[kk + 1];
        a2 += x2 * wrow0[kk + 2];
        a3 += x3 * wrow0[kk + 3];
        b0 += x0 * wrow1[kk + 0];
        b1 += x1 * wrow1[kk + 1];
        b2 += x2 * wrow1[kk + 2];
        b3 += x3 * wrow1[kk + 3];
      }
      acc[4 * n + 0] = a0;
      acc[4 * n + 1] = a1;
      acc[4 * n + 2] = a2;
      acc[4 * n + 3] = a3;
      acc[4 * n + 4] = b0;
      acc[4 * n + 5] = b1;
      acc[4 * n + 6] = b2;
      acc[4 * n + 7] = b3;
    }
    for (; n < n_cols; ++n) {
      const float* wrow = w + n * k_depth;
      v8sf a0 = acc[4 * n + 0], a1 = acc[4 * n + 1];
      v8sf a2 = acc[4 * n + 2], a3 = acc[4 * n + 3];
      for (int64_t kk = c0; kk + 4 <= c1; kk += 4) {
        const v8sf* xt = xT + (kk - c0);
        a0 += xt[0] * wrow[kk + 0];
        a1 += xt[1] * wrow[kk + 1];
        a2 += xt[2] * wrow[kk + 2];
        a3 += xt[3] * wrow[kk + 3];
      }
      acc[4 * n + 0] = a0;
      acc[4 * n + 1] = a1;
      acc[4 * n + 2] = a2;
      acc[4 * n + 3] = a3;
    }
  }
  for (int64_t n = 0; n < n_cols; ++n) {
    const float* wrow = w + n * k_depth;
    for (int r = 0; r < 8; ++r) {
      float fin = (acc[4 * n + 0][r] + acc[4 * n + 1][r]) +
                  (acc[4 * n + 2][r] + acc[4 * n + 3][r]);
      for (int64_t kk = k4; kk < k_depth; ++kk) {
        fin += x[r * k_depth + kk] * wrow[kk];
      }
      out[r * out_stride + n] = fin;
    }
  }
}

bool LanesSupported() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}
#endif  // x86-64 gcc/clang

}  // namespace

void MicroTile8F32(const float* x, const float* w, float* out, int64_t n_cols,
                   int64_t k_depth, int64_t out_stride) {
#ifdef NIMBLE_DENSE_LANES
  if (k_depth <= kMaxLaneDepth && LanesSupported()) {
    MicroTile8LanesF32(x, w, out, n_cols, k_depth, out_stride);
    return;
  }
#endif
  MicroRowsF32<kTileRows>(x, w, out, n_cols, k_depth, out_stride);
}

void MicroTile8BlockedF32(const float* x, const float* w, float* out,
                          int64_t n_cols, int64_t k_depth, int64_t out_stride,
                          int64_t block_k) {
#ifdef NIMBLE_DENSE_LANES
  if (LanesSupported()) {
    if (k_depth <= kMaxLaneDepth && k_depth <= block_k) {
      MicroTile8LanesF32(x, w, out, n_cols, k_depth, out_stride);
      return;
    }
    int64_t bk = std::min<int64_t>(block_k, kMaxLaneDepth);
    bk = (bk / 4) * 4;  // chunk at a chain-phase boundary (see dense_kernels.h)
    if (bk < 4) bk = 4;
    for (int64_t n0 = 0; n0 < n_cols; n0 += kMaxChunkCols) {
      int64_t nb = std::min<int64_t>(kMaxChunkCols, n_cols - n0);
      MicroTile8LanesChunkedF32(x, w + n0 * k_depth, out + n0, nb, k_depth,
                                out_stride, bk);
    }
    return;
  }
#endif
  (void)block_k;
  MicroRowsF32<kTileRows>(x, w, out, n_cols, k_depth, out_stride);
}

void DenseSymbolicChecked(const float* x, const float* w, float* out,
                          int64_t m, int64_t n, int64_t k) {
  for (int64_t i0 = 0; i0 < m; i0 += kTileRows) {
    int64_t rows = std::min<int64_t>(kTileRows, m - i0);  // boundary check
    MicroRowsDynF32(x + i0 * k, w, out + i0 * n, rows, n, k, n);
  }
}

DenseKernelFn ResidueKernel(int r) {
  switch (r) {
    case 0: return DenseResidue<0>;
    case 1: return DenseResidue<1>;
    case 2: return DenseResidue<2>;
    case 3: return DenseResidue<3>;
    case 4: return DenseResidue<4>;
    case 5: return DenseResidue<5>;
    case 6: return DenseResidue<6>;
    case 7: return DenseResidue<7>;
    default:
      NIMBLE_FATAL() << "residue out of range: " << r;
  }
}

DenseDispatchTable::DenseDispatchTable(int num_variants) {
  Configure(num_variants);
}

void DenseDispatchTable::Configure(int num_variants) {
  NIMBLE_CHECK(num_variants >= 1 && num_variants <= kTileRows &&
               kTileRows % num_variants == 0)
      << "num_variants must divide the tile factor " << kTileRows;
  num_variants_ = num_variants;
  table_.fill(nullptr);
  stats_.Reset();
  if (num_variants == 1) return;  // no dispatch: generic kernel only
  int stride = kTileRows / num_variants;
  for (int v = 0; v < num_variants; ++v) {
    int r = v * stride;
    table_[r] = ResidueKernel(r);
  }
}

void DenseDispatchTable::ConfigureResidues(uint32_t residue_mask) {
  NIMBLE_CHECK_LT(residue_mask, 1u << kTileRows)
      << "residue mask has bits beyond the tile factor";
  table_.fill(nullptr);
  stats_.Reset();
  int covered = 0;
  for (int r = 0; r < kTileRows; ++r) {
    if (residue_mask & (1u << r)) {
      table_[static_cast<size_t>(r)] = ResidueKernel(r);
      ++covered;
    }
  }
  // num_variants keeps its "specialized kernels in the table" meaning; an
  // empty mask is the no-dispatch configuration (generic kernel only).
  num_variants_ = covered > 0 ? covered : 1;
}

uint32_t DenseDispatchTable::residue_mask() const {
  uint32_t mask = 0;
  for (int r = 0; r < kTileRows; ++r) {
    if (table_[static_cast<size_t>(r)] != nullptr) mask |= 1u << r;
  }
  return mask;
}

void DenseDispatchTable::Run(const float* x, const float* w, float* out,
                             int64_t m, int64_t n, int64_t k) const {
  int r = static_cast<int>(m % kTileRows);
  stats_.per_residue[r].fetch_add(1, std::memory_order_relaxed);
  if (DenseKernelFn fn = table_[r]; fn != nullptr) {
    stats_.specialized_calls.fetch_add(1, std::memory_order_relaxed);
    fn(x, w, out, m, n, k);
  } else {
    stats_.fallback_calls.fetch_add(1, std::memory_order_relaxed);
    DenseSymbolicChecked(x, w, out, m, n, k);
  }
}

void DenseDispatchTable::Run(const float* x, const float* w, float* out,
                             int64_t m, int64_t n, int64_t k,
                             const DenseConfig* config, KernelPool* pool) const {
  // Routing keeps the serving hot path (small tiles, shallow contractions)
  // on exactly the pre-blocked code path; the blocked kernel only enters
  // where it wins: contractions past the lane-depth cliff, shapes big
  // enough to amortize the pool wake-up, or many-tile calls where cache
  // blocking pays on its own.
  int64_t macs = m * n * k;
  bool pool_eligible = pool != nullptr && pool->num_threads() > 1 &&
                       macs >= DenseParallelThreshold();
  bool use_blocked =
      m >= kTileRows &&
      (k > kMicroTileDepthLimit || pool_eligible ||
       (m >= 2 * kTileRows && macs >= kDenseBlockedMinMacs));
  if (!use_blocked) {
    Run(x, w, out, m, n, k);
    return;
  }
  int r = static_cast<int>(m % kTileRows);
  stats_.per_residue[r].fetch_add(1, std::memory_order_relaxed);
  stats_.blocked_calls.fetch_add(1, std::memory_order_relaxed);
  DenseConfig cfg = config != nullptr ? *config : DenseConfig{};
  if (DenseBlockedParallel(x, w, out, m, n, k, cfg,
                           pool_eligible ? pool : nullptr)) {
    stats_.parallel_calls.fetch_add(1, std::memory_order_relaxed);
  }
}

void DenseDispatchTable::Run(const runtime::NDArray& x, const runtime::NDArray& w,
                             const runtime::NDArray& out) const {
  Run(x, w, out, nullptr, nullptr);
}

void DenseDispatchTable::Run(const runtime::NDArray& x, const runtime::NDArray& w,
                             const runtime::NDArray& out,
                             const DenseConfig* config, KernelPool* pool) const {
  NIMBLE_CHECK_EQ(x.ndim(), 2);
  NIMBLE_CHECK_EQ(w.ndim(), 2);
  int64_t m = x.shape()[0], k = x.shape()[1], n = w.shape()[0];
  NIMBLE_CHECK_EQ(w.shape()[1], k) << "dense: contraction mismatch";
  NIMBLE_CHECK_EQ(out.shape()[0], m);
  NIMBLE_CHECK_EQ(out.shape()[1], n);
  Run(x.data<float>(), w.data<float>(), out.data<float>(), m, n, k, config,
      pool);
}

}  // namespace codegen
}  // namespace nimble
