// Template-based kernel tuning for symbolic shapes (§4.5).
//
// The search space is cache-blocking factors of a blocked dense kernel. For
// a symbolic dimension the paper's mechanism is:
//   1. replace the symbolic dim with a large value (64) and tune normally;
//   2. take the top-k configurations and evaluate them on a selection of
//      other shapes (powers of two up to 256);
//   3. pick the configuration with the best average performance.
// TuneSymbolic implements exactly that; benchmarks compare the transferred
// configuration against per-shape oracle tuning.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nimble {
namespace codegen {

struct DenseConfig {
  int64_t block_n = 32;
  int64_t block_k = 64;
  std::string ToString() const {
    return "bn" + std::to_string(block_n) + "_bk" + std::to_string(block_k);
  }
  bool operator==(const DenseConfig& o) const {
    return block_n == o.block_n && block_k == o.block_k;
  }
};

/// Cache-blocked dense kernel: x[M,K] · w[N,K]ᵀ -> out[M,N], with the N and
/// K loops tiled by the config's blocking factors.
void DenseBlocked(const float* x, const float* w, float* out, int64_t m,
                  int64_t n, int64_t k, const DenseConfig& config);

/// The tuning search space (block_n × block_k grid).
std::vector<DenseConfig> DenseConfigSpace();

struct MeasuredConfig {
  DenseConfig config;
  double seconds = 0.0;  // per-run latency
};

/// Measures one config on a static shape (median of `repeats` runs).
double MeasureDenseConfig(const DenseConfig& config, int64_t m, int64_t n,
                          int64_t k, int repeats = 3);

/// Exhaustive tuning at one static shape; results sorted fastest-first.
std::vector<MeasuredConfig> TuneDenseStatic(int64_t m, int64_t n, int64_t k,
                                            int repeats = 3);

struct SymbolicTuneResult {
  DenseConfig chosen;
  std::vector<MeasuredConfig> tuning_shape_ranking;  // step 1 ranking
  std::vector<int64_t> eval_shapes;                  // step 2 shapes
  double chosen_avg_seconds = 0.0;
};

/// The paper's three-step symbolic tuning for dense with symbolic M.
SymbolicTuneResult TuneDenseSymbolic(int64_t n, int64_t k, int top_k = 4,
                                     int64_t tuning_m = 64,
                                     int64_t max_eval_m = 256);

}  // namespace codegen
}  // namespace nimble
