// Template-based kernel tuning for symbolic shapes (§4.5).
//
// The search space is cache-blocking factors of a blocked dense kernel. For
// a symbolic dimension the paper's mechanism is:
//   1. replace the symbolic dim with a large value (64) and tune normally;
//   2. take the top-k configurations and evaluate them on a selection of
//      other shapes (powers of two up to 256);
//   3. pick the configuration with the best average performance.
// TuneSymbolic implements exactly that; benchmarks compare the transferred
// configuration against per-shape oracle tuning.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace nimble {
namespace codegen {

struct DenseConfig {
  int64_t block_n = 32;
  int64_t block_k = 64;
  std::string ToString() const {
    return "bn" + std::to_string(block_n) + "_bk" + std::to_string(block_k);
  }
  bool operator==(const DenseConfig& o) const {
    return block_n == o.block_n && block_k == o.block_k;
  }
  bool operator!=(const DenseConfig& o) const { return !(*this == o); }
};

/// Cache-blocked dense kernel: x[M,K] · w[N,K]ᵀ -> out[M,N], decomposed
/// into (row-tile × neuron-block) cells. Full kTileRows-row tiles run the
/// rows-in-lanes micro-kernel (MicroTile8BlockedF32, K-chunked by block_k);
/// residue rows run MicroRow1F32 — so every output element carries the
/// canonical accumulation order and the result is bitwise identical to the
/// residue-dispatch kernels for any config.
void DenseBlocked(const float* x, const float* w, float* out, int64_t m,
                  int64_t n, int64_t k, const DenseConfig& config);

/// Number of (row-tile × neuron-block) cells DenseBlocked decomposes an
/// [M,N] output into under `config` — the parallel partitioner's task count.
int64_t DenseCellCount(int64_t m, int64_t n, const DenseConfig& config);

/// Computes one cell of the decomposition (cell in [0, DenseCellCount)).
/// Cells write disjoint output ranges and never split K, so any execution
/// order — or concurrent execution across threads — produces identical bits.
void DenseBlockedCell(const float* x, const float* w, float* out, int64_t m,
                      int64_t n, int64_t k, const DenseConfig& config,
                      int64_t cell);

/// The tuning search space (block_n × block_k grid).
std::vector<DenseConfig> DenseConfigSpace();

struct MeasuredConfig {
  DenseConfig config;
  double seconds = 0.0;  // per-run latency
};

/// Measures one config on a static shape: a warm-up pass (faults the
/// buffers in, warms the caches) followed by min-of-`repeats` timed runs.
/// Min, not median: when tuning runs on the background compile thread under
/// serving load, interference only ever ADDS time, so the minimum is the
/// estimator that converges on the config's true cost and keeps the choice
/// deterministic.
double MeasureDenseConfig(const DenseConfig& config, int64_t m, int64_t n,
                          int64_t k, int repeats = 3);

/// Exhaustive tuning at one static shape; results sorted fastest-first.
std::vector<MeasuredConfig> TuneDenseStatic(int64_t m, int64_t n, int64_t k,
                                            int repeats = 3);

struct SymbolicTuneResult {
  DenseConfig chosen;
  std::vector<MeasuredConfig> tuning_shape_ranking;  // step 1 ranking
  std::vector<int64_t> eval_shapes;                  // step 2 shapes
  double chosen_avg_seconds = 0.0;
};

/// The paper's three-step symbolic tuning for dense with symbolic M.
SymbolicTuneResult TuneDenseSymbolic(int64_t n, int64_t k, int top_k = 4,
                                     int64_t tuning_m = 64,
                                     int64_t max_eval_m = 256);

/// A tune result handed back by TuneCache: the measured-best config for a
/// static shape, and whether THIS call paid for the measurement (false =>
/// served from the memo).
struct TunedDense {
  DenseConfig config;
  double seconds = 0.0;  // best measured per-run latency
  bool fresh = false;
};

/// Tune-once-per-shape memo for exact static dense shapes. ExecCache's
/// background compile thread asks it for every variant it bakes; the first
/// request for a (m, n, k) runs TuneDenseStatic, every later request —
/// including from other models' caches sharing the process — returns the
/// memoized choice. Measurement runs under the lock: callers are background
/// compile threads, and serializing them keeps concurrent tunes from
/// perturbing each other's timings.
class TuneCache {
 public:
  TunedDense GetOrTune(int64_t m, int64_t n, int64_t k, int repeats = 3);

  /// Number of distinct shapes tuned so far.
  int64_t size() const;

  /// Process-wide instance (leaked singleton).
  static TuneCache* Global();

 private:
  mutable std::mutex mu_;
  std::map<std::tuple<int64_t, int64_t, int64_t>, TunedDense> cache_;
};

}  // namespace codegen
}  // namespace nimble
