// Dense (fully-connected) kernel variants for symbolic codegen (§4.5).
//
// Convention: x is [M, K], w is [N, K] (transposed weights), out is [M, N].
//
// The paper's observation: after tiling a symbolic dimension by a factor T,
// loop boundary conditions can only be eliminated if the residue r = M mod T
// is known when the kernel is compiled. Nimble therefore emits T
// residue-specialized copies of the kernel (replacing M with T*q + r) plus a
// runtime dispatch on r; with fewer copies, uncovered residues fall back to
// the generic symbolic kernel whose inner loops carry runtime bounds checks
// and cannot be unrolled.
//
// We reproduce that structure with templates:
//  - MicroRowsF32<ROWS>: compile-time row count => the row loop unrolls into
//    ROWS independent accumulator chains (the "boundary check eliminated"
//    code the paper's codegen produces);
//  - DenseResidue<R>: q full tiles of kTileRows rows + a compile-time tail
//    of R rows — the specialized kernel for residue class R;
//  - DenseSymbolicChecked: one generic kernel where every tile re-derives
//    `rows = min(kTileRows, M - i)` and loops with a runtime trip count —
//    what symbolic codegen emits when it cannot specialize.
#pragma once

#include <algorithm>
#include <cstdint>

namespace nimble {
namespace codegen {

/// Tile factor along the (symbolic) M dimension. The paper's auto-tuner
/// selects 8 for all three BERT dense layers (§6.3).
inline constexpr int kTileRows = 8;

/// Canonical per-row accumulation: 4 interleaved chains over k (breaking
/// the multiply-add latency chain), reduced as (a0+a1)+(a2+a3), scalar
/// tail. EVERY specialized dense path — single row, multi-row tile, or the
/// batched rows-in-lanes tile — reproduces exactly this arithmetic order
/// per row. That invariant is the bit-identity contract that lets the
/// serving layer mix per-request and packed-batch execution freely
/// (src/batch/pack_plan.h).
inline void MicroRow1F32(const float* xrow, const float* w, float* outrow,
                         int64_t n_cols, int64_t k_depth) {
  for (int64_t n = 0; n < n_cols; ++n) {
    const float* wrow = w + n * k_depth;
    float acc[4] = {};
    int64_t k = 0;
    for (; k + 4 <= k_depth; k += 4) {
      acc[0] += xrow[k + 0] * wrow[k + 0];
      acc[1] += xrow[k + 1] * wrow[k + 1];
      acc[2] += xrow[k + 2] * wrow[k + 2];
      acc[3] += xrow[k + 3] * wrow[k + 3];
    }
    float fin = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (int64_t kk = k; kk < k_depth; ++kk) fin += xrow[kk] * wrow[kk];
    outrow[n] = fin;
  }
}

/// Full kTileRows-row tile, defined in dispatch.cc: rows-in-lanes (one
/// 8-wide vector lane per row, weights broadcast — the layout batched
/// serving wants) when the CPU supports AVX2, row-at-a-time MicroRow1F32
/// otherwise. Deliberately compiled without fused multiply-add: a fused
/// contraction would round differently and break the per-row bit-identity
/// contract above.
void MicroTile8F32(const float* x, const float* w, float* out, int64_t n_cols,
                   int64_t k_depth, int64_t out_stride);

/// Deepest contraction the rows-in-lanes tile holds in its stack-resident
/// transpose buffer (32 KiB). MicroTile8F32 falls back to row-at-a-time
/// beyond it; MicroTile8BlockedF32 instead chunks K at this bound and
/// keeps the lanes path for any depth.
inline constexpr int64_t kMicroTileDepthLimit = 1024;

/// K-chunked variant of the full tile for the cache-blocked dense path
/// (DenseBlocked): streams K in block_k-sized chunks (rounded to a
/// multiple of 4, capped at kMicroTileDepthLimit) while keeping every
/// (row, column) accumulator chain live across chunks, so the per-element
/// arithmetic order is EXACTLY MicroRow1F32's — chunk boundaries at
/// multiples of 4 only split each chain's += sequence, they never reorder
/// or re-associate it. When one chunk covers the whole contraction it
/// delegates to MicroTile8F32 outright (one micro-kernel, one contract);
/// past the old depth limit it is also what keeps the blocked path
/// vectorized where MicroTile8F32 would drop to scalar rows.
void MicroTile8BlockedF32(const float* x, const float* w, float* out,
                          int64_t n_cols, int64_t k_depth, int64_t out_stride,
                          int64_t block_k);

/// Computes a ROWS x N block of the output, one row at a time. Interleaving
/// rows inside the k-loop looks tempting but defeats vectorization of the
/// four chains once ROWS > 1 (measured ~3x worse per row); row-at-a-time
/// keeps every residue tail at the single-row kernel's cost.
template <int ROWS>
inline void MicroRowsF32(const float* x, const float* w, float* out,
                         int64_t n_cols, int64_t k_depth, int64_t out_stride) {
  for (int r = 0; r < ROWS; ++r) {
    MicroRow1F32(x + r * k_depth, w, out + r * out_stride, n_cols, k_depth);
  }
}

/// Runtime-row-count block: the row loop has a runtime trip count nested in
/// the hot k-loop, which blocks unrolling — the cost of unresolved boundary
/// conditions.
inline void MicroRowsDynF32(const float* x, const float* w, float* out,
                            int64_t rows, int64_t n_cols, int64_t k_depth,
                            int64_t out_stride) {
  for (int64_t n = 0; n < n_cols; ++n) {
    const float* wrow = w + n * k_depth;
    for (int64_t r = 0; r < rows; ++r) {
      float acc = 0.0f;
      const float* xrow = x + r * k_depth;
      for (int64_t k = 0; k < k_depth; ++k) acc += xrow[k] * wrow[k];
      out[r * out_stride + n] = acc;
    }
  }
}

/// Residue-specialized dense kernel: M = kTileRows * q + R with R fixed at
/// compile time. All loop bounds in the hot path are tile-exact; full tiles
/// run rows-in-lanes where the CPU allows (MicroTile8F32).
template <int R>
void DenseResidue(const float* x, const float* w, float* out, int64_t m,
                  int64_t n, int64_t k) {
  int64_t q = m / kTileRows;
  for (int64_t t = 0; t < q; ++t) {
    MicroTile8F32(x + t * kTileRows * k, w, out + t * kTileRows * n, n, k, n);
  }
  if constexpr (R > 0) {
    MicroRowsF32<R>(x + q * kTileRows * k, w, out + q * kTileRows * n, n, k, n);
  }
}

/// Generic symbolic kernel: every tile carries a runtime boundary check.
void DenseSymbolicChecked(const float* x, const float* w, float* out,
                          int64_t m, int64_t n, int64_t k);

/// Fully static kernel: all three extents are compile-time constants. Used
/// as the Figure 3 baseline ("static codegen").
template <int64_t M, int64_t N, int64_t K>
void DenseStatic(const float* x, const float* w, float* out) {
  constexpr int64_t q = M / kTileRows;
  constexpr int R = static_cast<int>(M % kTileRows);
  for (int64_t t = 0; t < q; ++t) {
    MicroTile8F32(x + t * kTileRows * K, w, out + t * kTileRows * N, N, K, N);
  }
  if constexpr (R > 0) {
    MicroRowsF32<R>(x + q * kTileRows * K, w, out + q * kTileRows * N, N, K, N);
  }
}

}  // namespace codegen
}  // namespace nimble
