// Dense (fully-connected) kernel variants for symbolic codegen (§4.5).
//
// Convention: x is [M, K], w is [N, K] (transposed weights), out is [M, N].
//
// The paper's observation: after tiling a symbolic dimension by a factor T,
// loop boundary conditions can only be eliminated if the residue r = M mod T
// is known when the kernel is compiled. Nimble therefore emits T
// residue-specialized copies of the kernel (replacing M with T*q + r) plus a
// runtime dispatch on r; with fewer copies, uncovered residues fall back to
// the generic symbolic kernel whose inner loops carry runtime bounds checks
// and cannot be unrolled.
//
// We reproduce that structure with templates:
//  - MicroRowsF32<ROWS>: compile-time row count => the row loop unrolls into
//    ROWS independent accumulator chains (the "boundary check eliminated"
//    code the paper's codegen produces);
//  - DenseResidue<R>: q full tiles of kTileRows rows + a compile-time tail
//    of R rows — the specialized kernel for residue class R;
//  - DenseSymbolicChecked: one generic kernel where every tile re-derives
//    `rows = min(kTileRows, M - i)` and loops with a runtime trip count —
//    what symbolic codegen emits when it cannot specialize.
#pragma once

#include <algorithm>
#include <cstdint>

namespace nimble {
namespace codegen {

/// Tile factor along the (symbolic) M dimension. The paper's auto-tuner
/// selects 8 for all three BERT dense layers (§6.3).
inline constexpr int kTileRows = 8;

/// Computes a ROWS x N block of the output. ROWS is a compile-time constant,
/// so the per-row accumulator loop fully unrolls.
template <int ROWS>
inline void MicroRowsF32(const float* x, const float* w, float* out,
                         int64_t n_cols, int64_t k_depth, int64_t out_stride) {
  for (int64_t n = 0; n < n_cols; ++n) {
    // 4 accumulator chains per row break the FMA latency chain; both loops
    // have compile-time trip counts, so the whole body unrolls/vectorizes —
    // the code shape the paper's codegen achieves once boundary checks are
    // eliminated.
    float acc[ROWS][4] = {};
    const float* wrow = w + n * k_depth;
    int64_t k = 0;
    for (; k + 4 <= k_depth; k += 4) {
      for (int r = 0; r < ROWS; ++r) {
        const float* xrow = x + r * k_depth + k;
        acc[r][0] += xrow[0] * wrow[k + 0];
        acc[r][1] += xrow[1] * wrow[k + 1];
        acc[r][2] += xrow[2] * wrow[k + 2];
        acc[r][3] += xrow[3] * wrow[k + 3];
      }
    }
    for (int r = 0; r < ROWS; ++r) {
      float fin = (acc[r][0] + acc[r][1]) + (acc[r][2] + acc[r][3]);
      for (int64_t kk = k; kk < k_depth; ++kk) {
        fin += x[r * k_depth + kk] * wrow[kk];
      }
      out[r * out_stride + n] = fin;
    }
  }
}

/// Runtime-row-count block: the row loop has a runtime trip count nested in
/// the hot k-loop, which blocks unrolling — the cost of unresolved boundary
/// conditions.
inline void MicroRowsDynF32(const float* x, const float* w, float* out,
                            int64_t rows, int64_t n_cols, int64_t k_depth,
                            int64_t out_stride) {
  for (int64_t n = 0; n < n_cols; ++n) {
    const float* wrow = w + n * k_depth;
    for (int64_t r = 0; r < rows; ++r) {
      float acc = 0.0f;
      const float* xrow = x + r * k_depth;
      for (int64_t k = 0; k < k_depth; ++k) acc += xrow[k] * wrow[k];
      out[r * out_stride + n] = acc;
    }
  }
}

/// Residue-specialized dense kernel: M = kTileRows * q + R with R fixed at
/// compile time. All loop bounds in the hot path are tile-exact.
template <int R>
void DenseResidue(const float* x, const float* w, float* out, int64_t m,
                  int64_t n, int64_t k) {
  int64_t q = m / kTileRows;
  for (int64_t t = 0; t < q; ++t) {
    MicroRowsF32<kTileRows>(x + t * kTileRows * k, w, out + t * kTileRows * n,
                            n, k, n);
  }
  if constexpr (R > 0) {
    MicroRowsF32<R>(x + q * kTileRows * k, w, out + q * kTileRows * n, n, k, n);
  }
}

/// Generic symbolic kernel: every tile carries a runtime boundary check.
void DenseSymbolicChecked(const float* x, const float* w, float* out,
                          int64_t m, int64_t n, int64_t k);

/// Fully static kernel: all three extents are compile-time constants. Used
/// as the Figure 3 baseline ("static codegen").
template <int64_t M, int64_t N, int64_t K>
void DenseStatic(const float* x, const float* w, float* out) {
  constexpr int64_t q = M / kTileRows;
  constexpr int R = static_cast<int>(M % kTileRows);
  for (int64_t t = 0; t < q; ++t) {
    MicroRowsF32<kTileRows>(x + t * kTileRows * K, w, out + t * kTileRows * N,
                            N, K, N);
  }
  if constexpr (R > 0) {
    MicroRowsF32<R>(x + q * kTileRows * K, w, out + q * kTileRows * N, N, K, N);
  }
}

}  // namespace codegen
}  // namespace nimble
