#include "src/codegen/tuner.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "src/codegen/dense_kernels.h"
#include "src/support/logging.h"
#include "src/support/rng.h"

namespace nimble {
namespace codegen {

int64_t DenseCellCount(int64_t m, int64_t n, const DenseConfig& config) {
  int64_t bn = config.block_n < 1 ? 1 : config.block_n;
  int64_t row_tiles = (m + kTileRows - 1) / kTileRows;
  int64_t col_blocks = (n + bn - 1) / bn;
  return row_tiles * col_blocks;
}

void DenseBlockedCell(const float* x, const float* w, float* out, int64_t m,
                      int64_t n, int64_t k, const DenseConfig& config,
                      int64_t cell) {
  int64_t bn = config.block_n < 1 ? 1 : config.block_n;
  int64_t col_blocks = (n + bn - 1) / bn;
  int64_t i0 = (cell / col_blocks) * kTileRows;
  int64_t n0 = (cell % col_blocks) * bn;
  int64_t n1 = std::min(n0 + bn, n);
  int64_t rows = std::min<int64_t>(kTileRows, m - i0);
  const float* xr = x + i0 * k;
  const float* wb = w + n0 * k;
  float* outr = out + i0 * n + n0;
  if (rows == kTileRows) {
    MicroTile8BlockedF32(xr, wb, outr, n1 - n0, k, n, config.block_k);
  } else {
    // Residue tail: the same single-row kernel the residue-dispatch path
    // ends in, so a partial tile's bits match it exactly.
    for (int64_t r = 0; r < rows; ++r) {
      MicroRow1F32(xr + r * k, wb, outr + r * n, n1 - n0, k);
    }
  }
}

void DenseBlocked(const float* x, const float* w, float* out, int64_t m,
                  int64_t n, int64_t k, const DenseConfig& config) {
  int64_t cells = DenseCellCount(m, n, config);
  for (int64_t cell = 0; cell < cells; ++cell) {
    DenseBlockedCell(x, w, out, m, n, k, config, cell);
  }
}

std::vector<DenseConfig> DenseConfigSpace() {
  std::vector<DenseConfig> space;
  for (int64_t bn : {8, 16, 32, 64, 128}) {
    for (int64_t bk : {16, 32, 64, 128, 256}) {
      space.push_back(DenseConfig{bn, bk});
    }
  }
  return space;
}

double MeasureDenseConfig(const DenseConfig& config, int64_t m, int64_t n,
                          int64_t k, int repeats) {
  support::Rng rng(99);
  std::vector<float> x(m * k), w(n * k), out(m * n);
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : w) v = static_cast<float>(rng.Uniform(-1, 1));
  DenseBlocked(x.data(), w.data(), out.data(), m, n, k, config);  // warm-up
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    DenseBlocked(x.data(), w.data(), out.data(), m, n, k, config);
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::vector<MeasuredConfig> TuneDenseStatic(int64_t m, int64_t n, int64_t k,
                                            int repeats) {
  std::vector<MeasuredConfig> measured;
  for (const DenseConfig& config : DenseConfigSpace()) {
    measured.push_back(
        MeasuredConfig{config, MeasureDenseConfig(config, m, n, k, repeats)});
  }
  std::sort(measured.begin(), measured.end(),
            [](const MeasuredConfig& a, const MeasuredConfig& b) {
              return a.seconds < b.seconds;
            });
  return measured;
}

SymbolicTuneResult TuneDenseSymbolic(int64_t n, int64_t k, int top_k,
                                     int64_t tuning_m, int64_t max_eval_m) {
  SymbolicTuneResult result;
  // Step 1: tune at the representative static shape.
  result.tuning_shape_ranking = TuneDenseStatic(tuning_m, n, k);
  int keep = std::min<int>(top_k, static_cast<int>(result.tuning_shape_ranking.size()));

  // Step 2: cross-evaluate the top-k configs on powers of two.
  for (int64_t m = 1; m <= max_eval_m; m *= 2) result.eval_shapes.push_back(m);
  double best_avg = 0.0;
  bool first = true;
  for (int c = 0; c < keep; ++c) {
    const DenseConfig& config = result.tuning_shape_ranking[c].config;
    double total = 0.0;
    for (int64_t m : result.eval_shapes) {
      total += MeasureDenseConfig(config, m, n, k, 3);
    }
    double avg = total / static_cast<double>(result.eval_shapes.size());
    // Step 3: pick the best average performer.
    if (first || avg < best_avg) {
      best_avg = avg;
      result.chosen = config;
      first = false;
    }
  }
  result.chosen_avg_seconds = best_avg;
  return result;
}

TunedDense TuneCache::GetOrTune(int64_t m, int64_t n, int64_t k, int repeats) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_tuple(m, n, k);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    TunedDense hit = it->second;
    hit.fresh = false;
    return hit;
  }
  std::vector<MeasuredConfig> ranking = TuneDenseStatic(m, n, k, repeats);
  NIMBLE_CHECK(!ranking.empty());
  TunedDense tuned;
  tuned.config = ranking.front().config;
  tuned.seconds = ranking.front().seconds;
  tuned.fresh = true;
  cache_[key] = tuned;
  return tuned;
}

int64_t TuneCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(cache_.size());
}

TuneCache* TuneCache::Global() {
  static TuneCache* cache = new TuneCache();
  return cache;
}

}  // namespace codegen
}  // namespace nimble
