#include "src/codegen/tuner.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "src/support/logging.h"
#include "src/support/rng.h"

namespace nimble {
namespace codegen {

void DenseBlocked(const float* x, const float* w, float* out, int64_t m,
                  int64_t n, int64_t k, const DenseConfig& config) {
  std::memset(out, 0, static_cast<size_t>(m * n) * sizeof(float));
  int64_t bn = config.block_n, bk = config.block_k;
  for (int64_t k0 = 0; k0 < k; k0 += bk) {
    int64_t k1 = std::min(k0 + bk, k);
    for (int64_t n0 = 0; n0 < n; n0 += bn) {
      int64_t n1 = std::min(n0 + bn, n);
      for (int64_t i = 0; i < m; ++i) {
        const float* xrow = x + i * k;
        float* orow = out + i * n;
        for (int64_t j = n0; j < n1; ++j) {
          const float* wrow = w + j * k;
          float acc = 0.0f;
          for (int64_t kk = k0; kk < k1; ++kk) acc += xrow[kk] * wrow[kk];
          orow[j] += acc;
        }
      }
    }
  }
}

std::vector<DenseConfig> DenseConfigSpace() {
  std::vector<DenseConfig> space;
  for (int64_t bn : {8, 16, 32, 64, 128}) {
    for (int64_t bk : {16, 32, 64, 128, 256}) {
      space.push_back(DenseConfig{bn, bk});
    }
  }
  return space;
}

double MeasureDenseConfig(const DenseConfig& config, int64_t m, int64_t n,
                          int64_t k, int repeats) {
  support::Rng rng(99);
  std::vector<float> x(m * k), w(n * k), out(m * n);
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : w) v = static_cast<float>(rng.Uniform(-1, 1));
  DenseBlocked(x.data(), w.data(), out.data(), m, n, k, config);  // warm-up
  std::vector<double> times;
  for (int r = 0; r < repeats; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    DenseBlocked(x.data(), w.data(), out.data(), m, n, k, config);
    auto t1 = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

std::vector<MeasuredConfig> TuneDenseStatic(int64_t m, int64_t n, int64_t k,
                                            int repeats) {
  std::vector<MeasuredConfig> measured;
  for (const DenseConfig& config : DenseConfigSpace()) {
    measured.push_back(
        MeasuredConfig{config, MeasureDenseConfig(config, m, n, k, repeats)});
  }
  std::sort(measured.begin(), measured.end(),
            [](const MeasuredConfig& a, const MeasuredConfig& b) {
              return a.seconds < b.seconds;
            });
  return measured;
}

SymbolicTuneResult TuneDenseSymbolic(int64_t n, int64_t k, int top_k,
                                     int64_t tuning_m, int64_t max_eval_m) {
  SymbolicTuneResult result;
  // Step 1: tune at the representative static shape.
  result.tuning_shape_ranking = TuneDenseStatic(tuning_m, n, k);
  int keep = std::min<int>(top_k, static_cast<int>(result.tuning_shape_ranking.size()));

  // Step 2: cross-evaluate the top-k configs on powers of two.
  for (int64_t m = 1; m <= max_eval_m; m *= 2) result.eval_shapes.push_back(m);
  double best_avg = 0.0;
  bool first = true;
  for (int c = 0; c < keep; ++c) {
    const DenseConfig& config = result.tuning_shape_ranking[c].config;
    double total = 0.0;
    for (int64_t m : result.eval_shapes) {
      total += MeasureDenseConfig(config, m, n, k, 3);
    }
    double avg = total / static_cast<double>(result.eval_shapes.size());
    // Step 3: pick the best average performer.
    if (first || avg < best_avg) {
      best_avg = avg;
      result.chosen = config;
      first = false;
    }
  }
  result.chosen_avg_seconds = best_avg;
  return result;
}

}  // namespace codegen
}  // namespace nimble
