#include "src/models/tree_lstm.h"

#include <cmath>

#include "src/op/registry.h"

namespace nimble {
namespace models {

using namespace ir;  // NOLINT
using op::Call1;
using op::Call2;
using runtime::DataType;
using runtime::NDArray;

namespace {

Expr UnfusedCell(Expr gates, Expr c) {
  Expr sp = Call1("split", gates, Attrs().Set("sections", 4).Set("axis", 1));
  Expr i = Call1("sigmoid", MakeTupleGetItem(sp, 0));
  Expr f = Call1("sigmoid", MakeTupleGetItem(sp, 1));
  Expr g = Call1("tanh", MakeTupleGetItem(sp, 2));
  Expr o = Call1("sigmoid", MakeTupleGetItem(sp, 3));
  Expr c2 = Call2("add", Call2("multiply", f, c), Call2("multiply", i, g));
  Expr h2 = Call2("multiply", o, Call1("tanh", c2));
  return MakeTuple({h2, c2});
}

void CellReference(const TreeLSTMWeights& w, const std::vector<float>& gates,
                   std::vector<float>* c, std::vector<float>* h) {
  int64_t H = w.c0.shape()[1];
  auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
  for (int64_t j = 0; j < H; ++j) {
    float i = sigmoid(gates[j]);
    float f = sigmoid(gates[H + j]);
    float g = std::tanh(gates[2 * H + j]);
    float o = sigmoid(gates[3 * H + j]);
    (*c)[j] = f * (*c)[j] + i * g;
    (*h)[j] = o * std::tanh((*c)[j]);
  }
}

}  // namespace

TreeLSTMModel BuildTreeLSTM(const TreeLSTMConfig& config) {
  support::Rng rng(config.seed);
  int64_t H = config.hidden_size;
  int64_t I = config.input_size;
  double scale = 1.0 / std::sqrt(static_cast<double>(H));

  TreeLSTMModel model;
  model.config = config;
  model.weights.wx = NDArray::Empty({4 * H, I}, DataType::Float32());
  model.weights.wh = NDArray::Empty({4 * H, H}, DataType::Float32());
  model.weights.b = NDArray::Empty({4 * H}, DataType::Float32());
  model.weights.wx.FillUniform(rng, -scale, scale);
  model.weights.wh.FillUniform(rng, -scale, scale);
  model.weights.b.FillUniform(rng, -scale, scale);
  model.weights.c0 = NDArray::Empty({1, H}, DataType::Float32());
  model.weights.c0.Fill(0.0);

  Type leaf_type = TensorType({Dim::Static(1), Dim::Static(I)});
  Type state_type = TensorType({Dim::Static(1), Dim::Static(H)});
  Type pair_type = TupleType({state_type, state_type});

  const TypeData& tree = model.module.DefineADT(
      "Tree", {{"Leaf", {leaf_type}}, {"Node", {ADTType("Tree"), ADTType("Tree")}}});
  Constructor leaf_ctor = tree.constructors[0];
  Constructor node_ctor = tree.constructors[1];

  Expr wx = MakeConstant(model.weights.wx);
  Expr wh = MakeConstant(model.weights.wh);
  Expr b = MakeConstant(model.weights.b);
  Expr c0 = MakeConstant(model.weights.c0);

  // @tree_eval(t: Tree) -> (h, c)
  GlobalVar eval = MakeGlobalVar("tree_eval");
  Var t = MakeVar("t", ADTType("Tree"));

  // Leaf clause: gates = bias_add(dense(x, Wx), b); cell(gates, 0).
  Var leaf_x = MakeVar("x", leaf_type);
  Expr leaf_gates = Call2("nn.bias_add", Call2("nn.dense", leaf_x, wx), b);
  Expr leaf_body = UnfusedCell(leaf_gates, c0);

  // Node clause: evaluate children, sum states, gate on the sum.
  Var lchild = MakeVar("l", ADTType("Tree"));
  Var rchild = MakeVar("r", ADTType("Tree"));
  Var ls = MakeVar("ls");
  Var rs = MakeVar("rs");
  Expr h_sum = Call2("add", MakeTupleGetItem(ls, 0), MakeTupleGetItem(rs, 0));
  Expr c_sum = Call2("add", MakeTupleGetItem(ls, 1), MakeTupleGetItem(rs, 1));
  Expr node_gates = Call2("nn.bias_add", Call2("nn.dense", h_sum, wh), b);
  Expr node_body =
      MakeLet(ls, MakeCall(eval, {lchild}),
              MakeLet(rs, MakeCall(eval, {rchild}),
                      UnfusedCell(node_gates, c_sum)));

  Expr match = MakeMatch(
      t, {MatchClause{leaf_ctor, {leaf_x}, leaf_body},
          MatchClause{node_ctor, {lchild, rchild}, node_body}});
  model.module.Add("tree_eval", MakeFunction({t}, match, pair_type));

  // @main(t) = tree_eval(t).0
  Var mt = MakeVar("t", ADTType("Tree"));
  model.module.Add(
      "main",
      MakeFunction({mt}, MakeTupleGetItem(MakeCall(eval, {mt}), 0), state_type));
  return model;
}

int HostTree::num_leaves() const {
  if (is_leaf()) return 1;
  return left->num_leaves() + right->num_leaves();
}

int HostTree::num_nodes() const {
  if (is_leaf()) return 1;
  return 1 + left->num_nodes() + right->num_nodes();
}

std::unique_ptr<HostTree> RandomTree(int leaves, int64_t input,
                                     support::Rng& rng) {
  auto node = std::make_unique<HostTree>();
  if (leaves <= 1) {
    node->leaf = NDArray::Empty({1, input}, DataType::Float32());
    node->leaf.FillUniform(rng, -1.0, 1.0);
    return node;
  }
  int left = 1 + static_cast<int>(rng.UniformInt(0, leaves - 2));
  node->left = RandomTree(left, input, rng);
  node->right = RandomTree(leaves - left, input, rng);
  return node;
}

runtime::ObjectRef TreeToObject(const HostTree& tree) {
  if (tree.is_leaf()) {
    return runtime::MakeADT(0, {runtime::MakeTensor(tree.leaf)});
  }
  return runtime::MakeADT(1, {TreeToObject(*tree.left), TreeToObject(*tree.right)});
}

namespace {

void EvalReference(const TreeLSTMWeights& w, const HostTree& tree,
                   std::vector<float>* h, std::vector<float>* c) {
  int64_t H = w.c0.shape()[1];
  std::vector<float> gates(4 * H);
  const float* b = w.b.data<float>();
  if (tree.is_leaf()) {
    int64_t I = w.wx.shape()[1];
    const float* wx = w.wx.data<float>();
    const float* x = tree.leaf.data<float>();
    for (int64_t j = 0; j < 4 * H; ++j) {
      float acc = b[j];
      for (int64_t k = 0; k < I; ++k) acc += x[k] * wx[j * I + k];
      gates[j] = acc;
    }
    h->assign(H, 0.0f);
    c->assign(H, 0.0f);
    CellReference(w, gates, c, h);
    return;
  }
  std::vector<float> hl, cl, hr, cr;
  EvalReference(w, *tree.left, &hl, &cl);
  EvalReference(w, *tree.right, &hr, &cr);
  const float* wh = w.wh.data<float>();
  for (int64_t j = 0; j < 4 * H; ++j) {
    float acc = b[j];
    for (int64_t k = 0; k < H; ++k) acc += (hl[k] + hr[k]) * wh[j * H + k];
    gates[j] = acc;
  }
  c->resize(H);
  h->resize(H);
  for (int64_t k = 0; k < H; ++k) (*c)[k] = cl[k] + cr[k];
  CellReference(w, gates, c, h);
}

}  // namespace

runtime::NDArray RunTreeLSTMReference(const TreeLSTMWeights& weights,
                                      const HostTree& tree) {
  std::vector<float> h, c;
  EvalReference(weights, tree, &h, &c);
  NDArray out = NDArray::Empty({1, static_cast<int64_t>(h.size())},
                               DataType::Float32());
  std::copy(h.begin(), h.end(), out.data<float>());
  return out;
}

}  // namespace models
}  // namespace nimble
