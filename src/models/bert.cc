#include "src/models/bert.h"

#include <cmath>

#include "src/op/registry.h"
#include "src/support/rng.h"

namespace nimble {
namespace models {

using namespace ir;  // NOLINT
using op::Call1;
using op::Call2;
using op::Call3;
using runtime::DataType;
using runtime::NDArray;

namespace {

NDArray Rand(runtime::ShapeVec shape, support::Rng& rng, double scale) {
  NDArray arr = NDArray::Empty(std::move(shape), DataType::Float32());
  arr.FillUniform(rng, -scale, scale);
  return arr;
}

}  // namespace

BERTModel BuildBERT(const BERTConfig& config) {
  support::Rng rng(config.seed);
  int64_t H = config.hidden;
  int64_t A = config.num_heads;
  int64_t D = H / A;
  int64_t F = config.ffn_hidden;
  double scale = 1.0 / std::sqrt(static_cast<double>(H));

  BERTModel model;
  model.config = config;
  model.weights.embedding = Rand({config.vocab, H}, rng, 1.0);
  for (int l = 0; l < config.num_layers; ++l) {
    BERTWeights::Layer layer;
    layer.wq = Rand({H, H}, rng, scale);
    layer.wk = Rand({H, H}, rng, scale);
    layer.wv = Rand({H, H}, rng, scale);
    layer.wo = Rand({H, H}, rng, scale);
    layer.bq = Rand({H}, rng, scale);
    layer.bk = Rand({H}, rng, scale);
    layer.bv = Rand({H}, rng, scale);
    layer.bo = Rand({H}, rng, scale);
    layer.w1 = Rand({F, H}, rng, scale);
    layer.b1 = Rand({F}, rng, scale);
    layer.w2 = Rand({H, F}, rng, scale);
    layer.b2 = Rand({H}, rng, scale);
    layer.ln1_g = NDArray::Empty({H}, DataType::Float32());
    layer.ln1_b = NDArray::Empty({H}, DataType::Float32());
    layer.ln2_g = NDArray::Empty({H}, DataType::Float32());
    layer.ln2_b = NDArray::Empty({H}, DataType::Float32());
    layer.ln1_g.Fill(1.0);
    layer.ln1_b.Fill(0.0);
    layer.ln2_g.Fill(1.0);
    layer.ln2_b.Fill(0.0);
    model.weights.layers.push_back(std::move(layer));
  }

  Dim L = Dim::FreshSym("L");
  Var ids = MakeVar("ids", TensorType({L}, DataType::Int64()));

  // Token embedding lookup: [L] -> [L, H].
  Expr x = Call2("take", MakeConstant(model.weights.embedding), ids);

  auto dense_bias = [&](Expr in, const NDArray& w, const NDArray& b) {
    return Call2("nn.bias_add", Call2("nn.dense", in, MakeConstant(w)),
                 MakeConstant(b));
  };
  auto to_heads = [&](Expr t, std::vector<int64_t> perm) {
    // [L, H] -> [L, A, D] -> transpose(perm)
    Expr r = Call1("reshape", t, Attrs().Set("newshape", std::vector<int64_t>{0, A, D}));
    return Call1("transpose", r, Attrs().Set("axes", std::move(perm)));
  };

  for (int l = 0; l < config.num_layers; ++l) {
    const auto& w = model.weights.layers[l];
    Expr q = to_heads(dense_bias(x, w.wq, w.bq), {1, 0, 2});  // [A, L, D]
    Expr k = to_heads(dense_bias(x, w.wk, w.bk), {1, 0, 2});  // [A, L, D]
    Expr v = to_heads(dense_bias(x, w.wv, w.bv), {1, 2, 0});  // [A, D, L]

    // scores[A, L, L] = q · kᵀ, scaled.
    Expr scores = Call2("nn.batch_matmul", q, k);
    scores = Call2("multiply", scores,
                   FloatConst(1.0f / std::sqrt(static_cast<float>(D))));
    Expr probs = Call1("nn.softmax", scores);
    // ctx[A, L, D] = probs · v (v is stored [A, D, L] = "weightsᵀ").
    Expr ctx = Call2("nn.batch_matmul", probs, v);
    ctx = Call1("transpose", ctx, Attrs().Set("axes", std::vector<int64_t>{1, 0, 2}));
    ctx = Call1("reshape", ctx, Attrs().Set("newshape", std::vector<int64_t>{0, H}));

    Expr attn = dense_bias(ctx, w.wo, w.bo);
    x = Call3("nn.layer_norm", Call2("add", attn, x), MakeConstant(w.ln1_g),
              MakeConstant(w.ln1_b));

    Expr ffn = Call1("gelu", dense_bias(x, w.w1, w.b1));
    ffn = dense_bias(ffn, w.w2, w.b2);
    x = Call3("nn.layer_norm", Call2("add", ffn, x), MakeConstant(w.ln2_g),
              MakeConstant(w.ln2_b));
  }

  model.module.Add("main",
                   MakeFunction({ids}, x, TensorType({L, Dim::Static(H)})));
  return model;
}

runtime::NDArray RunBERTReference(const BERTModel& model,
                                  const std::vector<int64_t>& ids) {
  const BERTConfig& cfg = model.config;
  int64_t Ln = static_cast<int64_t>(ids.size());
  int64_t H = cfg.hidden, A = cfg.num_heads, D = H / A, F = cfg.ffn_hidden;

  std::vector<float> x(Ln * H);
  const float* emb = model.weights.embedding.data<float>();
  for (int64_t i = 0; i < Ln; ++i) {
    std::copy(emb + ids[i] * H, emb + (ids[i] + 1) * H, x.begin() + i * H);
  }

  auto dense_bias = [&](const std::vector<float>& in, int64_t rows, int64_t kdim,
                        const NDArray& w, const NDArray& b) {
    int64_t n = w.shape()[0];
    std::vector<float> out(rows * n);
    const float* pw = w.data<float>();
    const float* pb = b.data<float>();
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = pb[j];
        for (int64_t kk = 0; kk < kdim; ++kk)
          acc += in[i * kdim + kk] * pw[j * kdim + kk];
        out[i * n + j] = acc;
      }
    }
    return out;
  };
  auto layer_norm = [&](std::vector<float>& v, int64_t rows, const NDArray& g,
                        const NDArray& b) {
    const float* pg = g.data<float>();
    const float* pb = b.data<float>();
    for (int64_t i = 0; i < rows; ++i) {
      float mean = 0.0f, var = 0.0f;
      for (int64_t j = 0; j < H; ++j) mean += v[i * H + j];
      mean /= H;
      for (int64_t j = 0; j < H; ++j) {
        float d = v[i * H + j] - mean;
        var += d * d;
      }
      var /= H;
      float inv = 1.0f / std::sqrt(var + 1e-5f);
      for (int64_t j = 0; j < H; ++j) {
        v[i * H + j] = (v[i * H + j] - mean) * inv * pg[j] + pb[j];
      }
    }
  };

  for (const auto& w : model.weights.layers) {
    auto q = dense_bias(x, Ln, H, w.wq, w.bq);
    auto k = dense_bias(x, Ln, H, w.wk, w.bk);
    auto v = dense_bias(x, Ln, H, w.wv, w.bv);
    std::vector<float> ctx(Ln * H, 0.0f);
    float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(D));
    std::vector<float> scores(Ln);
    for (int64_t a = 0; a < A; ++a) {
      for (int64_t i = 0; i < Ln; ++i) {
        float mx = -1e30f;
        for (int64_t j = 0; j < Ln; ++j) {
          float acc = 0.0f;
          for (int64_t d = 0; d < D; ++d) {
            acc += q[i * H + a * D + d] * k[j * H + a * D + d];
          }
          scores[j] = acc * inv_sqrt_d;
          mx = std::max(mx, scores[j]);
        }
        float sum = 0.0f;
        for (int64_t j = 0; j < Ln; ++j) {
          scores[j] = std::exp(scores[j] - mx);
          sum += scores[j];
        }
        for (int64_t j = 0; j < Ln; ++j) scores[j] /= sum;
        for (int64_t j = 0; j < Ln; ++j) {
          for (int64_t d = 0; d < D; ++d) {
            ctx[i * H + a * D + d] += scores[j] * v[j * H + a * D + d];
          }
        }
      }
    }
    auto attn = dense_bias(ctx, Ln, H, w.wo, w.bo);
    for (int64_t i = 0; i < Ln * H; ++i) attn[i] += x[i];
    layer_norm(attn, Ln, w.ln1_g, w.ln1_b);
    x = attn;

    auto f1 = dense_bias(x, Ln, H, w.w1, w.b1);
    for (auto& vv : f1) vv = 0.5f * vv * (1.0f + std::erf(vv * 0.70710678f));
    auto f2 = dense_bias(f1, Ln, F, w.w2, w.b2);
    for (int64_t i = 0; i < Ln * H; ++i) f2[i] += x[i];
    layer_norm(f2, Ln, w.ln2_g, w.ln2_b);
    x = f2;
  }

  NDArray out = NDArray::Empty({Ln, H}, DataType::Float32());
  std::copy(x.begin(), x.end(), out.data<float>());
  return out;
}

}  // namespace models
}  // namespace nimble
