#include "src/models/workloads.h"

#include <algorithm>
#include <cmath>

namespace nimble {
namespace models {

std::vector<int64_t> SampleMRPCLengths(int count, support::Rng& rng,
                                       int64_t max_len) {
  // MRPC sentences average ~22 words; with word-piece tokenization the
  // typical BERT input is ~40 tokens. Model as a clipped normal.
  std::vector<int64_t> lengths;
  lengths.reserve(count);
  for (int i = 0; i < count; ++i) {
    double v = 40.0 + 18.0 * rng.Normal();
    int64_t len = static_cast<int64_t>(std::llround(v));
    lengths.push_back(std::clamp<int64_t>(len, 4, max_len));
  }
  return lengths;
}

std::vector<int> SampleSSTSizes(int count, support::Rng& rng) {
  // SST sentences average ~19 tokens.
  std::vector<int> sizes;
  sizes.reserve(count);
  for (int i = 0; i < count; ++i) {
    double v = 19.0 + 8.0 * rng.Normal();
    sizes.push_back(static_cast<int>(std::clamp(v, 3.0, 52.0)));
  }
  return sizes;
}

runtime::NDArray RandomSequence(int64_t len, int64_t width, support::Rng& rng) {
  runtime::NDArray arr =
      runtime::NDArray::Empty({len, width}, runtime::DataType::Float32());
  arr.FillUniform(rng, -1.0, 1.0);
  return arr;
}

std::vector<int64_t> RandomTokenIds(int64_t len, int64_t vocab,
                                    support::Rng& rng) {
  std::vector<int64_t> ids(len);
  for (auto& id : ids) id = rng.UniformInt(0, vocab - 1);
  return ids;
}

}  // namespace models
}  // namespace nimble
