#include "src/models/lstm.h"

#include <cmath>

#include "src/op/registry.h"
#include "src/support/rng.h"

namespace nimble {
namespace models {

using namespace ir;  // NOLINT
using op::Call1;
using op::Call2;
using op::Call3;
using runtime::DataType;
using runtime::NDArray;

namespace {

NDArray RandomTensor(runtime::ShapeVec shape, support::Rng& rng, double scale) {
  NDArray arr = NDArray::Empty(std::move(shape), DataType::Float32());
  arr.FillUniform(rng, -scale, scale);
  return arr;
}

/// The canonical unfused LSTM cell dataflow; FuseLSTMCell pattern-matches
/// this exact structure (gate order i|f|g|o).
Expr UnfusedCell(Expr gates, Expr c) {
  Expr sp = Call1("split", gates, Attrs().Set("sections", 4).Set("axis", 1));
  Expr i = Call1("sigmoid", MakeTupleGetItem(sp, 0));
  Expr f = Call1("sigmoid", MakeTupleGetItem(sp, 1));
  Expr g = Call1("tanh", MakeTupleGetItem(sp, 2));
  Expr o = Call1("sigmoid", MakeTupleGetItem(sp, 3));
  Expr c2 = Call2("add", Call2("multiply", f, c), Call2("multiply", i, g));
  Expr h2 = Call2("multiply", o, Call1("tanh", c2));
  return MakeTuple({h2, c2});
}

}  // namespace

LSTMModel BuildLSTM(const LSTMConfig& config) {
  support::Rng rng(config.seed);
  int64_t H = config.hidden_size;

  LSTMModel model;
  model.config = config;
  double scale = 1.0 / std::sqrt(static_cast<double>(H));
  for (int l = 0; l < config.num_layers; ++l) {
    int64_t in = l == 0 ? config.input_size : H;
    model.weights.layers.push_back(LSTMWeights::Layer{
        RandomTensor({4 * H, in}, rng, scale),
        RandomTensor({4 * H, H}, rng, scale),
        RandomTensor({4 * H}, rng, scale)});
  }
  model.weights.h0 = NDArray::Empty({1, H}, DataType::Float32());
  model.weights.c0 = NDArray::Empty({1, H}, DataType::Float32());
  model.weights.h0.Fill(0.0);
  model.weights.c0.Fill(0.0);

  // Types. The sequence length is a symbolic dimension.
  Dim L = Dim::FreshSym("L");
  Type x_type = TensorType({L, Dim::Static(config.input_size)});
  Type i64_scalar = ScalarType(DataType::Int64());
  Type state_type = TensorType({Dim::Static(1), Dim::Static(H)});

  // @lstm_loop(x, n, i, h_0, c_0, ..., h_k, c_k) -> h_last
  Var x = MakeVar("x", x_type);
  Var n = MakeVar("n", i64_scalar);
  Var iv = MakeVar("i", i64_scalar);
  std::vector<Var> params{x, n, iv};
  std::vector<Var> hs, cs;
  for (int l = 0; l < config.num_layers; ++l) {
    hs.push_back(MakeVar("h" + std::to_string(l), state_type));
    cs.push_back(MakeVar("c" + std::to_string(l), state_type));
    params.push_back(hs.back());
    params.push_back(cs.back());
  }

  // Step body: x_t = expand_dims(take(x, i), 0); stack the layers, binding
  // each layer's cell once so both state projections share one evaluation.
  GlobalVar loop = MakeGlobalVar("lstm_loop");
  Expr x_t = Call1("expand_dims", Call2("take", x, iv), Attrs().Set("axis", 0));
  std::vector<Expr> rec_args{x, n, Call2("add", iv, IntConst(1))};
  std::vector<std::pair<Var, Expr>> cell_bindings;
  Expr layer_in = x_t;
  for (int l = 0; l < config.num_layers; ++l) {
    Expr wx = MakeConstant(model.weights.layers[l].wx);
    Expr wh = MakeConstant(model.weights.layers[l].wh);
    Expr b = MakeConstant(model.weights.layers[l].b);
    Expr gates = Call2(
        "nn.bias_add",
        Call2("add", Call2("nn.dense", layer_in, wx), Call2("nn.dense", hs[l], wh)),
        b);
    Var cv = MakeVar("cell" + std::to_string(l));
    cell_bindings.emplace_back(cv, UnfusedCell(gates, cs[l]));
    Expr h_next = MakeTupleGetItem(cv, 0);
    Expr c_next = MakeTupleGetItem(cv, 1);
    rec_args.push_back(h_next);
    rec_args.push_back(c_next);
    layer_in = h_next;
  }
  Expr body = MakeCall(loop, rec_args);
  for (auto it = cell_bindings.rbegin(); it != cell_bindings.rend(); ++it) {
    body = MakeLet(it->first, it->second, body);
  }

  Expr cond = Call2("less", iv, n);
  Expr loop_body = MakeIf(cond, body, hs.back());
  Function loop_fn = MakeFunction(params, loop_body, state_type);
  model.module.Add("lstm_loop", loop_fn);

  // @main(x, n) = @lstm_loop(x, n, 0, h0, c0, ...)
  Var mx = MakeVar("x", x_type);
  Var mn = MakeVar("n", i64_scalar);
  std::vector<Expr> main_args{mx, mn, IntConst(0)};
  for (int l = 0; l < config.num_layers; ++l) {
    main_args.push_back(MakeConstant(model.weights.h0));
    main_args.push_back(MakeConstant(model.weights.c0));
  }
  Function main_fn = MakeFunction({mx, mn}, MakeCall(loop, main_args), state_type);
  model.module.Add("main", main_fn);

  // ---- batched twin (@main_batched): the serving pack-and-pad path --------
  //
  // Input is time-major packed [Lmax, B, in] (packed[t, r, :] = request r's
  // row t, zero rows beyond its true length) plus a [B, 1] lengths column.
  // The loop runs Lmax steps; each step computes the cell for all B rows at
  // once — so nn.dense/nn.lstm_cell amortize over the batch — and then
  // `where(t < lengths, new, old)` freezes rows whose sequence already
  // ended. `where` selects bits exactly and every kernel in the cell
  // computes rows independently in the same order as the B==1 case, so row
  // r of the result is bit-identical to @main on request r alone
  // (tests/test_serve.cc asserts this across ragged buckets).
  if (config.emit_batched) {
    Dim Lb = Dim::FreshSym("Lb");
    Dim B = Dim::FreshSym("B");
    // One set of symbolic dims shared by both twins, so length
    // specialization (pass::SpecializeBatchedEntry) goes static in both.
    Type xb_type = TensorType({Lb, B, Dim::Static(config.input_size)});
    Type lengths_type =
        TensorType(Shape{B, Dim::Static(1)}, DataType::Int64());
    Type bstate_type = TensorType(Shape{B, Dim::Static(H)});

    // Two twins share the calling convention: the masked one freezes each
    // row at its own length and serves ragged batches; the "_exact" one
    // omits the masking and is only correct when every row runs the full
    // max_len steps — which is exactly what a length-specialized variant's
    // batches look like, so CompileOptions::specialize_length rewires the
    // spec onto it (three fewer kernel invocations per layer per step).
    for (bool exact : {false, true}) {
      std::string suffix = exact ? "_exact" : "";

      // @lstm_loop_batched[_exact](x, n, lengths, i, h_0, c_0, ...) -> h_last
      Var bx = MakeVar("x", xb_type);
      Var bn = MakeVar("n", i64_scalar);
      Var blen = MakeVar("lengths", lengths_type);
      Var biv = MakeVar("i", i64_scalar);
      std::vector<Var> bparams{bx, bn, blen, biv};
      std::vector<Var> bhs, bcs;
      for (int l = 0; l < config.num_layers; ++l) {
        bhs.push_back(MakeVar("h" + std::to_string(l), bstate_type));
        bcs.push_back(MakeVar("c" + std::to_string(l), bstate_type));
        bparams.push_back(bhs.back());
        bparams.push_back(bcs.back());
      }

      GlobalVar bloop = MakeGlobalVar("lstm_loop_batched" + suffix);
      Expr bx_t = Call2("take", bx, biv);  // [B, in]: one timestep, all rows
      // Rows whose sequence is still running at this step ([B, 1] bool).
      Var mask = MakeVar("active");
      std::vector<std::pair<Var, Expr>> bindings;
      if (!exact) bindings.emplace_back(mask, Call2("less", biv, blen));
      std::vector<Expr> brec_args{bx, bn, blen,
                                  Call2("add", biv, IntConst(1))};
      Expr blayer_in = bx_t;
      for (int l = 0; l < config.num_layers; ++l) {
        Expr wx = MakeConstant(model.weights.layers[l].wx);
        Expr wh = MakeConstant(model.weights.layers[l].wh);
        Expr b = MakeConstant(model.weights.layers[l].b);
        Expr gates = Call2(
            "nn.bias_add",
            Call2("add", Call2("nn.dense", blayer_in, wx),
                  Call2("nn.dense", bhs[l], wh)),
            b);
        // The canonical unfused cell, so FuseLSTMCell fires here exactly as
        // it does in the per-request loop; masking (when present) applies
        // to its outputs.
        Var cv = MakeVar("cell" + std::to_string(l));
        bindings.emplace_back(cv, UnfusedCell(gates, bcs[l]));
        Var h_next = MakeVar("h_next" + std::to_string(l));
        Var c_next = MakeVar("c_next" + std::to_string(l));
        if (exact) {
          // where(i < lengths, new, old) with lengths == n for every row
          // always selects `new`: bind the cell outputs directly.
          bindings.emplace_back(h_next, MakeTupleGetItem(cv, 0));
          bindings.emplace_back(c_next, MakeTupleGetItem(cv, 1));
        } else {
          bindings.emplace_back(
              h_next, Call3("where", mask, MakeTupleGetItem(cv, 0), bhs[l]));
          bindings.emplace_back(
              c_next, Call3("where", mask, MakeTupleGetItem(cv, 1), bcs[l]));
        }
        brec_args.push_back(h_next);
        brec_args.push_back(c_next);
        blayer_in = h_next;
      }
      Expr bbody = MakeCall(bloop, brec_args);
      for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
        bbody = MakeLet(it->first, it->second, bbody);
      }
      Expr bcond = Call2("less", biv, bn);
      Expr bloop_body = MakeIf(bcond, bbody, bhs.back());
      model.module.Add("lstm_loop_batched" + suffix,
                       MakeFunction(bparams, bloop_body, bstate_type));

      // @main_batched[_exact](x, n, lengths, h0_0, c0_0, ...) — zero states
      // arrive as arguments because their row count B is only known at pack
      // time.
      Var mbx = MakeVar("x", xb_type);
      Var mbn = MakeVar("n", i64_scalar);
      Var mblen = MakeVar("lengths", lengths_type);
      std::vector<Var> mbparams{mbx, mbn, mblen};
      std::vector<Expr> mb_args{mbx, mbn, mblen, IntConst(0)};
      for (int l = 0; l < config.num_layers; ++l) {
        Var h0 = MakeVar("h0_" + std::to_string(l), bstate_type);
        Var c0 = MakeVar("c0_" + std::to_string(l), bstate_type);
        mbparams.push_back(h0);
        mbparams.push_back(c0);
        mb_args.push_back(h0);
        mb_args.push_back(c0);
      }
      model.module.Add("main_batched" + suffix,
                       MakeFunction(mbparams, MakeCall(bloop, mb_args),
                                    bstate_type));
    }

    // ---- step twin (@main_step): continuous batching's unit of work ------
    //
    // One recurrence step over a persistent [Bs, *] slot map: the host
    // (src/batch/step_runner.cc) gathers each live slot's next input row
    // into x_t, passes the previous step's states back in, and retires a
    // slot's row the step its request reaches its own length. `active`
    // marks live slots; `where(0 < active, new, old)` freezes the rest
    // exactly — combined with host-zeroed state rows at splice time, a
    // spliced row's arithmetic sequence is identical to @main's, so the
    // result is bit-identical whether a request ran solo, in a closed
    // batch, or spliced mid-flight. The cell is the canonical UnfusedCell,
    // so FuseLSTMCell fires here exactly as in both loops above.
    {
      Dim Bs = Dim::FreshSym("Bs");
      Type xt_type = TensorType({Bs, Dim::Static(config.input_size)});
      Type active_type =
          TensorType(Shape{Bs, Dim::Static(1)}, DataType::Int64());
      Type sstate_type = TensorType(Shape{Bs, Dim::Static(H)});

      Var sx = MakeVar("x_t", xt_type);
      Var sactive = MakeVar("active", active_type);
      std::vector<Var> sparams{sx, sactive};
      std::vector<Var> shs, scs;
      for (int l = 0; l < config.num_layers; ++l) {
        shs.push_back(MakeVar("h" + std::to_string(l), sstate_type));
        scs.push_back(MakeVar("c" + std::to_string(l), sstate_type));
        sparams.push_back(shs.back());
        sparams.push_back(scs.back());
      }
      Var live = MakeVar("live");
      std::vector<std::pair<Var, Expr>> sbindings;
      sbindings.emplace_back(live, Call2("less", IntConst(0), sactive));
      std::vector<Expr> next_states;
      Expr slayer_in = sx;
      for (int l = 0; l < config.num_layers; ++l) {
        Expr wx = MakeConstant(model.weights.layers[l].wx);
        Expr wh = MakeConstant(model.weights.layers[l].wh);
        Expr b = MakeConstant(model.weights.layers[l].b);
        Expr gates = Call2(
            "nn.bias_add",
            Call2("add", Call2("nn.dense", slayer_in, wx),
                  Call2("nn.dense", shs[l], wh)),
            b);
        Var cv = MakeVar("cell" + std::to_string(l));
        sbindings.emplace_back(cv, UnfusedCell(gates, scs[l]));
        Var h_next = MakeVar("h_next" + std::to_string(l));
        Var c_next = MakeVar("c_next" + std::to_string(l));
        sbindings.emplace_back(
            h_next, Call3("where", live, MakeTupleGetItem(cv, 0), shs[l]));
        sbindings.emplace_back(
            c_next, Call3("where", live, MakeTupleGetItem(cv, 1), scs[l]));
        next_states.push_back(h_next);
        next_states.push_back(c_next);
        slayer_in = h_next;
      }
      Expr sbody = MakeTuple(next_states);
      for (auto it = sbindings.rbegin(); it != sbindings.rend(); ++it) {
        sbody = MakeLet(it->first, it->second, sbody);
      }
      std::vector<Type> state_types(static_cast<size_t>(2 * config.num_layers),
                                    sstate_type);
      model.module.Add("main_step",
                       MakeFunction(sparams, sbody, TupleType(state_types)));
    }

    model.batched_spec.function = "main";
    model.batched_spec.batched_function = "main_batched";
    model.batched_spec.exact_batched_function = "main_batched_exact";
    model.batched_spec.step_function = "main_step";
    // @main returns the last layer's h; in main_step's interleaved
    // (h_l, c_l) state order that is state 2*(num_layers-1).
    model.batched_spec.result_state = 2 * (config.num_layers - 1);
    model.batched_spec.seq_arg = 0;
    model.batched_spec.len_arg = 1;
    model.batched_spec.feature_width = static_cast<int32_t>(config.input_size);
    model.batched_spec.state_width = static_cast<int32_t>(H);
    model.batched_spec.num_state_args = 2 * config.num_layers;
  }
  return model;
}

runtime::NDArray RunLSTMReference(const LSTMWeights& weights,
                                  const runtime::NDArray& x) {
  int64_t seq = x.shape()[0];
  int num_layers = static_cast<int>(weights.layers.size());
  int64_t H = weights.h0.shape()[1];
  auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };

  std::vector<std::vector<float>> h(num_layers), c(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    h[l].assign(H, 0.0f);
    c[l].assign(H, 0.0f);
  }
  std::vector<float> gates(4 * H);
  std::vector<float> input;
  for (int64_t t = 0; t < seq; ++t) {
    int64_t in_size = x.shape()[1];
    input.assign(x.data<float>() + t * in_size, x.data<float>() + (t + 1) * in_size);
    for (int l = 0; l < num_layers; ++l) {
      const auto& layer = weights.layers[l];
      int64_t cur_in = layer.wx.shape()[1];
      const float* wx = layer.wx.data<float>();
      const float* wh = layer.wh.data<float>();
      const float* b = layer.b.data<float>();
      for (int64_t j = 0; j < 4 * H; ++j) {
        float acc = b[j];
        for (int64_t k = 0; k < cur_in; ++k) acc += input[k] * wx[j * cur_in + k];
        for (int64_t k = 0; k < H; ++k) acc += h[l][k] * wh[j * H + k];
        gates[j] = acc;
      }
      for (int64_t j = 0; j < H; ++j) {
        float i = sigmoid(gates[j]);
        float f = sigmoid(gates[H + j]);
        float g = std::tanh(gates[2 * H + j]);
        float o = sigmoid(gates[3 * H + j]);
        c[l][j] = f * c[l][j] + i * g;
        h[l][j] = o * std::tanh(c[l][j]);
      }
      input = h[l];
    }
  }
  runtime::NDArray out =
      runtime::NDArray::Empty({1, H}, runtime::DataType::Float32());
  std::copy(h[num_layers - 1].begin(), h[num_layers - 1].end(),
            out.data<float>());
  return out;
}

}  // namespace models
}  // namespace nimble
