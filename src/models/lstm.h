// LSTM model builder (§6.1): the control-flow-dynamism workload.
//
// The model is expressed as a recursive IR function looping over timesteps
// (sequence length known only at runtime), with the *unfused* per-gate
// arithmetic — the FuseLSTMCell pass recovers the fused cell, exactly the
// optimization a compiler must perform that eager frameworks cannot.
#pragma once

#include <vector>

#include "src/ir/module.h"
#include "src/runtime/ndarray.h"
#include "src/vm/batch_spec.h"

namespace nimble {
namespace models {

struct LSTMConfig {
  int64_t input_size = 300;
  int64_t hidden_size = 512;
  int num_layers = 1;
  uint64_t seed = 42;
  /// Also emit @main_batched / @lstm_loop_batched: a packed [Lmax, B, in]
  /// twin of @main whose per-row masking (via the exact-selection `where`
  /// op) freezes each sequence at its own length, so row r of the batched
  /// result is bit-identical to @main on request r alone. Consumed by the
  /// serving tensor-batching path (src/batch/) through
  /// LSTMModel::batched_spec. An unmasked @main_batched_exact twin rides
  /// along for length-specialized executable variants
  /// (CompileOptions::specialize_length), whose batches always run every
  /// row for the full max_len steps. A single-step @main_step twin
  /// (one recurrence step over a persistent [B, *] slot map, inactive rows
  /// frozen by `where` on an `active` mask) also rides along for the
  /// continuous-batching runner (src/batch/step_runner.h), which splices
  /// and retires requests at step granularity while preserving the same
  /// bit-identity. Off by default: non-serving callers
  /// should not pay the twins' compile time and bytecode; serving sites opt
  /// in here AND pass the spec via CompileOptions::batched_entries.
  bool emit_batched = false;
};

struct LSTMWeights {
  struct Layer {
    runtime::NDArray wx;  // [4H, in]
    runtime::NDArray wh;  // [4H, H]
    runtime::NDArray b;   // [4H]
  };
  std::vector<Layer> layers;
  runtime::NDArray h0;  // [1, H]
  runtime::NDArray c0;  // [1, H]
};

struct LSTMModel {
  ir::Module module;  // globals: @main(x: [(L, in)], n: i64), @lstm_loop(...)
                      // (+ @main_batched/@lstm_loop_batched when emitted)
  LSTMWeights weights;
  LSTMConfig config;
  /// Calling convention of @main_batched (valid when config.emit_batched);
  /// pass it to core::Compile via CompileOptions::batched_entries to let the
  /// serving layer run packed batches.
  vm::BatchedEntrySpec batched_spec;
};

/// Builds the IR module and deterministic random weights.
LSTMModel BuildLSTM(const LSTMConfig& config);

/// Reference implementation (plain C++ loops) for correctness checks:
/// returns the final hidden state of the last layer, shape [1, H].
runtime::NDArray RunLSTMReference(const LSTMWeights& weights,
                                  const runtime::NDArray& x);

}  // namespace models
}  // namespace nimble
