// LSTM model builder (§6.1): the control-flow-dynamism workload.
//
// The model is expressed as a recursive IR function looping over timesteps
// (sequence length known only at runtime), with the *unfused* per-gate
// arithmetic — the FuseLSTMCell pass recovers the fused cell, exactly the
// optimization a compiler must perform that eager frameworks cannot.
#pragma once

#include <vector>

#include "src/ir/module.h"
#include "src/runtime/ndarray.h"

namespace nimble {
namespace models {

struct LSTMConfig {
  int64_t input_size = 300;
  int64_t hidden_size = 512;
  int num_layers = 1;
  uint64_t seed = 42;
};

struct LSTMWeights {
  struct Layer {
    runtime::NDArray wx;  // [4H, in]
    runtime::NDArray wh;  // [4H, H]
    runtime::NDArray b;   // [4H]
  };
  std::vector<Layer> layers;
  runtime::NDArray h0;  // [1, H]
  runtime::NDArray c0;  // [1, H]
};

struct LSTMModel {
  ir::Module module;  // globals: @main(x: [(L, in)], n: i64), @lstm_loop(...)
  LSTMWeights weights;
  LSTMConfig config;
};

/// Builds the IR module and deterministic random weights.
LSTMModel BuildLSTM(const LSTMConfig& config);

/// Reference implementation (plain C++ loops) for correctness checks:
/// returns the final hidden state of the last layer, shape [1, H].
runtime::NDArray RunLSTMReference(const LSTMWeights& weights,
                                  const runtime::NDArray& x);

}  // namespace models
}  // namespace nimble
