// BERT-style transformer encoder builder (§6.1): the dynamic-shape
// workload. Sequence length is a symbolic dimension; every dense /
// batch_matmul dispatches on it at runtime (§4.5).
#pragma once

#include <vector>

#include "src/ir/module.h"
#include "src/runtime/ndarray.h"

namespace nimble {
namespace models {

struct BERTConfig {
  int num_layers = 2;
  int64_t hidden = 256;
  int num_heads = 4;
  int64_t ffn_hidden = 1024;  // 4 * hidden
  int64_t vocab = 1000;
  uint64_t seed = 11;

  /// The paper's BERT-base (12 layers, 768 hidden, 12 heads); heavy for a
  /// plain-C++ substrate, so benchmarks default to a scaled config.
  static BERTConfig Base() {
    return BERTConfig{12, 768, 12, 3072, 30522, 11};
  }
};

struct BERTWeights {
  runtime::NDArray embedding;  // [vocab, H]
  struct Layer {
    runtime::NDArray wq, wk, wv, wo;      // [H, H]
    runtime::NDArray bq, bk, bv, bo;      // [H]
    runtime::NDArray w1, w2;              // [ffn, H], [H, ffn]
    runtime::NDArray b1, b2;              // [ffn], [H]
    runtime::NDArray ln1_g, ln1_b;        // [H]
    runtime::NDArray ln2_g, ln2_b;        // [H]
  };
  std::vector<Layer> layers;
};

struct BERTModel {
  ir::Module module;  // @main(ids: Tensor[(L,), int64]) -> Tensor[(L, H)]
  BERTWeights weights;
  BERTConfig config;
};

BERTModel BuildBERT(const BERTConfig& config);

/// Reference single-threaded implementation for correctness checks.
runtime::NDArray RunBERTReference(const BERTModel& model,
                                  const std::vector<int64_t>& ids);

}  // namespace models
}  // namespace nimble
