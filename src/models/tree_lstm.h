// Tree-LSTM model builder (§6.1): the dynamic-data-structure workload.
//
// Trees are an algebraic data type
//     Tree = Leaf(Tensor[(1, in)]) | Node(Tree, Tree)
// and the model is a recursive IR function that pattern-matches on the
// structure — the execution path is different for every input tree, which
// is exactly what defeats static dataflow-graph systems.
//
// The cell is a child-sum Tree-LSTM simplified to share one gate block:
//   leaf:  (h, c) = LSTMCell(Wx·x + b, 0)
//   node:  (h, c) = LSTMCell(Wh·(h_l + h_r) + b, c_l + c_r)
#pragma once

#include <memory>

#include "src/ir/module.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/object.h"
#include "src/support/rng.h"

namespace nimble {
namespace models {

struct TreeLSTMConfig {
  int64_t input_size = 300;
  int64_t hidden_size = 150;
  uint64_t seed = 7;
};

struct TreeLSTMWeights {
  runtime::NDArray wx;  // [4H, in]
  runtime::NDArray wh;  // [4H, H]
  runtime::NDArray b;   // [4H]
  runtime::NDArray c0;  // [1, H]
};

struct TreeLSTMModel {
  ir::Module module;  // ADT Tree; @tree_eval(Tree) -> (h, c); @main(Tree) -> h
  TreeLSTMWeights weights;
  TreeLSTMConfig config;
};

TreeLSTMModel BuildTreeLSTM(const TreeLSTMConfig& config);

/// Host-side tree representation (used to build VM input objects, drive the
/// baselines, and generate SST-like synthetic inputs).
struct HostTree {
  std::unique_ptr<HostTree> left;
  std::unique_ptr<HostTree> right;
  runtime::NDArray leaf;  // defined iff leaf node
  bool is_leaf() const { return !leaf.defined() ? false : true; }
  int num_leaves() const;
  int num_nodes() const;
};

/// Random binarized tree with `leaves` leaf embeddings of width `input`.
std::unique_ptr<HostTree> RandomTree(int leaves, int64_t input,
                                     support::Rng& rng);

/// Converts a host tree to the VM's ADT object (tags: Leaf=0, Node=1).
runtime::ObjectRef TreeToObject(const HostTree& tree);

/// Reference recursive evaluation; returns the root hidden state [1, H].
runtime::NDArray RunTreeLSTMReference(const TreeLSTMWeights& weights,
                                      const HostTree& tree);

}  // namespace models
}  // namespace nimble
