// Synthetic workloads standing in for the paper's datasets (§6.1):
//  - MRPC-like sentence lengths for LSTM/BERT (variable-length inputs);
//  - SST-like binarized trees for Tree-LSTM (variable structures).
// Only the length/shape distributions matter for inference latency, so the
// content is random but the distributions follow the datasets' statistics.
#pragma once

#include <vector>

#include "src/runtime/ndarray.h"
#include "src/support/rng.h"

namespace nimble {
namespace models {

/// Sentence lengths resembling MRPC (mean ≈ 40 tokens, clipped to
/// [4, max_len]); deterministic for a given rng.
std::vector<int64_t> SampleMRPCLengths(int count, support::Rng& rng,
                                       int64_t max_len = 128);

/// Tree leaf counts resembling SST (mean ≈ 19 tokens, range [3, 52]).
std::vector<int> SampleSSTSizes(int count, support::Rng& rng);

/// Random float32 embedding sequence of a given length.
runtime::NDArray RandomSequence(int64_t len, int64_t width, support::Rng& rng);

/// Random token-id sequence in [0, vocab).
std::vector<int64_t> RandomTokenIds(int64_t len, int64_t vocab,
                                    support::Rng& rng);

}  // namespace models
}  // namespace nimble
