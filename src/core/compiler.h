// Public compilation entry point: the full Nimble pipeline of Figure 2.
//
//   ir::Module  --[TypeInfer, FoldConstants, FuseLSTMCell, ToANF,
//                  TypeInfer, FuseOps, DCE, ManifestAlloc,
//                  DevicePlacement, MemoryPlan]-->  vm::Executable
//
// Typical use:
//
//   ir::Module mod = models::BuildLSTM(...);
//   core::CompileResult result = core::Compile(mod, core::CompileOptions());
//   vm::VirtualMachine machine(result.executable);
//   auto out = machine.Invoke("main", {...});
#pragma once

#include <memory>

#include "src/ir/module.h"
#include "src/pass/memory.h"
#include "src/pass/transforms.h"
#include "src/runtime/device.h"
#include "src/vm/executable.h"

namespace nimble {
namespace core {

struct CompileOptions {
  bool fold_constants = true;
  bool fuse_ops = true;
  bool fuse_lstm_cell = true;
  bool memory_plan = true;
  /// Device kernels execute on; CPU by default, SimGPU to exercise
  /// heterogeneous placement (§4.4).
  runtime::Device kernel_device = runtime::Device::CPU();
  /// Number of residue-specialized dense kernel variants to dispatch
  /// between at runtime (§4.5); 8 = full dispatch, 1 = generic kernel only.
  /// Written into the produced executable's own dispatch table — compiling
  /// never touches global dispatch state, so it is safe while other
  /// executables are serving (see docs/ARCHITECTURE.md).
  int dense_dispatch_variants = 8;
  /// Cache-blocking config stamped on the executable for its dense kernels
  /// (src/codegen/tuner.h). Defaults to the generic DenseConfig; the exec
  /// cache (src/serve/exec_cache.cc) passes a tuner-measured config when it
  /// background-compiles a shape-specialized variant. Set
  /// `dense_config_tuned` when the config came from measurement rather than
  /// transfer/default — serving surfaces the flag per variant in /stats.
  codegen::DenseConfig dense_config;
  bool dense_config_tuned = false;
  /// Batched-entry descriptors supplied by the model builder (e.g.
  /// models::BuildLSTM emits @main_batched and fills LSTMModel::batched_spec).
  /// Copied into the executable — Compile checks that both the per-request
  /// and the batched function actually exist in the module — where the
  /// serving layer's tensor-batching path (src/batch/) discovers them.
  std::vector<vm::BatchedEntrySpec> batched_entries;
  /// Shape-bucket specialization (§4.5 extended from kernels to whole
  /// executables; consumed by serve::ExecCache). When > 0, every time-major
  /// batched entry above is specialized to this exact packed sequence
  /// length before the pipeline runs (pass::SpecializeBatchedEntry), and
  /// the produced executable is stamped as a *variant*
  /// (vm::Executable::variant): the packing layer only routes batches whose
  /// requests all have exactly this length to it.
  int64_t specialize_length = 0;
  /// With specialize_length: also bake this exact batch size into the
  /// batched entry, making its dataflow fully static — no runtime shape
  /// functions, compile-time storage allocation, exact memory planning. The
  /// variant then only accepts full batches of exactly this size; 0 keeps
  /// the batch dimension symbolic. The variant's dispatch table is tuned to
  /// the only dense row counts its batches can produce (the baked batch
  /// size and the per-request fallback's single row) instead of full
  /// residue coverage.
  int64_t specialize_batch = 0;
  /// With specialize_length: unroll the batched entry's recursion into
  /// straight-line bytecode (pass::UnrollBatchedLoop) — the loop bound is a
  /// baked constant, so the per-step call frame, branch and counter
  /// arithmetic disappear from the hot path at the cost of
  /// specialize_length copies of the step body in the executable.
  bool unroll_specialized_loop = true;
};

struct CompileResult {
  std::shared_ptr<vm::Executable> executable;
  pass::FusionStats fusion;
  int lstm_cells_fused = 0;
  pass::MemoryPlanStats memory;
  pass::DevicePlaceStats devices;
};

/// Runs the full pipeline. The input module is mutated in place (each pass
/// rewrites its functions); pass a copy to keep the original.
CompileResult Compile(ir::Module& mod, const CompileOptions& options = {});

}  // namespace core
}  // namespace nimble
