#include "src/core/compiler.h"

#include "src/codegen/dispatch.h"
#include "src/pass/type_infer.h"
#include "src/vm/compiler.h"

namespace nimble {
namespace core {

CompileResult Compile(ir::Module& mod, const CompileOptions& options) {
  CompileResult result;

  pass::InferTypes(&mod);
  if (options.fold_constants) pass::FoldConstants(&mod);
  if (options.fuse_lstm_cell) result.lstm_cells_fused = pass::FuseLSTMCell(&mod);
  pass::ToANF(&mod);
  pass::InferTypes(&mod);
  if (options.fuse_ops) result.fusion = pass::FuseOps(&mod);
  pass::DeadCodeElim(&mod);
  pass::ManifestAlloc(&mod);
  result.devices = pass::DevicePlacement(&mod, options.kernel_device);
  if (options.memory_plan) result.memory = pass::MemoryPlan(&mod);

  codegen::DenseDispatchTable::ConfigureGlobal(options.dense_dispatch_variants);
  result.executable = vm::VMCompiler().Compile(mod);
  return result;
}

}  // namespace core
}  // namespace nimble
