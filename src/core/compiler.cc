#include "src/core/compiler.h"

#include "src/pass/type_infer.h"
#include "src/support/logging.h"
#include "src/vm/compiler.h"

namespace nimble {
namespace core {

CompileResult Compile(ir::Module& mod, const CompileOptions& options) {
  CompileResult result;

  if (options.specialize_length > 0) {
    NIMBLE_CHECK(!options.batched_entries.empty())
        << "specialize_length requires a batched entry to specialize";
    for (const vm::BatchedEntrySpec& spec : options.batched_entries) {
      // Row-map entries carry no packed length dimension; only the padded
      // time-major convention has a bucket Lmax to bake.
      if (spec.layout != vm::BatchedEntrySpec::Layout::kTimeMajor) continue;
      // A variant's batches are guaranteed exact-length (batch::AnalyzeBatch
      // enforces the baked shape), so specialize the unmasked exact twin
      // when the builder emitted one — the per-row freeze masking is an
      // identity there. The stamping below rewires the spec onto it.
      const std::string& target = spec.exact_batched_function.empty()
                                      ? spec.batched_function
                                      : spec.exact_batched_function;
      pass::SpecializeBatchedEntry(&mod, target, options.specialize_length,
                                   options.specialize_batch);
      if (options.unroll_specialized_loop) {
        // The bound is now a constant: flatten the recursion (steps + the
        // final exit test) into straight-line IR.
        pass::UnrollBatchedLoop(&mod, target, options.specialize_length + 2);
      }
    }
  }

  pass::InferTypes(&mod);
  if (options.fold_constants) pass::FoldConstants(&mod);
  if (options.fuse_lstm_cell) result.lstm_cells_fused = pass::FuseLSTMCell(&mod);
  pass::ToANF(&mod);
  pass::InferTypes(&mod);
  if (options.fuse_ops) result.fusion = pass::FuseOps(&mod);
  pass::DeadCodeElim(&mod);
  pass::ManifestAlloc(&mod);
  result.devices = pass::DevicePlacement(&mod, options.kernel_device);
  if (options.memory_plan) result.memory = pass::MemoryPlan(&mod);

  result.executable = vm::VMCompiler().Compile(mod);
  // Dispatch configuration is part of the executable, not process state:
  // the table is written here, before anyone else can see the executable,
  // and is read-only from then on. Compiling has no effect on models that
  // are already serving.
  if (options.specialize_length > 0 && options.specialize_batch > 0) {
    // A fully-specialized variant's dense calls can only see two row
    // counts: the baked batch size on the packed path and a single row on
    // the per-request fallback. Cover exactly those residues with the
    // specialized kernel family (the same family a full table routes them
    // to, preserving bit-identity with the generic executable) and skip the
    // rest.
    uint32_t mask =
        (1u << (options.specialize_batch % codegen::kTileRows)) |
        (1u << (1 % codegen::kTileRows));
    result.executable->dispatch_table.ConfigureResidues(mask);
  } else {
    result.executable->dispatch_table.Configure(
        options.dense_dispatch_variants);
  }
  // Batched-entry specs ride along the same way as the dispatch config:
  // stamped before the executable escapes, immutable afterwards. A
  // length-specialized executable's spec points at the unmasked exact twin
  // (see above).
  for (const vm::BatchedEntrySpec& spec : options.batched_entries) {
    vm::BatchedEntrySpec stamped = spec;
    if (options.specialize_length > 0 &&
        spec.layout == vm::BatchedEntrySpec::Layout::kTimeMajor &&
        !spec.exact_batched_function.empty()) {
      stamped.batched_function = spec.exact_batched_function;
    }
    result.executable->FunctionIndex(stamped.function);          // must exist
    result.executable->FunctionIndex(stamped.batched_function);  // must exist
    if (!stamped.exact_batched_function.empty()) {
      result.executable->FunctionIndex(stamped.exact_batched_function);
    }
    if (!stamped.step_function.empty()) {
      result.executable->FunctionIndex(stamped.step_function);  // must exist
    }
    result.executable->batched.push_back(std::move(stamped));
  }
  if (options.specialize_length > 0) {
    result.executable->variant.specialized_len = options.specialize_length;
    result.executable->variant.specialized_batch = options.specialize_batch;
  }
  result.executable->dense_config = options.dense_config;
  result.executable->dense_config_tuned = options.dense_config_tuned;
  return result;
}

}  // namespace core
}  // namespace nimble
