#include "src/core/compiler.h"

#include "src/pass/type_infer.h"
#include "src/vm/compiler.h"

namespace nimble {
namespace core {

CompileResult Compile(ir::Module& mod, const CompileOptions& options) {
  CompileResult result;

  pass::InferTypes(&mod);
  if (options.fold_constants) pass::FoldConstants(&mod);
  if (options.fuse_lstm_cell) result.lstm_cells_fused = pass::FuseLSTMCell(&mod);
  pass::ToANF(&mod);
  pass::InferTypes(&mod);
  if (options.fuse_ops) result.fusion = pass::FuseOps(&mod);
  pass::DeadCodeElim(&mod);
  pass::ManifestAlloc(&mod);
  result.devices = pass::DevicePlacement(&mod, options.kernel_device);
  if (options.memory_plan) result.memory = pass::MemoryPlan(&mod);

  result.executable = vm::VMCompiler().Compile(mod);
  // Dispatch configuration is part of the executable, not process state:
  // the table is written here, before anyone else can see the executable,
  // and is read-only from then on. Compiling has no effect on models that
  // are already serving.
  result.executable->dispatch_table.Configure(options.dense_dispatch_variants);
  // Batched-entry specs ride along the same way as the dispatch config:
  // stamped before the executable escapes, immutable afterwards.
  for (const vm::BatchedEntrySpec& spec : options.batched_entries) {
    result.executable->FunctionIndex(spec.function);          // must exist
    result.executable->FunctionIndex(spec.batched_function);  // must exist
    result.executable->batched.push_back(spec);
  }
  return result;
}

}  // namespace core
}  // namespace nimble
