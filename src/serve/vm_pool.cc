#include "src/serve/vm_pool.h"

#include <mutex>

#include "src/batch/batch_runner.h"
#include "src/support/logging.h"

namespace nimble {
namespace serve {

namespace {

/// Process-lifetime lease registry for worker allocators (see the lifetime
/// note in vm_pool.h). Allocators are created on demand, trimmed and
/// recycled on release, and live until process exit — exactly like the
/// global allocators — so result buffers may outlive the pool that
/// produced them.
class WorkerAllocatorRegistry {
 public:
  static WorkerAllocatorRegistry& Global() {
    static WorkerAllocatorRegistry registry;
    return registry;
  }

  runtime::PoolingAllocator* Lease() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      auto* allocator = free_.back();
      free_.pop_back();
      return allocator;
    }
    owned_.push_back(std::make_unique<runtime::PoolingAllocator>());
    return owned_.back().get();
  }

  void Release(runtime::PoolingAllocator* allocator) {
    allocator->Trim();  // cap idle memory while the allocator sits unused
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(allocator);
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<runtime::PoolingAllocator>> owned_;
  std::vector<runtime::PoolingAllocator*> free_;
};

size_t PendingBatchCap(int num_workers, size_t max_pending_batches) {
  if (max_pending_batches > 0) return max_pending_batches;
  return num_workers > 0 ? 2 * static_cast<size_t>(num_workers) : 1;
}

}  // namespace

runtime::PoolingAllocator* LeaseWorkerAllocator() {
  return WorkerAllocatorRegistry::Global().Lease();
}

void ReleaseWorkerAllocator(runtime::PoolingAllocator* allocator) {
  WorkerAllocatorRegistry::Global().Release(allocator);
}

VMPool::VMPool(int num_workers, ServeStats* stats, size_t max_pending_batches)
    : stats_(stats),
      batches_(PendingBatchCap(num_workers, max_pending_batches)) {
  NIMBLE_CHECK_GE(num_workers, 1);
  // Construct every VM on this thread before any worker starts: the VM
  // constructor populates the kernel/op registries, which become read-only
  // once the threads are running. Workers start unbound — each rebinds to
  // the executable of the first batch it pulls.
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->allocator = WorkerAllocatorRegistry::Global().Lease();
    worker->vm =
        std::make_unique<vm::VirtualMachine>(nullptr, worker->allocator);
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { WorkerLoop(*w); });
  }
}

VMPool::~VMPool() {
  Close();
  Join();
  for (auto& worker : workers_) {
    WorkerAllocatorRegistry::Global().Release(worker->allocator);
  }
}

void VMPool::Submit(Batch batch) {
  if (batch.requests.empty()) return;
  NIMBLE_CHECK(batch.exec != nullptr) << "batch submitted without executable";
  bool accepted = batches_.Push(batch);
  NIMBLE_CHECK(accepted) << "VMPool::Submit after Close";
}

void VMPool::Close() { batches_.Close(); }

void VMPool::Join() {
  if (joined_) return;
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  joined_ = true;
}

int64_t VMPool::requests_executed() const {
  int64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->requests_executed.load(std::memory_order_relaxed);
  }
  return total;
}

void VMPool::WorkerLoop(Worker& worker) {
  while (auto batch = batches_.Pop()) {
    // Switch models when the batch demands it. Rebind is a shared_ptr swap
    // plus a frame-stack reset; the scheduler's length-bucketed batching
    // already gives each worker long same-model runs, so switches are rare
    // relative to requests.
    if (worker.vm->executable_ptr() != batch->exec) {
      worker.vm->Rebind(batch->exec);
    }
    // Per-batch VM profiling rides the tracing switch: when traces are
    // being collected, the batch runner folds the per-instruction-category
    // times into each request's exec span; otherwise the VM runs with the
    // profiling branches off. Reset() below clears the profile between
    // batches either way, so a batch never sees its predecessor's nanos.
    bool trace_on = batch->tracer != nullptr && batch->tracer->enabled();
    worker.vm->EnableProfiling(trace_on);
    // Pickup timestamp: everything before this instant is queue wait
    // (admission queue + scheduler bucket + pool batch queue), everything
    // after is execution — the split ServeStats reports.
    auto dispatch_time = Clock::now();
    for (Request& request : batch->requests) {
      request.dispatch_time = dispatch_time;
      if (request.trace.enabled) request.trace.dispatch = dispatch_time;
    }
    // Per-model stats first, then the pool-wide aggregate (they are
    // distinct objects; a Server wires the batch to its model's stats and
    // the pool to the aggregate).
    auto on_done = [&](const Request& request, bool ok) {
      worker.requests_executed.fetch_add(1, std::memory_order_relaxed);
      auto now = Clock::now();
      double latency_us =
          std::chrono::duration<double, std::micro>(now - request.enqueue_time)
              .count();
      double queue_wait_us = std::chrono::duration<double, std::micro>(
                                 request.dispatch_time - request.enqueue_time)
                                 .count();
      double exec_us = std::chrono::duration<double, std::micro>(
                           now - request.dispatch_time)
                           .count();
      if (batch->stats != nullptr) {
        batch->stats->RecordCompletion(latency_us, queue_wait_us, exec_us, ok,
                                       now);
      }
      if (stats_ != nullptr && stats_ != batch->stats) {
        stats_->RecordCompletion(latency_us, queue_wait_us, exec_us, ok, now);
      }
    };
    // Packed [Lmax, B, D] execution when the batch asks for it and its
    // executable can; the per-request Invoke loop otherwise (src/batch/).
    batch::BatchRunResult run = batch::RunBatch(
        *worker.vm, *batch, batch->tensor_batching, on_done);
    if (run.packed) {
      bool on_variant = batch->exec->variant.is_variant();
      if (batch->stats != nullptr) {
        batch->stats->RecordPackedBatch(run.padded_elements,
                                        run.total_elements, batch->bucket,
                                        on_variant);
      }
      if (stats_ != nullptr && stats_ != batch->stats) {
        stats_->RecordPackedBatch(run.padded_elements, run.total_elements,
                                  batch->bucket, on_variant);
      }
    }
    // Recycle the VM: drops any frames retained by a throwing Invoke and
    // clears the profile, keeping the worker's memory footprint flat.
    worker.vm->Reset();
  }
}

}  // namespace serve
}  // namespace nimble
