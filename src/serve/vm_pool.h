// Thread pool of VirtualMachine workers, shared by every model of a Server.
//
// The pool is model-agnostic: work arrives as Batches (groups of
// similar-length requests for one model, formed by the BatchScheduler), and
// each batch carries the std::shared_ptr<vm::Executable> it runs on. A
// worker rebinds its VM (VirtualMachine::Rebind — a shared_ptr swap plus a
// frame-stack reset) whenever the batch it pulls belongs to a different
// model than the previous one, runs the batch — as one packed tensor
// invocation when the batch requests it and its executable supports it, as
// a per-request Invoke loop otherwise (src/batch/batch_runner.h) — and
// fulfills its promises. Executables are immutable (src/vm/executable.h),
// including their per-executable dispatch tables, so any number of workers
// may serve any mix of models with no synchronization beyond the batch
// queue.
//
// Each worker runs its VirtualMachine with a private PoolingAllocator, so
// the hot allocation path is uncontended and each worker's free lists stay
// warm with the storage bucket sizes of the sequence lengths it serves (see
// the thread-safety contract in src/runtime/allocator.h).
//
// Allocator lifetime: result tensors handed out through request futures
// reference their source allocator until the last NDArray dies (Buffer's
// destructor frees into it), and clients may legally keep results after the
// pool is gone. Worker allocators are therefore *leased* from a
// process-lifetime registry rather than owned by the pool — like the global
// allocators, they are never destroyed; a released allocator is trimmed
// (cached blocks returned to the OS) and recycled by the next pool.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/runtime/allocator.h"
#include "src/serve/channel.h"
#include "src/serve/request.h"
#include "src/serve/stats.h"
#include "src/vm/executable.h"
#include "src/vm/vm.h"

namespace nimble {
namespace serve {

/// Leases a worker allocator from the process-lifetime registry described
/// above (created on first lease, recycled thereafter, never destroyed).
/// Besides the pool's own workers, the continuous-batching step runners
/// (src/batch/step_runner.h) lease theirs here too — their retired result
/// rows have exactly the same outlive-the-server property.
runtime::PoolingAllocator* LeaseWorkerAllocator();

/// Returns a leased allocator to the registry (trimmed, then recycled by
/// the next lease). The caller must have dropped every NDArray it still
/// holds from this allocator's VM first — results handed to clients are
/// fine, they keep the allocator alive via their Buffers.
void ReleaseWorkerAllocator(runtime::PoolingAllocator* allocator);

class VMPool {
 public:
  /// Builds `num_workers` unbound VMs and starts their threads. `stats` may
  /// be null; when set, every completion (across all models) is recorded
  /// there in addition to each batch's own per-model sink.
  /// `max_pending_batches` bounds the internal batch queue (default 2x
  /// workers) so that saturation propagates backpressure upstream — a
  /// blocked Submit stops the scheduler, the per-model queues fill, and
  /// admission starts shedding — instead of buffering without limit.
  explicit VMPool(int num_workers, ServeStats* stats = nullptr,
                  size_t max_pending_batches = 0);

  /// Closes and joins. Pending batches are drained first.
  ~VMPool();

  /// Enqueues a batch for execution, blocking while `max_pending_batches`
  /// are already queued. `batch.exec` must not be null. Must not be called
  /// after Close(). Thread-safe (any number of producers).
  void Submit(Batch batch);

  /// Stops accepting batches; workers finish what is queued and exit.
  /// Idempotent, thread-safe.
  void Close();

  /// Waits for all workers to exit (Close() must have been called). Must be
  /// called from a single owner thread.
  void Join();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Total requests executed across all workers and models (for
  /// tests/benchmarks). Thread-safe; relaxed counters, so momentarily stale
  /// under concurrent execution.
  int64_t requests_executed() const;

  /// Each worker's leased allocator, in worker order, for the per-worker
  /// memory scopes (serve::Server::MemoryScopes / GET /debug/memory). The
  /// worker set is fixed at construction and allocators are process-
  /// lifetime, so the pointers stay valid and their stats() are safe to
  /// sample from any thread.
  std::vector<runtime::PoolingAllocator*> worker_allocators() const {
    std::vector<runtime::PoolingAllocator*> out;
    out.reserve(workers_.size());
    for (const std::unique_ptr<Worker>& worker : workers_) {
      out.push_back(worker->allocator);
    }
    return out;
  }

 private:
  struct Worker {
    runtime::PoolingAllocator* allocator = nullptr;  // leased, never null
    std::unique_ptr<vm::VirtualMachine> vm;
    std::thread thread;
    std::atomic<int64_t> requests_executed{0};
  };

  void WorkerLoop(Worker& worker);

  ServeStats* stats_;
  Channel<Batch> batches_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool joined_ = false;
};

}  // namespace serve
}  // namespace nimble
