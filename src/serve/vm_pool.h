// Thread pool of VirtualMachine workers sharing one immutable Executable.
//
// Each worker runs a VirtualMachine with a private PoolingAllocator, so the
// hot allocation path is uncontended and each worker's free lists stay warm
// with the storage bucket sizes of the sequence lengths it serves (see the
// thread-safety contract in src/runtime/allocator.h). The executable —
// bytecode, constants/weights, packed-kernel table — exists once, no matter
// how many workers run it (src/vm/executable.h documents its immutability).
//
// Allocator lifetime: result tensors handed out through request futures
// reference their source allocator until the last NDArray dies (Buffer's
// destructor frees into it), and clients may legally keep results after the
// pool is gone. Worker allocators are therefore *leased* from a
// process-lifetime registry rather than owned by the pool — like the global
// allocators, they are never destroyed; a released allocator is trimmed
// (cached blocks returned to the OS) and recycled by the next pool.
//
// Work arrives as Batches (groups of similar-length requests formed by the
// BatchScheduler). A worker runs each request of its batch back-to-back on
// its VM, fulfills the request promises, and recycles the VM between
// batches via VirtualMachine::Reset().
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/runtime/allocator.h"
#include "src/serve/channel.h"
#include "src/serve/request.h"
#include "src/serve/stats.h"
#include "src/vm/executable.h"
#include "src/vm/vm.h"

namespace nimble {
namespace serve {

class VMPool {
 public:
  /// Builds `num_workers` VMs (all sharing `exec`) and starts their
  /// threads. `stats` may be null; when set, per-request completions are
  /// recorded there. `max_pending_batches` bounds the internal batch queue
  /// (default 2x workers) so that saturation propagates backpressure
  /// upstream — a blocked Submit stops the scheduler, the RequestQueue
  /// fills, and admission starts shedding — instead of buffering without
  /// limit.
  VMPool(std::shared_ptr<vm::Executable> exec, int num_workers,
         ServeStats* stats = nullptr, size_t max_pending_batches = 0);

  /// Closes and joins. Pending batches are drained first.
  ~VMPool();

  /// Enqueues a batch for execution, blocking while `max_pending_batches`
  /// are already queued. Must not be called after Close().
  void Submit(Batch batch);

  /// Stops accepting batches; workers finish what is queued and exit.
  void Close();

  /// Waits for all workers to exit (Close() must have been called).
  void Join();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Total requests executed across all workers (for tests/benchmarks).
  int64_t requests_executed() const;

 private:
  struct Worker {
    runtime::PoolingAllocator* allocator = nullptr;  // leased, never null
    std::unique_ptr<vm::VirtualMachine> vm;
    std::thread thread;
    std::atomic<int64_t> requests_executed{0};
  };

  void WorkerLoop(Worker& worker);

  std::shared_ptr<vm::Executable> exec_;
  ServeStats* stats_;
  Channel<Batch> batches_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool joined_ = false;
};

}  // namespace serve
}  // namespace nimble
