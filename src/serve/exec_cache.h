// Shape-bucket executable cache (§4.5 extended from kernels to whole
// executables).
//
// Nimble's bet is that dynamic shapes are best served by a small set of
// shape-specialized artifacts plus runtime dispatch. PR 3's tensor batching
// still runs every bucket through ONE generic batched entry, padding each
// batch to its own Lmax and paying the full dynamic-shape machinery
// (runtime shape functions, dynamic allocation) on every step. This cache
// closes the loop by modeling the observed workload: it maps a length
// bucket — keyed by the *exact* packed sequence length the scheduler
// dispatches — to a vm::Executable variant compiled with that length (and
// the batch size) baked in (core::CompileOptions::specialize_length), and
// the scheduler stamps Batch::exec with the variant at dispatch time.
// VMPool workers rebind per batch exactly as they already do for
// multi-model serving, so a variant is indistinguishable from "yet another
// model" downstream.
//
// Lifecycle of a bucket:
//   1. Lookup(length, batch) misses; the miss is counted as an observation.
//   2. After `min_observations` misses, the length is queued for the
//      background compile thread; batches keep running on the generic
//      executable in the meantime, so tail latency NEVER blocks on
//      compilation.
//   3. The compile thread calls the user-supplied CompileVariantFn and
//      publishes the variant; subsequent Lookups hit and the scheduler
//      dispatches full same-length batches to it (zero padding by
//      construction, fully static dataflow).
//   4. The cache is bounded: inserting beyond `capacity` evicts the least
//      recently hit variant. In-flight batches keep evicted variants alive
//      through their shared_ptr.
//
// Ownership & threading: one ExecCache per model, shared by Server
// instances via shared_ptr (a warmed cache survives server restarts —
// variants are expensive, the cache is the asset). Lookup is called by the
// scheduler thread (and tests); the compile thread only touches the map
// under the same mutex. The compile callback itself runs WITHOUT the lock
// held — it may take milliseconds — and must be thread-safe against the
// serving path (core::Compile is: it builds a fresh module and never
// touches process state). Stats sinks may be null and are recorded outside
// the lock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/codegen/tuner.h"
#include "src/serve/stats.h"
#include "src/vm/executable.h"

namespace nimble {
namespace serve {

/// Compiles a variant specialized to `max_len` (exact packed sequence
/// length) and `batch_size` (0 = leave the batch dimension symbolic), with
/// `dense_config` as the cache-blocking config to bake into the variant
/// (forward it to core::CompileOptions::dense_config; when the cache tunes
/// — ExecCacheConfig::tune_n/tune_k — it is the measured-best config for
/// the variant's exact dense shape, otherwise the cache's default).
/// Typically rebuilds the model's module and calls core::Compile with
/// specialize_length/specialize_batch set; must return a variant whose
/// weights and kernel policy match the generic executable (same builder
/// seed, same dense_dispatch_variants family), or null to mark the length
/// uncompilable (it is then never retried). With tuning enabled the
/// returned executable must be freshly built (not shared with serving):
/// the cache stamps the chosen config on it before publishing. Runs on the
/// cache's compile thread.
using CompileVariantFn = std::function<std::shared_ptr<vm::Executable>(
    int64_t max_len, int64_t batch_size,
    const codegen::DenseConfig& dense_config)>;

struct ExecCacheConfig {
  /// Maximum resident variants; beyond it the least recently hit variant is
  /// evicted (LRU).
  size_t capacity = 8;
  /// Lookup misses of one length before its variant is queued for
  /// compilation: 1 compiles eagerly on first sight, higher values keep
  /// one-off lengths from churning the cache.
  int64_t min_observations = 2;
  /// Batch size baked into each variant (fully static dataflow; the
  /// variant then serves only full batches of exactly this size — the
  /// scheduler's carved same-length batches — and Lookups for any other
  /// size miss without counting an observation). 0 keeps the batch
  /// dimension symbolic, so variants serve any batch size at the cost of
  /// dynamic shape machinery along that dim. Set it to the model's
  /// max_batch_size for the full win; Server::AddModel rejects any other
  /// nonzero value.
  int64_t specialize_batch = 0;
  /// The model's dominant dense shape ([N, K] weight extents, e.g. an LSTM
  /// cell's stacked gate matmul). When both are > 0 the compile thread
  /// tunes each variant before compiling it: the measured-best DenseConfig
  /// for (rows = the baked batch size, or the tile factor when the batch
  /// dim stays symbolic) x [tune_n, tune_k] — memoized process-wide in
  /// codegen::TuneCache, so one shape is measured once no matter how many
  /// variants or caches bake it — is handed to CompileVariantFn and
  /// stamped on the variant. 0 disables tuning; variants then bake
  /// `default_dense_config`.
  int64_t tune_n = 0;
  int64_t tune_k = 0;
  /// Config baked when tuning is disabled (or as the pre-tune transfer
  /// default): typically TuneDenseSymbolic's transferred choice for the
  /// model family, or the generic DenseConfig default.
  codegen::DenseConfig default_dense_config;
  /// Timed repetitions per tuning measurement (min-of-N).
  int tune_repeats = 3;
};

class ExecCache {
 public:
  /// `compile` must be valid. `model_stats`/`aggregate_stats` may be null;
  /// cache events are recorded into both (the per-model / fleet-wide split
  /// every other serving metric uses). The pointed-to stats must outlive
  /// the cache or be detached with set_stats(nullptr, nullptr) first.
  ExecCache(CompileVariantFn compile, ExecCacheConfig config,
            ServeStats* model_stats = nullptr,
            ServeStats* aggregate_stats = nullptr);

  /// Stops the compile thread; queued-but-uncompiled lengths are dropped.
  ~ExecCache();

  ExecCache(const ExecCache&) = delete;
  ExecCache& operator=(const ExecCache&) = delete;

  /// The scheduler's dispatch-time call: the variant serving batches of
  /// exactly (`length` x `batch_size`), or null when the caller must fall
  /// back to the generic executable. A non-null return counts a hit and
  /// refreshes the variant's LRU position. A null return counts a miss,
  /// and — only when a variant of this cache COULD serve this batch size
  /// (it matches config().specialize_batch, or variants are
  /// symbolic-batch) — an observation of `length`, possibly queueing its
  /// compile. Unservable sizes (e.g. an expiry-flushed partial batch)
  /// never count observations: compiling for them would churn the compile
  /// thread and LRU with variants their traffic cannot use. Thread-safe.
  std::shared_ptr<vm::Executable> Lookup(int64_t length, int64_t batch_size);

  /// Re-points the stats sinks (used when a cache outlives the Server that
  /// created its previous sinks). Thread-safe.
  void set_stats(ServeStats* model_stats, ServeStats* aggregate_stats);

  /// Blocks until the compile queue is empty and the compile thread is
  /// idle — for tests and benchmarks that want a warm cache before
  /// measuring. Serving never calls this.
  void WaitIdle();

  struct Snapshot {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t compiles = 0;
    int64_t failed_compiles = 0;
    /// Fresh tuning measurements run by this cache's compile thread
    /// (TuneCache hits served from the memo do not count).
    int64_t tune_events = 0;
    /// Lengths with a resident variant, most recently used first.
    std::vector<int64_t> resident;
    /// Per-resident-variant detail, same order as `resident`.
    struct VariantDetail {
      int64_t length = 0;
      std::string dense_config;  // DenseConfig::ToString form
      bool tuned = false;
    };
    std::vector<VariantDetail> variants;
  };
  Snapshot snapshot() const;

  const ExecCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    std::shared_ptr<vm::Executable> exec;  // null until compiled
    int64_t observations = 0;
    bool queued = false;  // in compile_queue_ or being compiled
    bool failed = false;  // compile returned null / threw; never retried
    std::list<int64_t>::iterator lru_it;  // valid iff exec != nullptr
  };

  void CompileLoop();
  /// Publishes a compiled variant and applies the LRU bound. Returns the
  /// number of evictions (recorded by the caller outside the lock).
  int PublishLocked(int64_t length, std::shared_ptr<vm::Executable> exec);

  CompileVariantFn compile_;
  ExecCacheConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // compile thread waits here
  std::condition_variable idle_cv_;   // WaitIdle waits here
  std::map<int64_t, Entry> entries_;
  std::list<int64_t> lru_;  // front = most recently used resident variant
  std::deque<int64_t> compile_queue_;
  bool compiling_ = false;
  bool stop_ = false;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t compiles_ = 0;
  int64_t failed_compiles_ = 0;
  int64_t tune_events_ = 0;
  ServeStats* model_stats_ = nullptr;
  ServeStats* aggregate_stats_ = nullptr;
  std::thread compiler_;
};

}  // namespace serve
}  // namespace nimble
