// Bounded MPMC request queue with backpressure.
//
// The queue is the admission-control point of the serving pipeline — one
// per registered model, so backpressure and load shedding are per model:
// its capacity bounds the number of that model's requests buffered ahead of
// the scheduler, and a model flooding its own queue blocks only its own
// clients. Producers choose between Push (block until space — the
// backpressure propagates into the client thread) and TryPush (fail fast so
// the caller can shed load). Close() drains gracefully. The scheduler
// multiplexes all queues through one ChannelNotifier.
//
// All semantics live in the generic Channel (src/serve/channel.h); this is
// the Request instantiation the pipeline passes around.
#pragma once

#include "src/serve/channel.h"
#include "src/serve/request.h"

namespace nimble {
namespace serve {

class RequestQueue : public Channel<Request> {
 public:
  using Channel<Request>::Channel;
};

}  // namespace serve
}  // namespace nimble
