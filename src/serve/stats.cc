#include "src/serve/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nimble {
namespace serve {

std::string StatsSnapshot::ToString() const {
  std::ostringstream os;
  os << completed << " completed";
  if (failed > 0) os << ", " << failed << " failed";
  if (rejected > 0) os << ", " << rejected << " rejected";
  os << " in " << elapsed_seconds << " s (" << throughput_rps << " req/s); "
     << "latency us mean " << mean_latency_us << " p50 " << p50_latency_us
     << " p95 " << p95_latency_us << " p99 " << p99_latency_us << " max "
     << max_latency_us << "; mean batch " << mean_batch_size;
  if (mean_queue_wait_us > 0.0 || mean_exec_us > 0.0) {
    os << "; queue-wait mean " << mean_queue_wait_us << " us, exec mean "
       << mean_exec_us << " us";
  }
  if (adaptive_wait_micros > 0) {
    os << "; adaptive wait " << adaptive_wait_micros << " us";
  }
  if (packed_batches > 0) {
    os << "; packed " << packed_batches << "/" << batches
       << " batches, padding waste " << padding_waste * 100.0 << "%";
  }
  if (variant_batches > 0) {
    os << "; " << variant_batches << " on cached variants (waste "
       << variant_padding_waste * 100.0 << "%)";
  }
  if (cache_hits + cache_misses > 0) {
    os << "; exec cache " << cache_hits << "/" << (cache_hits + cache_misses)
       << " hits, " << cache_evictions << " evictions, " << variant_compiles
       << " compiles";
  }
  if (continuous_steps > 0) {
    os << "; continuous " << splices << " splices over " << continuous_steps
       << " steps, mean occupancy " << mean_slot_occupancy << "/"
       << slot_count << " (idle " << idle_slot_fraction * 100.0 << "%)";
  }
  return os.str();
}

void ServeStats::RecordEnqueue(Clock::time_point when) {
  if (metrics_.arrivals != nullptr) metrics_.arrivals->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) {
    started_ = true;
    first_enqueue_ = when;
  }
  arrivals_++;
  if (last_arrival_ != Clock::time_point{} && when > last_arrival_) {
    double gap_us =
        std::chrono::duration<double, std::micro>(when - last_arrival_)
            .count();
    // EWMA with alpha 0.2: a handful of arrivals is enough to track a rate
    // change, single outliers (one slow client) barely move it.
    ewma_gap_us_ =
        ewma_gap_us_ == 0.0 ? gap_us : 0.2 * gap_us + 0.8 * ewma_gap_us_;
  }
  if (when > last_arrival_) last_arrival_ = when;
}

double ServeStats::MeanInterArrivalMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_gap_us_;
}

void ServeStats::RecordAdaptiveWait(int64_t wait_micros) {
  if (metrics_.adaptive_wait_us != nullptr) {
    metrics_.adaptive_wait_us->Set(static_cast<double>(wait_micros));
  }
  std::lock_guard<std::mutex> lock(mu_);
  adaptive_wait_micros_ = wait_micros;
}

void ServeStats::RecordRejected() {
  if (metrics_.rejected != nullptr) metrics_.rejected->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  rejected_++;
}

const char* ServeStats::BatchHistLabel(size_t i) {
  static const char* kLabels[kBatchHistBuckets] = {"1",    "2",     "3-4",
                                                   "5-8",  "9-16",  "17-32",
                                                   "33+"};
  NIMBLE_CHECK_LT(i, kBatchHistBuckets);
  return kLabels[i];
}

size_t ServeStats::BatchHistBucket(size_t size) {
  if (size <= 2) return size <= 1 ? 0 : 1;
  if (size <= 4) return 2;
  if (size <= 8) return 3;
  if (size <= 16) return 4;
  if (size <= 32) return 5;
  return 6;
}

void ServeStats::RecordBatch(size_t size) {
  if (metrics_.batch_size != nullptr) {
    metrics_.batch_size->Observe(static_cast<double>(size));
  }
  std::lock_guard<std::mutex> lock(mu_);
  batches_++;
  batched_requests_ += static_cast<int64_t>(size);
  batch_size_hist_[BatchHistBucket(size)]++;
}

void ServeStats::RecordPackedBatch(int64_t padded, int64_t total, int bucket,
                                   bool on_variant) {
  if (metrics_.packed_batches != nullptr) metrics_.packed_batches->Increment();
  if (metrics_.padded_elements != nullptr) {
    metrics_.padded_elements->Increment(padded);
  }
  if (metrics_.packed_total_elements != nullptr) {
    metrics_.packed_total_elements->Increment(total);
  }
  std::lock_guard<std::mutex> lock(mu_);
  packed_batches_++;
  padded_elements_ += padded;
  packed_total_elements_ += total;
  if (bucket >= 0) {
    auto& [bucket_padded, bucket_total] = padding_by_bucket_[bucket];
    bucket_padded += padded;
    bucket_total += total;
  }
  if (on_variant) {
    variant_batches_++;
    variant_padded_elements_ += padded;
    variant_total_elements_ += total;
  }
}

void ServeStats::RecordCacheHit() {
  if (metrics_.cache_hits != nullptr) metrics_.cache_hits->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  cache_hits_++;
}

void ServeStats::RecordCacheMiss() {
  if (metrics_.cache_misses != nullptr) metrics_.cache_misses->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  cache_misses_++;
}

void ServeStats::RecordCacheEviction() {
  if (metrics_.cache_evictions != nullptr) metrics_.cache_evictions->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  cache_evictions_++;
}

void ServeStats::RecordVariantCompile() {
  if (metrics_.variant_compiles != nullptr) metrics_.variant_compiles->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  variant_compiles_++;
}

void ServeStats::RecordTuneEvent() {
  if (metrics_.tune_events != nullptr) metrics_.tune_events->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  tune_events_++;
}

void ServeStats::RecordSplice(double wait_us) {
  if (metrics_.splices != nullptr) metrics_.splices->Increment();
  if (metrics_.splice_wait_us != nullptr) {
    metrics_.splice_wait_us->Observe(wait_us);
  }
  std::lock_guard<std::mutex> lock(mu_);
  splices_++;
  splice_wait_sum_us_ += wait_us;
}

void ServeStats::RecordStep(int64_t occupied, int64_t num_slots,
                            double duration_us) {
  if (metrics_.continuous_steps != nullptr) {
    metrics_.continuous_steps->Increment();
  }
  if (metrics_.idle_row_steps != nullptr && num_slots > occupied) {
    metrics_.idle_row_steps->Increment(num_slots - occupied);
  }
  if (metrics_.slot_occupancy != nullptr) {
    metrics_.slot_occupancy->Set(static_cast<double>(occupied));
  }
  if (metrics_.step_duration_us != nullptr) {
    metrics_.step_duration_us->Observe(duration_us);
  }
  if (metrics_.active_rows != nullptr) {
    metrics_.active_rows->Observe(static_cast<double>(occupied));
  }
  std::lock_guard<std::mutex> lock(mu_);
  continuous_steps_++;
  continuous_row_steps_ += num_slots;
  continuous_idle_row_steps_ += num_slots - occupied;
  slot_count_ = num_slots;
  slot_occupancy_ = occupied;
  step_duration_sum_us_ += duration_us;
}

void ServeStats::RecordCompletion(double latency_us, double queue_wait_us,
                                  double exec_us, bool ok,
                                  Clock::time_point when) {
  if (metrics_.queue_wait_us != nullptr) {
    metrics_.queue_wait_us->Observe(queue_wait_us);
  }
  if (metrics_.exec_us != nullptr) metrics_.exec_us->Observe(exec_us);
  {
    std::lock_guard<std::mutex> lock(mu_);
    split_count_++;
    queue_wait_sum_us_ += queue_wait_us;
    if (queue_wait_us > queue_wait_max_us_) queue_wait_max_us_ = queue_wait_us;
    exec_sum_us_ += exec_us;
  }
  RecordCompletion(latency_us, ok, when);
}

void ServeStats::RecordCompletion(double latency_us, bool ok,
                                  Clock::time_point when) {
  if (ok) {
    if (metrics_.completed != nullptr) metrics_.completed->Increment();
  } else {
    if (metrics_.failed != nullptr) metrics_.failed->Increment();
  }
  if (metrics_.e2e_latency_us != nullptr) {
    metrics_.e2e_latency_us->Observe(latency_us);
  }
  std::lock_guard<std::mutex> lock(mu_);
  latency_count_++;
  latency_sum_us_ += latency_us;
  if (latency_us > latency_max_us_) latency_max_us_ = latency_us;
  // Vitter's Algorithm R: every completion ends up in the reservoir with
  // probability capacity / count, so percentiles stay unbiased in O(1)
  // memory no matter how long the server runs.
  if (latency_reservoir_.size() < kReservoirCapacity) {
    latency_reservoir_.push_back(latency_us);
  } else {
    uint64_t j = reservoir_rng_.Next() % static_cast<uint64_t>(latency_count_);
    if (j < kReservoirCapacity) {
      latency_reservoir_[static_cast<size_t>(j)] = latency_us;
    }
  }
  if (ok) {
    completed_++;
  } else {
    failed_++;
  }
  if (when > last_completion_) last_completion_ = when;
}

namespace {

/// Nearest-rank percentile over an already-sorted sample: the smallest
/// value with at least p% of the sample at or below it.
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

}  // namespace

double ServeStats::Percentile(std::vector<double> sample, double p) {
  std::sort(sample.begin(), sample.end());
  return SortedPercentile(sample, p);
}

StatsSnapshot ServeStats::Snapshot() const {
  std::unique_lock<std::mutex> lock(mu_);
  StatsSnapshot snap;
  snap.completed = completed_;
  snap.failed = failed_;
  snap.rejected = rejected_;
  snap.arrivals = arrivals_;
  snap.mean_interarrival_us = ewma_gap_us_;
  if (ewma_gap_us_ > 0.0) snap.arrival_rate_rps = 1e6 / ewma_gap_us_;
  snap.adaptive_wait_micros = adaptive_wait_micros_;
  if (split_count_ > 0) {
    snap.mean_queue_wait_us =
        queue_wait_sum_us_ / static_cast<double>(split_count_);
    snap.max_queue_wait_us = queue_wait_max_us_;
    snap.mean_exec_us = exec_sum_us_ / static_cast<double>(split_count_);
  }
  snap.batches = batches_;
  if (batches_ > 0) {
    snap.mean_batch_size =
        static_cast<double>(batched_requests_) / static_cast<double>(batches_);
  }
  snap.batch_size_hist.assign(batch_size_hist_.begin(),
                              batch_size_hist_.end());
  snap.packed_batches = packed_batches_;
  snap.padded_elements = padded_elements_;
  snap.packed_total_elements = packed_total_elements_;
  if (packed_total_elements_ > 0) {
    snap.padding_waste = static_cast<double>(padded_elements_) /
                         static_cast<double>(packed_total_elements_);
  }
  snap.padding_by_bucket.reserve(padding_by_bucket_.size());
  for (const auto& [bucket, counts] : padding_by_bucket_) {
    snap.padding_by_bucket.push_back(
        StatsSnapshot::BucketPadding{bucket, counts.first, counts.second});
  }
  snap.variant_batches = variant_batches_;
  snap.variant_padded_elements = variant_padded_elements_;
  snap.variant_total_elements = variant_total_elements_;
  if (variant_total_elements_ > 0) {
    snap.variant_padding_waste =
        static_cast<double>(variant_padded_elements_) /
        static_cast<double>(variant_total_elements_);
  }
  snap.cache_hits = cache_hits_;
  snap.cache_misses = cache_misses_;
  snap.cache_evictions = cache_evictions_;
  snap.variant_compiles = variant_compiles_;
  snap.tune_events = tune_events_;
  snap.splices = splices_;
  snap.continuous_steps = continuous_steps_;
  snap.continuous_row_steps = continuous_row_steps_;
  snap.continuous_idle_row_steps = continuous_idle_row_steps_;
  snap.slot_count = slot_count_;
  snap.slot_occupancy = slot_occupancy_;
  if (continuous_steps_ > 0) {
    snap.mean_slot_occupancy =
        static_cast<double>(continuous_row_steps_ -
                            continuous_idle_row_steps_) /
        static_cast<double>(continuous_steps_);
  }
  if (continuous_row_steps_ > 0) {
    snap.idle_slot_fraction =
        static_cast<double>(continuous_idle_row_steps_) /
        static_cast<double>(continuous_row_steps_);
  }
  if (continuous_steps_ > 0) {
    snap.mean_step_duration_us =
        step_duration_sum_us_ / static_cast<double>(continuous_steps_);
  }
  if (splices_ > 0) {
    snap.mean_splice_wait_us =
        splice_wait_sum_us_ / static_cast<double>(splices_);
  }
  if (cache_hits_ + cache_misses_ > 0) {
    snap.cache_hit_rate = static_cast<double>(cache_hits_) /
                          static_cast<double>(cache_hits_ + cache_misses_);
  }
  if (started_ && last_completion_ > first_enqueue_) {
    snap.elapsed_seconds =
        std::chrono::duration<double>(last_completion_ - first_enqueue_)
            .count();
    if (snap.elapsed_seconds > 0.0) {
      snap.throughput_rps =
          static_cast<double>(completed_) / snap.elapsed_seconds;
    }
  }
  std::vector<double> reservoir = latency_reservoir_;
  int64_t count = latency_count_;
  double sum = latency_sum_us_, mx = latency_max_us_;
  lock.unlock();
  if (count > 0) {
    snap.mean_latency_us = sum / static_cast<double>(count);
    snap.max_latency_us = mx;
    std::sort(reservoir.begin(), reservoir.end());
    snap.p50_latency_us = SortedPercentile(reservoir, 50.0);
    snap.p95_latency_us = SortedPercentile(reservoir, 95.0);
    snap.p99_latency_us = SortedPercentile(reservoir, 99.0);
  }
  return snap;
}

void ServeStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  latency_reservoir_.clear();
  latency_count_ = 0;
  latency_sum_us_ = 0.0;
  latency_max_us_ = 0.0;
  split_count_ = 0;
  queue_wait_sum_us_ = queue_wait_max_us_ = exec_sum_us_ = 0.0;
  arrivals_ = 0;
  last_arrival_ = Clock::time_point{};
  ewma_gap_us_ = 0.0;
  adaptive_wait_micros_ = 0;
  completed_ = failed_ = rejected_ = batches_ = batched_requests_ = 0;
  batch_size_hist_.fill(0);
  packed_batches_ = padded_elements_ = packed_total_elements_ = 0;
  padding_by_bucket_.clear();
  variant_batches_ = variant_padded_elements_ = variant_total_elements_ = 0;
  cache_hits_ = cache_misses_ = cache_evictions_ = variant_compiles_ = 0;
  tune_events_ = 0;
  splices_ = continuous_steps_ = continuous_row_steps_ = 0;
  continuous_idle_row_steps_ = slot_count_ = slot_occupancy_ = 0;
  step_duration_sum_us_ = splice_wait_sum_us_ = 0.0;
  started_ = false;
  first_enqueue_ = Clock::time_point{};
  last_completion_ = Clock::time_point{};
}

}  // namespace serve
}  // namespace nimble
