// Concurrent multi-model server: per-model queues -> DRR batch scheduler ->
// shared VM pool.
//
// One Server multiplexes any number of compiled models behind one worker
// pool:
//
//   Submit("m", ...)/TrySubmit            (any number of client threads)
//        |
//   per-model RequestQueue                (bounded; backpressure / load
//        |                                 shedding per model)
//   BatchScheduler                        (one thread; length-bucketed
//        |                                 batching per model, deficit-
//        |                                 round-robin across models)
//   VMPool                                (N worker threads, one VM +
//        |                                 private PoolingAllocator each;
//        v                                 workers rebind to the batch's
//   std::future<ObjectRef>                 executable)
//   (or a completion callback: the HTTP front end in src/net/ admits via
//    TrySubmitCallback and finishes responses asynchronously)
//
// A model registered with BatchPolicy::continuous skips the scheduler and
// pool: its RequestQueue feeds a dedicated batch::StepRunner that splices
// requests into a persistent slot-map batch and retires each one the step
// its row finishes (continuous / iteration-level batching). Admission,
// backpressure, stats, and tracing are identical either way.
//
// Lifecycle: construct, AddModel() for each executable, Start(), then
// Submit from any thread. The single-model convenience constructor does all
// of that in one call and keeps the original PR-1 API working.
//
// Results are identical — bit-for-bit — to running the same requests
// sequentially through a single VirtualMachine: requests never share
// mutable state, only their model's read-only executable; and because each
// executable owns its dispatch table, compiling new models while serving
// does not perturb in-flight results (tests/test_serve.cc).
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/batch/step_runner.h"
#include "src/obs/memory.h"
#include "src/obs/metrics.h"
#include "src/obs/step_journal.h"
#include "src/obs/trace.h"
#include "src/serve/batch_scheduler.h"
#include "src/serve/request_queue.h"
#include "src/serve/stats.h"
#include "src/serve/vm_pool.h"
#include "src/vm/executable.h"

namespace nimble {
namespace serve {

/// Per-model registration parameters (everything except the name).
struct ModelConfig {
  std::shared_ptr<vm::Executable> exec;
  /// Executable entry point every request of this model runs.
  std::string function = "main";
  /// Capacity of this model's admission queue: bounds how many requests are
  /// buffered ahead of the scheduler before Submit blocks / TrySubmit sheds.
  size_t queue_capacity = 256;
  /// Length-bucketing and flush policy for this model's batches.
  BatchPolicy batch;
  /// Deficit-round-robin weight: relative share of dispatch slots under
  /// contention (2 = twice the share of a weight-1 model). Must be >= 1.
  int weight = 1;
  /// Optional shape-bucket executable cache (src/serve/exec_cache.h):
  /// length-specialized variants of `exec` compiled in the background and
  /// dispatched to by the scheduler. Requires `batch.tensor_batching`; a
  /// cache that bakes a batch size must bake this model's max_batch_size.
  /// Shared so callers can keep a warmed cache across server restarts.
  std::shared_ptr<ExecCache> exec_cache;
};

struct ServeConfig {
  int num_workers = 4;
  /// Bound on batches buffered inside the pool; 0 = 2x num_workers. Keeps
  /// backpressure honest: when workers fall behind, the scheduler blocks,
  /// the per-model queues fill, and admission starts shedding.
  size_t max_pending_batches = 0;
  /// Request-tracing configuration (src/obs/trace.h). Tracing is on by
  /// default: per-request span stamping is a handful of steady_clock reads,
  /// bounded by the --trace-overhead CI gate at <= 3% of peak req/s.
  obs::TraceConfig trace;
  /// Metrics registry the server exports through (sharded counters,
  /// GET /metrics). Null: the server creates its own. Inject a shared one
  /// to aggregate several servers into a single exposition.
  std::shared_ptr<obs::MetricRegistry> metrics;
  /// Step-journal configuration for continuous models (src/obs/
  /// step_journal.h): one bounded StepRecord ring per continuous model,
  /// written by its runner, served at GET /debug/steps and merged into
  /// GET /debug/trace as slot timelines. On by default, same ≤3% overhead
  /// budget as tracing (the step_journal_overhead CI gate).
  obs::StepJournalConfig step_journal;
  /// Stall-watchdog configuration: one polling thread watching every
  /// continuous runner's health, flipping the per-model
  /// nimble_runner_stalled gauge and WARN-logging (rate-limited) when a
  /// runner holds live rows but completes no step within the deadline.
  obs::StallWatchdogConfig watchdog;
  /// Memory-pressure configuration (src/obs/memory.h). soft_limit_bytes 0
  /// (the default) disables the pressure plane; set it to poll live bytes
  /// across every server allocator scope off the watchdog thread, export
  /// nimble_mem_pressure, and — when `shed` is on — answer queue-full from
  /// TrySubmit* at pressure >= shed_threshold (the HTTP front end's 429)
  /// before the allocators OOM.
  obs::MemoryPressureConfig memory;

  // ---- single-model conveniences, used by the legacy constructor -------
  /// Admission queue capacity for the implicitly registered model.
  size_t queue_capacity = 256;
  /// Batch policy for the implicitly registered model.
  BatchPolicy batch;
  /// Entry point for the implicitly registered model.
  std::string function = "main";
};

class Server {
 public:
  /// Multi-model form: construct, AddModel() each executable, Start().
  explicit Server(ServeConfig config = {});

  /// Single-model convenience: registers `exec` under the name "default"
  /// (using the config's queue_capacity/batch/function) and starts
  /// immediately. Submit/TrySubmit without a model name route to it.
  Server(std::shared_ptr<vm::Executable> exec, ServeConfig config = {});

  /// Drains and stops the pipeline.
  ~Server();

  /// Registers a named executable. Must be called before Start(), from the
  /// owning thread; names must be unique and `model.exec` non-null.
  void AddModel(const std::string& name, ModelConfig model);

  /// Launches the scheduler and worker pool. Call exactly once, after every
  /// AddModel. Submissions before Start() fail.
  void Start();

  /// Submits a request for `model`, blocking while that model's queue is
  /// full (backpressure; other models' admissions are unaffected).
  /// `length_hint` is the input's sequence length, used for bucketing.
  /// Throws nimble::Error after Shutdown() or for an unknown model.
  /// Thread-safe.
  std::future<runtime::ObjectRef> Submit(const std::string& model,
                                         std::vector<runtime::ObjectRef> args,
                                         int64_t length_hint = 0);

  /// Non-blocking admission: returns an empty optional — and counts a
  /// rejection against `model` — when its queue is full, so callers can
  /// shed load per model. Thread-safe.
  std::optional<std::future<runtime::ObjectRef>> TrySubmit(
      const std::string& model, std::vector<runtime::ObjectRef> args,
      int64_t length_hint = 0);

  /// Outcome of a callback-path admission attempt. Never throws for the
  /// conditions a network front end must turn into status codes.
  enum class AdmitStatus {
    kAccepted,      // callback will fire exactly once, on a worker thread
    kQueueFull,     // shed; counted as a rejection against the model
    kUnknownModel,  // no model registered under that name
    kClosed,        // server draining or shut down
  };
  struct AdmitResult {
    AdmitStatus status = AdmitStatus::kClosed;
    /// Queue depth observed under the admission lock (after the push on
    /// success, at rejection otherwise) and the queue's capacity — the
    /// numbers a 429 handler turns into a Retry-After estimate.
    size_t queue_depth = 0;
    size_t queue_capacity = 0;
    bool accepted() const { return status == AdmitStatus::kAccepted; }
  };

  /// Non-blocking admission for the asynchronous completion path
  /// (src/net/): instead of a future, `on_complete` fires on a pool worker
  /// thread once the request finishes (see serve::CompletionFn for its
  /// contract — in particular it must not block or throw). Unknown models
  /// and a draining server are reported in the result, not thrown: this is
  /// the hot path of the HTTP front end, where those outcomes are ordinary
  /// responses (404/503), not programming errors. `received` backdates the
  /// trace's admission span to when the caller first saw the request (body
  /// decode start); default stamps it at submission. Thread-safe.
  AdmitResult TrySubmitCallback(const std::string& model,
                                std::vector<runtime::ObjectRef> args,
                                int64_t length_hint, CompletionFn on_complete,
                                Clock::time_point received = {});

  /// Single-model conveniences: route to the first registered model.
  std::future<runtime::ObjectRef> Submit(std::vector<runtime::ObjectRef> args,
                                         int64_t length_hint = 0);
  std::optional<std::future<runtime::ObjectRef>> TrySubmit(
      std::vector<runtime::ObjectRef> args, int64_t length_hint = 0);

  /// Graceful drain: stops intake on every model (later Submits fail,
  /// TrySubmit* report kClosed), flushes every request already admitted —
  /// the scheduler dispatches all pending buckets, workers run every queued
  /// batch — and joins the scheduler and all VMPool workers. Every
  /// outstanding future/callback is fulfilled before this returns; no
  /// admitted request is ever dropped. Idempotent and terminal: there is no
  /// restart. Stats remain queryable afterwards.
  void Drain();

  /// True once Drain()/Shutdown() has begun; the HTTP front end turns this
  /// into 503 instead of admitting into closing queues. Thread-safe.
  bool draining() const { return shutdown_.load(); }

  /// Drain() plus resource teardown (detaches any shared exec caches from
  /// this server's stats). Idempotent; also run by the destructor.
  void Shutdown();

  const ServeConfig& config() const { return config_; }
  std::vector<std::string> model_names() const;
  bool HasModel(const std::string& model) const;

  /// Aggregate stats across every model (completions recorded once per
  /// request). Thread-safe.
  StatsSnapshot stats() const { return stats_.Snapshot(); }
  /// Stats for one model. Throws for an unknown name. Thread-safe.
  StatsSnapshot stats(const std::string& model) const;

  /// One consistent scrape of the whole server: every model's snapshot,
  /// queue depth, and capacity, plus the aggregate — each ServeStats mutex
  /// taken exactly once per call (see the consistency contract in
  /// stats.h). This is what GET /stats serializes; prefer it over per-model
  /// stats() calls when reading more than one view.
  struct ModelStatsView {
    std::string name;
    StatsSnapshot stats;
    size_t queue_depth = 0;
    size_t queue_capacity = 0;
    /// Exec-cache snapshot — resident variants with their (possibly tuned)
    /// dense configs — for models serving with one (has_exec_cache);
    /// default-initialized otherwise.
    bool has_exec_cache = false;
    ExecCache::Snapshot exec_cache;
  };
  struct ServerSnapshot {
    StatsSnapshot aggregate;
    std::vector<ModelStatsView> models;
    /// Sum of the per-model depths above (same pass, so it always equals
    /// their total — unlike a separate queue_depth() call).
    size_t queue_depth = 0;
  };
  ServerSnapshot SnapshotAll() const;

  /// The metrics registry this server records into (never null); the HTTP
  /// front end renders it at GET /metrics. Thread-safe.
  const std::shared_ptr<obs::MetricRegistry>& metrics_registry() const {
    return metrics_;
  }
  /// The request tracer (never null); serves GET /debug/trace. Thread-safe.
  const std::shared_ptr<obs::Tracer>& tracer() const { return tracer_; }

  /// The continuous models' step journals (empty when no model is
  /// continuous). Journals live as long as the server, so the views stay
  /// valid across Drain; the HTTP front end serves them at GET /debug/steps
  /// and folds them into GET /debug/trace as slot timelines. Thread-safe
  /// after Start (the list is fixed at registration time).
  struct ContinuousModelView {
    std::string name;
    int64_t num_slots = 0;
    const obs::StepJournal* journal = nullptr;  // may be null when disabled
  };
  std::vector<ContinuousModelView> continuous_models() const;

  /// The stall watchdog (null when there is nothing to watch — no
  /// continuous model and no memory pressure — or the watchdog is
  /// disabled); exposed for tests and health probes.
  const obs::StallWatchdog* watchdog() const { return watchdog_.get(); }

  /// One memory sample per allocator scope: "worker:<i>" for each VMPool
  /// worker, "model:<name>" for each continuous runner, plus the process
  /// "global:pool"/"global:naive" allocators. Sampled fresh on every call
  /// (lock-free counter merges plus one pool-mutex hop per scope for the
  /// size-class table); safe from any thread, before Start and after
  /// Drain. GET /debug/memory and the per-scope /metrics gauges serialize
  /// this.
  std::vector<obs::AllocScopeSample> MemoryScopes() const;

  /// The memory-pressure gauge (null unless config.memory.soft_limit_bytes
  /// > 0 and Start() has run). Thread-safe.
  const obs::MemoryPressure* memory_pressure() const {
    return pressure_.get();
  }

  /// Total requests currently buffered in admission queues (all models).
  size_t queue_depth() const;
  /// Requests buffered for one model. Throws for an unknown name.
  size_t queue_depth(const std::string& model) const;
  /// Admission-queue capacity of one model. Throws for an unknown name.
  size_t queue_capacity(const std::string& model) const;

 private:
  ModelState& Find(const std::string& model) const;
  Request MakeRequest(const ModelState& model,
                      std::vector<runtime::ObjectRef> args,
                      int64_t length_hint,
                      std::future<runtime::ObjectRef>* future);

  ServeConfig config_;
  std::shared_ptr<obs::MetricRegistry> metrics_;  // never null
  std::shared_ptr<obs::Tracer> tracer_;           // never null
  ServeStats stats_;  // aggregate across models
  /// unique_ptr for stable addresses: the scheduler and in-flight batches
  /// hold ModelState pointers. Registration order defines model indices.
  std::vector<std::unique_ptr<ModelState>> models_;
  std::map<std::string, int> model_index_;
  /// Null when every registered model is continuous (no scheduler/pool to
  /// run); Drain() handles either shape.
  std::unique_ptr<VMPool> pool_;
  std::unique_ptr<BatchScheduler> scheduler_;
  /// One slot-map runner per continuous model (BatchPolicy::continuous);
  /// such models never appear in the scheduler's model list — their queues
  /// are drained by their runner's thread directly.
  std::vector<std::unique_ptr<batch::StepRunner>> runners_;
  /// Model name per runner, parallel to runners_ (the "model:<name>"
  /// memory scopes). Fixed at Start.
  std::vector<std::string> runner_models_;
  /// Soft-limit memory pressure (null unless configured); polled by the
  /// watchdog's aux check. Declared before watchdog_ so the watchdog —
  /// whose aux check points here — is destroyed first.
  std::unique_ptr<obs::MemoryPressure> pressure_;
  /// Polls every continuous runner's health atomics and the memory-pressure
  /// gauge; started after the runners, stopped first in Drain. Null when
  /// there is nothing to watch.
  std::unique_ptr<obs::StallWatchdog> watchdog_;
  std::atomic<int64_t> next_id_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> caches_detached_{false};
};

}  // namespace serve
}  // namespace nimble
