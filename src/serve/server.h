// Concurrent model server: queue -> batch scheduler -> VM pool.
//
// One Server owns the whole serving pipeline for a single compiled model:
//
//   Submit()/TrySubmit()            (any number of client threads)
//        |
//   RequestQueue                    (bounded; backpressure / load shedding)
//        |
//   BatchScheduler                  (one thread; length-bucketed batching)
//        |
//   VMPool                          (N worker threads, one VM + private
//        |                           PoolingAllocator each, one shared
//        v                           immutable Executable)
//   std::future<ObjectRef>          (fulfilled per request)
//
// Results are identical — bit-for-bit — to running the same requests
// sequentially through a single VirtualMachine: requests never share
// mutable state, only the read-only executable (tests/test_serve.cc).
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/serve/batch_scheduler.h"
#include "src/serve/request_queue.h"
#include "src/serve/stats.h"
#include "src/serve/vm_pool.h"
#include "src/vm/executable.h"

namespace nimble {
namespace serve {

struct ServeConfig {
  int num_workers = 4;
  size_t queue_capacity = 256;
  /// Bound on batches buffered inside the pool; 0 = 2x num_workers. Keeps
  /// backpressure honest: when workers fall behind, the scheduler blocks,
  /// the queue fills, and admission starts shedding.
  size_t max_pending_batches = 0;
  BatchPolicy batch;
  /// Executable entry point every request runs.
  std::string function = "main";
};

class Server {
 public:
  Server(std::shared_ptr<vm::Executable> exec, ServeConfig config = {});

  /// Drains and stops the pipeline.
  ~Server();

  /// Submits a request, blocking while the queue is full (backpressure).
  /// `length_hint` is the input's sequence length, used for bucketing.
  /// Throws nimble::Error after Shutdown().
  std::future<runtime::ObjectRef> Submit(std::vector<runtime::ObjectRef> args,
                                         int64_t length_hint = 0);

  /// Non-blocking admission: returns an empty optional — and counts a
  /// rejection — when the queue is full, so callers can shed load.
  std::optional<std::future<runtime::ObjectRef>> TrySubmit(
      std::vector<runtime::ObjectRef> args, int64_t length_hint = 0);

  /// Stops admissions, flushes every pending batch, waits for all workers.
  /// Idempotent; also run by the destructor. Outstanding futures are all
  /// fulfilled before this returns.
  void Shutdown();

  const ServeConfig& config() const { return config_; }
  StatsSnapshot stats() const { return stats_.Snapshot(); }
  size_t queue_depth() const { return queue_->size(); }

 private:
  Request MakeRequest(std::vector<runtime::ObjectRef> args,
                      int64_t length_hint,
                      std::future<runtime::ObjectRef>* future);

  ServeConfig config_;
  ServeStats stats_;
  std::unique_ptr<RequestQueue> queue_;
  std::unique_ptr<VMPool> pool_;
  std::unique_ptr<BatchScheduler> scheduler_;
  std::atomic<int64_t> next_id_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace serve
}  // namespace nimble
