// Serving metrics: throughput and latency percentiles.
//
// Workers record end-to-end request latency (enqueue -> result ready); the
// scheduler records batch sizes; the server records rejections. Snapshot()
// folds everything into the numbers an operator dashboards: requests/sec,
// p50/p95/p99 latency, mean batch occupancy.
//
// A multi-model Server keeps one ServeStats per model (inside ModelState)
// plus one aggregate; every event is recorded into both, so per-model and
// fleet-wide views stay consistent without post-hoc merging of percentiles.
//
// Thread-safe: recording takes a mutex (recording is a few nanoseconds of
// bookkeeping next to a kernel invocation, so contention is negligible).
// Memory is bounded: per-request latencies go into a fixed-size reservoir
// sample (Vitter's Algorithm R, deterministic RNG), so a server can run
// forever without the stats growing; mean/max are exact running values,
// percentiles are estimates over the reservoir (exact until the reservoir
// overflows).
//
// Consistency contract (the /stats and /metrics scrapes):
//   - Snapshot() is internally consistent: every field of one snapshot was
//     read under a single hold of this object's mutex (completed never
//     exceeds arrivals within one snapshot, histogram sums match their
//     totals, and so on).
//   - DIFFERENT ServeStats objects (each model's vs the aggregate) are
//     never locked together: a scrape that reads several must take each
//     object's snapshot exactly once per pass — Server::SnapshotAll() does
//     — and may still observe cross-object skew (a completion recorded
//     into its model between the two snapshots). Per-object monotonicity
//     always holds; cross-object equality is only eventual.
//   - The sharded obs:: instruments mirrored via BindMetrics are updated
//     OUTSIDE this mutex, so /metrics and /stats agree only eventually,
//     but each is self-consistent per the rules above.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/serve/request.h"
#include "src/support/rng.h"

namespace nimble {
namespace serve {

struct StatsSnapshot {
  int64_t completed = 0;
  int64_t failed = 0;    // promise fulfilled with an exception
  int64_t rejected = 0;  // shed at admission (TrySubmit on a full queue)
  /// Requests admitted (RecordEnqueue calls) and the smoothed arrival
  /// process: an EWMA of the inter-arrival gap and its reciprocal rate.
  /// This is the signal the adaptive batch policy steers max_wait from.
  int64_t arrivals = 0;
  double mean_interarrival_us = 0.0;  // EWMA; 0 until two arrivals
  double arrival_rate_rps = 0.0;      // 1e6 / mean_interarrival_us
  /// Effective max_wait_micros last applied by the scheduler's adaptive
  /// controller (0 when the policy is not adaptive).
  int64_t adaptive_wait_micros = 0;
  int64_t batches = 0;
  double mean_batch_size = 0.0;
  /// Batch-size histogram: dispatched batches bucketed by request count
  /// (bucket labels via ServeStats::BatchHistLabel). Sums to `batches`.
  std::vector<int64_t> batch_size_hist;
  /// Tensor-batching accounting (src/batch/): batches that ran as one packed
  /// invocation, and the padding-waste ratio of their packed inputs
  /// (padded zero elements / total packed elements).
  int64_t packed_batches = 0;
  int64_t padded_elements = 0;
  int64_t packed_total_elements = 0;
  double padding_waste = 0.0;  // padded_elements / packed_total_elements
  /// Padding accounting split by length bucket (the scheduler's bucket
  /// index of each packed batch), so per-bucket waste is observable —
  /// the executable cache's whole point is driving the cached buckets'
  /// entries to zero.
  struct BucketPadding {
    int bucket = -1;
    int64_t padded_elements = 0;
    int64_t total_elements = 0;
    double waste() const {
      return total_elements > 0 ? static_cast<double>(padded_elements) /
                                      static_cast<double>(total_elements)
                                : 0.0;
    }
  };
  std::vector<BucketPadding> padding_by_bucket;
  /// Executable-cache accounting (src/serve/exec_cache.h): packed batches
  /// that ran on a bucket-specialized variant, their padding (zero by
  /// construction — asserted by CI), and the cache's hit/miss/evict/compile
  /// counters.
  int64_t variant_batches = 0;
  int64_t variant_padded_elements = 0;
  int64_t variant_total_elements = 0;
  double variant_padding_waste = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t variant_compiles = 0;
  /// Fresh dense-tuning measurements run by the background compile thread
  /// (memoized TuneCache hits do not count — §4.5 tune-once-per-shape).
  int64_t tune_events = 0;
  double cache_hit_rate = 0.0;  // hits / (hits + misses)
  /// Continuous (iteration-level) batching accounting (src/batch/
  /// step_runner.h). A "row step" is one slot for one step of the
  /// persistent batch; idle row steps are slots that computed while holding
  /// no request — the ONLY waste on this path, reported separately from
  /// padding_waste because structural packing padding is zero by
  /// construction (no slot ever pads to another slot's length).
  int64_t splices = 0;            // requests spliced into a slot
  int64_t continuous_steps = 0;   // step-function invocations
  int64_t continuous_row_steps = 0;       // steps * slots
  int64_t continuous_idle_row_steps = 0;  // row steps with no live request
  int64_t slot_count = 0;      // configured slots (0 = model not continuous)
  int64_t slot_occupancy = 0;  // live slots as of the latest step
  double mean_slot_occupancy = 0.0;  // live row steps / steps
  double idle_slot_fraction = 0.0;   // idle row steps / row steps
  /// Step-level timing (recorded by the runner per step / per splice):
  /// mean wall-clock duration of a step-twin invocation, and the mean
  /// queued-behind-splice wait (enqueue -> splice) of spliced requests.
  double mean_step_duration_us = 0.0;
  double mean_splice_wait_us = 0.0;
  double elapsed_seconds = 0.0;   // first enqueue -> last completion
  double throughput_rps = 0.0;    // completed / elapsed_seconds
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// End-to-end latency split: queue wait (admission -> a pool worker picks
  /// the batch up; includes scheduler bucketing and pool-queue time) vs
  /// execution (worker pickup -> promise fulfilled). The two means sum to
  /// mean_latency_us for completions recorded with the split.
  double mean_queue_wait_us = 0.0;
  double max_queue_wait_us = 0.0;
  double mean_exec_us = 0.0;

  std::string ToString() const;
};

/// Sharded metrics-plane instruments a ServeStats mirrors its hot counters
/// into (src/obs/metrics.h). Every pointer may be null (that event is then
/// not exported); the pointed-to instruments must outlive the ServeStats.
/// Server::AddModel builds one per model, labeled {model="<name>"}, so the
/// /metrics exposition gets per-model series without a second recording
/// path through the pipeline.
struct StatsMetricBindings {
  obs::Counter* arrivals = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* failed = nullptr;
  obs::Counter* rejected = nullptr;
  obs::Counter* packed_batches = nullptr;
  obs::Counter* padded_elements = nullptr;
  obs::Counter* packed_total_elements = nullptr;
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
  obs::Counter* cache_evictions = nullptr;
  obs::Counter* variant_compiles = nullptr;
  obs::Counter* tune_events = nullptr;
  obs::Counter* splices = nullptr;
  obs::Counter* continuous_steps = nullptr;
  obs::Counter* idle_row_steps = nullptr;
  obs::Gauge* adaptive_wait_us = nullptr;
  obs::Gauge* slot_occupancy = nullptr;
  obs::Histogram* e2e_latency_us = nullptr;
  obs::Histogram* queue_wait_us = nullptr;
  obs::Histogram* exec_us = nullptr;
  obs::Histogram* batch_size = nullptr;
  obs::Histogram* step_duration_us = nullptr;
  obs::Histogram* splice_wait_us = nullptr;
  obs::Histogram* active_rows = nullptr;
};

class ServeStats {
 public:
  /// Attaches metrics-plane instruments; each Record* below then also
  /// updates the matching instrument, outside this object's mutex (the
  /// instruments shard internally — see the consistency contract above).
  /// Must be called before any recording starts (AddModel time): the
  /// bindings are read unsynchronized on the hot path.
  void BindMetrics(const StatsMetricBindings& bindings) {
    metrics_ = bindings;
  }

  /// Called by the queue producer side; pins the start of the measurement
  /// window at the first enqueue and feeds the arrival-rate EWMA the
  /// adaptive batch policy reads.
  void RecordEnqueue(Clock::time_point when);

  void RecordRejected();

  /// Smoothed inter-arrival gap in microseconds (EWMA over RecordEnqueue
  /// timestamps); 0 until two arrivals have been observed. Thread-safe.
  double MeanInterArrivalMicros() const;

  /// Gauge set by the scheduler's adaptive controller: the effective
  /// max_wait_micros currently applied to this model's buckets.
  void RecordAdaptiveWait(int64_t wait_micros);

  /// One batch dispatched to the pool with `size` requests.
  void RecordBatch(size_t size);

  /// One batch executed as a single packed tensor invocation; `padded` of
  /// the `total` packed input elements were zero padding. `bucket` is the
  /// scheduler's length-bucket index (-1 = unknown, e.g. standalone pool
  /// use), `on_variant` whether the batch ran on a bucket-specialized
  /// executable variant.
  void RecordPackedBatch(int64_t padded, int64_t total, int bucket = -1,
                         bool on_variant = false);

  // Executable-cache events (recorded by serve::ExecCache / the scheduler).
  void RecordCacheHit();
  void RecordCacheMiss();
  void RecordCacheEviction();
  void RecordVariantCompile();
  void RecordTuneEvent();

  // Continuous-batching events (recorded by batch::StepRunner).
  /// One request spliced into a slot of the persistent batch. `wait_us` is
  /// the queued-behind-splice wait (enqueue -> splice); 0 when unknown.
  void RecordSplice(double wait_us = 0.0);
  /// One step-function invocation over `num_slots` slots of which
  /// `occupied` held live requests, taking `duration_us` wall-clock
  /// (gather + invoke + retire scan; 0 when unmeasured). Also refreshes
  /// the occupancy gauge and the step-level histograms.
  void RecordStep(int64_t occupied, int64_t num_slots,
                  double duration_us = 0.0);

  /// One request finished (promise fulfilled). `latency_us` is end-to-end:
  /// enqueue to result ready. `ok` is false when the VM threw.
  void RecordCompletion(double latency_us, bool ok, Clock::time_point when);

  /// Completion with the latency split: `queue_wait_us` (admission ->
  /// worker pickup) + `exec_us` (pickup -> fulfilled) == `latency_us`.
  void RecordCompletion(double latency_us, double queue_wait_us,
                        double exec_us, bool ok, Clock::time_point when);

  /// Consistent copy of every counter (taken under the mutex); safe to call
  /// at any time from any thread, including while serving.
  StatsSnapshot Snapshot() const;
  /// Zeroes every counter. Thread-safe, but concurrent recorders make the
  /// result ill-defined — reset between runs, not mid-run.
  void Reset();

  /// Nearest-rank percentile of an unsorted sample (p in [0, 100]); exposed
  /// for tests. Returns 0 on an empty sample.
  static double Percentile(std::vector<double> sample, double p);

  /// Latency reservoir capacity; percentiles are exact below this many
  /// completions and sampled estimates beyond it.
  static constexpr size_t kReservoirCapacity = 4096;

  /// Batch-size histogram buckets: 1, 2, 3-4, 5-8, 9-16, 17-32, 33+.
  static constexpr size_t kBatchHistBuckets = 7;
  /// Label of histogram bucket `i` (e.g. "3-4"); for dashboards/tests.
  static const char* BatchHistLabel(size_t i);
  /// Bucket index for a batch of `size` requests.
  static size_t BatchHistBucket(size_t size);

 private:
  /// Metrics-plane mirror; written once before recording starts, read
  /// lock-free by every recorder.
  StatsMetricBindings metrics_;

  mutable std::mutex mu_;
  std::map<int, std::pair<int64_t, int64_t>> padding_by_bucket_;
  std::vector<double> latency_reservoir_;
  int64_t latency_count_ = 0;
  double latency_sum_us_ = 0.0;
  double latency_max_us_ = 0.0;
  int64_t split_count_ = 0;  // completions recorded with the split
  double queue_wait_sum_us_ = 0.0;
  double queue_wait_max_us_ = 0.0;
  double exec_sum_us_ = 0.0;
  int64_t arrivals_ = 0;
  Clock::time_point last_arrival_{};
  double ewma_gap_us_ = 0.0;
  int64_t adaptive_wait_micros_ = 0;
  support::Rng reservoir_rng_{0x5e17e5};
  int64_t completed_ = 0;
  int64_t failed_ = 0;
  int64_t rejected_ = 0;
  int64_t batches_ = 0;
  int64_t batched_requests_ = 0;
  std::array<int64_t, kBatchHistBuckets> batch_size_hist_{};
  int64_t packed_batches_ = 0;
  int64_t padded_elements_ = 0;
  int64_t packed_total_elements_ = 0;
  int64_t variant_batches_ = 0;
  int64_t variant_padded_elements_ = 0;
  int64_t variant_total_elements_ = 0;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t cache_evictions_ = 0;
  int64_t variant_compiles_ = 0;
  int64_t tune_events_ = 0;
  int64_t splices_ = 0;
  int64_t continuous_steps_ = 0;
  int64_t continuous_row_steps_ = 0;
  int64_t continuous_idle_row_steps_ = 0;
  int64_t slot_count_ = 0;
  int64_t slot_occupancy_ = 0;
  double step_duration_sum_us_ = 0.0;
  double splice_wait_sum_us_ = 0.0;
  bool started_ = false;
  Clock::time_point first_enqueue_{};
  Clock::time_point last_completion_{};
};

}  // namespace serve
}  // namespace nimble
