// Serving request representation.
//
// A Request is one in-flight inference call: the VM arguments, a length
// hint used by the batch scheduler to bucket variable-length inputs, and a
// promise fulfilled with the VM's result object (or the exception it threw).
// Requests are move-only (they own the promise) and flow
//
//   client -> RequestQueue -> BatchScheduler -> VMPool worker -> promise
//
// without copies.
//
// Two completion paths coexist: every request's promise is always
// fulfilled (the future path), and a request may additionally carry an
// `on_complete` callback — the asynchronous path the HTTP front end
// (src/net/) rides, where a pool worker must hand the result off without
// anyone blocking on a future.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/runtime/object.h"
#include "src/vm/executable.h"

namespace nimble {
namespace obs {
class Tracer;  // src/obs/trace.h
}

namespace serve {

class ServeStats;  // src/serve/stats.h (which includes this header)

using Clock = std::chrono::steady_clock;

/// Completion callback for the asynchronous path: exactly one of
/// `result`/`error` is set. Invoked on a pool worker thread, after the
/// request's promise has been fulfilled, exactly once per request. Must not
/// block (workers never wait on downstream consumers — the HTTP handler,
/// for example, just posts the response to its event loop) and must not
/// throw. `trace` is the request's span record with every stage up to
/// unpack stamped (the write span is still open — the callback IS the
/// write); it is only valid for the duration of the call.
using CompletionFn =
    std::function<void(runtime::ObjectRef result, std::exception_ptr error,
                       const obs::TraceContext& trace)>;

struct Request {
  int64_t id = -1;
  /// Entry point to run within the model's executable (stamped from the
  /// model's configuration at admission).
  std::string function = "main";
  std::vector<runtime::ObjectRef> args;
  /// Sequence length (tokens, rows, ...) used for length bucketing. Zero is
  /// valid and lands in the first bucket.
  int64_t length_hint = 0;
  Clock::time_point enqueue_time{};
  /// Stamped by the pool worker when it starts executing the batch; the
  /// enqueue->dispatch gap is the queue-wait half of the latency split
  /// recorded into ServeStats.
  Clock::time_point dispatch_time{};
  std::promise<runtime::ObjectRef> promise;
  /// Optional asynchronous completion hook (see CompletionFn). Null for the
  /// plain future path.
  CompletionFn on_complete;
  /// Per-stage span record (src/obs/trace.h), stamped as the request moves
  /// down the pipeline and committed to the server's Tracer after the
  /// completion hook returns. Dormant (no stamps, no commit) when tracing
  /// is disabled.
  obs::TraceContext trace;
};

/// A group of similar-length requests for one model, dispatched to one pool
/// worker. The batch carries everything the worker needs — the executable
/// to (re)bind its VM to and the per-model stats sink — so the pool itself
/// holds no model state and one pool can serve any number of models.
struct Batch {
  int bucket = -1;
  /// Index of the owning model within its server (-1 for standalone
  /// batches submitted directly to a VMPool).
  int model = -1;
  /// Executable the batch runs on. Must not be null when submitted to a
  /// VMPool; shared (read-only) with every worker serving this model.
  std::shared_ptr<vm::Executable> exec;
  /// Per-model stats sink; may be null. Completions are recorded here in
  /// addition to the pool's aggregate stats.
  ServeStats* stats = nullptr;
  /// Stamped from the model's BatchPolicy: ask the worker to run this batch
  /// as one packed tensor invocation (src/batch/) when the executable
  /// supports it; the worker falls back to the per-request loop otherwise.
  bool tensor_batching = false;
  /// Trace sink completed requests commit their spans to; may be null
  /// (standalone pool use, tracing disabled).
  obs::Tracer* tracer = nullptr;
  std::vector<Request> requests;
};

}  // namespace serve
}  // namespace nimble
