// Serving request representation.
//
// A Request is one in-flight inference call: the VM arguments, a length
// hint used by the batch scheduler to bucket variable-length inputs, and a
// promise fulfilled with the VM's result object (or the exception it threw).
// Requests are move-only (they own the promise) and flow
//
//   client -> RequestQueue -> BatchScheduler -> VMPool worker -> promise
//
// without copies.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "src/runtime/object.h"

namespace nimble {
namespace serve {

using Clock = std::chrono::steady_clock;

struct Request {
  int64_t id = -1;
  /// Executable function to run (every request in a pool shares one
  /// executable; the function name selects an entry point within it).
  std::string function = "main";
  std::vector<runtime::ObjectRef> args;
  /// Sequence length (tokens, rows, ...) used for length bucketing. Zero is
  /// valid and lands in the first bucket.
  int64_t length_hint = 0;
  Clock::time_point enqueue_time{};
  std::promise<runtime::ObjectRef> promise;
};

/// A group of similar-length requests dispatched to one pool worker.
struct Batch {
  int bucket = -1;
  std::vector<Request> requests;
};

}  // namespace serve
}  // namespace nimble
