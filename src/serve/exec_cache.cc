#include "src/serve/exec_cache.h"

#include <utility>

#include "src/support/logging.h"

namespace nimble {
namespace serve {

ExecCache::ExecCache(CompileVariantFn compile, ExecCacheConfig config,
                     ServeStats* model_stats, ServeStats* aggregate_stats)
    : compile_(std::move(compile)),
      config_(config),
      model_stats_(model_stats),
      aggregate_stats_(aggregate_stats) {
  NIMBLE_CHECK(compile_ != nullptr) << "ExecCache needs a compile function";
  NIMBLE_CHECK_GE(config_.capacity, 1u);
  NIMBLE_CHECK_GE(config_.min_observations, 1);
  compiler_ = std::thread([this] { CompileLoop(); });
}

ExecCache::~ExecCache() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  compiler_.join();
}

void ExecCache::set_stats(ServeStats* model_stats,
                          ServeStats* aggregate_stats) {
  std::lock_guard<std::mutex> lock(mu_);
  model_stats_ = model_stats;
  aggregate_stats_ = aggregate_stats;
}

std::shared_ptr<vm::Executable> ExecCache::Lookup(int64_t length,
                                                  int64_t batch_size) {
  std::shared_ptr<vm::Executable> result;
  bool queue_compile = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // `batch_size` can only ever run on a variant when it matches what
    // variants of this cache are baked with (0 = symbolic batch serves
    // any size).
    bool servable = config_.specialize_batch == 0 ||
                    config_.specialize_batch == batch_size;
    Entry& entry = entries_[length];
    if (entry.exec != nullptr && servable) {
      result = entry.exec;
      hits_++;
      lru_.splice(lru_.begin(), lru_, entry.lru_it);  // refresh
    } else if (!servable || entry.exec != nullptr) {
      // A batch no variant of this cache can serve (wrong size, e.g. an
      // expiry-flushed partial batch): a miss, but NOT an observation —
      // compiling for this length would produce a variant such batches
      // still cannot use, churning the compile thread and the LRU.
      misses_++;
    } else {
      misses_++;
      if (!entry.queued && !entry.failed &&
          ++entry.observations >= config_.min_observations) {
        entry.queued = true;
        compile_queue_.push_back(length);
        queue_compile = true;
      }
    }
    // Stats under mu_: set_stats (how Server::Shutdown detaches a shared
    // cache before the Server's stats die) swaps the pointers under the
    // same mutex, so a detach cannot race an in-flight recording.
    // ServeStats locks internally and never calls back into the cache, so
    // the nesting cannot deadlock.
    if (result != nullptr) {
      if (model_stats_ != nullptr) model_stats_->RecordCacheHit();
      if (aggregate_stats_ != nullptr) aggregate_stats_->RecordCacheHit();
    } else {
      if (model_stats_ != nullptr) model_stats_->RecordCacheMiss();
      if (aggregate_stats_ != nullptr) aggregate_stats_->RecordCacheMiss();
    }
  }
  if (queue_compile) work_cv_.notify_one();
  return result;
}

int ExecCache::PublishLocked(int64_t length,
                             std::shared_ptr<vm::Executable> exec) {
  Entry& entry = entries_[length];
  entry.exec = std::move(exec);
  entry.queued = false;
  lru_.push_front(length);
  entry.lru_it = lru_.begin();
  int evicted = 0;
  while (lru_.size() > config_.capacity) {
    int64_t victim = lru_.back();
    lru_.pop_back();
    // Keep the observation history (a re-hot length recompiles after
    // min_observations more misses) but drop the artifact.
    Entry& v = entries_[victim];
    v.exec = nullptr;
    v.observations = 0;
    evictions_++;
    ++evicted;
  }
  return evicted;
}

void ExecCache::CompileLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !compile_queue_.empty(); });
    if (stop_) return;
    int64_t length = compile_queue_.front();
    compile_queue_.pop_front();
    compiling_ = true;
    int64_t batch = config_.specialize_batch;
    lock.unlock();

    // Tune before compiling, off the serving path like the compile itself.
    // The variant's dense calls see `rows` rows (the baked batch size on
    // the packed path; the tile factor stands in when the batch dimension
    // stays symbolic), so that is the M the tuner measures. TuneCache
    // memoizes per exact shape: the first variant of a shape pays for the
    // measurement, every later one — any length, any cache — reuses it.
    codegen::DenseConfig dense_config = config_.default_dense_config;
    bool tuned = false;
    bool fresh_tune = false;
    if (config_.tune_n > 0 && config_.tune_k > 0) {
      int64_t rows = batch > 0 ? batch : codegen::kTileRows;
      codegen::TunedDense result = codegen::TuneCache::Global()->GetOrTune(
          rows, config_.tune_n, config_.tune_k, config_.tune_repeats);
      dense_config = result.config;
      tuned = true;
      fresh_tune = result.fresh;
    }

    std::shared_ptr<vm::Executable> exec;
    try {
      exec = compile_(length, batch, dense_config);
    } catch (...) {
      exec = nullptr;
    }
    if (exec != nullptr && tuned) {
      // Stamp pre-publish: the executable is not visible to any VM yet
      // (CompileVariantFn's freshness contract), so this is the last write
      // before immutability.
      exec->dense_config = dense_config;
      exec->dense_config_tuned = true;
    }

    bool ok = exec != nullptr;
    lock.lock();
    if (fresh_tune) {
      tune_events_++;
      if (model_stats_ != nullptr) model_stats_->RecordTuneEvent();
      if (aggregate_stats_ != nullptr) aggregate_stats_->RecordTuneEvent();
    }
    if (ok) {
      compiles_++;
      int evicted = PublishLocked(length, std::move(exec));
      // Stats under mu_, like Lookup: a set_stats detach (Server teardown)
      // cannot race an in-flight recording.
      if (model_stats_ != nullptr) {
        model_stats_->RecordVariantCompile();
        for (int i = 0; i < evicted; ++i) model_stats_->RecordCacheEviction();
      }
      if (aggregate_stats_ != nullptr) {
        aggregate_stats_->RecordVariantCompile();
        for (int i = 0; i < evicted; ++i) {
          aggregate_stats_->RecordCacheEviction();
        }
      }
    } else {
      failed_compiles_++;
      Entry& entry = entries_[length];
      entry.queued = false;
      entry.failed = true;
    }
    compiling_ = false;
    if (compile_queue_.empty()) idle_cv_.notify_all();
  }
}

void ExecCache::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return compile_queue_.empty() && !compiling_; });
}

ExecCache::Snapshot ExecCache::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.hits = hits_;
  snap.misses = misses_;
  snap.evictions = evictions_;
  snap.compiles = compiles_;
  snap.failed_compiles = failed_compiles_;
  snap.tune_events = tune_events_;
  snap.resident.assign(lru_.begin(), lru_.end());
  for (int64_t length : lru_) {
    auto it = entries_.find(length);
    Snapshot::VariantDetail detail;
    detail.length = length;
    if (it != entries_.end() && it->second.exec != nullptr) {
      detail.dense_config = it->second.exec->dense_config.ToString();
      detail.tuned = it->second.exec->dense_config_tuned;
    }
    snap.variants.push_back(std::move(detail));
  }
  return snap;
}

}  // namespace serve
}  // namespace nimble
