// Multi-model, length-bucketed batch scheduler with deficit-round-robin
// fairness.
//
// Variable-length workloads (MRPC-like sentence lengths, SST-like trees —
// src/models/workloads.h) make naive FIFO dispatch waste the allocator and
// cache locality Nimble's VM wins from recurring shapes: consecutive
// requests rarely share a storage footprint. The scheduler therefore sorts
// each model's in-flight requests into length buckets and dispatches
// per-bucket batches, so one pool worker runs a run of similar-length,
// same-model requests back-to-back — its PoolingAllocator free lists then
// serve every allocation of the batch from the same few size classes.
//
// Batch formation follows the classic two-knob policy, per model:
//   - max_batch_size: a bucket reaching this many requests flushes at once;
//   - max_wait_micros: an incomplete bucket flushes when its oldest request
//     has waited this long (bounds the latency cost of batching).
//
// Fairness (multi-model): full buckets are dispatched in deficit-round-robin
// order. Each model visited in the round gains `weight * max_batch_size`
// requests of credit and may dispatch full batches while its credit lasts; a
// model with nothing ready forfeits its credit (classic DRR), so an idle
// model banks nothing but a backlogged one is never crowded out — a model
// flooding its own queue cannot consume more than its weight's share of
// dispatch slots. Expired buckets bypass the credit check: the
// max_wait_micros latency bound outranks fairness accounting (and itself
// guarantees no request waits unboundedly).
//
// Threading: one scheduler thread owns all pending buckets and deficit
// counters. It sleeps on a ChannelNotifier shared by every model's
// RequestQueue, so a push to any queue (or any Close) wakes it; no locks
// beyond each queue's own. The scheduler exits — flushing every pending
// bucket — once every queue is closed and drained.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/step_journal.h"
#include "src/serve/channel.h"
#include "src/serve/exec_cache.h"
#include "src/serve/request.h"
#include "src/serve/request_queue.h"
#include "src/serve/stats.h"
#include "src/serve/vm_pool.h"

namespace nimble {
namespace serve {

struct BatchPolicy {
  /// Flush a bucket as soon as it holds this many requests.
  int max_batch_size = 8;
  /// Flush a bucket once its oldest request has waited this long. With
  /// `adaptive` on, this is only the starting point — the scheduler then
  /// steers the effective wait from the observed arrival rate.
  int64_t max_wait_micros = 2000;
  /// Adaptive flush-deadline controller: nudge the effective max wait
  /// toward the time a bucket actually needs to fill at the current
  /// arrival rate ((max_batch_size - 1) * mean inter-arrival gap, from the
  /// EWMA ServeStats keeps). Under heavy traffic batches fill before the
  /// deadline and the wait shrinks toward `adaptive_min_wait_micros`, so an
  /// abrupt lull doesn't strand the last stragglers for a stale long wait;
  /// under light traffic the wait grows toward `adaptive_max_wait_micros`,
  /// trading bounded latency for fuller batches. The controller moves a
  /// quarter of the gap per scheduler wakeup (AdaptiveWaitUpdate), so one
  /// bursty millisecond cannot whipsaw the deadline.
  bool adaptive = false;
  /// Floor of the adaptive wait: never flush-on-timeout sooner than this.
  int64_t adaptive_min_wait_micros = 200;
  /// Ceiling of the adaptive wait: the worst-case added latency the
  /// controller may ever ask a request to pay.
  int64_t adaptive_max_wait_micros = 50000;
  /// Run each dispatched batch as ONE padded [Lmax, B, D] VM invocation of
  /// the model's batched entry point (src/batch/), instead of looping over
  /// requests on the worker. Requires the executable to carry a
  /// vm::BatchedEntrySpec (e.g. models::BuildLSTM +
  /// CompileOptions::batched_entries); batches the executable cannot pack
  /// fall back to the per-request loop automatically. Off by default.
  bool tensor_batching = false;
  /// Serve this model with continuous (iteration-level) batching instead of
  /// whole-batch scheduling: a dedicated slot-map runner
  /// (src/batch/step_runner.h) drives the model's single-step twin over a
  /// persistent `continuous_slots`-row batch, splicing queued requests into
  /// free slots and retiring each row the step it reaches its own length.
  /// The model bypasses the BatchScheduler and VMPool entirely (its
  /// RequestQueue stays the admission/backpressure boundary); the knobs
  /// above — batch size, waits, buckets, tensor_batching — do not apply.
  /// Requires the executable to carry a step twin
  /// (vm::BatchedEntrySpec::step_function) and forbids an exec_cache
  /// (variants bake an Lmax the persistent batch does not have); both are
  /// enforced at AddModel.
  bool continuous = false;
  /// Rows of the persistent batch when `continuous` is set (the fixed B of
  /// every step invocation — more slots ride out bursts, fewer waste less
  /// idle-row compute under light load).
  int64_t continuous_slots = 8;
  /// Upper bounds (inclusive) of the length buckets; lengths above the last
  /// edge fall into an implicit overflow bucket. Defaults cover the MRPC
  /// length distribution (mean ~40, clipped to 128).
  std::vector<int64_t> bucket_edges = {8, 16, 32, 64, 128};

  int num_buckets() const { return static_cast<int>(bucket_edges.size()) + 1; }

  /// Index of the bucket holding `length` (edges must be sorted ascending).
  int BucketOf(int64_t length) const;
};

/// One step of the adaptive max-wait controller (pure, unit-tested):
/// returns the new effective wait given the current one and the smoothed
/// inter-arrival gap in microseconds. `mean_gap_us <= 0` (no signal yet)
/// returns `current_wait_us` unchanged; the result is always clamped to
/// [policy.adaptive_min_wait_micros, policy.adaptive_max_wait_micros].
int64_t AdaptiveWaitUpdate(const BatchPolicy& policy, int64_t current_wait_us,
                           double mean_gap_us);

/// One registered model: a named executable plus everything the pipeline
/// keeps per model — its own bounded admission queue (so backpressure and
/// load shedding are per model), its batching policy, its DRR weight, and
/// its stats. Owned by the Server; the scheduler borrows stable pointers.
/// The queue is written by client threads and drained by the scheduler
/// thread; `stats` is written by client threads (enqueues/rejections), the
/// scheduler (batches), and pool workers (completions) — it locks
/// internally. All other fields are set before Start() and read-only after.
struct ModelState {
  std::string name;
  /// Dense index of this model within its server (stamped by AddModel).
  int index = -1;
  std::shared_ptr<vm::Executable> exec;
  /// Entry point every request of this model runs.
  std::string function = "main";
  /// Deficit-round-robin weight: relative share of full-batch dispatch
  /// slots under contention (2 = twice the share of a weight-1 model).
  int weight = 1;
  BatchPolicy policy;
  /// Optional shape-bucket executable cache (src/serve/exec_cache.h).
  /// When set (requires tensor_batching), the scheduler carves full
  /// same-length batches out of each bucket and stamps Batch::exec with the
  /// cached length-specialized variant when one is ready; everything else
  /// runs on the generic `exec`. Shared so a warmed cache can outlive the
  /// server.
  std::shared_ptr<ExecCache> cache;
  std::unique_ptr<RequestQueue> queue;
  ServeStats stats;
  /// Trace sink for this model's requests (stamped onto every dispatched
  /// Batch); null when the owning server has no tracer (standalone tests).
  obs::Tracer* tracer = nullptr;
  /// Step journal of this model's continuous runner (src/obs/
  /// step_journal.h); created by AddModel for continuous models only, null
  /// otherwise. Written by the runner thread, read by /debug/steps scrapes.
  std::unique_ptr<obs::StepJournal> journal;
};

class BatchScheduler {
 public:
  /// `models` (the pointed-to states), `pool`, and `aggregate` must outlive
  /// the scheduler; `aggregate` may be null. The constructor attaches its
  /// notifier to every model's queue, so it must run before any request is
  /// admitted.
  BatchScheduler(std::vector<ModelState*> models, VMPool* pool,
                 ServeStats* aggregate = nullptr);
  ~BatchScheduler();

  /// Launches the scheduler thread. Call at most once.
  void Start();

  /// Waits for the thread to exit. The scheduler exits — flushing every
  /// pending bucket — once every model's queue is closed and drained.
  void Join();

 private:
  /// Scheduler-private view of one model: its pending buckets (FIFO per
  /// bucket — front() is the oldest, so each bucket's flush deadline is
  /// front().enqueue_time + max_wait) and its DRR credit.
  struct PerModel {
    ModelState* state = nullptr;
    std::vector<std::deque<Request>> pending;
    int64_t deficit = 0;
    /// Flush deadline actually applied: the policy's max_wait_micros, or
    /// the adaptive controller's current value when the policy is adaptive.
    int64_t effective_wait_micros = 0;

    bool HasFullBucket() const;
  };

  void Loop();
  /// Moves every request currently sitting in the admission queues into the
  /// scheduler's buckets (non-blocking).
  void Drain();
  /// One deficit-round-robin round: visits every model once (rotating the
  /// start), dispatching full buckets while credit lasts. Returns whether
  /// anything was dispatched. The caller re-drains between rounds, so a
  /// model whose requests arrived while an earlier flush was blocked on
  /// pool backpressure joins the very next round instead of waiting out
  /// another model's backlog.
  bool DispatchRound();
  /// Dispatches buckets whose oldest request has exceeded max_wait_micros,
  /// regardless of remaining credit (the latency bound outranks fairness).
  /// Returns whether anything was dispatched.
  bool FlushExpired(Clock::time_point now);
  /// Unconditionally dispatches everything still pending (shutdown path).
  void FlushAll();
  /// Runs one AdaptiveWaitUpdate step for every adaptive model (reading the
  /// arrival EWMA from the model's ServeStats) and publishes the new
  /// effective wait as a stats gauge. Called once per scheduler wakeup.
  void UpdateAdaptiveWaits();
  /// Submits up to max_batch_size requests of model `m`'s bucket `b` to the
  /// pool (blocking on pool backpressure); returns the number dispatched.
  /// With an executable cache, first tries to carve a full same-length run
  /// out of the bucket (preferring the oldest request's length) and to
  /// stamp the batch with that length's cached variant; a homogeneous
  /// leftover batch still consults the cache, and everything else ships on
  /// the generic executable exactly as before.
  int64_t Flush(PerModel& m, int bucket);
  Clock::time_point NextDeadline() const;
  bool AllQueuesClosed() const;
  int64_t Quantum(const PerModel& m) const;

  std::vector<PerModel> per_model_;
  VMPool* pool_;
  ServeStats* aggregate_;
  ChannelNotifier notifier_;
  /// Round-robin cursor: index of the model the next DRR round starts at.
  size_t rr_ = 0;
  std::thread thread_;
};

}  // namespace serve
}  // namespace nimble
