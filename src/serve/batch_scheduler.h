// Dynamic length-bucketed batch scheduler.
//
// Variable-length workloads (MRPC-like sentence lengths, SST-like trees —
// src/models/workloads.h) make naive FIFO dispatch waste the allocator and
// cache locality Nimble's VM wins from recurring shapes: consecutive
// requests rarely share a storage footprint. The scheduler therefore sorts
// in-flight requests into length buckets and dispatches per-bucket batches,
// so one pool worker runs a run of similar-length requests back-to-back —
// its PoolingAllocator free lists then serve every allocation of the batch
// from the same few size classes.
//
// Batch formation follows the classic two-knob policy:
//   - max_batch_size: a bucket reaching this many requests flushes at once;
//   - max_wait_micros: an incomplete bucket flushes when its oldest request
//     has waited this long (bounds the latency cost of batching).
//
// One scheduler thread owns all pending buckets; no locks beyond the
// request queue's own.
#pragma once

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "src/serve/request.h"
#include "src/serve/request_queue.h"
#include "src/serve/stats.h"
#include "src/serve/vm_pool.h"

namespace nimble {
namespace serve {

struct BatchPolicy {
  /// Flush a bucket as soon as it holds this many requests.
  int max_batch_size = 8;
  /// Flush a bucket once its oldest request has waited this long.
  int64_t max_wait_micros = 2000;
  /// Upper bounds (inclusive) of the length buckets; lengths above the last
  /// edge fall into an implicit overflow bucket. Defaults cover the MRPC
  /// length distribution (mean ~40, clipped to 128).
  std::vector<int64_t> bucket_edges = {8, 16, 32, 64, 128};

  int num_buckets() const { return static_cast<int>(bucket_edges.size()) + 1; }

  /// Index of the bucket holding `length` (edges must be sorted ascending).
  int BucketOf(int64_t length) const;
};

class BatchScheduler {
 public:
  /// `queue`, `pool`, and `stats` must outlive the scheduler. `stats` may
  /// be null.
  BatchScheduler(RequestQueue* queue, VMPool* pool, BatchPolicy policy,
                 ServeStats* stats = nullptr);
  ~BatchScheduler();

  /// Launches the scheduler thread.
  void Start();

  /// Waits for the thread to exit. The scheduler exits — flushing every
  /// pending bucket — once the queue is closed and drained.
  void Join();

  const BatchPolicy& policy() const { return policy_; }

 private:
  void Loop();
  void Flush(int bucket);
  void FlushExpired(Clock::time_point now);
  void FlushAll();
  Clock::time_point NextDeadline() const;

  RequestQueue* queue_;
  VMPool* pool_;
  BatchPolicy policy_;
  ServeStats* stats_;

  /// Pending requests per bucket, FIFO — front() is the oldest, so each
  /// bucket's flush deadline is front().enqueue_time + max_wait.
  std::vector<std::deque<Request>> pending_;
  std::thread thread_;
};

}  // namespace serve
}  // namespace nimble
