#include "src/serve/batch_scheduler.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/support/logging.h"

namespace nimble {
namespace serve {

int BatchPolicy::BucketOf(int64_t length) const {
  auto it =
      std::lower_bound(bucket_edges.begin(), bucket_edges.end(), length);
  return static_cast<int>(it - bucket_edges.begin());
}

int64_t AdaptiveWaitUpdate(const BatchPolicy& policy, int64_t current_wait_us,
                           double mean_gap_us) {
  auto clamp = [&policy](int64_t v) {
    return std::min(policy.adaptive_max_wait_micros,
                    std::max(policy.adaptive_min_wait_micros, v));
  };
  if (mean_gap_us <= 0.0) return clamp(current_wait_us);
  // Time for a bucket to fill at the current rate: the last of
  // max_batch_size requests arrives (size - 1) gaps after the first. A
  // shorter wait than that flushes partial batches for nothing; a much
  // longer one only adds latency.
  double target = (static_cast<double>(policy.max_batch_size) - 1.0) *
                  mean_gap_us;
  int64_t target_us = clamp(static_cast<int64_t>(target));
  // Move a quarter of the way per step: smooth against arrival bursts, yet
  // a sustained rate change converges within a few scheduler wakeups. Once
  // within rounding distance, snap (integer division would otherwise stall
  // a few microseconds short of the target forever).
  int64_t step = (target_us - current_wait_us) / 4;
  if (step == 0) return target_us;
  return clamp(current_wait_us + step);
}

bool BatchScheduler::PerModel::HasFullBucket() const {
  auto full = static_cast<size_t>(state->policy.max_batch_size);
  for (const auto& bucket : pending) {
    if (bucket.size() >= full) return true;
  }
  return false;
}

BatchScheduler::BatchScheduler(std::vector<ModelState*> models, VMPool* pool,
                               ServeStats* aggregate)
    : pool_(pool), aggregate_(aggregate) {
  NIMBLE_CHECK(pool_ != nullptr);
  NIMBLE_CHECK(!models.empty()) << "scheduler needs at least one model";
  per_model_.reserve(models.size());
  for (ModelState* state : models) {
    NIMBLE_CHECK(state != nullptr && state->queue != nullptr &&
                 state->exec != nullptr)
        << "model state incomplete";
    NIMBLE_CHECK_GE(state->policy.max_batch_size, 1);
    NIMBLE_CHECK_GE(state->policy.max_wait_micros, 0);
    NIMBLE_CHECK_GE(state->weight, 1);
    NIMBLE_CHECK(std::is_sorted(state->policy.bucket_edges.begin(),
                                state->policy.bucket_edges.end()))
        << "bucket edges must be ascending";
    if (state->policy.adaptive) {
      NIMBLE_CHECK_GE(state->policy.adaptive_min_wait_micros, 0);
      NIMBLE_CHECK_LE(state->policy.adaptive_min_wait_micros,
                      state->policy.adaptive_max_wait_micros)
          << "adaptive wait floor above its ceiling";
    }
    PerModel pm;
    pm.state = state;
    pm.pending.resize(static_cast<size_t>(state->policy.num_buckets()));
    // Adaptive models start from the configured wait (clamped into the
    // adaptive band); fixed-policy models use it verbatim, forever.
    pm.effective_wait_micros =
        state->policy.adaptive
            ? AdaptiveWaitUpdate(state->policy, state->policy.max_wait_micros,
                                 0.0)
            : state->policy.max_wait_micros;
    per_model_.push_back(std::move(pm));
    state->queue->set_notifier(&notifier_);
  }
}

BatchScheduler::~BatchScheduler() {
  // The loop only exits once every queue is closed and drained; close here
  // so destroying a started scheduler never deadlocks in Join (idempotent —
  // Server::Shutdown has usually closed the queues already).
  for (PerModel& m : per_model_) m.state->queue->Close();
  Join();
}

void BatchScheduler::Start() {
  NIMBLE_CHECK(!thread_.joinable()) << "scheduler already started";
  thread_ = std::thread([this] { Loop(); });
}

void BatchScheduler::Join() {
  if (thread_.joinable()) thread_.join();
}

int64_t BatchScheduler::Quantum(const PerModel& m) const {
  return static_cast<int64_t>(m.state->weight) *
         static_cast<int64_t>(m.state->policy.max_batch_size);
}

Clock::time_point BatchScheduler::NextDeadline() const {
  auto deadline = Clock::time_point::max();
  for (const PerModel& m : per_model_) {
    for (const auto& bucket : m.pending) {
      if (bucket.empty()) continue;
      auto flush_at = bucket.front().enqueue_time +
                      std::chrono::microseconds(m.effective_wait_micros);
      deadline = std::min(deadline, flush_at);
    }
  }
  if (deadline == Clock::time_point::max()) {
    // Nothing pending: sleep until a queue wakes us. A bounded horizon
    // avoids the overflow pitfalls of wait_until(time_point::max()).
    deadline = Clock::now() + std::chrono::hours(1);
  }
  return deadline;
}

bool BatchScheduler::AllQueuesClosed() const {
  for (const PerModel& m : per_model_) {
    if (!m.state->queue->closed()) return false;
  }
  return true;
}

void BatchScheduler::Drain() {
  for (PerModel& m : per_model_) {
    while (auto request = m.state->queue->TryPop()) {
      int bucket = m.state->policy.BucketOf(request->length_hint);
      m.pending[static_cast<size_t>(bucket)].push_back(std::move(*request));
    }
  }
}

int64_t BatchScheduler::Flush(PerModel& m, int bucket) {
  auto& pending = m.pending[static_cast<size_t>(bucket)];
  if (pending.empty()) return 0;
  Batch batch;
  batch.bucket = bucket;
  batch.model = m.state->index;
  batch.exec = m.state->exec;
  batch.stats = &m.state->stats;
  batch.tensor_batching = m.state->policy.tensor_batching;
  batch.tracer = m.state->tracer;
  size_t cap = static_cast<size_t>(m.state->policy.max_batch_size);
  ExecCache* cache = m.state->cache.get();

  // Shape-bucket carving: a full run of one exact length packs with zero
  // padding and can run on that length's specialized variant, so prefer it
  // over a mixed front slice. The oldest request's length wins ties (its
  // expiry deadline governs this bucket), relative order within the carved
  // length is preserved, and a bucket with no full same-length run
  // dispatches mixed exactly as before — on a diffuse workload this path
  // degenerates to PR 3 behavior.
  if (cache != nullptr && batch.tensor_batching && pending.size() >= 2) {
    std::map<int64_t, size_t> counts;
    for (const Request& request : pending) counts[request.length_hint]++;
    int64_t carve = -1;
    if (counts[pending.front().length_hint] >= cap) {
      carve = pending.front().length_hint;
    } else {
      for (const auto& [length, count] : counts) {
        if (count >= cap) {
          carve = length;
          break;
        }
      }
    }
    if (carve >= 0) {
      batch.requests.reserve(cap);
      for (auto it = pending.begin();
           it != pending.end() && batch.requests.size() < cap;) {
        if (it->length_hint == carve) {
          batch.requests.push_back(std::move(*it));
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  if (batch.requests.empty()) {
    size_t take = std::min(pending.size(), cap);
    batch.requests.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.requests.push_back(std::move(pending.front()));
      pending.pop_front();
    }
  }

  // Any homogeneous batch — carved or a same-length leftover — may run on a
  // cached variant; the lookup also counts the observation that drives
  // background compilation, so the generic executable serves the bucket
  // until its variant is ready.
  if (cache != nullptr && batch.tensor_batching) {
    int64_t length = batch.requests.front().length_hint;
    bool homogeneous = true;
    for (const Request& request : batch.requests) {
      if (request.length_hint != length) {
        homogeneous = false;
        break;
      }
    }
    if (homogeneous) {
      auto variant =
          cache->Lookup(length, static_cast<int64_t>(batch.requests.size()));
      if (variant != nullptr) batch.exec = std::move(variant);
    }
  }

  // Scheduler-dispatch stamp: splits each trace's queue span into
  // admission-queue time (enqueue -> sched) and pool-queue time (sched ->
  // worker pickup) for anyone reading raw records; one clock read covers
  // the whole batch.
  if (batch.tracer != nullptr && batch.tracer->enabled()) {
    auto now = Clock::now();
    for (Request& request : batch.requests) {
      if (request.trace.enabled) request.trace.sched = now;
    }
  }

  int64_t take = static_cast<int64_t>(batch.requests.size());
  m.state->stats.RecordBatch(batch.requests.size());
  if (aggregate_ != nullptr) aggregate_->RecordBatch(batch.requests.size());
  pool_->Submit(std::move(batch));  // blocks under pool backpressure
  return take;
}

bool BatchScheduler::DispatchRound() {
  const size_t n = per_model_.size();
  bool dispatched = false;
  for (size_t k = 0; k < n; ++k) {
    PerModel& m = per_model_[(rr_ + k) % n];
    if (!m.HasFullBucket()) {
      m.deficit = 0;  // classic DRR: nothing ready forfeits the credit
      continue;
    }
    m.deficit += Quantum(m);
    while (m.deficit > 0 && m.HasFullBucket()) {
      auto full = static_cast<size_t>(m.state->policy.max_batch_size);
      for (size_t b = 0; b < m.pending.size(); ++b) {
        if (m.pending[b].size() >= full) {
          m.deficit -= Flush(m, static_cast<int>(b));
          dispatched = true;
          break;
        }
      }
    }
  }
  rr_ = (rr_ + 1) % n;
  return dispatched;
}

bool BatchScheduler::FlushExpired(Clock::time_point now) {
  const size_t n = per_model_.size();
  bool dispatched = false;
  for (size_t k = 0; k < n; ++k) {
    PerModel& m = per_model_[(rr_ + k) % n];
    auto max_wait = std::chrono::microseconds(m.effective_wait_micros);
    for (size_t b = 0; b < m.pending.size(); ++b) {
      while (!m.pending[b].empty() &&
             m.pending[b].front().enqueue_time + max_wait <= now) {
        Flush(m, static_cast<int>(b));
        dispatched = true;
      }
    }
  }
  return dispatched;
}

void BatchScheduler::UpdateAdaptiveWaits() {
  for (PerModel& m : per_model_) {
    if (!m.state->policy.adaptive) continue;
    double mean_gap_us = m.state->stats.MeanInterArrivalMicros();
    m.effective_wait_micros = AdaptiveWaitUpdate(
        m.state->policy, m.effective_wait_micros, mean_gap_us);
    m.state->stats.RecordAdaptiveWait(m.effective_wait_micros);
  }
}

void BatchScheduler::FlushAll() {
  for (PerModel& m : per_model_) {
    for (size_t b = 0; b < m.pending.size(); ++b) {
      while (!m.pending[b].empty()) Flush(m, static_cast<int>(b));
    }
  }
}

void BatchScheduler::Loop() {
  while (true) {
    // Capture the notifier version BEFORE draining: a push that lands after
    // this line bumps the version, so the wait below returns immediately
    // instead of losing the wakeup.
    uint64_t seen = notifier_.version();
    // One controller step per wakeup: the arrival EWMA only moves when
    // requests arrive, and wakeups track exactly that.
    UpdateAdaptiveWaits();
    // Keep rotating DRR rounds while work is dispatchable, re-draining
    // between rounds: flushes block under pool backpressure, and requests
    // admitted meanwhile must join the rotation, not wait out a backlog.
    bool progress = true;
    while (progress) {
      Drain();
      progress = DispatchRound();
      if (FlushExpired(Clock::now())) progress = true;
    }
    if (AllQueuesClosed()) {
      // Closed queues cannot refill; one final drain empties them for good,
      // then everything still pending is flushed regardless of batch size.
      Drain();
      while (DispatchRound()) {
      }
      FlushAll();
      return;
    }
    notifier_.WaitUntil(seen, NextDeadline());
  }
}

}  // namespace serve
}  // namespace nimble
