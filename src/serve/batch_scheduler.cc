#include "src/serve/batch_scheduler.h"

#include <algorithm>

#include "src/support/logging.h"

namespace nimble {
namespace serve {

int BatchPolicy::BucketOf(int64_t length) const {
  auto it =
      std::lower_bound(bucket_edges.begin(), bucket_edges.end(), length);
  return static_cast<int>(it - bucket_edges.begin());
}

BatchScheduler::BatchScheduler(RequestQueue* queue, VMPool* pool,
                               BatchPolicy policy, ServeStats* stats)
    : queue_(queue), pool_(pool), policy_(std::move(policy)), stats_(stats) {
  NIMBLE_CHECK(queue_ != nullptr && pool_ != nullptr);
  NIMBLE_CHECK_GE(policy_.max_batch_size, 1);
  NIMBLE_CHECK_GE(policy_.max_wait_micros, 0);
  NIMBLE_CHECK(std::is_sorted(policy_.bucket_edges.begin(),
                              policy_.bucket_edges.end()))
      << "bucket edges must be ascending";
  pending_.resize(static_cast<size_t>(policy_.num_buckets()));
}

BatchScheduler::~BatchScheduler() {
  // The loop only exits once the queue is closed and drained; close here so
  // destroying a started scheduler never deadlocks in Join (idempotent —
  // Server::Shutdown has usually closed the queue already).
  queue_->Close();
  Join();
}

void BatchScheduler::Start() {
  NIMBLE_CHECK(!thread_.joinable()) << "scheduler already started";
  thread_ = std::thread([this] { Loop(); });
}

void BatchScheduler::Join() {
  if (thread_.joinable()) thread_.join();
}

Clock::time_point BatchScheduler::NextDeadline() const {
  auto deadline = Clock::time_point::max();
  for (const auto& bucket : pending_) {
    if (bucket.empty()) continue;
    auto flush_at = bucket.front().enqueue_time +
                    std::chrono::microseconds(policy_.max_wait_micros);
    deadline = std::min(deadline, flush_at);
  }
  return deadline;
}

void BatchScheduler::Flush(int bucket) {
  auto& pending = pending_[static_cast<size_t>(bucket)];
  if (pending.empty()) return;
  Batch batch;
  batch.bucket = bucket;
  size_t take = std::min(pending.size(),
                         static_cast<size_t>(policy_.max_batch_size));
  batch.requests.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.requests.push_back(std::move(pending.front()));
    pending.pop_front();
  }
  if (stats_ != nullptr) stats_->RecordBatch(batch.requests.size());
  pool_->Submit(std::move(batch));
}

void BatchScheduler::FlushExpired(Clock::time_point now) {
  for (int b = 0; b < policy_.num_buckets(); ++b) {
    auto& pending = pending_[static_cast<size_t>(b)];
    while (!pending.empty() &&
           pending.front().enqueue_time +
                   std::chrono::microseconds(policy_.max_wait_micros) <=
               now) {
      Flush(b);
    }
  }
}

void BatchScheduler::FlushAll() {
  for (int b = 0; b < policy_.num_buckets(); ++b) {
    while (!pending_[static_cast<size_t>(b)].empty()) Flush(b);
  }
}

void BatchScheduler::Loop() {
  while (true) {
    auto deadline = NextDeadline();
    std::optional<Request> request;
    if (deadline == Clock::time_point::max()) {
      request = queue_->Pop();  // nothing pending: wait for work or close
    } else {
      request = queue_->PopUntil(deadline);
    }
    if (request.has_value()) {
      int bucket = policy_.BucketOf(request->length_hint);
      auto& pending = pending_[static_cast<size_t>(bucket)];
      pending.push_back(std::move(*request));
      if (static_cast<int>(pending.size()) >= policy_.max_batch_size) {
        Flush(bucket);
      }
    } else if (queue_->closed() && queue_->empty()) {
      FlushAll();
      return;
    }
    FlushExpired(Clock::now());
  }
}

}  // namespace serve
}  // namespace nimble
