#include "src/serve/server.h"

#include "src/support/logging.h"

namespace nimble {
namespace serve {

Server::Server(ServeConfig config) : config_(std::move(config)) {
  NIMBLE_CHECK_GE(config_.num_workers, 1);
  metrics_ = config_.metrics != nullptr
                 ? config_.metrics
                 : std::make_shared<obs::MetricRegistry>();
  tracer_ = std::make_shared<obs::Tracer>(config_.trace);
}

namespace {

/// Builds the per-model metrics-plane instruments ServeStats mirrors its
/// hot counters into (one series per model via the {model=...} label; the
/// metric naming scheme is documented in docs/ARCHITECTURE.md).
StatsMetricBindings MakeModelBindings(obs::MetricRegistry& registry,
                                      const std::string& model) {
  obs::LabelSet m = {{"model", model}};
  auto outcome = [&](const char* outcome) {
    return obs::LabelSet{{"model", model}, {"outcome", outcome}};
  };
  auto cache_event = [&](const char* event) {
    return obs::LabelSet{{"model", model}, {"event", event}};
  };
  StatsMetricBindings b;
  b.arrivals = registry.GetCounter("nimble_arrivals_total", m,
                                   "Requests admitted into the queue");
  const char* req_help = "Finished requests by outcome";
  b.completed =
      registry.GetCounter("nimble_requests_total", outcome("completed"),
                          req_help);
  b.failed = registry.GetCounter("nimble_requests_total", outcome("failed"),
                                 req_help);
  b.rejected = registry.GetCounter("nimble_requests_total",
                                   outcome("rejected"), req_help);
  b.packed_batches =
      registry.GetCounter("nimble_packed_batches_total", m,
                          "Batches run as one packed tensor invocation");
  b.padded_elements = registry.GetCounter(
      "nimble_padded_elements_total", m,
      "Zero-padding elements in packed batch inputs (padding waste)");
  b.packed_total_elements = registry.GetCounter(
      "nimble_packed_elements_total", m, "Total packed batch input elements");
  const char* cache_help = "Shape-bucket executable cache events";
  b.cache_hits = registry.GetCounter("nimble_exec_cache_events_total",
                                     cache_event("hit"), cache_help);
  b.cache_misses = registry.GetCounter("nimble_exec_cache_events_total",
                                       cache_event("miss"), cache_help);
  b.cache_evictions = registry.GetCounter("nimble_exec_cache_events_total",
                                          cache_event("evict"), cache_help);
  b.variant_compiles = registry.GetCounter("nimble_exec_cache_events_total",
                                           cache_event("compile"), cache_help);
  b.tune_events = registry.GetCounter(
      "nimble_tune_events_total", m,
      "Fresh dense-config tuning measurements (tune-once-per-shape)");
  b.adaptive_wait_us = registry.GetGauge(
      "nimble_adaptive_wait_us", m,
      "Effective adaptive max-wait applied by the scheduler");
  b.splices = registry.GetCounter(
      "nimble_splices_total", m,
      "Requests spliced into the persistent batch (continuous batching)");
  b.continuous_steps = registry.GetCounter(
      "nimble_steps_total", m,
      "Step-twin invocations over the persistent batch");
  b.idle_row_steps = registry.GetCounter(
      "nimble_idle_row_steps_total", m,
      "Row-steps computed by slots holding no request (continuous waste)");
  b.slot_occupancy = registry.GetGauge(
      "nimble_slot_occupancy", m,
      "Live slots of the persistent batch as of the latest step");
  b.step_duration_us = registry.GetHistogram(
      "nimble_step_duration_us", m, obs::Histogram::LatencyBoundsUs(),
      "Wall-clock duration of one step-twin invocation, microseconds");
  b.splice_wait_us = registry.GetHistogram(
      "nimble_splice_wait_us", m, obs::Histogram::LatencyBoundsUs(),
      "Queued-behind-splice wait (enqueue to splice), microseconds");
  b.active_rows = registry.GetHistogram(
      "nimble_active_rows", m, obs::Histogram::BatchSizeBounds(),
      "Live rows per step of the persistent batch (occupancy)");
  b.e2e_latency_us = registry.GetHistogram(
      "nimble_e2e_latency_us", m, obs::Histogram::LatencyBoundsUs(),
      "End-to-end request latency (admission to result), microseconds");
  b.queue_wait_us = registry.GetHistogram(
      "nimble_queue_wait_us", m, obs::Histogram::LatencyBoundsUs(),
      "Queue-wait half of the latency split, microseconds");
  b.exec_us = registry.GetHistogram(
      "nimble_exec_us", m, obs::Histogram::LatencyBoundsUs(),
      "Execution half of the latency split, microseconds");
  b.batch_size = registry.GetHistogram(
      "nimble_batch_size", m, obs::Histogram::BatchSizeBounds(),
      "Requests per dispatched batch (occupancy)");
  return b;
}

}  // namespace

Server::Server(std::shared_ptr<vm::Executable> exec, ServeConfig config)
    : Server(std::move(config)) {
  ModelConfig model;
  model.exec = std::move(exec);
  model.function = config_.function;
  model.queue_capacity = config_.queue_capacity;
  model.batch = config_.batch;
  AddModel("default", std::move(model));
  Start();
}

Server::~Server() { Shutdown(); }

void Server::AddModel(const std::string& name, ModelConfig model) {
  NIMBLE_CHECK(!started_.load()) << "AddModel after Start";
  NIMBLE_CHECK(model.exec != nullptr) << "model '" << name << "' needs an executable";
  NIMBLE_CHECK_GE(model.weight, 1) << "model '" << name << "': weight must be >= 1";
  NIMBLE_CHECK(model_index_.count(name) == 0)
      << "model '" << name << "' registered twice";
  auto state = std::make_unique<ModelState>();
  state->name = name;
  state->index = static_cast<int>(models_.size());
  state->exec = std::move(model.exec);
  state->function = std::move(model.function);
  state->weight = model.weight;
  state->policy = std::move(model.batch);
  if (state->policy.continuous) {
    // Fail at registration, not at first request: a model that cannot serve
    // continuously (no step twin, variant executable, uncovered dispatch)
    // is a configuration error.
    batch::ContinuousCheck check = batch::AnalyzeContinuous(
        *state->exec, state->function, state->policy.continuous_slots);
    NIMBLE_CHECK(check.ok())
        << "model '" << name << "' cannot serve continuously: " << check.reason;
    NIMBLE_CHECK(model.exec_cache == nullptr)
        << "model '" << name
        << "': an executable cache cannot serve a continuous model (variants "
           "bake an Lmax; the persistent batch has none)";
    // One step journal per continuous model, written by its runner thread
    // only (per-model journals are this plane's shards — see
    // src/obs/step_journal.h).
    state->journal = std::make_unique<obs::StepJournal>(config_.step_journal);
  }
  if (model.exec_cache != nullptr) {
    NIMBLE_CHECK(state->policy.tensor_batching)
        << "model '" << name
        << "': an executable cache requires tensor_batching (variants only "
           "pay off on the packed path)";
    int64_t baked = model.exec_cache->config().specialize_batch;
    NIMBLE_CHECK(baked == 0 || baked == state->policy.max_batch_size)
        << "model '" << name << "': cache bakes batch size " << baked
        << " but the policy dispatches batches of "
        << state->policy.max_batch_size;
    state->cache = std::move(model.exec_cache);
    // Cache events flow into the same per-model/aggregate sinks as every
    // other serving metric. Shutdown() detaches them again, so a shared
    // cache may outlive this server.
    state->cache->set_stats(&state->stats, &stats_);
  }
  state->queue = std::make_unique<RequestQueue>(model.queue_capacity);
  // Metrics-plane mirror: per-model sharded instruments, bound before any
  // recording can start (see StatsMetricBindings). Only the per-model
  // stats bind — binding the aggregate too would double-count every event
  // in the exposition.
  state->stats.BindMetrics(MakeModelBindings(*metrics_, name));
  state->tracer = tracer_.get();
  model_index_[name] = state->index;
  models_.push_back(std::move(state));
}

void Server::Start() {
  NIMBLE_CHECK(!started_.load()) << "Start called twice";
  NIMBLE_CHECK(!models_.empty()) << "Start with no models registered";
  // Continuous models get a dedicated slot-map runner each and never enter
  // the scheduler's model list; everything else shares the scheduler+pool
  // pipeline as before. Runner VMs are constructed here, on the owning
  // thread, for the same registry-population reason as the pool's.
  std::vector<ModelState*> bucketed;
  bucketed.reserve(models_.size());
  struct WatchEntry {
    batch::StepRunner* runner;
    std::string model;
    obs::Gauge* gauge;
  };
  std::vector<WatchEntry> watched;
  for (auto& model : models_) {
    if (model->policy.continuous) {
      runners_.push_back(std::make_unique<batch::StepRunner>(
          model->exec, model->function, model->policy.continuous_slots,
          model->queue.get(), &model->stats, &stats_, tracer_.get(),
          model->journal.get()));
      runner_models_.push_back(model->name);
      watched.push_back(WatchEntry{
          runners_.back().get(), model->name,
          metrics_->GetGauge(
              "nimble_runner_stalled", {{"model", model->name}},
              "1 while the continuous runner holds live rows but has "
              "completed no step within the watchdog deadline")});
    } else {
      bucketed.push_back(model.get());
    }
  }
  if (!bucketed.empty()) {
    pool_ = std::make_unique<VMPool>(config_.num_workers, &stats_,
                                     config_.max_pending_batches);
    scheduler_ = std::make_unique<BatchScheduler>(std::move(bucketed),
                                                  pool_.get(), &stats_);
    scheduler_->Start();
  }
  for (auto& runner : runners_) runner->Start();
  if (config_.memory.soft_limit_bytes > 0) {
    // Live bytes across every server scope (workers, runners, globals —
    // request bodies decoded by the HTTP threads land in the global pool,
    // so queued-request memory counts toward pressure too).
    pressure_ = std::make_unique<obs::MemoryPressure>(
        config_.memory,
        [this]() {
          int64_t live = 0;
          for (const obs::AllocScopeSample& scope : MemoryScopes()) {
            live += scope.live_bytes;
          }
          return live;
        },
        metrics_->GetGauge("nimble_mem_pressure", {},
                           "Live bytes across server allocator scopes / "
                           "soft limit (0 when no limit is configured)"));
  }
  if ((!watched.empty() || pressure_ != nullptr) && config_.watchdog.enabled) {
    // The health source copies the watch list; runner pointers stay valid
    // until ~Server, and the watchdog is stopped first in Drain anyway.
    // The same poll loop carries the memory-pressure check (one
    // observability thread, not one per concern).
    watchdog_ = std::make_unique<obs::StallWatchdog>(
        config_.watchdog, [watched]() {
          std::vector<obs::RunnerHealth> health;
          health.reserve(watched.size());
          for (const WatchEntry& entry : watched) {
            obs::RunnerHealth h;
            h.model = entry.model;
            h.live_rows = entry.runner->live_rows();
            h.steps = entry.runner->steps_completed();
            h.last_progress_ns = entry.runner->last_progress_ns();
            h.stalled_gauge = entry.gauge;
            health.push_back(std::move(h));
          }
          return health;
        });
    if (pressure_ != nullptr) {
      watchdog_->SetAuxCheck(
          [pressure = pressure_.get()](obs::SteadyClock::time_point now) {
            pressure->CheckOnce(now);
          });
    }
    watchdog_->Start();
  }
  started_.store(true);
}

std::vector<obs::AllocScopeSample> Server::MemoryScopes() const {
  auto sample = [](std::string scope, const runtime::Allocator* alloc,
                   const runtime::PoolingAllocator* pool) {
    obs::AllocScopeSample s;
    s.scope = std::move(scope);
    runtime::AllocStats stats = alloc->stats();
    s.alloc_calls = stats.alloc_calls;
    s.system_allocs = stats.system_allocs;
    s.bytes_allocated = stats.bytes_allocated;
    s.live_bytes = stats.live_bytes;
    s.peak_bytes = stats.peak_bytes;
    s.pool_hits = stats.pool_hits;
    s.pool_refills = stats.pool_refills;
    s.pool_frees = stats.pool_frees;
    if (pool != nullptr) {
      s.cached_bytes = static_cast<int64_t>(pool->cached_bytes());
      s.classes = pool->PoolClasses();
    }
    return s;
  };
  std::vector<obs::AllocScopeSample> scopes;
  if (pool_ != nullptr) {
    int index = 0;
    for (runtime::PoolingAllocator* alloc : pool_->worker_allocators()) {
      scopes.push_back(sample("worker:" + std::to_string(index++), alloc,
                              alloc));
    }
  }
  for (size_t i = 0; i < runners_.size(); ++i) {
    runtime::PoolingAllocator* alloc = runners_[i]->allocator();
    scopes.push_back(sample("model:" + runner_models_[i], alloc, alloc));
  }
  scopes.push_back(sample("global:pool", runtime::GlobalPoolingAllocator(),
                          runtime::GlobalPoolingAllocator()));
  scopes.push_back(
      sample("global:naive", runtime::GlobalNaiveAllocator(), nullptr));
  return scopes;
}

ModelState& Server::Find(const std::string& model) const {
  auto it = model_index_.find(model);
  NIMBLE_CHECK(it != model_index_.end()) << "no model named '" << model << "'";
  return *models_[static_cast<size_t>(it->second)];
}

Request Server::MakeRequest(const ModelState& model,
                            std::vector<runtime::ObjectRef> args,
                            int64_t length_hint,
                            std::future<runtime::ObjectRef>* future) {
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.function = model.function;
  request.args = std::move(args);
  request.length_hint = length_hint;
  // Stamped at submission (not queue insertion), so recorded latency is
  // end-to-end and includes any time the client spent blocked on
  // backpressure.
  request.enqueue_time = Clock::now();
  if (tracer_->enabled()) {
    request.trace.enabled = true;
    request.trace.id = request.id;
    request.trace.model = model.name;
    request.trace.admit = request.enqueue_time;
    request.trace.enqueue = request.enqueue_time;
  }
  *future = request.promise.get_future();
  return request;
}

std::future<runtime::ObjectRef> Server::Submit(
    const std::string& model, std::vector<runtime::ObjectRef> args,
    int64_t length_hint) {
  NIMBLE_CHECK(started_.load()) << "Submit before Start";
  ModelState& state = Find(model);
  std::future<runtime::ObjectRef> future;
  Request request = MakeRequest(state, std::move(args), length_hint, &future);
  auto enqueue_time = request.enqueue_time;
  bool accepted = state.queue->Push(request);
  NIMBLE_CHECK(accepted) << "Submit on a shut-down server";
  state.stats.RecordEnqueue(enqueue_time);
  stats_.RecordEnqueue(enqueue_time);
  return future;
}

std::optional<std::future<runtime::ObjectRef>> Server::TrySubmit(
    const std::string& model, std::vector<runtime::ObjectRef> args,
    int64_t length_hint) {
  NIMBLE_CHECK(started_.load()) << "TrySubmit before Start";
  ModelState& state = Find(model);
  // Memory pressure sheds before the queue does: admitting more work while
  // live bytes sit over the soft limit only deepens the overage.
  if (pressure_ != nullptr && pressure_->should_shed()) {
    state.stats.RecordRejected();
    stats_.RecordRejected();
    return std::nullopt;
  }
  std::future<runtime::ObjectRef> future;
  Request request = MakeRequest(state, std::move(args), length_hint, &future);
  auto enqueue_time = request.enqueue_time;
  if (!state.queue->TryPush(request)) {
    state.stats.RecordRejected();
    stats_.RecordRejected();
    return std::nullopt;
  }
  state.stats.RecordEnqueue(enqueue_time);
  stats_.RecordEnqueue(enqueue_time);
  return future;
}

Server::AdmitResult Server::TrySubmitCallback(
    const std::string& model, std::vector<runtime::ObjectRef> args,
    int64_t length_hint, CompletionFn on_complete,
    Clock::time_point received) {
  AdmitResult result;
  if (!started_.load() || shutdown_.load()) {
    result.status = AdmitStatus::kClosed;
    return result;
  }
  auto it = model_index_.find(model);
  if (it == model_index_.end()) {
    result.status = AdmitStatus::kUnknownModel;
    return result;
  }
  ModelState& state = *models_[static_cast<size_t>(it->second)];
  result.queue_capacity = state.queue->capacity();
  // Memory pressure sheds ahead of the queue check, with the same
  // queue-full status (the front end's 429 + Retry-After applies as is).
  if (pressure_ != nullptr && pressure_->should_shed()) {
    state.stats.RecordRejected();
    stats_.RecordRejected();
    result.status = AdmitStatus::kQueueFull;
    result.queue_depth = state.queue->size();
    return result;
  }
  std::future<runtime::ObjectRef> future;  // discarded: callback path
  Request request = MakeRequest(state, std::move(args), length_hint, &future);
  request.on_complete = std::move(on_complete);
  if (request.trace.enabled && received != Clock::time_point{}) {
    request.trace.admit = received;  // admission span starts at decode
  }
  auto enqueue_time = request.enqueue_time;
  if (!state.queue->TryPush(request, &result.queue_depth)) {
    // A queue closed mid-flight (Drain racing this admission) also lands
    // here; report it as kClosed so the caller answers 503, not 429.
    result.status =
        state.queue->closed() ? AdmitStatus::kClosed : AdmitStatus::kQueueFull;
    if (result.status == AdmitStatus::kQueueFull) {
      state.stats.RecordRejected();
      stats_.RecordRejected();
    }
    return result;
  }
  state.stats.RecordEnqueue(enqueue_time);
  stats_.RecordEnqueue(enqueue_time);
  result.status = AdmitStatus::kAccepted;
  return result;
}

std::future<runtime::ObjectRef> Server::Submit(
    std::vector<runtime::ObjectRef> args, int64_t length_hint) {
  NIMBLE_CHECK(!models_.empty()) << "no models registered";
  return Submit(models_.front()->name, std::move(args), length_hint);
}

std::optional<std::future<runtime::ObjectRef>> Server::TrySubmit(
    std::vector<runtime::ObjectRef> args, int64_t length_hint) {
  NIMBLE_CHECK(!models_.empty()) << "no models registered";
  return TrySubmit(models_.front()->name, std::move(args), length_hint);
}

std::vector<std::string> Server::model_names() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& model : models_) names.push_back(model->name);
  return names;
}

bool Server::HasModel(const std::string& model) const {
  return model_index_.count(model) != 0;
}

StatsSnapshot Server::stats(const std::string& model) const {
  return Find(model).stats.Snapshot();
}

Server::ServerSnapshot Server::SnapshotAll() const {
  // One pass, each ServeStats mutex taken exactly once (no per-name Find
  // lookups, no second aggregate lock); see the consistency contract in
  // stats.h for what this does and does not guarantee.
  ServerSnapshot all;
  all.models.reserve(models_.size());
  for (const auto& model : models_) {
    ModelStatsView view;
    view.name = model->name;
    view.stats = model->stats.Snapshot();
    view.queue_depth = model->queue->size();
    view.queue_capacity = model->queue->capacity();
    if (model->cache != nullptr) {
      view.has_exec_cache = true;
      view.exec_cache = model->cache->snapshot();
    }
    all.queue_depth += view.queue_depth;
    all.models.push_back(std::move(view));
  }
  all.aggregate = stats_.Snapshot();
  return all;
}

std::vector<Server::ContinuousModelView> Server::continuous_models() const {
  std::vector<ContinuousModelView> views;
  for (const auto& model : models_) {
    if (!model->policy.continuous) continue;
    ContinuousModelView view;
    view.name = model->name;
    view.num_slots = model->policy.continuous_slots;
    view.journal = model->journal.get();
    views.push_back(std::move(view));
  }
  return views;
}

size_t Server::queue_depth() const {
  size_t depth = 0;
  for (const auto& model : models_) depth += model->queue->size();
  return depth;
}

size_t Server::queue_depth(const std::string& model) const {
  return Find(model).queue->size();
}

size_t Server::queue_capacity(const std::string& model) const {
  return Find(model).queue->capacity();
}

void Server::Drain() {
  // First caller owns the teardown; later callers return immediately (same
  // idempotency contract the original Shutdown had).
  if (shutdown_.exchange(true)) return;
  if (started_.load()) {
    // Stop intake on every model; pending requests survive the Close and
    // the scheduler keeps draining until every queue is closed AND empty,
    // flushing every pending bucket on its way out. Then the pool runs
    // every queued batch before its workers exit. Every admitted request's
    // promise/callback is therefore fulfilled before Join returns —
    // teardown never drops queued work.
    for (auto& model : models_) model->queue->Close();
    // Watchdog first: a runner draining its last rows is making progress,
    // not stalling, and the poll loop must not outlive the runners it reads.
    if (watchdog_ != nullptr) watchdog_->Stop();
    // Step runners exit on their own once their queue is closed+drained and
    // every live slot has retired — same no-dropped-work guarantee.
    for (auto& runner : runners_) runner->Join();
    if (scheduler_ != nullptr) scheduler_->Join();
    if (pool_ != nullptr) {
      pool_->Close();
      pool_->Join();
    }
  }
}

void Server::Shutdown() {
  Drain();
  // Detach shared caches from this server's stats (the cache — and its
  // compile thread — may outlive the server and its ModelStates). Guarded
  // so repeated Shutdowns (destructor after an explicit call) detach once.
  if (caches_detached_.exchange(true)) return;
  for (auto& model : models_) {
    if (model->cache != nullptr) model->cache->set_stats(nullptr, nullptr);
  }
}

}  // namespace serve
}  // namespace nimble
