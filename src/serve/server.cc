#include "src/serve/server.h"

#include "src/support/logging.h"

namespace nimble {
namespace serve {

Server::Server(std::shared_ptr<vm::Executable> exec, ServeConfig config)
    : config_(std::move(config)) {
  NIMBLE_CHECK_GE(config_.num_workers, 1);
  queue_ = std::make_unique<RequestQueue>(config_.queue_capacity);
  pool_ = std::make_unique<VMPool>(std::move(exec), config_.num_workers,
                                   &stats_, config_.max_pending_batches);
  scheduler_ = std::make_unique<BatchScheduler>(queue_.get(), pool_.get(),
                                                config_.batch, &stats_);
  scheduler_->Start();
}

Server::~Server() { Shutdown(); }

Request Server::MakeRequest(std::vector<runtime::ObjectRef> args,
                            int64_t length_hint,
                            std::future<runtime::ObjectRef>* future) {
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.function = config_.function;
  request.args = std::move(args);
  request.length_hint = length_hint;
  // Stamped at submission (not queue insertion), so recorded latency is
  // end-to-end and includes any time the client spent blocked on
  // backpressure.
  request.enqueue_time = Clock::now();
  *future = request.promise.get_future();
  return request;
}

std::future<runtime::ObjectRef> Server::Submit(
    std::vector<runtime::ObjectRef> args, int64_t length_hint) {
  std::future<runtime::ObjectRef> future;
  Request request = MakeRequest(std::move(args), length_hint, &future);
  auto enqueue_time = request.enqueue_time;
  bool accepted = queue_->Push(request);
  NIMBLE_CHECK(accepted) << "Submit on a shut-down server";
  stats_.RecordEnqueue(enqueue_time);
  return future;
}

std::optional<std::future<runtime::ObjectRef>> Server::TrySubmit(
    std::vector<runtime::ObjectRef> args, int64_t length_hint) {
  std::future<runtime::ObjectRef> future;
  Request request = MakeRequest(std::move(args), length_hint, &future);
  auto enqueue_time = request.enqueue_time;
  if (!queue_->TryPush(request)) {
    stats_.RecordRejected();
    return std::nullopt;
  }
  stats_.RecordEnqueue(enqueue_time);
  return future;
}

void Server::Shutdown() {
  if (shutdown_.exchange(true)) return;
  queue_->Close();      // stop admissions; scheduler drains what's left
  scheduler_->Join();   // exits after flushing every pending bucket
  pool_->Close();       // workers drain the batch queue, then exit
  pool_->Join();
}

}  // namespace serve
}  // namespace nimble
