// Bounded, closeable MPMC channel — the one synchronization primitive the
// serving pipeline is built from (RequestQueue admits requests through it;
// VMPool buffers batches through it).
//
// Semantics:
//  - Push blocks while the channel is full: backpressure propagates into
//    the producer. TryPush fails fast instead, so producers can shed load.
//  - Close() drains gracefully: pending items can still be popped, further
//    pushes fail, poppers see "empty + closed" as end of stream.
//
// Thread-safe: any number of producers and consumers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "src/support/logging.h"

namespace nimble {
namespace serve {

/// Wake-up fan-in for one consumer multiplexing several channels (the batch
/// scheduler waits on N per-model request queues through one notifier).
/// Producers bump a version on every Push/Close; the consumer records the
/// version it last acted on and sleeps until the version moves — so a
/// notification arriving between its drain pass and its wait is never lost.
/// Thread-safe for any number of producers and one or more consumers.
class ChannelNotifier {
 public:
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++version_;
    }
    cv_.notify_all();
  }

  /// Blocks until version() != seen or `deadline` passes; returns the
  /// version observed on wake-up (== seen means timeout).
  uint64_t WaitUntil(uint64_t seen,
                     std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_until(lock, deadline, [&] { return version_ != seen; });
    return version_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t version_ = 0;
};

template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity) : capacity_(capacity) {
    NIMBLE_CHECK_GE(capacity, 1u) << "channel capacity must be positive";
  }

  /// Attaches a shared notifier signalled on every successful Push and on
  /// Close, so one consumer can sleep on many channels at once. Must be set
  /// before producers start (it is read without the channel lock).
  void set_notifier(ChannelNotifier* notifier) { notifier_ = notifier; }

  /// Blocks while the channel is full. Returns false (without consuming the
  /// item) if the channel is closed.
  bool Push(T& item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    if (notifier_ != nullptr) notifier_->Notify();
    return true;
  }

  /// Non-blocking. Returns false — leaving `item` untouched so the caller
  /// can retry or reject it — when the channel is full or closed.
  bool TryPush(T& item) { return TryPush(item, nullptr); }

  /// TryPush with a depth snapshot: `*depth` (when non-null) receives the
  /// queue depth observed under the same lock as the admission decision —
  /// the depth *after* the push on success, the full depth at rejection on
  /// failure. Callers surfacing backpressure (the HTTP 429 path computes
  /// Retry-After from it) get a number consistent with the decision instead
  /// of a racy size() read a moment later.
  bool TryPush(T& item, size_t* depth) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        if (depth != nullptr) *depth = items_.size();
        return false;
      }
      items_.push_back(std::move(item));
      if (depth != nullptr) *depth = items_.size();
    }
    not_empty_.notify_one();
    if (notifier_ != nullptr) notifier_->Notify();
    return true;
  }

  /// Non-blocking pop: empty optional when nothing is queued (the consumer
  /// distinguishes "momentarily empty" from end-of-stream via closed()).
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    return PopLocked(std::move(lock));
  }

  /// Blocks until an item is available or the channel is closed and drained
  /// (returns nullopt — end of stream).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    return PopLocked(std::move(lock));
  }

  /// Like Pop but gives up at `deadline` (returns nullopt on timeout too;
  /// callers distinguish timeout from end-of-stream via closed()/empty()).
  std::optional<T> PopUntil(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_until(lock, deadline,
                               [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;  // timeout
    }
    return PopLocked(std::move(lock));
  }

  /// Stops admissions and wakes all waiters. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    if (notifier_ != nullptr) notifier_->Notify();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopLocked(std::unique_lock<std::mutex> lock) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  ChannelNotifier* notifier_ = nullptr;  // set once, before producers start
};

}  // namespace serve
}  // namespace nimble
