#include "src/baselines/static_runtime.h"

#include <cmath>
#include <cstring>

#include "src/kernels/elementwise.h"
#include "src/kernels/registry.h"

namespace nimble {
namespace baselines {

using ir::Attrs;
using kernels::EwOp;
using runtime::DataType;
using runtime::NDArray;

namespace {

std::vector<int64_t> Steps(std::initializer_list<std::array<int64_t, 3>> triples) {
  std::vector<int64_t> flat;
  for (const auto& t : triples) {
    flat.push_back(t[0]);
    flat.push_back(t[1]);
    flat.push_back(t[2]);
  }
  return flat;
}

constexpr int64_t kAdd = static_cast<int64_t>(EwOp::kAdd);
constexpr int64_t kMul = static_cast<int64_t>(EwOp::kMultiply);
constexpr int64_t kGelu = static_cast<int64_t>(EwOp::kGelu);

}  // namespace

NDArray StaticBERTRuntime::Buffer(runtime::ShapeVec shape) {
  return NDArray::Empty(std::move(shape), DataType::Float32());
}

void StaticBERTRuntime::AddStep(const std::string& kernel,
                                std::vector<NDArray> inputs,
                                std::vector<NDArray> outputs, Attrs attrs) {
  steps_.push_back(Step{kernel, std::move(inputs), std::move(outputs),
                        std::move(attrs)});
}

StaticBERTRuntime::StaticBERTRuntime(const models::BERTModel& model,
                                     int64_t seq_len)
    : model_(model), seq_len_(seq_len) {
  kernels::EnsureKernelsRegistered();
  const auto& cfg = model.config;
  int64_t L = seq_len, H = cfg.hidden, A = cfg.num_heads, D = H / A,
          F = cfg.ffn_hidden;

  ids_buffer_ = NDArray::Empty({L}, DataType::Int64());
  NDArray x = Buffer({L, H});
  AddStep("take", {model.weights.embedding, ids_buffer_}, {x});

  NDArray scale = NDArray::Scalar<float>(1.0f / std::sqrt(static_cast<float>(D)));
  for (const auto& w : model.weights.layers) {
    NDArray q = Buffer({L, H}), k = Buffer({L, H}), v = Buffer({L, H});
    Attrs bias_ep;
    bias_ep.Set("steps", Steps({{kAdd, 3, 2}}));
    AddStep("fused_dense", {x, w.wq, w.bq}, {q}, bias_ep);
    AddStep("fused_dense", {x, w.wk, w.bk}, {k}, bias_ep);
    AddStep("fused_dense", {x, w.wv, w.bv}, {v}, bias_ep);

    NDArray q_t = Buffer({A, L, D}), k_t = Buffer({A, L, D}),
            v_t = Buffer({A, D, L});
    Attrs perm_alt;
    AddStep("transpose", {q.Reshape({L, A, D})}, {q_t},
            Attrs().Set("axes", std::vector<int64_t>{1, 0, 2}));
    AddStep("transpose", {k.Reshape({L, A, D})}, {k_t},
            Attrs().Set("axes", std::vector<int64_t>{1, 0, 2}));
    AddStep("transpose", {v.Reshape({L, A, D})}, {v_t},
            Attrs().Set("axes", std::vector<int64_t>{1, 2, 0}));

    NDArray scores = Buffer({A, L, L});
    Attrs scale_ep;
    scale_ep.Set("steps", Steps({{kMul, 2, 2}}));
    AddStep("fused_batch_matmul", {q_t, k_t, scale}, {scores}, scale_ep);
    NDArray probs = Buffer({A, L, L});
    AddStep("nn.softmax", {scores}, {probs});
    NDArray ctx = Buffer({A, L, D});
    AddStep("nn.batch_matmul", {probs, v_t}, {ctx});
    NDArray ctx_t = Buffer({L, A, D});
    AddStep("transpose", {ctx}, {ctx_t},
            Attrs().Set("axes", std::vector<int64_t>{1, 0, 2}));

    NDArray attn = Buffer({L, H});
    Attrs attn_ep;
    attn_ep.Set("steps", Steps({{kAdd, 3, 2}, {kAdd, 1, 3}}));
    AddStep("fused_dense", {ctx_t.Reshape({L, H}), w.wo, w.bo, x}, {attn},
            attn_ep);
    NDArray x1 = Buffer({L, H});
    AddStep("nn.layer_norm", {attn, w.ln1_g, w.ln1_b}, {x1});

    NDArray f1 = Buffer({L, F});
    Attrs ffn1_ep;
    ffn1_ep.Set("steps", Steps({{kAdd, 3, 2}, {kGelu, 0, 0}}));
    AddStep("fused_dense", {x1, w.w1, w.b1}, {f1}, ffn1_ep);
    NDArray f2 = Buffer({L, H});
    Attrs ffn2_ep;
    ffn2_ep.Set("steps", Steps({{kAdd, 3, 2}, {kAdd, 1, 3}}));
    AddStep("fused_dense", {f1, w.w2, w.b2, x1}, {f2}, ffn2_ep);
    NDArray x2 = Buffer({L, H});
    AddStep("nn.layer_norm", {f2, w.ln2_g, w.ln2_b}, {x2});
    x = x2;
  }
  output_ = x;
}

NDArray StaticBERTRuntime::Run(const std::vector<int64_t>& ids) {
  NIMBLE_CHECK_EQ(static_cast<int64_t>(ids.size()), seq_len_)
      << "static runtime compiled for a fixed sequence length";
  std::memcpy(ids_buffer_.raw_data(), ids.data(), ids.size() * sizeof(int64_t));
  kernels::KernelContext ctx;
  ctx.dense_dispatch = &dispatch_;
  for (const Step& step : steps_) {
    kernels::KernelRegistry::Global()->Get(step.kernel)(step.inputs,
                                                        step.outputs,
                                                        step.attrs, ctx);
  }
  return output_;
}

}  // namespace baselines
}  // namespace nimble
