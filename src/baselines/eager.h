// Eager (define-by-run) framework baseline, modeling PyTorch/DyNet-style
// execution (§2.1):
//  - each operator executes immediately and in isolation (no fusion);
//  - every output is a fresh allocation from the naive allocator (no
//    memory planning);
//  - each call appends a node to a dynamic autograd-style graph trace (the
//    per-path graph construction the paper identifies as pure overhead for
//    inference);
//  - per-op shape inference runs on every call.
// Kernels themselves are shared with Nimble (standing in for the vendor
// libraries frameworks link against), so the measured gap is the framework
// glue: graph construction, allocation, and missing fusion.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/codegen/dispatch.h"
#include "src/ir/attrs.h"
#include "src/models/bert.h"
#include "src/models/lstm.h"
#include "src/models/tree_lstm.h"
#include "src/runtime/ndarray.h"

namespace nimble {
namespace baselines {

using runtime::NDArray;

class EagerContext {
 public:
  /// `dispatch_overhead_ns` models the framework's per-operator dispatch
  /// cost on top of the measurable work this baseline already performs
  /// (graph-node construction, shape inference, fresh allocation):
  ///   ~2,000 ns  — a C++-level dispatcher (PyTorch called from C++);
  ///   ~20,000 ns — define-by-run driven from Python, the configuration the
  ///                paper benchmarks (its Tree-LSTM analysis attributes the
  ///                17-20x gap to "PyTorch uses Python to handle the tree
  ///                data structure").
  /// The charge is an explicit, documented simulation parameter (see
  /// DESIGN.md §2) implemented as a calibrated busy-wait.
  explicit EagerContext(int64_t dispatch_overhead_ns = 2000)
      : dispatch_overhead_ns_(dispatch_overhead_ns) {}

  /// Executes one operator eagerly; returns the (freshly allocated) output.
  NDArray Run(const std::string& op, const std::vector<NDArray>& inputs,
              const ir::Attrs& attrs = {});

  /// Multi-output variant (split).
  std::vector<NDArray> RunMulti(const std::string& op,
                                const std::vector<NDArray>& inputs,
                                const ir::Attrs& attrs = {});

  /// Clears the dynamic graph trace (a framework does this per iteration).
  void ResetTrace() { trace_.clear(); }

  int64_t ops_executed() const { return ops_executed_; }

 private:
  struct GraphNode {
    std::string op;
    std::vector<runtime::ShapeVec> input_shapes;
    std::vector<std::shared_ptr<GraphNode>> inputs;
  };
  std::shared_ptr<GraphNode> Record(const std::string& op,
                                    const std::vector<NDArray>& inputs);

  std::vector<std::shared_ptr<GraphNode>> trace_;
  int64_t dispatch_overhead_ns_ = 0;
  int64_t ops_executed_ = 0;
  /// Private dense dispatch table, threaded to kernels via KernelContext
  /// (the per-owner pattern of vm::Executable).
  codegen::DenseDispatchTable dense_dispatch_;
};

/// Define-by-run model drivers (host-language control flow, per-op dispatch).
NDArray EagerLSTM(const models::LSTMWeights& weights, const NDArray& x,
                  EagerContext& ctx);
NDArray EagerTreeLSTM(const models::TreeLSTMWeights& weights,
                      const models::HostTree& tree, EagerContext& ctx);
NDArray EagerBERT(const models::BERTModel& model,
                  const std::vector<int64_t>& ids, EagerContext& ctx);

}  // namespace baselines
}  // namespace nimble
