// TensorFlow Fold-style baseline (§2.1, Table 2): per-input graph
// construction followed by depth-wise dynamic batching.
//
// For every input tree it (1) "compiles": walks the structure, assigns each
// node a schedule level (max child level + 1), and builds batched execution
// plans — this per-input compilation is the overhead the paper measures
// (Fold is 5.2x slower than Nimble because "it has to re-compile upon every
// input"); then (2) executes one batched dense + batched cell per level.
#pragma once

#include "src/models/tree_lstm.h"
#include "src/runtime/ndarray.h"

namespace nimble {
namespace baselines {

struct FoldStats {
  int64_t graphs_built = 0;
  int64_t nodes_scheduled = 0;
  int64_t batched_launches = 0;
};

/// Evaluates a Tree-LSTM via per-input dynamic batching; returns the root
/// hidden state [1, H].
/// `graph_node_overhead_ns` charges the per-node cost of building the
/// framework graph for this input (TF Fold constructs TensorFlow graph ops
/// from Python for every tree; ~100us/op is representative). Explicit
/// simulation parameter, see DESIGN.md section 2.
runtime::NDArray FoldTreeLSTM(const models::TreeLSTMWeights& weights,
                              const models::HostTree& tree,
                              FoldStats* stats = nullptr,
                              int64_t graph_node_overhead_ns = 0);

}  // namespace baselines
}  // namespace nimble
