#include "src/baselines/eager.h"

#include <chrono>
#include <cmath>

#include "src/kernels/registry.h"
#include "src/op/registry.h"

namespace nimble {
namespace baselines {

using ir::Attrs;
using runtime::DataType;

std::shared_ptr<EagerContext::GraphNode> EagerContext::Record(
    const std::string& op, const std::vector<NDArray>& inputs) {
  auto node = std::make_shared<GraphNode>();
  node->op = op;
  node->input_shapes.reserve(inputs.size());
  for (const NDArray& in : inputs) node->input_shapes.push_back(in.shape());
  // Wire the node to the most recent producers (autograd-graph style).
  size_t deps = std::min<size_t>(inputs.size(), trace_.size());
  for (size_t i = 0; i < deps; ++i) {
    node->inputs.push_back(trace_[trace_.size() - 1 - i]);
  }
  trace_.push_back(node);
  return node;
}

NDArray EagerContext::Run(const std::string& op,
                          const std::vector<NDArray>& inputs,
                          const Attrs& attrs) {
  return RunMulti(op, inputs, attrs)[0];
}

std::vector<NDArray> EagerContext::RunMulti(const std::string& op,
                                            const std::vector<NDArray>& inputs,
                                            const Attrs& attrs) {
  ops_executed_++;
  Record(op, inputs);
  if (dispatch_overhead_ns_ > 0) {
    auto start = std::chrono::steady_clock::now();
    while (std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
               .count() < dispatch_overhead_ns_) {
      // modeled framework dispatch cost (see header)
    }
  }
  const op::OpInfo& info = op::OpRegistry::Global()->Get(op);
  // Per-call shape inference.
  std::vector<runtime::ShapeVec> in_shapes;
  in_shapes.reserve(inputs.size());
  for (const NDArray& in : inputs) in_shapes.push_back(in.shape());
  auto out_shapes = info.shape_fn(in_shapes, inputs, attrs);
  // Fresh allocation per output, naive allocator (no pooling, no planning).
  std::vector<NDArray> outputs;
  outputs.reserve(out_shapes.size());
  DataType out_dtype = inputs.empty() ? DataType::Float32() : inputs[0].dtype();
  if (op == "less" || op == "greater" || op == "equal") out_dtype = DataType::Bool();
  for (const auto& shape : out_shapes) {
    outputs.push_back(NDArray::Empty(shape, out_dtype, runtime::Device::CPU(),
                                     runtime::GlobalNaiveAllocator()));
  }
  kernels::EnsureKernelsRegistered();
  kernels::KernelContext ctx;
  ctx.dense_dispatch = &dense_dispatch_;
  kernels::KernelRegistry::Global()->Get(info.kernel_name)(inputs, outputs,
                                                           attrs, ctx);
  return outputs;
}

namespace {

/// Unfused eager LSTM cell: 11 operator dispatches.
std::pair<NDArray, NDArray> EagerCell(EagerContext& ctx, const NDArray& gates,
                                      const NDArray& c) {
  auto parts = ctx.RunMulti("split", {gates},
                            ir::Attrs().Set("sections", 4).Set("axis", 1));
  NDArray i = ctx.Run("sigmoid", {parts[0]});
  NDArray f = ctx.Run("sigmoid", {parts[1]});
  NDArray g = ctx.Run("tanh", {parts[2]});
  NDArray o = ctx.Run("sigmoid", {parts[3]});
  NDArray fc = ctx.Run("multiply", {f, c});
  NDArray ig = ctx.Run("multiply", {i, g});
  NDArray c2 = ctx.Run("add", {fc, ig});
  NDArray h2 = ctx.Run("multiply", {o, ctx.Run("tanh", {c2})});
  return {h2, c2};
}

}  // namespace

NDArray EagerLSTM(const models::LSTMWeights& weights, const NDArray& x,
                  EagerContext& ctx) {
  int64_t seq = x.shape()[0];
  int num_layers = static_cast<int>(weights.layers.size());
  std::vector<NDArray> h(num_layers, weights.h0), c(num_layers, weights.c0);
  ctx.ResetTrace();
  for (int64_t t = 0; t < seq; ++t) {
    NDArray idx = NDArray::Scalar<int64_t>(t);
    NDArray x_t = ctx.Run("expand_dims", {ctx.Run("take", {x, idx})},
                          ir::Attrs().Set("axis", 0));
    NDArray layer_in = x_t;
    for (int l = 0; l < num_layers; ++l) {
      const auto& w = weights.layers[l];
      NDArray g1 = ctx.Run("nn.dense", {layer_in, w.wx});
      NDArray g2 = ctx.Run("nn.dense", {h[l], w.wh});
      NDArray gates =
          ctx.Run("nn.bias_add", {ctx.Run("add", {g1, g2}), w.b});
      auto [h2, c2] = EagerCell(ctx, gates, c[l]);
      h[l] = h2;
      c[l] = c2;
      layer_in = h2;
    }
  }
  return h[num_layers - 1];
}

namespace {

std::pair<NDArray, NDArray> EagerTreeEval(const models::TreeLSTMWeights& w,
                                          const models::HostTree& tree,
                                          EagerContext& ctx) {
  if (tree.is_leaf()) {
    NDArray gates =
        ctx.Run("nn.bias_add", {ctx.Run("nn.dense", {tree.leaf, w.wx}), w.b});
    return EagerCell(ctx, gates, w.c0);
  }
  auto [hl, cl] = EagerTreeEval(w, *tree.left, ctx);
  auto [hr, cr] = EagerTreeEval(w, *tree.right, ctx);
  NDArray hs = ctx.Run("add", {hl, hr});
  NDArray cs = ctx.Run("add", {cl, cr});
  NDArray gates = ctx.Run("nn.bias_add", {ctx.Run("nn.dense", {hs, w.wh}), w.b});
  return EagerCell(ctx, gates, cs);
}

}  // namespace

NDArray EagerTreeLSTM(const models::TreeLSTMWeights& weights,
                      const models::HostTree& tree, EagerContext& ctx) {
  ctx.ResetTrace();
  return EagerTreeEval(weights, tree, ctx).first;
}

NDArray EagerBERT(const models::BERTModel& model,
                  const std::vector<int64_t>& ids, EagerContext& ctx) {
  ctx.ResetTrace();
  const auto& cfg = model.config;
  int64_t H = cfg.hidden, A = cfg.num_heads, D = H / A;
  int64_t L = static_cast<int64_t>(ids.size());
  NDArray ids_arr = NDArray::FromVector(ids, {L});
  NDArray x = ctx.Run("take", {model.weights.embedding, ids_arr});

  auto dense_bias = [&](const NDArray& in, const NDArray& w, const NDArray& b) {
    return ctx.Run("nn.bias_add", {ctx.Run("nn.dense", {in, w}), b});
  };
  auto to_heads = [&](const NDArray& t, std::vector<int64_t> perm) {
    // Frameworks implement reshape as a zero-copy view; transpose dispatches.
    NDArray r = t.Reshape({t.shape()[0], A, D});
    return ctx.Run("transpose", {r}, ir::Attrs().Set("axes", std::move(perm)));
  };

  for (const auto& w : model.weights.layers) {
    NDArray q = to_heads(dense_bias(x, w.wq, w.bq), {1, 0, 2});
    NDArray k = to_heads(dense_bias(x, w.wk, w.bk), {1, 0, 2});
    NDArray v = to_heads(dense_bias(x, w.wv, w.bv), {1, 2, 0});
    NDArray scores = ctx.Run("nn.batch_matmul", {q, k});
    scores = ctx.Run(
        "multiply",
        {scores, NDArray::Scalar<float>(1.0f / std::sqrt(static_cast<float>(D)))});
    NDArray probs = ctx.Run("nn.softmax", {scores});
    NDArray ctxv = ctx.Run("nn.batch_matmul", {probs, v});
    ctxv = ctx.Run("transpose", {ctxv},
                   ir::Attrs().Set("axes", std::vector<int64_t>{1, 0, 2}));
    ctxv = ctxv.Reshape({L, H});
    NDArray attn = dense_bias(ctxv, w.wo, w.bo);
    x = ctx.Run("nn.layer_norm", {ctx.Run("add", {attn, x}), w.ln1_g, w.ln1_b});
    NDArray ffn = ctx.Run("gelu", {dense_bias(x, w.w1, w.b1)});
    ffn = dense_bias(ffn, w.w2, w.b2);
    x = ctx.Run("nn.layer_norm", {ctx.Run("add", {ffn, x}), w.ln2_g, w.ln2_b});
  }
  return x;
}

}  // namespace baselines
}  // namespace nimble
