#include "src/baselines/fold.h"

#include <chrono>
#include <cmath>
#include <map>
#include <vector>

#include "src/codegen/dispatch.h"
#include "src/support/logging.h"

namespace nimble {
namespace baselines {

using models::HostTree;
using runtime::DataType;
using runtime::NDArray;

namespace {

struct SchedNode {
  const HostTree* tree;
  int level = 0;
  const SchedNode* left = nullptr;
  const SchedNode* right = nullptr;
  // Filled during execution:
  std::vector<float> h, c;
};

int BuildSchedule(const HostTree& tree,
                  std::vector<std::unique_ptr<SchedNode>>* nodes,
                  std::map<int, std::vector<SchedNode*>>* levels,
                  SchedNode** out) {
  auto node = std::make_unique<SchedNode>();
  node->tree = &tree;
  if (tree.is_leaf()) {
    node->level = 0;
  } else {
    SchedNode *l, *r;
    int ll = BuildSchedule(*tree.left, nodes, levels, &l);
    int rl = BuildSchedule(*tree.right, nodes, levels, &r);
    node->left = l;
    node->right = r;
    node->level = std::max(ll, rl) + 1;
  }
  (*levels)[node->level].push_back(node.get());
  *out = node.get();
  nodes->push_back(std::move(node));
  return (*out)->level;
}

}  // namespace

NDArray FoldTreeLSTM(const models::TreeLSTMWeights& weights,
                     const HostTree& tree, FoldStats* stats,
                     int64_t graph_node_overhead_ns) {
  int64_t H = weights.c0.shape()[1];
  auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };

  // ---- per-input graph construction (the Fold overhead) --------------------
  std::vector<std::unique_ptr<SchedNode>> nodes;
  std::map<int, std::vector<SchedNode*>> levels;
  SchedNode* root = nullptr;
  BuildSchedule(tree, &nodes, &levels, &root);
  if (stats != nullptr) {
    stats->graphs_built++;
    stats->nodes_scheduled += static_cast<int64_t>(nodes.size());
  }
  if (graph_node_overhead_ns > 0) {
    // Modeled cost of creating framework graph nodes for this input.
    int64_t budget = graph_node_overhead_ns * static_cast<int64_t>(nodes.size());
    auto start = std::chrono::steady_clock::now();
    while (std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
               .count() < budget) {
    }
  }

  // ---- batched execution level by level ------------------------------------
  // Full-dispatch table private to the fold baseline: the baseline measures
  // batching strategy, not dispatch policy, so it owns its dispatch state
  // like every other dense-kernel caller.
  static const codegen::DenseDispatchTable table(codegen::kTileRows);
  const float* bias = weights.b.data<float>();
  for (auto& [level, batch] : levels) {
    int64_t k = static_cast<int64_t>(batch.size());
    bool leaf_level = level == 0;
    int64_t in_width = leaf_level ? weights.wx.shape()[1] : H;
    const NDArray& w = leaf_level ? weights.wx : weights.wh;

    // Stack the batch inputs: [k, in_width].
    std::vector<float> stacked(k * in_width);
    for (int64_t i = 0; i < k; ++i) {
      SchedNode* n = batch[i];
      if (leaf_level) {
        const float* x = n->tree->leaf.data<float>();
        std::copy(x, x + in_width, stacked.begin() + i * in_width);
      } else {
        for (int64_t j = 0; j < H; ++j) {
          stacked[i * in_width + j] = n->left->h[j] + n->right->h[j];
        }
      }
    }
    // One batched dense per level: [k, 4H].
    std::vector<float> gates(k * 4 * H);
    table.Run(stacked.data(), w.data<float>(), gates.data(), k, 4 * H, in_width);
    if (stats != nullptr) stats->batched_launches++;

    // Batched cell.
    for (int64_t i = 0; i < k; ++i) {
      SchedNode* n = batch[i];
      n->h.resize(H);
      n->c.resize(H);
      const float* g = gates.data() + i * 4 * H;
      for (int64_t j = 0; j < H; ++j) {
        float c_prev =
            leaf_level ? 0.0f : n->left->c[j] + n->right->c[j];
        float iv = sigmoid(g[j] + bias[j]);
        float fv = sigmoid(g[H + j] + bias[H + j]);
        float gv = std::tanh(g[2 * H + j] + bias[2 * H + j]);
        float ov = sigmoid(g[3 * H + j] + bias[3 * H + j]);
        n->c[j] = fv * c_prev + iv * gv;
        n->h[j] = ov * std::tanh(n->c[j]);
      }
    }
  }

  NDArray out = NDArray::Empty({1, H}, DataType::Float32());
  std::copy(root->h.begin(), root->h.end(), out.data<float>());
  return out;
}

}  // namespace baselines
}  // namespace nimble
