// Static graph runtime (TVM-static style), used by the Table 4 overhead
// study: the model is compiled for ONE fixed sequence length, every shape is
// known, all buffers are pre-allocated once, and execution is a straight
// loop over kernel launches — no VM dispatch, no shape functions, no dynamic
// allocation. Comparing this against Nimble's VM on the same input isolates
// the cost of handling dynamism.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/codegen/dispatch.h"
#include "src/ir/attrs.h"
#include "src/models/bert.h"
#include "src/runtime/ndarray.h"

namespace nimble {
namespace baselines {

class StaticBERTRuntime {
 public:
  /// Plans and pre-allocates for the fixed sequence length.
  StaticBERTRuntime(const models::BERTModel& model, int64_t seq_len);

  /// Runs the plan; `ids` must have exactly the planned length.
  runtime::NDArray Run(const std::vector<int64_t>& ids);

  int64_t seq_len() const { return seq_len_; }
  size_t num_steps() const { return steps_.size(); }

 private:
  struct Step {
    std::string kernel;
    std::vector<runtime::NDArray> inputs;
    std::vector<runtime::NDArray> outputs;
    ir::Attrs attrs;
  };
  void AddStep(const std::string& kernel, std::vector<runtime::NDArray> inputs,
               std::vector<runtime::NDArray> outputs, ir::Attrs attrs = {});
  runtime::NDArray Buffer(runtime::ShapeVec shape);

  const models::BERTModel& model_;
  int64_t seq_len_;
  runtime::NDArray ids_buffer_;
  runtime::NDArray output_;
  std::vector<Step> steps_;
  /// Private dispatch table threaded to kernels via KernelContext — the
  /// same per-owner pattern as vm::Executable.
  codegen::DenseDispatchTable dispatch_;
};

}  // namespace baselines
}  // namespace nimble
