// Tensor-manipulation kernels: concat, split, take, transpose, slice_rows.
#include <cstring>

#include "src/kernels/registry.h"

namespace nimble {
namespace kernels {

namespace {

// concat(x0, x1, ..., axis): output shape already computed by shape function.
void Concat(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
            const ir::Attrs& attrs) {
  int64_t axis = attrs.GetInt("axis", 0);
  const NDArray& y = out[0];
  size_t elem = y.dtype().bytes();
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= y.shape()[i];
  int64_t inner = 1;
  for (size_t i = axis + 1; i < y.shape().size(); ++i) inner *= y.shape()[i];
  int64_t out_axis = y.shape()[axis];
  char* py = static_cast<char*>(y.raw_data());
  int64_t axis_offset = 0;
  for (const NDArray& x : in) {
    int64_t x_axis = x.shape()[axis];
    const char* px = static_cast<const char*>(x.raw_data());
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(py + ((o * out_axis + axis_offset) * inner) * elem,
                  px + (o * x_axis * inner) * elem,
                  static_cast<size_t>(x_axis * inner) * elem);
    }
    axis_offset += x_axis;
  }
}

// split(x, sections, axis): writes each part to its own output.
void Split(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
           const ir::Attrs& attrs) {
  int64_t axis = attrs.GetInt("axis", 0);
  const NDArray& x = in[0];
  size_t elem = x.dtype().bytes();
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= x.shape()[i];
  int64_t inner = 1;
  for (size_t i = axis + 1; i < x.shape().size(); ++i) inner *= x.shape()[i];
  int64_t in_axis = x.shape()[axis];
  const char* px = static_cast<const char*>(x.raw_data());
  int64_t axis_offset = 0;
  for (const NDArray& y : out) {
    int64_t y_axis = y.shape()[axis];
    char* py = static_cast<char*>(y.raw_data());
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(py + (o * y_axis * inner) * elem,
                  px + ((o * in_axis + axis_offset) * inner) * elem,
                  static_cast<size_t>(y_axis * inner) * elem);
    }
    axis_offset += y_axis;
  }
}

// take(data: [N, rest...], indices) along axis 0.
void Take(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
          const ir::Attrs&) {
  const NDArray& data = in[0];
  const NDArray& idx = in[1];
  const NDArray& y = out[0];
  int64_t n = data.shape()[0];
  int64_t row = data.num_elements() / n;
  size_t row_bytes = static_cast<size_t>(row) * data.dtype().bytes();
  const int64_t* pi = idx.data<int64_t>();
  const char* pd = static_cast<const char*>(data.raw_data());
  char* py = static_cast<char*>(y.raw_data());
  int64_t count = idx.num_elements();
  for (int64_t i = 0; i < count; ++i) {
    int64_t j = pi[i];
    NIMBLE_CHECK(j >= 0 && j < n) << "take: index " << j << " out of range [0, "
                                  << n << ")";
    std::memcpy(py + i * row_bytes, pd + j * row_bytes, row_bytes);
  }
}

// transpose(x, axes)
void Transpose(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
               const ir::Attrs& attrs) {
  const NDArray& x = in[0];
  const NDArray& y = out[0];
  auto axes = attrs.GetIntVec("axes");
  int64_t rank = x.ndim();
  NIMBLE_CHECK_EQ(static_cast<int64_t>(axes.size()), rank);
  // Strides of the input, then permuted to output order.
  std::vector<int64_t> in_strides(rank, 1);
  for (int64_t i = rank - 2; i >= 0; --i)
    in_strides[i] = in_strides[i + 1] * x.shape()[i + 1];
  std::vector<int64_t> perm_strides(rank);
  for (int64_t i = 0; i < rank; ++i) perm_strides[i] = in_strides[axes[i]];
  NIMBLE_CHECK(x.dtype() == runtime::DataType::Float32())
      << "transpose kernel supports float32";
  const float* px = x.data<float>();
  float* py = y.data<float>();
  std::vector<int64_t> idx(rank, 0);
  int64_t n = y.num_elements();
  int64_t off = 0;
  for (int64_t linear = 0; linear < n; ++linear) {
    py[linear] = px[off];
    for (int64_t d = rank; d-- > 0;) {
      idx[d]++;
      off += perm_strides[d];
      if (idx[d] < y.shape()[d]) break;
      off -= perm_strides[d] * y.shape()[d];
      idx[d] = 0;
    }
  }
}

// slice_rows(x: [N, rest...], count): copies the first `count` rows.
void SliceRows(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
               const ir::Attrs&) {
  const NDArray& x = in[0];
  const NDArray& y = out[0];
  int64_t rows = y.shape()[0];
  NIMBLE_CHECK_EQ(in[1].data<int64_t>()[0], rows)
      << "slice_rows: output allocated with stale count";
  size_t row_bytes = x.shape()[0] > 0
                         ? x.nbytes() / static_cast<size_t>(x.shape()[0])
                         : 0;
  std::memcpy(y.raw_data(), x.raw_data(), static_cast<size_t>(rows) * row_bytes);
}

}  // namespace

void RegisterManipKernels() {
  KernelRegistry::Global()->Register("concat", Concat);
  KernelRegistry::Global()->Register("split", Split);
  KernelRegistry::Global()->Register("take", Take);
  KernelRegistry::Global()->Register("transpose", Transpose);
  KernelRegistry::Global()->Register("slice_rows", SliceRows);
}

}  // namespace kernels
}  // namespace nimble
