// Kernels with data-dependent output shapes (§4.2): arange and unique.
// Their outputs were sized by the corresponding data-dependent shape
// functions before invocation.
#include <algorithm>

#include "src/kernels/registry.h"

namespace nimble {
namespace kernels {

namespace {

void Arange(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
            const ir::Attrs&) {
  int64_t start = in[0].data<int64_t>()[0];
  int64_t step = in[2].data<int64_t>()[0];
  const NDArray& y = out[0];
  int64_t* py = y.data<int64_t>();
  int64_t n = y.num_elements();
  for (int64_t i = 0; i < n; ++i) py[i] = start + i * step;
}

void Unique(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
            const ir::Attrs&) {
  const NDArray& x = in[0];
  const NDArray& y = out[0];
  std::vector<int64_t> vals(x.data<int64_t>(),
                            x.data<int64_t>() + x.num_elements());
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  NIMBLE_CHECK_EQ(static_cast<int64_t>(vals.size()), y.num_elements())
      << "unique: output size disagrees with shape function";
  std::copy(vals.begin(), vals.end(), y.data<int64_t>());
}

}  // namespace

void RegisterDynamicKernels() {
  KernelRegistry::Global()->Register("arange", Arange);
  KernelRegistry::Global()->Register("unique", Unique);
}

}  // namespace kernels
}  // namespace nimble
