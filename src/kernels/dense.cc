// nn.dense kernel: routes through the caller's dispatch table
// (KernelContext::dense_dispatch — the executable's table inside the VM) so
// dynamic-M workloads exercise residue dispatch (§4.5).
#include "src/codegen/dispatch.h"
#include "src/kernels/registry.h"

namespace nimble {
namespace kernels {

namespace {

/// Straightforward reference implementation, used for correctness tests and
/// as the registered "library" kernel that dispatch can select against
/// compiled kernels.
void DenseReference(const std::vector<NDArray>& in,
                    const std::vector<NDArray>& out, const ir::Attrs&) {
  NIMBLE_CHECK_EQ(in.size(), 2u);
  const NDArray& x = in[0];
  const NDArray& w = in[1];
  const NDArray& y = out[0];
  int64_t m = x.shape()[0], k = x.shape()[1], n = w.shape()[0];
  const float* px = x.data<float>();
  const float* pw = w.data<float>();
  float* py = y.data<float>();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += px[i * k + kk] * pw[j * k + kk];
      py[i * n + j] = acc;
    }
  }
}

}  // namespace

void RegisterDenseKernels() {
  KernelRegistry::Global()->Register(
      "nn.dense",
      ContextKernelFn([](const std::vector<NDArray>& in,
                         const std::vector<NDArray>& out, const ir::Attrs&,
                         const KernelContext& ctx) {
        ctx.dense_dispatch->Run(in[0], in[1], out[0], ctx.dense_config,
                                ctx.pool);
      }));
  KernelRegistry::Global()->Register("nn.dense_ref", DenseReference);

  // nn.bias_add(x: [..., N], b: [N])
  KernelRegistry::Global()->Register(
      "nn.bias_add",
      [](const std::vector<NDArray>& in, const std::vector<NDArray>& out,
         const ir::Attrs&) {
        const NDArray& x = in[0];
        const NDArray& b = in[1];
        const NDArray& y = out[0];
        int64_t n = b.shape()[0];
        int64_t rows = x.num_elements() / n;
        const float* px = x.data<float>();
        const float* pb = b.data<float>();
        float* py = y.data<float>();
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t j = 0; j < n; ++j) py[r * n + j] = px[r * n + j] + pb[j];
        }
      });
}

}  // namespace kernels
}  // namespace nimble
