// Neural-network kernels: softmax, layer_norm, the fused LSTM cell, and the
// simplified NMS used to exercise upper-bound shape functions (§4.2).
#include <cmath>

#include "src/kernels/elementwise.h"
#include "src/kernels/registry.h"

namespace nimble {
namespace kernels {

namespace {

// softmax over the last axis.
void Softmax(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
             const ir::Attrs&) {
  const NDArray& x = in[0];
  const NDArray& y = out[0];
  int64_t cols = x.shape().back();
  int64_t rows = x.num_elements() / cols;
  const float* px = x.data<float>();
  float* py = y.data<float>();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = px + r * cols;
    float* yr = py + r * cols;
    float mx = xr[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, xr[c]);
    float sum = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      yr[c] = std::exp(xr[c] - mx);
      sum += yr[c];
    }
    float inv = 1.0f / sum;
    for (int64_t c = 0; c < cols; ++c) yr[c] *= inv;
  }
}

// layer_norm over the last axis with affine gamma/beta.
void LayerNorm(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
               const ir::Attrs& attrs) {
  const NDArray& x = in[0];
  const NDArray& gamma = in[1];
  const NDArray& beta = in[2];
  const NDArray& y = out[0];
  double eps = attrs.GetFloat("epsilon", 1e-5);
  int64_t cols = x.shape().back();
  int64_t rows = x.num_elements() / cols;
  const float* px = x.data<float>();
  const float* pg = gamma.data<float>();
  const float* pb = beta.data<float>();
  float* py = y.data<float>();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = px + r * cols;
    float* yr = py + r * cols;
    float mean = 0.0f;
    for (int64_t c = 0; c < cols; ++c) mean += xr[c];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      float d = xr[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    float inv = 1.0f / std::sqrt(var + static_cast<float>(eps));
    for (int64_t c = 0; c < cols; ++c) {
      yr[c] = (xr[c] - mean) * inv * pg[c] + pb[c];
    }
  }
}

// ---- rows-in-lanes LSTM cell body ------------------------------------------
//
// The cell is the serving hot loop (5*hidden transcendentals per row per
// timestep) and, unlike the dense kernels, its work scales linearly with the
// batch — so the batched path needs the per-element cost down, not
// amortized. The AVX2 body below evaluates 8 hidden units per vector op
// with lane-wise FastExp/FastSigmoid/FastTanh that mirror the scalar
// helpers operation for operation (same clamps, same truncating converts,
// same polynomial order, no fused multiply-add), so every element's bits
// match the scalar loop exactly — scalar vs vector, fused vs unfused, and
// per-request vs packed batch all agree.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NIMBLE_NN_LANES 1

namespace lanes {

typedef float v8sf __attribute__((vector_size(32)));
typedef int32_t v8si __attribute__((vector_size(32)));

__attribute__((target("avx2"))) inline v8sf LoadV8(const float* p) {
  v8sf v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

__attribute__((target("avx2"))) inline void StoreV8(float* p, v8sf v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

/// Lane-wise FastExpF32 (see src/kernels/elementwise.h) — identical
/// operations per lane, so bits match the scalar helper.
__attribute__((target("avx2"))) inline v8sf FastExpV8(v8sf x) {
  // Splat constants from a true zero vector: deriving them from data lanes
  // (e.g. `x * 0.0f + 88.0f`) turns inf/NaN inputs — and the -inf the
  // power-of-two splice produces for fully-underflowed lanes — into NaN
  // instead of the scalar helper's clamped values.
  const v8sf kZero = {};
  const v8sf kHi = kZero + 88.0f;
  const v8sf kOne = kZero + 1.0f;
  x = x > kHi ? kHi : x;
  v8si zero_mask = x < -88.0f;
  v8sf z = x * 1.44269504088896341f + 0.5f;
  v8sf z2 = z - (z < 0.0f ? kOne : kZero);
  v8si ni = __builtin_convertvector(z2, v8si);  // truncates like (int32_t)
  v8sf nf = __builtin_convertvector(ni, v8sf);
  v8sf r = x - nf * 0.693359375f;
  r = r - nf * -2.12194440e-4f;
  v8sf rr = r * r;
  v8sf p = kZero + 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  v8sf y = p * rr + r + 1.0f;
  v8si bits = (ni + 127) << 23;
  y = y * reinterpret_cast<v8sf&>(bits);
  return zero_mask ? kZero : y;
}

__attribute__((target("avx2"))) inline v8sf FastSigmoidV8(v8sf x) {
  return 1.0f / (1.0f + FastExpV8(-x));
}

__attribute__((target("avx2"))) inline v8sf FastTanhV8(v8sf x) {
  const v8sf kOne = (v8sf){} + 1.0f;
  v8si neg = x < 0.0f;
  v8sf ax = neg ? -x : x;
  v8si sat = ax > 9.0f;
  v8sf e = FastExpV8(2.0f * ax);
  v8sf t = 1.0f - 2.0f / (e + 1.0f);
  t = sat ? kOne : t;
  return neg ? -t : t;
}

/// One row of the cell, 8 hidden units per step plus a scalar tail.
__attribute__((target("avx2"))) inline void CellRow(const float* row,
                                                    const float* pc, float* ph,
                                                    float* pco,
                                                    int64_t hidden) {
  int64_t j = 0;
  for (; j + 8 <= hidden; j += 8) {
    v8sf i = FastSigmoidV8(LoadV8(row + j));
    v8sf f = FastSigmoidV8(LoadV8(row + hidden + j));
    v8sf g = FastTanhV8(LoadV8(row + 2 * hidden + j));
    v8sf o = FastSigmoidV8(LoadV8(row + 3 * hidden + j));
    v8sf cn = f * LoadV8(pc + j) + i * g;
    StoreV8(pco + j, cn);
    StoreV8(ph + j, o * FastTanhV8(cn));
  }
  for (; j < hidden; ++j) {
    float i = FastSigmoidF32(row[j]);
    float f = FastSigmoidF32(row[hidden + j]);
    float g = FastTanhF32(row[2 * hidden + j]);
    float o = FastSigmoidF32(row[3 * hidden + j]);
    float cn = f * pc[j] + i * g;
    pco[j] = cn;
    ph[j] = o * FastTanhF32(cn);
  }
}

inline bool Supported() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

}  // namespace lanes
#endif  // x86-64 gcc/clang

// nn.lstm_cell(gates: [B, 4H] laid out as [i | f | g | o], c: [B, H])
//   -> (h': [B, H], c': [B, H])
// One pass over memory: the fusion the compiler performs on the unfused
// sigmoid/tanh/mul/add sequence (see pass/fuse_lstm.cc).
void LSTMCell(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
              const ir::Attrs&) {
  const NDArray& gates = in[0];
  const NDArray& c = in[1];
  const NDArray& h_out = out[0];
  const NDArray& c_out = out[1];
  int64_t batch = gates.shape()[0];
  int64_t hidden = c.shape()[1];
  NIMBLE_CHECK_EQ(gates.shape()[1], 4 * hidden);
  const float* pg = gates.data<float>();
  const float* pc = c.data<float>();
  float* ph = h_out.data<float>();
  float* pco = c_out.data<float>();
  // Same sigmoid/tanh as the unfused elementwise path (FastSigmoidF32 /
  // FastTanhF32), so fusing the cell never changes results — and batched
  // rows reproduce per-request rows exactly. The lanes body is bit-equal to
  // the scalar loop (see the contract above).
#ifdef NIMBLE_NN_LANES
  if (lanes::Supported()) {
    for (int64_t b = 0; b < batch; ++b) {
      lanes::CellRow(pg + b * 4 * hidden, pc + b * hidden, ph + b * hidden,
                     pco + b * hidden, hidden);
    }
    return;
  }
#endif
  for (int64_t b = 0; b < batch; ++b) {
    const float* row = pg + b * 4 * hidden;
    for (int64_t j = 0; j < hidden; ++j) {
      float i = FastSigmoidF32(row[j]);
      float f = FastSigmoidF32(row[hidden + j]);
      float g = FastTanhF32(row[2 * hidden + j]);
      float o = FastSigmoidF32(row[3 * hidden + j]);
      float cn = f * pc[b * hidden + j] + i * g;
      pco[b * hidden + j] = cn;
      ph[b * hidden + j] = o * FastTanhF32(cn);
    }
  }
}

// nn.nms(boxes: [N, 5]) rows = (score, x1, y1, x2, y2).
// Greedy NMS: keep boxes above score_threshold whose IoU with every
// already-kept box is below iou_threshold. Writes kept rows to out[0]
// (upper-bound allocation of N rows) and the kept count to out[1].
void NMS(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
         const ir::Attrs& attrs) {
  const NDArray& boxes = in[0];
  const NDArray& kept = out[0];
  const NDArray& count = out[1];
  double iou_thresh = attrs.GetFloat("iou_threshold", 0.5);
  double score_thresh = attrs.GetFloat("score_threshold", 0.0);
  int64_t n = boxes.shape()[0];
  NIMBLE_CHECK_EQ(boxes.shape()[1], 5);
  const float* pb = boxes.data<float>();
  float* pk = kept.data<float>();

  auto iou = [&](const float* a, const float* b) -> float {
    float x1 = std::max(a[1], b[1]), y1 = std::max(a[2], b[2]);
    float x2 = std::min(a[3], b[3]), y2 = std::min(a[4], b[4]);
    float inter = std::max(0.0f, x2 - x1) * std::max(0.0f, y2 - y1);
    float area_a = std::max(0.0f, a[3] - a[1]) * std::max(0.0f, a[4] - a[2]);
    float area_b = std::max(0.0f, b[3] - b[1]) * std::max(0.0f, b[4] - b[2]);
    float uni = area_a + area_b - inter;
    return uni > 0.0f ? inter / uni : 0.0f;
  };

  // Sort candidate indices by descending score.
  std::vector<int64_t> order(n);
  for (int64_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return pb[a * 5] > pb[b * 5];
  });

  int64_t num_kept = 0;
  for (int64_t oi = 0; oi < n; ++oi) {
    const float* cand = pb + order[oi] * 5;
    if (cand[0] < static_cast<float>(score_thresh)) continue;
    bool suppressed = false;
    for (int64_t j = 0; j < num_kept; ++j) {
      if (iou(cand, pk + j * 5) > static_cast<float>(iou_thresh)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) {
      for (int64_t f = 0; f < 5; ++f) pk[num_kept * 5 + f] = cand[f];
      num_kept++;
    }
  }
  // Zero the tail so upper-bound storage has defined contents.
  for (int64_t i = num_kept * 5; i < n * 5; ++i) pk[i] = 0.0f;
  count.data<int64_t>()[0] = num_kept;
}

// sum over one axis.
void Sum(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
         const ir::Attrs& attrs) {
  const NDArray& x = in[0];
  const NDArray& y = out[0];
  int64_t axis = attrs.GetInt("axis", -1);
  int64_t rank = x.ndim();
  if (axis < 0) axis += rank;
  int64_t outer = 1, axis_n = x.shape()[axis], inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= x.shape()[i];
  for (int64_t i = axis + 1; i < rank; ++i) inner *= x.shape()[i];
  const float* px = x.data<float>();
  float* py = y.data<float>();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      float acc = 0.0f;
      for (int64_t a = 0; a < axis_n; ++a) acc += px[(o * axis_n + a) * inner + i];
      py[o * inner + i] = acc;
    }
  }
}

}  // namespace

void RegisterNNKernels() {
  KernelRegistry::Global()->Register("nn.softmax", Softmax);
  KernelRegistry::Global()->Register("nn.layer_norm", LayerNorm);
  KernelRegistry::Global()->Register("nn.lstm_cell", LSTMCell);
  KernelRegistry::Global()->Register("nn.nms", NMS);
  KernelRegistry::Global()->Register("sum", Sum);
}

}  // namespace kernels
}  // namespace nimble
