// Elementwise/broadcast kernel building blocks, shared with the fused
// kernels (src/kernels/fused.cc) and the codegen dispatch layer.
#pragma once

#include <cmath>
#include <cstdint>

#include "src/runtime/ndarray.h"
#include "src/support/logging.h"

namespace nimble {
namespace kernels {

/// Opcode for a scalar elementwise operation. Shared between standalone
/// kernels and fused chains; stable values (serialized in executables).
enum class EwOp : int64_t {
  kAdd = 0,
  kSubtract = 1,
  kMultiply = 2,
  kDivide = 3,
  kMaximum = 4,
  kMinimum = 5,
  kSigmoid = 6,
  kTanh = 7,
  kRelu = 8,
  kExp = 9,
  kNegative = 10,
  kSqrt = 11,
  kErf = 12,
  kGelu = 13,
};

/// Scalar application of a binary EwOp.
inline float ApplyBinary(EwOp op, float a, float b) {
  switch (op) {
    case EwOp::kAdd: return a + b;
    case EwOp::kSubtract: return a - b;
    case EwOp::kMultiply: return a * b;
    case EwOp::kDivide: return a / b;
    case EwOp::kMaximum: return a > b ? a : b;
    case EwOp::kMinimum: return a < b ? a : b;
    default: NIMBLE_FATAL() << "not a binary elementwise op";
  }
}

/// Scalar application of a unary EwOp.
inline float ApplyUnary(EwOp op, float a) {
  switch (op) {
    case EwOp::kSigmoid: return 1.0f / (1.0f + std::exp(-a));
    case EwOp::kTanh: return std::tanh(a);
    case EwOp::kRelu: return a > 0.0f ? a : 0.0f;
    case EwOp::kExp: return std::exp(a);
    case EwOp::kNegative: return -a;
    case EwOp::kSqrt: return std::sqrt(a);
    case EwOp::kErf: return std::erf(a);
    case EwOp::kGelu:
      return 0.5f * a * (1.0f + std::erf(a * 0.70710678118654752f));
    default: NIMBLE_FATAL() << "not a unary elementwise op";
  }
}

/// Maps op names ("add", "sigmoid", ...) to EwOp codes; returns false for
/// non-elementwise names.
bool EwOpFromName(const std::string& name, EwOp* out, bool* is_binary);

/// Generic strided broadcast binary loop over float32 tensors.
void BroadcastBinaryF32(EwOp op, const runtime::NDArray& a,
                        const runtime::NDArray& b, const runtime::NDArray& out);

}  // namespace kernels
}  // namespace nimble
