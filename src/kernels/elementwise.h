// Elementwise/broadcast kernel building blocks, shared with the fused
// kernels (src/kernels/fused.cc) and the codegen dispatch layer.
#pragma once

#include <cmath>
#include <cstdint>

#include "src/runtime/ndarray.h"
#include "src/support/logging.h"

namespace nimble {
namespace kernels {

/// Opcode for a scalar elementwise operation. Shared between standalone
/// kernels and fused chains; stable values (serialized in executables).
enum class EwOp : int64_t {
  kAdd = 0,
  kSubtract = 1,
  kMultiply = 2,
  kDivide = 3,
  kMaximum = 4,
  kMinimum = 5,
  kSigmoid = 6,
  kTanh = 7,
  kRelu = 8,
  kExp = 9,
  kNegative = 10,
  kSqrt = 11,
  kErf = 12,
  kGelu = 13,
};

// ---- fast deterministic transcendentals ------------------------------------
//
// Serving-hot sigmoid/tanh (the LSTM cell evaluates 5*hidden of them per
// row per timestep) route through these instead of libm: a Cephes-style
// degree-5 polynomial exp (~2 ulp) built from plain float arithmetic and a
// power-of-two bit splice. Two properties matter more than raw accuracy:
//   - deterministic: same bits for the same input on every platform and at
//     every optimization level (no libm version dependence), which the
//     serving layer's bit-identity contract relies on;
//   - one implementation everywhere: standalone kernels, fused chains, and
//     nn.lstm_cell all call these, so fused-vs-unfused and batched-vs-
//     per-request execution agree exactly.
// Error vs libm is ~1e-7 relative — far inside every model tolerance here.

/// exp(x) for float32, clamped to the finite range (|x| > 88 saturates
/// instead of overflowing to inf).
inline float FastExpF32(float x) {
  if (x > 88.0f) x = 88.0f;
  if (x < -88.0f) return 0.0f;
  // n = round(x / ln 2); reduce x to r = x - n*ln2 in [-ln2/2, ln2/2].
  float z = x * 1.44269504088896341f + 0.5f;
  float nf = static_cast<float>(static_cast<int32_t>(z - (z < 0.0f)));
  float r = x - nf * 0.693359375f;      // ln2 split high
  r -= nf * -2.12194440e-4f;            // ln2 split low
  // Degree-5 polynomial for exp(r) on the reduced interval (Cephes expf).
  float rr = r * r;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  float y = p * rr + r + 1.0f;
  // Splice 2^n into the exponent bits (n is in [-127, 127] after clamping).
  int32_t n = static_cast<int32_t>(nf);
  union {
    int32_t i;
    float f;
  } pow2;
  pow2.i = (n + 127) << 23;
  return y * pow2.f;
}

/// 1 / (1 + exp(-x)) via FastExpF32.
inline float FastSigmoidF32(float x) {
  return 1.0f / (1.0f + FastExpF32(-x));
}

/// tanh(x) = sign(x) * (1 - 2 / (exp(2|x|) + 1)), saturating past |x| > 9.
inline float FastTanhF32(float x) {
  float ax = x < 0.0f ? -x : x;
  if (ax > 9.0f) return x < 0.0f ? -1.0f : 1.0f;
  float e = FastExpF32(2.0f * ax);
  float t = 1.0f - 2.0f / (e + 1.0f);
  return x < 0.0f ? -t : t;
}

/// Scalar application of a binary EwOp.
inline float ApplyBinary(EwOp op, float a, float b) {
  switch (op) {
    case EwOp::kAdd: return a + b;
    case EwOp::kSubtract: return a - b;
    case EwOp::kMultiply: return a * b;
    case EwOp::kDivide: return a / b;
    case EwOp::kMaximum: return a > b ? a : b;
    case EwOp::kMinimum: return a < b ? a : b;
    default: NIMBLE_FATAL() << "not a binary elementwise op";
  }
}

/// Scalar application of a unary EwOp.
inline float ApplyUnary(EwOp op, float a) {
  switch (op) {
    case EwOp::kSigmoid: return FastSigmoidF32(a);
    case EwOp::kTanh: return FastTanhF32(a);
    case EwOp::kRelu: return a > 0.0f ? a : 0.0f;
    case EwOp::kExp: return std::exp(a);
    case EwOp::kNegative: return -a;
    case EwOp::kSqrt: return std::sqrt(a);
    case EwOp::kErf: return std::erf(a);
    case EwOp::kGelu:
      return 0.5f * a * (1.0f + std::erf(a * 0.70710678118654752f));
    default: NIMBLE_FATAL() << "not a unary elementwise op";
  }
}

/// Maps op names ("add", "sigmoid", ...) to EwOp codes; returns false for
/// non-elementwise names.
bool EwOpFromName(const std::string& name, EwOp* out, bool* is_binary);

/// Generic strided broadcast binary loop over float32 tensors.
void BroadcastBinaryF32(EwOp op, const runtime::NDArray& a,
                        const runtime::NDArray& b, const runtime::NDArray& out);

}  // namespace kernels
}  // namespace nimble
