#include "src/kernels/elementwise.h"

#include <cstring>

#include "src/kernels/registry.h"

namespace nimble {
namespace kernels {

using runtime::DataType;
using runtime::DTypeCode;
using runtime::NDArray;
using runtime::ShapeVec;

bool EwOpFromName(const std::string& name, EwOp* out, bool* is_binary) {
  struct Entry {
    const char* name;
    EwOp op;
    bool binary;
  };
  static const Entry table[] = {
      {"add", EwOp::kAdd, true},           {"subtract", EwOp::kSubtract, true},
      {"multiply", EwOp::kMultiply, true}, {"divide", EwOp::kDivide, true},
      {"maximum", EwOp::kMaximum, true},   {"minimum", EwOp::kMinimum, true},
      {"sigmoid", EwOp::kSigmoid, false},  {"tanh", EwOp::kTanh, false},
      {"relu", EwOp::kRelu, false},        {"exp", EwOp::kExp, false},
      {"negative", EwOp::kNegative, false},{"sqrt", EwOp::kSqrt, false},
      {"erf", EwOp::kErf, false},          {"gelu", EwOp::kGelu, false},
  };
  for (const Entry& e : table) {
    if (name == e.name) {
      *out = e.op;
      *is_binary = e.binary;
      return true;
    }
  }
  return false;
}

namespace {

/// Row-major strides aligned to `out_rank` with stride 0 on broadcast dims.
std::vector<int64_t> BroadcastStrides(const ShapeVec& shape, size_t out_rank,
                                      const ShapeVec& out_shape) {
  std::vector<int64_t> strides(out_rank, 0);
  int64_t running = 1;
  for (size_t i = 0; i < shape.size(); ++i) {
    size_t src = shape.size() - 1 - i;
    size_t dst = out_rank - 1 - i;
    if (shape[src] == out_shape[dst]) {
      strides[dst] = running;
    } else {
      NIMBLE_CHECK_EQ(shape[src], 1) << "broadcast shape mismatch at runtime";
      strides[dst] = 0;
    }
    running *= shape[src];
  }
  return strides;
}

template <typename T, typename F>
void BinaryLoop(F f, const NDArray& a, const NDArray& b, const NDArray& out) {
  const ShapeVec& os = out.shape();
  int64_t n = out.num_elements();
  const T* pa = a.data<T>();
  const T* pb = b.data<T>();
  T* po = out.data<T>();
  // Fast path: identical shapes.
  if (a.shape() == os && b.shape() == os) {
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
    return;
  }
  // Fast path: rhs is a scalar.
  if (b.num_elements() == 1 && a.shape() == os) {
    T s = pb[0];
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], s);
    return;
  }
  if (a.num_elements() == 1 && b.shape() == os) {
    T s = pa[0];
    for (int64_t i = 0; i < n; ++i) po[i] = f(s, pb[i]);
    return;
  }
  // General strided broadcast.
  size_t rank = os.size();
  auto sa = BroadcastStrides(a.shape(), rank, os);
  auto sb = BroadcastStrides(b.shape(), rank, os);
  std::vector<int64_t> idx(rank, 0);
  int64_t offa = 0, offb = 0;
  for (int64_t linear = 0; linear < n; ++linear) {
    po[linear] = f(pa[offa], pb[offb]);
    for (size_t d = rank; d-- > 0;) {
      idx[d]++;
      offa += sa[d];
      offb += sb[d];
      if (idx[d] < os[d]) break;
      offa -= sa[d] * os[d];
      offb -= sb[d] * os[d];
      idx[d] = 0;
    }
  }
}

template <typename TIn, typename TOut, typename F>
void CompareLoop(F f, const NDArray& a, const NDArray& b, const NDArray& out) {
  const ShapeVec& os = out.shape();
  int64_t n = out.num_elements();
  const TIn* pa = a.data<TIn>();
  const TIn* pb = b.data<TIn>();
  TOut* po = static_cast<TOut*>(out.raw_data());
  if (a.shape() == os && b.shape() == os) {
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]) ? 1 : 0;
    return;
  }
  size_t rank = os.size();
  auto sa = BroadcastStrides(a.shape(), rank, os);
  auto sb = BroadcastStrides(b.shape(), rank, os);
  std::vector<int64_t> idx(rank, 0);
  int64_t offa = 0, offb = 0;
  for (int64_t linear = 0; linear < n; ++linear) {
    po[linear] = f(pa[offa], pb[offb]) ? 1 : 0;
    for (size_t d = rank; d-- > 0;) {
      idx[d]++;
      offa += sa[d];
      offb += sb[d];
      if (idx[d] < os[d]) break;
      offa -= sa[d] * os[d];
      offb -= sb[d] * os[d];
      idx[d] = 0;
    }
  }
}

template <typename F32Op, typename I64Op>
void BinaryDispatch(F32Op f32_op, I64Op i64_op, const std::vector<NDArray>& in,
                    const std::vector<NDArray>& out) {
  NIMBLE_CHECK_EQ(in.size(), 2u);
  NIMBLE_CHECK_EQ(out.size(), 1u);
  switch (in[0].dtype().code()) {
    case DTypeCode::kFloat32:
      BinaryLoop<float>(f32_op, in[0], in[1], out[0]);
      break;
    case DTypeCode::kInt64:
      BinaryLoop<int64_t>(i64_op, in[0], in[1], out[0]);
      break;
    case DTypeCode::kInt32:
      BinaryLoop<int32_t>(i64_op, in[0], in[1], out[0]);
      break;
    default:
      NIMBLE_FATAL() << "binary elementwise: unsupported dtype "
                     << in[0].dtype().ToString();
  }
}

void RegisterBinary(const std::string& name, EwOp op) {
  KernelRegistry::Global()->Register(
      name, [op](const std::vector<NDArray>& in, const std::vector<NDArray>& out,
                 const ir::Attrs&) {
        BinaryDispatch(
            [op](float a, float b) { return ApplyBinary(op, a, b); },
            [op](int64_t a, int64_t b) -> int64_t {
              switch (op) {
                case EwOp::kAdd: return a + b;
                case EwOp::kSubtract: return a - b;
                case EwOp::kMultiply: return a * b;
                case EwOp::kDivide: return a / b;
                case EwOp::kMaximum: return a > b ? a : b;
                case EwOp::kMinimum: return a < b ? a : b;
                default: NIMBLE_FATAL() << "bad integer binary op";
              }
            },
            in, out);
      });
}

template <typename F>
void RegisterCompare(const std::string& name, F cmp) {
  KernelRegistry::Global()->Register(
      name, [cmp](const std::vector<NDArray>& in, const std::vector<NDArray>& out,
                  const ir::Attrs&) {
        NIMBLE_CHECK_EQ(in.size(), 2u);
        switch (in[0].dtype().code()) {
          case DTypeCode::kFloat32:
            CompareLoop<float, uint8_t>(cmp, in[0], in[1], out[0]);
            break;
          case DTypeCode::kInt64:
            CompareLoop<int64_t, uint8_t>(cmp, in[0], in[1], out[0]);
            break;
          default:
            NIMBLE_FATAL() << "compare: unsupported dtype";
        }
      });
}

void RegisterUnary(const std::string& name, EwOp op) {
  KernelRegistry::Global()->Register(
      name, [op](const std::vector<NDArray>& in, const std::vector<NDArray>& out,
                 const ir::Attrs&) {
        NIMBLE_CHECK_EQ(in.size(), 1u);
        NIMBLE_CHECK_EQ(out.size(), 1u);
        NIMBLE_CHECK(in[0].dtype() == DataType::Float32())
            << "unary elementwise expects float32";
        const float* pa = in[0].data<float>();
        float* po = out[0].data<float>();
        int64_t n = out[0].num_elements();
        for (int64_t i = 0; i < n; ++i) po[i] = ApplyUnary(op, pa[i]);
      });
}

}  // namespace

void BroadcastBinaryF32(EwOp op, const NDArray& a, const NDArray& b,
                        const NDArray& out) {
  BinaryLoop<float>([op](float x, float y) { return ApplyBinary(op, x, y); },
                    a, b, out);
}

void RegisterElemwiseKernels() {
  RegisterBinary("add", EwOp::kAdd);
  RegisterBinary("subtract", EwOp::kSubtract);
  RegisterBinary("multiply", EwOp::kMultiply);
  RegisterBinary("divide", EwOp::kDivide);
  RegisterBinary("maximum", EwOp::kMaximum);
  RegisterBinary("minimum", EwOp::kMinimum);

  RegisterCompare("less", [](auto a, auto b) { return a < b; });
  RegisterCompare("greater", [](auto a, auto b) { return a > b; });
  RegisterCompare("equal", [](auto a, auto b) { return a == b; });
  RegisterCompare("less_equal", [](auto a, auto b) { return a <= b; });
  RegisterCompare("greater_equal", [](auto a, auto b) { return a >= b; });

  RegisterUnary("sigmoid", EwOp::kSigmoid);
  RegisterUnary("tanh", EwOp::kTanh);
  RegisterUnary("relu", EwOp::kRelu);
  RegisterUnary("exp", EwOp::kExp);
  RegisterUnary("negative", EwOp::kNegative);
  RegisterUnary("sqrt", EwOp::kSqrt);
  RegisterUnary("erf", EwOp::kErf);
  RegisterUnary("gelu", EwOp::kGelu);

  // cast(x) -> attrs.dtype
  KernelRegistry::Global()->Register(
      "cast", [](const std::vector<NDArray>& in, const std::vector<NDArray>& out,
                 const ir::Attrs& attrs) {
        NIMBLE_CHECK_EQ(in.size(), 1u);
        const NDArray& x = in[0];
        const NDArray& y = out[0];
        int64_t n = x.num_elements();
        auto convert = [&](auto read) {
          switch (y.dtype().code()) {
            case DTypeCode::kFloat32: {
              float* p = y.data<float>();
              for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(read(i));
              break;
            }
            case DTypeCode::kInt64: {
              int64_t* p = y.data<int64_t>();
              for (int64_t i = 0; i < n; ++i) p[i] = static_cast<int64_t>(read(i));
              break;
            }
            case DTypeCode::kInt32: {
              int32_t* p = y.data<int32_t>();
              for (int64_t i = 0; i < n; ++i) p[i] = static_cast<int32_t>(read(i));
              break;
            }
            default:
              NIMBLE_FATAL() << "cast: unsupported target dtype";
          }
        };
        switch (x.dtype().code()) {
          case DTypeCode::kFloat32:
            convert([&](int64_t i) { return x.data<float>()[i]; });
            break;
          case DTypeCode::kInt64:
            convert([&](int64_t i) { return x.data<int64_t>()[i]; });
            break;
          case DTypeCode::kInt32:
            convert([&](int64_t i) { return x.data<int32_t>()[i]; });
            break;
          case DTypeCode::kBool:
          case DTypeCode::kUInt8:
            convert([&](int64_t i) {
              return static_cast<int64_t>(static_cast<uint8_t*>(x.raw_data())[i]);
            });
            break;
          default:
            NIMBLE_FATAL() << "cast: unsupported source dtype";
        }
      });

  // where(cond, a, b): exact per-element bit selection. `a`, `b`, and the
  // output share one shape; `cond` (bool) broadcasts against it. Selection
  // copies bits — no float arithmetic — so a masked batched recurrence
  // (src/vm/batch_spec.h) reproduces per-request results exactly.
  KernelRegistry::Global()->Register(
      "where",
      [](const std::vector<NDArray>& in, const std::vector<NDArray>& out,
         const ir::Attrs&) {
        NIMBLE_CHECK_EQ(in.size(), 3u);
        const NDArray& cond = in[0];
        const NDArray& a = in[1];
        const NDArray& b = in[2];
        const NDArray& y = out[0];
        NIMBLE_CHECK(a.shape() == y.shape() && b.shape() == y.shape())
            << "where: branches must match the output shape";
        NIMBLE_CHECK(a.dtype() == b.dtype() && a.dtype() == y.dtype())
            << "where: dtype mismatch";
        const auto* pc = static_cast<const uint8_t*>(cond.raw_data());
        const char* pa = static_cast<const char*>(a.raw_data());
        const char* pb = static_cast<const char*>(b.raw_data());
        char* py = static_cast<char*>(y.raw_data());
        size_t elem = y.dtype().bytes();
        int64_t n = y.num_elements();
        // Fast path for the batched-recurrence shape: cond [B, 1] selecting
        // whole rows of [B, W] states — one memcpy per row.
        if (y.ndim() == 2 && cond.ndim() == 2 &&
            cond.shape()[0] == y.shape()[0] && cond.shape()[1] == 1) {
          size_t row = static_cast<size_t>(y.shape()[1]) * elem;
          for (int64_t r = 0; r < y.shape()[0]; ++r) {
            std::memcpy(py + r * row, (pc[r] ? pa : pb) + r * row, row);
          }
          return;
        }
        size_t rank = y.shape().size();
        auto sc = BroadcastStrides(cond.shape(), rank, y.shape());
        std::vector<int64_t> idx(rank, 0);
        int64_t offc = 0;
        for (int64_t linear = 0; linear < n; ++linear) {
          const char* src = pc[offc] ? pa : pb;
          std::memcpy(py + linear * elem, src + linear * elem, elem);
          for (size_t d = rank; d-- > 0;) {
            idx[d]++;
            offc += sc[d];
            if (idx[d] < y.shape()[d]) break;
            offc -= sc[d] * y.shape()[d];
            idx[d] = 0;
          }
        }
      });

  // copy(x): raw memcpy; implements expand_dims/squeeze materialization.
  KernelRegistry::Global()->Register(
      "copy", [](const std::vector<NDArray>& in, const std::vector<NDArray>& out,
                 const ir::Attrs&) {
        NIMBLE_CHECK_EQ(in[0].nbytes(), out[0].nbytes());
        std::memcpy(out[0].raw_data(), in[0].raw_data(), in[0].nbytes());
      });
}

}  // namespace kernels
}  // namespace nimble
