#include "src/kernels/registry.h"

#include "src/codegen/dispatch.h"
#include "src/support/logging.h"

namespace nimble {
namespace kernels {

KernelRegistry* KernelRegistry::Global() {
  static KernelRegistry registry;
  return &registry;
}

void KernelRegistry::Register(const std::string& name, KernelFn fn) {
  kernels_[name] = [fn = std::move(fn)](const std::vector<NDArray>& inputs,
                                        const std::vector<NDArray>& outputs,
                                        const ir::Attrs& attrs,
                                        const KernelContext&) {
    fn(inputs, outputs, attrs);
  };
}

void KernelRegistry::Register(const std::string& name, ContextKernelFn fn) {
  kernels_[name] = std::move(fn);
}

bool KernelRegistry::Has(const std::string& name) const {
  return kernels_.count(name) > 0;
}

const ContextKernelFn& KernelRegistry::Get(const std::string& name) const {
  auto it = kernels_.find(name);
  NIMBLE_CHECK(it != kernels_.end()) << "no kernel registered for '" << name << "'";
  return it->second;
}

std::vector<std::string> KernelRegistry::ListNames() const {
  std::vector<std::string> names;
  for (const auto& [name, fn] : kernels_) names.push_back(name);
  return names;
}

void EnsureKernelsRegistered() {
  static bool done = [] {
    RegisterElemwiseKernels();
    RegisterDenseKernels();
    RegisterMatmulKernels();
    RegisterNNKernels();
    RegisterManipKernels();
    RegisterDynamicKernels();
    RegisterFusedKernels();
    return true;
  }();
  (void)done;
}

void RunKernel(const std::string& name, const std::vector<NDArray>& inputs,
               const std::vector<NDArray>& outputs, const ir::Attrs& attrs,
               const KernelContext& ctx) {
  EnsureKernelsRegistered();
  KernelRegistry::Global()->Get(name)(inputs, outputs, attrs, ctx);
}

void RunKernel(const std::string& name, const std::vector<NDArray>& inputs,
               const std::vector<NDArray>& outputs, const ir::Attrs& attrs) {
  // Private immutable table (full dispatch), constructed once and never
  // reconfigured: callers without their own table get race-free dispatch
  // without any process-global mutable state.
  static const codegen::DenseDispatchTable table(codegen::kTileRows);
  KernelContext ctx;
  ctx.dense_dispatch = &table;
  RunKernel(name, inputs, outputs, attrs, ctx);
}

}  // namespace kernels
}  // namespace nimble
