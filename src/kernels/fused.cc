// Fused kernels produced by the operator-fusion pass (src/pass/fuse.cc).
//
// A fused group is encoded in call attrs as a flat "steps" vector of
// (EwOp, rhs_kind, rhs_input_index) triples applied in order to the root
// value. Fusion's benefit is memory traffic: the chain makes a single pass
// over the output instead of materializing one intermediate per operator.
//
//   rhs_kind 0: unary step (no rhs)
//   rhs_kind 1: rhs is a same-shape tensor input
//   rhs_kind 2: rhs is a scalar tensor input
//   rhs_kind 3: rhs is a row vector [N] broadcast along the last axis
//
// Kernels:
//   fused_elemwise          inputs = (root, extras...)            out = chain(root)
//   fused_dense             inputs = (x, w, extras...)            out = chain(x·wᵀ)
//   fused_batch_matmul      inputs = (a, b, extras...)            out = chain(a·bᵀ)
#include "src/codegen/dispatch.h"
#include "src/kernels/elementwise.h"
#include "src/kernels/registry.h"

namespace nimble {
namespace kernels {

namespace {

struct Step {
  EwOp op;
  int64_t rhs_kind;
  int64_t rhs_index;  // index into the kernel's input list
};

std::vector<Step> DecodeSteps(const ir::Attrs& attrs) {
  auto flat = attrs.GetIntVec("steps");
  NIMBLE_CHECK_EQ(flat.size() % 3, 0u) << "malformed fused steps";
  std::vector<Step> steps;
  steps.reserve(flat.size() / 3);
  for (size_t i = 0; i < flat.size(); i += 3) {
    steps.push_back(Step{static_cast<EwOp>(flat[i]), flat[i + 1], flat[i + 2]});
  }
  return steps;
}

/// Applies the chain in-place over `out`, reading rhs operands from `inputs`.
void ApplyChain(const std::vector<Step>& steps,
                const std::vector<NDArray>& inputs, const NDArray& out) {
  int64_t n = out.num_elements();
  int64_t last = out.shape().empty() ? 1 : out.shape().back();
  float* po = out.data<float>();
  for (const Step& s : steps) {
    switch (s.rhs_kind) {
      case 0: {  // unary
        for (int64_t i = 0; i < n; ++i) po[i] = ApplyUnary(s.op, po[i]);
        break;
      }
      case 1: {  // same-shape tensor
        const NDArray& rhs = inputs[s.rhs_index];
        NIMBLE_CHECK_EQ(rhs.num_elements(), n) << "fused rhs shape mismatch";
        const float* pr = rhs.data<float>();
        for (int64_t i = 0; i < n; ++i) po[i] = ApplyBinary(s.op, po[i], pr[i]);
        break;
      }
      case 2: {  // scalar
        float v = inputs[s.rhs_index].data<float>()[0];
        for (int64_t i = 0; i < n; ++i) po[i] = ApplyBinary(s.op, po[i], v);
        break;
      }
      case 3: {  // row vector over the last axis
        const NDArray& rhs = inputs[s.rhs_index];
        NIMBLE_CHECK_EQ(rhs.num_elements(), last) << "fused bias shape mismatch";
        const float* pr = rhs.data<float>();
        // Row/column loops instead of po[i % last]: the per-element modulo
        // costs more than the arithmetic it indexes for.
        for (int64_t row = 0; row < n; row += last) {
          float* prow = po + row;
          for (int64_t j = 0; j < last; ++j) {
            prow[j] = ApplyBinary(s.op, prow[j], pr[j]);
          }
        }
        break;
      }
      default:
        NIMBLE_FATAL() << "bad fused rhs kind " << s.rhs_kind;
    }
  }
}

void FusedElemwise(const std::vector<NDArray>& in,
                   const std::vector<NDArray>& out, const ir::Attrs& attrs) {
  auto steps = DecodeSteps(attrs);
  const NDArray& root = in[0];
  const NDArray& y = out[0];
  NIMBLE_CHECK_EQ(root.num_elements(), y.num_elements());
  std::memcpy(y.raw_data(), root.raw_data(), root.nbytes());
  ApplyChain(steps, in, y);
}

void FusedDense(const std::vector<NDArray>& in, const std::vector<NDArray>& out,
                const ir::Attrs& attrs, const KernelContext& ctx) {
  auto steps = DecodeSteps(attrs);
  ctx.dense_dispatch->Run(in[0], in[1], out[0], ctx.dense_config, ctx.pool);
  ApplyChain(steps, in, out[0]);
}

void FusedBatchMatmul(const std::vector<NDArray>& in,
                      const std::vector<NDArray>& out, const ir::Attrs& attrs,
                      const KernelContext& ctx) {
  auto steps = DecodeSteps(attrs);
  const NDArray& a = in[0];
  const NDArray& b = in[1];
  const NDArray& y = out[0];
  int64_t batch = a.shape()[0];
  int64_t m = a.shape()[1], k = a.shape()[2], n = b.shape()[1];
  const auto& table = *ctx.dense_dispatch;
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* py = y.data<float>();
  for (int64_t bi = 0; bi < batch; ++bi) {
    table.Run(pa + bi * m * k, pb + bi * n * k, py + bi * m * n, m, n, k,
              ctx.dense_config, ctx.pool);
  }
  ApplyChain(steps, in, y);
}

}  // namespace

void RegisterFusedKernels() {
  KernelRegistry::Global()->Register("fused_elemwise", FusedElemwise);
  KernelRegistry::Global()->Register("fused_dense", ContextKernelFn(FusedDense));
  KernelRegistry::Global()->Register("fused_batch_matmul",
                                     ContextKernelFn(FusedBatchMatmul));
}

}  // namespace kernels
}  // namespace nimble
