// nn.batch_matmul(a: [B, M, K], b: [B, N, K]) -> [B, M, N].
// Each batch slice reuses the dense dispatch path (through the caller's
// KernelContext table) so attention matmuls with dynamic sequence length
// also benefit from residue specialization.
#include "src/codegen/dispatch.h"
#include "src/kernels/registry.h"

namespace nimble {
namespace kernels {

void RegisterMatmulKernels() {
  KernelRegistry::Global()->Register(
      "nn.batch_matmul",
      ContextKernelFn([](const std::vector<NDArray>& in,
                         const std::vector<NDArray>& out, const ir::Attrs&,
                         const KernelContext& ctx) {
        const NDArray& a = in[0];
        const NDArray& b = in[1];
        const NDArray& y = out[0];
        NIMBLE_CHECK_EQ(a.ndim(), 3);
        NIMBLE_CHECK_EQ(b.ndim(), 3);
        int64_t batch = a.shape()[0];
        int64_t m = a.shape()[1], k = a.shape()[2], n = b.shape()[1];
        NIMBLE_CHECK_EQ(b.shape()[0], batch);
        NIMBLE_CHECK_EQ(b.shape()[2], k);
        const float* pa = a.data<float>();
        const float* pb = b.data<float>();
        float* py = y.data<float>();
        const auto& table = *ctx.dense_dispatch;
        for (int64_t bi = 0; bi < batch; ++bi) {
          table.Run(pa + bi * m * k, pb + bi * n * k, py + bi * m * n, m, n, k,
                    ctx.dense_config, ctx.pool);
        }
      }));
}

}  // namespace kernels
}  // namespace nimble
