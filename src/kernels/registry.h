// Kernel registry: maps kernel names to host implementations.
//
// Kernels follow the destination-passing convention established by the
// memory-planning pass (§4.3): outputs are pre-allocated by the caller and
// passed as mutable arguments (the IR's invoke_mut). A kernel may not
// allocate; the only exception is that upper-bound ops (§4.2) write their
// true output extent into a dedicated scalar output.
//
// The dispatch layer (src/codegen) may register several shape-specialized
// variants for one op and route between them at runtime (§4.5).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/ir/attrs.h"
#include "src/runtime/ndarray.h"

namespace nimble {
namespace kernels {

using runtime::NDArray;

using KernelFn = std::function<void(const std::vector<NDArray>& inputs,
                                    const std::vector<NDArray>& outputs,
                                    const ir::Attrs& attrs)>;

class KernelRegistry {
 public:
  static KernelRegistry* Global();

  void Register(const std::string& name, KernelFn fn);
  bool Has(const std::string& name) const;
  const KernelFn& Get(const std::string& name) const;
  std::vector<std::string> ListNames() const;

 private:
  std::map<std::string, KernelFn> kernels_;
};

/// Idempotently registers every built-in kernel.
void EnsureKernelsRegistered();

/// Convenience: run a kernel by name (used by tests and the eager baseline).
void RunKernel(const std::string& name, const std::vector<NDArray>& inputs,
               const std::vector<NDArray>& outputs, const ir::Attrs& attrs = {});

// Registration hooks, one per translation unit.
void RegisterElemwiseKernels();
void RegisterDenseKernels();
void RegisterMatmulKernels();
void RegisterNNKernels();
void RegisterManipKernels();
void RegisterDynamicKernels();
void RegisterFusedKernels();

}  // namespace kernels
}  // namespace nimble
