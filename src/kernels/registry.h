// Kernel registry: maps kernel names to host implementations.
//
// Kernels follow the destination-passing convention established by the
// memory-planning pass (§4.3): outputs are pre-allocated by the caller and
// passed as mutable arguments (the IR's invoke_mut). A kernel may not
// allocate; the only exception is that upper-bound ops (§4.2) write their
// true output extent into a dedicated scalar output.
//
// The dispatch layer (src/codegen) may register several shape-specialized
// variants for one op and route between them at runtime (§4.5).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/ir/attrs.h"
#include "src/runtime/ndarray.h"

namespace nimble {

namespace codegen {
class DenseDispatchTable;
class KernelPool;
struct DenseConfig;
}  // namespace codegen

namespace kernels {

using runtime::NDArray;

/// Per-call execution context threaded from the caller into every kernel.
/// The VM fills it from the executable it is bound to, which is how
/// residue-dispatch state stays per-executable instead of process-global
/// (see the ownership contract in src/codegen/dispatch.h). The context is
/// read-only from the kernel's point of view and borrowed for the duration
/// of the call only — kernels must not retain pointers into it.
struct KernelContext {
  /// Residue-specialized dense dispatch table (§4.5). Never null when a
  /// kernel is invoked through the registry: the VM points it at its
  /// executable's table, RunKernel at its private immutable table.
  const codegen::DenseDispatchTable* dense_dispatch = nullptr;
  /// Tuner-chosen cache-blocking config for this executable's dense shapes
  /// (src/codegen/tuner.h). Null => the default DenseConfig; the VM points
  /// it at its executable's baked (possibly tuned) config.
  const codegen::DenseConfig* dense_config = nullptr;
  /// Intra-op kernel pool for large dense calls (src/codegen/parallel.h).
  /// Null => single-threaded.
  codegen::KernelPool* pool = nullptr;
};

using KernelFn = std::function<void(const std::vector<NDArray>& inputs,
                                    const std::vector<NDArray>& outputs,
                                    const ir::Attrs& attrs)>;

/// Kernels that consume the context (dense / batch_matmul / fused dense
/// chains) register in this form; context-free kernels register as KernelFn
/// and are wrapped.
using ContextKernelFn = std::function<void(const std::vector<NDArray>& inputs,
                                           const std::vector<NDArray>& outputs,
                                           const ir::Attrs& attrs,
                                           const KernelContext& ctx)>;

class KernelRegistry {
 public:
  static KernelRegistry* Global();

  /// Registers a context-free kernel (wrapped to ignore the context).
  void Register(const std::string& name, KernelFn fn);
  /// Registers a context-aware kernel.
  void Register(const std::string& name, ContextKernelFn fn);
  bool Has(const std::string& name) const;
  const ContextKernelFn& Get(const std::string& name) const;
  std::vector<std::string> ListNames() const;

 private:
  std::map<std::string, ContextKernelFn> kernels_;
};

/// Idempotently registers every built-in kernel.
void EnsureKernelsRegistered();

/// Runs a kernel by name under a caller-supplied context (the caller owns
/// the dispatch table, per the ownership contract in src/codegen/dispatch.h).
void RunKernel(const std::string& name, const std::vector<NDArray>& inputs,
               const std::vector<NDArray>& outputs, const ir::Attrs& attrs,
               const KernelContext& ctx);

/// Convenience for tests and the constant-folding pass: runs a kernel under
/// a private, immutable, fully-specialized dispatch table owned by this
/// entry point (never reconfigured, so it is safe from any thread and
/// cannot perturb — or be perturbed by — any executable's table).
void RunKernel(const std::string& name, const std::vector<NDArray>& inputs,
               const std::vector<NDArray>& outputs, const ir::Attrs& attrs = {});

// Registration hooks, one per translation unit.
void RegisterElemwiseKernels();
void RegisterDenseKernels();
void RegisterMatmulKernels();
void RegisterNNKernels();
void RegisterManipKernels();
void RegisterDynamicKernels();
void RegisterFusedKernels();

}  // namespace kernels
}  // namespace nimble
