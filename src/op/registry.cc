#include "src/op/registry.h"

#include <mutex>
#include <unordered_map>

#include "src/support/logging.h"

namespace nimble {
namespace op {

OpRegistry* OpRegistry::Global() {
  static OpRegistry registry;
  return &registry;
}

OpInfo& OpRegistry::Register(const std::string& name) {
  auto& info = ops_[name];
  info.name = name;
  if (info.kernel_name.empty()) info.kernel_name = name;
  return info;
}

const OpInfo& OpRegistry::Get(const std::string& name) const {
  auto it = ops_.find(name);
  NIMBLE_CHECK(it != ops_.end()) << "unknown operator '" << name << "'";
  return it->second;
}

std::vector<std::string> OpRegistry::ListNames() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, info] : ops_) names.push_back(name);
  return names;
}

ir::Op GetOp(const std::string& name) {
  EnsureOpsRegistered();
  NIMBLE_CHECK(OpRegistry::Global()->Has(name))
      << "unknown operator '" << name << "'";
  static std::unordered_map<std::string, ir::Op> interned;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto it = interned.find(name);
  if (it != interned.end()) return it->second;
  auto op = std::make_shared<ir::OpNode>(name);
  interned[name] = op;
  return op;
}

const OpInfo& InfoOf(const ir::Expr& op_expr) {
  return OpRegistry::Global()->Get(ir::AsOp(op_expr)->name);
}

ir::Expr Call1(const std::string& op, ir::Expr a, ir::Attrs attrs) {
  return ir::MakeCall(GetOp(op), {std::move(a)}, std::move(attrs));
}
ir::Expr Call2(const std::string& op, ir::Expr a, ir::Expr b, ir::Attrs attrs) {
  return ir::MakeCall(GetOp(op), {std::move(a), std::move(b)}, std::move(attrs));
}
ir::Expr Call3(const std::string& op, ir::Expr a, ir::Expr b, ir::Expr c,
               ir::Attrs attrs) {
  return ir::MakeCall(GetOp(op), {std::move(a), std::move(b), std::move(c)},
                      std::move(attrs));
}

}  // namespace op
}  // namespace nimble
