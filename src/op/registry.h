// Operator registry.
//
// Every primitive operator carries:
//  - a *type relation* used at compile time by type inference (§4.1), which
//    must propagate Any/symbolic dims per the paper's rules;
//  - a *shape function* executed at runtime to compute output shapes for
//    storage allocation and late type checking (§4.2), in one of three
//    modes: data-independent, data-dependent, upper-bound;
//  - a *fusion pattern* driving the fusion pass, with the paper's policy
//    that data-dependent / upper-bound ops must not be fused into
//    composites (§4.2);
//  - the name of the kernel implementing it (resolved in the kernel
//    registry; the dispatch layer may map one op onto several
//    shape-specialized kernel variants, §4.5).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/ir/attrs.h"
#include "src/ir/expr.h"
#include "src/ir/type.h"
#include "src/runtime/ndarray.h"

namespace nimble {
namespace op {

/// TVM-style fusion pattern lattice.
enum class FusePattern : uint8_t {
  kElemWise = 0,        // out[i] = f(in[i])
  kBroadcast = 1,       // out[i] = f(in[map(i)]), map monotone
  kInjective = 2,       // arbitrary injective index map (transpose, reshape)
  kCommReduce = 3,      // reductions
  kOutEWiseFusable = 4, // complex op whose *output* supports elemwise fusion (dense)
  kOpaque = 5,          // never fused
};

enum class ShapeFuncMode : uint8_t {
  kDataIndependent = 0,  // output shape depends only on input shapes
  kDataDependent = 1,    // needs concrete input values (arange, unique)
  kUpperBound = 2,       // cheap upper bound; kernel reports true shape
};

/// Compile-time type relation: infers the output type from input types.
/// Throws nimble::Error on a (statically detectable) type error; with Any
/// present, some checks are deferred to runtime (gradual typing, §4.1).
using TypeRel =
    std::function<ir::Type(const std::vector<ir::Type>&, const ir::Attrs&)>;

/// Runtime shape function. `in_shapes` are the concrete input shapes;
/// `in_data` is non-empty only for data-dependent shape functions. Returns
/// one shape per output tensor.
using ShapeFn = std::function<std::vector<runtime::ShapeVec>(
    const std::vector<runtime::ShapeVec>& in_shapes,
    const std::vector<runtime::NDArray>& in_data, const ir::Attrs& attrs)>;

struct OpInfo {
  std::string name;
  int num_inputs = -1;  // -1 = variadic
  TypeRel type_rel;
  ShapeFuncMode shape_mode = ShapeFuncMode::kDataIndependent;
  ShapeFn shape_fn;
  FusePattern pattern = FusePattern::kOpaque;
  std::string kernel_name;  // defaults to op name
  int num_outputs = 1;

  OpInfo& set_num_inputs(int n) { num_inputs = n; return *this; }
  OpInfo& set_num_outputs(int n) { num_outputs = n; return *this; }
  OpInfo& set_type_rel(TypeRel rel) { type_rel = std::move(rel); return *this; }
  OpInfo& set_shape_fn(ShapeFuncMode mode, ShapeFn fn) {
    shape_mode = mode;
    shape_fn = std::move(fn);
    return *this;
  }
  OpInfo& set_pattern(FusePattern p) { pattern = p; return *this; }
  OpInfo& set_kernel(std::string name) { kernel_name = std::move(name); return *this; }
};

class OpRegistry {
 public:
  static OpRegistry* Global();

  OpInfo& Register(const std::string& name);
  bool Has(const std::string& name) const { return ops_.count(name) > 0; }
  const OpInfo& Get(const std::string& name) const;
  std::vector<std::string> ListNames() const;

 private:
  std::map<std::string, OpInfo> ops_;
};

/// Interned operator reference for building Call expressions.
ir::Op GetOp(const std::string& name);

/// Info for the operator referenced by `op_expr`.
const OpInfo& InfoOf(const ir::Expr& op_expr);

/// Ensures all built-in operators are registered (idempotent). Called by
/// GetOp and the compiler entry points.
void EnsureOpsRegistered();

// ---- convenience call builders used by model code and tests ---------------

ir::Expr Call1(const std::string& op, ir::Expr a, ir::Attrs attrs = {});
ir::Expr Call2(const std::string& op, ir::Expr a, ir::Expr b, ir::Attrs attrs = {});
ir::Expr Call3(const std::string& op, ir::Expr a, ir::Expr b, ir::Expr c,
               ir::Attrs attrs = {});

}  // namespace op
}  // namespace nimble
