// Registration of all built-in operators: compile-time type relations
// (§4.1), runtime shape functions in the three modes of §4.2, fusion
// patterns, and kernel bindings.
#include <algorithm>
#include <numeric>

#include "src/op/registry.h"
#include "src/support/logging.h"

namespace nimble {
namespace op {

using ir::Attrs;
using ir::Dim;
using ir::Shape;
using ir::TensorType;
using ir::TensorTypeNode;
using ir::TupleType;
using ir::Type;
using runtime::DataType;
using runtime::ShapeVec;

namespace {

const TensorTypeNode* ExpectTensor(const Type& t, const char* op, int index) {
  NIMBLE_CHECK(t != nullptr && t->kind() == ir::TypeKind::kTensor)
      << op << ": input " << index << " must be a tensor, got "
      << ir::TypeToString(t);
  return static_cast<const TensorTypeNode*>(t.get());
}

// ---- dim algebra for type relations ---------------------------------------

/// Broadcast rule with the paper's Any cases:
///   (Any, 1) -> Any,   (Any, d) -> d for d > 1,   (Any, Any) -> Any.
/// Identical symbolic dims broadcast to themselves. Statically incompatible
/// extents are a compile-time error; Any-vs-d is deferred to runtime
/// (gradual typing).
Dim BroadcastDim(const Dim& a, const Dim& b, const char* op) {
  if (a.is_static() && b.is_static()) {
    if (a.value() == b.value()) return a;
    if (a.value() == 1) return b;
    if (b.value() == 1) return a;
    NIMBLE_FATAL() << op << ": incompatible broadcast dims " << a.ToString()
                   << " vs " << b.ToString();
  }
  if (a.is_static()) return a.value() == 1 ? b : a;  // (1,Any)->Any, (d,Any)->d
  if (b.is_static()) return b.value() == 1 ? a : b;
  if (a.is_sym() && b.is_sym() && a.sym_id() == b.sym_id()) return a;
  return Dim::Any();
}

/// Unification for dims required to be *equal* (e.g. contraction axes):
/// prefers the more specific side; mismatched statics are an error.
Dim UnifyDim(const Dim& a, const Dim& b, const char* op) {
  if (a.is_static() && b.is_static()) {
    NIMBLE_CHECK_EQ(a.value(), b.value()) << op << ": dimension mismatch";
    return a;
  }
  if (a.is_static()) return a;
  if (b.is_static()) return b;
  if (a.is_sym()) return a;
  if (b.is_sym()) return b;
  return Dim::Any();
}

// ---- shared type relations -------------------------------------------------

Type BroadcastRel(const std::vector<Type>& in, const Attrs& attrs) {
  NIMBLE_CHECK_EQ(in.size(), 2u);
  const auto* a = ExpectTensor(in[0], "broadcast", 0);
  const auto* b = ExpectTensor(in[1], "broadcast", 1);
  NIMBLE_CHECK(a->dtype == b->dtype)
      << "broadcast: dtype mismatch " << a->dtype.ToString() << " vs "
      << b->dtype.ToString();
  size_t rank = std::max(a->shape.size(), b->shape.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    // Align from the trailing dimension, NumPy style.
    bool ha = i < a->shape.size();
    bool hb = i < b->shape.size();
    const Dim one = Dim::Static(1);
    const Dim& da = ha ? a->shape[a->shape.size() - 1 - i] : one;
    const Dim& db = hb ? b->shape[b->shape.size() - 1 - i] : one;
    out[rank - 1 - i] = BroadcastDim(da, db, "broadcast");
  }
  return TensorType(std::move(out), a->dtype);
}

Type CompareRel(const std::vector<Type>& in, const Attrs& attrs) {
  Type t = BroadcastRel(in, attrs);
  return TensorType(ir::AsTensorType(t)->shape, DataType::Bool());
}

Type IdentityRel(const std::vector<Type>& in, const Attrs& attrs) {
  NIMBLE_CHECK_GE(in.size(), 1u);
  const auto* t = ExpectTensor(in[0], "identity", 0);
  return TensorType(t->shape, t->dtype);
}

ShapeVec BroadcastShape(const ShapeVec& a, const ShapeVec& b) {
  size_t rank = std::max(a.size(), b.size());
  ShapeVec out(rank);
  for (size_t i = 0; i < rank; ++i) {
    int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    NIMBLE_CHECK(da == db || da == 1 || db == 1)
        << "runtime broadcast mismatch: " << da << " vs " << db;
    out[rank - 1 - i] = std::max(da, db);
  }
  return out;
}

std::vector<ShapeVec> BroadcastShapeFn(const std::vector<ShapeVec>& in,
                                       const std::vector<runtime::NDArray>&,
                                       const Attrs&) {
  NIMBLE_CHECK_EQ(in.size(), 2u);
  return {BroadcastShape(in[0], in[1])};
}

std::vector<ShapeVec> IdentityShapeFn(const std::vector<ShapeVec>& in,
                                      const std::vector<runtime::NDArray>&,
                                      const Attrs&) {
  NIMBLE_CHECK_GE(in.size(), 1u);
  return {in[0]};
}

void RegisterBroadcastBinary(const std::string& name) {
  OpRegistry::Global()
      ->Register(name)
      .set_num_inputs(2)
      .set_type_rel(BroadcastRel)
      .set_shape_fn(ShapeFuncMode::kDataIndependent, BroadcastShapeFn)
      .set_pattern(FusePattern::kBroadcast);
}

void RegisterCompareBinary(const std::string& name) {
  OpRegistry::Global()
      ->Register(name)
      .set_num_inputs(2)
      .set_type_rel(CompareRel)
      .set_shape_fn(ShapeFuncMode::kDataIndependent, BroadcastShapeFn)
      .set_pattern(FusePattern::kBroadcast);
}

void RegisterElemwiseUnary(const std::string& name) {
  OpRegistry::Global()
      ->Register(name)
      .set_num_inputs(1)
      .set_type_rel(IdentityRel)
      .set_shape_fn(ShapeFuncMode::kDataIndependent, IdentityShapeFn)
      .set_pattern(FusePattern::kElemWise);
}

// ---- individual operators --------------------------------------------------

void RegisterDense() {
  // nn.dense(x: [M, K], w: [N, K]) -> [M, N]
  OpRegistry::Global()
      ->Register("nn.dense")
      .set_num_inputs(2)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* x = ExpectTensor(in[0], "nn.dense", 0);
        const auto* w = ExpectTensor(in[1], "nn.dense", 1);
        NIMBLE_CHECK_EQ(x->shape.size(), 2u) << "nn.dense: data must be 2-D";
        NIMBLE_CHECK_EQ(w->shape.size(), 2u) << "nn.dense: weight must be 2-D";
        UnifyDim(x->shape[1], w->shape[1], "nn.dense");  // contraction axis
        return TensorType({x->shape[0], w->shape[0]}, x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs&) -> std::vector<ShapeVec> {
                      return {{in[0][0], in[1][0]}};
                    })
      .set_pattern(FusePattern::kOutEWiseFusable);
}

void RegisterBiasAdd() {
  // nn.bias_add(x: [..., N], b: [N]) -> [..., N]
  OpRegistry::Global()
      ->Register("nn.bias_add")
      .set_num_inputs(2)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* x = ExpectTensor(in[0], "nn.bias_add", 0);
        const auto* b = ExpectTensor(in[1], "nn.bias_add", 1);
        NIMBLE_CHECK_EQ(b->shape.size(), 1u) << "nn.bias_add: bias must be 1-D";
        UnifyDim(x->shape.back(), b->shape[0], "nn.bias_add");
        return TensorType(x->shape, x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent, IdentityShapeFn)
      .set_pattern(FusePattern::kBroadcast);
}

void RegisterBatchMatmul() {
  // nn.batch_matmul(a: [B, M, K], b: [B, N, K]) -> [B, M, N]
  OpRegistry::Global()
      ->Register("nn.batch_matmul")
      .set_num_inputs(2)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* a = ExpectTensor(in[0], "nn.batch_matmul", 0);
        const auto* b = ExpectTensor(in[1], "nn.batch_matmul", 1);
        NIMBLE_CHECK_EQ(a->shape.size(), 3u);
        NIMBLE_CHECK_EQ(b->shape.size(), 3u);
        Dim batch = UnifyDim(a->shape[0], b->shape[0], "nn.batch_matmul");
        UnifyDim(a->shape[2], b->shape[2], "nn.batch_matmul");
        return TensorType({batch, a->shape[1], b->shape[1]}, a->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs&) -> std::vector<ShapeVec> {
                      return {{in[0][0], in[0][1], in[1][1]}};
                    })
      .set_pattern(FusePattern::kOutEWiseFusable);
}

void RegisterSoftmaxLayerNorm() {
  OpRegistry::Global()
      ->Register("nn.softmax")
      .set_num_inputs(1)
      .set_type_rel(IdentityRel)
      .set_shape_fn(ShapeFuncMode::kDataIndependent, IdentityShapeFn)
      .set_pattern(FusePattern::kOpaque);

  // nn.layer_norm(x, gamma: [N], beta: [N]) over the last axis.
  OpRegistry::Global()
      ->Register("nn.layer_norm")
      .set_num_inputs(3)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* x = ExpectTensor(in[0], "nn.layer_norm", 0);
        const auto* g = ExpectTensor(in[1], "nn.layer_norm", 1);
        const auto* b = ExpectTensor(in[2], "nn.layer_norm", 2);
        NIMBLE_CHECK_EQ(g->shape.size(), 1u);
        NIMBLE_CHECK_EQ(b->shape.size(), 1u);
        UnifyDim(x->shape.back(), g->shape[0], "nn.layer_norm");
        UnifyDim(x->shape.back(), b->shape[0], "nn.layer_norm");
        return TensorType(x->shape, x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent, IdentityShapeFn)
      .set_pattern(FusePattern::kOpaque);
}

void RegisterLSTMCell() {
  // nn.lstm_cell(gates: [B, 4H], c: [B, H]) -> ([B, H], [B, H])
  // The fused recurrence produced by the FuseLSTMCell pattern pass.
  OpRegistry::Global()
      ->Register("nn.lstm_cell")
      .set_num_inputs(2)
      .set_num_outputs(2)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* gates = ExpectTensor(in[0], "nn.lstm_cell", 0);
        const auto* c = ExpectTensor(in[1], "nn.lstm_cell", 1);
        NIMBLE_CHECK_EQ(gates->shape.size(), 2u);
        NIMBLE_CHECK_EQ(c->shape.size(), 2u);
        if (gates->shape[1].is_static() && c->shape[1].is_static()) {
          NIMBLE_CHECK_EQ(gates->shape[1].value(), 4 * c->shape[1].value())
              << "nn.lstm_cell: gates must have 4x hidden columns";
        }
        Type state = TensorType({gates->shape[0], c->shape[1]}, c->dtype);
        return TupleType({state, state});
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs&) -> std::vector<ShapeVec> {
                      ShapeVec state{in[0][0], in[1][1]};
                      return {state, state};
                    })
      .set_pattern(FusePattern::kOpaque);
}

void RegisterConcat() {
  // concat(x0, x1, ..., axis) — variadic.
  OpRegistry::Global()
      ->Register("concat")
      .set_num_inputs(-1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        NIMBLE_CHECK_GE(in.size(), 1u);
        int64_t axis = attrs.GetInt("axis", 0);
        const auto* first = ExpectTensor(in[0], "concat", 0);
        size_t rank = first->shape.size();
        NIMBLE_CHECK(axis >= 0 && static_cast<size_t>(axis) < rank)
            << "concat: axis out of range";
        Shape out = first->shape;
        int64_t static_sum = 0;
        bool all_static = true;
        for (size_t i = 0; i < in.size(); ++i) {
          const auto* t = ExpectTensor(in[i], "concat", static_cast<int>(i));
          NIMBLE_CHECK_EQ(t->shape.size(), rank) << "concat: rank mismatch";
          NIMBLE_CHECK(t->dtype == first->dtype) << "concat: dtype mismatch";
          for (size_t d = 0; d < rank; ++d) {
            if (static_cast<int64_t>(d) == axis) {
              if (t->shape[d].is_static()) {
                static_sum += t->shape[d].value();
              } else {
                all_static = false;
              }
            } else {
              out[d] = UnifyDim(out[d], t->shape[d], "concat");
            }
          }
        }
        out[axis] = all_static ? Dim::Static(static_sum) : Dim::Any();
        return TensorType(std::move(out), first->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs& attrs) -> std::vector<ShapeVec> {
                      int64_t axis = attrs.GetInt("axis", 0);
                      ShapeVec out = in[0];
                      for (size_t i = 1; i < in.size(); ++i) out[axis] += in[i][axis];
                      return {out};
                    })
      .set_pattern(FusePattern::kInjective);
}

void RegisterSplit() {
  // split(x, sections, axis) -> tuple of `sections` equal parts. The split
  // axis must be statically divisible.
  OpRegistry::Global()
      ->Register("split")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        const auto* x = ExpectTensor(in[0], "split", 0);
        int64_t sections = attrs.GetInt("sections");
        int64_t axis = attrs.GetInt("axis", 0);
        NIMBLE_CHECK(axis >= 0 && static_cast<size_t>(axis) < x->shape.size());
        Shape part = x->shape;
        if (part[axis].is_static()) {
          NIMBLE_CHECK_EQ(part[axis].value() % sections, 0)
              << "split: axis not divisible";
          part[axis] = Dim::Static(part[axis].value() / sections);
        } else {
          part[axis] = Dim::Any();
        }
        std::vector<Type> fields(sections, TensorType(part, x->dtype));
        return TupleType(std::move(fields));
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs& attrs) -> std::vector<ShapeVec> {
                      int64_t sections = attrs.GetInt("sections");
                      int64_t axis = attrs.GetInt("axis", 0);
                      ShapeVec part = in[0];
                      NIMBLE_CHECK_EQ(part[axis] % sections, 0);
                      part[axis] /= sections;
                      return std::vector<ShapeVec>(sections, part);
                    })
      .set_pattern(FusePattern::kOpaque);  // multi-output: keep out of fusion
}

void RegisterTake() {
  // take(data: [N, rest...], indices, axis=0) -> indices.shape + rest.
  OpRegistry::Global()
      ->Register("take")
      .set_num_inputs(2)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        const auto* data = ExpectTensor(in[0], "take", 0);
        const auto* idx = ExpectTensor(in[1], "take", 1);
        NIMBLE_CHECK(idx->dtype == DataType::Int64()) << "take: indices must be int64";
        NIMBLE_CHECK_GE(data->shape.size(), 1u);
        Shape out = idx->shape;
        for (size_t i = 1; i < data->shape.size(); ++i) out.push_back(data->shape[i]);
        return TensorType(std::move(out), data->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs&) -> std::vector<ShapeVec> {
                      ShapeVec out = in[1];
                      for (size_t i = 1; i < in[0].size(); ++i) out.push_back(in[0][i]);
                      return {out};
                    })
      .set_pattern(FusePattern::kInjective);
}

void RegisterShapeManip() {
  // expand_dims(x, axis) — inserts a length-1 dim.
  OpRegistry::Global()
      ->Register("expand_dims")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        const auto* x = ExpectTensor(in[0], "expand_dims", 0);
        int64_t axis = attrs.GetInt("axis", 0);
        NIMBLE_CHECK(axis >= 0 && static_cast<size_t>(axis) <= x->shape.size());
        Shape out = x->shape;
        out.insert(out.begin() + axis, Dim::Static(1));
        return TensorType(std::move(out), x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs& attrs) -> std::vector<ShapeVec> {
                      int64_t axis = attrs.GetInt("axis", 0);
                      ShapeVec out = in[0];
                      out.insert(out.begin() + axis, 1);
                      return {out};
                    })
      .set_pattern(FusePattern::kInjective)
      .set_kernel("copy");

  // squeeze(x, axis) — removes a length-1 dim (checked at runtime if dynamic).
  OpRegistry::Global()
      ->Register("squeeze")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        const auto* x = ExpectTensor(in[0], "squeeze", 0);
        int64_t axis = attrs.GetInt("axis", 0);
        NIMBLE_CHECK(axis >= 0 && static_cast<size_t>(axis) < x->shape.size());
        if (x->shape[axis].is_static()) {
          NIMBLE_CHECK_EQ(x->shape[axis].value(), 1) << "squeeze: dim not 1";
        }
        Shape out = x->shape;
        out.erase(out.begin() + axis);
        return TensorType(std::move(out), x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs& attrs) -> std::vector<ShapeVec> {
                      int64_t axis = attrs.GetInt("axis", 0);
                      ShapeVec out = in[0];
                      NIMBLE_CHECK_EQ(out[axis], 1);
                      out.erase(out.begin() + axis);
                      return {out};
                    })
      .set_pattern(FusePattern::kInjective)
      .set_kernel("copy");

  // transpose(x, axes)
  OpRegistry::Global()
      ->Register("transpose")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        const auto* x = ExpectTensor(in[0], "transpose", 0);
        auto axes = attrs.GetIntVec("axes");
        NIMBLE_CHECK_EQ(axes.size(), x->shape.size()) << "transpose: bad axes";
        Shape out(x->shape.size());
        for (size_t i = 0; i < axes.size(); ++i) out[i] = x->shape[axes[i]];
        return TensorType(std::move(out), x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs& attrs) -> std::vector<ShapeVec> {
                      auto axes = attrs.GetIntVec("axes");
                      ShapeVec out(in[0].size());
                      for (size_t i = 0; i < axes.size(); ++i) out[i] = in[0][axes[i]];
                      return {out};
                    })
      .set_pattern(FusePattern::kInjective);

  // reshape(x) with attr newshape; entries: >0 fixed, -1 infer one, 0 copy
  // the corresponding input dim. Lowered to the ReshapeTensor instruction.
  OpRegistry::Global()
      ->Register("reshape")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        const auto* x = ExpectTensor(in[0], "reshape", 0);
        auto newshape = attrs.GetIntVec("newshape");
        Shape out;
        int infer_at = -1;
        bool dynamic_elems = false;
        int64_t known = 1;
        for (size_t i = 0; i < newshape.size(); ++i) {
          if (newshape[i] == -1) {
            NIMBLE_CHECK_EQ(infer_at, -1) << "reshape: multiple -1";
            infer_at = static_cast<int>(i);
            out.push_back(Dim::Any());  // refined below if possible
          } else if (newshape[i] == 0) {
            NIMBLE_CHECK_LT(i, x->shape.size()) << "reshape: 0 out of range";
            out.push_back(x->shape[i]);
            if (!x->shape[i].is_static()) {
              dynamic_elems = true;
            } else {
              known *= x->shape[i].value();
            }
          } else {
            out.push_back(Dim::Static(newshape[i]));
            known *= newshape[i];
          }
        }
        // Infer the -1 entry when the input element count is fully static.
        if (infer_at >= 0 && !dynamic_elems && x->IsFullyStatic()) {
          int64_t total = 1;
          for (const Dim& d : x->shape) total *= d.value();
          NIMBLE_CHECK_EQ(total % known, 0) << "reshape: sizes do not divide";
          out[infer_at] = Dim::Static(total / known);
        }
        return TensorType(std::move(out), x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs& attrs) -> std::vector<ShapeVec> {
                      auto newshape = attrs.GetIntVec("newshape");
                      ShapeVec out;
                      int64_t known = 1;
                      int infer_at = -1;
                      for (size_t i = 0; i < newshape.size(); ++i) {
                        if (newshape[i] == -1) {
                          infer_at = static_cast<int>(i);
                          out.push_back(-1);
                        } else if (newshape[i] == 0) {
                          out.push_back(in[0][i]);
                          known *= in[0][i];
                        } else {
                          out.push_back(newshape[i]);
                          known *= newshape[i];
                        }
                      }
                      int64_t total =
                          std::accumulate(in[0].begin(), in[0].end(),
                                          int64_t{1}, std::multiplies<>());
                      if (infer_at >= 0) {
                        NIMBLE_CHECK_EQ(total % known, 0);
                        out[infer_at] = total / known;
                      } else {
                        NIMBLE_CHECK_EQ(total, known) << "reshape: element count";
                      }
                      return {out};
                    })
      .set_pattern(FusePattern::kOpaque)  // becomes a ReshapeTensor instruction
      .set_kernel("vm.reshape_tensor");
}

void RegisterReduce() {
  // sum(x, axis, keepdims)
  OpRegistry::Global()
      ->Register("sum")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        const auto* x = ExpectTensor(in[0], "sum", 0);
        int64_t axis = attrs.GetInt("axis", -1);
        bool keepdims = attrs.GetInt("keepdims", 0) != 0;
        if (axis < 0) axis += static_cast<int64_t>(x->shape.size());
        NIMBLE_CHECK(axis >= 0 && static_cast<size_t>(axis) < x->shape.size());
        Shape out = x->shape;
        if (keepdims) {
          out[axis] = Dim::Static(1);
        } else {
          out.erase(out.begin() + axis);
        }
        return TensorType(std::move(out), x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs& attrs) -> std::vector<ShapeVec> {
                      int64_t axis = attrs.GetInt("axis", -1);
                      bool keepdims = attrs.GetInt("keepdims", 0) != 0;
                      ShapeVec out = in[0];
                      if (axis < 0) axis += static_cast<int64_t>(out.size());
                      if (keepdims) {
                        out[axis] = 1;
                      } else {
                        out.erase(out.begin() + axis);
                      }
                      return {out};
                    })
      .set_pattern(FusePattern::kCommReduce);
}

void RegisterCast() {
  OpRegistry::Global()
      ->Register("cast")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        const auto* x = ExpectTensor(in[0], "cast", 0);
        DataType dtype = DataType::FromString(attrs.GetStr("dtype", "float32"));
        return TensorType(x->shape, dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent, IdentityShapeFn)
      .set_pattern(FusePattern::kElemWise);
}

// ---- dynamic-output-shape operators (§4.2) ---------------------------------

void RegisterArange() {
  // arange(start, stop, step) with int64 scalar inputs — the canonical
  // data-dependent shape function.
  OpRegistry::Global()
      ->Register("arange")
      .set_num_inputs(3)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        for (int i = 0; i < 3; ++i) {
          const auto* t = ExpectTensor(in[i], "arange", i);
          NIMBLE_CHECK(t->shape.empty()) << "arange: inputs must be scalars";
          NIMBLE_CHECK(t->dtype == DataType::Int64());
        }
        return TensorType(Shape{Dim::Any()}, DataType::Int64());
      })
      .set_shape_fn(ShapeFuncMode::kDataDependent,
                    [](const std::vector<ShapeVec>&,
                       const std::vector<runtime::NDArray>& data,
                       const Attrs&) -> std::vector<ShapeVec> {
                      NIMBLE_CHECK_EQ(data.size(), 3u)
                          << "arange shape function needs input values";
                      int64_t start = data[0].data<int64_t>()[0];
                      int64_t stop = data[1].data<int64_t>()[0];
                      int64_t step = data[2].data<int64_t>()[0];
                      NIMBLE_CHECK_NE(step, 0) << "arange: step must be nonzero";
                      int64_t n = step > 0 ? (stop - start + step - 1) / step
                                           : (start - stop - step - 1) / (-step);
                      return {{std::max<int64_t>(n, 0)}};
                    })
      .set_pattern(FusePattern::kOpaque);
}

void RegisterUnique() {
  // unique(x: [N]) -> sorted distinct values; output size is data dependent.
  OpRegistry::Global()
      ->Register("unique")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* x = ExpectTensor(in[0], "unique", 0);
        NIMBLE_CHECK_EQ(x->shape.size(), 1u) << "unique: input must be 1-D";
        return TensorType(Shape{Dim::Any()}, x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataDependent,
                    [](const std::vector<ShapeVec>&,
                       const std::vector<runtime::NDArray>& data,
                       const Attrs&) -> std::vector<ShapeVec> {
                      NIMBLE_CHECK_EQ(data.size(), 1u);
                      const auto& x = data[0];
                      NIMBLE_CHECK(x.dtype() == DataType::Int64())
                          << "unique kernel supports int64";
                      std::vector<int64_t> vals(
                          x.data<int64_t>(), x.data<int64_t>() + x.num_elements());
                      std::sort(vals.begin(), vals.end());
                      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
                      return {{static_cast<int64_t>(vals.size())}};
                    })
      .set_pattern(FusePattern::kOpaque);
}

void RegisterNMS() {
  // nn.nms(boxes: [N, 5]) with rows (score, x1, y1, x2, y2).
  // Upper-bound shape function (§4.2): computing the exact output size is as
  // expensive as the kernel itself, so allocate for N rows and have the
  // kernel report the true count; callers slice with slice_rows.
  OpRegistry::Global()
      ->Register("nn.nms")
      .set_num_inputs(1)
      .set_num_outputs(2)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* x = ExpectTensor(in[0], "nn.nms", 0);
        NIMBLE_CHECK_EQ(x->shape.size(), 2u);
        return TupleType({TensorType(x->shape, x->dtype),
                          ir::ScalarType(DataType::Int64())});
      })
      .set_shape_fn(ShapeFuncMode::kUpperBound,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs&) -> std::vector<ShapeVec> {
                      return {in[0], {}};
                    })
      .set_pattern(FusePattern::kOpaque);

  // slice_rows(x: [N, rest...], n: scalar int64) -> [n, rest...]; pairs with
  // upper-bound ops to recover the precise shape.
  OpRegistry::Global()
      ->Register("slice_rows")
      .set_num_inputs(2)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* x = ExpectTensor(in[0], "slice_rows", 0);
        const auto* n = ExpectTensor(in[1], "slice_rows", 1);
        NIMBLE_CHECK(n->shape.empty() && n->dtype == DataType::Int64())
            << "slice_rows: count must be an int64 scalar";
        Shape out = x->shape;
        out[0] = Dim::Any();
        return TensorType(std::move(out), x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataDependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>& data,
                       const Attrs&) -> std::vector<ShapeVec> {
                      NIMBLE_CHECK_EQ(data.size(), 2u);
                      int64_t n = data[1].data<int64_t>()[0];
                      ShapeVec out = in[0];
                      NIMBLE_CHECK_LE(n, out[0]) << "slice_rows: count exceeds rows";
                      out[0] = n;
                      return {out};
                    })
      .set_pattern(FusePattern::kOpaque);
}

void RegisterWhere() {
  // where(cond, a, b) -> a[i] where cond else b[i]. The condition is bool
  // and broadcasts against the branches (which must agree); selection is an
  // exact bit copy — no arithmetic — which is what lets batched recurrent
  // entries (@main_batched, src/vm/batch_spec.h) freeze finished sequences
  // with results bit-identical to per-request execution.
  OpRegistry::Global()
      ->Register("where")
      .set_num_inputs(3)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* cond = ExpectTensor(in[0], "where", 0);
        const auto* a = ExpectTensor(in[1], "where", 1);
        const auto* b = ExpectTensor(in[2], "where", 2);
        NIMBLE_CHECK(cond->dtype == DataType::Bool())
            << "where: condition must be bool";
        NIMBLE_CHECK(a->dtype == b->dtype) << "where: branch dtype mismatch";
        NIMBLE_CHECK_EQ(a->shape.size(), b->shape.size())
            << "where: branch rank mismatch";
        Shape out = a->shape;
        for (size_t i = 0; i < out.size(); ++i) {
          out[i] = UnifyDim(a->shape[i], b->shape[i], "where");
        }
        NIMBLE_CHECK_LE(cond->shape.size(), out.size())
            << "where: condition rank exceeds the branches";
        for (size_t i = 0; i < cond->shape.size(); ++i) {
          BroadcastDim(cond->shape[cond->shape.size() - 1 - i],
                       out[out.size() - 1 - i], "where");
        }
        return TensorType(std::move(out), a->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs&) -> std::vector<ShapeVec> {
                      return {in[1]};
                    })
      .set_pattern(FusePattern::kOpaque);  // exact selection: keep unfused
}

// ---- compiler-internal dialect ops (§4.3, §4.4) ----------------------------

void RegisterDialect() {
  auto& reg = *OpRegistry::Global();

  // vm.shape_of(x) -> Tensor[(rank,), int64]; lowered to the ShapeOf
  // instruction. Defaults to the CPU device domain (§4.4).
  reg.Register("vm.shape_of")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* x = ExpectTensor(in[0], "vm.shape_of", 0);
        return TensorType({Dim::Static(static_cast<int64_t>(x->shape.size()))},
                          DataType::Int64());
      })
      .set_pattern(FusePattern::kOpaque);

  // memory.alloc_storage() with attrs {size, alignment, device}; `size` may
  // instead come from the first argument (an int64 scalar) when dynamic.
  reg.Register("memory.alloc_storage")
      .set_num_inputs(-1)
      .set_type_rel([](const std::vector<Type>&, const Attrs&) -> Type {
        return ir::ADTType("vm.Storage");
      })
      .set_pattern(FusePattern::kOpaque);

  // memory.alloc_tensor(storage, shape) with attrs {offset, dtype};
  // `shape` is a shape tensor (possibly produced by a shape function).
  reg.Register("memory.alloc_tensor")
      .set_num_inputs(2)
      .set_type_rel([](const std::vector<Type>&, const Attrs& attrs) -> Type {
        int64_t rank = attrs.GetInt("rank");
        DataType dtype = DataType::FromString(attrs.GetStr("dtype", "float32"));
        Shape shape(static_cast<size_t>(rank), Dim::Any());
        return TensorType(std::move(shape), dtype);
      })
      .set_pattern(FusePattern::kOpaque);

  // memory.invoke_mut(op_name attr; inputs..., outputs...) — destination-
  // passing kernel invocation; returns nothing meaningful.
  reg.Register("memory.invoke_mut")
      .set_num_inputs(-1)
      .set_type_rel([](const std::vector<Type>&, const Attrs&) -> Type {
        return TupleType({});
      })
      .set_pattern(FusePattern::kOpaque);

  // memory.kill(x) — frees a tensor before frame exit (§4.3).
  reg.Register("memory.kill")
      .set_num_inputs(1)
      .set_type_rel([](const std::vector<Type>&, const Attrs&) -> Type {
        return TupleType({});
      })
      .set_pattern(FusePattern::kOpaque);

  // vm.shape_func(shape-in..., shape-out...) with attrs naming the op whose
  // shape function to run; writes output shapes into the out tensors.
  reg.Register("vm.shape_func")
      .set_num_inputs(-1)
      .set_type_rel([](const std::vector<Type>&, const Attrs&) -> Type {
        return TupleType({});
      })
      .set_pattern(FusePattern::kOpaque);

  // device_copy(x) with attrs {src_device, dst_device} (§4.4).
  reg.Register("device_copy")
      .set_num_inputs(1)
      .set_type_rel(IdentityRel)
      .set_shape_fn(ShapeFuncMode::kDataIndependent, IdentityShapeFn)
      .set_pattern(FusePattern::kOpaque);

  // vm.reshape_tensor(x, shape_tensor) — zero-copy reshape instruction.
  reg.Register("vm.reshape_tensor")
      .set_num_inputs(2)
      .set_type_rel([](const std::vector<Type>& in, const Attrs& attrs) -> Type {
        const auto* x = ExpectTensor(in[0], "vm.reshape_tensor", 0);
        int64_t rank = attrs.GetInt("rank");
        Shape shape(static_cast<size_t>(rank), Dim::Any());
        return TensorType(std::move(shape), x->dtype);
      })
      .set_pattern(FusePattern::kOpaque);

  // copy(x) — materializes a tensor with a (possibly) new layout; kernel for
  // expand_dims/squeeze and the generic fallback.
  reg.Register("copy")
      .set_num_inputs(1)
      .set_type_rel(IdentityRel)
      .set_shape_fn(ShapeFuncMode::kDataIndependent, IdentityShapeFn)
      .set_pattern(FusePattern::kElemWise);
}

// ---- fused composite ops produced by src/pass/fuse.cc ----------------------

void RegisterFusedOps() {
  auto& reg = *OpRegistry::Global();

  // fused_elemwise(root, extras...): shape-preserving chain on the root.
  reg.Register("fused_elemwise")
      .set_num_inputs(-1)
      .set_type_rel(IdentityRel)
      .set_shape_fn(ShapeFuncMode::kDataIndependent, IdentityShapeFn)
      .set_pattern(FusePattern::kOpaque);

  // fused_dense(x, w, extras...): dense followed by an epilogue chain.
  reg.Register("fused_dense")
      .set_num_inputs(-1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* x = ExpectTensor(in[0], "fused_dense", 0);
        const auto* w = ExpectTensor(in[1], "fused_dense", 1);
        UnifyDim(x->shape[1], w->shape[1], "fused_dense");
        return TensorType({x->shape[0], w->shape[0]}, x->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs&) -> std::vector<ShapeVec> {
                      return {{in[0][0], in[1][0]}};
                    })
      .set_pattern(FusePattern::kOpaque);

  // fused_batch_matmul(a, b, extras...): batched matmul + epilogue chain.
  reg.Register("fused_batch_matmul")
      .set_num_inputs(-1)
      .set_type_rel([](const std::vector<Type>& in, const Attrs&) -> Type {
        const auto* a = ExpectTensor(in[0], "fused_batch_matmul", 0);
        const auto* b = ExpectTensor(in[1], "fused_batch_matmul", 1);
        Dim batch = UnifyDim(a->shape[0], b->shape[0], "fused_batch_matmul");
        UnifyDim(a->shape[2], b->shape[2], "fused_batch_matmul");
        return TensorType({batch, a->shape[1], b->shape[1]}, a->dtype);
      })
      .set_shape_fn(ShapeFuncMode::kDataIndependent,
                    [](const std::vector<ShapeVec>& in,
                       const std::vector<runtime::NDArray>&,
                       const Attrs&) -> std::vector<ShapeVec> {
                      return {{in[0][0], in[0][1], in[1][1]}};
                    })
      .set_pattern(FusePattern::kOpaque);
}

void RegisterAll() {
  for (const char* name : {"add", "subtract", "multiply", "divide", "maximum",
                           "minimum"}) {
    RegisterBroadcastBinary(name);
  }
  for (const char* name : {"less", "greater", "equal", "less_equal",
                           "greater_equal"}) {
    RegisterCompareBinary(name);
  }
  for (const char* name : {"sigmoid", "tanh", "relu", "exp", "negative",
                           "sqrt", "erf"}) {
    RegisterElemwiseUnary(name);
  }
  RegisterDense();
  RegisterBiasAdd();
  RegisterBatchMatmul();
  RegisterSoftmaxLayerNorm();
  RegisterLSTMCell();
  RegisterConcat();
  RegisterSplit();
  RegisterTake();
  RegisterShapeManip();
  RegisterReduce();
  RegisterCast();
  RegisterArange();
  RegisterUnique();
  RegisterNMS();
  RegisterWhere();
  RegisterDialect();
  RegisterFusedOps();
  RegisterElemwiseUnary("gelu");
}

}  // namespace

void EnsureOpsRegistered() {
  static bool done = [] {
    RegisterAll();
    return true;
  }();
  (void)done;
}

}  // namespace op
}  // namespace nimble
