#include "src/net/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/support/logging.h"

namespace nimble {
namespace net {

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Append(Json value) {
  NIMBLE_CHECK(type_ == Type::kArray) << "Append on a non-array Json";
  array_.push_back(std::move(value));
}

void Json::Set(const std::string& key, Json value) {
  NIMBLE_CHECK(type_ == Type::kObject) << "Set on a non-object Json";
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

// ---- serialization ----------------------------------------------------------

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberToString(double num, std::string* out) {
  if (!std::isfinite(num)) {  // JSON has no Inf/NaN; null is the convention
    *out += "null";
    return;
  }
  char buf[32];
  // Exact integers (counters, shapes) print as integers; everything else
  // gets 9 significant digits, enough for a float32 to round-trip exactly.
  if (num == std::floor(num) && std::fabs(num) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(num));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", num);
  }
  *out += buf;
}

}  // namespace

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: NumberToString(num_, out); break;
    case Type::kString: EscapeString(str_, out); break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        EscapeString(object_[i].first, out);
        out->push_back(':');
        object_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  // Flat numeric arrays dominate serving payloads; ~12 bytes per element
  // is a close-enough guess to avoid repeated growth.
  if (type_ == Type::kArray) out.reserve(array_.size() * 12 + 16);
  DumpTo(&out);
  return out;
}

// ---- parsing ----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  bool Parse(Json* out, std::string* error) {
    if (!ParseValue(out, 0)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    SkipWhitespace();
    if (p_ != end_) {
      if (error != nullptr) *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  void SkipWhitespace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Fail(const char* msg) {
    error_ = msg;
    return false;
  }

  bool Consume(char c, const char* what) {
    SkipWhitespace();
    if (p_ == end_ || *p_ != c) return Fail(what);
    ++p_;
    return true;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > Json::kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (p_ == end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Json(std::move(s));
        return true;
      }
      case 't':
        if (end_ - p_ >= 4 && std::memcmp(p_, "true", 4) == 0) {
          p_ += 4;
          *out = Json(true);
          return true;
        }
        return Fail("invalid literal");
      case 'f':
        if (end_ - p_ >= 5 && std::memcmp(p_, "false", 5) == 0) {
          p_ += 5;
          *out = Json(false);
          return true;
        }
        return Fail("invalid literal");
      case 'n':
        if (end_ - p_ >= 4 && std::memcmp(p_, "null", 4) == 0) {
          p_ += 4;
          *out = Json();
          return true;
        }
        return Fail("invalid literal");
      default: return ParseNumber(out);
    }
  }

  bool ParseNumber(Json* out) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '+' ||
                          *p_ == '-')) {
      ++p_;
    }
    if (p_ == start) return Fail("invalid number");
    // strtod needs a terminated buffer; numbers are short, copy is cheap.
    std::string text(start, p_);
    char* parsed_end = nullptr;
    double value = std::strtod(text.c_str(), &parsed_end);
    if (parsed_end != text.c_str() + text.size()) {
      return Fail("invalid number");
    }
    *out = Json(value);
    return true;
  }

  bool ParseString(std::string* out) {
    ++p_;  // opening quote
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return Fail("unterminated escape");
      char esc = *p_++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (end_ - p_ < 4) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("invalid \\u escape");
          }
          // Surrogate halves are not scalar values: encoding one as UTF-8
          // would emit the ill-formed CESU-8 bytes every validating
          // consumer rejects. Pairs are unsupported (json.h documents the
          // BMP-only contract), so reject the whole range rather than
          // silently producing invalid UTF-8.
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Fail("unsupported \\u surrogate");
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Fail("invalid escape");
      }
    }
    if (p_ == end_) return Fail("unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool ParseArray(Json* out, int depth) {
    ++p_;  // '['
    JsonArray items;
    SkipWhitespace();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      *out = Json(std::move(items));
      return true;
    }
    while (true) {
      Json value;
      if (!ParseValue(&value, depth + 1)) return false;
      items.push_back(std::move(value));
      SkipWhitespace();
      if (p_ == end_) return Fail("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        *out = Json(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(Json* out, int depth) {
    ++p_;  // '{'
    JsonObject members;
    SkipWhitespace();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      *out = Json(std::move(members));
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (p_ == end_ || *p_ != '"') return Fail("expected object key");
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':', "expected ':' after object key")) return false;
      Json value;
      if (!ParseValue(&value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (p_ == end_) return Fail("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        *out = Json(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  const char* p_;
  const char* end_;
  std::string error_;
};

}  // namespace

Json Json::Parse(const std::string& text, std::string* error) {
  Json result;
  Parser parser(text.data(), text.data() + text.size());
  if (!parser.Parse(&result, error)) return Json();
  return result;
}

}  // namespace net
}  // namespace nimble
