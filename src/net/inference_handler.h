// HTTP request routing and translation for the serving pipeline.
//
// The handler is the seam between wire format and serve::Server:
//
//   POST /v1/models/<name>:predict   decode body -> TrySubmitCallback;
//                                    the response completes asynchronously
//   GET  /stats                      ServeStats + queue depths + HTTP
//                                    counters as JSON (one consistent
//                                    Server::SnapshotAll pass)
//   GET  /metrics                    Prometheus text exposition of the
//                                    server's obs::MetricRegistry
//   GET  /debug/trace?n=K            last K completed request traces as
//                                    chrome://tracing JSON; continuous
//                                    models add one Perfetto track per slot
//                                    (occupancy intervals named after the
//                                    resident request) plus occupancy and
//                                    step-latency counter tracks
//   GET  /debug/steps?model=&n=      step-journal tail of a continuous
//                                    model (all continuous models when
//                                    `model` is omitted): per-step seq,
//                                    duration, active rows, splice/retire
//                                    events, VM profile
//   GET  /debug/memory?n=K           allocator telemetry as JSON: per-scope
//                                    (worker/model/global) live, peak and
//                                    pool counters with size-class occupancy
//                                    (capped at K classes per scope), the
//                                    copy-site ledger, and memory-pressure
//                                    state
//   GET  /v1/models                  registered model names
//   GET  /healthz                    200 while serving, 503 once draining
//
// Tracing echo: a predict request carrying `X-Nimble-Trace: 1` gets its
// own stage timings back in an X-Nimble-Trace response header (stages
// through unpack — the write span is still open when the header is built).
//
// Backpressure becomes protocol-visible here, mapping AdmitStatus to
// status codes: a full queue answers 429 with a Retry-After hint (the
// queue-depth snapshot taken under the admission lock), an unknown model
// 404, a malformed body 400, a draining server 503. The event-loop thread
// never blocks: admission is TrySubmitCallback, and the completion
// callback — running on a pool worker — serializes the response and hands
// the bytes to `respond`, which the HttpServer forwards onto the loop.
//
// Request bodies (two formats):
//   JSON (application/json):
//     {"inputs": [{"shape": [L, D], "data": [...], "dtype": "float32"},
//                 {"scalar": 7}],
//      "length": L}
//     Tensor inputs become float32 (or int64) NDArrays; {"scalar": n} is a
//     rank-0 int64 (the LSTM entry's sequence-length argument). "length"
//     (optional) is the bucketing hint; it defaults to the first tensor's
//     leading dimension.
//   Binary (application/octet-stream): raw little-endian float32 data with
//     X-Nimble-Shape: "L,D" (and optionally X-Nimble-Length: L, which also
//     appends the rank-0 int64 length argument models like the LSTM take).
//
// Responses: {"model": ..., "shape": [...], "data": [...]} JSON, or raw
// bytes + X-Nimble-Shape when the request asked for
// "Accept: application/octet-stream".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "src/net/http_codec.h"
#include "src/net/json.h"
#include "src/obs/metrics.h"
#include "src/serve/server.h"

namespace nimble {
namespace net {

/// Per-endpoint and per-status counters for the HTTP front end (the serving
/// pipeline's own metrics live in serve::ServeStats; these cover what only
/// the network layer sees: routing, protocol errors, shed requests).
///
/// Backed by sharded obs::Counter instruments in the server's registry
/// (families nimble_http_requests_total{endpoint} and
/// nimble_http_responses_total{code}), so the hot path is a relaxed atomic
/// add with no mutex, and GET /metrics exports them for free. The
/// endpoint and status sets are closed (unknowns fold into "other"), so
/// every counter pointer is resolved once at construction and the lookup
/// maps are read-only ever after. Thread-safe: recorded from the loop
/// thread and pool workers.
class HttpStats {
 public:
  explicit HttpStats(std::shared_ptr<obs::MetricRegistry> registry);

  void RecordRequest(const std::string& endpoint);
  void RecordResponse(int status);

  Json ToJson() const;

 private:
  std::shared_ptr<obs::MetricRegistry> registry_;  // keeps counters alive
  std::map<std::string, obs::Counter*> by_endpoint_;
  std::map<int, obs::Counter*> by_status_;
  obs::Counter* other_endpoint_ = nullptr;
  obs::Counter* other_status_ = nullptr;
};

class InferenceHandler {
 public:
  /// `server` must outlive the handler. `server_label` names this process
  /// in /stats output.
  explicit InferenceHandler(serve::Server* server,
                            std::string server_label = "nimble");

  struct Outcome {
    /// True when the response will be delivered later through `respond`
    /// (an accepted inference). False: `response` holds the full reply.
    bool async = false;
    /// The connection must close once this response flushes (the response
    /// advertised "Connection: close" — e.g. 503 while draining — even if
    /// the request itself asked for keep-alive).
    bool close_connection = false;
    std::string response;
  };

  /// Routes one parsed request. `respond` is invoked at most once, from a
  /// pool worker thread, with the serialized response bytes — the caller
  /// forwards it to its event loop. Never blocks, never throws.
  Outcome Handle(const HttpRequest& request,
                 std::function<void(std::string)> respond);

  const HttpStats& http_stats() const { return *http_stats_; }

  /// Builds the /stats JSON document (also used by tests and the loadgen).
  /// One Server::SnapshotAll() pass: every per-model snapshot plus the
  /// aggregate come from the same sweep (see the consistency contract in
  /// src/serve/stats.h).
  Json StatsJson() const;

  /// Prometheus text exposition (the GET /metrics body). Refreshes the
  /// per-model queue-depth gauges, then renders the server's registry.
  std::string MetricsText() const;

  /// Chrome-trace JSON of the newest `n` completed request traces plus the
  /// continuous models' slot timelines (the GET /debug/trace body). Load in
  /// chrome://tracing or Perfetto.
  std::string TraceJson(size_t n) const;

  /// Step-journal tail JSON (the GET /debug/steps body). `model` empty:
  /// every continuous model under a "models" array. Returns an empty
  /// string when `model` names no continuous model (the route answers
  /// 404).
  std::string StepsJson(const std::string& model, size_t n) const;

  /// Allocator-telemetry JSON (the GET /debug/memory body): every memory
  /// scope from Server::MemoryScopes() with its size-class occupancy table
  /// capped at `n` entries, the process copy-site ledger, and the
  /// memory-pressure block (pressure 0 / no soft limit when unconfigured).
  Json MemoryJson(size_t n) const;

 private:
  Outcome Respond(int status, const Json& body, bool keep_alive);
  Outcome Predict(const HttpRequest& request, const std::string& model,
                  std::function<void(std::string)> respond);

  serve::Server* server_;
  std::string label_;
  /// shared_ptr because completion callbacks on pool workers may outlive
  /// this handler (a slow batch finishing after the front end is torn
  /// down): they hold a weak_ptr and drop the stats write instead of
  /// touching freed memory.
  std::shared_ptr<HttpStats> http_stats_;
};

}  // namespace net
}  // namespace nimble
