// Single-threaded epoll event loop with cross-thread task posting.
//
// One thread calls Run() and from then on owns every registered fd and all
// handler state: handlers run on the loop thread only, so connection
// bookkeeping needs no locks. Other threads interact with the loop through
// exactly one primitive — Post(task) — which enqueues a closure and wakes
// the loop via an eventfd; the loop drains posted tasks between epoll
// waits. That is how VMPool workers complete HTTP responses without ever
// touching a socket: they Post the serialized bytes, the loop writes them.
//
// Nothing here blocks except epoll_wait itself: fds are registered
// non-blocking by their owners, Post is a mutex push + eventfd write, and
// Stop() is a flag + wake. Level-triggered epoll keeps the handler
// contract simple (a handler that doesn't finish a read is re-invoked).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace nimble {
namespace net {

class EventLoop {
 public:
  /// Invoked on the loop thread with the ready epoll event mask
  /// (EPOLLIN/EPOLLOUT/EPOLLHUP/EPOLLERR bits).
  using IoCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN etc.). Must be called on the
  /// loop thread, or before Run() starts. The callback may Add/Modify/
  /// Remove any fd, including its own.
  void Add(int fd, uint32_t events, IoCallback callback);
  /// Changes the interest mask of a registered fd (loop thread only).
  void Modify(int fd, uint32_t events);
  /// Deregisters; the fd is not closed (its owner closes it). Safe to call
  /// from inside any handler (loop thread only).
  void Remove(int fd);

  /// Enqueues `task` to run on the loop thread and wakes it. Thread-safe;
  /// callable before Run and after Stop (tasks posted after the loop exits
  /// are destroyed unrun when the loop is destroyed — acceptable because
  /// Stop's contract is that the owner has already quiesced producers).
  void Post(std::function<void()> task);

  /// Runs until Stop(). Dispatches epoll events, then drained posted
  /// tasks, repeatedly. Call from exactly one thread.
  void Run();

  /// Requests Run() to return after the current iteration. Thread-safe.
  void Stop();

  /// True when called from the thread currently inside Run().
  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_.load();
  }

 private:
  struct Handler {
    IoCallback callback;
    bool alive = true;  // cleared by Remove so in-flight dispatch skips it
  };

  void DrainTasks();
  void DrainWakeups();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> loop_thread_{};
  /// Loop-thread only. shared_ptr so a handler that Removes a peer fd
  /// mid-dispatch invalidates it (alive flag) without freeing under the
  /// dispatcher's feet.
  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;
  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
};

}  // namespace net
}  // namespace nimble
