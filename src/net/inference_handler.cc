#include "src/net/inference_handler.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "src/codegen/parallel.h"
#include "src/obs/export.h"
#include "src/obs/memory.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/object.h"
#include "src/support/logging.h"

namespace nimble {
namespace net {

namespace {

constexpr const char* kJsonType = "application/json";
constexpr const char* kBinaryType = "application/octet-stream";

Json ErrorJson(const std::string& message) {
  Json body = Json::Object();
  body.Set("error", message);
  return body;
}

std::string ErrorBody(const std::string& message) {
  return ErrorJson(message).Dump();
}

/// Decoded inference inputs, independent of wire format.
struct DecodedBody {
  bool ok = false;
  std::string error;
  std::vector<runtime::ObjectRef> args;
  int64_t length_hint = 0;
};

DecodedBody DecodeFail(std::string message) {
  DecodedBody d;
  d.error = std::move(message);
  return d;
}

/// Ceiling on elements a request may claim. Far above anything the body
/// limits allow through, but low enough that the checked product below
/// can never overflow int64 (and a hostile shape like [2^32, 2^32] —
/// whose naive product wraps to 0 and would match an empty body — is
/// rejected instead of creating a tensor whose shape lies about its
/// allocation).
constexpr int64_t kMaxRequestElements = int64_t{1} << 28;

/// Overflow-checked element count; false when any dim is negative or the
/// product exceeds kMaxRequestElements.
bool CheckedNumElements(const runtime::ShapeVec& shape, int64_t* out) {
  int64_t product = 1;
  for (int64_t dim : shape) {
    if (dim < 0) return false;
    if (dim > 0 && product > kMaxRequestElements / dim) return false;
    product *= dim;
  }
  *out = product;
  return true;
}

bool ReadShape(const Json& value, runtime::ShapeVec* shape) {
  if (!value.is_array()) return false;
  shape->clear();
  for (const Json& dim : value.items()) {
    if (!dim.is_number() || dim.number() < 0 ||
        dim.number() != static_cast<double>(dim.integer())) {
      return false;
    }
    shape->push_back(dim.integer());
  }
  return true;
}

DecodedBody DecodeJsonBody(const std::string& body) {
  std::string parse_error;
  Json doc = Json::Parse(body, &parse_error);
  if (!doc.is_object()) {
    return DecodeFail(parse_error.empty() ? "body must be a JSON object"
                                          : "invalid JSON: " + parse_error);
  }
  const Json* inputs = doc.Find("inputs");
  if (inputs == nullptr || !inputs->is_array() || inputs->items().empty()) {
    return DecodeFail("missing non-empty 'inputs' array");
  }

  DecodedBody decoded;
  for (const Json& input : inputs->items()) {
    if (!input.is_object()) return DecodeFail("each input must be an object");
    if (const Json* scalar = input.Find("scalar")) {
      if (!scalar->is_number()) return DecodeFail("'scalar' must be a number");
      decoded.args.push_back(runtime::MakeTensor(
          runtime::NDArray::Scalar<int64_t>(scalar->integer())));
      continue;
    }
    const Json* shape_json = input.Find("shape");
    const Json* data = input.Find("data");
    runtime::ShapeVec shape;
    if (shape_json == nullptr || !ReadShape(*shape_json, &shape)) {
      return DecodeFail("input needs a 'shape' array of non-negative ints");
    }
    if (data == nullptr || !data->is_array()) {
      return DecodeFail("input needs a 'data' array");
    }
    int64_t expected = 0;
    if (!CheckedNumElements(shape, &expected)) {
      return DecodeFail("'shape' implies an unreasonable element count");
    }
    if (static_cast<int64_t>(data->items().size()) != expected) {
      return DecodeFail("'data' holds " +
                        std::to_string(data->items().size()) +
                        " elements but 'shape' implies " +
                        std::to_string(expected));
    }
    std::string dtype = "float32";
    if (const Json* dt = input.Find("dtype")) {
      if (!dt->is_string()) return DecodeFail("'dtype' must be a string");
      dtype = dt->str();
    }
    if (dtype == "float32") {
      runtime::NDArray arr =
          runtime::NDArray::Empty(shape, runtime::DataType::Float32());
      float* dst = arr.data<float>();
      for (size_t i = 0; i < data->items().size(); ++i) {
        const Json& v = data->items()[i];
        if (!v.is_number()) return DecodeFail("'data' must be numeric");
        dst[i] = static_cast<float>(v.number());
      }
      decoded.args.push_back(runtime::MakeTensor(std::move(arr)));
    } else if (dtype == "int64") {
      runtime::NDArray arr =
          runtime::NDArray::Empty(shape, runtime::DataType::Int64());
      int64_t* dst = arr.data<int64_t>();
      for (size_t i = 0; i < data->items().size(); ++i) {
        const Json& v = data->items()[i];
        if (!v.is_number()) return DecodeFail("'data' must be numeric");
        dst[i] = v.integer();
      }
      decoded.args.push_back(runtime::MakeTensor(std::move(arr)));
    } else {
      return DecodeFail("unsupported dtype '" + dtype +
                        "' (float32 and int64 only)");
    }
    if (decoded.length_hint == 0 && !shape.empty()) {
      decoded.length_hint = shape[0];  // default hint: first tensor's rows
    }
    // The element-by-element fill above is still a copy (parsed JSON ->
    // tensor), charged to the same site as the binary memcpy.
    obs::RecordCopy(obs::CopySite::kHttpDecode,
                    expected * static_cast<int64_t>(
                                   dtype == "int64" ? sizeof(int64_t)
                                                    : sizeof(float)));
  }
  if (const Json* length = doc.Find("length")) {
    if (!length->is_number() || length->number() < 0) {
      return DecodeFail("'length' must be a non-negative number");
    }
    decoded.length_hint = length->integer();
  }
  decoded.ok = true;
  return decoded;
}

DecodedBody DecodeBinaryBody(const HttpRequest& request) {
  const std::string* shape_header = request.FindHeader("x-nimble-shape");
  if (shape_header == nullptr) {
    return DecodeFail("binary body needs an X-Nimble-Shape header");
  }
  runtime::ShapeVec shape;
  const char* p = shape_header->c_str();
  while (*p != '\0') {
    char* end = nullptr;
    errno = 0;
    long long dim = std::strtoll(p, &end, 10);
    if (end == p || errno == ERANGE || dim < 0 ||
        dim > kMaxRequestElements) {
      return DecodeFail("malformed X-Nimble-Shape");
    }
    shape.push_back(dim);
    p = (*end == ',') ? end + 1 : end;
    if (*end != ',' && *end != '\0') {
      return DecodeFail("malformed X-Nimble-Shape");
    }
  }
  int64_t elements = 0;
  if (!CheckedNumElements(shape, &elements)) {
    return DecodeFail("X-Nimble-Shape implies an unreasonable element count");
  }
  size_t expected_bytes = static_cast<size_t>(elements) * sizeof(float);
  if (request.body.size() != expected_bytes) {
    return DecodeFail("body is " + std::to_string(request.body.size()) +
                      " bytes but X-Nimble-Shape implies " +
                      std::to_string(expected_bytes));
  }
  DecodedBody decoded;
  runtime::NDArray arr =
      runtime::NDArray::Empty(shape, runtime::DataType::Float32());
  std::memcpy(arr.raw_data(), request.body.data(), expected_bytes);
  obs::RecordCopy(obs::CopySite::kHttpDecode,
                  static_cast<int64_t>(expected_bytes));
  decoded.args.push_back(runtime::MakeTensor(std::move(arr)));
  if (!shape.empty()) decoded.length_hint = shape[0];
  if (const std::string* len = request.FindHeader("x-nimble-length")) {
    char* end = nullptr;
    long long n = std::strtoll(len->c_str(), &end, 10);
    if (end != len->c_str() + len->size() || n < 0) {
      return DecodeFail("malformed X-Nimble-Length");
    }
    // Convention shared with the LSTM entry point: the sequence length
    // rides as a trailing rank-0 int64 argument.
    decoded.args.push_back(
        runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(n)));
    decoded.length_hint = n;
  }
  decoded.ok = true;
  return decoded;
}

/// Serializes a finished inference into full response bytes, recording
/// exactly one status into `stats` (skipped when null — the front end may
/// already be gone by the time a slow batch completes). Runs on the pool
/// worker that completed the request. `trace` (nullable) is the request's
/// trace context for the X-Nimble-Trace echo — stages through unpack; the
/// write span is this very serialization, still open.
std::string SerializeResult(const std::string& model,
                            const runtime::ObjectRef& result,
                            std::exception_ptr error, bool binary,
                            bool keep_alive, HttpStats* stats,
                            const obs::TraceContext* trace) {
  int status = 200;
  std::string body;
  std::string content_type = kJsonType;
  std::vector<std::pair<std::string, std::string>> extra_headers;

  const runtime::NDArray* tensor = nullptr;
  if (result != nullptr && result->tag() == runtime::ObjectTag::kTensor) {
    tensor = &static_cast<const runtime::TensorObj*>(result.get())->data;
  }

  if (error != nullptr) {
    std::string what = "inference failed";
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    status = 500;
    body = ErrorBody(what);
  } else if (tensor == nullptr || !tensor->defined()) {
    status = 500;
    body = ErrorBody("result is not a tensor");
  } else if (binary && tensor->dtype() == runtime::DataType::Float32()) {
    std::string shape_str;
    for (size_t i = 0; i < tensor->shape().size(); ++i) {
      if (i > 0) shape_str += ",";
      shape_str += std::to_string(tensor->shape()[i]);
    }
    body.assign(static_cast<const char*>(tensor->raw_data()),
                tensor->nbytes());
    content_type = kBinaryType;
    extra_headers = {{"X-Nimble-Shape", shape_str},
                     {"X-Nimble-Dtype", "float32"}};
  } else if (tensor->dtype() == runtime::DataType::Float32() ||
             tensor->dtype() == runtime::DataType::Int64()) {
    Json doc = Json::Object();
    doc.Set("model", model);
    Json shape = Json::Array();
    for (int64_t dim : tensor->shape()) shape.Append(dim);
    doc.Set("shape", std::move(shape));
    doc.Set("dtype", tensor->dtype().ToString());
    Json data = Json::Array();
    int64_t n = tensor->num_elements();
    if (tensor->dtype() == runtime::DataType::Float32()) {
      const float* src = tensor->data<float>();
      for (int64_t i = 0; i < n; ++i) {
        data.Append(static_cast<double>(src[i]));
      }
    } else {
      const int64_t* src = tensor->data<int64_t>();
      for (int64_t i = 0; i < n; ++i) data.Append(src[i]);
    }
    doc.Set("data", std::move(data));
    body = doc.Dump();
  } else {
    status = 500;
    body = ErrorBody("unsupported result dtype " +
                     tensor->dtype().ToString());
  }

  if (trace != nullptr && trace->enabled) {
    extra_headers.emplace_back("X-Nimble-Trace", obs::TraceHeaderValue(*trace));
  }
  // Result tensor -> response bytes is the pipeline's last copy (binary:
  // body.assign of the raw tensor; JSON: the Dump of the data array).
  // Error bodies are not data-path copies and stay unrecorded.
  if (status == 200) {
    obs::RecordCopy(obs::CopySite::kSerialize,
                    static_cast<int64_t>(body.size()));
  }
  if (stats != nullptr) stats->RecordResponse(status);
  return HttpCodec::WriteResponse(status, body, content_type, keep_alive,
                                  extra_headers);
}

Json SnapshotJson(const serve::StatsSnapshot& snap) {
  Json j = Json::Object();
  j.Set("completed", snap.completed);
  j.Set("failed", snap.failed);
  j.Set("rejected", snap.rejected);
  j.Set("arrivals", snap.arrivals);
  j.Set("arrival_rate_rps", snap.arrival_rate_rps);
  j.Set("throughput_rps", snap.throughput_rps);
  j.Set("mean_latency_us", snap.mean_latency_us);
  j.Set("p50_latency_us", snap.p50_latency_us);
  j.Set("p95_latency_us", snap.p95_latency_us);
  j.Set("p99_latency_us", snap.p99_latency_us);
  j.Set("max_latency_us", snap.max_latency_us);
  j.Set("mean_queue_wait_us", snap.mean_queue_wait_us);
  j.Set("max_queue_wait_us", snap.max_queue_wait_us);
  j.Set("mean_exec_us", snap.mean_exec_us);
  if (snap.adaptive_wait_micros > 0) {
    j.Set("adaptive_wait_micros", snap.adaptive_wait_micros);
  }
  j.Set("batches", snap.batches);
  j.Set("mean_batch_size", snap.mean_batch_size);
  Json hist = Json::Object();
  for (size_t i = 0; i < snap.batch_size_hist.size(); ++i) {
    hist.Set(serve::ServeStats::BatchHistLabel(i), snap.batch_size_hist[i]);
  }
  j.Set("batch_size_hist", std::move(hist));
  j.Set("packed_batches", snap.packed_batches);
  j.Set("padding_waste", snap.padding_waste);
  if (snap.cache_hits + snap.cache_misses > 0) {
    j.Set("exec_cache_hit_rate", snap.cache_hit_rate);
    j.Set("exec_cache_variant_batches", snap.variant_batches);
  }
  if (snap.slot_count > 0) {
    Json c = Json::Object();
    c.Set("slots", snap.slot_count);
    c.Set("splices", snap.splices);
    c.Set("steps", snap.continuous_steps);
    c.Set("row_steps", snap.continuous_row_steps);
    c.Set("idle_row_steps", snap.continuous_idle_row_steps);
    c.Set("slot_occupancy", snap.slot_occupancy);
    c.Set("mean_slot_occupancy", snap.mean_slot_occupancy);
    c.Set("idle_slot_fraction", snap.idle_slot_fraction);
    c.Set("mean_step_duration_us", snap.mean_step_duration_us);
    c.Set("mean_splice_wait_us", snap.mean_splice_wait_us);
    j.Set("continuous", std::move(c));
  }
  return j;
}

/// Value of `key` in an already-split query string ("a=1&b=2"), or empty.
std::string QueryParam(const std::string& query, const std::string& key) {
  std::string needle = key + "=";
  size_t at = 0;
  while (at < query.size()) {
    size_t next = query.find('&', at);
    size_t len = (next == std::string::npos ? query.size() : next) - at;
    if (len >= needle.size() &&
        query.compare(at, needle.size(), needle) == 0) {
      return query.substr(at + needle.size(), len - needle.size());
    }
    if (next == std::string::npos) break;
    at = next + 1;
  }
  return "";
}

}  // namespace

HttpStats::HttpStats(std::shared_ptr<obs::MetricRegistry> registry)
    : registry_(std::move(registry)) {
  NIMBLE_CHECK(registry_ != nullptr);
  const std::string kRequestsHelp = "HTTP requests routed, by endpoint.";
  const std::string kResponsesHelp = "HTTP responses written, by status code.";
  for (const char* endpoint : {"predict", "stats", "metrics", "trace",
                               "steps", "memory", "models", "healthz",
                               "other"}) {
    by_endpoint_[endpoint] = registry_->GetCounter(
        "nimble_http_requests_total", {{"endpoint", endpoint}}, kRequestsHelp);
  }
  // Every status the codec or handler can emit; anything else (a future
  // code this table missed) folds into code="other" rather than growing
  // the label set at runtime.
  for (int status : {200, 400, 404, 405, 408, 413, 429, 431, 500, 501, 503}) {
    by_status_[status] =
        registry_->GetCounter("nimble_http_responses_total",
                              {{"code", std::to_string(status)}},
                              kResponsesHelp);
  }
  other_endpoint_ = by_endpoint_.at("other");
  other_status_ = registry_->GetCounter("nimble_http_responses_total",
                                        {{"code", "other"}}, kResponsesHelp);
}

void HttpStats::RecordRequest(const std::string& endpoint) {
  auto it = by_endpoint_.find(endpoint);
  (it != by_endpoint_.end() ? it->second : other_endpoint_)->Increment();
}

void HttpStats::RecordResponse(int status) {
  auto it = by_status_.find(status);
  (it != by_status_.end() ? it->second : other_status_)->Increment();
}

Json HttpStats::ToJson() const {
  Json endpoints = Json::Object();
  int64_t total = 0;
  for (const auto& [endpoint, counter] : by_endpoint_) {
    int64_t count = counter->Value();
    if (count != 0) endpoints.Set(endpoint, count);
    total += count;
  }
  Json statuses = Json::Object();
  for (const auto& [status, counter] : by_status_) {
    int64_t count = counter->Value();
    if (count != 0) statuses.Set(std::to_string(status), count);
  }
  if (int64_t other = other_status_->Value()) statuses.Set("other", other);
  Json j = Json::Object();
  j.Set("requests", total);
  j.Set("by_endpoint", std::move(endpoints));
  j.Set("by_status", std::move(statuses));
  return j;
}

InferenceHandler::InferenceHandler(serve::Server* server,
                                   std::string server_label)
    : server_(server), label_(std::move(server_label)) {
  NIMBLE_CHECK(server_ != nullptr);
  http_stats_ = std::make_shared<HttpStats>(server_->metrics_registry());
}

InferenceHandler::Outcome InferenceHandler::Respond(int status,
                                                    const Json& body,
                                                    bool keep_alive) {
  http_stats_->RecordResponse(status);
  Outcome outcome;
  outcome.close_connection = !keep_alive;
  outcome.response =
      HttpCodec::WriteResponse(status, body.Dump(), kJsonType, keep_alive);
  return outcome;
}

Json InferenceHandler::StatsJson() const {
  // One SnapshotAll pass instead of N+1 per-model stats() calls: each
  // ServeStats mutex is taken exactly once, and the aggregate view comes
  // from the same sweep as the per-model ones (consistency contract in
  // src/serve/stats.h).
  serve::Server::ServerSnapshot snap = server_->SnapshotAll();
  Json doc = Json::Object();
  Json info = Json::Object();
  info.Set("server", label_);
  info.Set("draining", server_->draining());
  doc.Set("info", std::move(info));
  doc.Set("http", http_stats_->ToJson());
  Json models = Json::Object();
  for (const serve::Server::ModelStatsView& view : snap.models) {
    Json m = SnapshotJson(view.stats);
    m.Set("queue_depth", static_cast<int64_t>(view.queue_depth));
    m.Set("queue_capacity", static_cast<int64_t>(view.queue_capacity));
    if (view.has_exec_cache) {
      // Per-variant detail: which lengths are resident and the (possibly
      // tuner-measured) dense config each one baked — the §4.5 tuning
      // lifecycle made observable.
      Json cache = Json::Object();
      cache.Set("compiles", view.exec_cache.compiles);
      cache.Set("evictions", view.exec_cache.evictions);
      cache.Set("tune_events", view.exec_cache.tune_events);
      Json variants = Json::Array();
      for (const auto& detail : view.exec_cache.variants) {
        Json v = Json::Object();
        v.Set("length", detail.length);
        v.Set("dense_config", detail.dense_config);
        v.Set("tuned", detail.tuned);
        variants.Append(std::move(v));
      }
      cache.Set("variants", std::move(variants));
      m.Set("exec_cache", std::move(cache));
    }
    models.Set(view.name, std::move(m));
  }
  doc.Set("models", std::move(models));
  Json aggregate = SnapshotJson(snap.aggregate);
  aggregate.Set("queue_depth", static_cast<int64_t>(snap.queue_depth));
  doc.Set("aggregate", std::move(aggregate));
  // Memory digest: the scope totals and copy-site byte counts, so a /stats
  // poller sees data-plane memory health without a second request. The
  // full per-scope / size-class breakdown stays on /debug/memory.
  int64_t mem_live = 0;
  int64_t mem_peak = 0;
  int64_t mem_cached = 0;
  for (const obs::AllocScopeSample& scope : server_->MemoryScopes()) {
    mem_live += scope.live_bytes;
    mem_peak += scope.peak_bytes;
    mem_cached += scope.cached_bytes;
  }
  Json memory = Json::Object();
  memory.Set("live_bytes", mem_live);
  memory.Set("peak_bytes", mem_peak);
  memory.Set("cached_bytes", mem_cached);
  const obs::MemoryPressure* pressure = server_->memory_pressure();
  memory.Set("pressure", pressure != nullptr ? pressure->pressure() : 0.0);
  Json copied = Json::Object();
  for (const obs::CopySiteSnapshot& site : obs::CopyLedgerSnapshot()) {
    copied.Set(site.site, site.bytes);
  }
  memory.Set("copied_bytes", std::move(copied));
  doc.Set("memory", std::move(memory));
  return doc;
}

std::string InferenceHandler::MetricsText() const {
  // Gauges report state, not events: sample the live queue depths at
  // scrape time (exact, free for the hot path) before rendering. Gauge
  // lookup takes the registry mutex, which is fine here — scrapes are cold
  // — and resolving per scrape also picks up models added after this
  // handler was built (the front end is constructed before AddModel runs).
  obs::MetricRegistry& registry = *server_->metrics_registry();
  for (const std::string& name : server_->model_names()) {
    registry
        .GetGauge("nimble_queue_depth", {{"model", name}},
                  "Requests buffered in the model's admission queue "
                  "(sampled at scrape time).")
        ->Set(static_cast<double>(server_->queue_depth(name)));
  }
  // Same sample-at-scrape treatment for the kernel pool: busy() is a
  // process-wide instantaneous count, meaningless to mirror per event.
  codegen::KernelPool* pool = codegen::KernelPool::Global();
  registry
      .GetGauge("nimble_kernel_threads_busy", {},
                "Kernel-pool threads executing partitioned dense work "
                "(sampled at scrape time; 0 when the pool is disabled).")
      ->Set(pool != nullptr ? static_cast<double>(pool->busy()) : 0.0);
  // Memory scopes get the same treatment: live/peak are state, sampled per
  // scrape from each allocator's exact atomics, with a scope="total" sum so
  // dashboards need no label arithmetic.
  const std::string kLiveHelp =
      "Live (allocated minus freed) bytes per allocator scope, sampled at "
      "scrape time.";
  const std::string kPeakHelp =
      "High-water mark of live bytes per allocator scope.";
  int64_t total_live = 0;
  int64_t total_peak = 0;
  for (const obs::AllocScopeSample& scope : server_->MemoryScopes()) {
    registry.GetGauge("nimble_mem_live_bytes", {{"scope", scope.scope}},
                      kLiveHelp)
        ->Set(static_cast<double>(scope.live_bytes));
    registry.GetGauge("nimble_mem_peak_bytes", {{"scope", scope.scope}},
                      kPeakHelp)
        ->Set(static_cast<double>(scope.peak_bytes));
    total_live += scope.live_bytes;
    total_peak += scope.peak_bytes;
  }
  registry.GetGauge("nimble_mem_live_bytes", {{"scope", "total"}}, kLiveHelp)
      ->Set(static_cast<double>(total_live));
  registry.GetGauge("nimble_mem_peak_bytes", {{"scope", "total"}}, kPeakHelp)
      ->Set(static_cast<double>(total_peak));
  const obs::MemoryPressure* pressure = server_->memory_pressure();
  registry
      .GetGauge("nimble_mem_pressure", {},
                "Live bytes across server allocator scopes / soft limit "
                "(0 when no limit is configured)")
      ->Set(pressure != nullptr ? pressure->pressure() : 0.0);
  // The two global counter families (pool events, copied bytes) render as
  // hand-built text — registry counters cannot be Set to a merged value,
  // and the family names are distinct so the exposition stays valid.
  return registry.RenderPrometheus() + obs::MemoryCountersText();
}

std::string InferenceHandler::TraceJson(size_t n) const {
  // Merge the continuous models' slot timelines into the request-track
  // document: one Perfetto process per model, one track per slot, plus
  // occupancy / step-latency counter tracks (see obs::SlotTimeline).
  std::vector<obs::SlotTimeline> timelines;
  for (const serve::Server::ContinuousModelView& view :
       server_->continuous_models()) {
    if (view.journal == nullptr || !view.journal->enabled()) continue;
    obs::SlotTimeline timeline;
    timeline.model = view.name;
    timeline.num_slots = view.num_slots;
    timeline.records = view.journal->Tail(n);
    timelines.push_back(std::move(timeline));
  }
  return obs::ChromeTraceJson(server_->tracer()->Recent(n), timelines);
}

std::string InferenceHandler::StepsJson(const std::string& model,
                                        size_t n) const {
  std::vector<serve::Server::ContinuousModelView> views =
      server_->continuous_models();
  if (!model.empty()) {
    for (const serve::Server::ContinuousModelView& view : views) {
      if (view.name != model) continue;
      if (view.journal == nullptr) return "";
      return obs::StepJournalJson(view.name, view.num_slots,
                                  view.journal->steps_recorded(),
                                  view.journal->Tail(n));
    }
    return "";
  }
  std::string out = "{\"models\":[";
  bool first = true;
  for (const serve::Server::ContinuousModelView& view : views) {
    if (view.journal == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += obs::StepJournalJson(view.name, view.num_slots,
                                view.journal->steps_recorded(),
                                view.journal->Tail(n));
  }
  out += "]}";
  return out;
}

Json InferenceHandler::MemoryJson(size_t n) const {
  Json doc = Json::Object();
  doc.Set("telemetry_enabled", obs::MemoryTelemetryEnabled());

  Json pressure = Json::Object();
  const obs::MemoryPressure* p = server_->memory_pressure();
  pressure.Set("configured", p != nullptr);
  pressure.Set("pressure", p != nullptr ? p->pressure() : 0.0);
  if (p != nullptr) {
    pressure.Set("soft_limit_bytes", p->config().soft_limit_bytes);
    pressure.Set("shed", p->config().shed);
    pressure.Set("shed_threshold", p->config().shed_threshold);
  }
  doc.Set("pressure", std::move(pressure));

  int64_t total_live = 0;
  int64_t total_peak = 0;
  int64_t total_allocated = 0;
  int64_t total_cached = 0;
  Json scopes = Json::Array();
  for (const obs::AllocScopeSample& scope : server_->MemoryScopes()) {
    Json s = Json::Object();
    s.Set("scope", scope.scope);
    s.Set("alloc_calls", scope.alloc_calls);
    s.Set("system_allocs", scope.system_allocs);
    s.Set("bytes_allocated", scope.bytes_allocated);
    s.Set("live_bytes", scope.live_bytes);
    s.Set("peak_bytes", scope.peak_bytes);
    s.Set("cached_bytes", scope.cached_bytes);
    s.Set("pool_hits", scope.pool_hits);
    s.Set("pool_refills", scope.pool_refills);
    s.Set("pool_frees", scope.pool_frees);
    // Size-class table, largest classes first as sampled, capped at `n`
    // like the other /debug endpoints cap their tails.
    Json classes = Json::Array();
    size_t limit = std::min(scope.classes.size(), n);
    for (size_t i = 0; i < limit; ++i) {
      Json c = Json::Object();
      c.Set("bucket_bytes", scope.classes[i].bucket_bytes);
      c.Set("blocks", scope.classes[i].blocks);
      c.Set("bytes", scope.classes[i].bytes);
      classes.Append(std::move(c));
    }
    s.Set("classes", std::move(classes));
    s.Set("classes_total", static_cast<int64_t>(scope.classes.size()));
    scopes.Append(std::move(s));
    total_live += scope.live_bytes;
    total_peak += scope.peak_bytes;
    total_allocated += scope.bytes_allocated;
    total_cached += scope.cached_bytes;
  }
  doc.Set("scopes", std::move(scopes));

  Json total = Json::Object();
  total.Set("live_bytes", total_live);
  total.Set("peak_bytes", total_peak);
  total.Set("bytes_allocated", total_allocated);
  total.Set("cached_bytes", total_cached);
  doc.Set("total", std::move(total));

  Json copy_sites = Json::Array();
  for (const obs::CopySiteSnapshot& site : obs::CopyLedgerSnapshot()) {
    Json s = Json::Object();
    s.Set("site", std::string(site.site));
    s.Set("bytes", site.bytes);
    s.Set("copies", site.copies);
    copy_sites.Append(std::move(s));
  }
  doc.Set("copy_sites", std::move(copy_sites));

  Json pool_events = Json::Object();
  for (const obs::PoolEventSnapshot& event : obs::PoolEventsSnapshot()) {
    pool_events.Set(event.event, event.count);
  }
  doc.Set("pool_events", std::move(pool_events));
  return doc;
}

InferenceHandler::Outcome InferenceHandler::Predict(
    const HttpRequest& request, const std::string& model,
    std::function<void(std::string)> respond) {
  // Admission backdate: the trace's admission span starts here, before
  // body decode, so decode cost shows up in the trace instead of vanishing
  // between connection read and queue push.
  auto received = serve::Clock::now();
  http_stats_->RecordRequest("predict");
  if (request.method != "POST") {
    return Respond(405, ErrorJson("predict requires POST"),
                   request.keep_alive);
  }
  // Unknown model outranks a malformed body: the resource doesn't exist,
  // so 404 — not a 400 about a body nobody would have decoded.
  if (!server_->HasModel(model)) {
    return Respond(404, ErrorJson("no model named '" + model + "'"),
                   request.keep_alive);
  }

  const std::string* content_type = request.FindHeader("content-type");
  bool binary_in =
      content_type != nullptr &&
      content_type->compare(0, std::strlen(kBinaryType), kBinaryType) == 0;
  DecodedBody decoded = binary_in ? DecodeBinaryBody(request)
                                  : DecodeJsonBody(request.body);
  if (!decoded.ok) {
    return Respond(400, ErrorJson(decoded.error),
                   request.keep_alive);
  }

  const std::string* accept = request.FindHeader("accept");
  bool binary_out =
      accept != nullptr &&
      accept->compare(0, std::strlen(kBinaryType), kBinaryType) == 0;
  bool keep_alive = request.keep_alive;
  // `X-Nimble-Trace: 1` asks for the request's own stage timings back as a
  // response header ("0" or absent: no echo).
  const std::string* trace_header = request.FindHeader("x-nimble-trace");
  bool echo_trace = trace_header != nullptr && !trace_header->empty() &&
                    *trace_header != "0";
  // weak_ptr: this callback fires on a pool worker and may outlive the
  // front end (slow batch, drain timeout expired). Then the stats write is
  // dropped; `respond` (HttpServer's lifeline-gated poster) likewise
  // degrades to a no-op rather than touching freed memory.
  std::weak_ptr<HttpStats> weak_stats = http_stats_;
  auto on_complete = [model, binary_out, keep_alive, echo_trace, weak_stats,
                      respond = std::move(respond)](
                         runtime::ObjectRef result, std::exception_ptr error,
                         const obs::TraceContext& trace) {
    std::shared_ptr<HttpStats> stats = weak_stats.lock();
    respond(SerializeResult(model, result, std::move(error), binary_out,
                            keep_alive, stats.get(),
                            echo_trace ? &trace : nullptr));
  };

  serve::Server::AdmitResult admit = server_->TrySubmitCallback(
      model, std::move(decoded.args), decoded.length_hint,
      std::move(on_complete), received);
  switch (admit.status) {
    case serve::Server::AdmitStatus::kAccepted: {
      Outcome outcome;
      outcome.async = true;
      return outcome;
    }
    case serve::Server::AdmitStatus::kQueueFull: {
      // The shed path of the PR-1 backpressure contract, now on the wire:
      // the client sees 429 + Retry-After instead of an ever-growing
      // buffer. One second is an honest hint for a queue that a scheduler
      // drains in milliseconds — clients with better knowledge of their
      // own latency budget can retry sooner.
      Json body = Json::Object();
      body.Set("error", "queue full for model '" + model + "'");
      body.Set("queue_depth", admit.queue_depth);
      body.Set("queue_capacity", admit.queue_capacity);
      http_stats_->RecordResponse(429);
      Outcome outcome;
      outcome.response = HttpCodec::WriteResponse(
          429, body.Dump(), kJsonType, request.keep_alive,
          {{"Retry-After", "1"}});
      return outcome;
    }
    case serve::Server::AdmitStatus::kUnknownModel:
      return Respond(404, ErrorJson("no model named '" + model + "'"),
                     request.keep_alive);
    case serve::Server::AdmitStatus::kClosed:
    default:
      return Respond(503, ErrorJson("server is draining"),
                     /*keep_alive=*/false);
  }
}

InferenceHandler::Outcome InferenceHandler::Handle(
    const HttpRequest& request, std::function<void(std::string)> respond) {
  // Split the target into path and query: routing matches the path, and
  // only /debug/trace reads the query.
  const std::string& target = request.target;
  size_t query_at = target.find('?');
  std::string path = target.substr(0, query_at);  // npos slices the whole
  std::string query =
      query_at == std::string::npos ? "" : target.substr(query_at + 1);
  // POST /v1/models/<name>:predict
  constexpr const char* kModelsPrefix = "/v1/models";
  if (path.compare(0, std::strlen(kModelsPrefix), kModelsPrefix) == 0) {
    std::string rest = path.substr(std::strlen(kModelsPrefix));
    if (rest.empty() && request.method == "GET") {
      http_stats_->RecordRequest("models");
      Json body = Json::Object();
      Json names = Json::Array();
      for (const std::string& name : server_->model_names()) {
        names.Append(name);
      }
      body.Set("models", std::move(names));
      return Respond(200, body, request.keep_alive);
    }
    constexpr const char* kPredictSuffix = ":predict";
    if (rest.size() > 1 && rest[0] == '/') {
      std::string name = rest.substr(1);
      size_t suffix_at = name.rfind(kPredictSuffix);
      if (suffix_at != std::string::npos &&
          suffix_at + std::strlen(kPredictSuffix) == name.size()) {
        return Predict(request, name.substr(0, suffix_at), std::move(respond));
      }
    }
  }
  if (path == "/stats" && request.method == "GET") {
    http_stats_->RecordRequest("stats");
    return Respond(200, StatsJson(), request.keep_alive);
  }
  if (path == "/metrics" && request.method == "GET") {
    http_stats_->RecordRequest("metrics");
    http_stats_->RecordResponse(200);
    Outcome outcome;
    outcome.close_connection = !request.keep_alive;
    outcome.response = HttpCodec::WriteResponse(
        200, MetricsText(), "text/plain; version=0.0.4; charset=utf-8",
        request.keep_alive);
    return outcome;
  }
  if (path == "/debug/trace" && request.method == "GET") {
    http_stats_->RecordRequest("trace");
    // ?n=K caps how many records to export; default a screenful, ceiling
    // well past any ring capacity.
    size_t n = 64;
    size_t at = query.find("n=");
    if (at != std::string::npos && (at == 0 || query[at - 1] == '&')) {
      const char* start = query.c_str() + at + 2;
      char* end = nullptr;
      long long parsed = std::strtoll(start, &end, 10);
      if (end != start && parsed > 0) {
        n = static_cast<size_t>(std::min<long long>(parsed, 65536));
      }
    }
    http_stats_->RecordResponse(200);
    Outcome outcome;
    outcome.close_connection = !request.keep_alive;
    outcome.response = HttpCodec::WriteResponse(200, TraceJson(n), kJsonType,
                                                request.keep_alive);
    return outcome;
  }
  if (path == "/debug/steps" && request.method == "GET") {
    http_stats_->RecordRequest("steps");
    std::string model = QueryParam(query, "model");
    size_t n = 256;
    std::string n_str = QueryParam(query, "n");
    if (!n_str.empty()) {
      char* end = nullptr;
      long long parsed = std::strtoll(n_str.c_str(), &end, 10);
      if (end != n_str.c_str() && parsed > 0) {
        n = static_cast<size_t>(std::min<long long>(parsed, 65536));
      }
    }
    std::string body = StepsJson(model, n);
    if (body.empty()) {
      return Respond(404,
                     ErrorJson("no continuous model named '" + model + "'"),
                     request.keep_alive);
    }
    http_stats_->RecordResponse(200);
    Outcome outcome;
    outcome.close_connection = !request.keep_alive;
    outcome.response = HttpCodec::WriteResponse(200, body, kJsonType,
                                                request.keep_alive);
    return outcome;
  }
  if (path == "/debug/memory" && request.method == "GET") {
    http_stats_->RecordRequest("memory");
    // ?n=K caps size-class rows per scope; default covers every class a
    // realistic bucket ladder produces.
    size_t n = 256;
    std::string n_str = QueryParam(query, "n");
    if (!n_str.empty()) {
      char* end = nullptr;
      long long parsed = std::strtoll(n_str.c_str(), &end, 10);
      if (end != n_str.c_str() && parsed > 0) {
        n = static_cast<size_t>(std::min<long long>(parsed, 65536));
      }
    }
    return Respond(200, MemoryJson(n), request.keep_alive);
  }
  if (path == "/healthz") {
    http_stats_->RecordRequest("healthz");
    Json body = Json::Object();
    bool draining = server_->draining();
    body.Set("status", draining ? "draining" : "serving");
    return Respond(draining ? 503 : 200, body, request.keep_alive);
  }
  http_stats_->RecordRequest("other");
  return Respond(404,
                 ErrorJson("no route for " + request.method + " " + target),
                 request.keep_alive);
}

}  // namespace net
}  // namespace nimble
