#include "src/net/http_codec.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace nimble {
namespace net {

std::string AsciiLowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

const std::string* FindHeaderIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  return FindHeaderIn(headers, name);
}

const char* HttpCodec::ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpCodec::Status HttpCodec::Poison(int status, std::string reason) {
  error_status_ = status;
  error_ = std::move(reason);
  return Status::kError;
}

bool HttpCodec::ParseHead(HttpRequest* out, size_t head_end) {
  // Request line: METHOD SP target SP version CRLF.
  size_t line_end = buffer_.find("\r\n");
  std::string line = buffer_.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    Poison(400, "malformed request line");
    return false;
  }
  out->method = line.substr(0, sp1);
  out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  out->version = line.substr(sp2 + 1);
  if (out->method.empty() || out->target.empty() ||
      out->version.compare(0, 5, "HTTP/") != 0) {
    Poison(400, "malformed request line");
    return false;
  }

  out->headers.clear();
  size_t pos = line_end + 2;
  while (pos < head_end) {
    size_t eol = buffer_.find("\r\n", pos);
    std::string header = buffer_.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = header.find(':');
    if (colon == std::string::npos) {
      Poison(400, "malformed header line");
      return false;
    }
    out->headers.emplace_back(AsciiLowercase(Trim(header.substr(0, colon))),
                              Trim(header.substr(colon + 1)));
  }

  out->keep_alive = out->version != "HTTP/1.0";
  if (const std::string* conn = out->FindHeader("connection")) {
    std::string value = AsciiLowercase(*conn);
    if (value == "close") out->keep_alive = false;
    if (value == "keep-alive") out->keep_alive = true;
  }
  return true;
}

HttpCodec::Status HttpCodec::Next(HttpRequest* out) {
  if (error_status_ != 0) return Status::kError;

  if (!have_head_) {
    size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Poison(400, "request head exceeds limit");
      }
      return Status::kNeedMore;
    }
    if (head_end > limits_.max_header_bytes) {
      return Poison(400, "request head exceeds limit");
    }
    pending_ = HttpRequest();
    if (!ParseHead(&pending_, head_end)) return Status::kError;

    body_needed_ = 0;
    if (const std::string* te = pending_.FindHeader("transfer-encoding")) {
      if (AsciiLowercase(*te) != "identity") {
        // 501, not 411: the coding is unimplemented, full stop. 411 would
        // invite HTTP libraries that auto-retry with Content-Length into a
        // loop without ever learning chunked is unsupported.
        return Poison(501, "chunked request bodies unsupported");
      }
    }
    if (const std::string* cl = pending_.FindHeader("content-length")) {
      // Digits only: strtoull would silently accept "-4" (wrapping to a
      // huge unsigned and misreporting it as 413) and leading whitespace.
      bool all_digits = !cl->empty();
      for (char ch : *cl) {
        if (ch < '0' || ch > '9') {
          all_digits = false;
          break;
        }
      }
      char* end = nullptr;
      unsigned long long n = std::strtoull(cl->c_str(), &end, 10);
      if (!all_digits || end != cl->c_str() + cl->size()) {
        return Poison(400, "malformed Content-Length");
      }
      if (n > limits_.max_body_bytes) {
        return Poison(413, "body exceeds limit");
      }
      body_needed_ = static_cast<size_t>(n);
    }
    buffer_.erase(0, head_end + 4);
    have_head_ = true;
    if (const std::string* expect = pending_.FindHeader("expect")) {
      if (AsciiLowercase(*expect) == "100-continue" &&
          buffer_.size() < body_needed_) {
        expect_continue_pending_ = true;
      }
    }
  }

  if (buffer_.size() < body_needed_) return Status::kNeedMore;

  pending_.body = buffer_.substr(0, body_needed_);
  buffer_.erase(0, body_needed_);
  have_head_ = false;
  *out = std::move(pending_);
  pending_ = HttpRequest();
  return Status::kRequest;
}

std::string HttpCodec::WriteResponse(
    int status, const std::string& body, const std::string& content_type,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string out;
  out.reserve(128 + body.size());
  char line[64];
  std::snprintf(line, sizeof(line), "HTTP/1.1 %d %s\r\n", status,
                ReasonPhrase(status));
  out += line;
  if (!body.empty()) {
    out += "Content-Type: " + content_type + "\r\n";
  }
  std::snprintf(line, sizeof(line), "Content-Length: %zu\r\n", body.size());
  out += line;
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace net
}  // namespace nimble
