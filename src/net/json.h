// Minimal JSON value: parse, build, serialize. No external dependencies.
//
// The HTTP front end's wire format — request bodies
// ({"inputs": [...], "length": n}), responses ({"shape": ..., "data":
// ...}), and the /stats endpoint — all go through this one type. It is a
// deliberately small tree representation (numbers are doubles, objects
// keep insertion order), tuned for the payloads serving actually sees:
// flat float arrays dominate, so Dump() writes numbers with enough
// precision that a float32 round-trips bit-exactly (9 significant digits)
// and Parse() is a single pass with no intermediate tokens.
//
// Not a general-purpose JSON library: no \uXXXX surrogate pairs beyond the
// BMP (any \uXXXX in the surrogate range D800-DFFF is a parse error, never
// silently encoded), numbers outside double's exact-integer range lose
// precision, and
// nesting is capped (kMaxDepth) so a hostile body cannot blow the stack.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace nimble {
namespace net {

class Json;
using JsonArray = std::vector<Json>;
/// Object members in insertion order (stats output stays human-readable).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Nesting bound enforced by Parse (arrays/objects deeper than this fail).
  static constexpr int kMaxDepth = 64;

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                   // NOLINT
  Json(double num) : type_(Type::kNumber), num_(num) {}            // NOLINT
  Json(int num) : Json(static_cast<double>(num)) {}                // NOLINT
  Json(int64_t num) : Json(static_cast<double>(num)) {}            // NOLINT
  Json(size_t num) : Json(static_cast<double>(num)) {}             // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                    // NOLINT
  Json(JsonArray items) : type_(Type::kArray), array_(std::move(items)) {}  // NOLINT
  Json(JsonObject members)                                          // NOLINT
      : type_(Type::kObject), object_(std::move(members)) {}

  static Json Array() { return Json(JsonArray{}); }
  static Json Object() { return Json(JsonObject{}); }

  /// Parses one JSON document (surrounding whitespace allowed; trailing
  /// garbage is an error). On failure returns null and sets `*error`.
  static Json Parse(const std::string& text, std::string* error = nullptr);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return num_; }
  int64_t integer() const { return static_cast<int64_t>(num_); }
  const std::string& str() const { return str_; }
  const JsonArray& items() const { return array_; }
  const JsonObject& members() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  /// Appends to an array / sets an object member (asserting the type).
  void Append(Json value);
  void Set(const std::string& key, Json value);

  /// Compact serialization (no whitespace). Numbers print with up to 9
  /// significant digits — float32 values round-trip bit-exactly — and
  /// integral values print without an exponent or decimal point.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace net
}  // namespace nimble
