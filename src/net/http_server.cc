#include "src/net/http_server.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "src/support/logging.h"

namespace nimble {
namespace net {

HttpServer::HttpServer(serve::Server* server, HttpServerConfig config)
    : server_(server),
      config_(std::move(config)),
      handler_(server, config_.label) {
  NIMBLE_CHECK(server_ != nullptr);
  lifeline_->server = this;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Start() {
  NIMBLE_CHECK(!started_.exchange(true)) << "HttpServer started twice";
  listener_ = std::make_unique<Listener>(config_.bind_addr, config_.port);
  // Registered before the loop thread exists, so no cross-thread Add.
  listener_->Start(&loop_, [this](int fd, const std::string& peer) {
    OnAccept(fd, peer);
  });
  io_thread_ = std::thread([this] { loop_.Run(); });
}

uint16_t HttpServer::port() const {
  NIMBLE_CHECK(listener_ != nullptr) << "port() before Start";
  return listener_->port();
}

void HttpServer::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;

  // Phase 1: no new connections.
  loop_.Post([this] { listener_->Close(); });

  // Phase 2: wait for in-flight inferences to queue their responses and
  // for every connection's output buffer to flush — probed on the loop
  // thread so connection state is read race-free.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(config_.drain_timeout_ms);
  struct Probe {
    std::mutex mu;
    std::condition_variable cv;
    bool probed = false;
    bool busy = false;
  };
  while (std::chrono::steady_clock::now() < deadline) {
    // Shared state: the probe task may run arbitrarily late (or never, if
    // the loop is already gone), so it must not reference this stack frame.
    auto probe = std::make_shared<Probe>();
    loop_.Post([this, probe] {
      bool any = in_flight_.load() > 0;
      for (const auto& [id, conn] : conns_) {
        if (conn->in_flight || conn->has_pending_output()) any = true;
      }
      {
        std::lock_guard<std::mutex> lock(probe->mu);
        probe->probed = true;
        probe->busy = any;
      }
      probe->cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(probe->mu);
    probe->cv.wait_for(lock, std::chrono::milliseconds(200),
                       [&] { return probe->probed; });
    // No answer means the loop is not running; then nothing can be in
    // flight on it either.
    if (!probe->probed || !probe->busy) break;
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Phase 3: stop the loop and tear everything down on this thread (the
  // loop thread is joined, so the loop-state ownership transfers here).
  loop_.Stop();
  if (io_thread_.joinable()) io_thread_.join();
  // Cut the lifeline: completion callbacks still held by serve::Server
  // (batches that outran the drain timeout) now drop their responses
  // instead of touching this object or its loop.
  {
    std::lock_guard<std::mutex> lock(lifeline_->mu);
    lifeline_->server = nullptr;
  }
  conns_.clear();
  conn_count_.store(0);
}

void HttpServer::OnAccept(int fd, const std::string& peer) {
  (void)peer;
  if (conns_.size() >= config_.max_connections) {
    // Refusing at accept keeps memory bounded; the kernel sends RST and a
    // well-behaved client retries against a less-loaded replica.
    ::close(fd);
    return;
  }
  uint64_t id = next_conn_id_++;
  auto conn = std::make_unique<Connection>(id, fd, config_.limits);
  Connection* raw = conn.get();
  conns_.emplace(id, std::move(conn));
  conn_count_.store(conns_.size());
  loop_.Add(raw->fd(), EPOLLIN,
            [this, id](uint32_t events) { OnConnEvent(id, events); });
}

void HttpServer::Destroy(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_.Remove(it->second->fd());
  conns_.erase(it);  // closes the fd
  conn_count_.store(conns_.size());
}

void HttpServer::OnConnEvent(uint64_t id, uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();

  if (events & (EPOLLHUP | EPOLLERR)) {
    Destroy(id);
    return;
  }
  if (events & EPOLLOUT) {
    if (conn->Flush() == Connection::IoStatus::kClosed) {
      Destroy(id);
      return;
    }
    // Draining the buffer may unblock parsing paused at the output
    // high-water mark.
    if (!conn->in_flight &&
        conn->pending_output_bytes() < config_.max_buffered_output) {
      ProcessRequests(conn);
      if (conns_.find(id) == conns_.end()) return;  // died in processing
    }
  }
  if (events & EPOLLIN) {
    if (conn->ReadIntoCodec() == Connection::IoStatus::kClosed) {
      // Peer EOF. Anything already buffered cannot be answered onto a
      // closing socket reliably; drop the connection (an in-flight
      // completion will find the id gone and discard its response).
      Destroy(id);
      return;
    }
    ProcessRequests(conn);
    if (conns_.find(id) == conns_.end()) return;  // died in processing
  }
  UpdateInterest(conn);
}

void HttpServer::ProcessRequests(Connection* conn) {
  const uint64_t id = conn->id();
  // Stop parsing once the output buffer passes its high-water mark: a
  // client pipelining synchronous requests without reading responses is
  // throttled (EPOLLIN off via UpdateInterest) instead of growing the
  // buffer without bound. Parsing resumes when EPOLLOUT drains it.
  while (!conn->in_flight && !conn->close_after_flush &&
         conn->pending_output_bytes() < config_.max_buffered_output) {
    HttpRequest request;
    HttpCodec::Status status = conn->codec().Next(&request);
    if (status == HttpCodec::Status::kNeedMore) {
      if (conn->codec().ClaimExpectContinue()) {
        conn->QueueOutput("HTTP/1.1 100 Continue\r\n\r\n");
        if (conn->Flush() == Connection::IoStatus::kClosed) {
          Destroy(id);
          return;
        }
      }
      break;
    }
    if (status == HttpCodec::Status::kError) {
      conn->QueueOutput(HttpCodec::WriteResponse(
          conn->codec().error_status(),
          "{\"error\":\"" + conn->codec().error() + "\"}",
          "application/json", /*keep_alive=*/false));
      conn->close_after_flush = true;
      break;
    }

    bool keep_alive = request.keep_alive;
    in_flight_.fetch_add(1);
    // The lifeline makes this closure safe to fire after the front end is
    // gone (batch finishing past the drain timeout): under the lifeline
    // lock either the HttpServer is alive — its loop accepts the post —
    // or the response is dropped.
    auto respond = [lifeline = lifeline_, id](std::string response) {
      std::lock_guard<std::mutex> lock(lifeline->mu);
      HttpServer* self = lifeline->server;
      if (self == nullptr) return;  // front end torn down; drop
      self->loop_.Post([self, id, response = std::move(response)]() mutable {
        self->CompleteAsync(id, std::move(response));
      });
    };
    InferenceHandler::Outcome outcome =
        handler_.Handle(request, std::move(respond));
    if (outcome.async) {
      conn->in_flight = true;
      if (!keep_alive) conn->close_after_flush = true;  // after the response
      break;
    }
    in_flight_.fetch_sub(1);  // answered synchronously
    conn->QueueOutput(std::move(outcome.response));
    // The handler may demand a close even on a keep-alive request (a 503
    // that advertised "Connection: close" while draining).
    if (!keep_alive || outcome.close_connection) {
      conn->close_after_flush = true;
    }
    if (conn->Flush() == Connection::IoStatus::kClosed) {
      Destroy(id);
      return;
    }
  }
  UpdateInterest(conn);
}

void HttpServer::CompleteAsync(uint64_t id, std::string response) {
  in_flight_.fetch_sub(1);
  auto it = conns_.find(id);
  if (it == conns_.end()) return;  // client left; drop the response
  Connection* conn = it->second.get();
  conn->in_flight = false;
  conn->QueueOutput(std::move(response));
  if (conn->Flush() == Connection::IoStatus::kClosed) {
    Destroy(id);
    return;
  }
  // Pipelined requests buffered while this one ran can go now.
  ProcessRequests(conn);
}

void HttpServer::UpdateInterest(Connection* conn) {
  if (conn->close_after_flush && !conn->has_pending_output() &&
      !conn->in_flight) {
    Destroy(conn->id());
    return;
  }
  uint32_t events = 0;
  // Reading pauses while a request is in flight, the connection is
  // winding down, or its output buffer is past the high-water mark — the
  // per-connection half of backpressure.
  if (!conn->in_flight && !conn->close_after_flush &&
      conn->pending_output_bytes() < config_.max_buffered_output) {
    events |= EPOLLIN;
  }
  if (conn->has_pending_output()) events |= EPOLLOUT;
  loop_.Modify(conn->fd(), events);
}

}  // namespace net
}  // namespace nimble
