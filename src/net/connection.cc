#include "src/net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace nimble {
namespace net {

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Connection::IoStatus Connection::ReadIntoCodec() {
  char buf[16 * 1024];
  while (true) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      codec_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return IoStatus::kClosed;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    if (errno == EINTR) continue;
    return IoStatus::kClosed;  // ECONNRESET and friends
  }
}

void Connection::QueueOutput(std::string bytes) {
  if (out_offset_ == out_.size()) {
    out_ = std::move(bytes);
    out_offset_ = 0;
  } else {
    // Compact the already-flushed prefix before appending, so a partially
    // drained buffer holds only live bytes.
    out_.erase(0, out_offset_);
    out_offset_ = 0;
    out_ += bytes;
  }
}

Connection::IoStatus Connection::Flush() {
  while (out_offset_ < out_.size()) {
    ssize_t n = ::send(fd_, out_.data() + out_offset_,
                       out_.size() - out_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      out_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    if (errno == EINTR) continue;
    return IoStatus::kClosed;  // EPIPE/ECONNRESET: peer is gone
  }
  out_.clear();
  out_offset_ = 0;
  return IoStatus::kOk;
}

}  // namespace net
}  // namespace nimble
