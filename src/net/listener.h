// Non-blocking TCP accept socket for the HTTP front end.
//
// Binds and listens at construction (port 0 picks an ephemeral port —
// tests and the loadgen read it back via port()), registers itself on an
// EventLoop, and invokes the accept callback with each new connection's
// already-non-blocking fd. Accepting never blocks: on EPOLLIN the listener
// accept()s in a loop until EAGAIN, so one wakeup drains an accept burst.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/net/event_loop.h"

namespace nimble {
namespace net {

class Listener {
 public:
  /// Invoked on the loop thread with a freshly accepted non-blocking fd
  /// and the peer's printable address. The callee owns the fd.
  using AcceptFn = std::function<void(int fd, const std::string& peer)>;

  /// Binds `addr:port` (defaults to loopback; port 0 = ephemeral) and
  /// listens. Throws nimble::Error when the bind fails (port taken).
  Listener(const std::string& addr, uint16_t port);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Registers on `loop` and starts delivering accepts. Call once, before
  /// the loop runs (or on the loop thread).
  void Start(EventLoop* loop, AcceptFn on_accept);

  /// Deregisters from the loop and closes the listen socket: no further
  /// accepts. Loop thread only. Idempotent.
  void Close();

  /// The actually bound port (resolves port 0).
  uint16_t port() const { return port_; }

 private:
  void HandleReadable();

  int fd_ = -1;
  uint16_t port_ = 0;
  EventLoop* loop_ = nullptr;
  AcceptFn on_accept_;
};

}  // namespace net
}  // namespace nimble
