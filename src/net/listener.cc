#include "src/net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/support/logging.h"

namespace nimble {
namespace net {

Listener::Listener(const std::string& addr, uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  NIMBLE_CHECK(fd_ >= 0) << "socket: " << std::strerror(errno);
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  NIMBLE_CHECK(::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) == 1)
      << "bad listen address '" << addr << "'";
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) != 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    NIMBLE_FATAL() << "bind " << addr << ":" << port << ": "
                   << std::strerror(err);
  }
  NIMBLE_CHECK(::listen(fd_, SOMAXCONN) == 0)
      << "listen: " << std::strerror(errno);

  socklen_t len = sizeof(sa);
  NIMBLE_CHECK(::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&sa),
                             &len) == 0)
      << "getsockname: " << std::strerror(errno);
  port_ = ntohs(sa.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

void Listener::Start(EventLoop* loop, AcceptFn on_accept) {
  NIMBLE_CHECK(loop_ == nullptr) << "Listener started twice";
  loop_ = loop;
  on_accept_ = std::move(on_accept);
  loop_->Add(fd_, EPOLLIN, [this](uint32_t) { HandleReadable(); });
}

void Listener::Close() {
  if (fd_ < 0) return;
  if (loop_ != nullptr) loop_->Remove(fd_);
  ::close(fd_);
  fd_ = -1;
}

void Listener::HandleReadable() {
  while (true) {
    struct sockaddr_in peer;
    socklen_t len = sizeof(peer);
    int fd = ::accept4(fd_, reinterpret_cast<struct sockaddr*>(&peer), &len,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // Transient accept failures (ECONNABORTED, EMFILE) should not kill
      // the loop; log and keep serving existing connections.
      NIMBLE_LOG(WARNING) << "accept: " << std::strerror(errno);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    char buf[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &peer.sin_addr, buf, sizeof(buf));
    std::string peer_str =
        std::string(buf) + ":" + std::to_string(ntohs(peer.sin_port));
    on_accept_(fd, peer_str);
  }
}

}  // namespace net
}  // namespace nimble
