// Incremental HTTP/1.1 codec: bytes in, requests out; responses to bytes.
//
// The parser is a push-style state machine owned by each Connection: feed
// whatever the socket produced (any split — one byte at a time, or three
// pipelined requests in one read — parses identically), then pull complete
// requests with Next(). It understands exactly the slice of HTTP/1.1 a
// loopback inference front end needs: request line + headers +
// Content-Length body, keep-alive vs close, and hard limits on header and
// body size so a hostile peer cannot make the server buffer unboundedly
// (the codec's half of end-to-end backpressure). Chunked request bodies
// are rejected (501: not implemented) — inference clients know their
// payload size.
//
// No I/O and no threads in here: pure bytes-to-struct, trivially unit
// testable (tests/test_net.cc drives it byte-by-byte).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace nimble {
namespace net {

/// ASCII-lowercases a copy (header names/values; shared by codec, client,
/// and handler so case-handling cannot diverge between them).
std::string AsciiLowercase(std::string s);

/// First header with (lowercase) `name` in an ordered header list;
/// nullptr when absent.
const std::string* FindHeaderIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name);

struct HttpRequest {
  std::string method;   // uppercase, e.g. "POST"
  std::string target;   // origin-form, e.g. "/v1/models/lstm:predict"
  std::string version;  // "HTTP/1.1"
  /// Header names lowercased at parse time; values trimmed of surrounding
  /// whitespace. Order preserved.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request: HTTP/1.1 defaults to true,
  /// "Connection: close" (or HTTP/1.0 without keep-alive) turns it off.
  bool keep_alive = true;

  /// First header with this (lowercase) name; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
};

class HttpCodec {
 public:
  struct Limits {
    /// Cap on request line + headers, and on a body's Content-Length.
    size_t max_header_bytes = 16 * 1024;
    size_t max_body_bytes = 8 * 1024 * 1024;
  };

  enum class Status {
    kNeedMore,  // no complete request buffered yet
    kRequest,   // *out holds one parsed request
    kError,     // protocol violation; connection must be closed after the
                // error response (error_status()/error() describe it)
  };

  HttpCodec() = default;
  explicit HttpCodec(Limits limits) : limits_(limits) {}

  /// Appends raw socket bytes to the parse buffer.
  void Feed(const char* data, size_t n) { buffer_.append(data, n); }

  /// Extracts the next complete request, if any. After kError the codec is
  /// poisoned: every later call reports the same error.
  Status Next(HttpRequest* out);

  /// Set after Next() returns kError: the HTTP status code to answer with
  /// (400, 413, 501) and a short human-readable reason.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (pipelined requests wait here
  /// while one is in flight).
  size_t buffered() const { return buffer_.size(); }

  /// True exactly once per request whose head carried "Expect:
  /// 100-continue" and whose body has not fully arrived: the server must
  /// write an interim "HTTP/1.1 100 Continue" or clients like curl stall
  /// before sending the body. Claiming clears the flag.
  bool ClaimExpectContinue() {
    bool pending = expect_continue_pending_;
    expect_continue_pending_ = false;
    return pending;
  }

  /// Serializes a response. `headers` are extra headers (Content-Length,
  /// Content-Type for non-empty bodies, and Connection are emitted by the
  /// codec itself from `body`/`content_type`/`keep_alive`).
  static std::string WriteResponse(
      int status, const std::string& body, const std::string& content_type,
      bool keep_alive,
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Canonical reason phrase for the status codes this server emits.
  static const char* ReasonPhrase(int status);

 private:
  Status Poison(int status, std::string reason);
  bool ParseHead(HttpRequest* out, size_t head_end);

  Limits limits_;
  std::string buffer_;
  /// Parsed head of the in-progress request, waiting for its body.
  HttpRequest pending_;
  bool have_head_ = false;
  bool expect_continue_pending_ = false;
  size_t body_needed_ = 0;
  int error_status_ = 0;
  std::string error_;
};

}  // namespace net
}  // namespace nimble
