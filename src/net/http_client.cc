#include "src/net/http_client.h"

#include "src/net/http_codec.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace nimble {
namespace net {

const std::string* BlockingHttpClient::Response::FindHeader(
    const std::string& name) const {
  return FindHeaderIn(headers, name);
}

BlockingHttpClient::BlockingHttpClient(std::string host, uint16_t port)
    : host_(std::move(host)), port_(port) {}

BlockingHttpClient::~BlockingHttpClient() { Disconnect(); }

void BlockingHttpClient::Disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  rx_.clear();
}

bool BlockingHttpClient::EnsureConnected(std::string* error) {
  if (fd_ >= 0) return true;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &sa.sin_addr) != 1) {
    *error = "bad host '" + host_ + "'";
    Disconnect();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    *error = std::string("connect: ") + std::strerror(errno);
    Disconnect();
    return false;
  }
  return true;
}

BlockingHttpClient::Response BlockingHttpClient::Request(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  Response response;
  for (int attempt = 0; attempt < 2; ++attempt) {
    response = Response();
    if (!EnsureConnected(&response.error)) return response;

    std::string request = method + " " + target + " HTTP/1.1\r\n";
    request += "Host: " + host_ + "\r\n";
    for (const auto& [name, value] : headers) {
      request += name + ": " + value + "\r\n";
    }
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    request += body;

    bool sent = true;
    size_t offset = 0;
    while (offset < request.size()) {
      ssize_t n = ::send(fd_, request.data() + offset, request.size() - offset,
                         MSG_NOSIGNAL);
      if (n <= 0) {
        if (errno == EINTR) continue;
        sent = false;
        break;
      }
      offset += static_cast<size_t>(n);
    }
    if (!sent) {
      // A keep-alive connection the server closed between requests looks
      // like a send failure; retry once on a fresh connection.
      Disconnect();
      if (attempt == 0) continue;
      response.error = "send failed";
      return response;
    }

    // Read response heads until a non-interim one arrives (a 100 Continue
    // is swallowed without re-sending anything).
    bool head_ok = false;
    while (true) {
      size_t head_end;
      while ((head_end = rx_.find("\r\n\r\n")) == std::string::npos) {
        char buf[16 * 1024];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
          rx_.append(buf, static_cast<size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;  // EOF or error with a partial head
      }
      if (head_end == std::string::npos) break;

      // Parse status line + headers.
      response.status = 0;
      response.headers.clear();
      std::string head = rx_.substr(0, head_end);
      rx_.erase(0, head_end + 4);
      size_t line_end = head.find("\r\n");
      std::string status_line = head.substr(0, line_end);
      size_t sp = status_line.find(' ');
      response.status = sp == std::string::npos
                            ? 0
                            : std::atoi(status_line.c_str() + sp + 1);
      size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
      while (pos < head.size()) {
        size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos) eol = head.size();
        std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        size_t colon = line.find(':');
        if (colon == std::string::npos) continue;
        std::string name = AsciiLowercase(line.substr(0, colon));
        size_t value_begin = line.find_first_not_of(' ', colon + 1);
        response.headers.emplace_back(
            name, value_begin == std::string::npos ? ""
                                                   : line.substr(value_begin));
      }
      if (response.status == 100) continue;
      head_ok = true;
      break;
    }
    if (!head_ok) {
      bool nothing_received = rx_.empty() && response.status == 0;
      Disconnect();
      // A stale keep-alive connection dies with nothing received; retry
      // the request once on a fresh connection.
      if (attempt == 0 && nothing_received) continue;
      response.error = "connection closed mid-response";
      return response;
    }

    size_t content_length = 0;
    if (const std::string* cl = response.FindHeader("content-length")) {
      content_length = static_cast<size_t>(std::strtoull(cl->c_str(),
                                                         nullptr, 10));
    }
    while (rx_.size() < content_length) {
      char buf[16 * 1024];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        rx_.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      response.error = "connection closed mid-body";
      return response;
    }
    response.body = rx_.substr(0, content_length);
    rx_.erase(0, content_length);
    response.ok = true;

    const std::string* conn = response.FindHeader("connection");
    if (conn != nullptr && AsciiLowercase(*conn) == "close") Disconnect();
    return response;
  }
  return response;
}

}  // namespace net
}  // namespace nimble
