// Minimal blocking HTTP/1.1 client for tests and the loopback loadgen.
//
// Deliberately simple — one connection, synchronous request/response,
// keep-alive reuse, Content-Length framing only — because its job is to
// *drive* the async server from ordinary threads, not to be a second I/O
// subsystem. Not thread-safe; give each client thread its own instance.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nimble {
namespace net {

class BlockingHttpClient {
 public:
  struct Response {
    /// False when the transport failed (connect/send/recv error or
    /// premature close); `error` then says why and `status` is 0.
    bool ok = false;
    std::string error;
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;  // lowercased
    std::string body;

    const std::string* FindHeader(const std::string& name) const;
  };

  BlockingHttpClient(std::string host, uint16_t port);
  ~BlockingHttpClient();

  BlockingHttpClient(const BlockingHttpClient&) = delete;
  BlockingHttpClient& operator=(const BlockingHttpClient&) = delete;

  /// Sends one request and blocks for the full response, (re)connecting as
  /// needed and reusing the connection afterwards when the server allows.
  Response Request(const std::string& method, const std::string& target,
                   const std::string& body = "",
                   const std::vector<std::pair<std::string, std::string>>&
                       headers = {});

  /// Convenience wrappers.
  Response Get(const std::string& target) { return Request("GET", target); }
  Response Post(const std::string& target, const std::string& body,
                const std::string& content_type = "application/json") {
    return Request("POST", target, body, {{"Content-Type", content_type}});
  }

  /// Drops the current connection (next Request reconnects).
  void Disconnect();

 private:
  bool EnsureConnected(std::string* error);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::string rx_;  // bytes read past the previous response
};

}  // namespace net
}  // namespace nimble
