// One HTTP/1.1 connection: socket fd + codec + buffered output.
//
// A Connection is pure per-socket state, driven entirely on the event-loop
// thread by HttpServer; it performs the non-blocking reads and writes but
// makes no routing or epoll decisions itself. The pieces that implement
// backpressure live here:
//
//  - `in_flight`: while an inference request is outstanding the server
//    stops reading this socket (EPOLLIN off) — a pipelining client is
//    throttled by TCP instead of buffering requests in memory;
//  - output is buffered and flushed opportunistically; what the socket
//    won't take stays queued and the server arms EPOLLOUT, so a slow
//    reader costs memory proportional to its own responses only.
//
// Identified by a monotonically increasing id (never recycled, unlike
// fds): completion callbacks capture the id, so a response racing the
// connection's death resolves to "drop" instead of writing into whichever
// unrelated socket inherited the fd number.
#pragma once

#include <cstdint>
#include <string>

#include "src/net/http_codec.h"

namespace nimble {
namespace net {

class Connection {
 public:
  enum class IoStatus {
    kOk,      // made progress (or nothing to do)
    kClosed,  // peer closed / fatal socket error; server must destroy
  };

  Connection(uint64_t id, int fd, HttpCodec::Limits limits)
      : id_(id), fd_(fd), codec_(limits) {}
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  HttpCodec& codec() { return codec_; }

  /// Drains the socket into the codec (reads until EAGAIN or EOF).
  IoStatus ReadIntoCodec();

  /// Appends response bytes to the output buffer (flushed by Flush).
  void QueueOutput(std::string bytes);

  /// Writes buffered output until EAGAIN or empty.
  IoStatus Flush();

  bool has_pending_output() const { return out_offset_ < out_.size(); }
  size_t pending_output_bytes() const { return out_.size() - out_offset_; }

  /// One request is being inferred; the server keeps EPOLLIN off while set.
  bool in_flight = false;
  /// Close once the output buffer drains (Connection: close, or protocol
  /// error responses).
  bool close_after_flush = false;

 private:
  uint64_t id_;
  int fd_;
  HttpCodec codec_;
  std::string out_;
  size_t out_offset_ = 0;
};

}  // namespace net
}  // namespace nimble
