// The assembled HTTP front end: event loop + listener + connections +
// inference handler, owning one I/O thread.
//
//   client sockets ──▶ EventLoop (1 thread) ──▶ HttpCodec ──▶
//     InferenceHandler ──▶ serve::Server::TrySubmitCallback ──▶
//     [scheduler / VM pool threads] ──▶ on_complete ──▶ loop.Post ──▶
//     response bytes out
//
// End-to-end backpressure, by construction:
//  - the loop thread never blocks on inference: admission is non-blocking
//    (a full queue is a 429 *response*, not a wait) and completions arrive
//    as posted tasks;
//  - pool workers never block on sockets: completing a request is
//    serialize + Post;
//  - a connection with a request in flight stops being read (EPOLLIN off),
//    so pipelining clients are throttled by TCP receive windows instead of
//    server memory;
//  - a slow-reading client's responses wait in its own connection's
//    buffer (EPOLLOUT-driven flush), bounded by its own request volume.
//
// Stop() drains gracefully: the listener closes first, in-flight
// responses get flushed (bounded by drain_timeout_ms), then the loop
// exits and idle connections close. Pair with serve::Server::Drain() —
// stop the front end, then drain the pipeline — for a teardown that
// never drops an admitted request.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/http_codec.h"
#include "src/net/inference_handler.h"
#include "src/net/listener.h"
#include "src/serve/server.h"

namespace nimble {
namespace net {

struct HttpServerConfig {
  /// Listen address; loopback by default (this is an in-datacenter/test
  /// front end — put real TLS termination in front for anything public).
  std::string bind_addr = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via port().
  uint16_t port = 0;
  /// Parser limits (header/body size caps).
  HttpCodec::Limits limits;
  /// Accepts beyond this many open connections are closed immediately.
  size_t max_connections = 1024;
  /// Per-connection output-buffer high-water mark: once a connection has
  /// this many unflushed response bytes, the server stops reading it
  /// (EPOLLIN off) until the buffer drains — a client pipelining
  /// synchronous requests (e.g. /stats) and never reading responses is
  /// bounded by this instead of growing server memory without limit.
  size_t max_buffered_output = 256 * 1024;
  /// How long Stop() waits for in-flight responses to flush.
  int64_t drain_timeout_ms = 5000;
  /// Name reported in /stats.
  std::string label = "nimble";
};

class HttpServer {
 public:
  /// `server` must outlive this object and should already be Start()ed.
  explicit HttpServer(serve::Server* server, HttpServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds (throws on a taken port) and spawns the I/O thread.
  void Start();

  /// Graceful stop: close the listener, flush in-flight responses (up to
  /// drain_timeout_ms), stop the loop, join, close every connection.
  /// Idempotent. Does NOT touch the serve::Server — drain that next.
  void Stop();

  /// Bound port (valid after Start).
  uint16_t port() const;

  /// Open connections right now (approximate outside the loop thread).
  size_t open_connections() const { return conn_count_.load(); }

  /// The /stats document, same as a GET /stats would return.
  Json StatsJson() const { return handler_.StatsJson(); }

 private:
  void OnAccept(int fd, const std::string& peer);
  void OnConnEvent(uint64_t id, uint32_t events);
  /// Parses and dispatches every complete buffered request until the
  /// connection goes busy (async in flight), runs dry, or dies.
  void ProcessRequests(Connection* conn);
  /// Async completion landing on the loop thread.
  void CompleteAsync(uint64_t id, std::string response);
  /// Re-arms epoll interest from the connection's state, destroying it if
  /// it is fully flushed and marked for close.
  void UpdateInterest(Connection* conn);
  void Destroy(uint64_t id);

  /// Shared by the completion-callback closures handed to serve::Server:
  /// they outlive the front end when a batch finishes after Stop()'s drain
  /// timeout expired. `server` is nulled (under the mutex) once the loop
  /// has been joined, so a late completion drops its response instead of
  /// posting to a dead loop or dereferencing a destroyed HttpServer.
  struct Lifeline {
    std::mutex mu;
    HttpServer* server = nullptr;
  };

  serve::Server* server_;
  HttpServerConfig config_;
  InferenceHandler handler_;
  EventLoop loop_;
  std::unique_ptr<Listener> listener_;
  std::thread io_thread_;
  std::shared_ptr<Lifeline> lifeline_ = std::make_shared<Lifeline>();
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // ---- loop-thread state ----------------------------------------------
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;

  std::atomic<size_t> conn_count_{0};
  /// Requests admitted whose response has not yet been queued to a
  /// connection (or dropped); Stop() waits for this to reach zero.
  std::atomic<int64_t> in_flight_{0};
};

}  // namespace net
}  // namespace nimble
