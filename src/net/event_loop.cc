#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/support/logging.h"

namespace nimble {
namespace net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  NIMBLE_CHECK(epoll_fd_ >= 0) << "epoll_create1: " << std::strerror(errno);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  NIMBLE_CHECK(wake_fd_ >= 0) << "eventfd: " << std::strerror(errno);
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  NIMBLE_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0)
      << "epoll_ctl(wake): " << std::strerror(errno);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Add(int fd, uint32_t events, IoCallback callback) {
  auto handler = std::make_shared<Handler>();
  handler->callback = std::move(callback);
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  NIMBLE_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl(add fd " << fd << "): " << std::strerror(errno);
  handlers_[fd] = std::move(handler);
}

void EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  NIMBLE_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
      << "epoll_ctl(mod fd " << fd << "): " << std::strerror(errno);
}

void EventLoop::Remove(int fd) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  it->second->alive = false;  // in-flight dispatch for this fd becomes a no-op
  handlers_.erase(it);
  // The fd may already be closed by its owner; EBADF/ENOENT are then fine.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still means the loop has a pending
  // wakeup, which is all we need.
  ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  (void)rc;
}

void EventLoop::DrainWakeups() {
  uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::DrainTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Run() {
  running_.store(true);
  loop_thread_.store(std::this_thread::get_id());
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (running_.load()) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout_ms=*/1000);
    if (n < 0) {
      if (errno == EINTR) continue;
      NIMBLE_LOG(WARNING) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWakeups();
        continue;
      }
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed by an earlier handler
      // Pin the handler: a callback that Removes this fd (or a peer whose
      // event is later in this batch) must not free it mid-dispatch.
      std::shared_ptr<Handler> handler = it->second;
      if (!handler->alive) continue;
      handler->callback(events[i].events);
    }
    DrainTasks();
  }
  // One final drain: tasks posted between the last epoll_wait and Stop()
  // still run, so a graceful stop never strands a queued response.
  DrainTasks();
  loop_thread_.store(std::thread::id());
}

void EventLoop::Stop() {
  running_.store(false);
  uint64_t one = 1;
  ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  (void)rc;
}

}  // namespace net
}  // namespace nimble
