#include "src/pass/type_infer.h"

#include <unordered_map>
#include <unordered_set>

#include "src/ir/printer.h"
#include "src/op/registry.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT

namespace {

Dim JoinDim(const Dim& a, const Dim& b) {
  if (a.StructEqual(b)) return a;
  return Dim::Any();
}

}  // namespace

Type JoinTypes(const Type& a, const Type& b) {
  NIMBLE_CHECK(a != nullptr && b != nullptr) << "join of missing type";
  NIMBLE_CHECK(a->kind() == b->kind())
      << "control-flow branches return different kinds of values: "
      << TypeToString(a) << " vs " << TypeToString(b);
  switch (a->kind()) {
    case TypeKind::kTensor: {
      const auto* ta = AsTensorType(a);
      const auto* tb = AsTensorType(b);
      NIMBLE_CHECK(ta->dtype == tb->dtype)
          << "branch dtype mismatch: " << TypeToString(a) << " vs "
          << TypeToString(b);
      NIMBLE_CHECK_EQ(ta->shape.size(), tb->shape.size())
          << "branch rank mismatch: " << TypeToString(a) << " vs "
          << TypeToString(b) << " (dynamic rank is unsupported)";
      Shape shape(ta->shape.size());
      for (size_t i = 0; i < shape.size(); ++i) {
        shape[i] = JoinDim(ta->shape[i], tb->shape[i]);
      }
      return TensorType(std::move(shape), ta->dtype);
    }
    case TypeKind::kTuple: {
      const auto* ta = AsTupleType(a);
      const auto* tb = AsTupleType(b);
      NIMBLE_CHECK_EQ(ta->fields.size(), tb->fields.size());
      std::vector<Type> fields;
      for (size_t i = 0; i < ta->fields.size(); ++i) {
        fields.push_back(JoinTypes(ta->fields[i], tb->fields[i]));
      }
      return TupleType(std::move(fields));
    }
    case TypeKind::kFunc:
      NIMBLE_CHECK(TypeEqual(a, b)) << "branch function types differ";
      return a;
    case TypeKind::kADT:
      NIMBLE_CHECK(AsADTType(a)->name == AsADTType(b)->name)
          << "branch ADT types differ";
      return a;
  }
  NIMBLE_FATAL() << "unreachable";
}

namespace {

class TypeInferencer {
 public:
  explicit TypeInferencer(Module* mod) : mod_(mod) {}

  void Run() {
    op::EnsureOpsRegistered();
    // Record declared signatures first so recursion can type-check.
    for (const auto& [name, fn] : mod_->functions()) {
      Type declared = DeclaredType(fn);
      if (declared) global_types_[name] = declared;
    }
    for (const auto& [name, fn] : mod_->functions()) {
      InferGlobal(name);
    }
  }

  Type InferStandalone(const Expr& e) {
    op::EnsureOpsRegistered();
    return Infer(e);
  }

 private:
  /// Fully-declared function type (all params annotated + ret declared),
  /// or null if something is missing.
  Type DeclaredType(const Function& fn) {
    if (fn->ret_type == nullptr) return nullptr;
    std::vector<Type> params;
    for (const Var& p : fn->params) {
      if (p->type_annotation == nullptr) return nullptr;
      params.push_back(p->type_annotation);
    }
    return FuncType(std::move(params), fn->ret_type);
  }

  Type InferGlobal(const std::string& name) {
    auto done = inferred_.find(name);
    if (done != inferred_.end()) return done->second;
    NIMBLE_CHECK(in_progress_.insert(name).second)
        << "recursive global function '" << name
        << "' must declare parameter and return types";
    Function fn = mod_->Lookup(name);
    Type t = Infer(fn);
    in_progress_.erase(name);
    inferred_[name] = t;
    global_types_[name] = t;
    return t;
  }

  Type LookupGlobalType(const std::string& name) {
    auto it = global_types_.find(name);
    if (it != global_types_.end()) return it->second;
    NIMBLE_CHECK(mod_ != nullptr && mod_->HasFunction(name))
        << "reference to unknown global '@" << name << "'";
    return InferGlobal(name);
  }

  Type Infer(const Expr& e) {
    NIMBLE_CHECK(e != nullptr) << "cannot infer type of null expression";
    // Vars resolve through the environment each time; other nodes are
    // annotated once (the IR is immutable below us).
    if (e->kind() == ExprKind::kVar) {
      const auto* v = static_cast<const VarNode*>(e.get());
      auto it = var_types_.find(v);
      if (it != var_types_.end()) {
        e->checked_type = it->second;
        return it->second;
      }
      NIMBLE_CHECK(v->type_annotation != nullptr)
          << "unbound variable %" << v->name << " without annotation";
      e->checked_type = v->type_annotation;
      return v->type_annotation;
    }
    if (e->checked_type != nullptr) return e->checked_type;
    Type t = InferUncached(e);
    e->checked_type = t;
    return t;
  }

  Type InferUncached(const Expr& e) {
    switch (e->kind()) {
      case ExprKind::kVar:
        NIMBLE_FATAL() << "handled above";
      case ExprKind::kGlobalVar:
        return LookupGlobalType(static_cast<const GlobalVarNode*>(e.get())->name);
      case ExprKind::kConstant: {
        const auto& data = static_cast<const ConstantNode*>(e.get())->data;
        return TensorType(StaticShape(data.shape()), data.dtype());
      }
      case ExprKind::kOp:
        // Bare operator references are only legal as call targets.
        NIMBLE_FATAL() << "operator used as a first-class value";
      case ExprKind::kConstructor: {
        const auto* c = static_cast<const ConstructorNode*>(e.get());
        return FuncType(c->field_types, ADTType(c->adt_name));
      }
      case ExprKind::kTuple: {
        const auto* t = static_cast<const TupleNode*>(e.get());
        std::vector<Type> fields;
        fields.reserve(t->fields.size());
        for (const Expr& f : t->fields) fields.push_back(Infer(f));
        return TupleType(std::move(fields));
      }
      case ExprKind::kTupleGetItem: {
        const auto* t = static_cast<const TupleGetItemNode*>(e.get());
        const auto* tt = AsTupleType(Infer(t->tuple));
        NIMBLE_CHECK(t->index >= 0 &&
                     static_cast<size_t>(t->index) < tt->fields.size())
            << "tuple index " << t->index << " out of range";
        return tt->fields[t->index];
      }
      case ExprKind::kCall:
        return InferCall(static_cast<const CallNode*>(e.get()));
      case ExprKind::kFunction:
        return InferFunction(static_cast<const FunctionNode*>(e.get()));
      case ExprKind::kLet: {
        const auto* l = static_cast<const LetNode*>(e.get());
        Type vt = Infer(l->value);
        if (l->var->type_annotation != nullptr) {
          NIMBLE_CHECK(TypeCompatible(vt, l->var->type_annotation))
              << "let binding type mismatch for %" << l->var->name << ": "
              << TypeToString(vt) << " vs annotation "
              << TypeToString(l->var->type_annotation);
        }
        var_types_[l->var.get()] = vt;
        l->var->checked_type = vt;
        return Infer(l->body);
      }
      case ExprKind::kIf: {
        const auto* i = static_cast<const IfNode*>(e.get());
        Type ct = Infer(i->cond);
        const auto* ctt = AsTensorType(ct);
        NIMBLE_CHECK(ctt->shape.empty() && ctt->dtype == DataType::Bool())
            << "if condition must be a bool scalar, got " << TypeToString(ct);
        Type tt = Infer(i->then_branch);
        Type ft = Infer(i->else_branch);
        return JoinTypes(tt, ft);
      }
      case ExprKind::kMatch: {
        const auto* m = static_cast<const MatchNode*>(e.get());
        Type dt = Infer(m->data);
        const auto* adt = AsADTType(dt);
        NIMBLE_CHECK(!m->clauses.empty()) << "match with no clauses";
        Type result;
        for (const MatchClause& c : m->clauses) {
          if (c.ctor != nullptr) {
            NIMBLE_CHECK(c.ctor->adt_name == adt->name)
                << "match clause constructor " << c.ctor->name
                << " does not belong to " << adt->name;
            NIMBLE_CHECK_EQ(c.binds.size(), c.ctor->field_types.size())
                << "constructor " << c.ctor->name << " arity mismatch";
            for (size_t i = 0; i < c.binds.size(); ++i) {
              var_types_[c.binds[i].get()] = c.ctor->field_types[i];
              c.binds[i]->checked_type = c.ctor->field_types[i];
            }
          }
          Type bt = Infer(c.body);
          result = result == nullptr ? bt : JoinTypes(result, bt);
        }
        return result;
      }
    }
    NIMBLE_FATAL() << "unreachable";
  }

  Type InferCall(const CallNode* call) {
    // Primitive operator.
    if (call->op->kind() == ExprKind::kOp) {
      const op::OpInfo& info = op::InfoOf(call->op);
      if (info.num_inputs >= 0) {
        NIMBLE_CHECK_EQ(static_cast<int>(call->args.size()), info.num_inputs)
            << "operator " << info.name << " arity mismatch";
      }
      std::vector<Type> arg_types;
      arg_types.reserve(call->args.size());
      for (const Expr& a : call->args) arg_types.push_back(Infer(a));
      NIMBLE_CHECK(info.type_rel != nullptr)
          << "operator " << info.name << " has no type relation";
      return info.type_rel(arg_types, call->attrs);
    }
    // ADT constructor application.
    if (call->op->kind() == ExprKind::kConstructor) {
      const auto* c = static_cast<const ConstructorNode*>(call->op.get());
      NIMBLE_CHECK_EQ(call->args.size(), c->field_types.size())
          << "constructor " << c->name << " arity mismatch";
      for (size_t i = 0; i < call->args.size(); ++i) {
        Type at = Infer(call->args[i]);
        NIMBLE_CHECK(TypeCompatible(at, c->field_types[i]))
            << "constructor " << c->name << " field " << i << ": "
            << TypeToString(at) << " vs " << TypeToString(c->field_types[i]);
      }
      call->op->checked_type = FuncType(c->field_types, ADTType(c->adt_name));
      return ADTType(c->adt_name);
    }
    // Global function, closure variable, or function literal.
    Type callee = Infer(call->op);
    const auto* ft = AsFuncType(callee);
    NIMBLE_CHECK_EQ(call->args.size(), ft->params.size())
        << "call arity mismatch: " << PrintExpr(call->op);
    for (size_t i = 0; i < call->args.size(); ++i) {
      Type at = Infer(call->args[i]);
      NIMBLE_CHECK(TypeCompatible(at, ft->params[i]))
          << "argument " << i << " type mismatch: " << TypeToString(at)
          << " vs expected " << TypeToString(ft->params[i]);
    }
    return ft->ret;
  }

  Type InferFunction(const FunctionNode* fn) {
    std::vector<Type> params;
    for (const Var& p : fn->params) {
      NIMBLE_CHECK(p->type_annotation != nullptr)
          << "function parameter %" << p->name << " must be annotated";
      var_types_[p.get()] = p->type_annotation;
      p->checked_type = p->type_annotation;
      params.push_back(p->type_annotation);
    }
    Type body = Infer(fn->body);
    if (fn->ret_type != nullptr) {
      NIMBLE_CHECK(TypeCompatible(body, fn->ret_type))
          << "function body type " << TypeToString(body)
          << " incompatible with declared return type "
          << TypeToString(fn->ret_type);
      return FuncType(std::move(params), fn->ret_type);
    }
    return FuncType(std::move(params), body);
  }

  Module* mod_;
  std::unordered_map<const VarNode*, Type> var_types_;
  std::unordered_map<std::string, Type> global_types_;
  std::unordered_map<std::string, Type> inferred_;
  std::unordered_set<std::string> in_progress_;
};

}  // namespace

void InferTypes(Module* mod) { TypeInferencer(mod).Run(); }

Type InferExprType(const Expr& e) {
  Module empty;
  return TypeInferencer(&empty).InferStandalone(e);
}

}  // namespace pass
}  // namespace nimble
