// MemoryPlan (§4.3): storage coalescing + kill insertion on the explicit
// allocation dialect.
//
// Within each linear let-chain, a statically-sized memory.alloc_storage is
// replaced by a reference to an earlier storage of compatible size/device
// whose tensors are all dead at that point (first-fit). memory.kill is
// inserted after the last use of each kernel tensor so the runtime can
// release registers before frame exit.
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/op/registry.h"
#include "src/pass/memory.h"
#include "src/ir/visitor.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT

namespace {

struct Binding {
  Var var;
  Expr value;
  bool removed = false;
};

const CallNode* AsOpCall(const Expr& e, const char* name) {
  if (e->kind() != ExprKind::kCall) return nullptr;
  const auto* call = static_cast<const CallNode*>(e.get());
  if (call->op->kind() != ExprKind::kOp) return nullptr;
  if (static_cast<const OpNode*>(call->op.get())->name != name) return nullptr;
  return call;
}

/// Collects every var referenced inside an expression (including nested
/// scopes), used for liveness.
void CollectVarUses(const Expr& e,
                    const std::function<void(const VarNode*)>& fn) {
  PostOrderVisit(e, [&](const Expr& x) {
    if (x->kind() == ExprKind::kVar) fn(static_cast<const VarNode*>(x.get()));
  });
}

class Planner {
 public:
  explicit Planner(MemoryPlanStats* stats) : stats_(stats) {}

  Function Run(const Function& fn) {
    return MakeFunction(fn->params, PlanScope(fn->body), fn->ret_type);
  }

 private:
  Expr PlanScope(const Expr& scope) {
    // Flatten, recursing into nested scopes first.
    std::vector<Binding> bindings;
    Expr cursor = scope;
    while (cursor->kind() == ExprKind::kLet) {
      const auto* let = static_cast<const LetNode*>(cursor.get());
      bindings.push_back(Binding{let->var, PlanValue(let->value)});
      cursor = let->body;
    }
    Expr tail = cursor;

    // Register aliases (`let a = b`) share a register in the VM compiler, so
    // liveness must be computed on alias roots.
    std::unordered_map<const VarNode*, const VarNode*> alias;
    auto root_of = [&](const VarNode* v) {
      while (true) {
        auto it = alias.find(v);
        if (it == alias.end()) return v;
        v = it->second;
      }
    };
    for (const Binding& b : bindings) {
      if (b.value->kind() == ExprKind::kVar) {
        alias[b.var.get()] = static_cast<const VarNode*>(b.value.get());
      }
    }

    // Last-use index per alias-root var in this scope (tail = index N), and
    // escape analysis: a tensor whose use is anything other than a consuming
    // kernel position (invoke_mut / shape_func / shape_of / device_copy /
    // kill) may outlive its last textual use — it escapes into a tuple, ADT,
    // closure, call or the return value — so its storage must never be
    // recycled.
    std::unordered_map<const VarNode*, size_t> last_use;
    std::unordered_set<const VarNode*> escaped;
    auto is_consuming = [](const Expr& value) {
      if (value->kind() == ExprKind::kVar) return true;  // transparent alias
      static const char* safe[] = {"memory.invoke_mut", "vm.shape_func",
                                   "vm.shape_of", "device_copy", "memory.kill",
                                   "memory.alloc_storage", "memory.alloc_tensor"};
      for (const char* name : safe) {
        if (AsOpCall(value, name) != nullptr) return true;
      }
      return false;
    };
    for (size_t i = 0; i < bindings.size(); ++i) {
      bool consuming = is_consuming(bindings[i].value);
      CollectVarUses(bindings[i].value, [&](const VarNode* v) {
        const VarNode* r = root_of(v);
        last_use[r] = i;
        if (!consuming) escaped.insert(r);
      });
    }
    size_t tail_index = bindings.size();
    CollectVarUses(tail, [&](const VarNode* v) {
      const VarNode* r = root_of(v);
      last_use[r] = tail_index;
      escaped.insert(r);
    });

    // Storage metadata: size/device for static allocs; tensors per storage.
    struct StorageInfo {
      int64_t size = -1;  // -1 = dynamic
      std::string device;
      size_t free_after = 0;  // max last_use over dependent tensors
      Var var;
    };
    std::unordered_map<const VarNode*, StorageInfo> storages;
    std::unordered_map<const VarNode*, const VarNode*> tensor_storage;
    std::unordered_map<const VarNode*, Var> tensor_vars;
    std::unordered_map<const VarNode*, Var> replacement;

    auto resolve = [&](const VarNode* v) -> const VarNode* {
      auto it = replacement.find(v);
      return it == replacement.end() ? v : it->second.get();
    };

    // First-fit free pool: (size, device) -> storages free at index.
    for (size_t i = 0; i < bindings.size(); ++i) {
      Binding& b = bindings[i];
      if (const CallNode* alloc = AsOpCall(b.value, "memory.alloc_storage")) {
        stats_->storage_allocs_before++;
        bool is_static = alloc->attrs.Has("size") && alloc->args.empty();
        StorageInfo info;
        info.size = is_static ? alloc->attrs.GetInt("size") : -1;
        info.device =
            alloc->attrs.Has("device")
                ? alloc->attrs.GetDevice("device", runtime::Device::CPU()).ToString()
                : "";
        info.var = b.var;
        if (is_static && !alloc->attrs.Has("is_shape")) {
          // Try to reuse a dead storage of sufficient, not-wasteful size.
          const VarNode* best = nullptr;
          int64_t best_size = -1;
          for (auto& [svar, sinfo] : storages) {
            if (sinfo.size < info.size || sinfo.size > 2 * info.size) continue;
            if (sinfo.device != info.device) continue;
            if (sinfo.free_after >= i) continue;  // still live
            if (best == nullptr || sinfo.size < best_size) {
              best = svar;
              best_size = sinfo.size;
            }
          }
          if (best != nullptr) {
            replacement[b.var.get()] = storages[best].var;
            // The reused storage's lifetime now extends; updated when its
            // new tensors are seen below.
            b.removed = true;
            continue;
          }
        }
        stats_->storage_allocs_after++;
        storages[b.var.get()] = info;
        continue;
      }
      if (const CallNode* alloc = AsOpCall(b.value, "memory.alloc_tensor")) {
        stats_->storage_allocs_after += 0;  // tensors are views, not allocs
        if (alloc->args[0]->kind() == ExprKind::kVar) {
          const VarNode* storage =
              resolve(static_cast<const VarNode*>(alloc->args[0].get()));
          tensor_storage[b.var.get()] = storage;
          if (!alloc->attrs.Has("is_shape")) tensor_vars[b.var.get()] = b.var;
          auto it = storages.find(storage);
          if (it != storages.end()) {
            auto lu = last_use.find(b.var.get());
            size_t tensor_last = lu == last_use.end() ? i : lu->second;
            if (escaped.count(b.var.get())) {
              tensor_last = std::numeric_limits<size_t>::max();  // pinned
            }
            it->second.free_after = std::max(it->second.free_after, tensor_last);
          }
          // Rewrite the storage argument if it was replaced.
          if (replacement.count(
                  static_cast<const VarNode*>(alloc->args[0].get()))) {
            std::vector<Expr> args = alloc->args;
            args[0] = replacement[static_cast<const VarNode*>(
                alloc->args[0].get())];
            Expr v = MakeCall(alloc->op, std::move(args), alloc->attrs);
            v->checked_type = b.value->checked_type;
            b.value = v;
          }
        }
        continue;
      }
    }

    // Insert kills after last uses of kernel tensors, and rebuild.
    Expr body = tail;
    for (size_t i = bindings.size(); i-- > 0;) {
      const Binding& b = bindings[i];
      if (b.removed) continue;
      // Tensors whose last use is this binding die here; release them
      // before the frame ends (lowered by the VM compiler to compile-time
      // register recycling).
      std::vector<Var> dead;
      std::unordered_set<const VarNode*> dead_seen;
      CollectVarUses(b.value, [&](const VarNode* v) {
        const VarNode* r = root_of(v);
        auto lu = last_use.find(r);
        if (lu == last_use.end() || lu->second != i) return;
        auto tv = tensor_vars.find(r);
        if (tv == tensor_vars.end()) return;  // only kernel tensors
        if (!dead_seen.insert(r).second) return;
        dead.push_back(tv->second);
      });
      for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
        Var kv = MakeVar("kill" + std::to_string(kill_counter_++));
        body = MakeLet(kv, MakeCall(op::GetOp("memory.kill"), {*it}, {}), body);
        stats_->kills_inserted++;
      }
      body = MakeLet(b.var, b.value, body);
    }
    return body;
  }

  Expr PlanValue(const Expr& value) {
    switch (value->kind()) {
      case ExprKind::kIf: {
        const auto* n = static_cast<const IfNode*>(value.get());
        Expr v = MakeIf(n->cond, PlanScope(n->then_branch),
                        PlanScope(n->else_branch));
        v->checked_type = value->checked_type;
        return v;
      }
      case ExprKind::kMatch: {
        const auto* n = static_cast<const MatchNode*>(value.get());
        std::vector<MatchClause> clauses;
        for (const MatchClause& c : n->clauses) {
          clauses.push_back(MatchClause{c.ctor, c.binds, PlanScope(c.body)});
        }
        Expr v = MakeMatch(n->data, std::move(clauses));
        v->checked_type = value->checked_type;
        return v;
      }
      case ExprKind::kFunction: {
        const auto* n = static_cast<const FunctionNode*>(value.get());
        Expr v = MakeFunction(n->params, PlanScope(n->body), n->ret_type);
        v->checked_type = value->checked_type;
        return v;
      }
      default:
        return value;
    }
  }

  MemoryPlanStats* stats_;
  int kill_counter_ = 0;
};

}  // namespace

MemoryPlanStats MemoryPlan(ir::Module* mod) {
  MemoryPlanStats stats;
  std::vector<std::pair<std::string, Function>> updated;
  for (const auto& [name, fn] : mod->functions()) {
    Planner planner(&stats);
    updated.emplace_back(name, planner.Run(fn));
  }
  for (auto& [name, fn] : updated) mod->Update(name, fn);
  return stats;
}

}  // namespace pass
}  // namespace nimble
