// ManifestAlloc (§4.3): make every allocation explicit in the IR.
#include <unordered_map>

#include "src/op/registry.h"
#include "src/pass/memory.h"
#include "src/support/logging.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT
using op::OpInfo;
using op::ShapeFuncMode;
using runtime::DataType;

namespace {

/// Ops the pass leaves untouched (already dialect or lowered specially).
bool IsDialectOp(const std::string& name) {
  return name.rfind("memory.", 0) == 0 || name.rfind("vm.", 0) == 0 ||
         name == "device_copy";
}

class AllocManifester {
 public:
  Function Run(const Function& fn) {
    return MakeFunction(fn->params, Process(fn->body), fn->ret_type);
  }

 private:
  struct Binding {
    Var var;
    Expr value;
  };

  Expr Process(const Expr& scope) {
    std::vector<Binding> out;
    Expr cursor = scope;
    while (cursor->kind() == ExprKind::kLet) {
      const auto* let = static_cast<const LetNode*>(cursor.get());
      Lower(let->var, let->value, &out);
      cursor = let->body;
    }
    Expr body = cursor;
    for (auto it = out.rbegin(); it != out.rend(); ++it) {
      body = MakeLet(it->var, it->value, body);
    }
    return body;
  }

  void Lower(const Var& var, const Expr& value, std::vector<Binding>* out) {
    // Recurse into nested scopes first.
    if (value->kind() == ExprKind::kIf) {
      const auto* n = static_cast<const IfNode*>(value.get());
      Expr v = MakeIf(n->cond, Process(n->then_branch), Process(n->else_branch));
      v->checked_type = value->checked_type;
      out->push_back({var, v});
      return;
    }
    if (value->kind() == ExprKind::kMatch) {
      const auto* n = static_cast<const MatchNode*>(value.get());
      std::vector<MatchClause> clauses;
      for (const MatchClause& c : n->clauses) {
        clauses.push_back(MatchClause{c.ctor, c.binds, Process(c.body)});
      }
      Expr v = MakeMatch(n->data, std::move(clauses));
      v->checked_type = value->checked_type;
      out->push_back({var, v});
      return;
    }
    if (value->kind() == ExprKind::kFunction) {
      const auto* n = static_cast<const FunctionNode*>(value.get());
      Expr v = MakeFunction(n->params, Process(n->body), n->ret_type);
      v->checked_type = value->checked_type;
      out->push_back({var, v});
      return;
    }
    if (value->kind() != ExprKind::kCall) {
      out->push_back({var, value});
      return;
    }
    const auto* call = static_cast<const CallNode*>(value.get());
    if (call->op->kind() != ExprKind::kOp) {
      out->push_back({var, value});
      return;
    }
    const std::string& op_name = static_cast<const OpNode*>(call->op.get())->name;
    if (IsDialectOp(op_name)) {
      out->push_back({var, value});
      return;
    }
    const OpInfo& info = op::OpRegistry::Global()->Get(op_name);

    // Output tensor types, from inference.
    NIMBLE_CHECK(value->checked_type != nullptr)
        << "ManifestAlloc requires type inference (op " << op_name << ")";
    std::vector<const TensorTypeNode*> out_types;
    if (value->checked_type->kind() == TypeKind::kTuple) {
      for (const Type& f : AsTupleType(value->checked_type)->fields) {
        out_types.push_back(AsTensorType(f));
      }
    } else {
      out_types.push_back(AsTensorType(value->checked_type));
    }

    bool all_static = true;
    for (const auto* t : out_types) all_static &= t->IsFullyStatic();

    if (op_name == "reshape") {
      LowerReshape(var, call, out_types[0], all_static, out);
      return;
    }

    std::vector<Expr> out_tensors;
    if (all_static) {
      for (const auto* t : out_types) {
        out_tensors.push_back(EmitStaticAlloc(AsStaticShape(t->shape), t->dtype,
                                              /*is_shape=*/false, out));
      }
    } else {
      // Shape-function machinery. Output-shape tensors are small static
      // CPU allocations.
      std::vector<Expr> shape_args = EmitShapeFuncInputs(info, call, out);
      std::vector<Expr> out_shapes;
      for (const auto* t : out_types) {
        out_shapes.push_back(EmitStaticAlloc(
            {static_cast<int64_t>(t->shape.size())}, DataType::Int64(),
            /*is_shape=*/true, out));
      }
      // Forward the op's own attrs so the shape function can use them.
      Attrs merged = call->attrs;
      merged.Set("op_name", op_name);
      merged.Set("mode", static_cast<int64_t>(info.shape_mode));
      merged.Set("num_inputs", static_cast<int64_t>(shape_args.size()));
      std::vector<Expr> sf_all = shape_args;
      for (const Expr& s : out_shapes) sf_all.push_back(s);
      Bind(MakeCall(op::GetOp("vm.shape_func"), sf_all, merged), out);

      for (size_t i = 0; i < out_types.size(); ++i) {
        const auto* t = out_types[i];
        Attrs st_attrs;
        st_attrs.Set("alignment", int64_t{64});
        st_attrs.Set("dtype", t->dtype.ToString());
        Expr storage = Bind(
            MakeCall(op::GetOp("memory.alloc_storage"), {out_shapes[i]}, st_attrs),
            out);
        Attrs at_attrs;
        at_attrs.Set("dtype", t->dtype.ToString());
        at_attrs.Set("rank", static_cast<int64_t>(t->shape.size()));
        at_attrs.Set("offset", int64_t{0});
        Expr tensor = Bind(MakeCall(op::GetOp("memory.alloc_tensor"),
                                    {storage, out_shapes[i]}, at_attrs),
                           out);
        tensor->checked_type = TensorType(t->shape, t->dtype);
        out_tensors.push_back(tensor);
      }
    }

    // The destination-passing kernel invocation.
    Attrs iv_attrs = call->attrs;
    iv_attrs.Set("op_name", op_name);
    iv_attrs.Set("num_inputs", static_cast<int64_t>(call->args.size()));
    std::vector<Expr> iv_args = call->args;
    for (const Expr& t : out_tensors) iv_args.push_back(t);
    Bind(MakeCall(op::GetOp("memory.invoke_mut"), iv_args, iv_attrs), out);

    // Rebind the original variable to the result value.
    Expr result = out_tensors.size() == 1
                      ? out_tensors[0]
                      : MakeTuple(out_tensors);
    result->checked_type = value->checked_type;
    out->push_back({var, result});
  }

  /// Emits input bindings for a shape-function call: shape tensors for
  /// data-independent/upper-bound modes, raw data tensors for data-dependent
  /// mode (device placement will pin them to the CPU, inserting copies).
  std::vector<Expr> EmitShapeFuncInputs(const OpInfo& info, const CallNode* call,
                                        std::vector<Binding>* out) {
    std::vector<Expr> args;
    if (info.shape_mode == ShapeFuncMode::kDataDependent) {
      for (const Expr& a : call->args) args.push_back(a);
      return args;
    }
    for (const Expr& a : call->args) {
      Attrs attrs;
      Expr sh = Bind(MakeCall(op::GetOp("vm.shape_of"), {a}, attrs), out);
      args.push_back(sh);
    }
    return args;
  }

  /// Emits alloc_storage + alloc_tensor for a fully static shape; returns
  /// the tensor var.
  Expr EmitStaticAlloc(const std::vector<int64_t>& shape, DataType dtype,
                       bool is_shape, std::vector<Binding>* out) {
    int64_t elems = 1;
    for (int64_t d : shape) elems *= d;
    Attrs st_attrs;
    st_attrs.Set("size", elems * static_cast<int64_t>(dtype.bytes()));
    st_attrs.Set("alignment", int64_t{64});
    if (is_shape) st_attrs.Set("is_shape", int64_t{1});
    Expr storage =
        Bind(MakeCall(op::GetOp("memory.alloc_storage"), {}, st_attrs), out);
    Attrs at_attrs;
    at_attrs.Set("dtype", dtype.ToString());
    at_attrs.Set("rank", static_cast<int64_t>(shape.size()));
    at_attrs.Set("offset", int64_t{0});
    if (is_shape) at_attrs.Set("is_shape", int64_t{1});
    Expr shape_const = MakeConstant(runtime::ShapeTensor(shape));
    Expr tensor = Bind(MakeCall(op::GetOp("memory.alloc_tensor"),
                                {storage, shape_const}, at_attrs),
                       out);
    tensor->checked_type = TensorType(StaticShape(shape), dtype);
    return tensor;
  }

  void LowerReshape(const Var& var, const CallNode* call,
                    const TensorTypeNode* out_type, bool is_static,
                    std::vector<Binding>* out) {
    Expr shape_arg;
    if (is_static) {
      shape_arg = MakeConstant(runtime::ShapeTensor(AsStaticShape(out_type->shape)));
    } else {
      // Run the reshape shape function at runtime.
      Expr in_sh =
          Bind(MakeCall(op::GetOp("vm.shape_of"), {call->args[0]}, {}), out);
      Expr osh = EmitStaticAlloc({static_cast<int64_t>(out_type->shape.size())},
                                 DataType::Int64(), /*is_shape=*/true, out);
      Attrs merged = call->attrs;
      merged.Set("op_name", std::string("reshape"));
      merged.Set("mode",
                 static_cast<int64_t>(ShapeFuncMode::kDataIndependent));
      merged.Set("num_inputs", int64_t{1});
      Bind(MakeCall(op::GetOp("vm.shape_func"), {in_sh, osh}, merged), out);
      shape_arg = osh;
    }
    Attrs attrs;
    attrs.Set("rank", static_cast<int64_t>(out_type->shape.size()));
    Expr v = MakeCall(op::GetOp("vm.reshape_tensor"),
                      {call->args[0], shape_arg}, attrs);
    v->checked_type = TensorType(out_type->shape, out_type->dtype);
    out->push_back({var, v});
  }

  Expr Bind(Expr value, std::vector<Binding>* out) {
    Var v = MakeVar("m" + std::to_string(counter_++));
    out->push_back({v, std::move(value)});
    return v;
  }

  int counter_ = 0;
};

}  // namespace

void ManifestAlloc(ir::Module* mod) {
  std::vector<std::pair<std::string, Function>> updated;
  for (const auto& [name, fn] : mod->functions()) {
    AllocManifester manifester;
    updated.emplace_back(name, manifester.Run(fn));
  }
  for (auto& [name, fn] : updated) mod->Update(name, fn);
}

}  // namespace pass
}  // namespace nimble
