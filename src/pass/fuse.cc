// Greedy operator fusion on ANF bodies (§4.2).
//
// A fusion group starts at a root op — nn.dense, nn.batch_matmul, or any
// elementwise/broadcast op — and greedily absorbs single-use consumers that
// are elementwise/broadcast with a classifiable second operand (same-shape
// tensor, scalar, or row vector). Groups become calls to fused_elemwise /
// fused_dense / fused_batch_matmul with the chain encoded in attrs (see
// src/kernels/fused.cc).
//
// Fusion policy (§4.2): an op whose shape function is data-dependent or
// upper-bound is never absorbed — its shape function would need access to
// an intermediate value inside the composite.
#include <unordered_map>

#include "src/ir/visitor.h"
#include "src/kernels/elementwise.h"
#include "src/op/registry.h"
#include "src/pass/transforms.h"
#include "src/pass/type_infer.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT
using kernels::EwOp;

namespace {

struct Binding {
  Var var;
  Expr value;
  bool removed = false;
};

bool IsCommutative(EwOp op) {
  return op == EwOp::kAdd || op == EwOp::kMultiply || op == EwOp::kMaximum ||
         op == EwOp::kMinimum;
}

/// Dims provably equal at compile time (static match or same symbolic id).
bool ProvablySameShape(const Shape& a, const Shape& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].StructEqual(b[i])) return false;
  }
  return true;
}

/// Classifies an rhs operand against the group output type.
/// Returns -1 if unfusable, else the rhs_kind for the fused spec.
int ClassifyRhs(const Type& rhs_type, const TensorTypeNode* group) {
  if (rhs_type == nullptr || rhs_type->kind() != TypeKind::kTensor) return -1;
  const auto* rt = AsTensorType(rhs_type);
  if (rt->dtype != group->dtype) return -1;
  if (rt->shape.empty()) return 2;  // scalar
  if (ProvablySameShape(rt->shape, group->shape)) return 1;
  if (rt->shape.size() == 1 && !group->shape.empty() &&
      rt->shape[0].StructEqual(group->shape.back())) {
    return 3;  // row vector along the last axis
  }
  return -1;
}

class Fuser {
 public:
  explicit Fuser(FusionStats* stats) : stats_(stats) {}

  Function Run(const Function& fn) {
    CountUses(fn);
    Expr body = Process(fn->body);
    return MakeFunction(fn->params, body, fn->ret_type);
  }

 private:
  // Counts every *occurrence* of each variable (ExprVisitor/PostOrderVisit
  // memoize on node identity and would count a var used twice as one use).
  void CountUses(const Expr& e) {
    switch (e->kind()) {
      case ExprKind::kVar:
        uses_[static_cast<const VarNode*>(e.get())]++;
        break;
      case ExprKind::kTuple:
        for (const Expr& f : static_cast<const TupleNode*>(e.get())->fields)
          CountUses(f);
        break;
      case ExprKind::kTupleGetItem:
        CountUses(static_cast<const TupleGetItemNode*>(e.get())->tuple);
        break;
      case ExprKind::kCall: {
        const auto* c = static_cast<const CallNode*>(e.get());
        for (const Expr& a : c->args) CountUses(a);
        if (c->op->kind() == ExprKind::kVar) CountUses(c->op);
        break;
      }
      case ExprKind::kFunction:
        CountUses(static_cast<const FunctionNode*>(e.get())->body);
        break;
      case ExprKind::kLet: {
        const auto* l = static_cast<const LetNode*>(e.get());
        CountUses(l->value);
        CountUses(l->body);
        break;
      }
      case ExprKind::kIf: {
        const auto* i = static_cast<const IfNode*>(e.get());
        CountUses(i->cond);
        CountUses(i->then_branch);
        CountUses(i->else_branch);
        break;
      }
      case ExprKind::kMatch: {
        const auto* m = static_cast<const MatchNode*>(e.get());
        CountUses(m->data);
        for (const MatchClause& cl : m->clauses) CountUses(cl.body);
        break;
      }
      default:
        break;
    }
  }

  /// Processes one let-chain scope; recurses into nested scopes.
  Expr Process(const Expr& scope) {
    std::vector<Binding> bindings;
    Expr cursor = scope;
    while (cursor->kind() == ExprKind::kLet) {
      const auto* let = static_cast<const LetNode*>(cursor.get());
      bindings.push_back(Binding{let->var, ProcessValue(let->value)});
      cursor = let->body;
    }
    Expr tail = cursor;

    for (size_t i = 0; i < bindings.size(); ++i) {
      if (bindings[i].removed) continue;
      TryFuseFrom(bindings, i);
    }

    Expr body = tail;
    for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
      if (it->removed) continue;
      body = MakeLet(it->var, it->value, body);
    }
    return body;
  }

  Expr ProcessValue(const Expr& value) {
    switch (value->kind()) {
      case ExprKind::kIf: {
        const auto* n = static_cast<const IfNode*>(value.get());
        return MakeIf(n->cond, Process(n->then_branch), Process(n->else_branch));
      }
      case ExprKind::kMatch: {
        const auto* n = static_cast<const MatchNode*>(value.get());
        std::vector<MatchClause> clauses;
        for (const MatchClause& c : n->clauses) {
          clauses.push_back(MatchClause{c.ctor, c.binds, Process(c.body)});
        }
        return MakeMatch(n->data, std::move(clauses));
      }
      case ExprKind::kFunction: {
        const auto* n = static_cast<const FunctionNode*>(value.get());
        return MakeFunction(n->params, Process(n->body), n->ret_type);
      }
      default:
        return value;
    }
  }

  /// True if the value expression (a call) is rooted at `v` — i.e. uses it.
  static bool CallUses(const CallNode* call, const VarNode* v) {
    for (const Expr& a : call->args) {
      if (a->kind() == ExprKind::kVar && a.get() == v) return true;
    }
    return false;
  }

  const CallNode* AsPrimCall(const Expr& e, std::string* op_name) const {
    if (e->kind() != ExprKind::kCall) return nullptr;
    const auto* call = static_cast<const CallNode*>(e.get());
    if (call->op->kind() != ExprKind::kOp) return nullptr;
    *op_name = static_cast<const OpNode*>(call->op.get())->name;
    return call;
  }

  void TryFuseFrom(std::vector<Binding>& bindings, size_t start) {
    std::string root_name;
    const CallNode* root = AsPrimCall(bindings[start].value, &root_name);
    if (root == nullptr) return;

    enum class RootKind { kDense, kBatchMatmul, kElemwise };
    RootKind kind;
    std::vector<Expr> inputs;        // fused kernel inputs
    std::vector<int64_t> steps;      // (op, rhs_kind, rhs_index) triples
    const TensorTypeNode* group_type = nullptr;

    EwOp root_ew;
    bool root_binary;
    if (root_name == "nn.dense") {
      kind = RootKind::kDense;
      inputs = {root->args[0], root->args[1]};
      group_type = TypeOf(bindings[start].value);
    } else if (root_name == "nn.batch_matmul") {
      kind = RootKind::kBatchMatmul;
      inputs = {root->args[0], root->args[1]};
      group_type = TypeOf(bindings[start].value);
    } else if (kernels::EwOpFromName(root_name, &root_ew, &root_binary)) {
      kind = RootKind::kElemwise;
      group_type = TypeOf(bindings[start].value);
      if (group_type == nullptr || group_type->dtype != DataType::Float32())
        return;
      inputs = {root->args[0]};
      if (root_binary) {
        // Root must read its own first operand as the chain root; the second
        // operand becomes the first step's rhs.
        int rhs_kind = ClassifyRhs(TypeOfExpr(root->args[1]), group_type);
        // Root output shape must match arg0's shape for in-place chaining.
        const auto* a0 = AsTensorType(TypeOfExpr(root->args[0]));
        if (rhs_kind < 0 || !ProvablySameShape(a0->shape, group_type->shape))
          return;
        inputs.push_back(root->args[1]);
        steps.insert(steps.end(),
                     {static_cast<int64_t>(root_ew), rhs_kind, 1});
      } else {
        steps.insert(steps.end(), {static_cast<int64_t>(root_ew), 0, 0});
      }
    } else {
      return;
    }
    if (group_type == nullptr) return;
    if (group_type->dtype != DataType::Float32()) return;

    // Greedily absorb single-use elementwise consumers.
    size_t last_index = start;
    Var cur = bindings[start].var;
    size_t absorbed = 0;
    while (true) {
      if (UseCount(cur) != 1) break;
      // Find the unique same-scope consumer binding.
      size_t consumer = bindings.size();
      for (size_t j = last_index + 1; j < bindings.size(); ++j) {
        if (bindings[j].removed) continue;
        std::string name;
        const CallNode* call = AsPrimCall(bindings[j].value, &name);
        if (call != nullptr && CallUses(call, cur.get())) {
          consumer = j;
          break;
        }
        // A non-call use (tuple, nested scope, ...) ends the chain.
        if (UsesVar(bindings[j].value, cur.get())) break;
      }
      if (consumer == bindings.size()) break;

      std::string name;
      const CallNode* call = AsPrimCall(bindings[consumer].value, &name);
      EwOp ew;
      bool binary;
      if (name == "nn.bias_add") {
        ew = EwOp::kAdd;
        binary = true;
      } else if (!kernels::EwOpFromName(name, &ew, &binary)) {
        break;
      }
      const op::OpInfo& info = op::OpRegistry::Global()->Get(name);
      if (info.shape_mode != op::ShapeFuncMode::kDataIndependent) {
        stats_->blocked_dynamic++;  // §4.2 fusion policy
        break;
      }

      if (!binary) {
        if (call->args[0].get() != cur.get()) break;
        steps.insert(steps.end(), {static_cast<int64_t>(ew), 0, 0});
      } else {
        Expr rhs;
        if (call->args[0].get() == cur.get()) {
          rhs = call->args[1];
        } else if (IsCommutative(ew) && call->args[1].get() == cur.get()) {
          rhs = call->args[0];
        } else {
          break;
        }
        int rhs_kind = name == "nn.bias_add"
                           ? 3
                           : ClassifyRhs(TypeOfExpr(rhs), group_type);
        if (rhs_kind < 0) break;
        // The consumer's output must keep the group shape.
        const auto* out_t = TypeOf(bindings[consumer].value);
        if (out_t == nullptr || !ProvablySameShape(out_t->shape, group_type->shape))
          break;
        inputs.push_back(rhs);
        steps.insert(steps.end(), {static_cast<int64_t>(ew), rhs_kind,
                                   static_cast<int64_t>(inputs.size() - 1)});
      }
      bindings[last_index].removed = last_index == start ? false : true;
      if (last_index != start) bindings[last_index].removed = true;
      bindings[start].removed = true;
      absorbed++;
      last_index = consumer;
      cur = bindings[consumer].var;
    }

    // Worth fusing only if at least one consumer was absorbed, or the chain
    // root itself accumulated >= 2 steps.
    bool fuse = absorbed > 0;
    if (kind == RootKind::kElemwise && absorbed == 0) fuse = false;
    if (!fuse) {
      // Roll back removal marks.
      bindings[start].removed = false;
      return;
    }

    const char* fused_name = kind == RootKind::kDense          ? "fused_dense"
                             : kind == RootKind::kBatchMatmul ? "fused_batch_matmul"
                                                              : "fused_elemwise";
    Attrs attrs;
    attrs.Set("steps", steps);
    Expr fused = MakeCall(op::GetOp(fused_name), inputs, attrs);
    fused->checked_type = bindings[last_index].value->checked_type;
    bindings[last_index].value = fused;
    bindings[last_index].removed = false;
    stats_->groups_created++;
    stats_->ops_fused += static_cast<int>(absorbed) + 1;
  }

  static bool UsesVar(const Expr& e, const VarNode* v) {
    bool found = false;
    PostOrderVisit(e, [&](const Expr& x) {
      if (x.get() == v) found = true;
    });
    return found;
  }

  int UseCount(const Var& v) const {
    auto it = uses_.find(v.get());
    return it == uses_.end() ? 0 : it->second;
  }

  const TensorTypeNode* TypeOf(const Expr& e) const {
    if (e->checked_type == nullptr ||
        e->checked_type->kind() != TypeKind::kTensor) {
      return nullptr;
    }
    return AsTensorType(e->checked_type);
  }

  Type TypeOfExpr(const Expr& e) const { return e->checked_type; }

  FusionStats* stats_;
  std::unordered_map<const VarNode*, int> uses_;
};

}  // namespace

FusionStats FuseOps(ir::Module* mod) {
  FusionStats stats;
  std::vector<std::pair<std::string, Function>> updated;
  for (const auto& [name, fn] : mod->functions()) {
    Fuser fuser(&stats);
    updated.emplace_back(name, fuser.Run(fn));
  }
  for (auto& [name, fn] : updated) mod->Update(name, fn);
  // Fused calls carry forward checked types; re-infer to annotate any new
  // structure (cheap, and keeps downstream passes honest).
  InferTypes(mod);
  return stats;
}

}  // namespace pass
}  // namespace nimble
