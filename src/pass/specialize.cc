// SpecializeBatchedEntry: bake a shape bucket's (max_len, batch) into a
// batched serving entry (the shape-bucket executable cache, §4.5 extended
// from kernels to whole executables).
//
// The batched calling convention (src/vm/batch_spec.h) types the packed
// input as [Lmax, B, D] with Lmax and B symbolic, so the compiled artifact
// serves every bucket — at the price of running the full dynamic-shape
// machinery (runtime shape functions, dynamic storage allocation) on every
// step even though a serving bucket re-sees the same (Lmax, B) on every
// batch. This pass produces the input for a bucket-specialized variant:
//
//   - the packed input's leading symbolic dim (Lmax) is substituted with a
//     static extent, module-wide, so every type mentioning it goes static;
//   - optionally the batch dim (B) is substituted the same way, which makes
//     the whole batched dataflow fully static: ManifestAlloc then emits
//     compile-time allocations and zero vm.shape_func calls, and MemoryPlan
//     can reuse storage exactly;
//   - uses of the entry's max_len scalar parameter (arg 1 of the batched
//     convention) are replaced by a constant, folding the loop bound at the
//     call site. The parameter itself stays, so the variant keeps the exact
//     calling convention of the generic entry and the serving layer can
//     swap one for the other per batch.
//
// Correctness: substitution only narrows types (symbolic -> static); the
// dataflow, kernel sequence and per-row arithmetic are untouched, so a
// variant's packed results are bit-identical to the generic executable's
// (tests/test_serve.cc asserts this). Runs before type inference — only
// type annotations are rewritten; checked_type is filled in later by the
// normal pipeline.
#include <unordered_map>

#include "src/ir/visitor.h"
#include "src/pass/transforms.h"
#include "src/support/logging.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT

namespace {

using SymMap = std::unordered_map<int64_t, int64_t>;

/// Rewrites a type, replacing symbolic dims found in `subst` with static
/// extents. Returns the input when nothing changed.
Type SubstType(const Type& t, const SymMap& subst) {
  if (t == nullptr) return t;
  switch (t->kind()) {
    case TypeKind::kTensor: {
      const auto* tt = static_cast<const TensorTypeNode*>(t.get());
      bool changed = false;
      Shape shape = tt->shape;
      for (Dim& d : shape) {
        if (!d.is_sym()) continue;
        auto it = subst.find(d.sym_id());
        if (it == subst.end()) continue;
        d = Dim::Static(it->second);
        changed = true;
      }
      return changed ? TensorType(std::move(shape), tt->dtype) : t;
    }
    case TypeKind::kTuple: {
      const auto* tt = static_cast<const TupleTypeNode*>(t.get());
      bool changed = false;
      std::vector<Type> fields;
      fields.reserve(tt->fields.size());
      for (const Type& f : tt->fields) {
        Type nf = SubstType(f, subst);
        changed |= (nf != f);
        fields.push_back(std::move(nf));
      }
      return changed ? TupleType(std::move(fields)) : t;
    }
    case TypeKind::kFunc: {
      const auto* ft = static_cast<const FuncTypeNode*>(t.get());
      bool changed = false;
      std::vector<Type> params;
      params.reserve(ft->params.size());
      for (const Type& p : ft->params) {
        Type np = SubstType(p, subst);
        changed |= (np != p);
        params.push_back(std::move(np));
      }
      Type ret = SubstType(ft->ret, subst);
      changed |= (ret != ft->ret);
      return changed ? FuncType(std::move(params), std::move(ret)) : t;
    }
    case TypeKind::kADT:
      return t;
  }
  return t;
}

/// Rewrites every Var annotation (and nested function signature) through the
/// dim substitution. Var identity is preserved per occurrence by the
/// mutator's memo, so a rewritten parameter and its body uses stay the same
/// node.
class DimSubstMutator : public ExprMutator {
 public:
  explicit DimSubstMutator(const SymMap& subst) : subst_(subst) {}

  Function Apply(const Function& fn) {
    Expr mutated = Mutate(fn);
    return std::static_pointer_cast<const FunctionNode>(mutated);
  }

 protected:
  Expr MutateVar_(const VarNode* node, const Expr& e) override {
    Type nt = SubstType(node->type_annotation, subst_);
    if (nt == node->type_annotation) return e;
    return MakeVar(node->name, std::move(nt));
  }

  Expr MutateFunction_(const FunctionNode* node, const Expr& e) override {
    Expr mutated = ExprMutator::MutateFunction_(node, e);
    const auto* fn = static_cast<const FunctionNode*>(mutated.get());
    Type nret = SubstType(fn->ret_type, subst_);
    if (nret == fn->ret_type) return mutated;
    return MakeFunction(fn->params, fn->body, std::move(nret));
  }

 private:
  const SymMap& subst_;
};

/// Replaces uses of one Var with a constant expression (the max_len
/// parameter with its baked value). The parameter list itself is left to the
/// caller, so the function keeps its arity.
class VarConstMutator : public ExprMutator {
 public:
  VarConstMutator(const VarNode* target, Expr replacement)
      : target_(target), replacement_(std::move(replacement)) {}

 protected:
  Expr MutateVar_(const VarNode* node, const Expr& e) override {
    return node == target_ ? replacement_ : e;
  }

 private:
  const VarNode* target_;
  Expr replacement_;
};

}  // namespace

namespace {

/// The int64 value of a scalar constant expression, when it is one.
bool ScalarI64(const Expr& e, int64_t* out) {
  if (e == nullptr || e->kind() != ExprKind::kConstant) return false;
  const runtime::NDArray& data =
      static_cast<const ConstantNode*>(e.get())->data;
  if (data.dtype() != runtime::DataType::Int64() || data.num_elements() != 1) {
    return false;
  }
  *out = data.data<int64_t>()[0];
  return true;
}

/// Hygienic one-step inline of a function body: parameters are substituted
/// with the call's arguments, every let binder is alpha-renamed to a fresh
/// Var (so repeated inlining never rebinds the same node), and scalar i64
/// `add` calls whose inputs went constant are folded — which is what turns
/// the loop counter into a constant for the next step.
class InlineSubst : public ExprMutator {
 public:
  InlineSubst(const std::vector<Var>& params, const std::vector<Expr>& args) {
    for (size_t i = 0; i < params.size(); ++i) {
      subst_[params[i].get()] = args[i];
    }
  }

 protected:
  Expr MutateVar_(const VarNode* node, const Expr& e) override {
    auto it = subst_.find(node);
    return it != subst_.end() ? it->second : e;
  }

  Expr MutateLet_(const LetNode* node, const Expr& e) override {
    Expr value = Mutate(node->value);
    Var fresh = MakeVar(node->var->name, node->var->type_annotation);
    subst_[node->var.get()] = fresh;
    Expr body = Mutate(node->body);
    return MakeLet(std::move(fresh), std::move(value), std::move(body));
  }

  Expr MutateCall_(const CallNode* node, const Expr& e) override {
    Expr mutated = ExprMutator::MutateCall_(node, e);
    if (mutated->kind() != ExprKind::kCall) return mutated;
    const auto* call = static_cast<const CallNode*>(mutated.get());
    if (!IsCallToOp(mutated, "add") || call->args.size() != 2) return mutated;
    int64_t a, b;
    if (ScalarI64(call->args[0], &a) && ScalarI64(call->args[1], &b)) {
      return IntConst(a + b);
    }
    return mutated;
  }

 private:
  std::unordered_map<const VarNode*, Expr> subst_;
};

/// True when `e` contains a binder the inliner does not alpha-rename
/// (nested functions / match clauses) — unrolling such a body is skipped.
bool HasNonLetBinders(const Expr& e) {
  bool found = false;
  PostOrderVisit(e, [&found](const Expr& node) {
    if (node->kind() == ExprKind::kFunction ||
        node->kind() == ExprKind::kMatch) {
      found = true;
    }
  });
  return found;
}

}  // namespace

int64_t UnrollBatchedLoop(ir::Module* mod, const std::string& entry_name,
                          int64_t max_steps) {
  Function entry = mod->Lookup(entry_name);
  std::vector<std::pair<Var, Expr>> acc;
  Expr current = entry->body;
  int64_t steps = 0;
  while (steps < max_steps) {
    // Peel the accumulated straight-line prefix.
    while (current->kind() == ExprKind::kLet) {
      const auto* let = static_cast<const LetNode*>(current.get());
      acc.emplace_back(let->var, let->value);
      current = let->body;
    }
    // The tail must be a recursion step whose bound already folded to a
    // constant: a call to a global whose body is If(less(const, const), ...).
    if (current->kind() != ExprKind::kCall) break;
    const auto* call = static_cast<const CallNode*>(current.get());
    if (call->op->kind() != ExprKind::kGlobalVar) break;
    const std::string& callee =
        static_cast<const GlobalVarNode*>(call->op.get())->name;
    if (!mod->HasFunction(callee)) break;
    Function loop_fn = mod->Lookup(callee);
    if (loop_fn->params.size() != call->args.size()) break;
    if (loop_fn->body->kind() != ExprKind::kIf) break;
    if (HasNonLetBinders(loop_fn->body)) break;

    InlineSubst inliner(loop_fn->params, call->args);
    Expr inlined = inliner.Mutate(loop_fn->body);
    const auto* iff = static_cast<const IfNode*>(inlined.get());
    int64_t i, n;
    if (!(IsCallToOp(iff->cond, "less") &&
          static_cast<const CallNode*>(iff->cond.get())->args.size() == 2 &&
          ScalarI64(static_cast<const CallNode*>(iff->cond.get())->args[0],
                    &i) &&
          ScalarI64(static_cast<const CallNode*>(iff->cond.get())->args[1],
                    &n))) {
      break;
    }
    current = i < n ? iff->then_branch : iff->else_branch;
    ++steps;
  }
  if (steps == 0 || current->kind() == ExprKind::kCall) {
    // Nothing unrolled, or the budget ran out mid-loop: keep the rolled
    // form (a partially unrolled body would still be correct, but there is
    // no benefit in bloating the bytecode without removing the loop).
    return 0;
  }
  Expr body = current;
  for (auto it = acc.rbegin(); it != acc.rend(); ++it) {
    body = MakeLet(it->first, it->second, body);
  }
  mod->Update(entry_name,
              MakeFunction(entry->params, std::move(body), entry->ret_type));
  return steps;
}

void SpecializeBatchedEntry(ir::Module* mod, const std::string& batched_function,
                            int64_t max_len, int64_t batch_size) {
  NIMBLE_CHECK_GE(max_len, 1) << "specialized max_len must be positive";
  Function entry = mod->Lookup(batched_function);
  NIMBLE_CHECK_GE(entry->params.size(), 2u)
      << "batched entry '" << batched_function
      << "' does not follow the (packed, max_len, ...) convention";

  // The packed input [Lmax, B, D]: dim 0 is the length to bake, dim 1 the
  // batch. Both must be symbolic in the generic entry (a static dim means
  // the entry was already specialized — re-specializing to a different
  // extent would silently produce a mis-shaped variant).
  const auto* packed_type = AsTensorType(entry->params[0]->type_annotation);
  NIMBLE_CHECK(packed_type != nullptr && packed_type->shape.size() >= 2)
      << "batched entry '" << batched_function
      << "' packed input must be a rank>=2 tensor";
  SymMap subst;
  NIMBLE_CHECK(packed_type->shape[0].is_sym())
      << "batched entry '" << batched_function
      << "' length dim is not symbolic (already specialized?)";
  subst[packed_type->shape[0].sym_id()] = max_len;
  if (batch_size > 0) {
    NIMBLE_CHECK(packed_type->shape[1].is_sym())
        << "batched entry '" << batched_function
        << "' batch dim is not symbolic (already specialized?)";
    subst[packed_type->shape[1].sym_id()] = batch_size;
  }

  // Module-wide dim substitution: the entry's helper functions (e.g. the
  // batched loop body) share the same symbolic dims through their
  // signatures.
  std::vector<std::pair<std::string, Function>> updated;
  for (const auto& [name, fn] : mod->functions()) {
    DimSubstMutator mutator(subst);
    updated.emplace_back(name, mutator.Apply(fn));
  }
  for (auto& [name, fn] : updated) mod->Update(name, fn);

  // Fold the loop bound: uses of the entry's max_len parameter become the
  // baked constant (the parameter stays, preserving the calling convention).
  Function specialized = mod->Lookup(batched_function);
  const Var& len_param = specialized->params[1];
  VarConstMutator fold(len_param.get(), IntConst(max_len));
  Expr body = fold.Mutate(specialized->body);
  if (body != specialized->body) {
    mod->Update(batched_function, MakeFunction(specialized->params, body,
                                               specialized->ret_type));
  }
}

}  // namespace pass
}  // namespace nimble
