// Heterogeneous device placement (§4.4).
//
// A union-find over DeviceDomains assigns every binding a device:
//  - shape_of outputs, shape tensors, and shape-function operands default
//    to the CPU domain (they are cheap scalar computations the host needs);
//  - kernel invocations (memory.invoke_mut) constrain all their tensor
//    operands to the kernel device;
//  - alloc_tensor unifies with its backing storage; tuples/aliases/control
//    flow propagate domains bidirectionally.
//
// Kernel-device constraints are applied first (kernels were already
// scheduled, §4.4), then CPU constraints; a CPU-required use of a
// device-resident tensor gets an explicit device_copy inserted — the case
// that matters in practice is a data-dependent shape function reading a
// tensor that lives on the accelerator.
#include <map>
#include <unordered_map>

#include "src/ir/visitor.h"
#include "src/op/registry.h"
#include "src/pass/memory.h"
#include "src/support/union_find.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT
using runtime::Device;

namespace {

enum class Domain : uint8_t { kUnknown = 0, kCPU = 1, kDev = 2 };

struct Binding {
  Var var;
  Expr value;
};

const CallNode* AsAnyOpCall(const Expr& e, std::string* name) {
  if (e->kind() != ExprKind::kCall) return nullptr;
  const auto* call = static_cast<const CallNode*>(e.get());
  if (call->op->kind() != ExprKind::kOp) return nullptr;
  *name = static_cast<const OpNode*>(call->op.get())->name;
  return call;
}

class DevicePlacer {
 public:
  DevicePlacer(Device kernel_device, DevicePlaceStats* stats)
      : kernel_device_(kernel_device), stats_(stats) {}

  Function Run(const Function& fn) {
    // Flatten all scopes (vars are globally unique, so one UF works).
    std::vector<Binding>* top = Flatten(fn->body);
    for (const Var& p : fn->params) IdOf(p.get());

    ApplyUnions();
    ApplyDeviceConstraints();
    std::vector<Conflict> conflicts = ApplyCpuConstraints();
    InsertCopies(conflicts);
    StampDevices();

    Expr body = Rebuild(top);
    return MakeFunction(fn->params, body, fn->ret_type);
  }

 private:
  struct Conflict {
    std::vector<Binding>* scope;
    size_t index;      // binding whose value needs the copy
    size_t arg_index;  // which argument
    Var var;           // the device-resident var needed on CPU
  };

  // ---- scope flattening ----------------------------------------------------

  std::vector<Binding>* Flatten(const Expr& scope) {
    scopes_.push_back(std::make_unique<std::vector<Binding>>());
    auto* bindings = scopes_.back().get();
    scope_tails_.push_back(nullptr);
    size_t my_scope = scopes_.size() - 1;
    Expr cursor = scope;
    while (cursor->kind() == ExprKind::kLet) {
      const auto* let = static_cast<const LetNode*>(cursor.get());
      bindings->push_back(Binding{let->var, let->value});
      IdOf(let->var.get());
      cursor = let->body;
    }
    scope_tails_[my_scope] = cursor;
    scope_of_tail_[bindings] = cursor;
    // Recurse into nested scopes.
    for (Binding& b : *bindings) {
      if (b.value->kind() == ExprKind::kIf) {
        const auto* n = static_cast<const IfNode*>(b.value.get());
        auto* t = Flatten(n->then_branch);
        auto* f = Flatten(n->else_branch);
        nested_[b.var.get()] = {t, f};
      } else if (b.value->kind() == ExprKind::kMatch) {
        const auto* n = static_cast<const MatchNode*>(b.value.get());
        std::vector<std::vector<Binding>*> arms;
        for (const MatchClause& c : n->clauses) arms.push_back(Flatten(c.body));
        nested_[b.var.get()] = arms;
      } else if (b.value->kind() == ExprKind::kFunction) {
        const auto* n = static_cast<const FunctionNode*>(b.value.get());
        nested_[b.var.get()] = {Flatten(n->body)};
      }
    }
    return bindings;
  }

  size_t IdOf(const VarNode* v) {
    auto it = ids_.find(v);
    if (it != ids_.end()) return it->second;
    size_t id = uf_.Make();
    labels_.push_back(Domain::kUnknown);
    ids_[v] = id;
    return id;
  }

  void UnionVars(const VarNode* a, const VarNode* b) {
    size_t ra = uf_.Find(IdOf(a));
    size_t rb = uf_.Find(IdOf(b));
    if (ra == rb) return;
    Domain la = labels_[ra], lb = labels_[rb];
    size_t r = uf_.Union(ra, rb);
    labels_[r] = la != Domain::kUnknown ? la : lb;
  }

  Domain LabelOf(const VarNode* v) { return labels_[uf_.Find(IdOf(v))]; }

  /// Sets the domain of v's class; returns false on conflict.
  bool SetLabel(const VarNode* v, Domain d) {
    size_t r = uf_.Find(IdOf(v));
    if (labels_[r] == Domain::kUnknown) {
      labels_[r] = d;
      return true;
    }
    return labels_[r] == d;
  }

  // ---- constraint application ------------------------------------------------

  void ForEachBinding(const std::function<void(std::vector<Binding>*, size_t,
                                               Binding&)>& fn) {
    for (auto& scope : scopes_) {
      for (size_t i = 0; i < scope->size(); ++i) fn(scope.get(), i, (*scope)[i]);
    }
  }

  void ApplyUnions() {
    ForEachBinding([&](std::vector<Binding>*, size_t, Binding& b) {
      const Expr& v = b.value;
      std::string name;
      if (v->kind() == ExprKind::kVar) {
        UnionVars(b.var.get(), static_cast<const VarNode*>(v.get()));
        return;
      }
      if (v->kind() == ExprKind::kTuple) {
        for (const Expr& f : static_cast<const TupleNode*>(v.get())->fields) {
          if (f->kind() == ExprKind::kVar) {
            UnionVars(b.var.get(), static_cast<const VarNode*>(f.get()));
          }
        }
        return;
      }
      if (v->kind() == ExprKind::kTupleGetItem) {
        const auto* t = static_cast<const TupleGetItemNode*>(v.get());
        if (t->tuple->kind() == ExprKind::kVar) {
          UnionVars(b.var.get(), static_cast<const VarNode*>(t->tuple.get()));
        }
        return;
      }
      if (v->kind() == ExprKind::kIf || v->kind() == ExprKind::kMatch) {
        // Unify the binding with each arm's tail var.
        auto it = nested_.find(b.var.get());
        if (it != nested_.end()) {
          for (auto* arm : it->second) {
            Expr tail = scope_of_tail_[arm];
            if (tail && tail->kind() == ExprKind::kVar) {
              UnionVars(b.var.get(), static_cast<const VarNode*>(tail.get()));
            }
          }
        }
        return;
      }
      if (const CallNode* call = AsAnyOpCall(v, &name)) {
        if (name == "memory.alloc_tensor" &&
            call->args[0]->kind() == ExprKind::kVar) {
          UnionVars(b.var.get(),
                    static_cast<const VarNode*>(call->args[0].get()));
        }
      }
    });
  }

  void ApplyDeviceConstraints() {
    ForEachBinding([&](std::vector<Binding>*, size_t, Binding& b) {
      std::string name;
      const CallNode* call = AsAnyOpCall(b.value, &name);
      if (call == nullptr) return;
      if (name == "memory.alloc_storage" && call->attrs.Has("is_shape")) {
        SetLabel(b.var.get(), Domain::kCPU);  // shape tensors live on host
        return;
      }
      if (name == "vm.shape_of") {
        SetLabel(b.var.get(), Domain::kCPU);  // result is host metadata
        return;
      }
      if (name == "memory.invoke_mut") {
        // Kernel operands and results live on the kernel device. When that
        // device IS the CPU there is only one domain and no conflicts.
        Domain dev = kernel_device_.is_cpu() ? Domain::kCPU : Domain::kDev;
        for (const Expr& a : call->args) {
          if (a->kind() == ExprKind::kVar) {
            SetLabel(static_cast<const VarNode*>(a.get()), dev);
          }
        }
        return;
      }
      if (name == "vm.reshape_tensor" &&
          call->args[0]->kind() == ExprKind::kVar) {
        // Reshape aliases its input's storage.
        UnionVars(b.var.get(), static_cast<const VarNode*>(call->args[0].get()));
        return;
      }
    });
  }

  std::vector<Conflict> ApplyCpuConstraints() {
    std::vector<Conflict> conflicts;
    ForEachBinding([&](std::vector<Binding>* scope, size_t i, Binding& b) {
      std::string name;
      const CallNode* call = AsAnyOpCall(b.value, &name);
      if (call == nullptr || name != "vm.shape_func") return;
      // Every operand of a shape function must be on the CPU (§4.4). Shape
      // tensors already are; data operands of data-dependent shape
      // functions may conflict.
      for (size_t a = 0; a < call->args.size(); ++a) {
        if (call->args[a]->kind() != ExprKind::kVar) continue;
        const auto* v = static_cast<const VarNode*>(call->args[a].get());
        if (!SetLabel(v, Domain::kCPU)) {
          conflicts.push_back(Conflict{
              scope, i, a,
              std::static_pointer_cast<const VarNode>(call->args[a])});
        }
      }
    });
    return conflicts;
  }

  void InsertCopies(const std::vector<Conflict>& conflicts) {
    // Group conflicts per call site so one binding gets all its copies in a
    // single rewrite, then insert groups in reverse index order so earlier
    // indices stay valid.
    std::map<std::pair<std::vector<Binding>*, size_t>, std::vector<const Conflict*>>
        by_site;
    for (const Conflict& c : conflicts) {
      by_site[{c.scope, c.index}].push_back(&c);
    }
    for (auto rit = by_site.rbegin(); rit != by_site.rend(); ++rit) {
      auto [scope, index] = rit->first;
      Binding& target = (*scope)[index];
      std::string name;
      const CallNode* call = AsAnyOpCall(target.value, &name);
      NIMBLE_ICHECK(call != nullptr);
      std::vector<Expr> args = call->args;
      std::vector<Binding> copies;
      for (const Conflict* c : rit->second) {
        Var copy_var = MakeVar("dcopy" + std::to_string(copy_counter_++));
        Attrs attrs;
        attrs.SetDevice("src_device", kernel_device_);
        attrs.SetDevice("dst_device", Device::CPU());
        Expr copy = MakeCall(op::GetOp("device_copy"), {c->var}, attrs);
        copy->checked_type = c->var->checked_type;
        copy_var->checked_type = c->var->checked_type;
        size_t id = IdOf(copy_var.get());
        labels_[uf_.Find(id)] = Domain::kCPU;
        args[c->arg_index] = copy_var;
        copies.push_back(Binding{copy_var, copy});
        stats_->copies_inserted++;
      }
      Expr new_call = MakeCall(call->op, std::move(args), call->attrs);
      new_call->checked_type = target.value->checked_type;
      target.value = new_call;
      scope->insert(scope->begin() + index, copies.begin(), copies.end());
    }
  }

  void StampDevices() {
    ForEachBinding([&](std::vector<Binding>*, size_t, Binding& b) {
      Domain d = LabelOf(b.var.get());
      Device dev = d == Domain::kCPU ? Device::CPU() : kernel_device_;
      b.var->device = dev;
      b.value->device = dev;
      if (d == Domain::kCPU) {
        stats_->nodes_on_cpu++;
      } else {
        stats_->nodes_on_device++;
      }
      std::string name;
      const CallNode* call = AsAnyOpCall(b.value, &name);
      if (call != nullptr && name == "memory.alloc_storage" &&
          !call->attrs.Has("device")) {
        Attrs attrs = call->attrs;
        attrs.SetDevice("device", dev);
        Expr v = MakeCall(call->op, call->args, attrs);
        v->checked_type = b.value->checked_type;
        v->device = dev;
        b.value = v;
      }
    });
  }

  // ---- rebuild ----------------------------------------------------------------

  Expr Rebuild(std::vector<Binding>* scope) {
    Expr body = scope_of_tail_[scope];
    for (size_t i = scope->size(); i-- > 0;) {
      Binding& b = (*scope)[i];
      Expr value = b.value;
      // Rebuild nested scopes.
      auto it = nested_.find(b.var.get());
      if (it != nested_.end()) {
        if (value->kind() == ExprKind::kIf) {
          const auto* n = static_cast<const IfNode*>(value.get());
          value = MakeIf(n->cond, Rebuild(it->second[0]), Rebuild(it->second[1]));
        } else if (value->kind() == ExprKind::kMatch) {
          const auto* n = static_cast<const MatchNode*>(value.get());
          std::vector<MatchClause> clauses;
          for (size_t ci = 0; ci < n->clauses.size(); ++ci) {
            clauses.push_back(MatchClause{n->clauses[ci].ctor,
                                          n->clauses[ci].binds,
                                          Rebuild(it->second[ci])});
          }
          value = MakeMatch(n->data, std::move(clauses));
        } else if (value->kind() == ExprKind::kFunction) {
          const auto* n = static_cast<const FunctionNode*>(value.get());
          value = MakeFunction(n->params, Rebuild(it->second[0]), n->ret_type);
        }
      }
      body = MakeLet(b.var, value, body);
    }
    return body;
  }

  Device kernel_device_;
  DevicePlaceStats* stats_;
  support::UnionFind uf_;
  std::vector<Domain> labels_;
  std::unordered_map<const VarNode*, size_t> ids_;
  std::vector<std::unique_ptr<std::vector<Binding>>> scopes_;
  std::vector<Expr> scope_tails_;
  std::unordered_map<std::vector<Binding>*, Expr> scope_of_tail_;
  std::unordered_map<const VarNode*, std::vector<std::vector<Binding>*>> nested_;
  int copy_counter_ = 0;
};

}  // namespace

DevicePlaceStats DevicePlacement(ir::Module* mod, Device kernel_device) {
  DevicePlaceStats stats;
  std::vector<std::pair<std::string, Function>> updated;
  for (const auto& [name, fn] : mod->functions()) {
    DevicePlacer placer(kernel_device, &stats);
    updated.emplace_back(name, placer.Run(fn));
  }
  for (auto& [name, fn] : updated) mod->Update(name, fn);
  return stats;
}

}  // namespace pass
}  // namespace nimble
