// Generic IR-to-IR passes: A-normal form, constant folding, dead code
// elimination, and the operator fusion passes (§4.2's fusion policy).
#pragma once

#include "src/ir/module.h"

namespace nimble {
namespace pass {

/// Converts every function body to A-normal form: all intermediate values
/// are let-bound, and every call argument is a Var or Constant. Later
/// passes (ManifestAlloc, MemoryPlan, the VM compiler) require ANF.
void ToANF(ir::Module* mod);
ir::Expr ExprToANF(const ir::Expr& e);

/// Evaluates primitive calls whose arguments are all constants (and whose
/// output shapes are statically known), replacing them with Constant nodes.
void FoldConstants(ir::Module* mod);

/// Removes unused, effect-free let bindings.
void DeadCodeElim(ir::Module* mod);

struct FusionStats {
  int groups_created = 0;   // fused composite calls emitted
  int ops_fused = 0;        // primitive ops absorbed into groups
  int blocked_dynamic = 0;  // fusions refused by the dynamic-shape policy
};

/// Greedy operator fusion on ANF bodies. Chains of elementwise/broadcast
/// ops are folded into fused_elemwise; chains rooted at nn.dense /
/// nn.batch_matmul become fused_dense / fused_batch_matmul epilogues.
/// Policy (§4.2): ops whose shape function is data-dependent or
/// upper-bound are never fused into a composite.
FusionStats FuseOps(ir::Module* mod);

/// Pattern-matches the unfused LSTM recurrence
///   split(gates, 4) -> sigmoid/tanh gate math -> (h', c')
/// and rewrites it to the fused nn.lstm_cell operator. Returns the number
/// of cells fused.
int FuseLSTMCell(ir::Module* mod);

/// Specializes a batched serving entry (src/vm/batch_spec.h convention:
/// `batched_function(packed [Lmax, B, D], max_len, ...)`) to a fixed shape
/// bucket: substitutes the packed input's symbolic length dim with
/// `max_len` module-wide (and, when `batch_size` > 0, the batch dim too —
/// making the batched dataflow fully static), and folds uses of the
/// entry's max_len parameter to the baked constant. Runs before type
/// inference; the entry keeps its arity and calling convention, so the
/// serving layer can swap the specialized variant for the generic
/// executable per batch (src/serve/exec_cache.h). Throws when the entry
/// does not follow the convention or was already specialized.
void SpecializeBatchedEntry(ir::Module* mod, const std::string& batched_function,
                            int64_t max_len, int64_t batch_size = 0);

/// Unrolls a specialized batched entry's tail-recursive loop into
/// straight-line IR. The entry's body must be (a let-prefix over) a call to
/// a global loop function of the form If(less(i, n), step, exit) whose
/// counter and bound have already folded to constants (what
/// SpecializeBatchedEntry produces) — each step is then inlined
/// hygienically (fresh let binders per step, the counter folding forward),
/// eliminating the per-step frame push/pop, branch and counter arithmetic
/// from the compiled bytecode. Anything else — symbolic bounds, binders the
/// inliner cannot rename, or a loop longer than `max_steps` — leaves the
/// module untouched. Returns the number of loop iterations inlined (0 = not
/// unrolled).
int64_t UnrollBatchedLoop(ir::Module* mod, const std::string& entry_name,
                          int64_t max_steps);

}  // namespace pass
}  // namespace nimble
