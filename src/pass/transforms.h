// Generic IR-to-IR passes: A-normal form, constant folding, dead code
// elimination, and the operator fusion passes (§4.2's fusion policy).
#pragma once

#include "src/ir/module.h"

namespace nimble {
namespace pass {

/// Converts every function body to A-normal form: all intermediate values
/// are let-bound, and every call argument is a Var or Constant. Later
/// passes (ManifestAlloc, MemoryPlan, the VM compiler) require ANF.
void ToANF(ir::Module* mod);
ir::Expr ExprToANF(const ir::Expr& e);

/// Evaluates primitive calls whose arguments are all constants (and whose
/// output shapes are statically known), replacing them with Constant nodes.
void FoldConstants(ir::Module* mod);

/// Removes unused, effect-free let bindings.
void DeadCodeElim(ir::Module* mod);

struct FusionStats {
  int groups_created = 0;   // fused composite calls emitted
  int ops_fused = 0;        // primitive ops absorbed into groups
  int blocked_dynamic = 0;  // fusions refused by the dynamic-shape policy
};

/// Greedy operator fusion on ANF bodies. Chains of elementwise/broadcast
/// ops are folded into fused_elemwise; chains rooted at nn.dense /
/// nn.batch_matmul become fused_dense / fused_batch_matmul epilogues.
/// Policy (§4.2): ops whose shape function is data-dependent or
/// upper-bound are never fused into a composite.
FusionStats FuseOps(ir::Module* mod);

/// Pattern-matches the unfused LSTM recurrence
///   split(gates, 4) -> sigmoid/tanh gate math -> (h', c')
/// and rewrites it to the fused nn.lstm_cell operator. Returns the number
/// of cells fused.
int FuseLSTMCell(ir::Module* mod);

}  // namespace pass
}  // namespace nimble
