// Dead code elimination on let-chains: drops bindings whose variable is
// never used, unless the bound value has effects (memory/vm dialect calls).
#include <unordered_map>

#include "src/ir/visitor.h"
#include "src/pass/transforms.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT

namespace {

bool HasEffects(const Expr& value) {
  if (value->kind() != ExprKind::kCall) return false;
  const auto* call = static_cast<const CallNode*>(value.get());
  if (call->op->kind() == ExprKind::kOp) {
    const std::string& name = static_cast<const OpNode*>(call->op.get())->name;
    return name.rfind("memory.", 0) == 0 || name.rfind("vm.", 0) == 0;
  }
  // Calls to globals/closures may recurse or allocate: keep them.
  return true;
}

class UseCounter : public ExprVisitor {
 public:
  std::unordered_map<const VarNode*, int> counts;

 protected:
  void VisitVar_(const VarNode* node) override { counts[node]++; }
  void VisitLet_(const LetNode* node) override {
    // Deliberately skip the binder occurrence.
    Visit(node->value);
    Visit(node->body);
  }
};

class DceMutator : public ExprMutator {
 public:
  explicit DceMutator(const std::unordered_map<const VarNode*, int>& counts)
      : counts_(counts) {}

 protected:
  Expr MutateLet_(const LetNode* node, const Expr& e) override {
    Expr value = Mutate(node->value);
    Expr body = Mutate(node->body);
    auto it = counts_.find(node->var.get());
    bool used = it != counts_.end() && it->second > 0;
    if (!used && !HasEffects(value)) return body;
    if (value == node->value && body == node->body) return e;
    return MakeLet(node->var, value, body);
  }

 private:
  const std::unordered_map<const VarNode*, int>& counts_;
};

}  // namespace

void DeadCodeElim(ir::Module* mod) {
  std::vector<std::pair<std::string, Function>> updated;
  for (const auto& [name, fn] : mod->functions()) {
    // Iterate to a fixed point: removing one binding can orphan another.
    Function current = fn;
    while (true) {
      UseCounter counter;
      counter.Visit(current);
      DceMutator dce(counter.counts);
      Expr next = dce.Mutate(current);
      if (next == current) break;
      current = std::static_pointer_cast<const FunctionNode>(next);
    }
    updated.emplace_back(name, current);
  }
  for (auto& [name, fn] : updated) mod->Update(name, fn);
}

}  // namespace pass
}  // namespace nimble
