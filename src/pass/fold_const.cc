// Constant folding: primitive calls whose inputs are all constants and
// whose output shape is statically known are evaluated at compile time with
// the kernel library.
#include "src/ir/visitor.h"
#include "src/kernels/registry.h"
#include "src/op/registry.h"
#include "src/pass/transforms.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT

namespace {

/// Ops that must never be folded: dialect/effectful ops and multi-output or
/// data-dependent ops (keep folding conservative and obviously correct).
bool Foldable(const op::OpInfo& info) {
  if (info.shape_mode != op::ShapeFuncMode::kDataIndependent) return false;
  if (info.shape_fn == nullptr) return false;
  if (info.num_outputs != 1) return false;
  if (info.name.rfind("memory.", 0) == 0 || info.name.rfind("vm.", 0) == 0 ||
      info.name.rfind("fused", 0) == 0 || info.name == "device_copy" ||
      info.name == "reshape") {
    return false;
  }
  kernels::EnsureKernelsRegistered();
  return kernels::KernelRegistry::Global()->Has(info.kernel_name);
}

class ConstFolder : public ExprMutator {
 protected:
  Expr MutateCall_(const CallNode* node, const Expr& e) override {
    Expr mutated = ExprMutator::MutateCall_(node, e);
    if (mutated->kind() != ExprKind::kCall) return mutated;
    const auto* call = static_cast<const CallNode*>(mutated.get());
    if (call->op->kind() != ExprKind::kOp) return mutated;
    const op::OpInfo& info = op::InfoOf(call->op);
    if (!Foldable(info)) return mutated;

    std::vector<runtime::NDArray> inputs;
    std::vector<runtime::ShapeVec> in_shapes;
    std::vector<Type> in_types;
    for (const Expr& a : call->args) {
      if (a->kind() != ExprKind::kConstant) return mutated;
      const auto& data = static_cast<const ConstantNode*>(a.get())->data;
      inputs.push_back(data);
      in_shapes.push_back(data.shape());
      in_types.push_back(TensorType(StaticShape(data.shape()), data.dtype()));
    }
    // Output dtype from the type relation, output shape from the runtime
    // shape function (inputs are concrete, so it is exact).
    Type out_type = info.type_rel(in_types, call->attrs);
    if (out_type->kind() != TypeKind::kTensor) return mutated;
    auto out_shapes = info.shape_fn(in_shapes, inputs, call->attrs);
    NIMBLE_ICHECK_EQ(out_shapes.size(), 1u);
    runtime::NDArray out = runtime::NDArray::Empty(
        out_shapes[0], AsTensorType(out_type)->dtype);
    kernels::RunKernel(info.kernel_name, inputs, {out}, call->attrs);
    return MakeConstant(std::move(out));
  }
};

}  // namespace

void FoldConstants(ir::Module* mod) {
  std::vector<std::pair<std::string, Function>> updated;
  for (const auto& [name, fn] : mod->functions()) {
    ConstFolder folder;
    Expr result = folder.Mutate(fn);
    updated.emplace_back(name,
                         std::static_pointer_cast<const FunctionNode>(result));
  }
  for (auto& [name, fn] : updated) mod->Update(name, fn);
}

}  // namespace pass
}  // namespace nimble
