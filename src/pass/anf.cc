// A-normal form conversion.
#include "src/pass/transforms.h"

#include <functional>
#include <unordered_map>

#include "src/ir/visitor.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT

namespace {

/// Builds a linear let-chain while converting; nested scopes (function
/// bodies, If/Match arms) get their own builder.
class ANFConverter {
 public:
  Expr Convert(const Expr& e) {
    Expr atom = ToAtom(e);
    return WrapBindings(atom);
  }

 private:
  /// Returns an atomic expression (Var/Constant/GlobalVar/Op/Constructor),
  /// pushing let bindings for anything compound. Memoized on node identity:
  /// a subexpression shared through the DAG is bound once and referenced by
  /// its variable afterwards (sharing must be preserved, not duplicated).
  Expr ToAtom(const Expr& e) {
    auto memo = memo_.find(e.get());
    if (memo != memo_.end()) return memo->second;
    Expr atom = ToAtomUncached(e);
    memo_[e.get()] = atom;
    return atom;
  }

  Expr ToAtomUncached(const Expr& e) {
    switch (e->kind()) {
      case ExprKind::kVar:
      case ExprKind::kGlobalVar:
      case ExprKind::kConstant:
      case ExprKind::kOp:
      case ExprKind::kConstructor:
        return e;
      case ExprKind::kTuple: {
        const auto* t = static_cast<const TupleNode*>(e.get());
        std::vector<Expr> fields;
        for (const Expr& f : t->fields) fields.push_back(ToAtom(f));
        return Bind(MakeTuple(std::move(fields)));
      }
      case ExprKind::kTupleGetItem: {
        const auto* t = static_cast<const TupleGetItemNode*>(e.get());
        return Bind(MakeTupleGetItem(ToAtom(t->tuple), t->index));
      }
      case ExprKind::kCall: {
        const auto* c = static_cast<const CallNode*>(e.get());
        Expr op = c->op;
        // Call targets that are themselves compound (e.g. closures returned
        // from calls) must also be atomized; primitive ops/ctors stay.
        if (op->kind() != ExprKind::kOp && op->kind() != ExprKind::kConstructor &&
            op->kind() != ExprKind::kGlobalVar && op->kind() != ExprKind::kVar) {
          op = ToAtom(op);
        }
        std::vector<Expr> args;
        for (const Expr& a : c->args) args.push_back(ToAtom(a));
        return Bind(MakeCall(op, std::move(args), c->attrs));
      }
      case ExprKind::kFunction: {
        const auto* f = static_cast<const FunctionNode*>(e.get());
        ANFConverter inner;
        Expr body = inner.Convert(f->body);
        return Bind(MakeFunction(f->params, body, f->ret_type));
      }
      case ExprKind::kLet: {
        const auto* l = static_cast<const LetNode*>(e.get());
        Expr value = ToAtomValue(l->value);
        bindings_.push_back({l->var, value});
        memo_[l->var.get()] = l->var;
        return ToAtom(l->body);
      }
      case ExprKind::kIf: {
        const auto* i = static_cast<const IfNode*>(e.get());
        Expr cond = ToAtom(i->cond);
        ANFConverter then_conv, else_conv;
        Expr t = then_conv.Convert(i->then_branch);
        Expr f = else_conv.Convert(i->else_branch);
        return Bind(MakeIf(cond, t, f));
      }
      case ExprKind::kMatch: {
        const auto* m = static_cast<const MatchNode*>(e.get());
        Expr data = ToAtom(m->data);
        std::vector<MatchClause> clauses;
        for (const MatchClause& c : m->clauses) {
          ANFConverter arm;
          clauses.push_back(MatchClause{c.ctor, c.binds, arm.Convert(c.body)});
        }
        return Bind(MakeMatch(data, std::move(clauses)));
      }
    }
    NIMBLE_FATAL() << "unreachable";
  }

  /// Converts a let value: compound but *not* re-bound (keeps the user's
  /// binding structure; calls/tuples stay as the bound value).
  Expr ToAtomValue(const Expr& e) {
    switch (e->kind()) {
      case ExprKind::kCall: {
        const auto* c = static_cast<const CallNode*>(e.get());
        Expr op = c->op;
        if (op->kind() != ExprKind::kOp && op->kind() != ExprKind::kConstructor &&
            op->kind() != ExprKind::kGlobalVar && op->kind() != ExprKind::kVar) {
          op = ToAtom(op);
        }
        std::vector<Expr> args;
        for (const Expr& a : c->args) args.push_back(ToAtom(a));
        return MakeCall(op, std::move(args), c->attrs);
      }
      case ExprKind::kTuple: {
        const auto* t = static_cast<const TupleNode*>(e.get());
        std::vector<Expr> fields;
        for (const Expr& f : t->fields) fields.push_back(ToAtom(f));
        return MakeTuple(std::move(fields));
      }
      case ExprKind::kTupleGetItem: {
        const auto* t = static_cast<const TupleGetItemNode*>(e.get());
        return MakeTupleGetItem(ToAtom(t->tuple), t->index);
      }
      case ExprKind::kIf:
      case ExprKind::kMatch:
      case ExprKind::kFunction: {
        // Keep scoped constructs as bound values with converted innards.
        Expr atom = ToAtom(e);
        // ToAtom bound it to a fresh var; unwrap that last binding.
        Binding b = bindings_.back();
        bindings_.pop_back();
        NIMBLE_ICHECK(b.var.get() == AsVar(atom)) << "unexpected binding order";
        return b.value;
      }
      default:
        return ToAtom(e);
    }
  }

  Expr Bind(Expr value) {
    Var v = MakeVar("t" + std::to_string(counter_++));
    bindings_.push_back({v, std::move(value)});
    return v;
  }

  Expr WrapBindings(Expr body) {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      body = MakeLet(it->var, it->value, body);
    }
    return body;
  }

  struct Binding {
    Var var;
    Expr value;
  };
  std::vector<Binding> bindings_;
  std::unordered_map<const ExprNode*, Expr> memo_;
  int counter_ = 0;
};

}  // namespace

Expr ExprToANF(const Expr& e) {
  if (e->kind() == ExprKind::kFunction) {
    const auto* f = static_cast<const FunctionNode*>(e.get());
    ANFConverter conv;
    return MakeFunction(f->params, conv.Convert(f->body), f->ret_type);
  }
  ANFConverter conv;
  return conv.Convert(e);
}

void ToANF(ir::Module* mod) {
  std::vector<std::pair<std::string, Function>> updated;
  for (const auto& [name, fn] : mod->functions()) {
    updated.emplace_back(
        name, std::static_pointer_cast<const FunctionNode>(ExprToANF(fn)));
  }
  for (auto& [name, fn] : updated) mod->Update(name, fn);
}

}  // namespace pass
}  // namespace nimble
