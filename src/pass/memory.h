// Memory dialect passes (§4.3) and heterogeneous device placement (§4.4).
#pragma once

#include "src/ir/module.h"
#include "src/runtime/device.h"

namespace nimble {
namespace pass {

/// ManifestAlloc: rewrites every primitive-operator call in an ANF function
/// into the explicit allocation dialect:
///
///   statically-shaped op:
///     let %storage = memory.alloc_storage() /* size, alignment */;
///     let %out = memory.alloc_tensor(%storage, const_shape) /* dtype */;
///     let %_ = memory.invoke_mut(%in..., %out) /* op_name */;
///
///   dynamically-shaped op (adds the shape-function machinery of §4.2):
///     let %in_sh = vm.shape_of(%in);             (data-independent mode)
///     let %out_sh = memory.alloc_tensor(...);    (small i64 shape tensor)
///     let %_ = vm.shape_func(%in_sh..., %out_sh...) /* op_name, mode */;
///     let %storage = memory.alloc_storage(%out_sh) /* dtype */;
///     let %out = memory.alloc_tensor(%storage, %out_sh) /* dtype, rank */;
///     let %_ = memory.invoke_mut(%in..., %out) /* op_name */;
///
/// Requires: ToANF + InferTypes have run.
void ManifestAlloc(ir::Module* mod);

struct MemoryPlanStats {
  int storage_allocs_before = 0;
  int storage_allocs_after = 0;
  int kills_inserted = 0;
  double ReductionPercent() const {
    if (storage_allocs_before == 0) return 0.0;
    return 100.0 * (storage_allocs_before - storage_allocs_after) /
           static_cast<double>(storage_allocs_before);
  }
};

/// MemoryPlan: storage coalescing on the explicit dialect. Statically-sized
/// storages whose live ranges do not overlap are merged (first-fit reuse of
/// a freed storage of compatible size and device), and memory.kill is
/// inserted after each tensor's last use.
MemoryPlanStats MemoryPlan(ir::Module* mod);

struct DevicePlaceStats {
  int copies_inserted = 0;
  int nodes_on_device = 0;  // vars placed on the kernel device
  int nodes_on_cpu = 0;     // vars pinned to CPU (shape machinery)
};

/// DevicePlacement: assigns a DeviceDomain to every binding via unification
/// (union-find), pins shape functions/shape tensors to the CPU, places
/// kernel data on `kernel_device`, stamps the chosen device into
/// alloc_storage attrs, and inserts device_copy where domains conflict
/// (e.g. a tensor on the accelerator feeding a data-dependent shape
/// function).
DevicePlaceStats DevicePlacement(ir::Module* mod, runtime::Device kernel_device);

}  // namespace pass
}  // namespace nimble
