// Type inference for the dynamic type system (§4.1).
//
// Walks every function of a module, computing a type for each expression
// node (stored in ExprNode::checked_type). Operator output types come from
// the registered type relations, which implement the paper's Any
// propagation rules (see src/op/ops.cc); control-flow joins (If/Match) use
// sub-shaping: dims that disagree across branches widen to Any, so a value
// with more specific shape information may flow into a context requiring
// less specific shapes. With Any present some checks cannot be performed
// statically and are deferred to the runtime shape functions (gradual
// typing).
#pragma once

#include "src/ir/module.h"

namespace nimble {
namespace pass {

/// Infers and annotates types across the whole module. Throws nimble::Error
/// on a statically-detectable type error. Recursive global functions must
/// declare their return type.
void InferTypes(ir::Module* mod);

/// Infers the type of a standalone expression (no globals), for tests.
ir::Type InferExprType(const ir::Expr& e);

/// The join used at control-flow merges: identical dims stay, disagreeing
/// dims widen to Any. Exposed for unit tests.
ir::Type JoinTypes(const ir::Type& a, const ir::Type& b);

}  // namespace pass
}  // namespace nimble
