// FuseLSTMCell: rewrites the canonical unfused LSTM recurrence into the
// fused nn.lstm_cell operator.
//
// The pattern (gate order i|f|g|o, as produced by models::BuildLSTM and by
// typical frontend importers):
//
//   %sp = split(%gates, sections=4, axis=1);
//   %c2 = add(mul(sigmoid(%sp.1), %c), mul(sigmoid(%sp.0), tanh(%sp.2)));
//   (%h2, %c2) where %h2 = mul(sigmoid(%sp.3), tanh(%c2))
//
// becomes nn.lstm_cell(%gates, %c), a single pass over memory (see
// src/kernels/nn.cc). This is the dataflow-DAG fusion that the chain-based
// FuseOps pass cannot express.
#include "src/ir/visitor.h"
#include "src/op/registry.h"
#include "src/pass/transforms.h"

namespace nimble {
namespace pass {

using namespace ir;  // NOLINT

namespace {

const CallNode* MatchOpCall(const Expr& e, const char* op_name, size_t arity) {
  if (e == nullptr || e->kind() != ExprKind::kCall) return nullptr;
  const auto* call = static_cast<const CallNode*>(e.get());
  if (call->op->kind() != ExprKind::kOp) return nullptr;
  if (static_cast<const OpNode*>(call->op.get())->name != op_name) return nullptr;
  if (call->args.size() != arity) return nullptr;
  return call;
}

/// Matches sigmoid(%sp.k) / tanh(%sp.k); returns the split expr via *split.
bool MatchGate(const Expr& e, const char* activation, int index, Expr* split) {
  const CallNode* act = MatchOpCall(e, activation, 1);
  if (act == nullptr) return false;
  if (act->args[0]->kind() != ExprKind::kTupleGetItem) return false;
  const auto* tgi = static_cast<const TupleGetItemNode*>(act->args[0].get());
  if (tgi->index != index) return false;
  if (*split == nullptr) {
    *split = tgi->tuple;
  } else if (split->get() != tgi->tuple.get()) {
    return false;  // gates must come from the same split
  }
  return true;
}

class LSTMCellFuser : public ExprMutator {
 public:
  int fused = 0;

 protected:
  Expr MutateTuple_(const TupleNode* node, const Expr& e) override {
    if (node->fields.size() == 2) {
      Expr gates, cell;
      if (MatchCellPattern(node->fields[0], node->fields[1], &gates, &cell)) {
        fused++;
        return op::Call2("nn.lstm_cell", Mutate(gates), Mutate(cell));
      }
    }
    return ExprMutator::MutateTuple_(node, e);
  }

 private:
  /// h2 = mul(sigmoid(sp.3), tanh(c2)), c2 = add(mul(sigmoid(sp.1), c),
  /// mul(sigmoid(sp.0), tanh(sp.2))), sp = split(gates, 4, axis=1); the
  /// tuple's second field must be the shared c2 node.
  bool MatchCellPattern(const Expr& h2, const Expr& c2, Expr* gates, Expr* cell) {
    const CallNode* h_mul = MatchOpCall(h2, "multiply", 2);
    if (h_mul == nullptr) return false;
    Expr split = nullptr;
    if (!MatchGate(h_mul->args[0], "sigmoid", 3, &split)) return false;
    const CallNode* h_tanh = MatchOpCall(h_mul->args[1], "tanh", 1);
    if (h_tanh == nullptr) return false;
    if (h_tanh->args[0].get() != c2.get()) return false;  // shared c' node

    const CallNode* c_add = MatchOpCall(c2, "add", 2);
    if (c_add == nullptr) return false;
    const CallNode* f_mul = MatchOpCall(c_add->args[0], "multiply", 2);
    const CallNode* i_mul = MatchOpCall(c_add->args[1], "multiply", 2);
    if (f_mul == nullptr || i_mul == nullptr) return false;
    if (!MatchGate(f_mul->args[0], "sigmoid", 1, &split)) return false;
    if (!MatchGate(i_mul->args[0], "sigmoid", 0, &split)) return false;
    if (!MatchGate(i_mul->args[1], "tanh", 2, &split)) return false;

    const CallNode* split_call = MatchOpCall(split, "split", 1);
    if (split_call == nullptr) return false;
    if (split_call->attrs.GetInt("sections", 0) != 4) return false;
    if (split_call->attrs.GetInt("axis", 0) != 1) return false;

    *gates = split_call->args[0];
    *cell = f_mul->args[1];
    return true;
  }
};

}  // namespace

int FuseLSTMCell(ir::Module* mod) {
  int total = 0;
  std::vector<std::pair<std::string, Function>> updated;
  for (const auto& [name, fn] : mod->functions()) {
    LSTMCellFuser fuser;
    Expr result = fuser.Mutate(fn);
    total += fuser.fused;
    updated.emplace_back(name,
                         std::static_pointer_cast<const FunctionNode>(result));
  }
  for (auto& [name, fn] : updated) mod->Update(name, fn);
  return total;
}

}  // namespace pass
}  // namespace nimble
