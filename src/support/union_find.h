// Union-find (disjoint set) with path compression and union by rank.
//
// Used by the heterogeneous device-placement pass (§4.4 of the paper) to
// unify DeviceDomains across IR nodes, and reusable for any equivalence
// analysis (e.g. symbolic-dimension equality).
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "src/support/logging.h"

namespace nimble {
namespace support {

class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Adds a fresh singleton set and returns its id.
  size_t Make() {
    parent_.push_back(parent_.size());
    rank_.push_back(0);
    return parent_.size() - 1;
  }

  size_t size() const { return parent_.size(); }

  /// Returns the representative of x's set.
  size_t Find(size_t x) {
    NIMBLE_ICHECK(x < parent_.size()) << "union-find index out of range";
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns the new representative.
  size_t Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return ra;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) rank_[ra]++;
    return ra;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

 private:
  std::vector<size_t> parent_;
  std::vector<int> rank_;
};

}  // namespace support
}  // namespace nimble
