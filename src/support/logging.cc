#include "src/support/logging.h"

#include <iostream>

namespace nimble {
namespace support {

LogMessage::LogMessage(const char* file, int line, const char* level) {
  stream_ << "[" << level << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << std::endl; }

}  // namespace support
}  // namespace nimble
