// Lightweight logging and check macros, modeled on TVM/glog style.
//
// NIMBLE_CHECK(cond) << "msg";   — throws nimble::Error on failure.
// NIMBLE_ICHECK — internal invariant check (same behaviour, different tag).
// NIMBLE_LOG(INFO|WARNING) << ...; — stderr logging.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nimble {

/// Exception type thrown by all Nimble check failures and user errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

namespace support {

/// Stream-collecting object that throws Error when destroyed.
class LogFatal {
 public:
  LogFatal(const char* file, int line, const char* tag) {
    stream_ << "[" << tag << " " << file << ":" << line << "] ";
  }
  [[noreturn]] ~LogFatal() noexcept(false) { throw Error(stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Stream that prints to stderr on destruction.
class LogMessage {
 public:
  LogMessage(const char* file, int line, const char* level);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace support
}  // namespace nimble

#define NIMBLE_CHECK(cond)                                              \
  if (!(cond))                                                          \
  ::nimble::support::LogFatal(__FILE__, __LINE__, "CHECK").stream()     \
      << "Check failed: " #cond ". "

#define NIMBLE_ICHECK(cond)                                             \
  if (!(cond))                                                          \
  ::nimble::support::LogFatal(__FILE__, __LINE__, "INTERNAL").stream()  \
      << "Internal invariant violated: " #cond ". "

#define NIMBLE_ICHECK_EQ(a, b) NIMBLE_ICHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define NIMBLE_CHECK_EQ(a, b) NIMBLE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define NIMBLE_CHECK_NE(a, b) NIMBLE_CHECK((a) != (b))
#define NIMBLE_CHECK_LT(a, b) NIMBLE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define NIMBLE_CHECK_LE(a, b) NIMBLE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define NIMBLE_CHECK_GT(a, b) NIMBLE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define NIMBLE_CHECK_GE(a, b) NIMBLE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#define NIMBLE_FATAL() \
  ::nimble::support::LogFatal(__FILE__, __LINE__, "FATAL").stream()

#define NIMBLE_LOG(level) \
  ::nimble::support::LogMessage(__FILE__, __LINE__, #level).stream()
