// Deterministic xoshiro256** random number generator.
//
// Used for weight initialization, synthetic datasets, and property-test
// input generation. Deterministic across platforms (unlike std::mt19937's
// distributions, whose outputs are implementation-defined).
#pragma once

#include <cstdint>

namespace nimble {
namespace support {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding
    for (auto& word : s_) {
      seed += 0x9e3779b97f4a7c15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    auto rotl = [](uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  uint64_t s_[4];
};

}  // namespace support
}  // namespace nimble
