// IR → bytecode compiler (§5).
//
// Consumes a module in ANF with explicit allocations (after ManifestAlloc /
// MemoryPlan / DevicePlacement) and emits a VM executable. Control flow
// lowers to If/Goto with relative offsets, Match lowers to GetTag + If
// chains, function literals are lambda-lifted into VM functions with
// captured free variables (AllocClosure / InvokeClosure), and memory.kill
// is consumed at compile time by recycling the killed variable's register.
#pragma once

#include <memory>

#include "src/ir/module.h"
#include "src/vm/executable.h"

namespace nimble {
namespace vm {

class VMCompiler {
 public:
  std::shared_ptr<Executable> Compile(const ir::Module& mod);
};

}  // namespace vm
}  // namespace nimble
