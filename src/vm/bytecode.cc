#include "src/vm/bytecode.h"

#include <sstream>

namespace nimble {
namespace vm {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kMove: return "Move";
    case Opcode::kRet: return "Ret";
    case Opcode::kInvoke: return "Invoke";
    case Opcode::kInvokeClosure: return "InvokeClosure";
    case Opcode::kInvokePacked: return "InvokePacked";
    case Opcode::kAllocStorage: return "AllocStorage";
    case Opcode::kAllocTensor: return "AllocTensor";
    case Opcode::kAllocTensorReg: return "AllocTensorReg";
    case Opcode::kAllocADT: return "AllocADT";
    case Opcode::kAllocClosure: return "AllocClosure";
    case Opcode::kGetField: return "GetField";
    case Opcode::kGetTag: return "GetTag";
    case Opcode::kIf: return "If";
    case Opcode::kGoto: return "Goto";
    case Opcode::kLoadConst: return "LoadConst";
    case Opcode::kLoadConsti: return "LoadConsti";
    case Opcode::kDeviceCopy: return "DeviceCopy";
    case Opcode::kShapeOf: return "ShapeOf";
    case Opcode::kReshapeTensor: return "ReshapeTensor";
    case Opcode::kFatal: return "Fatal";
  }
  return "<bad>";
}

std::string Instruction::ToString() const {
  std::ostringstream os;
  os << OpcodeName(op);
  if (dst >= 0) os << " $" << dst << " <-";
  os << " imm(" << imm0 << "," << imm1 << "," << imm2 << ")";
  if (!args.empty()) {
    os << " regs[";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i) os << ",";
      os << "$" << args[i];
    }
    os << "]";
  }
  if (!extra.empty()) {
    os << " extra[";
    for (size_t i = 0; i < extra.size(); ++i) {
      if (i) os << ",";
      os << extra[i];
    }
    os << "]";
  }
  return os.str();
}

}  // namespace vm
}  // namespace nimble
