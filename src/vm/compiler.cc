#include "src/vm/compiler.h"

#include <unordered_map>

#include "src/ir/printer.h"
#include "src/ir/visitor.h"
#include "src/op/registry.h"
#include "src/support/logging.h"

namespace nimble {
namespace vm {

using namespace ir;  // NOLINT

namespace {

class CompilerImpl {
 public:
  std::shared_ptr<Executable> Compile(const Module& mod) {
    mod_ = &mod;
    exec_ = std::make_shared<Executable>();
    // Pre-assign indices so mutually recursive calls resolve.
    for (const auto& [name, fn] : mod.functions()) {
      exec_->function_index[name] = static_cast<int32_t>(exec_->functions.size());
      exec_->functions.push_back(VMFunction{name, 0, 0, {}});
    }
    for (const auto& [name, fn] : mod.functions()) {
      CompileFunction(exec_->function_index[name], fn->params, fn->body);
    }
    return exec_;
  }

 private:
  // ---- per-function compilation state --------------------------------------

  struct FuncCtx {
    std::vector<Instruction> code;
    std::unordered_map<const VarNode*, RegName> env;
    std::vector<RegName> free_regs;
    int32_t num_regs = 0;
  };

  RegName NewReg(FuncCtx* ctx) {
    if (!ctx->free_regs.empty()) {
      RegName r = ctx->free_regs.back();
      ctx->free_regs.pop_back();
      return r;
    }
    return ctx->num_regs++;
  }

  void Emit(FuncCtx* ctx, Instruction inst) {
    ctx->code.push_back(std::move(inst));
  }

  void CompileFunction(int32_t index, const std::vector<Var>& params,
                       const Expr& body) {
    FuncCtx ctx;
    for (const Var& p : params) {
      ctx.env[p.get()] = NewReg(&ctx);
    }
    RegName result = CompileBlock(body, &ctx);
    Instruction ret;
    ret.op = Opcode::kRet;
    ret.args = {result};
    Emit(&ctx, ret);
    VMFunction& fn = exec_->functions[index];
    fn.num_params = static_cast<int32_t>(params.size());
    fn.register_file_size = ctx.num_regs;
    fn.instructions = std::move(ctx.code);
  }

  /// Compiles a let-chain scope; returns the register holding its value.
  RegName CompileBlock(const Expr& scope, FuncCtx* ctx) {
    Expr cursor = scope;
    while (cursor->kind() == ExprKind::kLet) {
      const auto* let = static_cast<const LetNode*>(cursor.get());
      // memory.kill is consumed here: recycle the register.
      if (IsCallToOp(let->value, "memory.kill")) {
        const auto* call = AsCall(let->value);
        if (call->args[0]->kind() == ExprKind::kVar) {
          auto it = ctx->env.find(
              static_cast<const VarNode*>(call->args[0].get()));
          if (it != ctx->env.end()) ctx->free_regs.push_back(it->second);
        }
        cursor = let->body;
        continue;
      }
      RegName r = CompileValue(let->value, ctx);
      ctx->env[let->var.get()] = r;
      cursor = let->body;
    }
    return CompileAtom(cursor, ctx);
  }

  RegName CompileAtom(const Expr& e, FuncCtx* ctx) {
    switch (e->kind()) {
      case ExprKind::kVar: {
        auto it = ctx->env.find(static_cast<const VarNode*>(e.get()));
        NIMBLE_CHECK(it != ctx->env.end())
            << "unbound variable in VM compilation: " << PrintExpr(e);
        return it->second;
      }
      case ExprKind::kConstant: {
        RegName dst = NewReg(ctx);
        Instruction inst;
        inst.op = Opcode::kLoadConst;
        inst.dst = dst;
        inst.imm0 = ConstIndex(static_cast<const ConstantNode*>(e.get()));
        Emit(ctx, inst);
        return dst;
      }
      case ExprKind::kGlobalVar: {
        // First-class reference to a global: wrap in a captureless closure.
        RegName dst = NewReg(ctx);
        Instruction inst;
        inst.op = Opcode::kAllocClosure;
        inst.dst = dst;
        inst.imm0 = exec_->FunctionIndex(
            static_cast<const GlobalVarNode*>(e.get())->name);
        Emit(ctx, inst);
        return dst;
      }
      default:
        return CompileValue(e, ctx);
    }
  }

  RegName CompileValue(const Expr& value, FuncCtx* ctx) {
    switch (value->kind()) {
      case ExprKind::kVar:
      case ExprKind::kConstant:
      case ExprKind::kGlobalVar:
        return CompileAtom(value, ctx);
      case ExprKind::kTuple: {
        const auto* t = static_cast<const TupleNode*>(value.get());
        Instruction inst;
        inst.op = Opcode::kAllocADT;
        inst.imm0 = -1;  // tuple
        for (const Expr& f : t->fields) inst.args.push_back(CompileAtom(f, ctx));
        inst.dst = NewReg(ctx);
        Emit(ctx, inst);
        return inst.dst;
      }
      case ExprKind::kTupleGetItem: {
        const auto* t = static_cast<const TupleGetItemNode*>(value.get());
        Instruction inst;
        inst.op = Opcode::kGetField;
        inst.args = {CompileAtom(t->tuple, ctx)};
        inst.imm0 = t->index;
        inst.dst = NewReg(ctx);
        Emit(ctx, inst);
        return inst.dst;
      }
      case ExprKind::kCall:
        return CompileCall(static_cast<const CallNode*>(value.get()), ctx);
      case ExprKind::kIf:
        return CompileIf(static_cast<const IfNode*>(value.get()), ctx);
      case ExprKind::kMatch:
        return CompileMatch(static_cast<const MatchNode*>(value.get()), ctx);
      case ExprKind::kFunction:
        return CompileClosure(
            std::static_pointer_cast<const FunctionNode>(value), ctx);
      default:
        NIMBLE_FATAL() << "cannot compile expression kind "
                       << static_cast<int>(value->kind());
    }
  }

  RegName CompileCall(const CallNode* call, FuncCtx* ctx) {
    // Primitive / dialect operators.
    if (call->op->kind() == ExprKind::kOp) {
      return CompileOpCall(call, ctx);
    }
    // ADT constructor application.
    if (call->op->kind() == ExprKind::kConstructor) {
      const auto* c = static_cast<const ConstructorNode*>(call->op.get());
      Instruction inst;
      inst.op = Opcode::kAllocADT;
      inst.imm0 = static_cast<int64_t>(c->tag);
      for (const Expr& a : call->args) inst.args.push_back(CompileAtom(a, ctx));
      inst.dst = NewReg(ctx);
      Emit(ctx, inst);
      return inst.dst;
    }
    // Direct call of a global function.
    if (call->op->kind() == ExprKind::kGlobalVar) {
      Instruction inst;
      inst.op = Opcode::kInvoke;
      inst.imm0 = exec_->FunctionIndex(
          static_cast<const GlobalVarNode*>(call->op.get())->name);
      for (const Expr& a : call->args) inst.args.push_back(CompileAtom(a, ctx));
      inst.dst = NewReg(ctx);
      Emit(ctx, inst);
      return inst.dst;
    }
    // Closure call (var or immediate function literal).
    RegName closure = CompileAtom(call->op, ctx);
    Instruction inst;
    inst.op = Opcode::kInvokeClosure;
    inst.args = {closure};
    for (const Expr& a : call->args) inst.args.push_back(CompileAtom(a, ctx));
    inst.dst = NewReg(ctx);
    Emit(ctx, inst);
    return inst.dst;
  }

  RegName CompileOpCall(const CallNode* call, FuncCtx* ctx) {
    const std::string& name = static_cast<const OpNode*>(call->op.get())->name;
    if (name == "memory.alloc_storage") {
      Instruction inst;
      inst.op = Opcode::kAllocStorage;
      if (call->attrs.Has("size") && call->args.empty()) {
        inst.imm0 = call->attrs.GetInt("size");
      } else {
        inst.imm0 = -1;  // size from shape register
        NIMBLE_CHECK_EQ(call->args.size(), 1u);
        inst.args = {CompileAtom(call->args[0], ctx)};
        inst.imm1 = static_cast<int64_t>(
            runtime::DataType::FromString(call->attrs.GetStr("dtype", "float32"))
                .code());
      }
      inst.imm2 =
          PackDevice(call->attrs.GetDevice("device", runtime::Device::CPU()));
      inst.dst = NewReg(ctx);
      Emit(ctx, inst);
      return inst.dst;
    }
    if (name == "memory.alloc_tensor") {
      Instruction inst;
      inst.imm0 = call->attrs.GetInt("offset", 0);
      inst.imm1 = static_cast<int64_t>(
          runtime::DataType::FromString(call->attrs.GetStr("dtype", "float32"))
              .code());
      RegName storage = CompileAtom(call->args[0], ctx);
      if (call->args[1]->kind() == ExprKind::kConstant) {
        inst.op = Opcode::kAllocTensor;
        inst.args = {storage};
        inst.extra = runtime::ShapeFromTensor(
            static_cast<const ConstantNode*>(call->args[1].get())->data);
      } else {
        inst.op = Opcode::kAllocTensorReg;
        inst.args = {storage, CompileAtom(call->args[1], ctx)};
      }
      inst.dst = NewReg(ctx);
      Emit(ctx, inst);
      return inst.dst;
    }
    if (name == "memory.invoke_mut") {
      std::string op_name = call->attrs.GetStr("op_name");
      const op::OpInfo& info = op::OpRegistry::Global()->Get(op_name);
      PackedEntry entry;
      entry.kind = PackedEntry::Kind::kKernel;
      entry.name = info.kernel_name;
      entry.attrs = call->attrs;
      entry.num_inputs = static_cast<int32_t>(call->attrs.GetInt("num_inputs"));
      Instruction inst;
      inst.op = Opcode::kInvokePacked;
      inst.imm0 = PackedIndex(entry);
      inst.imm1 = entry.num_inputs;
      for (const Expr& a : call->args) inst.args.push_back(CompileAtom(a, ctx));
      Emit(ctx, inst);
      // invoke_mut yields no value; hand back a dummy register holding the
      // immediate 0 only if someone binds it (cheap, rare).
      RegName dst = NewReg(ctx);
      Instruction zero;
      zero.op = Opcode::kLoadConsti;
      zero.imm0 = 0;
      zero.dst = dst;
      Emit(ctx, zero);
      return dst;
    }
    if (name == "vm.shape_func") {
      std::string op_name = call->attrs.GetStr("op_name");
      PackedEntry entry;
      entry.kind = PackedEntry::Kind::kShapeFunc;
      entry.name = op_name;
      entry.attrs = call->attrs;
      entry.num_inputs = static_cast<int32_t>(call->attrs.GetInt("num_inputs"));
      entry.shape_mode = static_cast<int32_t>(call->attrs.GetInt("mode"));
      Instruction inst;
      inst.op = Opcode::kInvokePacked;
      inst.imm0 = PackedIndex(entry);
      inst.imm1 = entry.num_inputs;
      for (const Expr& a : call->args) inst.args.push_back(CompileAtom(a, ctx));
      Emit(ctx, inst);
      RegName dst = NewReg(ctx);
      Instruction zero;
      zero.op = Opcode::kLoadConsti;
      zero.imm0 = 0;
      zero.dst = dst;
      Emit(ctx, zero);
      return dst;
    }
    if (name == "vm.shape_of") {
      Instruction inst;
      inst.op = Opcode::kShapeOf;
      inst.args = {CompileAtom(call->args[0], ctx)};
      inst.dst = NewReg(ctx);
      Emit(ctx, inst);
      return inst.dst;
    }
    if (name == "vm.reshape_tensor") {
      Instruction inst;
      inst.op = Opcode::kReshapeTensor;
      inst.args = {CompileAtom(call->args[0], ctx),
                   CompileAtom(call->args[1], ctx)};
      inst.dst = NewReg(ctx);
      Emit(ctx, inst);
      return inst.dst;
    }
    if (name == "device_copy") {
      Instruction inst;
      inst.op = Opcode::kDeviceCopy;
      inst.args = {CompileAtom(call->args[0], ctx)};
      inst.imm2 = PackDevice(
          call->attrs.GetDevice("dst_device", runtime::Device::CPU()));
      inst.dst = NewReg(ctx);
      Emit(ctx, inst);
      return inst.dst;
    }
    NIMBLE_FATAL() << "operator '" << name
                   << "' reached the VM compiler; run ManifestAlloc first";
  }

  RegName CompileIf(const IfNode* node, FuncCtx* ctx) {
    RegName cond = CompileAtom(node->cond, ctx);
    RegName one = NewReg(ctx);
    Instruction load_one;
    load_one.op = Opcode::kLoadConsti;
    load_one.imm0 = 1;
    load_one.dst = one;
    Emit(ctx, load_one);

    RegName dst = NewReg(ctx);
    size_t if_pos = ctx->code.size();
    Instruction branch;
    branch.op = Opcode::kIf;
    branch.args = {cond, one};
    branch.imm0 = 1;  // equal: fall through to the then-block
    branch.imm1 = 0;  // patched to skip to the else-block
    Emit(ctx, branch);

    RegName then_res = CompileBlock(node->then_branch, ctx);
    Instruction move_t;
    move_t.op = Opcode::kMove;
    move_t.dst = dst;
    move_t.args = {then_res};
    Emit(ctx, move_t);
    size_t goto_pos = ctx->code.size();
    Instruction skip;
    skip.op = Opcode::kGoto;
    skip.imm0 = 0;  // patched to jump past the else-block
    Emit(ctx, skip);

    size_t else_start = ctx->code.size();
    ctx->code[if_pos].imm1 = static_cast<int64_t>(else_start - if_pos);
    RegName else_res = CompileBlock(node->else_branch, ctx);
    Instruction move_e;
    move_e.op = Opcode::kMove;
    move_e.dst = dst;
    move_e.args = {else_res};
    Emit(ctx, move_e);
    ctx->code[goto_pos].imm0 = static_cast<int64_t>(ctx->code.size() - goto_pos);
    return dst;
  }

  RegName CompileMatch(const MatchNode* node, FuncCtx* ctx) {
    RegName data = CompileAtom(node->data, ctx);
    RegName tag = NewReg(ctx);
    Instruction get_tag;
    get_tag.op = Opcode::kGetTag;
    get_tag.args = {data};
    get_tag.dst = tag;
    Emit(ctx, get_tag);

    RegName dst = NewReg(ctx);
    std::vector<size_t> end_gotos;
    for (size_t ci = 0; ci < node->clauses.size(); ++ci) {
      const MatchClause& clause = node->clauses[ci];
      bool is_last = ci + 1 == node->clauses.size();
      size_t if_pos = 0;
      if (clause.ctor != nullptr && !is_last) {
        RegName want = NewReg(ctx);
        Instruction load;
        load.op = Opcode::kLoadConsti;
        load.imm0 = static_cast<int64_t>(clause.ctor->tag);
        load.dst = want;
        Emit(ctx, load);
        if_pos = ctx->code.size();
        Instruction test;
        test.op = Opcode::kIf;
        test.args = {tag, want};
        test.imm0 = 1;  // match: fall through
        test.imm1 = 0;  // patched: next clause
        Emit(ctx, test);
      }
      // Bind constructor fields.
      if (clause.ctor != nullptr) {
        for (size_t f = 0; f < clause.binds.size(); ++f) {
          Instruction get;
          get.op = Opcode::kGetField;
          get.args = {data};
          get.imm0 = static_cast<int64_t>(f);
          get.dst = NewReg(ctx);
          ctx->env[clause.binds[f].get()] = get.dst;
          Emit(ctx, get);
        }
      }
      RegName res = CompileBlock(clause.body, ctx);
      Instruction move;
      move.op = Opcode::kMove;
      move.dst = dst;
      move.args = {res};
      Emit(ctx, move);
      if (!is_last) {
        end_gotos.push_back(ctx->code.size());
        Instruction skip;
        skip.op = Opcode::kGoto;
        skip.imm0 = 0;
        Emit(ctx, skip);
        if (clause.ctor != nullptr) {
          ctx->code[if_pos].imm1 =
              static_cast<int64_t>(ctx->code.size() - if_pos);
        }
      }
    }
    for (size_t pos : end_gotos) {
      ctx->code[pos].imm0 = static_cast<int64_t>(ctx->code.size() - pos);
    }
    return dst;
  }

  RegName CompileClosure(const Function& fn, FuncCtx* ctx) {
    // Lambda-lift: captured free variables become leading parameters.
    std::vector<Var> free = FreeVars(fn);
    std::vector<Var> lifted_params = free;
    for (const Var& p : fn->params) lifted_params.push_back(p);
    std::string name = "lambda_" + std::to_string(lambda_counter_++);
    int32_t index = static_cast<int32_t>(exec_->functions.size());
    exec_->function_index[name] = index;
    exec_->functions.push_back(VMFunction{name, 0, 0, {}});
    CompileFunction(index, lifted_params, fn->body);

    Instruction inst;
    inst.op = Opcode::kAllocClosure;
    inst.imm0 = index;
    for (const Var& v : free) inst.args.push_back(CompileAtom(v, ctx));
    inst.dst = NewReg(ctx);
    Emit(ctx, inst);
    return inst.dst;
  }

  int64_t ConstIndex(const ConstantNode* node) {
    auto it = const_indices_.find(node);
    if (it != const_indices_.end()) return it->second;
    int64_t index = static_cast<int64_t>(exec_->constants.size());
    exec_->constants.push_back(node->data);
    const_indices_[node] = index;
    return index;
  }

  int64_t PackedIndex(const PackedEntry& entry) {
    std::string key = std::to_string(static_cast<int>(entry.kind)) + "|" +
                      entry.name + "|" + entry.attrs.ToString() + "|" +
                      std::to_string(entry.num_inputs);
    auto it = packed_indices_.find(key);
    if (it != packed_indices_.end()) return it->second;
    int64_t index = static_cast<int64_t>(exec_->packed.size());
    exec_->packed.push_back(entry);
    packed_indices_[key] = index;
    return index;
  }

  const Module* mod_ = nullptr;
  std::shared_ptr<Executable> exec_;
  std::unordered_map<const ConstantNode*, int64_t> const_indices_;
  std::unordered_map<std::string, int64_t> packed_indices_;
  int lambda_counter_ = 0;
};

}  // namespace

std::shared_ptr<Executable> VMCompiler::Compile(const Module& mod) {
  return CompilerImpl().Compile(mod);
}

}  // namespace vm
}  // namespace nimble
