// Virtual machine interpreter (§5.2).
//
// Loads an executable and runs its bytecode in a dispatch loop. Objects in
// the register file are reference-counted and passed by reference, so
// register operations are cheap regardless of payload size. The interpreter
// optionally records a per-instruction-category time profile (used by the
// Table 4 overhead study: kernel latency vs "other instructions").
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/allocator.h"
#include "src/runtime/object.h"
#include "src/vm/executable.h"

namespace nimble {
namespace vm {

struct VMProfile {
  struct Entry {
    int64_t count = 0;
    int64_t nanos = 0;
  };
  std::array<Entry, 20> per_opcode{};
  int64_t kernel_nanos = 0;      // InvokePacked on compute kernels
  int64_t shape_func_nanos = 0;  // InvokePacked on shape functions
  int64_t total_nanos = 0;
  int64_t instructions = 0;

  int64_t other_nanos() const { return total_nanos - kernel_nanos; }
  void Reset() { *this = VMProfile{}; }
  std::string ToString() const;
};

class VirtualMachine {
 public:
  explicit VirtualMachine(std::shared_ptr<Executable> exec,
                          runtime::Allocator* allocator = nullptr);

  /// Runs a function by name (default: "main").
  runtime::ObjectRef Invoke(const std::string& name,
                            std::vector<runtime::ObjectRef> args);
  runtime::ObjectRef Invoke(std::vector<runtime::ObjectRef> args) {
    return Invoke("main", std::move(args));
  }

  void EnableProfiling(bool on) { profiling_ = on; }
  const VMProfile& profile() const { return profile_; }
  VMProfile& mutable_profile() { return profile_; }

  const Executable& executable() const { return *exec_; }

 private:
  struct Frame {
    int32_t func_index;
    size_t pc = 0;
    std::vector<runtime::ObjectRef> regs;
    RegName caller_dst = -1;
  };

  runtime::ObjectRef Run(Frame initial);
  void RunInstruction(const Instruction& inst, std::vector<Frame>& stack,
                      runtime::ObjectRef* final_result, bool* done);

  void RunPacked(const Instruction& inst, Frame& frame);

  std::shared_ptr<Executable> exec_;
  runtime::Allocator* allocator_;
  bool profiling_ = false;
  VMProfile profile_;
};

}  // namespace vm
}  // namespace nimble
