// Virtual machine interpreter (§5.2).
//
// Loads an executable and runs its bytecode in a dispatch loop. Objects in
// the register file are reference-counted and passed by reference, so
// register operations are cheap regardless of payload size. The interpreter
// optionally records a per-instruction-category time profile (used by the
// Table 4 overhead study: kernel latency vs "other instructions").
//
// Thread-safety contract (serving subsystem, src/serve/):
//   A VirtualMachine instance is single-threaded — it owns a mutable frame
//   stack and profile. Concurrency is achieved by running *many* VMs, one
//   per worker thread, all sharing one immutable Executable (cheap: a VM is
//   just a few pointers plus the recycled frame stack). Invoke is reusable:
//   each call starts from a clean frame stack, whose backing storage is
//   retained across calls so steady-state serving does not reallocate it.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/allocator.h"
#include "src/runtime/object.h"
#include "src/support/logging.h"
#include "src/vm/executable.h"

namespace nimble {
namespace vm {

struct VMProfile {
  struct Entry {
    int64_t count = 0;
    int64_t nanos = 0;
  };
  std::array<Entry, 20> per_opcode{};
  int64_t kernel_nanos = 0;      // InvokePacked on compute kernels
  int64_t shape_func_nanos = 0;  // InvokePacked on shape functions
  int64_t total_nanos = 0;
  int64_t instructions = 0;

  int64_t other_nanos() const { return total_nanos - kernel_nanos; }
  void Reset() { *this = VMProfile{}; }
  std::string ToString() const;
};

class VirtualMachine {
 public:
  /// `exec` may be null: serving pools construct their workers unbound and
  /// Rebind() them to the executable of each batch they pull. Invoking an
  /// unbound VM is an error.
  explicit VirtualMachine(std::shared_ptr<Executable> exec,
                          runtime::Allocator* allocator = nullptr);

  /// Runs a function by name (default: "main"). Single-threaded: only the
  /// thread that owns this VM may call Invoke (see the contract above).
  runtime::ObjectRef Invoke(const std::string& name,
                            std::vector<runtime::ObjectRef> args);
  runtime::ObjectRef Invoke(std::vector<runtime::ObjectRef> args) {
    return Invoke("main", std::move(args));
  }

  void EnableProfiling(bool on) { profiling_ = on; }
  const VMProfile& profile() const { return profile_; }
  VMProfile& mutable_profile() { return profile_; }

  /// The bound executable; the VM must be bound (throws otherwise).
  const Executable& executable() const {
    NIMBLE_CHECK(exec_ != nullptr) << "VM has no executable bound";
    return *exec_;
  }
  /// The bound executable (shared with every other VM serving this model);
  /// null while the VM is unbound.
  const std::shared_ptr<Executable>& executable_ptr() const { return exec_; }
  runtime::Allocator* allocator() const { return allocator_; }

  /// Redirects allocations (e.g. to a per-worker pool). Must not be called
  /// while Invoke is running.
  void set_allocator(runtime::Allocator* allocator);

  /// Binds the VM to a different executable — how a serving pool worker
  /// switches between models. Equivalent to constructing a fresh VM minus
  /// the registry setup: the frame stack and profile are cleared, the
  /// allocator binding is kept. Cheap (a shared_ptr swap), single-threaded
  /// like Invoke: must not be called while Invoke is running, and only by
  /// the owning thread. `exec` must not be null.
  void Rebind(std::shared_ptr<Executable> exec);

  /// Returns the VM to its post-construction state: clears the frame stack
  /// (releasing any objects retained by an Invoke that threw) and the
  /// profile. Pool workers call this to recycle a VM between batches.
  void Reset();

 private:
  struct Frame {
    int32_t func_index;
    size_t pc = 0;
    std::vector<runtime::ObjectRef> regs;
    RegName caller_dst = -1;
  };

  runtime::ObjectRef Run(Frame initial);
  void RunInstruction(const Instruction& inst, std::vector<Frame>& stack,
                      runtime::ObjectRef* final_result, bool* done);

  void RunPacked(const Instruction& inst, Frame& frame);

  std::shared_ptr<Executable> exec_;
  runtime::Allocator* allocator_;
  bool profiling_ = false;
  VMProfile profile_;
  /// Frame stack, recycled across Invoke calls (capacity is retained so
  /// repeated invocations don't reallocate it).
  std::vector<Frame> stack_;
};

}  // namespace vm
}  // namespace nimble
