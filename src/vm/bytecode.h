// VM instruction set (§5.1, Appendix A).
//
// Exactly the 20 CISC-style opcodes of Table A.1. Instructions operate on an
// infinite virtual register file per frame; each instruction corresponds to
// a coarse-grained tensor operation, so dispatch overhead is negligible
// relative to kernel execution. The representation is a tagged struct (the
// paper's tagged union) with variable-length operand lists, enabling simple
// serialization and fast decoding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/device.h"

namespace nimble {
namespace vm {

using RegName = int32_t;

enum class Opcode : uint8_t {
  kMove = 0,           // dst <- args[0]
  kRet = 1,            // return args[0] to the caller
  kInvoke = 2,         // dst <- call functions[imm0](args...)
  kInvokeClosure = 3,  // dst <- call closure args[0] with (captured ++ rest)
  kInvokePacked = 4,   // run packed kernel imm0; args = inputs ++ outputs
  kAllocStorage = 5,   // dst <- storage; imm0 = size (-1: from shape args[0]),
                       // imm1 = dtype code, imm2 = packed device
  kAllocTensor = 6,    // dst <- tensor(storage args[0], static shape `extra`),
                       // imm0 = byte offset, imm1 = dtype code
  kAllocTensorReg = 7, // dst <- tensor(storage args[0], shape reg args[1]),
                       // imm0 = byte offset, imm1 = dtype code
  kAllocADT = 8,       // dst <- ADT(tag imm0; -1 = tuple) of args
  kAllocClosure = 9,   // dst <- closure(functions[imm0], captured = args)
  kGetField = 10,      // dst <- args[0].fields[imm0]
  kGetTag = 11,        // dst <- int64 scalar tag of ADT args[0]
  kIf = 12,            // if scalar(args[0]) == scalar(args[1]) pc += imm0
                       // else pc += imm1
  kGoto = 13,          // pc += imm0
  kLoadConst = 14,     // dst <- constants[imm0]
  kLoadConsti = 15,    // dst <- int64 scalar imm0
  kDeviceCopy = 16,    // dst <- copy of tensor args[0] onto device imm2
  kShapeOf = 17,       // dst <- 1-D int64 tensor holding args[0]'s shape
  kReshapeTensor = 18, // dst <- view of args[0] with shape from reg args[1]
  kFatal = 19,         // raise a fatal VM error
};

const char* OpcodeName(Opcode op);

/// Packs a Device into an int64 immediate (and back).
inline int64_t PackDevice(runtime::Device d) {
  return (static_cast<int64_t>(d.type) << 16) | static_cast<int64_t>(d.id);
}
inline runtime::Device UnpackDevice(int64_t packed) {
  return runtime::Device{static_cast<runtime::DeviceType>(packed >> 16),
                         static_cast<int>(packed & 0xffff)};
}

struct Instruction {
  Opcode op = Opcode::kFatal;
  RegName dst = -1;
  int64_t imm0 = 0;
  int64_t imm1 = 0;
  int64_t imm2 = 0;
  std::vector<RegName> args;
  std::vector<int64_t> extra;  // static shapes etc.

  std::string ToString() const;

  bool operator==(const Instruction& o) const {
    return op == o.op && dst == o.dst && imm0 == o.imm0 && imm1 == o.imm1 &&
           imm2 == o.imm2 && args == o.args && extra == o.extra;
  }
};

}  // namespace vm
}  // namespace nimble
