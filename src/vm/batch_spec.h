// Batched-entry metadata: how a compiled model's per-request entry point can
// be replaced by one padded, packed invocation over a whole batch (the
// serving-side "true tensor batching" path, src/batch/).
//
// A model builder that emits a batched twin of an entry function describes
// it with a BatchedEntrySpec; core::Compile copies the specs into the
// vm::Executable (CompileOptions::batched_entries), where the serving layer
// discovers them. The spec pins down one calling convention:
//
//   per-request:  function(seq: [len, D], len: i64, ...) -> [1, W]
//   batched:      batched_function(packed:  [Lmax, B, D],   // time-major
//                                  max_len: i64 scalar,     // = Lmax
//                                  lengths: [B, 1] i64,     // true lengths
//                                  state_0: [B, state_width],  // zero-filled
//                                  ...,                        // num_state_args
//                                  ) -> [B, W]
//
// Packing pads each request's sequence to Lmax with zero rows and interleaves
// them time-major (packed[t, r, :] = request r's row t). The batched function
// must freeze row r once t reaches lengths[r] (e.g. with the exact-selection
// `where` op), so that row r of the result is bit-identical to running the
// per-request entry on request r alone. Unpacking slices row r back out as a
// [1, W] tensor.
#pragma once

#include <cstdint>
#include <string>

namespace nimble {
namespace vm {

struct BatchedEntrySpec {
  /// Per-request entry point this spec batches (usually "main").
  std::string function;
  /// Packed twin emitted by the model builder (usually "main_batched").
  std::string batched_function;
  /// Index of the per-request argument holding the [len, D] float32 sequence.
  int32_t seq_arg = 0;
  /// Index of the per-request i64 scalar argument holding the true sequence
  /// length, or -1 to use the sequence's row count.
  int32_t len_arg = -1;
  /// D: static feature width of the sequence (validated against each
  /// request's tensor before packing).
  int32_t feature_width = 0;
  /// Width of each zero-initialized recurrent-state argument.
  int32_t state_width = 0;
  /// Number of trailing [B, state_width] zero-state arguments (e.g. h0/c0
  /// per layer for an LSTM).
  int32_t num_state_args = 0;
};

}  // namespace vm
}  // namespace nimble
