// Batched-entry metadata: how a compiled model's per-request entry point can
// be replaced by one padded, packed invocation over a whole batch (the
// serving-side "true tensor batching" path, src/batch/).
//
// A model builder that emits a batched twin of an entry function describes
// it with a BatchedEntrySpec; core::Compile copies the specs into the
// vm::Executable (CompileOptions::batched_entries), where the serving layer
// discovers them. The spec's `layout` selects the packing convention; the
// default time-major layout pins down:
//
//   per-request:  function(seq: [len, D], len: i64, ...) -> [1, W]
//   batched:      batched_function(packed:  [Lmax, B, D],   // time-major
//                                  max_len: i64 scalar,     // = Lmax
//                                  lengths: [B, 1] i64,     // true lengths
//                                  state_0: [B, state_width],  // zero-filled
//                                  ...,                        // num_state_args
//                                  ) -> [B, W]
//
// Packing pads each request's sequence to Lmax with zero rows and interleaves
// them time-major (packed[t, r, :] = request r's row t). The batched function
// must freeze row r once t reaches lengths[r] (e.g. with the exact-selection
// `where` op), so that row r of the result is bit-identical to running the
// per-request entry on request r alone. Unpacking slices row r back out as a
// [1, W] tensor.
#pragma once

#include <cstdint>
#include <string>

namespace nimble {
namespace vm {

struct BatchedEntrySpec {
  /// How the serving layer lays requests out in the packed tensor.
  enum class Layout : int32_t {
    /// Padded time-major [Lmax, B, D] (the recurrent-model convention
    /// described above): step t of every request shares one slice, rows
    /// beyond a request's length are zero and frozen by the model's
    /// masking.
    kTimeMajor = 0,
    /// Batch-major row map: requests' rows are concatenated with NO padding
    /// into [R, D] (R = sum of lengths) and a host-side row map remembers
    /// each request's row range. The batched function maps rows to rows —
    ///   batched_function(packed: [R, D]) -> [R, W]
    /// (no max_len/lengths/state arguments) — so it is only sound for
    /// feed-forward entries whose output row r depends on input row r
    /// alone; row-independence also makes results bit-identical to
    /// per-request execution for free. Unpacking slices each request's
    /// [len, W] row range back out. A row-independent model may simply name
    /// its per-request entry as its own batched_function.
    kBatchMajorRowMap = 1,
  };

  /// Per-request entry point this spec batches (usually "main").
  std::string function;
  /// Packed twin emitted by the model builder (usually "main_batched").
  std::string batched_function;
  /// Optional unmasked twin of `batched_function` (same calling
  /// convention) that is only correct when EVERY packed row runs exactly
  /// max_len steps — the per-row freeze masking degenerates to an identity
  /// there, so this twin simply omits it. Length-specialized executable
  /// variants (core::CompileOptions::specialize_length) rewire their spec
  /// onto it: the packing layer guarantees their batches are exact-length,
  /// and dropping the masking removes three kernel invocations per layer
  /// per step. Empty when the builder emits no such twin; generic
  /// executables never run it.
  std::string exact_batched_function;
  /// Optional single-step twin for continuous (iteration-level) batching:
  /// ONE recurrence step over a persistent slot-map of rows instead of a
  /// whole padded flight. Time-major only. Calling convention:
  ///
  ///   step_function(x_t:    [B, D] float32,   // this step's row per slot
  ///                 active: [B, 1] int64,     // 1 = slot holds a live row
  ///                 state_0: [B, state_width],
  ///                 ...,                      // num_state_args states
  ///                 ) -> Tuple(state_0', ..., state_{n-1}')
  ///
  /// The function must freeze inactive rows exactly (`where` on
  /// `0 < active`), so a host-side step loop that zeroes a slot's state
  /// rows when a request is spliced in and reads its result row when it
  /// retires reproduces the per-request entry bit for bit (the slot-map
  /// runner in src/batch/step_runner.h is that loop). Empty when the
  /// builder emits no step twin; the continuous serving path then rejects
  /// the model at registration.
  std::string step_function;
  /// Which of step_function's returned states holds the per-request result:
  /// after a row's final step, row r of state `result_state` is the same
  /// [1, state_width] value the per-request entry would have returned (for
  /// an LSTM, the last layer's h). Only meaningful when step_function is
  /// set.
  int32_t result_state = 0;
  /// Packing layout; selects the calling convention above.
  Layout layout = Layout::kTimeMajor;
  /// Index of the per-request argument holding the [len, D] float32 sequence.
  int32_t seq_arg = 0;
  /// Index of the per-request i64 scalar argument holding the true sequence
  /// length, or -1 to use the sequence's row count.
  int32_t len_arg = -1;
  /// D: static feature width of the sequence (validated against each
  /// request's tensor before packing).
  int32_t feature_width = 0;
  /// Width of each zero-initialized recurrent-state argument.
  int32_t state_width = 0;
  /// Number of trailing [B, state_width] zero-state arguments (e.g. h0/c0
  /// per layer for an LSTM).
  int32_t num_state_args = 0;
};

}  // namespace vm
}  // namespace nimble
