#include "src/vm/vm.h"

#include <chrono>
#include <sstream>

#include "src/codegen/parallel.h"
#include "src/kernels/registry.h"
#include "src/op/registry.h"

namespace nimble {
namespace vm {

using runtime::ADTObj;
using runtime::AsADT;
using runtime::AsClosure;
using runtime::AsStorage;
using runtime::AsTensor;
using runtime::DataType;
using runtime::DTypeCode;
using runtime::NDArray;
using runtime::ObjectRef;

namespace {

/// Reads an integral scalar condition/tag value from a register object.
int64_t ReadScalarInt(const ObjectRef& obj) {
  const NDArray& arr = AsTensor(obj);
  NIMBLE_CHECK_EQ(arr.num_elements(), 1) << "expected scalar";
  switch (arr.dtype().code()) {
    case DTypeCode::kBool:
    case DTypeCode::kUInt8:
      return *static_cast<const uint8_t*>(arr.raw_data());
    case DTypeCode::kInt32:
      return *static_cast<const int32_t*>(arr.raw_data());
    case DTypeCode::kInt64:
      return *static_cast<const int64_t*>(arr.raw_data());
    default:
      NIMBLE_FATAL() << "condition must be an integral scalar, got "
                     << arr.dtype().ToString();
  }
}

}  // namespace

std::string VMProfile::ToString() const {
  std::ostringstream os;
  os << "VM profile: " << instructions << " instructions, total "
     << total_nanos / 1e6 << " ms (kernels " << kernel_nanos / 1e6
     << " ms, shape funcs " << shape_func_nanos / 1e6 << " ms, other "
     << (total_nanos - kernel_nanos) / 1e6 << " ms)\n";
  for (size_t i = 0; i < per_opcode.size(); ++i) {
    if (per_opcode[i].count == 0) continue;
    os << "  " << OpcodeName(static_cast<Opcode>(i)) << ": "
       << per_opcode[i].count << " ops, " << per_opcode[i].nanos / 1e6
       << " ms\n";
  }
  return os.str();
}

VirtualMachine::VirtualMachine(std::shared_ptr<Executable> exec,
                               runtime::Allocator* allocator)
    : exec_(std::move(exec)),
      allocator_(allocator != nullptr ? allocator
                                      : runtime::GlobalPoolingAllocator()) {
  kernels::EnsureKernelsRegistered();
  op::EnsureOpsRegistered();
}

void VirtualMachine::set_allocator(runtime::Allocator* allocator) {
  NIMBLE_CHECK(allocator != nullptr) << "allocator must not be null";
  allocator_ = allocator;
}

void VirtualMachine::Rebind(std::shared_ptr<Executable> exec) {
  NIMBLE_CHECK(exec != nullptr) << "cannot rebind a VM to a null executable";
  exec_ = std::move(exec);
  Reset();
}

void VirtualMachine::Reset() {
  stack_.clear();
  profile_.Reset();
}

ObjectRef VirtualMachine::Invoke(const std::string& name,
                                 std::vector<ObjectRef> args) {
  NIMBLE_CHECK(exec_ != nullptr) << "VM has no executable bound (Rebind first)";
  int32_t index = exec_->FunctionIndex(name);
  const VMFunction& fn = exec_->functions[index];
  NIMBLE_CHECK_EQ(static_cast<int32_t>(args.size()), fn.num_params)
      << "function '" << name << "' expects " << fn.num_params << " arguments";
  Frame frame;
  frame.func_index = index;
  frame.regs.resize(fn.register_file_size);
  for (size_t i = 0; i < args.size(); ++i) frame.regs[i] = std::move(args[i]);
  return Run(std::move(frame));
}

ObjectRef VirtualMachine::Run(Frame initial) {
  // Reuse the member stack: clear() keeps the allocation from the previous
  // Invoke, so recycled VMs (serving pool workers) don't pay for it again.
  std::vector<Frame>& stack = stack_;
  stack.clear();
  stack.push_back(std::move(initial));
  ObjectRef result;
  bool done = false;
  auto t_start = std::chrono::steady_clock::now();
  while (!done) {
    Frame& frame = stack.back();
    const VMFunction& fn = exec_->functions[frame.func_index];
    NIMBLE_CHECK_LT(frame.pc, fn.instructions.size())
        << "pc ran off the end of @" << fn.name;
    const Instruction& inst = fn.instructions[frame.pc];
    if (profiling_) {
      auto t0 = std::chrono::steady_clock::now();
      RunInstruction(inst, stack, &result, &done);
      auto t1 = std::chrono::steady_clock::now();
      int64_t ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
      auto& entry = profile_.per_opcode[static_cast<size_t>(inst.op)];
      entry.count++;
      entry.nanos += ns;
      profile_.instructions++;
    } else {
      RunInstruction(inst, stack, &result, &done);
    }
  }
  if (profiling_) {
    auto t_end = std::chrono::steady_clock::now();
    profile_.total_nanos +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(t_end - t_start)
            .count();
  }
  return result;
}

void VirtualMachine::RunInstruction(const Instruction& inst,
                                    std::vector<Frame>& stack,
                                    ObjectRef* final_result, bool* done) {
  Frame& frame = stack.back();
  auto reg = [&frame](RegName r) -> ObjectRef& { return frame.regs[r]; };

  switch (inst.op) {
    case Opcode::kMove:
      reg(inst.dst) = reg(inst.args[0]);
      frame.pc++;
      break;
    case Opcode::kRet: {
      ObjectRef value = reg(inst.args[0]);
      RegName dst = frame.caller_dst;
      stack.pop_back();
      if (stack.empty()) {
        *final_result = std::move(value);
        *done = true;
      } else {
        stack.back().regs[dst] = std::move(value);
        stack.back().pc++;
      }
      break;
    }
    case Opcode::kInvoke: {
      const VMFunction& callee = exec_->functions[inst.imm0];
      Frame next;
      next.func_index = static_cast<int32_t>(inst.imm0);
      next.regs.resize(callee.register_file_size);
      NIMBLE_CHECK_EQ(static_cast<int32_t>(inst.args.size()), callee.num_params);
      for (size_t i = 0; i < inst.args.size(); ++i) {
        next.regs[i] = reg(inst.args[i]);
      }
      next.caller_dst = inst.dst;
      stack.push_back(std::move(next));
      break;
    }
    case Opcode::kInvokeClosure: {
      auto* closure = AsClosure(reg(inst.args[0]));
      const VMFunction& callee = exec_->functions[closure->func_index];
      Frame next;
      next.func_index = closure->func_index;
      next.regs.resize(callee.register_file_size);
      size_t n_cap = closure->captured.size();
      NIMBLE_CHECK_EQ(n_cap + inst.args.size() - 1,
                      static_cast<size_t>(callee.num_params))
          << "closure arity mismatch";
      for (size_t i = 0; i < n_cap; ++i) next.regs[i] = closure->captured[i];
      for (size_t i = 1; i < inst.args.size(); ++i) {
        next.regs[n_cap + i - 1] = reg(inst.args[i]);
      }
      next.caller_dst = inst.dst;
      stack.push_back(std::move(next));
      break;
    }
    case Opcode::kInvokePacked:
      RunPacked(inst, frame);
      frame.pc++;
      break;
    case Opcode::kAllocStorage: {
      size_t size;
      runtime::Device device = UnpackDevice(inst.imm2);
      if (inst.imm0 >= 0) {
        size = static_cast<size_t>(inst.imm0);
      } else {
        // Dynamic: size from a shape tensor register.
        auto shape = runtime::ShapeFromTensor(AsTensor(reg(inst.args[0])));
        DataType dtype(static_cast<DTypeCode>(inst.imm1));
        size = static_cast<size_t>(runtime::NumElements(shape)) * dtype.bytes();
      }
      reg(inst.dst) = std::make_shared<runtime::StorageObj>(
          allocator_->Alloc(size, 64, device));
      frame.pc++;
      break;
    }
    case Opcode::kAllocTensor: {
      auto* storage = AsStorage(reg(inst.args[0]));
      DataType dtype(static_cast<DTypeCode>(inst.imm1));
      reg(inst.dst) = runtime::MakeTensor(NDArray::FromStorage(
          storage->buffer, static_cast<size_t>(inst.imm0), inst.extra, dtype));
      frame.pc++;
      break;
    }
    case Opcode::kAllocTensorReg: {
      auto* storage = AsStorage(reg(inst.args[0]));
      auto shape = runtime::ShapeFromTensor(AsTensor(reg(inst.args[1])));
      DataType dtype(static_cast<DTypeCode>(inst.imm1));
      reg(inst.dst) = runtime::MakeTensor(NDArray::FromStorage(
          storage->buffer, static_cast<size_t>(inst.imm0), shape, dtype));
      frame.pc++;
      break;
    }
    case Opcode::kAllocADT: {
      std::vector<ObjectRef> fields;
      fields.reserve(inst.args.size());
      for (RegName r : inst.args) fields.push_back(reg(r));
      uint32_t tag = inst.imm0 < 0 ? ADTObj::kTupleTag
                                   : static_cast<uint32_t>(inst.imm0);
      reg(inst.dst) = runtime::MakeADT(tag, std::move(fields));
      frame.pc++;
      break;
    }
    case Opcode::kAllocClosure: {
      std::vector<ObjectRef> captured;
      captured.reserve(inst.args.size());
      for (RegName r : inst.args) captured.push_back(reg(r));
      reg(inst.dst) = runtime::MakeClosure(static_cast<int32_t>(inst.imm0),
                                           std::move(captured));
      frame.pc++;
      break;
    }
    case Opcode::kGetField: {
      auto* adt = AsADT(reg(inst.args[0]));
      NIMBLE_CHECK_LT(static_cast<size_t>(inst.imm0), adt->fields.size());
      reg(inst.dst) = adt->fields[inst.imm0];
      frame.pc++;
      break;
    }
    case Opcode::kGetTag: {
      auto* adt = AsADT(reg(inst.args[0]));
      reg(inst.dst) = runtime::MakeTensor(
          NDArray::Scalar<int64_t>(static_cast<int64_t>(adt->ctor_tag)));
      frame.pc++;
      break;
    }
    case Opcode::kIf: {
      int64_t test = ReadScalarInt(reg(inst.args[0]));
      int64_t target = ReadScalarInt(reg(inst.args[1]));
      frame.pc += static_cast<size_t>(test == target ? inst.imm0 : inst.imm1);
      break;
    }
    case Opcode::kGoto:
      frame.pc += static_cast<size_t>(inst.imm0);
      break;
    case Opcode::kLoadConst:
      reg(inst.dst) = runtime::MakeTensor(exec_->constants[inst.imm0]);
      frame.pc++;
      break;
    case Opcode::kLoadConsti:
      reg(inst.dst) = runtime::MakeTensor(NDArray::Scalar<int64_t>(inst.imm0));
      frame.pc++;
      break;
    case Opcode::kDeviceCopy: {
      const NDArray& src = AsTensor(reg(inst.args[0]));
      reg(inst.dst) =
          runtime::MakeTensor(src.CopyTo(UnpackDevice(inst.imm2), allocator_));
      frame.pc++;
      break;
    }
    case Opcode::kShapeOf: {
      const NDArray& t = AsTensor(reg(inst.args[0]));
      reg(inst.dst) = runtime::MakeTensor(runtime::ShapeTensor(t.shape()));
      frame.pc++;
      break;
    }
    case Opcode::kReshapeTensor: {
      const NDArray& t = AsTensor(reg(inst.args[0]));
      auto shape = runtime::ShapeFromTensor(AsTensor(reg(inst.args[1])));
      // Resolve a single -1 against the element count (runtime inference).
      int64_t known = 1;
      int infer_at = -1;
      for (size_t i = 0; i < shape.size(); ++i) {
        if (shape[i] == -1) {
          infer_at = static_cast<int>(i);
        } else {
          known *= shape[i];
        }
      }
      if (infer_at >= 0) shape[infer_at] = t.num_elements() / known;
      reg(inst.dst) = runtime::MakeTensor(t.Reshape(shape));
      frame.pc++;
      break;
    }
    case Opcode::kFatal:
      NIMBLE_FATAL() << "VM executed Fatal instruction";
  }
}

void VirtualMachine::RunPacked(const Instruction& inst, Frame& frame) {
  const PackedEntry& entry = exec_->packed[inst.imm0];
  int32_t num_inputs = static_cast<int32_t>(inst.imm1);
  auto t0 = std::chrono::steady_clock::now();

  if (entry.kind == PackedEntry::Kind::kKernel) {
    std::vector<NDArray> inputs, outputs;
    for (int32_t i = 0; i < num_inputs; ++i) {
      inputs.push_back(AsTensor(frame.regs[inst.args[i]]));
    }
    for (size_t i = num_inputs; i < inst.args.size(); ++i) {
      outputs.push_back(AsTensor(frame.regs[inst.args[i]]));
    }
    // Kernels resolve dispatch state through the bound executable, never
    // through process globals — the ownership contract that makes
    // compile-while-serving safe (docs/ARCHITECTURE.md).
    kernels::KernelContext ctx;
    ctx.dense_dispatch = &exec_->dispatch_table;
    ctx.dense_config = &exec_->dense_config;
    ctx.pool = codegen::KernelPool::Global();
    kernels::KernelRegistry::Global()->Get(entry.name)(inputs, outputs,
                                                       entry.attrs, ctx);
    if (profiling_) {
      auto t1 = std::chrono::steady_clock::now();
      profile_.kernel_nanos +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    }
    return;
  }

  // Shape function (§4.2). Inputs are shape tensors (data-independent /
  // upper-bound modes) or raw data tensors (data-dependent mode); outputs
  // are i64 shape tensors to fill in.
  const op::OpInfo& info = op::OpRegistry::Global()->Get(entry.name);
  std::vector<runtime::ShapeVec> in_shapes;
  std::vector<NDArray> in_data;
  for (int32_t i = 0; i < num_inputs; ++i) {
    const NDArray& arg = AsTensor(frame.regs[inst.args[i]]);
    if (info.shape_mode == op::ShapeFuncMode::kDataDependent) {
      in_shapes.push_back(arg.shape());
      in_data.push_back(arg);
    } else {
      in_shapes.push_back(runtime::ShapeFromTensor(arg));
    }
  }
  auto out_shapes = info.shape_fn(in_shapes, in_data, entry.attrs);
  size_t num_outputs = inst.args.size() - num_inputs;
  NIMBLE_CHECK_EQ(out_shapes.size(), num_outputs)
      << "shape function output arity mismatch for " << entry.name;
  for (size_t i = 0; i < num_outputs; ++i) {
    const NDArray& out = AsTensor(frame.regs[inst.args[num_inputs + i]]);
    NIMBLE_CHECK_EQ(out.num_elements(),
                    static_cast<int64_t>(out_shapes[i].size()))
        << "shape tensor rank mismatch for " << entry.name;
    int64_t* p = out.data<int64_t>();
    for (size_t d = 0; d < out_shapes[i].size(); ++d) p[d] = out_shapes[i][d];
  }
  if (profiling_) {
    auto t1 = std::chrono::steady_clock::now();
    profile_.shape_func_nanos +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  }
}

}  // namespace vm
}  // namespace nimble
