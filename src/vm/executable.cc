#include "src/vm/executable.h"

#include <fstream>
#include <sstream>

#include "src/support/logging.h"

namespace nimble {
namespace vm {

namespace {

constexpr uint32_t kMagic = 0x4e4d424cu;  // "NMBL"
// v2: adds the per-executable dense dispatch configuration (num_variants).
// v3: adds the batched-entry specs (tensor batching, src/vm/batch_spec.h);
//     v2 files still load (they simply carry no batched entries).
// v4: dispatch configuration becomes a residue mask (bucket-tuned variant
//     tables), batched specs gain a layout kind, and the trailer carries
//     the shape-bucket variant metadata (Executable::VariantInfo). v2/v3
//     files still load: their stride configuration maps onto a mask, they
//     use the time-major layout, and they are generic (non-variant)
//     executables.
// v5: batched specs gain the optional continuous-batching step twin
//     (BatchedEntrySpec::step_function + result_state). v2-v4 files still
//     load: their
//     specs simply carry no step function, so the continuous serving path
//     rejects them at registration exactly like a builder that never
//     emitted one.
// v6 appends the dense cache-blocking config (block_n, block_k, tuned flag)
// after the variant trailer; pre-v6 executables load with the defaults.
constexpr uint32_t kVersion = 6;

// ---- primitive writers/readers ---------------------------------------------

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  NIMBLE_CHECK(is.good()) << "truncated executable";
  return v;
}

void WriteString(std::ostream& os, const std::string& s) {
  WritePod<uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& is) {
  uint64_t n = ReadPod<uint64_t>(is);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  NIMBLE_CHECK(is.good()) << "truncated executable (string)";
  return s;
}

template <typename T>
void WriteVec(std::ostream& os, const std::vector<T>& v) {
  WritePod<uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> ReadVec(std::istream& is) {
  uint64_t n = ReadPod<uint64_t>(is);
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  NIMBLE_CHECK(is.good()) << "truncated executable (vector)";
  return v;
}

void WriteAttrs(std::ostream& os, const ir::Attrs& attrs) {
  WritePod<uint64_t>(os, attrs.map().size());
  for (const auto& [key, value] : attrs.map()) {
    WriteString(os, key);
    WritePod<uint8_t>(os, static_cast<uint8_t>(value.index()));
    std::visit(
        [&os](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, int64_t>) {
            WritePod<int64_t>(os, v);
          } else if constexpr (std::is_same_v<T, double>) {
            WritePod<double>(os, v);
          } else if constexpr (std::is_same_v<T, std::string>) {
            WriteString(os, v);
          } else {
            WriteVec<int64_t>(os, v);
          }
        },
        value);
  }
}

ir::Attrs ReadAttrs(std::istream& is) {
  ir::Attrs attrs;
  uint64_t n = ReadPod<uint64_t>(is);
  for (uint64_t i = 0; i < n; ++i) {
    std::string key = ReadString(is);
    uint8_t tag = ReadPod<uint8_t>(is);
    switch (tag) {
      case 0: attrs.Set(key, ReadPod<int64_t>(is)); break;
      case 1: attrs.Set(key, ReadPod<double>(is)); break;
      case 2: attrs.Set(key, ReadString(is)); break;
      case 3: attrs.Set(key, ReadVec<int64_t>(is)); break;
      default: NIMBLE_FATAL() << "bad attr tag " << static_cast<int>(tag);
    }
  }
  return attrs;
}

void WriteNDArray(std::ostream& os, const runtime::NDArray& arr) {
  WritePod<uint8_t>(os, static_cast<uint8_t>(arr.dtype().code()));
  WriteVec<int64_t>(os, arr.shape());
  WritePod<uint64_t>(os, arr.nbytes());
  os.write(static_cast<const char*>(arr.raw_data()),
           static_cast<std::streamsize>(arr.nbytes()));
}

runtime::NDArray ReadNDArray(std::istream& is) {
  auto code = static_cast<runtime::DTypeCode>(ReadPod<uint8_t>(is));
  auto shape = ReadVec<int64_t>(is);
  uint64_t bytes = ReadPod<uint64_t>(is);
  runtime::NDArray arr =
      runtime::NDArray::Empty(shape, runtime::DataType(code));
  NIMBLE_CHECK_EQ(arr.nbytes(), bytes) << "corrupt constant";
  is.read(static_cast<char*>(arr.raw_data()),
          static_cast<std::streamsize>(bytes));
  NIMBLE_CHECK(is.good()) << "truncated executable (constant)";
  return arr;
}

void WriteInstruction(std::ostream& os, const Instruction& inst) {
  WritePod<uint8_t>(os, static_cast<uint8_t>(inst.op));
  WritePod<int32_t>(os, inst.dst);
  WritePod<int64_t>(os, inst.imm0);
  WritePod<int64_t>(os, inst.imm1);
  WritePod<int64_t>(os, inst.imm2);
  WriteVec<RegName>(os, inst.args);
  WriteVec<int64_t>(os, inst.extra);
}

Instruction ReadInstruction(std::istream& is) {
  Instruction inst;
  inst.op = static_cast<Opcode>(ReadPod<uint8_t>(is));
  inst.dst = ReadPod<int32_t>(is);
  inst.imm0 = ReadPod<int64_t>(is);
  inst.imm1 = ReadPod<int64_t>(is);
  inst.imm2 = ReadPod<int64_t>(is);
  inst.args = ReadVec<RegName>(is);
  inst.extra = ReadVec<int64_t>(is);
  return inst;
}

}  // namespace

const BatchedEntrySpec* Executable::FindBatched(
    const std::string& function) const {
  for (const BatchedEntrySpec& spec : batched) {
    if (spec.function == function) return &spec;
  }
  return nullptr;
}

int32_t Executable::FunctionIndex(const std::string& name) const {
  auto it = function_index.find(name);
  NIMBLE_CHECK(it != function_index.end())
      << "executable has no function '" << name << "'";
  return it->second;
}

size_t Executable::NumInstructions() const {
  size_t n = 0;
  for (const VMFunction& fn : functions) n += fn.instructions.size();
  return n;
}

std::string Executable::Disassemble() const {
  std::ostringstream os;
  os << "constants: " << constants.size() << ", packed calls: " << packed.size()
     << "\n";
  for (size_t i = 0; i < packed.size(); ++i) {
    os << "  packed[" << i << "]: "
       << (packed[i].kind == PackedEntry::Kind::kKernel ? "kernel " : "shapefn ")
       << packed[i].name << " (inputs=" << packed[i].num_inputs << ")\n";
  }
  for (const VMFunction& fn : functions) {
    os << "func @" << fn.name << " (params=" << fn.num_params
       << ", registers=" << fn.register_file_size << "):\n";
    for (size_t i = 0; i < fn.instructions.size(); ++i) {
      os << "  " << i << ": " << fn.instructions[i].ToString() << "\n";
    }
  }
  return os.str();
}

void Executable::Save(std::ostream& os) const {
  WritePod<uint32_t>(os, kMagic);
  WritePod<uint32_t>(os, kVersion);
  WritePod<uint32_t>(os, dispatch_table.residue_mask());
  WritePod<uint64_t>(os, constants.size());
  for (const auto& c : constants) WriteNDArray(os, c);
  WritePod<uint64_t>(os, packed.size());
  for (const PackedEntry& p : packed) {
    WritePod<uint8_t>(os, static_cast<uint8_t>(p.kind));
    WriteString(os, p.name);
    WriteAttrs(os, p.attrs);
    WritePod<int32_t>(os, p.num_inputs);
    WritePod<int32_t>(os, p.shape_mode);
  }
  WritePod<uint64_t>(os, functions.size());
  for (const VMFunction& fn : functions) {
    WriteString(os, fn.name);
    WritePod<int32_t>(os, fn.num_params);
    WritePod<int32_t>(os, fn.register_file_size);
    WritePod<uint64_t>(os, fn.instructions.size());
    for (const Instruction& inst : fn.instructions) WriteInstruction(os, inst);
  }
  WritePod<uint64_t>(os, batched.size());
  for (const BatchedEntrySpec& spec : batched) {
    WriteString(os, spec.function);
    WriteString(os, spec.batched_function);
    WriteString(os, spec.exact_batched_function);
    WriteString(os, spec.step_function);
    WritePod<int32_t>(os, spec.result_state);
    WritePod<int32_t>(os, static_cast<int32_t>(spec.layout));
    WritePod<int32_t>(os, spec.seq_arg);
    WritePod<int32_t>(os, spec.len_arg);
    WritePod<int32_t>(os, spec.feature_width);
    WritePod<int32_t>(os, spec.state_width);
    WritePod<int32_t>(os, spec.num_state_args);
  }
  WritePod<int64_t>(os, variant.specialized_len);
  WritePod<int64_t>(os, variant.specialized_batch);
  WritePod<int64_t>(os, dense_config.block_n);
  WritePod<int64_t>(os, dense_config.block_k);
  WritePod<uint8_t>(os, dense_config_tuned ? 1 : 0);
}

std::shared_ptr<Executable> Executable::Load(std::istream& is) {
  NIMBLE_CHECK_EQ(ReadPod<uint32_t>(is), kMagic) << "not a Nimble executable";
  uint32_t version = ReadPod<uint32_t>(is);
  NIMBLE_CHECK(version >= 2 && version <= kVersion)
      << "unsupported executable version " << version;
  auto exec = std::make_shared<Executable>();
  if (version >= 4) {
    exec->dispatch_table.ConfigureResidues(ReadPod<uint32_t>(is));
  } else {
    exec->dispatch_table.Configure(ReadPod<int32_t>(is));
  }
  uint64_t num_consts = ReadPod<uint64_t>(is);
  for (uint64_t i = 0; i < num_consts; ++i) {
    exec->constants.push_back(ReadNDArray(is));
  }
  uint64_t num_packed = ReadPod<uint64_t>(is);
  for (uint64_t i = 0; i < num_packed; ++i) {
    PackedEntry p;
    p.kind = static_cast<PackedEntry::Kind>(ReadPod<uint8_t>(is));
    p.name = ReadString(is);
    p.attrs = ReadAttrs(is);
    p.num_inputs = ReadPod<int32_t>(is);
    p.shape_mode = ReadPod<int32_t>(is);
    exec->packed.push_back(std::move(p));
  }
  uint64_t num_fns = ReadPod<uint64_t>(is);
  for (uint64_t i = 0; i < num_fns; ++i) {
    VMFunction fn;
    fn.name = ReadString(is);
    fn.num_params = ReadPod<int32_t>(is);
    fn.register_file_size = ReadPod<int32_t>(is);
    uint64_t num_insts = ReadPod<uint64_t>(is);
    fn.instructions.reserve(num_insts);
    for (uint64_t j = 0; j < num_insts; ++j) {
      fn.instructions.push_back(ReadInstruction(is));
    }
    exec->function_index[fn.name] = static_cast<int32_t>(exec->functions.size());
    exec->functions.push_back(std::move(fn));
  }
  if (version >= 3) {
    uint64_t num_batched = ReadPod<uint64_t>(is);
    for (uint64_t i = 0; i < num_batched; ++i) {
      BatchedEntrySpec spec;
      spec.function = ReadString(is);
      spec.batched_function = ReadString(is);
      if (version >= 4) {
        spec.exact_batched_function = ReadString(is);
        if (version >= 5) {
          spec.step_function = ReadString(is);
          spec.result_state = ReadPod<int32_t>(is);
        }
        spec.layout =
            static_cast<BatchedEntrySpec::Layout>(ReadPod<int32_t>(is));
      }
      spec.seq_arg = ReadPod<int32_t>(is);
      spec.len_arg = ReadPod<int32_t>(is);
      spec.feature_width = ReadPod<int32_t>(is);
      spec.state_width = ReadPod<int32_t>(is);
      spec.num_state_args = ReadPod<int32_t>(is);
      exec->batched.push_back(std::move(spec));
    }
  }
  if (version >= 4) {
    exec->variant.specialized_len = ReadPod<int64_t>(is);
    exec->variant.specialized_batch = ReadPod<int64_t>(is);
  }
  if (version >= 6) {
    exec->dense_config.block_n = ReadPod<int64_t>(is);
    exec->dense_config.block_k = ReadPod<int64_t>(is);
    exec->dense_config_tuned = ReadPod<uint8_t>(is) != 0;
  }
  return exec;
}

void Executable::SaveToFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  NIMBLE_CHECK(os.good()) << "cannot open " << path << " for writing";
  Save(os);
}

std::shared_ptr<Executable> Executable::LoadFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  NIMBLE_CHECK(is.good()) << "cannot open " << path;
  return Load(is);
}

}  // namespace vm
}  // namespace nimble
