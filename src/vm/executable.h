// VM executable (§5): platform-independent bytecode + constant pool +
// packed-kernel table + residue-dispatch table, with binary serialization so
// compiled models can be shipped to and loaded on any platform.
//
// Thread-safety contract (serving subsystem, src/serve/):
//   An Executable is *immutable once built* — the compiler (or Load) fills
//   the public fields and never mutates them afterwards. All accessors are
//   const and read-only, and constants are NDArrays whose storage is only
//   read at execution time, so one std::shared_ptr<Executable> may be shared
//   by any number of VirtualMachine instances on concurrent threads with no
//   synchronization. Do not mutate the public fields after handing the
//   executable to a VM. (The dispatch table's observability counters are
//   internally atomic and exempt from the immutability rule.)
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/codegen/dispatch.h"
#include "src/codegen/tuner.h"
#include "src/ir/attrs.h"
#include "src/runtime/ndarray.h"
#include "src/vm/batch_spec.h"
#include "src/vm/bytecode.h"

namespace nimble {
namespace vm {

/// One entry of the packed-call table referenced by InvokePacked.
/// Either a compute kernel (resolved in the kernel registry — which may be a
/// compiler-generated kernel or a third-party library routine, §5.2) or a
/// shape function (resolved in the op registry, §4.2).
struct PackedEntry {
  enum class Kind : uint8_t { kKernel = 0, kShapeFunc = 1 };
  Kind kind = Kind::kKernel;
  std::string name;      // kernel name, or op name for shape functions
  ir::Attrs attrs;       // call-site attributes
  int32_t num_inputs = 0;
  int32_t shape_mode = 0;  // op::ShapeFuncMode for kind == kShapeFunc
};

struct VMFunction {
  std::string name;
  int32_t num_params = 0;
  int32_t register_file_size = 0;
  std::vector<Instruction> instructions;
};

class Executable {
 public:
  std::vector<VMFunction> functions;
  std::map<std::string, int32_t> function_index;
  std::vector<runtime::NDArray> constants;
  std::vector<PackedEntry> packed;

  /// Residue-specialized dense dispatch table owned by this executable
  /// (§4.5). core::Compile configures it from
  /// CompileOptions::dense_dispatch_variants and Load restores it from the
  /// serialized form; it is never reconfigured afterwards. Every VM bound to
  /// this executable resolves dense kernels through this table (via
  /// kernels::KernelContext), so compiling another model — which builds its
  /// own executable and table — cannot perturb in-flight inference. Its hit
  /// counters are atomic; everything else is read-only after construction.
  codegen::DenseDispatchTable dispatch_table;

  /// Batched-entry descriptors (src/vm/batch_spec.h): per-request entry
  /// points that have a compiler-emitted packed twin the serving layer can
  /// invoke once per batch. Configured by core::Compile
  /// (CompileOptions::batched_entries), restored by Load, and — like every
  /// other field — immutable once the executable is visible to any VM.
  std::vector<BatchedEntrySpec> batched;

  /// The batched-entry spec for per-request entry `function`, or nullptr
  /// when the model has none (the serving layer then falls back to the
  /// per-request loop).
  const BatchedEntrySpec* FindBatched(const std::string& function) const;

  /// Shape-bucket specialization metadata (the executable cache,
  /// src/serve/exec_cache.h). A *variant* is an otherwise ordinary
  /// executable whose batched entry was compiled with the bucket's shape
  /// baked in (core::CompileOptions::specialize_length): `specialized_len`
  /// is the exact sequence length every packed request must have, and
  /// `specialized_batch`, when nonzero, the exact batch size — the packing
  /// layer (batch::AnalyzeBatch) enforces both and falls back to the
  /// model's generic executable otherwise. Zero-initialized for generic
  /// executables. Stamped by core::Compile before the executable escapes;
  /// immutable afterwards like every other field.
  struct VariantInfo {
    int64_t specialized_len = 0;    // 0 = generic executable
    int64_t specialized_batch = 0;  // 0 = batch dim left symbolic
    bool is_variant() const { return specialized_len > 0; }
  };
  VariantInfo variant;

  /// Cache-blocking config the dense kernels run with (src/codegen/tuner.h).
  /// core::Compile stamps it from CompileOptions::dense_config; the exec
  /// cache's background compile thread tunes a variant's exact baked shape
  /// and stamps the measured-best config before the variant is published
  /// (`dense_config_tuned` then flips to true; false = transferred/default
  /// config). Serialized since format v6; pre-v6 executables load with the
  /// defaults. Immutable once the executable is visible to any VM.
  codegen::DenseConfig dense_config;
  bool dense_config_tuned = false;

  int32_t FunctionIndex(const std::string& name) const;

  /// Human-readable bytecode listing.
  std::string Disassemble() const;

  /// Binary serialization. The format is self-contained: bytecode,
  /// constants (weights stay in the pool and are referenced by LoadConst),
  /// the packed-call table, and the dispatch configuration — a loaded
  /// executable serves with the same kernel-variant policy it was compiled
  /// with.
  void Save(std::ostream& os) const;
  static std::shared_ptr<Executable> Load(std::istream& is);
  void SaveToFile(const std::string& path) const;
  static std::shared_ptr<Executable> LoadFromFile(const std::string& path);

  /// Total bytecode instruction count (all functions).
  size_t NumInstructions() const;
};

}  // namespace vm
}  // namespace nimble
