#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/support/logging.h"

namespace nimble {
namespace obs {

size_t ThreadShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  NIMBLE_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  NIMBLE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must ascend";
  for (Cell& cell : cells_) {
    cell.counts =
        std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      cell.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double v) {
  Cell& cell = cells_[ThreadShardIndex()];
  // First bound >= v; everything above the last bound lands in +Inf.
  size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                          bounds_.begin());
  cell.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  // C++17 has no atomic<double>::fetch_add; the CAS loop below is
  // effectively free because each thread owns its cell.
  double sum = cell.sum.load(std::memory_order_relaxed);
  while (!cell.sum.compare_exchange_weak(sum, sum + v,
                                         std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Cell& cell : cells_) {
    total += cell.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<int64_t> Histogram::CumulativeBuckets() const {
  std::vector<int64_t> merged(bounds_.size() + 1, 0);
  for (const Cell& cell : cells_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      merged[i] += cell.counts[i].load(std::memory_order_relaxed);
    }
  }
  for (size_t i = 1; i < merged.size(); ++i) merged[i] += merged[i - 1];
  return merged;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  NIMBLE_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LatencyBoundsUs() {
  return ExponentialBounds(1.0, 2.0, 27);  // 1us .. ~67s
}

std::vector<double> Histogram::BatchSizeBounds() {
  return ExponentialBounds(1.0, 2.0, 7);  // 1 .. 64
}

std::string MetricRegistry::EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

/// Canonical `{k="v",...}` label block (keys sorted, values escaped);
/// empty labels render as the empty string.
std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first;
    out += "=\"";
    out += MetricRegistry::EscapeLabelValue(sorted[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Inserts `extra` (e.g. `le="4"`) into a rendered label block.
std::string WithExtraLabel(const std::string& rendered,
                           const std::string& extra) {
  if (rendered.empty()) return "{" + extra + "}";
  std::string out = rendered;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

/// Prometheus value formatting: integers print exactly, everything else
/// with enough digits to round-trip.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

MetricRegistry::Family& MetricRegistry::FindFamily(const std::string& name,
                                                   Kind kind,
                                                   const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
  } else {
    NIMBLE_CHECK(family.kind == kind)
        << "metric family '" << name << "' registered with two kinds";
    if (family.help.empty()) family.help = help;
  }
  return family;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const LabelSet& labels,
                                    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FindFamily(name, Kind::kCounter, help);
  Series& series = family.series[RenderLabels(labels)];
  if (series.counter == nullptr) series.counter = std::make_unique<Counter>();
  return series.counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const LabelSet& labels,
                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FindFamily(name, Kind::kGauge, help);
  Series& series = family.series[RenderLabels(labels)];
  if (series.gauge == nullptr) series.gauge = std::make_unique<Gauge>();
  return series.gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const LabelSet& labels,
                                        std::vector<double> bounds,
                                        const std::string& help) {
  for (const auto& [key, value] : labels) {
    NIMBLE_CHECK(key != "le") << "'le' is reserved for histogram buckets";
  }
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FindFamily(name, Kind::kHistogram, help);
  if (family.bounds.empty()) {
    family.bounds = bounds;
  } else {
    NIMBLE_CHECK(family.bounds == bounds)
        << "metric family '" << name << "' registered with two bucket layouts";
  }
  Series& series = family.series[RenderLabels(labels)];
  if (series.histogram == nullptr) {
    series.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return series.histogram.get();
}

std::string MetricRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + labels + " " +
                 std::to_string(series.counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + labels + " " + FormatValue(series.gauge->Value()) +
                 "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          std::vector<int64_t> buckets = h.CumulativeBuckets();
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            out += name + "_bucket" +
                   WithExtraLabel(labels,
                                  "le=\"" + FormatValue(h.bounds()[i]) +
                                      "\"") +
                   " " + std::to_string(buckets[i]) + "\n";
          }
          out += name + "_bucket" + WithExtraLabel(labels, "le=\"+Inf\"") +
                 " " + std::to_string(buckets.back()) + "\n";
          out += name + "_sum" + labels + " " + FormatValue(h.Sum()) + "\n";
          // _count from the same merge as the +Inf bucket would need a
          // single pass; rendering the +Inf value keeps the exposition
          // self-consistent (count == cumulative +Inf) under concurrent
          // recording.
          out += name + "_count" + labels + " " +
                 std::to_string(buckets.back()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace nimble
