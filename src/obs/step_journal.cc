#include "src/obs/step_journal.h"

#include <utility>

#include "src/support/logging.h"

namespace nimble {
namespace obs {

StepJournal::StepJournal(StepJournalConfig config)
    : config_(std::move(config)) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  if (config_.enabled) ring_.resize(config_.ring_capacity);
}

void StepJournal::Push(StepRecord record) {
  if (!config_.enabled) return;
  steps_recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) size_++;
}

std::vector<StepRecord> StepJournal::Tail(size_t n) const {
  std::vector<StepRecord> out;
  if (!config_.enabled) return out;
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = n < size_ ? n : size_;
  out.reserve(count);
  // next_ points one past the newest record; walk back `count` records and
  // copy forward so the tail comes out oldest first.
  size_t start = (next_ + ring_.size() - count) % ring_.size();
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

StallWatchdog::StallWatchdog(StallWatchdogConfig config, HealthSource source)
    : config_(std::move(config)), source_(std::move(source)) {
  NIMBLE_CHECK(source_ != nullptr);
}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Start() {
  if (!config_.enabled) return;
  NIMBLE_CHECK(!thread_.joinable()) << "StallWatchdog started twice";
  thread_ = std::thread([this] { Loop(); });
}

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StallWatchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(config_.poll_interval_ms));
    if (stop_) break;
    lock.unlock();
    CheckOnce(SteadyClock::now());
    lock.lock();
  }
}

int StallWatchdog::CheckOnce(SteadyClock::time_point now) {
  const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             now.time_since_epoch())
                             .count();
  const int64_t deadline_ns = config_.stall_deadline_ms * 1'000'000;
  int stalled = 0;
  for (const RunnerHealth& h : source_()) {
    // A runner with no live rows is idle, not stuck: it is parked on its
    // queue, and last_progress legitimately goes stale. Only live rows
    // with no step completing within the deadline indicate a wedge.
    bool is_stalled = h.live_rows > 0 && h.last_progress_ns > 0 &&
                      now_ns - h.last_progress_ns > deadline_ns;
    if (h.stalled_gauge != nullptr) {
      h.stalled_gauge->Set(is_stalled ? 1.0 : 0.0);
    }
    if (!is_stalled) continue;
    stalled++;
    // Rate-limited WARN: CAS the last-log stamp forward so a wedged runner
    // logs once per warn_interval, not once per poll.
    int64_t last = last_warn_ns_.load(std::memory_order_relaxed);
    int64_t interval_ns = config_.warn_interval_ms * 1'000'000;
    if (now_ns - last >= interval_ns &&
        last_warn_ns_.compare_exchange_strong(last, now_ns,
                                              std::memory_order_relaxed)) {
      NIMBLE_LOG(WARNING)
          << "continuous runner stalled: model '" << h.model << "' holds "
          << h.live_rows << " live row(s) but completed no step in "
          << (now_ns - h.last_progress_ns) / 1'000'000 << " ms (deadline "
          << config_.stall_deadline_ms << " ms, " << h.steps
          << " steps so far)";
    }
  }
  stalled_count_.store(stalled, std::memory_order_relaxed);
  if (aux_check_) aux_check_(now);
  return stalled;
}

}  // namespace obs
}  // namespace nimble
