// End-to-end request tracing: per-stage spans riding each serve::Request.
//
// A TraceContext is a flat struct of monotonic stage timestamps stamped in
// order as the request moves down the pipeline:
//
//   admit      handler received the request (body decode starts)
//   enqueue    admitted into the model's RequestQueue
//   sched      the batch scheduler formed this request's batch
//   dispatch   a pool worker picked the batch up
//   pack_start / pack_end     PackPlan pack (equal on the per-request path)
//   exec_end   batched VM invocation returned; the exec span additionally
//              folds the VM's per-instruction-category profile (kernel /
//              shape-function / other nanos) captured for the batch
//   unpack_end results scattered back per request
//   write_end  response serialized and handed to the event loop (or, for
//              the in-process future path, promise observed fulfilled)
//
// Every stage is stamped by exactly one thread, and each handoff between
// stages is already sequenced by a queue mutex, so the struct needs no
// synchronization of its own — same discipline as Request::enqueue_time.
//
// Completed traces are committed into the Tracer's per-thread ring buffers:
// each committing thread owns one shard, so the hot path never contends
// with other writers — the only contention a worker can see is a
// /debug/trace scrape walking the rings. Buffers are bounded (old traces
// are overwritten), so tracing is always-on with flat memory.
//
// Slow-request sampling: a committed trace whose end-to-end latency
// exceeds TraceConfig::slow_request_us is logged at WARN with its full
// span breakdown, rate-limited to one log per slow_log_interval_ms so a
// pathological burst cannot flood stderr.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace nimble {
namespace obs {

using SteadyClock = std::chrono::steady_clock;

/// VM execution profile folded into the exec span (from vm::VMProfile,
/// captured per batch while tracing keeps profiling enabled).
struct ExecProfile {
  int64_t kernel_nanos = 0;
  int64_t shape_func_nanos = 0;
  int64_t other_nanos = 0;  // total - kernel (dispatch, shape, control)
  int64_t instructions = 0;
};

struct TraceContext {
  int64_t id = -1;
  /// Stamping and committing are skipped entirely when false (the
  /// tracing-off configuration measured by --trace-overhead).
  bool enabled = false;
  bool ok = true;
  /// Whether the request ran on the packed tensor-batching path (pack and
  /// unpack spans are zero-width otherwise).
  bool packed = false;
  /// Whether the request was served by the continuous slot-map runner. The
  /// span taxonomy is unchanged (dispatch is stamped at splice, so the
  /// queue span is exactly the queued-behind-splice wait and exec covers
  /// the resident steps); the step-level detail below rides as extra
  /// fields, exported via chrome-trace args and the X-Nimble-Trace echo.
  bool continuous = false;
  /// Slot index of the persistent batch this request occupied (-1 off the
  /// continuous path).
  int64_t slot = -1;
  /// Step sequence numbers of the request's first and last computed steps
  /// (-1 off the continuous path). retire_step - splice_step + 1 is the
  /// number of steps the request was resident, which equals its sequence
  /// length (asserted by the sched harness).
  int64_t splice_step = -1;
  int64_t retire_step = -1;
  std::string model;
  /// Dense cache-blocking config of the executable the batch ran on
  /// ("bn32_bk64" form, "*" suffix when tuner-measured; empty when the
  /// runner did not stamp one). Exported as an exec-span arg so a trace
  /// shows which tuned variant served the request.
  std::string dense_config;
  /// Memory-plane detail for the exec span (see src/obs/memory.h):
  /// alloc_bytes is this request's share of allocator traffic during its
  /// batch invocation (packed path: the batch's allocator delta, stamped
  /// once per batch member; continuous path: the per-step deltas
  /// accumulated while the row was resident), copied_bytes the data-path
  /// bytes copied for this request inside the runner (pack + unpack share,
  /// or step-state gather + retire). Exported as exec-span args.
  int64_t alloc_bytes = 0;
  int64_t copied_bytes = 0;

  int64_t steps_resident() const {
    return (splice_step >= 0 && retire_step >= splice_step)
               ? retire_step - splice_step + 1
               : 0;
  }
  SteadyClock::time_point admit{};
  SteadyClock::time_point enqueue{};
  SteadyClock::time_point sched{};
  SteadyClock::time_point dispatch{};
  SteadyClock::time_point pack_start{};
  SteadyClock::time_point pack_end{};
  SteadyClock::time_point exec_end{};
  SteadyClock::time_point unpack_end{};
  SteadyClock::time_point write_end{};
  ExecProfile vm{};

  int64_t e2e_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(write_end -
                                                                 admit)
        .count();
  }
};

/// One committed trace plus its commit sequence number (global order).
struct TraceRecord {
  uint64_t seq = 0;
  TraceContext ctx;
};

struct TraceConfig {
  /// Master switch: off skips every stamp and commit.
  bool enabled = true;
  /// Total completed traces retained across all ring shards; older traces
  /// are overwritten. Bounds tracing memory regardless of uptime.
  size_t ring_capacity = 512;
  /// A completed request slower than this (end to end, microseconds) gets
  /// its span breakdown logged at WARN. 0 disables slow-request sampling.
  int64_t slow_request_us = 0;
  /// Rate limit for slow-request logs: at most one per this interval.
  int64_t slow_log_interval_ms = 1000;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig config = {});

  bool enabled() const { return config_.enabled; }
  const TraceConfig& config() const { return config_; }

  /// Records a completed trace into the committing thread's ring shard and
  /// runs the slow-request sampler. Called once per request, after the
  /// final (write) stamp. Thread-safe; the shard mutex is only ever
  /// contended by a concurrent /debug/trace scrape.
  void Commit(const TraceContext& ctx);

  /// The most recent `n` committed traces in commit order (oldest first).
  /// Thread-safe.
  std::vector<TraceRecord> Recent(size_t n) const;

  /// Total traces committed since construction.
  int64_t committed() const {
    return static_cast<int64_t>(seq_.load(std::memory_order_relaxed));
  }

  /// Slow-request sampling decision, exposed for tests: true when `e2e_us`
  /// exceeds the configured threshold AND the rate limiter grants a log
  /// slot at `now`. Updates the limiter on success.
  bool ShouldLogSlow(int64_t e2e_us, SteadyClock::time_point now);

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<TraceRecord> ring;  // fixed capacity, overwritten in place
    size_t next = 0;
  };

  TraceConfig config_;
  size_t per_shard_capacity_;
  std::atomic<uint64_t> seq_{0};
  /// Steady-clock nanos of the last slow-request log (0 = never).
  std::atomic<int64_t> last_slow_log_ns_{0};
  std::array<Shard, kShards> shards_;
};

}  // namespace obs
}  // namespace nimble
