#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>

namespace nimble {
namespace obs {

namespace {

int64_t ToMicros(SteadyClock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<SpanView> TraceSpans(const TraceContext& ctx) {
  // Clamp each boundary to be no earlier than the previous one, so a stage
  // that was never stamped (defaulted epoch) collapses to zero width
  // instead of producing a span that runs backwards.
  std::vector<SpanView> spans;
  spans.reserve(6);
  SteadyClock::time_point cursor = ctx.admit;
  auto push = [&](const char* name, SteadyClock::time_point end) {
    if (end < cursor) end = cursor;
    spans.push_back(SpanView{name, cursor, end});
    cursor = end;
  };
  push("admission", ctx.enqueue);
  push("queue", ctx.dispatch);
  push("pack", ctx.pack_end);
  push("exec", ctx.exec_end);
  push("unpack", ctx.unpack_end);
  push("write", ctx.write_end);
  return spans;
}

std::string ChromeTraceJson(const std::vector<TraceRecord>& records) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceRecord& record : records) {
    const TraceContext& ctx = record.ctx;
    for (const SpanView& span : TraceSpans(ctx)) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"";
      out += span.name;
      out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(ctx.id);
      out += ",\"ts\":";
      out += std::to_string(ToMicros(span.begin));
      out += ",\"dur\":";
      out += std::to_string(span.duration_us());
      out += ",\"args\":{\"model\":\"";
      out += EscapeJson(ctx.model);
      out += "\",\"ok\":";
      out += ctx.ok ? "true" : "false";
      if (span.name == std::string("exec")) {
        out += ",\"packed\":";
        out += ctx.packed ? "true" : "false";
        out += ",\"kernel_us\":";
        out += std::to_string(ctx.vm.kernel_nanos / 1000);
        out += ",\"shape_func_us\":";
        out += std::to_string(ctx.vm.shape_func_nanos / 1000);
        out += ",\"other_us\":";
        out += std::to_string(ctx.vm.other_nanos / 1000);
        out += ",\"instructions\":";
        out += std::to_string(ctx.vm.instructions);
      }
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

std::string TraceHeaderValue(const TraceContext& ctx) {
  std::string out = "id=" + std::to_string(ctx.id);
  for (const SpanView& span : TraceSpans(ctx)) {
    // The write span is still in flight while the header is built; skip it
    // rather than echo a half-measured number.
    if (span.name == std::string("write")) continue;
    out += ";";
    out += span.name;
    out += "_us=";
    out += std::to_string(span.duration_us());
  }
  out += ";kernel_us=" + std::to_string(ctx.vm.kernel_nanos / 1000);
  out += ";shape_func_us=" + std::to_string(ctx.vm.shape_func_nanos / 1000);
  out += ";other_us=" + std::to_string(ctx.vm.other_nanos / 1000);
  return out;
}

std::string TraceSummary(const TraceContext& ctx) {
  std::string out = "request " + std::to_string(ctx.id) + " model=" +
                    ctx.model + (ctx.ok ? "" : " FAILED") +
                    " e2e=" + std::to_string(ctx.e2e_us()) + "us [";
  bool first = true;
  for (const SpanView& span : TraceSpans(ctx)) {
    if (!first) out += " ";
    first = false;
    out += span.name;
    out += "=";
    out += std::to_string(span.duration_us());
    out += "us";
  }
  out += "]";
  if (ctx.vm.instructions > 0) {
    out += " vm{kernel=" + std::to_string(ctx.vm.kernel_nanos / 1000) +
           "us shape=" + std::to_string(ctx.vm.shape_func_nanos / 1000) +
           "us other=" + std::to_string(ctx.vm.other_nanos / 1000) +
           "us insts=" + std::to_string(ctx.vm.instructions) + "}";
  }
  return out;
}

}  // namespace obs
}  // namespace nimble
