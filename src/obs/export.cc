#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>

namespace nimble {
namespace obs {

namespace {

int64_t ToMicros(SteadyClock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<SpanView> TraceSpans(const TraceContext& ctx) {
  // Clamp each boundary to be no earlier than the previous one, so a stage
  // that was never stamped (defaulted epoch) collapses to zero width
  // instead of producing a span that runs backwards.
  std::vector<SpanView> spans;
  spans.reserve(6);
  SteadyClock::time_point cursor = ctx.admit;
  auto push = [&](const char* name, SteadyClock::time_point end) {
    if (end < cursor) end = cursor;
    spans.push_back(SpanView{name, cursor, end});
    cursor = end;
  };
  push("admission", ctx.enqueue);
  push("queue", ctx.dispatch);
  push("pack", ctx.pack_end);
  push("exec", ctx.exec_end);
  push("unpack", ctx.unpack_end);
  push("write", ctx.write_end);
  return spans;
}

std::string ChromeTraceJson(const std::vector<TraceRecord>& records) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceRecord& record : records) {
    const TraceContext& ctx = record.ctx;
    for (const SpanView& span : TraceSpans(ctx)) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"";
      out += span.name;
      out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(ctx.id);
      out += ",\"ts\":";
      out += std::to_string(ToMicros(span.begin));
      out += ",\"dur\":";
      out += std::to_string(span.duration_us());
      out += ",\"args\":{\"model\":\"";
      out += EscapeJson(ctx.model);
      out += "\",\"ok\":";
      out += ctx.ok ? "true" : "false";
      if (span.name == std::string("exec")) {
        out += ",\"packed\":";
        out += ctx.packed ? "true" : "false";
        out += ",\"kernel_us\":";
        out += std::to_string(ctx.vm.kernel_nanos / 1000);
        out += ",\"shape_func_us\":";
        out += std::to_string(ctx.vm.shape_func_nanos / 1000);
        out += ",\"other_us\":";
        out += std::to_string(ctx.vm.other_nanos / 1000);
        out += ",\"instructions\":";
        out += std::to_string(ctx.vm.instructions);
        out += ",\"alloc_bytes\":";
        out += std::to_string(ctx.alloc_bytes);
        out += ",\"copied_bytes\":";
        out += std::to_string(ctx.copied_bytes);
        if (!ctx.dense_config.empty()) {
          out += ",\"dense_config\":\"";
          out += EscapeJson(ctx.dense_config);
          out += "\"";
        }
        if (ctx.continuous) {
          out += ",\"continuous\":true,\"slot\":";
          out += std::to_string(ctx.slot);
          out += ",\"splice_step\":";
          out += std::to_string(ctx.splice_step);
          out += ",\"retire_step\":";
          out += std::to_string(ctx.retire_step);
          out += ",\"steps_resident\":";
          out += std::to_string(ctx.steps_resident());
        }
      }
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

namespace {

/// Appends one chrome-trace event object to `out`, comma-separated.
void AppendEvent(std::string& out, bool& first, const std::string& event) {
  if (!first) out += ",";
  first = false;
  out += event;
}

/// The slot-track events of one model's journal tail (see SlotTimeline in
/// export.h). `pid` identifies the model's slot process in the document.
void AppendSlotTimeline(std::string& out, bool& first,
                        const SlotTimeline& timeline, int64_t pid) {
  if (timeline.records.empty()) return;
  AppendEvent(out, first,
              "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                  std::to_string(pid) + ",\"args\":{\"name\":\"slots:" +
                  EscapeJson(timeline.model) + "\"}}");
  for (int64_t s = 0; s < timeline.num_slots; ++s) {
    AppendEvent(out, first,
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                    std::to_string(pid) + ",\"tid\":" + std::to_string(s) +
                    ",\"args\":{\"name\":\"slot " + std::to_string(s) +
                    "\"}}");
  }

  struct OpenTenancy {
    bool open = false;
    int64_t request_id = -1;
    int64_t length = 0;
    int64_t begin_us = 0;
  };
  std::vector<OpenTenancy> slots(
      static_cast<size_t>(timeline.num_slots > 0 ? timeline.num_slots : 0));
  const int64_t window_start_us = ToMicros(timeline.records.front().start);
  int64_t window_end_us = window_start_us;

  auto close = [&](OpenTenancy& t, int64_t slot, int64_t end_us) {
    int64_t dur = end_us - t.begin_us;
    AppendEvent(out, first,
                "{\"name\":\"req " + std::to_string(t.request_id) + " (len " +
                    std::to_string(t.length) + ")\",\"ph\":\"X\",\"pid\":" +
                    std::to_string(pid) + ",\"tid\":" + std::to_string(slot) +
                    ",\"ts\":" + std::to_string(t.begin_us) + ",\"dur\":" +
                    std::to_string(dur > 0 ? dur : 0) +
                    ",\"args\":{\"request\":" + std::to_string(t.request_id) +
                    ",\"length\":" + std::to_string(t.length) + "}}");
    t.open = false;
  };

  for (const StepRecord& record : timeline.records) {
    int64_t start_us = ToMicros(record.start);
    int64_t end_us = start_us + record.duration_us;
    if (end_us > window_end_us) window_end_us = end_us;
    for (const StepEvent& event : record.events) {
      if (event.slot < 0 ||
          event.slot >= static_cast<int64_t>(slots.size())) {
        continue;
      }
      OpenTenancy& t = slots[static_cast<size_t>(event.slot)];
      if (event.kind == StepEvent::Kind::kSplice) {
        t.open = true;
        t.request_id = event.request_id;
        t.length = event.length;
        t.begin_us = start_us;
      } else {
        // A retire whose splice fell off the ring clamps to the window
        // start: the interval is honest about what the tail can see.
        if (!t.open) {
          t.open = true;
          t.request_id = event.request_id;
          t.length = event.length;
          t.begin_us = window_start_us;
        }
        close(t, event.slot, end_us);
      }
    }
    // Counter tracks, one sample per step: live-row occupancy and the
    // step's latency. Perfetto renders these as filled line charts.
    AppendEvent(out, first,
                "{\"name\":\"occupancy\",\"ph\":\"C\",\"pid\":" +
                    std::to_string(pid) + ",\"ts\":" +
                    std::to_string(start_us) + ",\"args\":{\"active_rows\":" +
                    std::to_string(record.active_rows) + "}}");
    AppendEvent(out, first,
                "{\"name\":\"step_latency_us\",\"ph\":\"C\",\"pid\":" +
                    std::to_string(pid) + ",\"ts\":" +
                    std::to_string(start_us) + ",\"args\":{\"us\":" +
                    std::to_string(record.duration_us) + "}}");
  }
  // Tenancies still live at the end of the tail clamp to the window edge.
  for (size_t s = 0; s < slots.size(); ++s) {
    if (slots[s].open) {
      close(slots[s], static_cast<int64_t>(s), window_end_us);
    }
  }
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceRecord>& records,
                            const std::vector<SlotTimeline>& timelines) {
  std::string out = ChromeTraceJson(records);
  // Splice the slot-track events into the existing document rather than
  // re-rendering the request tracks: drop the trailing "]}" and append.
  out.resize(out.size() - 2);
  bool first = records.empty();
  // pid 1 is the request-track process; slot processes follow.
  int64_t pid = 2;
  for (const SlotTimeline& timeline : timelines) {
    AppendSlotTimeline(out, first, timeline, pid++);
  }
  out += "]}";
  return out;
}

std::string StepJournalJson(const std::string& model, int64_t num_slots,
                            int64_t steps_recorded,
                            const std::vector<StepRecord>& tail) {
  std::string out = "{\"model\":\"" + EscapeJson(model) + "\"";
  out += ",\"num_slots\":" + std::to_string(num_slots);
  out += ",\"steps_recorded\":" + std::to_string(steps_recorded);
  out += ",\"steps\":[";
  bool first_record = true;
  for (const StepRecord& record : tail) {
    if (!first_record) out += ",";
    first_record = false;
    out += "{\"step\":" + std::to_string(record.step);
    out += ",\"ts_us\":" + std::to_string(ToMicros(record.start));
    out += ",\"duration_us\":" + std::to_string(record.duration_us);
    out += ",\"active_rows\":" + std::to_string(record.active_rows);
    out += ",\"num_slots\":" + std::to_string(record.num_slots);
    if (!record.ok) out += ",\"ok\":false";
    out += ",\"events\":[";
    bool first_event = true;
    for (const StepEvent& event : record.events) {
      if (!first_event) out += ",";
      first_event = false;
      out += "{\"kind\":\"";
      out += event.kind == StepEvent::Kind::kSplice ? "splice" : "retire";
      out += "\",\"request\":" + std::to_string(event.request_id);
      out += ",\"slot\":" + std::to_string(event.slot);
      out += ",\"length\":" + std::to_string(event.length) + "}";
    }
    out += "]";
    if (record.vm.instructions > 0) {
      out += ",\"vm\":{\"kernel_us\":" +
             std::to_string(record.vm.kernel_nanos / 1000) +
             ",\"shape_func_us\":" +
             std::to_string(record.vm.shape_func_nanos / 1000) +
             ",\"other_us\":" + std::to_string(record.vm.other_nanos / 1000) +
             ",\"instructions\":" + std::to_string(record.vm.instructions) +
             "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string TraceHeaderValue(const TraceContext& ctx) {
  std::string out = "id=" + std::to_string(ctx.id);
  for (const SpanView& span : TraceSpans(ctx)) {
    // The write span is still in flight while the header is built; skip it
    // rather than echo a half-measured number.
    if (span.name == std::string("write")) continue;
    out += ";";
    out += span.name;
    out += "_us=";
    out += std::to_string(span.duration_us());
  }
  out += ";kernel_us=" + std::to_string(ctx.vm.kernel_nanos / 1000);
  out += ";shape_func_us=" + std::to_string(ctx.vm.shape_func_nanos / 1000);
  out += ";other_us=" + std::to_string(ctx.vm.other_nanos / 1000);
  if (ctx.continuous) {
    out += ";slot=" + std::to_string(ctx.slot);
    out += ";splice_step=" + std::to_string(ctx.splice_step);
    out += ";steps_resident=" + std::to_string(ctx.steps_resident());
  }
  return out;
}

std::string TraceSummary(const TraceContext& ctx) {
  std::string out = "request " + std::to_string(ctx.id) + " model=" +
                    ctx.model + (ctx.ok ? "" : " FAILED") +
                    " e2e=" + std::to_string(ctx.e2e_us()) + "us [";
  bool first = true;
  for (const SpanView& span : TraceSpans(ctx)) {
    if (!first) out += " ";
    first = false;
    out += span.name;
    out += "=";
    out += std::to_string(span.duration_us());
    out += "us";
  }
  out += "]";
  if (ctx.vm.instructions > 0) {
    out += " vm{kernel=" + std::to_string(ctx.vm.kernel_nanos / 1000) +
           "us shape=" + std::to_string(ctx.vm.shape_func_nanos / 1000) +
           "us other=" + std::to_string(ctx.vm.other_nanos / 1000) +
           "us insts=" + std::to_string(ctx.vm.instructions) + "}";
  }
  return out;
}

}  // namespace obs
}  // namespace nimble
