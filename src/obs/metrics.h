// Low-overhead metrics plane: sharded counters, gauges, and log-bucketed
// histograms behind a Prometheus-rendering registry.
//
// The serving hot path (admission, scheduler, pool workers) records into
// instruments that shard their state across cache-line-padded per-thread
// cells: an increment is one relaxed atomic add on the calling thread's
// cell, so recording never takes a mutex and concurrent recorders never
// bounce a shared cache line (the ROADMAP's "shard counters per worker
// with merge-on-read" item). Reads — the /metrics scrape — merge the cells
// on demand; they are monotone but may miss increments that land while the
// merge is in flight, which is exactly the consistency Prometheus expects
// of a scrape.
//
// Layering: obs sits below serve/ and net/ (it depends only on support/),
// so every subsystem can record without cycles. A MetricRegistry owns its
// instruments; Get* returns a stable pointer that lives as long as the
// registry, and returns the SAME instrument for the same (name, labels)
// pair — callers cache the pointer at setup time and record through it
// lock-free ever after. Registration takes the registry mutex and is meant
// for startup, not the hot path.
//
// Naming scheme (rendered at GET /metrics): families are prefixed
// `nimble_`, counters end in `_total`, and latency histograms carry a
// `_us` unit suffix because their buckets are exact powers of two in
// microseconds (log2 buckets make the exposition's `le` labels integers
// and the merge trivially exact). See docs/ARCHITECTURE.md §Observability.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nimble {
namespace obs {

/// Number of per-thread cells each instrument shards across. Threads are
/// assigned cells round-robin at first use; more threads than cells simply
/// share (the atomics stay correct, only the anti-contention property
/// degrades gracefully).
constexpr size_t kMetricShards = 16;

/// Stable per-thread shard index in [0, kMetricShards).
size_t ThreadShardIndex();

/// Monotone counter. Increment is one relaxed fetch_add on the calling
/// thread's cell; Value() merges all cells (monotone snapshot).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    cells_[ThreadShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  std::array<Cell, kMetricShards> cells_{};
};

/// Last-writer-wins gauge (queue depth, adaptive wait). Not sharded: gauges
/// are set, not accumulated, and the writers are cold paths.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with sharded cells. Observe() is a relaxed add
/// into the calling thread's cell (bucket count, total count, sum); reads
/// merge on demand. Bucket upper bounds are fixed at construction and
/// shared by every cell; the merged per-bucket counts render as the
/// cumulative `le` series Prometheus expects.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  int64_t Count() const;
  double Sum() const;
  /// Merged per-bucket counts, cumulative, size bounds().size() + 1 (the
  /// last entry is the +Inf bucket and equals Count() up to concurrent
  /// recording skew — render reads count from the same merge, so the
  /// exposition itself is always internally consistent).
  std::vector<int64_t> CumulativeBuckets() const;
  const std::vector<double>& bounds() const { return bounds_; }

  /// `count` bounds start, start*factor, start*factor^2, ... — the log
  /// bucket layout every latency histogram here uses (start=1, factor=2).
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);
  /// Default latency layout: 1us..~67s in 27 power-of-two buckets.
  static std::vector<double> LatencyBoundsUs();
  /// Batch-occupancy layout: 1..64 in power-of-two buckets.
  static std::vector<double> BatchSizeBounds();

 private:
  struct alignas(64) Cell {
    /// One count per bound plus the +Inf overflow bucket.
    std::unique_ptr<std::atomic<int64_t>[]> counts;
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Cell, kMetricShards> cells_;
};

/// Label set of one series, e.g. {{"model", "lstm"}}. Keys are sorted at
/// registration so label order never splits a series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class MetricRegistry {
 public:
  /// Returns the counter registered under (name, labels), creating it on
  /// first use. The pointer is stable for the registry's lifetime. `help`
  /// is kept from the first registration of the family. Thread-safe (takes
  /// the registry mutex — cache the pointer, don't call per event).
  Counter* GetCounter(const std::string& name, const LabelSet& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {},
                  const std::string& help = "");
  /// `bounds` must match the family's on every call (checked).
  Histogram* GetHistogram(const std::string& name, const LabelSet& labels,
                          std::vector<double> bounds,
                          const std::string& help = "");

  /// Prometheus text exposition (version 0.0.4) of every registered
  /// instrument: # HELP / # TYPE per family, merged values per series,
  /// cumulative `le` buckets plus _sum/_count for histograms.
  std::string RenderPrometheus() const;

  /// Escapes `\`, `"`, and newline for use inside a quoted label value.
  static std::string EscapeLabelValue(const std::string& value);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;  // histograms only
    /// Keyed by the rendered `{k="v",...}` label block (canonical: keys
    /// sorted), which doubles as the exposition output.
    std::map<std::string, Series> series;
  };

  Family& FindFamily(const std::string& name, Kind kind,
                     const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace obs
}  // namespace nimble
