#include "src/obs/trace.h"

#include <algorithm>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/support/logging.h"

namespace nimble {
namespace obs {

Tracer::Tracer(TraceConfig config) : config_(config) {
  NIMBLE_CHECK(config_.ring_capacity > 0) << "trace ring needs capacity";
  per_shard_capacity_ = std::max<size_t>(1, config_.ring_capacity / kShards);
  for (Shard& shard : shards_) {
    shard.ring.resize(per_shard_capacity_);
  }
}

bool Tracer::ShouldLogSlow(int64_t e2e_us, SteadyClock::time_point now) {
  if (config_.slow_request_us <= 0 || e2e_us < config_.slow_request_us) {
    return false;
  }
  int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       now.time_since_epoch())
                       .count();
  int64_t interval_ns = config_.slow_log_interval_ms * 1000000;
  int64_t last = last_slow_log_ns_.load(std::memory_order_relaxed);
  // CAS so concurrent slow completions elect exactly one logger per
  // interval; losers drop their log, which is the point of the limiter.
  while (last == 0 || now_ns - last >= interval_ns) {
    if (last_slow_log_ns_.compare_exchange_weak(last, now_ns,
                                                std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void Tracer::Commit(const TraceContext& ctx) {
  if (!config_.enabled) return;
  uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = shards_[ThreadShardIndex() % kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    TraceRecord& slot = shard.ring[shard.next];
    slot.seq = seq;
    slot.ctx = ctx;
    shard.next = (shard.next + 1) % shard.ring.size();
  }
  if (ShouldLogSlow(ctx.e2e_us(), ctx.write_end)) {
    NIMBLE_LOG(WARNING) << "slow request: " << TraceSummary(ctx);
  }
}

std::vector<TraceRecord> Tracer::Recent(size_t n) const {
  std::vector<TraceRecord> all;
  all.reserve(kShards * per_shard_capacity_);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const TraceRecord& record : shard.ring) {
      if (record.seq > 0) all.push_back(record);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.seq < b.seq;
            });
  if (all.size() > n) {
    all.erase(all.begin(), all.end() - static_cast<ptrdiff_t>(n));
  }
  return all;
}

}  // namespace obs
}  // namespace nimble
