// Step-granular observability for continuous batching: the step journal
// and the stall watchdog.
//
// The continuous path (batch::StepRunner) serves a request across hundreds
// of recurrence steps that the per-request TraceContext collapses into one
// exec span, and slot occupancy/splice/retire dynamics are invisible
// except as end-of-run counters. The StepJournal makes the step the unit
// of record: one StepRecord per step-twin invocation — step sequence
// number, wall-clock start and duration, active-row count, the splice and
// retire events that happened at that step boundary (request ids, slot
// indices, lengths), and the step's folded VM profile — pushed into a
// bounded per-model ring by the runner at most once per step.
//
// Concurrency model: each journal has exactly ONE writer, its model's
// StepRunner thread (the per-model journals are the shards of this plane —
// runners never share a ring, so writers never contend with each other).
// Push/Tail synchronize on a mutex that is uncontended except while a
// /debug/steps or /debug/trace scrape walks the ring; a push is a handful
// of word moves under an uncontended lock, which keeps the hot loop within
// the same ≤3% overhead budget as request tracing (CI-guarded via the
// step_journal_overhead A/B in BENCH_serve.json) while staying TSan-clean
// — the nightly sched-harness smoke runs with the journal enabled under
// ThreadSanitizer.
//
// The stall watchdog closes the loop from recording to alerting: a runner
// that holds live rows but has not completed a step within the configured
// deadline is wedged (a stuck kernel, a deadlocked allocator), not idle.
// The watchdog polls a health source — per-runner live-row counts and
// last-progress timestamps published by the runners as relaxed atomics —
// flips the model's `nimble_runner_stalled` gauge, and WARN-logs with a
// rate limit so a wedged runner cannot flood stderr. The health source is
// a plain function so tests can provoke and clear a stall without wedging
// a real VM step.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace nimble {
namespace obs {

/// One splice or retire at a step boundary.
struct StepEvent {
  enum class Kind { kSplice, kRetire };
  Kind kind = Kind::kSplice;
  /// The request's trace/request id (serve::Request::id).
  int64_t request_id = -1;
  /// Slot index of the persistent batch the request occupies.
  int64_t slot = -1;
  /// The request's sequence length (steps it holds the slot for).
  int64_t length = 0;
};

/// One step-twin invocation over the persistent batch.
struct StepRecord {
  /// Step sequence number, 0-based per runner, strictly increasing.
  int64_t step = -1;
  /// Wall-clock start of the step (gather begins).
  SteadyClock::time_point start{};
  /// Gather + invoke + retire-scan, microseconds.
  int64_t duration_us = 0;
  /// Slots holding live requests during this step.
  int64_t active_rows = 0;
  /// Total slots of the persistent batch (the fixed B).
  int64_t num_slots = 0;
  /// False when the step-twin invocation threw (every live row failed).
  bool ok = true;
  /// Splices admitted at this step's boundary, then retires of rows whose
  /// final step this was.
  std::vector<StepEvent> events;
  /// This step's VM profile delta (zero when profiling is off).
  ExecProfile vm{};
};

struct StepJournalConfig {
  /// Off: Push and event accumulation are skipped entirely (the journal-off
  /// half of the step_journal_overhead A/B).
  bool enabled = true;
  /// StepRecords retained per model; older steps are overwritten. Bounds
  /// journal memory regardless of uptime.
  size_t ring_capacity = 1024;
};

/// Bounded per-model ring of StepRecords. Single writer (the model's
/// runner thread); any thread may read. See the file comment for the
/// concurrency model.
class StepJournal {
 public:
  explicit StepJournal(StepJournalConfig config = {});

  bool enabled() const { return config_.enabled; }
  const StepJournalConfig& config() const { return config_; }

  /// Records one step. Called by the runner thread only, at most once per
  /// step-twin invocation. No-op when disabled.
  void Push(StepRecord record);

  /// The newest `n` records in step order (oldest first). Thread-safe.
  std::vector<StepRecord> Tail(size_t n) const;

  /// Total steps pushed since construction (monotone; exceeds the ring
  /// capacity once old steps have been overwritten). Thread-safe.
  int64_t steps_recorded() const {
    return steps_recorded_.load(std::memory_order_relaxed);
  }

 private:
  StepJournalConfig config_;
  std::atomic<int64_t> steps_recorded_{0};
  mutable std::mutex mu_;
  std::vector<StepRecord> ring_;  // fixed capacity, overwritten in place
  size_t next_ = 0;
  size_t size_ = 0;
};

/// One runner's health as sampled by the watchdog's health source.
struct RunnerHealth {
  std::string model;
  /// Slots currently holding live requests (0 = idle, never a stall).
  int64_t live_rows = 0;
  /// Steps completed so far (diagnostic, echoed in the stall log).
  int64_t steps = 0;
  /// Steady-clock nanos of the runner's last progress (step completed or
  /// request spliced). 0 = the runner has not started serving yet.
  int64_t last_progress_ns = 0;
  /// Per-model `nimble_runner_stalled` gauge; may be null (not exported).
  Gauge* stalled_gauge = nullptr;
};

struct StallWatchdogConfig {
  /// Off: no watchdog thread is started.
  bool enabled = true;
  /// A runner with live rows but no step completed within this deadline is
  /// declared stalled.
  int64_t stall_deadline_ms = 2000;
  /// How often the watchdog polls the health source.
  int64_t poll_interval_ms = 200;
  /// Rate limit for stall WARN logs: at most one per this interval (the
  /// gauge still flips immediately).
  int64_t warn_interval_ms = 5000;
};

/// Watches continuous runners for wedged steps. Owns one polling thread
/// (Start/Stop); CheckOnce is the pure evaluation step, exposed so tests
/// can provoke and clear a stall with fake health data.
class StallWatchdog {
 public:
  using HealthSource = std::function<std::vector<RunnerHealth>()>;

  /// `source` is polled from the watchdog thread (and CheckOnce callers);
  /// it must stay valid until Stop() returns.
  StallWatchdog(StallWatchdogConfig config, HealthSource source);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Starts the polling thread. Call at most once; no-op when disabled.
  void Start();
  /// Stops and joins the polling thread. Idempotent.
  void Stop();

  /// One poll pass at time `now`: samples the health source, updates every
  /// runner's stalled gauge (1 = stalled, 0 = healthy), WARN-logs new
  /// stalls rate-limited, runs the auxiliary check (if set), and returns
  /// how many runners are stalled. Thread-safe.
  int CheckOnce(SteadyClock::time_point now);

  /// Hangs an extra periodic check off this watchdog's polling thread
  /// (e.g. the memory-pressure poll — one observability thread, not one
  /// per concern). Called at the end of every CheckOnce with the same
  /// `now`. Set before Start(); not synchronized against a running loop.
  void SetAuxCheck(std::function<void(SteadyClock::time_point)> check) {
    aux_check_ = std::move(check);
  }

  /// Stalled-runner count of the most recent check. Thread-safe.
  int stalled_count() const {
    return stalled_count_.load(std::memory_order_relaxed);
  }

  const StallWatchdogConfig& config() const { return config_; }

 private:
  void Loop();

  StallWatchdogConfig config_;
  HealthSource source_;
  std::function<void(SteadyClock::time_point)> aux_check_;
  std::atomic<int> stalled_count_{0};
  /// Steady-clock nanos of the last stall WARN (0 = never). CAS-guarded so
  /// concurrent CheckOnce calls cannot double-log within one interval.
  std::atomic<int64_t> last_warn_ns_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace nimble
