// Trace export: chrome://tracing JSON, response-header echo, log summary.
//
// One span taxonomy, three renderings of it:
//   - ChromeTraceJson: the catapult trace-event format. Load the output of
//     GET /debug/trace?n=K straight into chrome://tracing or
//     https://ui.perfetto.dev — each request renders as its own track
//     (tid = request id) of six complete ("ph":"X") events: admission,
//     queue, pack, exec, unpack, write; the exec event's args carry the
//     folded VMProfile categories (kernel/shape/other time).
//   - TraceHeaderValue: the compact `k=v;...` form echoed in the
//     X-Nimble-Trace response header (stages known at serialization time —
//     the write span cannot be in its own header).
//   - TraceSummary: the human-readable breakdown slow-request WARN logs
//     print.
//
// Kept free of src/net/ dependencies (hand-rolled JSON) so obs stays the
// bottom layer.
#pragma once

#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace nimble {
namespace obs {

/// One named stage of a trace, derived from consecutive stamps. `begin` and
/// `end` never invert (clamped); zero-width spans are legal (e.g. pack on
/// the per-request fallback path).
struct SpanView {
  const char* name;
  SteadyClock::time_point begin{};
  SteadyClock::time_point end{};

  int64_t duration_us() const {
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                                    begin)
                  .count();
    return us > 0 ? us : 0;
  }
};

/// The six pipeline spans of a completed trace, in stage order:
/// admission, queue, pack, exec, unpack, write.
std::vector<SpanView> TraceSpans(const TraceContext& ctx);

/// chrome://tracing "traceEvents" JSON document for a set of committed
/// traces (valid with zero records: an empty traceEvents array).
std::string ChromeTraceJson(const std::vector<TraceRecord>& records);

/// Compact stage timings for the X-Nimble-Trace response header, e.g.
/// "id=7;admission_us=12;queue_us=830;pack_us=4;exec_us=1210;kernel_us=...".
std::string TraceHeaderValue(const TraceContext& ctx);

/// Readable one-line span breakdown for slow-request logging.
std::string TraceSummary(const TraceContext& ctx);

}  // namespace obs
}  // namespace nimble
