// Trace export: chrome://tracing JSON, response-header echo, log summary.
//
// One span taxonomy, three renderings of it:
//   - ChromeTraceJson: the catapult trace-event format. Load the output of
//     GET /debug/trace?n=K straight into chrome://tracing or
//     https://ui.perfetto.dev — each request renders as its own track
//     (tid = request id) of six complete ("ph":"X") events: admission,
//     queue, pack, exec, unpack, write; the exec event's args carry the
//     folded VMProfile categories (kernel/shape/other time).
//   - TraceHeaderValue: the compact `k=v;...` form echoed in the
//     X-Nimble-Trace response header (stages known at serialization time —
//     the write span cannot be in its own header).
//   - TraceSummary: the human-readable breakdown slow-request WARN logs
//     print.
//
// Kept free of src/net/ dependencies (hand-rolled JSON) so obs stays the
// bottom layer.
#pragma once

#include <string>
#include <vector>

#include "src/obs/step_journal.h"
#include "src/obs/trace.h"

namespace nimble {
namespace obs {

/// One named stage of a trace, derived from consecutive stamps. `begin` and
/// `end` never invert (clamped); zero-width spans are legal (e.g. pack on
/// the per-request fallback path).
struct SpanView {
  const char* name;
  SteadyClock::time_point begin{};
  SteadyClock::time_point end{};

  int64_t duration_us() const {
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                                    begin)
                  .count();
    return us > 0 ? us : 0;
  }
};

/// The six pipeline spans of a completed trace, in stage order:
/// admission, queue, pack, exec, unpack, write.
std::vector<SpanView> TraceSpans(const TraceContext& ctx);

/// One continuous model's step-journal tail, for the slot-timeline export:
/// rendered as one Perfetto process ("slots:<model>") with one track per
/// slot — each occupancy interval named after its resident request — plus
/// `occupancy` and `step_latency_us` counter tracks sampled per step.
struct SlotTimeline {
  std::string model;
  int64_t num_slots = 0;
  /// Journal tail in step order (StepJournal::Tail output).
  std::vector<StepRecord> records;
};

/// chrome://tracing "traceEvents" JSON document for a set of committed
/// traces (valid with zero records: an empty traceEvents array).
std::string ChromeTraceJson(const std::vector<TraceRecord>& records);

/// Same document with continuous slot timelines merged in: request tracks
/// (pid 1, tid = request id) as above, plus per-model slot-track processes
/// reconstructed from each journal tail. Tenancies that began before the
/// tail window (or are still live at its end) are clamped to the window
/// edges. This is what GET /debug/trace serves for a continuous server.
std::string ChromeTraceJson(const std::vector<TraceRecord>& records,
                            const std::vector<SlotTimeline>& timelines);

/// JSON journal tail for one model (the GET /debug/steps body is one of
/// these per continuous model): step seq, start timestamp, duration,
/// active rows, splice/retire events, and the per-step VM profile.
/// `steps_recorded` is the journal's monotone push count (so a consumer
/// can tell a short run from a wrapped ring).
std::string StepJournalJson(const std::string& model, int64_t num_slots,
                            int64_t steps_recorded,
                            const std::vector<StepRecord>& tail);

/// Compact stage timings for the X-Nimble-Trace response header, e.g.
/// "id=7;admission_us=12;queue_us=830;pack_us=4;exec_us=1210;kernel_us=...".
std::string TraceHeaderValue(const TraceContext& ctx);

/// Readable one-line span breakdown for slow-request logging.
std::string TraceSummary(const TraceContext& ctx);

}  // namespace obs
}  // namespace nimble
