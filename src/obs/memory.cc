#include "src/obs/memory.h"

#include <cstdio>

#include "src/support/logging.h"

namespace nimble {
namespace obs {

namespace {

const char* kCopySiteNames[kNumCopySites] = {
    "http_decode", "pack", "unpack", "step_state", "serialize",
};

const char* kPoolEventNames[kNumPoolEvents] = {
    "hit", "miss", "refill", "free",
};

// On by default; constant-initialized and trivially destructible, so it is
// safe to consult from allocator teardown during static destruction.
std::atomic<bool> g_telemetry_enabled{true};

// The global ledgers. Heap-allocated behind function-local static pointers
// so they are immortal: process-lifetime allocators (the global allocators,
// the worker-allocator registry) free buffers during static destruction,
// and those frees must still have a ledger to record into. The blocks stay
// reachable from the static pointers, so LeakSanitizer does not flag them.
struct CopyLedger {
  Counter bytes[kNumCopySites];
  Counter copies[kNumCopySites];
};

CopyLedger& GlobalCopyLedger() {
  static CopyLedger* ledger = new CopyLedger();
  return *ledger;
}

struct PoolEventLedger {
  Counter events[kNumPoolEvents];
};

PoolEventLedger& GlobalPoolEventLedger() {
  static PoolEventLedger* ledger = new PoolEventLedger();
  return *ledger;
}

}  // namespace

const char* CopySiteName(CopySite site) {
  return kCopySiteNames[static_cast<int>(site)];
}

const char* PoolEventName(PoolEvent event) {
  return kPoolEventNames[static_cast<int>(event)];
}

bool MemoryTelemetryEnabled() {
  return g_telemetry_enabled.load(std::memory_order_relaxed);
}

void SetMemoryTelemetryEnabled(bool enabled) {
  g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

void RecordCopy(CopySite site, int64_t bytes) {
  if (!MemoryTelemetryEnabled()) return;
  CopyLedger& ledger = GlobalCopyLedger();
  ledger.bytes[static_cast<int>(site)].Increment(bytes);
  ledger.copies[static_cast<int>(site)].Increment(1);
}

void RecordPoolEvent(PoolEvent event, int64_t count) {
  if (!MemoryTelemetryEnabled()) return;
  GlobalPoolEventLedger().events[static_cast<int>(event)].Increment(count);
}

std::vector<CopySiteSnapshot> CopyLedgerSnapshot() {
  CopyLedger& ledger = GlobalCopyLedger();
  std::vector<CopySiteSnapshot> out(kNumCopySites);
  for (size_t i = 0; i < kNumCopySites; ++i) {
    out[i].site = kCopySiteNames[i];
    out[i].bytes = ledger.bytes[i].Value();
    out[i].copies = ledger.copies[i].Value();
  }
  return out;
}

std::vector<PoolEventSnapshot> PoolEventsSnapshot() {
  PoolEventLedger& ledger = GlobalPoolEventLedger();
  std::vector<PoolEventSnapshot> out(kNumPoolEvents);
  for (size_t i = 0; i < kNumPoolEvents; ++i) {
    out[i].event = kPoolEventNames[i];
    out[i].count = ledger.events[i].Value();
  }
  return out;
}

std::string MemoryCountersText() {
  std::string out;
  out.reserve(1024);
  char line[160];

  out += "# HELP nimble_pool_events_total Pooling-allocator events "
         "(hit/miss/refill/free) across all pools.\n";
  out += "# TYPE nimble_pool_events_total counter\n";
  for (const PoolEventSnapshot& snapshot : PoolEventsSnapshot()) {
    std::snprintf(line, sizeof(line),
                  "nimble_pool_events_total{event=\"%s\"} %lld\n",
                  snapshot.event, static_cast<long long>(snapshot.count));
    out += line;
  }

  out += "# HELP nimble_copied_bytes_total Bytes copied on the data path, "
         "by copy site.\n";
  out += "# TYPE nimble_copied_bytes_total counter\n";
  for (const CopySiteSnapshot& snapshot : CopyLedgerSnapshot()) {
    std::snprintf(line, sizeof(line),
                  "nimble_copied_bytes_total{site=\"%s\"} %lld\n",
                  snapshot.site, static_cast<long long>(snapshot.bytes));
    out += line;
  }
  return out;
}

MemoryPressure::MemoryPressure(MemoryPressureConfig config, LiveSource source,
                               Gauge* gauge)
    : config_(config), source_(std::move(source)), gauge_(gauge) {
  NIMBLE_CHECK(config_.soft_limit_bytes > 0)
      << "MemoryPressure requires a positive soft limit (got "
      << config_.soft_limit_bytes << ")";
  NIMBLE_CHECK(source_ != nullptr) << "MemoryPressure requires a live-byte source";
}

double MemoryPressure::CheckOnce(SteadyClock::time_point now) {
  int64_t live = source_();
  double pressure =
      static_cast<double>(live) / static_cast<double>(config_.soft_limit_bytes);
  pressure_.store(pressure, std::memory_order_relaxed);
  if (gauge_ != nullptr) gauge_->Set(pressure);

  if (live > config_.soft_limit_bytes) {
    // Rate-limit the WARN with the same CAS discipline as the stall
    // watchdog: whoever wins the exchange owns this interval's log line.
    int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         now.time_since_epoch())
                         .count();
    int64_t last = last_warn_ns_.load(std::memory_order_relaxed);
    int64_t interval_ns = config_.warn_interval_ms * 1000000;
    if ((last == 0 || now_ns - last >= interval_ns) &&
        last_warn_ns_.compare_exchange_strong(last, now_ns,
                                              std::memory_order_relaxed)) {
      NIMBLE_LOG(WARNING) << "memory pressure " << pressure << ": " << live
                   << " live bytes over soft limit "
                   << config_.soft_limit_bytes
                   << (should_shed() ? " (shedding new requests)" : "");
    }
  }
  return pressure;
}

}  // namespace obs
}  // namespace nimble
