// Memory observability: allocator telemetry, copy accounting, and the
// soft-limit pressure gauge.
//
// This is the bottom-layer counterpart to the request-tracing plane
// (src/obs/trace.h): where tracing answers "where did this request's time
// go", this plane answers "where do its bytes live and how many times were
// they copied". Three pieces:
//
//  - Allocator accounting lives in runtime::Allocator itself (sharded
//    relaxed-atomic counters plus an exact live/peak atomic pair — see
//    src/runtime/allocator.h). This header supplies the process-global
//    aggregation: every PoolingAllocator additionally records its pool
//    events (hit/miss/refill/free) into one global sharded ledger, so
//    /metrics can export nimble_pool_events_total{event=...} without
//    walking allocators at scrape time.
//
//  - The copy ledger: one tagged byte counter per data-path copy site
//    (socket->tensor decode, PackPlan gather, batched-output unpack, the
//    step runner's per-step state gather/retire, response serialize).
//    RecordCopy is one relaxed fetch_add on the calling thread's cell —
//    the same 16-cell alignas(64) sharding as obs::Counter — so the hot
//    path never contends. The ledger is process-global (not per registry):
//    copy sites sit in layers (runtime, batch, net) that have no registry
//    pointer to thread through, and counters merged at scrape time lose
//    nothing by being global.
//
//  - MemoryPressure: a soft-limit gauge polled off the stall-watchdog
//    thread (obs::StallWatchdog::SetAuxCheck). CheckOnce is pure given a
//    clock reading, so tests can trip and clear it by hand; admission
//    (serve::Server::TrySubmit*) consults should_shed() to answer 429
//    before the allocators OOM.
//
// Kill switch: SetMemoryTelemetryEnabled(false) turns every global-ledger
// record into one relaxed load-and-branch (the telemetry-off half of the
// --trace-overhead A/B in bench/http_loadgen.cc). Per-allocator counters
// are not gated — they back AllocStats, which predates this plane.
//
// Layering: like the rest of obs/, this header depends only on support/-
// level facilities, so runtime/ (the allocators) may record into it
// without a cycle. The AllocScopeSample structs below are plain data the
// serving layer fills from runtime::AllocStats; obs itself never sees an
// allocator.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace nimble {
namespace obs {

using SteadyClock = std::chrono::steady_clock;

/// The data path's copy sites, in pipeline order. One request on the
/// packed binary-protocol path touches http_decode, pack, unpack, and
/// serialize; the continuous path replaces pack/unpack with step_state
/// (per-step x_t gather + retired-row slice). The taxonomy is closed on
/// purpose: a bounded label set keeps the exposition's cardinality fixed,
/// and a new copy site should be a reviewed decision, not a stray string.
enum class CopySite : int {
  kHttpDecode = 0,  // HTTP body -> NDArray (src/net/inference_handler.cc)
  kPack,            // request rows -> packed batch tensor (PackPlan)
  kUnpack,          // batched output -> per-request slices (PackPlan)
  kStepState,       // step runner x_t gather + retired-row copy
  kSerialize,       // result tensor -> response body bytes
};
constexpr size_t kNumCopySites = 5;

/// Stable label value for the site ("http_decode", "pack", ...).
const char* CopySiteName(CopySite site);

/// Pool events recorded by every PoolingAllocator into the global ledger.
enum class PoolEvent : int {
  kHit = 0,  // allocation served from a free list
  kMiss,     // no cached block; fell through to the OS allocator
  kRefill,   // freed block returned to a free list (the pool refills)
  kFree,     // block released to the OS (cache cap exceeded, or Trim)
};
constexpr size_t kNumPoolEvents = 4;

const char* PoolEventName(PoolEvent event);

/// Global kill switch for the ledgers below. On by default; flipping it
/// off reduces RecordCopy/RecordPoolEvent to a relaxed load. Used by the
/// telemetry-overhead A/B; not meant as a runtime tuning knob.
bool MemoryTelemetryEnabled();
void SetMemoryTelemetryEnabled(bool enabled);

/// Records `bytes` copied at `site` (plus one copy event). One relaxed
/// add per call — callers batch per invocation (e.g. one call per packed
/// gather), not per row.
void RecordCopy(CopySite site, int64_t bytes);

/// Records `count` pool events of `kind` into the global ledger.
void RecordPoolEvent(PoolEvent event, int64_t count = 1);

struct CopySiteSnapshot {
  const char* site = nullptr;
  int64_t bytes = 0;
  int64_t copies = 0;
};
/// Merged snapshot of all kNumCopySites sites, in enum order (sites with
/// no traffic report zeros — the exposition always shows the full
/// taxonomy).
std::vector<CopySiteSnapshot> CopyLedgerSnapshot();

struct PoolEventSnapshot {
  const char* event = nullptr;
  int64_t count = 0;
};
/// Merged snapshot of all pool events, in enum order.
std::vector<PoolEventSnapshot> PoolEventsSnapshot();

/// Prometheus text for the two global counter families
/// (nimble_pool_events_total{event}, nimble_copied_bytes_total{site}),
/// appended by the /metrics handler after MetricRegistry::
/// RenderPrometheus() — distinct family names keep the combined
/// exposition valid. The per-scope live/peak gauges are registry gauges
/// sampled at scrape time instead (see InferenceHandler::MetricsText).
std::string MemoryCountersText();

/// One allocator's occupancy in one (device, bucket-size) class.
struct PoolClassOccupancy {
  int64_t bucket_bytes = 0;
  int64_t blocks = 0;  // cached (free) blocks in this class
  int64_t bytes = 0;   // bucket_bytes * blocks
};

/// One allocator scope as exported at /debug/memory and the per-scope
/// gauges: "worker:<i>" (a VMPool worker's leased allocator),
/// "model:<name>" (a continuous StepRunner's), or "global:pool" /
/// "global:naive". Filled by serve::Server::MemoryScopes from
/// runtime::AllocStats.
struct AllocScopeSample {
  std::string scope;
  int64_t alloc_calls = 0;
  int64_t system_allocs = 0;
  int64_t bytes_allocated = 0;
  int64_t live_bytes = 0;
  int64_t peak_bytes = 0;
  int64_t cached_bytes = 0;
  int64_t pool_hits = 0;
  int64_t pool_refills = 0;
  int64_t pool_frees = 0;
  std::vector<PoolClassOccupancy> classes;
};

struct MemoryPressureConfig {
  /// Soft limit on live bytes across the server's allocator scopes;
  /// 0 disables the pressure plane entirely (no poll, never sheds).
  int64_t soft_limit_bytes = 0;
  /// Whether admission consults the gauge: at pressure >= shed_threshold,
  /// Server::TrySubmit* answer queue-full (the HTTP front end's 429)
  /// instead of admitting. Off, the gauge is observability only.
  bool shed = true;
  double shed_threshold = 1.0;
  /// Rate limit for over-limit WARN logs (the gauge itself updates every
  /// poll).
  int64_t warn_interval_ms = 5000;
};

/// The soft-limit gauge. CheckOnce samples the live-byte source, publishes
/// live/soft_limit to the gauge, and WARN-logs (rate-limited, same CAS
/// discipline as the stall watchdog) while over the limit. It owns no
/// thread: the server hangs it off the StallWatchdog's poll loop.
class MemoryPressure {
 public:
  /// Returns total live bytes to judge against the soft limit. Polled from
  /// the watchdog thread and from tests; must stay valid for the
  /// MemoryPressure's lifetime and be safe to call from any thread.
  using LiveSource = std::function<int64_t()>;

  /// `config.soft_limit_bytes` must be > 0 (CHECKed: a disabled pressure
  /// plane is expressed by not constructing one). `gauge` (nullable) is
  /// the registry's nimble_mem_pressure instrument.
  MemoryPressure(MemoryPressureConfig config, LiveSource source,
                 Gauge* gauge = nullptr);

  /// One poll pass at time `now`: returns the fresh pressure value
  /// (live / soft_limit). Thread-safe.
  double CheckOnce(SteadyClock::time_point now);

  /// Pressure as of the most recent CheckOnce (0 before the first).
  /// Thread-safe, relaxed.
  double pressure() const {
    return pressure_.load(std::memory_order_relaxed);
  }

  /// True when shedding is configured and the last poll was at or over
  /// the threshold. Admission hot path: two relaxed loads, no sampling —
  /// staleness is bounded by the watchdog poll interval.
  bool should_shed() const {
    return config_.shed && pressure() >= config_.shed_threshold;
  }

  const MemoryPressureConfig& config() const { return config_; }

 private:
  MemoryPressureConfig config_;
  LiveSource source_;
  Gauge* gauge_;
  std::atomic<double> pressure_{0.0};
  /// Steady-clock nanos of the last over-limit WARN (0 = never).
  std::atomic<int64_t> last_warn_ns_{0};
};

}  // namespace obs
}  // namespace nimble
