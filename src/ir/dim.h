// Tensor dimensions for the dynamic type system (§4.1).
//
// A Dim is one of:
//  - Static(v): extent known at compile time;
//  - Any():     statically unknown extent (the paper's `Any` dimension);
//  - Sym(id):   a *named* unknown. Two dims with the same id are known to be
//               equal even though their value is unknown — the paper's
//               "extra analysis on each Any dimension to detect if two Any
//               dimensions point to an identically sized dimension", which
//               enables shape-specialized codegen (§4.5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/logging.h"

namespace nimble {
namespace ir {

class Dim {
 public:
  enum class Kind : uint8_t { kStatic = 0, kAny = 1, kSym = 2 };

  Dim() : kind_(Kind::kStatic), value_(0) {}

  static Dim Static(int64_t v) {
    NIMBLE_CHECK_GE(v, 0) << "static dim must be non-negative";
    Dim d;
    d.kind_ = Kind::kStatic;
    d.value_ = v;
    return d;
  }
  static Dim Any() {
    Dim d;
    d.kind_ = Kind::kAny;
    d.value_ = -1;
    return d;
  }
  static Dim Sym(int64_t id, std::string name = "") {
    Dim d;
    d.kind_ = Kind::kSym;
    d.value_ = id;
    d.name_ = std::move(name);
    return d;
  }
  /// Allocates a fresh symbolic dim with a process-unique id.
  static Dim FreshSym(const std::string& name = "");

  Kind kind() const { return kind_; }
  bool is_static() const { return kind_ == Kind::kStatic; }
  bool is_any() const { return kind_ == Kind::kAny; }
  bool is_sym() const { return kind_ == Kind::kSym; }
  /// True if the extent is not known at compile time (Any or Sym).
  bool is_dynamic() const { return !is_static(); }

  int64_t value() const {
    NIMBLE_ICHECK(is_static()) << "value() on non-static dim";
    return value_;
  }
  int64_t sym_id() const {
    NIMBLE_ICHECK(is_sym()) << "sym_id() on non-symbolic dim";
    return value_;
  }
  const std::string& name() const { return name_; }

  /// Structural equality: static dims by value, sym dims by id; Any never
  /// equals Any (two unknowns are not known to be the same).
  bool StructEqual(const Dim& o) const {
    if (kind_ != o.kind_) return false;
    if (is_any()) return false;
    return value_ == o.value_;
  }

  /// Representational identity, used by printers and hashing (Any == Any).
  bool operator==(const Dim& o) const {
    return kind_ == o.kind_ && value_ == o.value_;
  }
  bool operator!=(const Dim& o) const { return !(*this == o); }

  std::string ToString() const {
    switch (kind_) {
      case Kind::kStatic: return std::to_string(value_);
      case Kind::kAny: return "?";
      case Kind::kSym:
        return name_.empty() ? "'s" + std::to_string(value_) : "'" + name_;
    }
    return "<bad dim>";
  }

 private:
  Kind kind_;
  int64_t value_;     // static extent, or symbolic id
  std::string name_;  // optional symbolic name
};

/// A (possibly symbolic) tensor shape.
using Shape = std::vector<Dim>;

inline Shape StaticShape(const std::vector<int64_t>& dims) {
  Shape s;
  s.reserve(dims.size());
  for (int64_t d : dims) s.push_back(Dim::Static(d));
  return s;
}

inline bool IsFullyStatic(const Shape& s) {
  for (const Dim& d : s)
    if (!d.is_static()) return false;
  return true;
}

inline std::vector<int64_t> AsStaticShape(const Shape& s) {
  std::vector<int64_t> out;
  out.reserve(s.size());
  for (const Dim& d : s) out.push_back(d.value());
  return out;
}

inline std::string ShapeToString(const Shape& s) {
  std::string out = "(";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += ", ";
    out += s[i].ToString();
  }
  return out + ")";
}

}  // namespace ir
}  // namespace nimble
