// Types of the Nimble IR (§4.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ir/dim.h"
#include "src/runtime/dtype.h"

namespace nimble {
namespace ir {

using runtime::DataType;

enum class TypeKind : uint8_t { kTensor = 0, kTuple = 1, kFunc = 2, kADT = 3 };

class TypeNode {
 public:
  explicit TypeNode(TypeKind kind) : kind_(kind) {}
  virtual ~TypeNode() = default;
  TypeKind kind() const { return kind_; }

 private:
  TypeKind kind_;
};

using Type = std::shared_ptr<const TypeNode>;

/// Tensor[(d0, d1, ...), dtype] where each di may be static, Any or symbolic.
class TensorTypeNode : public TypeNode {
 public:
  TensorTypeNode(Shape shape, DataType dtype)
      : TypeNode(TypeKind::kTensor), shape(std::move(shape)), dtype(dtype) {}
  Shape shape;
  DataType dtype;

  bool IsFullyStatic() const { return ir::IsFullyStatic(shape); }
};

class TupleTypeNode : public TypeNode {
 public:
  explicit TupleTypeNode(std::vector<Type> fields)
      : TypeNode(TypeKind::kTuple), fields(std::move(fields)) {}
  std::vector<Type> fields;
};

class FuncTypeNode : public TypeNode {
 public:
  FuncTypeNode(std::vector<Type> params, Type ret)
      : TypeNode(TypeKind::kFunc), params(std::move(params)), ret(std::move(ret)) {}
  std::vector<Type> params;
  Type ret;
};

/// Reference to a user-declared algebraic data type (e.g. Tree).
class ADTTypeNode : public TypeNode {
 public:
  explicit ADTTypeNode(std::string name)
      : TypeNode(TypeKind::kADT), name(std::move(name)) {}
  std::string name;
};

// ---- constructors ---------------------------------------------------------

Type TensorType(Shape shape, DataType dtype = DataType::Float32());
Type TensorType(const std::vector<int64_t>& static_shape,
                DataType dtype = DataType::Float32());
Type ScalarType(DataType dtype);
Type TupleType(std::vector<Type> fields);
Type FuncType(std::vector<Type> params, Type ret);
Type ADTType(std::string name);

// ---- accessors ------------------------------------------------------------

const TensorTypeNode* AsTensorType(const Type& t);
const TupleTypeNode* AsTupleType(const Type& t);
const FuncTypeNode* AsFuncType(const Type& t);
const ADTTypeNode* AsADTType(const Type& t);

/// Structural type equality. Any != Any at the dim level (see Dim), but
/// `strict=false` treats Any as equal to anything (sub-shaping compatibility,
/// §4.1): a more specific shape may flow into a less specific context.
bool TypeEqual(const Type& a, const Type& b);
bool TypeCompatible(const Type& concrete, const Type& expected);

std::string TypeToString(const Type& t);

/// True if any tensor dim reachable in the type is dynamic (Any/sym).
bool HasDynamicShape(const Type& t);

}  // namespace ir
}  // namespace nimble
