// Text printer for IR expressions, in a Relay-like surface syntax:
//
//   fn (%x: Tensor[(?, 2), float32], %y: Tensor[(1, 2), float32]) {
//     let %t0 = concat(%x, %y) /* axis=0 */;
//     %t0
//   }
#pragma once

#include <string>

#include "src/ir/expr.h"

namespace nimble {
namespace ir {

/// Renders `e` as text. `skip_fn_keyword` omits the leading "fn" when the
/// caller prints its own header (Module::ToString).
std::string PrintExpr(const Expr& e, bool skip_fn_keyword = false);

}  // namespace ir
}  // namespace nimble
