#include "src/ir/type.h"

#include <atomic>
#include <sstream>

namespace nimble {
namespace ir {

Dim Dim::FreshSym(const std::string& name) {
  static std::atomic<int64_t> next_id{1};
  return Dim::Sym(next_id.fetch_add(1), name);
}

Type TensorType(Shape shape, DataType dtype) {
  return std::make_shared<TensorTypeNode>(std::move(shape), dtype);
}

Type TensorType(const std::vector<int64_t>& static_shape, DataType dtype) {
  return TensorType(StaticShape(static_shape), dtype);
}

Type ScalarType(DataType dtype) { return TensorType(Shape{}, dtype); }

Type TupleType(std::vector<Type> fields) {
  return std::make_shared<TupleTypeNode>(std::move(fields));
}

Type FuncType(std::vector<Type> params, Type ret) {
  return std::make_shared<FuncTypeNode>(std::move(params), std::move(ret));
}

Type ADTType(std::string name) {
  return std::make_shared<ADTTypeNode>(std::move(name));
}

const TensorTypeNode* AsTensorType(const Type& t) {
  NIMBLE_CHECK(t != nullptr) << "null type where tensor type expected";
  NIMBLE_CHECK(t->kind() == TypeKind::kTensor)
      << "expected tensor type, got " << TypeToString(t);
  return static_cast<const TensorTypeNode*>(t.get());
}

const TupleTypeNode* AsTupleType(const Type& t) {
  NIMBLE_CHECK(t != nullptr) << "null type where tuple type expected";
  NIMBLE_CHECK(t->kind() == TypeKind::kTuple)
      << "expected tuple type, got " << TypeToString(t);
  return static_cast<const TupleTypeNode*>(t.get());
}

const FuncTypeNode* AsFuncType(const Type& t) {
  NIMBLE_CHECK(t != nullptr) << "null type where function type expected";
  NIMBLE_CHECK(t->kind() == TypeKind::kFunc)
      << "expected function type, got " << TypeToString(t);
  return static_cast<const FuncTypeNode*>(t.get());
}

const ADTTypeNode* AsADTType(const Type& t) {
  NIMBLE_CHECK(t != nullptr) << "null type where ADT type expected";
  NIMBLE_CHECK(t->kind() == TypeKind::kADT)
      << "expected ADT type, got " << TypeToString(t);
  return static_cast<const ADTTypeNode*>(t.get());
}

namespace {

bool DimMatches(const Dim& concrete, const Dim& expected, bool strict) {
  if (!strict && (expected.is_any() || concrete.is_any())) return true;
  if (!strict && expected.is_sym()) return true;  // sym accepts refinement
  return concrete.StructEqual(expected);
}

bool TypeEqualImpl(const Type& a, const Type& b, bool strict) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case TypeKind::kTensor: {
      auto* ta = static_cast<const TensorTypeNode*>(a.get());
      auto* tb = static_cast<const TensorTypeNode*>(b.get());
      if (ta->dtype != tb->dtype) return false;
      if (ta->shape.size() != tb->shape.size()) return false;
      for (size_t i = 0; i < ta->shape.size(); ++i) {
        if (!DimMatches(ta->shape[i], tb->shape[i], strict)) return false;
      }
      return true;
    }
    case TypeKind::kTuple: {
      auto* ta = static_cast<const TupleTypeNode*>(a.get());
      auto* tb = static_cast<const TupleTypeNode*>(b.get());
      if (ta->fields.size() != tb->fields.size()) return false;
      for (size_t i = 0; i < ta->fields.size(); ++i) {
        if (!TypeEqualImpl(ta->fields[i], tb->fields[i], strict)) return false;
      }
      return true;
    }
    case TypeKind::kFunc: {
      auto* fa = static_cast<const FuncTypeNode*>(a.get());
      auto* fb = static_cast<const FuncTypeNode*>(b.get());
      if (fa->params.size() != fb->params.size()) return false;
      for (size_t i = 0; i < fa->params.size(); ++i) {
        if (!TypeEqualImpl(fa->params[i], fb->params[i], strict)) return false;
      }
      return TypeEqualImpl(fa->ret, fb->ret, strict);
    }
    case TypeKind::kADT: {
      auto* da = static_cast<const ADTTypeNode*>(a.get());
      auto* db = static_cast<const ADTTypeNode*>(b.get());
      return da->name == db->name;
    }
  }
  return false;
}

}  // namespace

bool TypeEqual(const Type& a, const Type& b) { return TypeEqualImpl(a, b, true); }

bool TypeCompatible(const Type& concrete, const Type& expected) {
  return TypeEqualImpl(concrete, expected, false);
}

std::string TypeToString(const Type& t) {
  if (t == nullptr) return "<untyped>";
  std::ostringstream os;
  switch (t->kind()) {
    case TypeKind::kTensor: {
      auto* tt = static_cast<const TensorTypeNode*>(t.get());
      os << "Tensor[" << ShapeToString(tt->shape) << ", "
         << tt->dtype.ToString() << "]";
      break;
    }
    case TypeKind::kTuple: {
      auto* tt = static_cast<const TupleTypeNode*>(t.get());
      os << "(";
      for (size_t i = 0; i < tt->fields.size(); ++i) {
        if (i) os << ", ";
        os << TypeToString(tt->fields[i]);
      }
      os << ")";
      break;
    }
    case TypeKind::kFunc: {
      auto* ft = static_cast<const FuncTypeNode*>(t.get());
      os << "fn(";
      for (size_t i = 0; i < ft->params.size(); ++i) {
        if (i) os << ", ";
        os << TypeToString(ft->params[i]);
      }
      os << ") -> " << TypeToString(ft->ret);
      break;
    }
    case TypeKind::kADT:
      os << static_cast<const ADTTypeNode*>(t.get())->name;
      break;
  }
  return os.str();
}

bool HasDynamicShape(const Type& t) {
  if (t == nullptr) return false;
  switch (t->kind()) {
    case TypeKind::kTensor: {
      auto* tt = static_cast<const TensorTypeNode*>(t.get());
      return !tt->IsFullyStatic();
    }
    case TypeKind::kTuple: {
      auto* tt = static_cast<const TupleTypeNode*>(t.get());
      for (const Type& f : tt->fields)
        if (HasDynamicShape(f)) return true;
      return false;
    }
    case TypeKind::kFunc: {
      auto* ft = static_cast<const FuncTypeNode*>(t.get());
      for (const Type& p : ft->params)
        if (HasDynamicShape(p)) return true;
      return HasDynamicShape(ft->ret);
    }
    case TypeKind::kADT:
      return false;
  }
  return false;
}

}  // namespace ir
}  // namespace nimble
