#include "src/ir/expr.h"

#include <sstream>

namespace nimble {
namespace ir {

std::string Attrs::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : map_) {
    if (!first) os << ", ";
    first = false;
    os << key << "=";
    std::visit(
        [&os](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, std::vector<int64_t>>) {
            os << "[";
            for (size_t i = 0; i < v.size(); ++i) {
              if (i) os << ",";
              os << v[i];
            }
            os << "]";
          } else {
            os << v;
          }
        },
        value);
  }
  os << "}";
  return os.str();
}

Var MakeVar(std::string name, Type type) {
  return std::make_shared<VarNode>(std::move(name), std::move(type));
}

GlobalVar MakeGlobalVar(std::string name) {
  return std::make_shared<GlobalVarNode>(std::move(name));
}

Expr MakeConstant(runtime::NDArray data) {
  return std::make_shared<ConstantNode>(std::move(data));
}

Expr MakeTuple(std::vector<Expr> fields) {
  return std::make_shared<TupleNode>(std::move(fields));
}

Expr MakeTupleGetItem(Expr tuple, int index) {
  return std::make_shared<TupleGetItemNode>(std::move(tuple), index);
}

Expr MakeCall(Expr op, std::vector<Expr> args, Attrs attrs) {
  return std::make_shared<CallNode>(std::move(op), std::move(args), std::move(attrs));
}

Function MakeFunction(std::vector<Var> params, Expr body, Type ret_type) {
  return std::make_shared<FunctionNode>(std::move(params), std::move(body),
                                        std::move(ret_type));
}

Expr MakeLet(Var var, Expr value, Expr body) {
  return std::make_shared<LetNode>(std::move(var), std::move(value), std::move(body));
}

Expr MakeIf(Expr cond, Expr then_branch, Expr else_branch) {
  return std::make_shared<IfNode>(std::move(cond), std::move(then_branch),
                                  std::move(else_branch));
}

Expr MakeMatch(Expr data, std::vector<MatchClause> clauses) {
  return std::make_shared<MatchNode>(std::move(data), std::move(clauses));
}

Expr FloatConst(float value) {
  return MakeConstant(runtime::NDArray::Scalar<float>(value));
}

Expr IntConst(int64_t value) {
  return MakeConstant(runtime::NDArray::Scalar<int64_t>(value));
}

Expr BoolConst(bool value) {
  auto arr = runtime::NDArray::Empty({}, runtime::DataType::Bool());
  *static_cast<uint8_t*>(arr.raw_data()) = value ? 1 : 0;
  return MakeConstant(std::move(arr));
}

namespace {
template <typename NodeT>
const NodeT* Downcast(const Expr& e, ExprKind kind, const char* what) {
  NIMBLE_CHECK(e != nullptr) << "null expr where " << what << " expected";
  NIMBLE_CHECK(e->kind() == kind)
      << "expected " << what << ", got expr kind " << static_cast<int>(e->kind());
  return static_cast<const NodeT*>(e.get());
}
}  // namespace

const VarNode* AsVar(const Expr& e) { return Downcast<VarNode>(e, ExprKind::kVar, "Var"); }
const GlobalVarNode* AsGlobalVar(const Expr& e) {
  return Downcast<GlobalVarNode>(e, ExprKind::kGlobalVar, "GlobalVar");
}
const ConstantNode* AsConstant(const Expr& e) {
  return Downcast<ConstantNode>(e, ExprKind::kConstant, "Constant");
}
const TupleNode* AsTupleExpr(const Expr& e) {
  return Downcast<TupleNode>(e, ExprKind::kTuple, "Tuple");
}
const CallNode* AsCall(const Expr& e) { return Downcast<CallNode>(e, ExprKind::kCall, "Call"); }
const FunctionNode* AsFunction(const Expr& e) {
  return Downcast<FunctionNode>(e, ExprKind::kFunction, "Function");
}
const LetNode* AsLet(const Expr& e) { return Downcast<LetNode>(e, ExprKind::kLet, "Let"); }
const IfNode* AsIf(const Expr& e) { return Downcast<IfNode>(e, ExprKind::kIf, "If"); }
const MatchNode* AsMatch(const Expr& e) {
  return Downcast<MatchNode>(e, ExprKind::kMatch, "Match");
}
const OpNode* AsOp(const Expr& e) { return Downcast<OpNode>(e, ExprKind::kOp, "Op"); }
const ConstructorNode* AsConstructor(const Expr& e) {
  return Downcast<ConstructorNode>(e, ExprKind::kConstructor, "Constructor");
}

bool IsCallToOp(const Expr& e, const std::string& op_name) {
  if (e == nullptr || e->kind() != ExprKind::kCall) return false;
  const auto* call = static_cast<const CallNode*>(e.get());
  if (call->op == nullptr || call->op->kind() != ExprKind::kOp) return false;
  return static_cast<const OpNode*>(call->op.get())->name == op_name;
}

}  // namespace ir
}  // namespace nimble
