#include "src/ir/module.h"

#include <sstream>

#include "src/ir/printer.h"

namespace nimble {
namespace ir {

GlobalVar Module::Add(const std::string& name, Function fn) {
  functions_[name] = std::move(fn);
  return MakeGlobalVar(name);
}

Function Module::Lookup(const std::string& name) const {
  auto it = functions_.find(name);
  NIMBLE_CHECK(it != functions_.end()) << "no global function named '" << name << "'";
  return it->second;
}

GlobalVar Module::GetGlobalVar(const std::string& name) const {
  NIMBLE_CHECK(functions_.count(name) > 0)
      << "no global function named '" << name << "'";
  return MakeGlobalVar(name);
}

void Module::Update(const std::string& name, Function fn) {
  NIMBLE_CHECK(functions_.count(name) > 0)
      << "Update of unknown global '" << name << "'";
  functions_[name] = std::move(fn);
}

const TypeData& Module::DefineADT(
    const std::string& name,
    const std::vector<std::pair<std::string, std::vector<Type>>>& ctors) {
  NIMBLE_CHECK(adts_.count(name) == 0) << "ADT '" << name << "' already defined";
  TypeData data;
  data.name = name;
  uint32_t tag = 0;
  for (const auto& [ctor_name, fields] : ctors) {
    data.constructors.push_back(std::make_shared<ConstructorNode>(
        name, ctor_name, tag++, fields));
  }
  auto [it, ok] = adts_.emplace(name, std::move(data));
  (void)ok;
  return it->second;
}

const TypeData& Module::LookupADT(const std::string& name) const {
  auto it = adts_.find(name);
  NIMBLE_CHECK(it != adts_.end()) << "no ADT named '" << name << "'";
  return it->second;
}

Constructor Module::LookupConstructor(const std::string& adt_name,
                                      const std::string& ctor_name) const {
  const TypeData& data = LookupADT(adt_name);
  for (const Constructor& c : data.constructors) {
    if (c->name == ctor_name) return c;
  }
  NIMBLE_FATAL() << "ADT '" << adt_name << "' has no constructor '" << ctor_name << "'";
}

std::string Module::ToString() const {
  std::ostringstream os;
  for (const auto& [name, data] : adts_) {
    os << "type " << name << " = ";
    for (size_t i = 0; i < data.constructors.size(); ++i) {
      if (i) os << " | ";
      const Constructor& c = data.constructors[i];
      os << c->name;
      if (!c->field_types.empty()) {
        os << "(";
        for (size_t j = 0; j < c->field_types.size(); ++j) {
          if (j) os << ", ";
          os << TypeToString(c->field_types[j]);
        }
        os << ")";
      }
    }
    os << "\n";
  }
  for (const auto& [name, fn] : functions_) {
    os << "def @" << name << PrintExpr(fn, /*skip_fn_keyword=*/true) << "\n";
  }
  return os.str();
}

}  // namespace ir
}  // namespace nimble
