#include "src/ir/visitor.h"

#include <functional>

namespace nimble {
namespace ir {

void ExprVisitor::Visit(const Expr& e) {
  if (e == nullptr) return;
  if (!visited_.insert(e.get()).second) return;
  switch (e->kind()) {
    case ExprKind::kVar: VisitVar_(static_cast<const VarNode*>(e.get())); break;
    case ExprKind::kGlobalVar:
      VisitGlobalVar_(static_cast<const GlobalVarNode*>(e.get()));
      break;
    case ExprKind::kConstant:
      VisitConstant_(static_cast<const ConstantNode*>(e.get()));
      break;
    case ExprKind::kOp: VisitOp_(static_cast<const OpNode*>(e.get())); break;
    case ExprKind::kConstructor:
      VisitConstructor_(static_cast<const ConstructorNode*>(e.get()));
      break;
    case ExprKind::kTuple: VisitTuple_(static_cast<const TupleNode*>(e.get())); break;
    case ExprKind::kTupleGetItem:
      VisitTupleGetItem_(static_cast<const TupleGetItemNode*>(e.get()));
      break;
    case ExprKind::kCall: VisitCall_(static_cast<const CallNode*>(e.get())); break;
    case ExprKind::kFunction:
      VisitFunction_(static_cast<const FunctionNode*>(e.get()));
      break;
    case ExprKind::kLet: VisitLet_(static_cast<const LetNode*>(e.get())); break;
    case ExprKind::kIf: VisitIf_(static_cast<const IfNode*>(e.get())); break;
    case ExprKind::kMatch: VisitMatch_(static_cast<const MatchNode*>(e.get())); break;
  }
}

void ExprVisitor::VisitTuple_(const TupleNode* node) {
  for (const Expr& f : node->fields) Visit(f);
}
void ExprVisitor::VisitTupleGetItem_(const TupleGetItemNode* node) {
  Visit(node->tuple);
}
void ExprVisitor::VisitCall_(const CallNode* node) {
  Visit(node->op);
  for (const Expr& a : node->args) Visit(a);
}
void ExprVisitor::VisitFunction_(const FunctionNode* node) {
  for (const Var& p : node->params) Visit(p);
  Visit(node->body);
}
void ExprVisitor::VisitLet_(const LetNode* node) {
  Visit(node->var);
  Visit(node->value);
  Visit(node->body);
}
void ExprVisitor::VisitIf_(const IfNode* node) {
  Visit(node->cond);
  Visit(node->then_branch);
  Visit(node->else_branch);
}
void ExprVisitor::VisitMatch_(const MatchNode* node) {
  Visit(node->data);
  for (const MatchClause& c : node->clauses) {
    for (const Var& b : c.binds) Visit(b);
    Visit(c.body);
  }
}

Expr ExprMutator::Mutate(const Expr& e) {
  if (e == nullptr) return e;
  auto it = memo_.find(e.get());
  if (it != memo_.end()) return it->second;
  Expr result;
  switch (e->kind()) {
    case ExprKind::kVar:
      result = MutateVar_(static_cast<const VarNode*>(e.get()), e);
      break;
    case ExprKind::kGlobalVar:
      result = MutateGlobalVar_(static_cast<const GlobalVarNode*>(e.get()), e);
      break;
    case ExprKind::kConstant:
      result = MutateConstant_(static_cast<const ConstantNode*>(e.get()), e);
      break;
    case ExprKind::kOp:
      result = MutateOp_(static_cast<const OpNode*>(e.get()), e);
      break;
    case ExprKind::kConstructor:
      result = MutateConstructor_(static_cast<const ConstructorNode*>(e.get()), e);
      break;
    case ExprKind::kTuple:
      result = MutateTuple_(static_cast<const TupleNode*>(e.get()), e);
      break;
    case ExprKind::kTupleGetItem:
      result = MutateTupleGetItem_(static_cast<const TupleGetItemNode*>(e.get()), e);
      break;
    case ExprKind::kCall:
      result = MutateCall_(static_cast<const CallNode*>(e.get()), e);
      break;
    case ExprKind::kFunction:
      result = MutateFunction_(static_cast<const FunctionNode*>(e.get()), e);
      break;
    case ExprKind::kLet:
      result = MutateLet_(static_cast<const LetNode*>(e.get()), e);
      break;
    case ExprKind::kIf:
      result = MutateIf_(static_cast<const IfNode*>(e.get()), e);
      break;
    case ExprKind::kMatch:
      result = MutateMatch_(static_cast<const MatchNode*>(e.get()), e);
      break;
  }
  memo_[e.get()] = result;
  return result;
}

Expr ExprMutator::MutateTuple_(const TupleNode* node, const Expr& e) {
  std::vector<Expr> fields;
  bool changed = false;
  fields.reserve(node->fields.size());
  for (const Expr& f : node->fields) {
    Expr nf = Mutate(f);
    changed |= (nf != f);
    fields.push_back(std::move(nf));
  }
  return changed ? MakeTuple(std::move(fields)) : e;
}

Expr ExprMutator::MutateTupleGetItem_(const TupleGetItemNode* node, const Expr& e) {
  Expr tuple = Mutate(node->tuple);
  return tuple == node->tuple ? e : MakeTupleGetItem(std::move(tuple), node->index);
}

Expr ExprMutator::MutateCall_(const CallNode* node, const Expr& e) {
  Expr op = Mutate(node->op);
  std::vector<Expr> args;
  bool changed = (op != node->op);
  args.reserve(node->args.size());
  for (const Expr& a : node->args) {
    Expr na = Mutate(a);
    changed |= (na != a);
    args.push_back(std::move(na));
  }
  return changed ? MakeCall(std::move(op), std::move(args), node->attrs) : e;
}

Expr ExprMutator::MutateFunction_(const FunctionNode* node, const Expr& e) {
  std::vector<Var> params;
  bool changed = false;
  params.reserve(node->params.size());
  for (const Var& p : node->params) {
    Expr np = Mutate(p);
    NIMBLE_ICHECK(np->kind() == ExprKind::kVar) << "param must mutate to var";
    changed |= (np != p);
    params.push_back(std::static_pointer_cast<const VarNode>(np));
  }
  Expr body = Mutate(node->body);
  changed |= (body != node->body);
  return changed ? MakeFunction(std::move(params), std::move(body), node->ret_type)
                 : e;
}

Expr ExprMutator::MutateLet_(const LetNode* node, const Expr& e) {
  Expr var = Mutate(node->var);
  NIMBLE_ICHECK(var->kind() == ExprKind::kVar) << "let binder must mutate to var";
  Expr value = Mutate(node->value);
  Expr body = Mutate(node->body);
  if (var == node->var && value == node->value && body == node->body) return e;
  return MakeLet(std::static_pointer_cast<const VarNode>(var), std::move(value),
                 std::move(body));
}

Expr ExprMutator::MutateIf_(const IfNode* node, const Expr& e) {
  Expr cond = Mutate(node->cond);
  Expr t = Mutate(node->then_branch);
  Expr f = Mutate(node->else_branch);
  if (cond == node->cond && t == node->then_branch && f == node->else_branch) return e;
  return MakeIf(std::move(cond), std::move(t), std::move(f));
}

Expr ExprMutator::MutateMatch_(const MatchNode* node, const Expr& e) {
  Expr data = Mutate(node->data);
  bool changed = (data != node->data);
  std::vector<MatchClause> clauses;
  clauses.reserve(node->clauses.size());
  for (const MatchClause& c : node->clauses) {
    MatchClause nc;
    nc.ctor = c.ctor;
    for (const Var& b : c.binds) {
      Expr nb = Mutate(b);
      NIMBLE_ICHECK(nb->kind() == ExprKind::kVar);
      changed |= (nb != b);
      nc.binds.push_back(std::static_pointer_cast<const VarNode>(nb));
    }
    nc.body = Mutate(c.body);
    changed |= (nc.body != c.body);
    clauses.push_back(std::move(nc));
  }
  return changed ? MakeMatch(std::move(data), std::move(clauses)) : e;
}

namespace {
class PostOrderVisitor : public ExprVisitor {
 public:
  explicit PostOrderVisitor(const std::function<void(const Expr&)>& fn) : fn_(fn) {}

  void VisitAll(const Expr& e) { VisitExprRec(e); }

 private:
  void VisitExprRec(const Expr& e) {
    if (e == nullptr || !seen_.insert(e.get()).second) return;
    switch (e->kind()) {
      case ExprKind::kTuple:
        for (const Expr& f : static_cast<const TupleNode*>(e.get())->fields)
          VisitExprRec(f);
        break;
      case ExprKind::kTupleGetItem:
        VisitExprRec(static_cast<const TupleGetItemNode*>(e.get())->tuple);
        break;
      case ExprKind::kCall: {
        auto* c = static_cast<const CallNode*>(e.get());
        VisitExprRec(c->op);
        for (const Expr& a : c->args) VisitExprRec(a);
        break;
      }
      case ExprKind::kFunction: {
        auto* f = static_cast<const FunctionNode*>(e.get());
        for (const Var& p : f->params) VisitExprRec(p);
        VisitExprRec(f->body);
        break;
      }
      case ExprKind::kLet: {
        auto* l = static_cast<const LetNode*>(e.get());
        VisitExprRec(l->var);
        VisitExprRec(l->value);
        VisitExprRec(l->body);
        break;
      }
      case ExprKind::kIf: {
        auto* i = static_cast<const IfNode*>(e.get());
        VisitExprRec(i->cond);
        VisitExprRec(i->then_branch);
        VisitExprRec(i->else_branch);
        break;
      }
      case ExprKind::kMatch: {
        auto* m = static_cast<const MatchNode*>(e.get());
        VisitExprRec(m->data);
        for (const MatchClause& c : m->clauses) {
          for (const Var& b : c.binds) VisitExprRec(b);
          VisitExprRec(c.body);
        }
        break;
      }
      default:
        break;
    }
    fn_(e);
  }

  const std::function<void(const Expr&)>& fn_;
  std::unordered_set<const ExprNode*> seen_;
};
}  // namespace

void PostOrderVisit(const Expr& e, const std::function<void(const Expr&)>& fn) {
  PostOrderVisitor(fn).VisitAll(e);
}

namespace {
class FreeVarCollector {
 public:
  void Collect(const Expr& e) {
    if (e == nullptr) return;
    switch (e->kind()) {
      case ExprKind::kVar: {
        const auto* v = static_cast<const VarNode*>(e.get());
        if (!bound_.count(v) && !seen_free_.count(v)) {
          seen_free_.insert(v);
          free_.push_back(std::static_pointer_cast<const VarNode>(e));
        }
        break;
      }
      case ExprKind::kTuple:
        for (const Expr& f : static_cast<const TupleNode*>(e.get())->fields)
          Collect(f);
        break;
      case ExprKind::kTupleGetItem:
        Collect(static_cast<const TupleGetItemNode*>(e.get())->tuple);
        break;
      case ExprKind::kCall: {
        auto* c = static_cast<const CallNode*>(e.get());
        Collect(c->op);
        for (const Expr& a : c->args) Collect(a);
        break;
      }
      case ExprKind::kFunction: {
        auto* f = static_cast<const FunctionNode*>(e.get());
        std::vector<const VarNode*> newly;
        for (const Var& p : f->params) {
          if (bound_.insert(p.get()).second) newly.push_back(p.get());
        }
        Collect(f->body);
        for (const VarNode* v : newly) bound_.erase(v);
        break;
      }
      case ExprKind::kLet: {
        auto* l = static_cast<const LetNode*>(e.get());
        Collect(l->value);
        bool fresh = bound_.insert(l->var.get()).second;
        Collect(l->body);
        if (fresh) bound_.erase(l->var.get());
        break;
      }
      case ExprKind::kIf: {
        auto* i = static_cast<const IfNode*>(e.get());
        Collect(i->cond);
        Collect(i->then_branch);
        Collect(i->else_branch);
        break;
      }
      case ExprKind::kMatch: {
        auto* m = static_cast<const MatchNode*>(e.get());
        Collect(m->data);
        for (const MatchClause& c : m->clauses) {
          std::vector<const VarNode*> newly;
          for (const Var& b : c.binds) {
            if (bound_.insert(b.get()).second) newly.push_back(b.get());
          }
          Collect(c.body);
          for (const VarNode* v : newly) bound_.erase(v);
        }
        break;
      }
      default:
        break;
    }
  }

  std::vector<Var> free_;

 private:
  std::unordered_set<const VarNode*> bound_;
  std::unordered_set<const VarNode*> seen_free_;
};
}  // namespace

std::vector<Var> FreeVars(const Expr& e) {
  FreeVarCollector collector;
  collector.Collect(e);
  return std::move(collector.free_);
}

}  // namespace ir
}  // namespace nimble
