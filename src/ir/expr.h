// Expressions of the Nimble IR — a Relay-style functional IR with tensors,
// tuples, let-bindings, control flow, recursion, closures, and algebraic
// data types (needed for dynamic data structures such as Tree-LSTM trees).
//
// Expression nodes are immutable after construction except for the
// `checked_type` annotation filled in by type inference and the `device`
// annotation filled in by device placement.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/attrs.h"
#include "src/ir/type.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/object.h"

namespace nimble {
namespace ir {

enum class ExprKind : uint8_t {
  kVar = 0,
  kGlobalVar,
  kConstant,
  kTuple,
  kTupleGetItem,
  kCall,
  kFunction,
  kLet,
  kIf,
  kMatch,
  kOp,           // reference to a registered primitive operator
  kConstructor,  // reference to an ADT constructor
};

class ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

class ExprNode {
 public:
  explicit ExprNode(ExprKind kind) : kind_(kind) {}
  virtual ~ExprNode() = default;
  ExprKind kind() const { return kind_; }

  /// Filled by the TypeInfer pass.
  mutable Type checked_type;
  /// Filled by the DevicePlacement pass; nullopt = unconstrained.
  mutable std::optional<runtime::Device> device;

 private:
  ExprKind kind_;
};

class VarNode : public ExprNode {
 public:
  VarNode(std::string name, Type type_annotation)
      : ExprNode(ExprKind::kVar), name(std::move(name)),
        type_annotation(std::move(type_annotation)) {}
  std::string name;
  Type type_annotation;  // may be null for let-bound vars
};
using Var = std::shared_ptr<const VarNode>;

class GlobalVarNode : public ExprNode {
 public:
  explicit GlobalVarNode(std::string name)
      : ExprNode(ExprKind::kGlobalVar), name(std::move(name)) {}
  std::string name;
};
using GlobalVar = std::shared_ptr<const GlobalVarNode>;

class ConstantNode : public ExprNode {
 public:
  explicit ConstantNode(runtime::NDArray data)
      : ExprNode(ExprKind::kConstant), data(std::move(data)) {}
  runtime::NDArray data;
};

class TupleNode : public ExprNode {
 public:
  explicit TupleNode(std::vector<Expr> fields)
      : ExprNode(ExprKind::kTuple), fields(std::move(fields)) {}
  std::vector<Expr> fields;
};

class TupleGetItemNode : public ExprNode {
 public:
  TupleGetItemNode(Expr tuple, int index)
      : ExprNode(ExprKind::kTupleGetItem), tuple(std::move(tuple)), index(index) {}
  Expr tuple;
  int index;
};

/// Reference to a registered primitive operator; interned by name via
/// Op::Get in src/op/registry.h.
class OpNode : public ExprNode {
 public:
  explicit OpNode(std::string name)
      : ExprNode(ExprKind::kOp), name(std::move(name)) {}
  std::string name;
};
using Op = std::shared_ptr<const OpNode>;

/// Reference to an ADT constructor (e.g. Leaf / Node of Tree).
class ConstructorNode : public ExprNode {
 public:
  ConstructorNode(std::string adt_name, std::string name, uint32_t tag,
                  std::vector<Type> field_types)
      : ExprNode(ExprKind::kConstructor), adt_name(std::move(adt_name)),
        name(std::move(name)), tag(tag), field_types(std::move(field_types)) {}
  std::string adt_name;
  std::string name;
  uint32_t tag;
  std::vector<Type> field_types;
};
using Constructor = std::shared_ptr<const ConstructorNode>;

class CallNode : public ExprNode {
 public:
  CallNode(Expr op, std::vector<Expr> args, Attrs attrs = Attrs())
      : ExprNode(ExprKind::kCall), op(std::move(op)), args(std::move(args)),
        attrs(std::move(attrs)) {}
  Expr op;  // OpNode, GlobalVarNode, VarNode (closure), Constructor or Function
  std::vector<Expr> args;
  Attrs attrs;
};

class FunctionNode : public ExprNode {
 public:
  FunctionNode(std::vector<Var> params, Expr body, Type ret_type)
      : ExprNode(ExprKind::kFunction), params(std::move(params)),
        body(std::move(body)), ret_type(std::move(ret_type)) {}
  std::vector<Var> params;
  Expr body;
  Type ret_type;  // may be null => inferred
};
using Function = std::shared_ptr<const FunctionNode>;

class LetNode : public ExprNode {
 public:
  LetNode(Var var, Expr value, Expr body)
      : ExprNode(ExprKind::kLet), var(std::move(var)), value(std::move(value)),
        body(std::move(body)) {}
  Var var;
  Expr value;
  Expr body;
};

class IfNode : public ExprNode {
 public:
  IfNode(Expr cond, Expr then_branch, Expr else_branch)
      : ExprNode(ExprKind::kIf), cond(std::move(cond)),
        then_branch(std::move(then_branch)), else_branch(std::move(else_branch)) {}
  Expr cond;
  Expr then_branch;
  Expr else_branch;
};

/// One arm of a Match: matches constructor `ctor`, binding its fields to
/// `binds` in `body`. A null ctor is the wildcard pattern.
struct MatchClause {
  Constructor ctor;
  std::vector<Var> binds;
  Expr body;
};

class MatchNode : public ExprNode {
 public:
  MatchNode(Expr data, std::vector<MatchClause> clauses)
      : ExprNode(ExprKind::kMatch), data(std::move(data)),
        clauses(std::move(clauses)) {}
  Expr data;
  std::vector<MatchClause> clauses;
};

// ---- constructor helpers ---------------------------------------------------

Var MakeVar(std::string name, Type type = nullptr);
GlobalVar MakeGlobalVar(std::string name);
Expr MakeConstant(runtime::NDArray data);
Expr MakeTuple(std::vector<Expr> fields);
Expr MakeTupleGetItem(Expr tuple, int index);
Expr MakeCall(Expr op, std::vector<Expr> args, Attrs attrs = Attrs());
Function MakeFunction(std::vector<Var> params, Expr body, Type ret_type = nullptr);
Expr MakeLet(Var var, Expr value, Expr body);
Expr MakeIf(Expr cond, Expr then_branch, Expr else_branch);
Expr MakeMatch(Expr data, std::vector<MatchClause> clauses);

/// Scalar float32 / int64 constants, used pervasively by model builders.
Expr FloatConst(float value);
Expr IntConst(int64_t value);
Expr BoolConst(bool value);

// ---- checked downcasts -----------------------------------------------------

const VarNode* AsVar(const Expr& e);
const GlobalVarNode* AsGlobalVar(const Expr& e);
const ConstantNode* AsConstant(const Expr& e);
const TupleNode* AsTupleExpr(const Expr& e);
const CallNode* AsCall(const Expr& e);
const FunctionNode* AsFunction(const Expr& e);
const LetNode* AsLet(const Expr& e);
const IfNode* AsIf(const Expr& e);
const MatchNode* AsMatch(const Expr& e);
const OpNode* AsOp(const Expr& e);
const ConstructorNode* AsConstructor(const Expr& e);

/// True if `e` is a Call whose callee is the named primitive op.
bool IsCallToOp(const Expr& e, const std::string& op_name);

}  // namespace ir
}  // namespace nimble
