#include "src/ir/printer.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace nimble {
namespace ir {

namespace {

class Printer {
 public:
  std::string Print(const Expr& e, bool skip_fn_keyword) {
    skip_fn_keyword_ = skip_fn_keyword;
    std::ostringstream os;
    PrintExprTo(e, os, 0);
    return os.str();
  }

 private:
  std::string NameOf(const VarNode* v) {
    auto it = names_.find(v);
    if (it != names_.end()) return it->second;
    std::string base = v->name.empty() ? "v" + std::to_string(counter_++) : v->name;
    // Disambiguate textual collisions between distinct var nodes.
    if (used_names_.count(base)) {
      base += "_" + std::to_string(counter_++);
    }
    used_names_.insert(base);
    names_[v] = base;
    return base;
  }

  void Indent(std::ostringstream& os, int depth) {
    for (int i = 0; i < depth; ++i) os << "  ";
  }

  void PrintExprTo(const Expr& e, std::ostringstream& os, int depth) {
    if (e == nullptr) {
      os << "<null>";
      return;
    }
    switch (e->kind()) {
      case ExprKind::kVar:
        os << "%" << NameOf(static_cast<const VarNode*>(e.get()));
        break;
      case ExprKind::kGlobalVar:
        os << "@" << static_cast<const GlobalVarNode*>(e.get())->name;
        break;
      case ExprKind::kConstant: {
        const auto& data = static_cast<const ConstantNode*>(e.get())->data;
        if (data.ndim() == 0) {
          os << "const(" << data.ToString(1) << ")";
        } else {
          os << "const<" << runtime::ShapeToString(data.shape()) << ", "
             << data.dtype().ToString() << ">";
        }
        break;
      }
      case ExprKind::kOp:
        os << static_cast<const OpNode*>(e.get())->name;
        break;
      case ExprKind::kConstructor:
        os << static_cast<const ConstructorNode*>(e.get())->name;
        break;
      case ExprKind::kTuple: {
        auto* t = static_cast<const TupleNode*>(e.get());
        os << "(";
        for (size_t i = 0; i < t->fields.size(); ++i) {
          if (i) os << ", ";
          PrintExprTo(t->fields[i], os, depth);
        }
        if (t->fields.size() == 1) os << ",";
        os << ")";
        break;
      }
      case ExprKind::kTupleGetItem: {
        auto* t = static_cast<const TupleGetItemNode*>(e.get());
        PrintExprTo(t->tuple, os, depth);
        os << "." << t->index;
        break;
      }
      case ExprKind::kCall: {
        auto* c = static_cast<const CallNode*>(e.get());
        PrintExprTo(c->op, os, depth);
        os << "(";
        for (size_t i = 0; i < c->args.size(); ++i) {
          if (i) os << ", ";
          PrintExprTo(c->args[i], os, depth);
        }
        os << ")";
        if (!c->attrs.empty()) os << " /* " << c->attrs.ToString() << " */";
        break;
      }
      case ExprKind::kFunction: {
        auto* f = static_cast<const FunctionNode*>(e.get());
        if (!skip_fn_keyword_) os << "fn";
        skip_fn_keyword_ = false;
        os << "(";
        for (size_t i = 0; i < f->params.size(); ++i) {
          if (i) os << ", ";
          os << "%" << NameOf(f->params[i].get());
          Type t = f->params[i]->type_annotation
                       ? f->params[i]->type_annotation
                       : f->params[i]->checked_type;
          if (t) os << ": " << TypeToString(t);
        }
        os << ")";
        if (f->ret_type) os << " -> " << TypeToString(f->ret_type);
        os << " {\n";
        Indent(os, depth + 1);
        PrintExprTo(f->body, os, depth + 1);
        os << "\n";
        Indent(os, depth);
        os << "}";
        break;
      }
      case ExprKind::kLet: {
        auto* l = static_cast<const LetNode*>(e.get());
        os << "let %" << NameOf(l->var.get());
        if (l->var->checked_type) os << ": " << TypeToString(l->var->checked_type);
        os << " = ";
        PrintExprTo(l->value, os, depth);
        os << ";\n";
        Indent(os, depth);
        PrintExprTo(l->body, os, depth);
        break;
      }
      case ExprKind::kIf: {
        auto* i = static_cast<const IfNode*>(e.get());
        os << "if (";
        PrintExprTo(i->cond, os, depth);
        os << ") {\n";
        Indent(os, depth + 1);
        PrintExprTo(i->then_branch, os, depth + 1);
        os << "\n";
        Indent(os, depth);
        os << "} else {\n";
        Indent(os, depth + 1);
        PrintExprTo(i->else_branch, os, depth + 1);
        os << "\n";
        Indent(os, depth);
        os << "}";
        break;
      }
      case ExprKind::kMatch: {
        auto* m = static_cast<const MatchNode*>(e.get());
        os << "match (";
        PrintExprTo(m->data, os, depth);
        os << ") {\n";
        for (const MatchClause& c : m->clauses) {
          Indent(os, depth + 1);
          if (c.ctor == nullptr) {
            os << "_";
          } else {
            os << c.ctor->name;
            if (!c.binds.empty()) {
              os << "(";
              for (size_t i = 0; i < c.binds.size(); ++i) {
                if (i) os << ", ";
                os << "%" << NameOf(c.binds[i].get());
              }
              os << ")";
            }
          }
          os << " => ";
          PrintExprTo(c.body, os, depth + 1);
          os << ",\n";
        }
        Indent(os, depth);
        os << "}";
        break;
      }
    }
  }

  std::unordered_map<const VarNode*, std::string> names_;
  std::unordered_set<std::string> used_names_;
  int counter_ = 0;
  bool skip_fn_keyword_ = false;
};

}  // namespace

std::string PrintExpr(const Expr& e, bool skip_fn_keyword) {
  return Printer().Print(e, skip_fn_keyword);
}

}  // namespace ir
}  // namespace nimble
