// Expression traversal infrastructure: read-only visitor and rewriting
// mutator, both memoized on node identity so shared subgraphs are processed
// once (the IR is a DAG under let-sharing).
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "src/ir/expr.h"

namespace nimble {
namespace ir {

/// Read-only traversal. Subclasses override the Visit_ hooks they care
/// about; the default implementations recurse into children.
class ExprVisitor {
 public:
  virtual ~ExprVisitor() = default;

  void Visit(const Expr& e);

 protected:
  virtual void VisitVar_(const VarNode* node) {}
  virtual void VisitGlobalVar_(const GlobalVarNode* node) {}
  virtual void VisitConstant_(const ConstantNode* node) {}
  virtual void VisitOp_(const OpNode* node) {}
  virtual void VisitConstructor_(const ConstructorNode* node) {}
  virtual void VisitTuple_(const TupleNode* node);
  virtual void VisitTupleGetItem_(const TupleGetItemNode* node);
  virtual void VisitCall_(const CallNode* node);
  virtual void VisitFunction_(const FunctionNode* node);
  virtual void VisitLet_(const LetNode* node);
  virtual void VisitIf_(const IfNode* node);
  virtual void VisitMatch_(const MatchNode* node);

 private:
  std::unordered_set<const ExprNode*> visited_;
};

/// Rewriting traversal. Mutate() returns a (possibly) new expression;
/// unchanged subtrees are returned as-is (pointer-identical), so passes can
/// cheaply detect "no change".
class ExprMutator {
 public:
  virtual ~ExprMutator() = default;

  Expr Mutate(const Expr& e);

 protected:
  virtual Expr MutateVar_(const VarNode* node, const Expr& e) { return e; }
  virtual Expr MutateGlobalVar_(const GlobalVarNode* node, const Expr& e) { return e; }
  virtual Expr MutateConstant_(const ConstantNode* node, const Expr& e) { return e; }
  virtual Expr MutateOp_(const OpNode* node, const Expr& e) { return e; }
  virtual Expr MutateConstructor_(const ConstructorNode* node, const Expr& e) { return e; }
  virtual Expr MutateTuple_(const TupleNode* node, const Expr& e);
  virtual Expr MutateTupleGetItem_(const TupleGetItemNode* node, const Expr& e);
  virtual Expr MutateCall_(const CallNode* node, const Expr& e);
  virtual Expr MutateFunction_(const FunctionNode* node, const Expr& e);
  virtual Expr MutateLet_(const LetNode* node, const Expr& e);
  virtual Expr MutateIf_(const IfNode* node, const Expr& e);
  virtual Expr MutateMatch_(const MatchNode* node, const Expr& e);

  /// Clears the memo table (needed when the same mutator instance is applied
  /// to multiple functions with incompatible variable scopes).
  void ClearMemo() { memo_.clear(); }

 private:
  std::unordered_map<const ExprNode*, Expr> memo_;
};

/// Calls `fn` on every node of `e` in post-order.
void PostOrderVisit(const Expr& e, const std::function<void(const Expr&)>& fn);

/// Collects the free variables of `e` in first-occurrence order.
std::vector<Var> FreeVars(const Expr& e);

}  // namespace ir
}  // namespace nimble
