// Call attributes: a small, serializable key → value map attached to
// operator calls (axis of a softmax, units of a dense, target device of an
// alloc_storage, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "src/runtime/device.h"
#include "src/runtime/dtype.h"
#include "src/support/logging.h"

namespace nimble {
namespace ir {

using AttrValue = std::variant<int64_t, double, std::string, std::vector<int64_t>>;

class Attrs {
 public:
  Attrs() = default;

  Attrs& Set(const std::string& key, int64_t v) { map_[key] = v; return *this; }
  Attrs& Set(const std::string& key, int v) { map_[key] = static_cast<int64_t>(v); return *this; }
  Attrs& Set(const std::string& key, double v) { map_[key] = v; return *this; }
  Attrs& Set(const std::string& key, std::string v) { map_[key] = std::move(v); return *this; }
  Attrs& Set(const std::string& key, std::vector<int64_t> v) { map_[key] = std::move(v); return *this; }

  bool Has(const std::string& key) const { return map_.count(key) > 0; }

  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = map_.find(key);
    if (it == map_.end()) return def;
    return std::get<int64_t>(it->second);
  }
  int64_t GetInt(const std::string& key) const {
    NIMBLE_CHECK(Has(key)) << "missing required int attr '" << key << "'";
    return std::get<int64_t>(map_.at(key));
  }
  double GetFloat(const std::string& key, double def) const {
    auto it = map_.find(key);
    if (it == map_.end()) return def;
    return std::get<double>(it->second);
  }
  std::string GetStr(const std::string& key, const std::string& def = "") const {
    auto it = map_.find(key);
    if (it == map_.end()) return def;
    return std::get<std::string>(it->second);
  }
  std::vector<int64_t> GetIntVec(const std::string& key,
                                 std::vector<int64_t> def = {}) const {
    auto it = map_.find(key);
    if (it == map_.end()) return def;
    return std::get<std::vector<int64_t>>(it->second);
  }

  runtime::Device GetDevice(const std::string& key, runtime::Device def) const {
    auto it = map_.find(key);
    if (it == map_.end()) return def;
    const auto& vec = std::get<std::vector<int64_t>>(it->second);
    NIMBLE_CHECK_EQ(vec.size(), 2u);
    return runtime::Device{static_cast<runtime::DeviceType>(vec[0]),
                           static_cast<int>(vec[1])};
  }
  Attrs& SetDevice(const std::string& key, runtime::Device dev) {
    return Set(key, std::vector<int64_t>{static_cast<int64_t>(dev.type),
                                         static_cast<int64_t>(dev.id)});
  }

  const std::map<std::string, AttrValue>& map() const { return map_; }
  bool empty() const { return map_.empty(); }

  bool operator==(const Attrs& o) const { return map_ == o.map_; }

  std::string ToString() const;

 private:
  std::map<std::string, AttrValue> map_;
};

}  // namespace ir
}  // namespace nimble
