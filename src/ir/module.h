// IRModule: the unit of compilation. Holds global functions (mutually
// recursive, enabling loops via tail recursion) and algebraic data type
// definitions (enabling dynamic data structures, §2).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/expr.h"

namespace nimble {
namespace ir {

/// Declaration of an algebraic data type: a name plus its constructors.
/// Example (Tree-LSTM): Tree = Leaf(Tensor[(1,300)]) | Node(Tree, Tree).
struct TypeData {
  std::string name;
  std::vector<Constructor> constructors;
};

class Module {
 public:
  Module() = default;

  /// Adds/replaces a global function under `name` and returns its GlobalVar.
  GlobalVar Add(const std::string& name, Function fn);

  bool HasFunction(const std::string& name) const { return functions_.count(name) > 0; }
  Function Lookup(const std::string& name) const;
  Function Lookup(const GlobalVar& gv) const { return Lookup(gv->name); }
  GlobalVar GetGlobalVar(const std::string& name) const;

  const std::map<std::string, Function>& functions() const { return functions_; }

  /// Replaces the body of an existing global (used by passes).
  void Update(const std::string& name, Function fn);

  /// Declares an ADT with the given constructor (name, field-type) list;
  /// returns the TypeData. Constructor tags are assigned 0..n-1.
  const TypeData& DefineADT(
      const std::string& name,
      const std::vector<std::pair<std::string, std::vector<Type>>>& ctors);

  bool HasADT(const std::string& name) const { return adts_.count(name) > 0; }
  const TypeData& LookupADT(const std::string& name) const;
  Constructor LookupConstructor(const std::string& adt_name,
                                const std::string& ctor_name) const;
  const std::map<std::string, TypeData>& adts() const { return adts_; }

  /// Name of the conventional entry function.
  static constexpr const char* kMainName = "main";

  std::string ToString() const;

 private:
  std::map<std::string, Function> functions_;
  std::map<std::string, TypeData> adts_;
};

using ModulePtr = std::shared_ptr<Module>;

}  // namespace ir
}  // namespace nimble
