#!/usr/bin/env bash
# Fails if any relative markdown link or backtick-quoted path reference in
# the checked docs points at a file that does not exist. Keeps README.md,
# docs/, and ISSUE.md honest as the tree moves underneath them.
set -u
cd "$(dirname "$0")/.."

status=0
docs="README.md ISSUE.md"
[ -d docs ] && docs="$docs $(find docs -name '*.md')"

for doc in $docs; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")

  # Markdown links: [text](target) — relative targets only.
  targets=$(grep -o '](\([^)#]*\))' "$doc" | sed 's/^](//; s/)$//' |
            grep -v '^https\?://' | grep -v '^mailto:' || true)
  # Backtick path references that look like repo files (contain a slash and
  # an extension, e.g. `src/serve/vm_pool.h`, `examples/foo.cpp`).
  paths=$(grep -o '`[A-Za-z0-9_./-]*/[A-Za-z0-9_./-]*\.[a-z]\{1,4\}`' "$doc" |
          tr -d '`' || true)

  for target in $targets; do
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK in $doc: $target"
      status=1
    fi
  done
  for path in $paths; do
    case "$path" in
      build/*) continue ;;  # build artifacts are legitimately absent
    esac
    if [ ! -e "$path" ]; then
      echo "BROKEN PATH REFERENCE in $doc: $path"
      status=1
    fi
  done
done

[ "$status" -eq 0 ] && echo "doc links OK"
exit $status
