#!/usr/bin/env bash
# Holds the observability plane to its contract after an http_loadgen run
# (bench_http_loadgen ... --json [--trace-overhead] must have run in the
# current directory first, leaving BENCH_http.json, METRICS.txt, and
# TRACE.json behind):
#
#   - every expected metric family is present in the /metrics exposition;
#   - the server-side request counters equal the loadgen's own client-side
#     tallies exactly (completed == 200s, rejected == 429s — the metrics
#     plane may not lose or invent a single request);
#   - zero 5xx responses were ever counted;
#   - the /debug/trace export is valid chrome-trace JSON with at least one
#     complete trace (6 spans);
#   - when --trace-overhead ran: tracing costs <= 3% of peak req/s.
set -eu
for artifact in BENCH_http.json METRICS.txt TRACE.json; do
  if [ ! -s "$artifact" ]; then
    echo "missing or empty artifact: $artifact (run bench_http_loadgen --json first)" >&2
    exit 1
  fi
done

python3 - <<'EOF'
import json
import re
import sys

with open("BENCH_http.json") as f:
    bench = json.load(f)
with open("METRICS.txt") as f:
    metrics = f.read()
with open("TRACE.json") as f:
    trace = json.load(f)

failures = []

# Every family the serving pipeline exports must be present.
families = [
    "nimble_arrivals_total",
    "nimble_requests_total",
    "nimble_http_requests_total",
    "nimble_http_responses_total",
    "nimble_e2e_latency_us",
    "nimble_queue_wait_us",
    "nimble_exec_us",
    "nimble_batch_size",
    "nimble_queue_depth",
]
for family in families:
    if f"# TYPE {family}" not in metrics:
        failures.append(f"family missing from /metrics: {family}")

def series_value(name, labels):
    pattern = re.escape(name) + r"\{" + re.escape(labels) + r"\} (\S+)"
    match = re.search(pattern, metrics)
    return float(match.group(1)) if match else None

# Server-side counters must equal the loadgen's client-side tallies.
http = bench["http"]
completed = series_value("nimble_requests_total",
                         'model="m",outcome="completed"')
rejected = series_value("nimble_requests_total",
                        'model="m",outcome="rejected"')
if completed != http["completed"]:
    failures.append(f"completed counter {completed} != loadgen 200s "
                    f"{http['completed']}")
if rejected != http["rejected_429"]:
    failures.append(f"rejected counter {rejected} != loadgen 429s "
                    f"{http['rejected_429']}")
predict = series_value("nimble_http_requests_total", 'endpoint="predict"')
expected_predicts = http["completed"] + http["rejected_429"]
if predict != expected_predicts:
    failures.append(f"predict endpoint counter {predict} != "
                    f"completed+shed {expected_predicts}")

# No 5xx, ever.
for code_match in re.finditer(
        r'nimble_http_responses_total\{code="(5\d\d)"\} (\d+)', metrics):
    if int(code_match.group(2)) != 0:
        failures.append(f"nonzero {code_match.group(1)} responses: "
                        f"{code_match.group(2)}")

# The trace export holds at least one complete trace.
events = trace.get("traceEvents")
if not isinstance(events, list) or len(events) < 6:
    failures.append(f"/debug/trace export has {0 if not events else len(events)}"
                    " events (need >= 6: one full trace)")
else:
    names = {event.get("name") for event in events}
    expected_spans = {"admission", "queue", "pack", "exec", "unpack", "write"}
    if not expected_spans <= names:
        failures.append(f"trace spans missing: {expected_spans - names}")

# Always-on tracing must stay under its 3% budget when measured.
if "trace_overhead" in bench:
    overhead = bench["trace_overhead"]["overhead_pct"]
    if overhead > 3.0:
        failures.append(f"tracing overhead {overhead:.2f}% exceeds the 3% "
                        "budget")
    else:
        print(f"trace overhead {overhead:.2f}% "
              f"(on {bench['trace_overhead']['rps_on']:.1f} vs off "
              f"{bench['trace_overhead']['rps_off']:.1f} req/s)")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)

print(f"metrics plane consistent: {int(completed)} completed, "
      f"{int(rejected)} shed, zero 5xx, {len(events)} trace events")
EOF
