#!/usr/bin/env bash
# Holds the observability plane to its contract after an http_loadgen run
# (bench_http_loadgen ... --json [--trace-overhead] must have run in the
# current directory first, leaving BENCH_http.json, METRICS.txt,
# TRACE.json, and STEPS.json behind):
#
#   - every expected metric family is present in the /metrics exposition;
#   - the server-side request counters equal the loadgen's own client-side
#     tallies exactly (completed == 200s, rejected == 429s — the metrics
#     plane may not lose or invent a single request), per model: the
#     packed "m" and the continuous "c" are checked separately;
#   - the continuous step accounting balances: splices == completed "c"
#     requests, the active-row histogram sum == the total sequence length
#     the loadgen sent to "c", and steps * slots == active + idle row
#     steps (no row-step invented or lost);
#   - zero 5xx responses were ever counted, and no runner ever stalled;
#   - the /debug/trace export is valid chrome-trace JSON with at least one
#     complete trace (6 spans) and the continuous model's slot timelines;
#   - the /debug/steps export (STEPS.json) is structurally sound and its
#     steps_recorded agrees with nimble_steps_total exactly;
#   - the memory plane holds its post-drain identities: worker live bytes
#     are exactly zero (the CI-level drain-leak sentinel), every copy site
#     on the exercised path recorded traffic, pressure reads 0 under the
#     generous soft limit, and the /debug/memory export (MEMORY.json)
#     agrees with the /metrics exposition byte for byte;
#   - when --trace-overhead ran: telemetry costs <= 3% of peak req/s.
set -eu
for artifact in BENCH_http.json METRICS.txt TRACE.json STEPS.json \
                MEMORY.json; do
  if [ ! -s "$artifact" ]; then
    echo "missing or empty artifact: $artifact (run bench_http_loadgen --json first)" >&2
    exit 1
  fi
done

python3 - <<'EOF'
import json
import re
import sys

with open("BENCH_http.json") as f:
    bench = json.load(f)
with open("METRICS.txt") as f:
    metrics = f.read()
with open("TRACE.json") as f:
    trace = json.load(f)
with open("STEPS.json") as f:
    steps_doc = json.load(f)
with open("MEMORY.json") as f:
    memory_doc = json.load(f)

failures = []

# Every family the serving pipeline exports must be present.
families = [
    "nimble_arrivals_total",
    "nimble_requests_total",
    "nimble_http_requests_total",
    "nimble_http_responses_total",
    "nimble_e2e_latency_us",
    "nimble_queue_wait_us",
    "nimble_exec_us",
    "nimble_batch_size",
    "nimble_queue_depth",
    "nimble_tune_events_total",
    "nimble_kernel_threads_busy",
    "nimble_splices_total",
    "nimble_steps_total",
    "nimble_idle_row_steps_total",
    "nimble_step_duration_us",
    "nimble_splice_wait_us",
    "nimble_active_rows",
    "nimble_runner_stalled",
    "nimble_mem_live_bytes",
    "nimble_mem_peak_bytes",
    "nimble_mem_pressure",
    "nimble_pool_events_total",
    "nimble_copied_bytes_total",
]
for family in families:
    if f"# TYPE {family}" not in metrics:
        failures.append(f"family missing from /metrics: {family}")

def series_value(name, labels):
    pattern = re.escape(name) + r"\{" + re.escape(labels) + r"\} (\S+)"
    match = re.search(pattern, metrics)
    return float(match.group(1)) if match else None

# Server-side counters must equal the loadgen's client-side tallies,
# per model ("m" is the packed path, "c" the continuous path).
http = bench["http"]
cont = bench["continuous"]
completed_m = series_value("nimble_requests_total",
                           'model="m",outcome="completed"')
rejected_m = series_value("nimble_requests_total",
                          'model="m",outcome="rejected"')
completed_c = series_value("nimble_requests_total",
                           'model="c",outcome="completed"')
rejected_c = series_value("nimble_requests_total",
                          'model="c",outcome="rejected"')
if completed_m != http["completed"] - cont["completed"]:
    failures.append(f"packed completed counter {completed_m} != loadgen "
                    f"m-only 200s {http['completed'] - cont['completed']}")
if rejected_m != http["rejected_429"] - cont["rejected_429"]:
    failures.append(f"packed rejected counter {rejected_m} != loadgen "
                    f"m-only 429s "
                    f"{http['rejected_429'] - cont['rejected_429']}")
if completed_c != cont["completed"]:
    failures.append(f"continuous completed counter {completed_c} != "
                    f"loadgen \"c\" 200s {cont['completed']}")
if rejected_c != cont["rejected_429"]:
    failures.append(f"continuous rejected counter {rejected_c} != "
                    f"loadgen \"c\" 429s {cont['rejected_429']}")
predict = series_value("nimble_http_requests_total", 'endpoint="predict"')
expected_predicts = http["completed"] + http["rejected_429"]
if predict != expected_predicts:
    failures.append(f"predict endpoint counter {predict} != "
                    f"completed+shed {expected_predicts}")

# Continuous step accounting. The loadgen scrapes after Drain, so every
# counter has settled and these identities must hold EXACTLY:
#   splices == completed "c" requests (each spliced exactly once);
#   Σ active rows over all steps == total sequence length served (each
#   request holds one row for exactly its own length);
#   steps * slots == active + idle row steps (the fixed-B step loop).
splices = series_value("nimble_splices_total", 'model="c"')
steps_total = series_value("nimble_steps_total", 'model="c"')
idle_rows = series_value("nimble_idle_row_steps_total", 'model="c"')
active_sum = series_value("nimble_active_rows_sum", 'model="c"')
stalled = series_value("nimble_runner_stalled", 'model="c"')
if splices != cont["completed"]:
    failures.append(f"splice counter {splices} != completed \"c\" requests "
                    f"{cont['completed']}")
if steps_total is None or steps_total <= 0:
    failures.append(f"nimble_steps_total{{model=c}} is {steps_total}")
if active_sum != cont["rows"]:
    failures.append(f"active-row sum {active_sum} != loadgen rows "
                    f"{cont['rows']}")
if (steps_total is not None and idle_rows is not None and
        active_sum is not None and
        steps_total * cont["slots"] != active_sum + idle_rows):
    failures.append(f"row-step balance broken: {steps_total} steps * "
                    f"{cont['slots']} slots != {active_sum} active + "
                    f"{idle_rows} idle")
if stalled != 0:
    failures.append(f"nimble_runner_stalled{{model=c}} is {stalled}")

# No 5xx, ever.
for code_match in re.finditer(
        r'nimble_http_responses_total\{code="(5\d\d)"\} (\d+)', metrics):
    if int(code_match.group(2)) != 0:
        failures.append(f"nonzero {code_match.group(1)} responses: "
                        f"{code_match.group(2)}")

# The trace export holds at least one complete trace, plus the continuous
# model's slot timelines (per-slot tenancy tracks and counter tracks).
events = trace.get("traceEvents")
if not isinstance(events, list) or len(events) < 6:
    failures.append(f"/debug/trace export has {0 if not events else len(events)}"
                    " events (need >= 6: one full trace)")
else:
    names = {event.get("name") for event in events}
    expected_spans = {"admission", "queue", "pack", "exec", "unpack", "write"}
    if not expected_spans <= names:
        failures.append(f"trace spans missing: {expected_spans - names}")
    slot_processes = {event["args"]["name"] for event in events
                      if event.get("ph") == "M"
                      and event.get("name") == "process_name"}
    if "slots:c" not in slot_processes:
        failures.append("slot-timeline process for model \"c\" missing from "
                        f"/debug/trace (saw {slot_processes or '{}'})")
    if "occupancy" not in names or "step_latency_us" not in names:
        failures.append("slot-timeline counter tracks missing from "
                        "/debug/trace")

# STEPS.json: structurally sound, internally consistent, and in exact
# agreement with the metrics plane on the total step count.
if steps_doc.get("model") != "c" or steps_doc.get("num_slots") != cont["slots"]:
    failures.append(f"STEPS.json header wrong: model "
                    f"{steps_doc.get('model')}, num_slots "
                    f"{steps_doc.get('num_slots')}")
recorded = steps_doc.get("steps_recorded", 0)
if steps_total is not None and recorded != steps_total:
    failures.append(f"STEPS.json steps_recorded {recorded} != "
                    f"nimble_steps_total {steps_total}")
tail = steps_doc.get("steps", [])
if not tail:
    failures.append("STEPS.json has no step records")
last_seq = -1
for record in tail:
    seq = record.get("step", -1)
    if seq <= last_seq:
        failures.append(f"STEPS.json step seqs not increasing at {seq}")
        break
    last_seq = seq
    if not (0 <= record.get("active_rows", -1) <= cont["slots"]):
        failures.append(f"step {seq}: active_rows {record.get('active_rows')} "
                        f"out of [0, {cont['slots']}]")
        break
    if record.get("duration_us", -1) < 0:
        failures.append(f"step {seq}: negative duration")
        break
    for event in record.get("events", []):
        if event.get("kind") not in ("splice", "retire"):
            failures.append(f"step {seq}: unknown event kind "
                            f"{event.get('kind')}")

# Memory plane. The loadgen scrapes MEMORY.json after Drain with every
# result already consumed, so the post-drain identities are exact.
scopes = {s["scope"]: s for s in memory_doc.get("scopes", [])}
copy_sites = {s["site"]: s for s in memory_doc.get("copy_sites", [])}
if not scopes:
    failures.append("MEMORY.json has no allocator scopes")
if not any(name.startswith("worker:") for name in scopes):
    failures.append("MEMORY.json has no worker scope")
if "model:c" not in scopes:
    failures.append("MEMORY.json has no scope for continuous model c")
for name, scope in scopes.items():
    # Drain-leak sentinel at CI level: workers hold nothing once their
    # batches retire and the clients dropped every response.
    if name.startswith("worker:") and scope["live_bytes"] != 0:
        failures.append(f"{name} live_bytes {scope['live_bytes']} != 0 "
                        "after drain (data-path leak)")
    if scope["peak_bytes"] < scope["live_bytes"]:
        failures.append(f"{name} peak {scope['peak_bytes']} < live "
                        f"{scope['live_bytes']}")
    # The gauge exposition and the JSON export sample the same atomics at
    # quiescence, so they must agree exactly.
    gauge = series_value("nimble_mem_live_bytes", f'scope="{name}"')
    if gauge != scope["live_bytes"]:
        failures.append(f"nimble_mem_live_bytes{{scope={name}}} {gauge} != "
                        f"MEMORY.json {scope['live_bytes']}")
# A continuous runner retains only its persistent step arguments (x_t,
# active mask, state rows — a few KB at these widths): far under 128 KiB.
c_live = scopes.get("model:c", {}).get("live_bytes", 0)
if c_live > 131072:
    failures.append(f"model:c live_bytes {c_live} suspiciously large "
                    "(> 128 KiB of persistent step state)")
# Every copy site on the exercised paths must have recorded traffic: the
# packed model covers http_decode/pack/unpack/serialize, the continuous
# model step_state.
for site in ("http_decode", "pack", "unpack", "step_state", "serialize"):
    bytes_ = copy_sites.get(site, {}).get("bytes", 0)
    if bytes_ <= 0:
        failures.append(f"copy site {site} recorded no bytes")
    exposed = series_value("nimble_copied_bytes_total", f'site="{site}"')
    if exposed != bytes_:
        failures.append(f"nimble_copied_bytes_total{{site={site}}} {exposed} "
                        f"!= MEMORY.json {bytes_}")
# The soft limit is configured generously: the pressure plane must be live
# (polling, exporting) yet never have tripped.
pressure = memory_doc.get("pressure", {})
if not pressure.get("configured"):
    failures.append("memory pressure not configured in the loadgen run")
# The gauge carries no labels, so it renders bare (no {} block).
m = re.search(r"^nimble_mem_pressure (\S+)$", metrics, re.M)
mem_pressure = float(m.group(1)) if m else None
if mem_pressure is None or mem_pressure >= 1.0:
    failures.append(f"nimble_mem_pressure is {mem_pressure} (expected a "
                    "settled value < 1 under the 1 GiB soft limit)")

# Always-on telemetry must stay under its 3% budget when measured.
if "trace_overhead" in bench:
    overhead = bench["trace_overhead"]["overhead_pct"]
    if overhead > 3.0:
        failures.append(f"telemetry overhead {overhead:.2f}% exceeds the 3% "
                        "budget")
    else:
        print(f"telemetry overhead {overhead:.2f}% "
              f"(on {bench['trace_overhead']['rps_on']:.1f} vs off "
              f"{bench['trace_overhead']['rps_off']:.1f} req/s)")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)

copied_total = sum(s["bytes"] for s in copy_sites.values())
print(f"metrics plane consistent: {int(completed_m)} packed + "
      f"{int(completed_c)} continuous completed, "
      f"{int(rejected_m + rejected_c)} shed, zero 5xx, "
      f"{len(events)} trace events, {int(recorded)} steps journaled "
      f"({int(splices)} splices, row-step balance exact), "
      f"{copied_total} bytes copied across {len(copy_sites)} sites, "
      f"workers leak-free after drain")
EOF
