// Table 2 reproduction: Tree-LSTM inference latency (µs/token) on SST-like
// random binarized trees.
//
// Paper rows: Nimble vs PyTorch vs TensorFlow Fold. Here: Nimble's VM
// (ADT + Match + recursion in bytecode) vs the eager define-by-run baseline
// (host-language recursion, per-op dispatch — PyTorch's strategy, 17-20x
// slower in the paper) vs the Fold-style per-input graph construction with
// depth batching (5.2x slower in the paper).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/eager.h"
#include "src/baselines/fold.h"
#include "src/core/compiler.h"
#include "src/models/tree_lstm.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

int main() {
  bench::PrintHeader(
      "Table 2: Tree-LSTM inference latency (us/token), SST-like trees\n"
      "paper config: input 300, hidden 150; host-CPU substrate");

  models::TreeLSTMConfig config;
  auto model = models::BuildTreeLSTM(config);

  support::Rng rng(77);
  auto sizes = models::SampleSSTSizes(12, rng);
  std::vector<std::unique_ptr<models::HostTree>> trees;
  std::vector<runtime::ObjectRef> tree_objs;
  int64_t total_tokens = 0;
  for (int leaves : sizes) {
    trees.push_back(models::RandomTree(leaves, config.input_size, rng));
    tree_objs.push_back(models::TreeToObject(*trees.back()));
    total_tokens += leaves;
  }

  ir::Module mod = model.module;
  auto compiled = core::Compile(mod);
  vm::VirtualMachine machine(compiled.executable);
  baselines::EagerContext ctx_cpp(2000), ctx_py(20000);
  baselines::FoldStats fold_stats;
  // Round-robin so machine-load drift hits every system equally.
  auto times = bench::MeasureInterleaved(
      {[&] {
         for (const auto& t : tree_objs) machine.Invoke("main", {t});
       },
       [&] {
         for (const auto& t : trees) {
           baselines::EagerTreeLSTM(model.weights, *t, ctx_cpp);
         }
       },
       [&] {
         for (const auto& t : trees) {
           baselines::EagerTreeLSTM(model.weights, *t, ctx_py);
         }
       },
       [&] {
         for (const auto& t : trees) {
           baselines::FoldTreeLSTM(model.weights, *t, &fold_stats, 100000);
         }
       }});
  double scale = 1e6 / static_cast<double>(total_tokens);
  double nimble = times[0] * scale;
  double eager_cpp = times[1] * scale;
  double eager_py = times[2] * scale;
  double fold = times[3] * scale;

  std::printf("%-32s %12s\n", "system", "us/token");
  std::printf("%-32s %12.1f\n", "Nimble (VM)", nimble);
  std::printf("%-32s %12.1f\n", "Eager (C++ dispatch, 2us/op)", eager_cpp);
  std::printf("%-32s %12.1f\n", "Eager (Python-driven, 20us/op)", eager_py);
  std::printf("%-32s %12.1f\n", "Fold (graph/input, 100us/node)", fold);
  bench::PrintRule();
  std::printf("speedups: %.2fx vs eager-C++, %.2fx vs eager-Python "
              "(paper: 17.4x vs PyTorch), %.2fx vs Fold (paper: 5.2x)\n",
              eager_cpp / nimble, eager_py / nimble, fold / nimble);
  std::printf("fold stats: %lld graphs built, %lld nodes scheduled, "
              "%lld batched launches\n",
              static_cast<long long>(fold_stats.graphs_built),
              static_cast<long long>(fold_stats.nodes_scheduled),
              static_cast<long long>(fold_stats.batched_launches));
  return 0;
}
