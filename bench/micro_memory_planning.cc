// §6.3 memory-planning study: effect of the MemoryPlan pass (storage
// coalescing + pooled dynamic allocation).
//
// Paper: 47% fewer buffer allocations; allocation latency down 75%
// (2.0 ms -> 0.5 ms on BERT); and at most 8% extra footprint vs the static
// compiler's pre-allocated plan.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/static_runtime.h"
#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

namespace {

/// Wraps an allocator, accumulating time spent inside Alloc.
class TimingAllocator : public runtime::Allocator {
 public:
  explicit TimingAllocator(runtime::Allocator* inner) : inner_(inner) {}

  std::shared_ptr<runtime::Buffer> Alloc(size_t size, size_t alignment,
                                         runtime::Device device) override {
    auto t0 = std::chrono::steady_clock::now();
    auto buf = inner_->Alloc(size, alignment, device);
    auto t1 = std::chrono::steady_clock::now();
    nanos_ +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    calls_++;
    return buf;
  }

  int64_t nanos() const { return nanos_; }
  int64_t calls() const { return calls_; }
  void Reset() { nanos_ = 0; calls_ = 0; }

 private:
  runtime::Allocator* inner_;
  int64_t nanos_ = 0;
  int64_t calls_ = 0;
};

struct RunResult {
  int64_t alloc_calls;
  double alloc_ms;
  int64_t peak_bytes;
};

RunResult RunOnce(const models::BERTModel& model, bool plan,
                  runtime::Allocator* base, TimingAllocator* timing,
                  const std::vector<int64_t>& ids) {
  ir::Module mod = model.module;
  core::CompileOptions opts;
  opts.memory_plan = plan;
  auto compiled = core::Compile(mod, opts);
  vm::VirtualMachine machine(compiled.executable, timing);
  auto input = runtime::MakeTensor(
      runtime::NDArray::FromVector(ids, {static_cast<int64_t>(ids.size())}));
  machine.Invoke("main", {input});  // warm-up (fills the pool)
  base->ResetStats();
  timing->Reset();
  machine.Invoke("main", {input});
  return RunResult{timing->calls(), timing->nanos() / 1e6,
                   base->stats().peak_bytes};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Memory planning study (paper section 6.3): BERT, host CPU\n"
      "paper: -47% buffer allocations, -75% allocation latency, <=8% extra\n"
      "footprint vs static pre-allocation");

  models::BERTConfig config;
  config.num_layers = 4;
  config.hidden = 256;
  config.num_heads = 4;
  config.ffn_hidden = 1024;
  config.vocab = 2000;
  auto model = models::BuildBERT(config);
  support::Rng rng(31);
  auto ids = models::RandomTokenIds(48, config.vocab, rng);

  // Compile-time coalescing stats. Static coalescing applies to
  // statically-shaped intermediates — the LSTM loop body is the showcase
  // (BERT's tensors are almost all dynamically shaped, so its savings come
  // from the pooled dynamic allocator below instead).
  {
    models::LSTMConfig lstm_config;
    lstm_config.input_size = 300;
    lstm_config.hidden_size = 512;
    auto lstm = models::BuildLSTM(lstm_config);
    core::CompileOptions unfused;  // more intermediates => more to coalesce
    unfused.fuse_ops = false;
    unfused.fuse_lstm_cell = false;
    auto compiled = core::Compile(lstm.module, unfused);
    std::printf("compile-time storage coalescing (LSTM step): %d -> %d "
                "allocations (-%.0f%%; paper: -47%%), %d kills inserted\n",
                compiled.memory.storage_allocs_before,
                compiled.memory.storage_allocs_after,
                compiled.memory.ReductionPercent(),
                compiled.memory.kills_inserted);
  }
  {
    ir::Module mod = model.module;
    auto compiled = core::Compile(mod);
    std::printf("compile-time storage coalescing (BERT, dynamic shapes): "
                "%d -> %d allocations, %d kills inserted\n",
                compiled.memory.storage_allocs_before,
                compiled.memory.storage_allocs_after,
                compiled.memory.kills_inserted);
  }

  // Runtime allocation counts/latency: naive per-op allocation vs planned +
  // pooled.
  runtime::NaiveAllocator naive;
  TimingAllocator naive_timing(&naive);
  RunResult unplanned = RunOnce(model, /*plan=*/false, &naive, &naive_timing, ids);

  runtime::PoolingAllocator pool;
  TimingAllocator pool_timing(&pool);
  RunResult planned = RunOnce(model, /*plan=*/true, &pool, &pool_timing, ids);

  std::printf("\n%-34s %14s %14s\n", "", "no planning", "with planning");
  std::printf("%-34s %14lld %14lld\n", "runtime buffer allocations",
              static_cast<long long>(unplanned.alloc_calls),
              static_cast<long long>(planned.alloc_calls));
  std::printf("%-34s %12.3fms %12.3fms\n", "allocation latency",
              unplanned.alloc_ms, planned.alloc_ms);
  double alloc_reduction =
      100.0 * (unplanned.alloc_calls - planned.alloc_calls) /
      static_cast<double>(unplanned.alloc_calls);
  double latency_reduction =
      100.0 * (unplanned.alloc_ms - planned.alloc_ms) /
      std::max(unplanned.alloc_ms, 1e-9);
  std::printf("reduction: %.0f%% allocations (paper 47%%), %.0f%% latency "
              "(paper 75%%)\n",
              alloc_reduction, latency_reduction);

  // Footprint vs the static runtime's pre-allocated plan.
  {
    runtime::GlobalNaiveAllocator()->ResetStats();
    int64_t before = runtime::GlobalNaiveAllocator()->stats().live_bytes;
    baselines::StaticBERTRuntime static_rt(model, 48);
    int64_t static_bytes =
        runtime::GlobalNaiveAllocator()->stats().live_bytes - before;
    std::printf("\nfootprint: Nimble peak %lld bytes vs static plan %lld "
                "bytes (%+.1f%%; paper: up to +8%%)\n",
                static_cast<long long>(planned.peak_bytes),
                static_cast<long long>(static_bytes),
                100.0 * (planned.peak_bytes - static_bytes) /
                    static_cast<double>(static_bytes));
  }
  return 0;
}
