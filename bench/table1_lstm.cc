// Table 1 reproduction: LSTM inference latency (µs/token), 1 and 2 layers.
//
// Paper: Nimble vs PyTorch / MXNet / TensorFlow on Intel/Nvidia/ARM.
// Here (single host CPU, see DESIGN.md §2): Nimble's VM vs the eager
// define-by-run baseline that models the frameworks' execution strategy,
// plus Nimble with fusion disabled to attribute the gain. Expected shape:
// Nimble < Nimble-w/o-fusion < Eager.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/baselines/eager.h"
#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

namespace {

struct Workload {
  std::vector<runtime::NDArray> inputs;
  std::vector<int64_t> lengths;
  int64_t total_tokens = 0;
};

Workload MakeWorkload(int sentences, int64_t input_size) {
  support::Rng rng(123);
  Workload w;
  w.lengths = models::SampleMRPCLengths(sentences, rng, 48);
  for (int64_t len : w.lengths) {
    w.inputs.push_back(models::RandomSequence(len, input_size, rng));
    w.total_tokens += len;
  }
  return w;
}

std::function<void()> NimbleRunner(const models::LSTMModel& model,
                                   const Workload& w, bool fuse,
                                   std::shared_ptr<vm::VirtualMachine>* keep) {
  ir::Module mod = model.module;  // compile a fresh copy
  core::CompileOptions opts;
  opts.fuse_ops = fuse;
  opts.fuse_lstm_cell = fuse;
  auto compiled = core::Compile(mod, opts);
  auto machine = std::make_shared<vm::VirtualMachine>(compiled.executable);
  *keep = machine;
  return [machine, &w] {
    for (size_t i = 0; i < w.inputs.size(); ++i) {
      machine->Invoke("main",
                      {runtime::MakeTensor(w.inputs[i]),
                       runtime::MakeTensor(
                           runtime::NDArray::Scalar<int64_t>(w.lengths[i]))});
    }
  };
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 1: LSTM inference latency (us/token), MRPC-like lengths\n"
      "paper config: input 300, hidden 512; host-CPU substrate");
  std::printf("%-28s %12s %12s\n", "system", "1 layer", "2 layers");
  const int kSentences = 5;

  double nimble[2], nofuse[2], eager_cpp[2], eager_py[2];
  for (int layers = 1; layers <= 2; ++layers) {
    models::LSTMConfig config;
    config.input_size = 300;
    config.hidden_size = 512;
    config.num_layers = layers;
    auto model = models::BuildLSTM(config);
    Workload w = MakeWorkload(kSentences, config.input_size);
    std::shared_ptr<vm::VirtualMachine> vm_fused, vm_unfused;
    baselines::EagerContext ctx_cpp(2000), ctx_py(20000);
    // Round-robin so machine-load drift hits every system equally.
    auto times = bench::MeasureInterleaved(
        {NimbleRunner(model, w, true, &vm_fused),
         NimbleRunner(model, w, false, &vm_unfused),
         [&] {
           for (const auto& x : w.inputs) {
             baselines::EagerLSTM(model.weights, x, ctx_cpp);
           }
         },
         [&] {
           for (const auto& x : w.inputs) {
             baselines::EagerLSTM(model.weights, x, ctx_py);
           }
         }});
    double scale = 1e6 / static_cast<double>(w.total_tokens);
    nimble[layers - 1] = times[0] * scale;
    nofuse[layers - 1] = times[1] * scale;
    eager_cpp[layers - 1] = times[2] * scale;
    eager_py[layers - 1] = times[3] * scale;
  }
  std::printf("%-28s %12.1f %12.1f\n", "Nimble (VM)", nimble[0], nimble[1]);
  std::printf("%-28s %12.1f %12.1f\n", "Nimble w/o fusion", nofuse[0], nofuse[1]);
  std::printf("%-28s %12.1f %12.1f\n", "Eager (C++ dispatch, 2us/op)",
              eager_cpp[0], eager_cpp[1]);
  std::printf("%-28s %12.1f %12.1f\n", "Eager (Python-driven, 20us/op)",
              eager_py[0], eager_py[1]);
  bench::PrintRule();
  std::printf("speedup vs eager-C++: %.2fx / %.2fx; vs eager-Python: "
              "%.2fx / %.2fx\n",
              eager_cpp[0] / nimble[0], eager_cpp[1] / nimble[1],
              eager_py[0] / nimble[0], eager_py[1] / nimble[1]);
  std::printf("paper reports 1.2x-20.3x depending on platform/framework\n");
  return 0;
}
