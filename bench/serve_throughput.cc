// Serving throughput: VM pool + length-bucketed batching under an
// MRPC-like variable-length request stream.
//
// Sweeps worker count x batch policy on the LSTM and BERT workloads and
// reports aggregate throughput (req/s) plus end-to-end latency percentiles
// from the ServeStats collector. The interesting comparisons:
//   - workers 1 vs N: parallel VM workers sharing one immutable executable;
//   - batch=1 (pure FIFO) vs bucketed batching: same-length runs keep each
//     worker's PoolingAllocator free lists warm.
// Every configuration is validated against sequential single-VM execution
// before it is timed — throughput with wrong answers is not throughput.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/serve/server.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

namespace {

struct ServingWorkload {
  std::string name;
  std::shared_ptr<vm::Executable> exec;
  std::vector<std::vector<runtime::ObjectRef>> args;  // per request
  std::vector<int64_t> lengths;
  std::vector<runtime::NDArray> expected;  // sequential single-VM results
};

std::vector<runtime::ObjectRef> CopyArgs(
    const std::vector<runtime::ObjectRef>& args) {
  return args;  // ObjectRefs are shared_ptrs; requests only read them
}

ServingWorkload MakeLSTMWorkload(int requests, int64_t input_size = 64,
                                 int64_t hidden_size = 128) {
  ServingWorkload w;
  w.name = "LSTM (in " + std::to_string(input_size) + ", hidden " +
           std::to_string(hidden_size) + ")";
  models::LSTMConfig config;
  config.input_size = input_size;
  config.hidden_size = hidden_size;
  // Emit and ship the @main_batched calling convention with the executable
  // so the tensor-batching sweep below can run packed batches.
  config.emit_batched = true;
  auto model = models::BuildLSTM(config);
  ir::Module mod = model.module;
  core::CompileOptions opts;
  opts.batched_entries = {model.batched_spec};
  w.exec = core::Compile(mod, opts).executable;

  support::Rng rng(17);
  w.lengths = models::SampleMRPCLengths(requests, rng, 128);
  vm::VirtualMachine sequential(w.exec);
  for (int64_t len : w.lengths) {
    runtime::NDArray x = models::RandomSequence(len, config.input_size, rng);
    w.args.push_back(
        {runtime::MakeTensor(x),
         runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(len))});
    w.expected.push_back(
        runtime::AsTensor(sequential.Invoke("main", CopyArgs(w.args.back()))));
  }
  return w;
}

ServingWorkload MakeBERTWorkload(int requests) {
  ServingWorkload w;
  w.name = "BERT (2 layers, hidden 64)";
  models::BERTConfig config;
  config.num_layers = 2;
  config.hidden = 64;
  config.num_heads = 4;
  config.ffn_hidden = 128;
  config.vocab = 1000;
  auto model = models::BuildBERT(config);
  ir::Module mod = model.module;
  w.exec = core::Compile(mod).executable;

  support::Rng rng(23);
  w.lengths = models::SampleMRPCLengths(requests, rng, 64);
  vm::VirtualMachine sequential(w.exec);
  for (int64_t len : w.lengths) {
    auto ids = models::RandomTokenIds(len, config.vocab, rng);
    w.args.push_back(
        {runtime::MakeTensor(runtime::NDArray::FromVector(ids, {len}))});
    w.expected.push_back(
        runtime::AsTensor(sequential.Invoke("main", CopyArgs(w.args.back()))));
  }
  return w;
}

bool BitIdentical(const runtime::NDArray& a, const runtime::NDArray& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.raw_data(), b.raw_data(), a.nbytes()) == 0;
}

struct RunResult {
  serve::StatsSnapshot stats;
  bool correct = true;
};

RunResult RunConfiguration(const ServingWorkload& w, int workers,
                           int max_batch, int64_t max_wait_us,
                           bool tensor_batching = false,
                           std::vector<int64_t> bucket_edges = {},
                           size_t queue_capacity = 64) {
  serve::ServeConfig config;
  config.num_workers = workers;
  config.queue_capacity = queue_capacity;
  config.batch.max_batch_size = max_batch;
  config.batch.max_wait_micros = max_wait_us;
  config.batch.tensor_batching = tensor_batching;
  if (!bucket_edges.empty()) config.batch.bucket_edges = std::move(bucket_edges);
  serve::Server server(w.exec, config);

  std::vector<std::future<runtime::ObjectRef>> futures;
  futures.reserve(w.args.size());
  for (size_t i = 0; i < w.args.size(); ++i) {
    futures.push_back(server.Submit(CopyArgs(w.args[i]), w.lengths[i]));
  }
  RunResult result;
  for (size_t i = 0; i < futures.size(); ++i) {
    if (!BitIdentical(runtime::AsTensor(futures[i].get()), w.expected[i])) {
      result.correct = false;
    }
  }
  server.Shutdown();
  result.stats = server.stats();
  return result;
}

void Sweep(const ServingWorkload& w) {
  bench::PrintHeader("serving throughput: " + w.name + ", " +
                     std::to_string(w.args.size()) +
                     " requests, MRPC-like lengths");
  std::printf("%8s %7s %9s %10s %9s %9s %9s %6s\n", "workers", "batch",
              "wait_us", "req/s", "p50_us", "p95_us", "p99_us", "ok");
  for (int workers : {1, 2, 4, 8}) {
    for (auto [max_batch, max_wait_us] :
         std::vector<std::pair<int, int64_t>>{{1, 0}, {4, 1000}, {8, 2000}}) {
      RunResult r = RunConfiguration(w, workers, max_batch, max_wait_us);
      std::printf("%8d %7d %9lld %10.1f %9.0f %9.0f %9.0f %6s\n", workers,
                  max_batch, static_cast<long long>(max_wait_us),
                  r.stats.throughput_rps, r.stats.p50_latency_us,
                  r.stats.p95_latency_us, r.stats.p99_latency_us,
                  r.correct ? "yes" : "NO");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 64;
  if (argc > 1) requests = std::atoi(argv[1]);

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("host: %u hardware thread(s)\n", cores);
  if (cores <= 1) {
    std::printf(
        "NOTE: single-core host — worker scaling is serialized by the CPU;\n"
        "      expect pool speedups only where hardware threads exist.\n");
  }

  ServingWorkload lstm = MakeLSTMWorkload(requests);
  Sweep(lstm);
  if (requests <= 0) return 0;  // nothing to compare below

  // Headline comparison for the LSTM workload: 1 worker FIFO vs 4 workers
  // with bucketed batching. Interleaved best-of-3 per configuration, for
  // the same load-drift robustness as bench_util's MeasureInterleaved.
  RunResult single, pooled;
  double single_best = 0.0, pooled_best = 0.0;
  for (int round = 0; round < 3; ++round) {
    RunResult s = RunConfiguration(lstm, 1, 1, 0);
    RunResult p = RunConfiguration(lstm, 4, 8, 2000);
    single.correct = single.correct && s.correct;
    pooled.correct = pooled.correct && p.correct;
    if (s.stats.throughput_rps > single_best) {
      single_best = s.stats.throughput_rps;
      single.stats = s.stats;
    }
    if (p.stats.throughput_rps > pooled_best) {
      pooled_best = p.stats.throughput_rps;
      pooled.stats = p.stats;
    }
  }
  bench::PrintRule();
  std::printf(
      "LSTM: 4 workers + batching vs 1 worker FIFO: %.1f vs %.1f req/s "
      "(%.2fx), outputs %s\n",
      pooled.stats.throughput_rps, single.stats.throughput_rps,
      pooled.stats.throughput_rps / single.stats.throughput_rps,
      (single.correct && pooled.correct) ? "bit-identical to sequential"
                                         : "WRONG");

  // Tensor batching (src/batch/): each dispatched bucket runs as ONE padded
  // [Lmax, B, D] invocation of @main_batched instead of B separate Invokes.
  // The win is per-step: the VM interprets each timestep once for the whole
  // batch, the dense kernels run rows-in-lanes with the weights streamed
  // once instead of B times, and the per-step bookkeeping amortizes over B.
  // A loaded server is the honest setting for the comparison — batching is
  // a throughput optimization, so the queue must be deep enough for buckets
  // to actually fill — and the buckets are a width-8 ladder to keep padding
  // waste low. Same bit-identical-to-sequential validation as every sweep.
  // Serving-scale model: at in 128 / hidden 256 the dense layers dominate
  // the per-step profile, which is where the rows-in-lanes tile kernel pays
  // off (the cell's per-element work can only shrink, never amortize).
  int tb_requests = std::max(requests, 192);
  ServingWorkload tb = MakeLSTMWorkload(tb_requests, 128, 256);
  std::vector<int64_t> tb_buckets = {16, 24, 32, 40, 48, 56, 64, 96, 128};
  bench::PrintHeader(
      "tensor batching: packed [Lmax, B, D] execution vs per-request loop\n"
      "(" + std::to_string(tb_requests) +
      " queued requests, 1 worker isolates the packing win from pool "
      "parallelism)");
  std::printf("%8s %7s %12s %10s %9s %9s %8s %6s\n", "mode", "batch",
              "packed/batch", "req/s", "p50_us", "p99_us", "waste%", "ok");
  auto print_mode = [](const char* mode, int batch,
                       const serve::StatsSnapshot& s, bool correct) {
    std::printf("%8s %7d %7lld/%-4lld %10.1f %9.0f %9.0f %7.1f%% %6s\n", mode,
                batch, static_cast<long long>(s.packed_batches),
                static_cast<long long>(s.batches), s.throughput_rps,
                s.p50_latency_us, s.p99_latency_us, s.padding_waste * 100.0,
                correct ? "yes" : "NO");
  };
  double headline_ratio = 0.0;
  bool tb_correct = true;
  for (int batch : {8, 16}) {
    double loop_best = 0.0, packed_best = 0.0;
    serve::StatsSnapshot loop_stats, packed_stats;
    for (int round = 0; round < 3; ++round) {
      // Deep admission queue (the tensor-batching runs only): the whole
      // burst must buffer so buckets actually fill.
      RunResult loop =
          RunConfiguration(tb, 1, batch, 100000, false, tb_buckets, 256);
      RunResult packed =
          RunConfiguration(tb, 1, batch, 100000, true, tb_buckets, 256);
      tb_correct = tb_correct && loop.correct && packed.correct;
      if (loop.stats.throughput_rps > loop_best) {
        loop_best = loop.stats.throughput_rps;
        loop_stats = loop.stats;
      }
      if (packed.stats.throughput_rps > packed_best) {
        packed_best = packed.stats.throughput_rps;
        packed_stats = packed.stats;
      }
    }
    print_mode("loop", batch, loop_stats, tb_correct);
    print_mode("packed", batch, packed_stats, tb_correct);
    headline_ratio = packed_best / loop_best;
  }
  bench::PrintRule();
  std::printf(
      "LSTM: tensor batching vs per-request loop at batch 16: %.2fx "
      "requests/sec, outputs %s\n",
      headline_ratio,
      tb_correct ? "bit-identical to sequential" : "WRONG");

  Sweep(MakeBERTWorkload(requests));
  return 0;
}
