// Serving throughput: VM pool + length-bucketed batching under an
// MRPC-like variable-length request stream.
//
// Sweeps worker count x batch policy on the LSTM and BERT workloads and
// reports aggregate throughput (req/s) plus end-to-end latency percentiles
// from the ServeStats collector. The interesting comparisons:
//   - workers 1 vs N: parallel VM workers sharing one immutable executable;
//   - batch=1 (pure FIFO) vs bucketed batching: same-length runs keep each
//     worker's PoolingAllocator free lists warm;
//   - tensor batching vs per-request loop (PR 3), and the shape-bucket
//     executable cache on top of it (length-specialized variants);
//   - continuous (iteration-level) batching vs the bucketed packed path on
//     a short/long request mix: per-population client-side latency
//     percentiles, zero padding by construction on the slot-map path.
// Every configuration is validated against sequential single-VM execution
// before it is timed — throughput with wrong answers is not throughput.
//
// --json additionally writes BENCH_serve.json (req/s, p99, padding waste,
// cache hit rate) so the perf trajectory is machine-readable across PRs; CI
// fails the bench-smoke job when cached buckets report nonzero padding.
//
// --trace-overhead A/B-measures what the step-level observability plane
// (request tracing + the per-step journal) costs the continuous hot loop:
// alternating unpaced bursts with both enabled vs both disabled, best-of-2
// per configuration, reported as step_journal_overhead in BENCH_serve.json.
// CI holds the result to <= 3% of burst req/s.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/serve/exec_cache.h"
#include "src/serve/server.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

namespace {

struct ServingWorkload {
  std::string name;
  std::shared_ptr<vm::Executable> exec;
  models::LSTMConfig lstm_config;  // to recompile variants (same seed)
  std::vector<std::vector<runtime::ObjectRef>> args;  // per request
  std::vector<int64_t> lengths;
  std::vector<runtime::NDArray> expected;  // sequential single-VM results
};

std::vector<runtime::ObjectRef> CopyArgs(
    const std::vector<runtime::ObjectRef>& args) {
  return args;  // ObjectRefs are shared_ptrs; requests only read them
}

ServingWorkload MakeLSTMWorkloadWithLengths(std::vector<int64_t> lengths,
                                            int64_t input_size,
                                            int64_t hidden_size) {
  ServingWorkload w;
  w.name = "LSTM (in " + std::to_string(input_size) + ", hidden " +
           std::to_string(hidden_size) + ")";
  models::LSTMConfig config;
  config.input_size = input_size;
  config.hidden_size = hidden_size;
  // Emit and ship the @main_batched calling convention with the executable
  // so the tensor-batching sweep below can run packed batches.
  config.emit_batched = true;
  w.lstm_config = config;
  auto model = models::BuildLSTM(config);
  ir::Module mod = model.module;
  core::CompileOptions opts;
  opts.batched_entries = {model.batched_spec};
  w.exec = core::Compile(mod, opts).executable;

  support::Rng rng(17);
  w.lengths = std::move(lengths);
  vm::VirtualMachine sequential(w.exec);
  for (int64_t len : w.lengths) {
    runtime::NDArray x = models::RandomSequence(len, config.input_size, rng);
    w.args.push_back(
        {runtime::MakeTensor(x),
         runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(len))});
    w.expected.push_back(
        runtime::AsTensor(sequential.Invoke("main", CopyArgs(w.args.back()))));
  }
  return w;
}

ServingWorkload MakeLSTMWorkload(int requests, int64_t input_size = 64,
                                 int64_t hidden_size = 128) {
  support::Rng rng(17);
  return MakeLSTMWorkloadWithLengths(
      models::SampleMRPCLengths(requests, rng, 128), input_size, hidden_size);
}

/// Production-mix lengths: traffic concentrated on a handful of recurring
/// exact lengths (tokenizer buckets, recurring prompts — the "recurring
/// shapes" Nimble's dispatch bets on), several of them sharing one
/// scheduler bucket so the generic packed path must pad across them. This
/// is the workload the executable cache models: hot lengths earn
/// specialized variants, carved same-length batches pack with zero padding.
std::vector<int64_t> SampleProductionMixLengths(int count, support::Rng& rng) {
  const int64_t hot[] = {18, 22, 27, 30, 35, 38, 59, 62};
  const int weight[] = {22, 18, 15, 12, 11, 9, 7, 6};  // percent
  std::vector<int64_t> lengths;
  lengths.reserve(count);
  for (int i = 0; i < count; ++i) {
    int pick = static_cast<int>(rng.Next() % 100);
    int acc = 0;
    int64_t len = hot[7];
    for (int j = 0; j < 8; ++j) {
      acc += weight[j];
      if (pick < acc) {
        len = hot[j];
        break;
      }
    }
    lengths.push_back(len);
  }
  return lengths;
}

/// Variant compiler for the cache runs: rebuilds the identical model (same
/// deterministic seed) with the bucket shape baked in.
serve::CompileVariantFn MakeVariantCompiler(models::LSTMConfig config) {
  return [config](int64_t max_len, int64_t batch,
                  const codegen::DenseConfig& dense_config)
             -> std::shared_ptr<vm::Executable> {
    auto model = models::BuildLSTM(config);
    core::CompileOptions opts;
    opts.batched_entries = {model.batched_spec};
    opts.specialize_length = max_len;
    opts.specialize_batch = batch;
    opts.dense_config = dense_config;
    return core::Compile(model.module, opts).executable;
  };
}

ServingWorkload MakeBERTWorkload(int requests) {
  ServingWorkload w;
  w.name = "BERT (2 layers, hidden 64)";
  models::BERTConfig config;
  config.num_layers = 2;
  config.hidden = 64;
  config.num_heads = 4;
  config.ffn_hidden = 128;
  config.vocab = 1000;
  auto model = models::BuildBERT(config);
  ir::Module mod = model.module;
  w.exec = core::Compile(mod).executable;

  support::Rng rng(23);
  w.lengths = models::SampleMRPCLengths(requests, rng, 64);
  vm::VirtualMachine sequential(w.exec);
  for (int64_t len : w.lengths) {
    auto ids = models::RandomTokenIds(len, config.vocab, rng);
    w.args.push_back(
        {runtime::MakeTensor(runtime::NDArray::FromVector(ids, {len}))});
    w.expected.push_back(
        runtime::AsTensor(sequential.Invoke("main", CopyArgs(w.args.back()))));
  }
  return w;
}

bool BitIdentical(const runtime::NDArray& a, const runtime::NDArray& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.raw_data(), b.raw_data(), a.nbytes()) == 0;
}

struct RunResult {
  serve::StatsSnapshot stats;
  bool correct = true;
};

RunResult RunConfiguration(const ServingWorkload& w, int workers,
                           int max_batch, int64_t max_wait_us,
                           bool tensor_batching = false,
                           std::vector<int64_t> bucket_edges = {},
                           size_t queue_capacity = 64,
                           std::shared_ptr<serve::ExecCache> cache = nullptr) {
  serve::ServeConfig config;
  config.num_workers = workers;
  serve::Server server(config);
  serve::ModelConfig model;
  model.exec = w.exec;
  model.queue_capacity = queue_capacity;
  model.batch.max_batch_size = max_batch;
  model.batch.max_wait_micros = max_wait_us;
  model.batch.tensor_batching = tensor_batching;
  if (!bucket_edges.empty()) model.batch.bucket_edges = std::move(bucket_edges);
  model.exec_cache = std::move(cache);
  server.AddModel("m", std::move(model));
  server.Start();

  std::vector<std::future<runtime::ObjectRef>> futures;
  futures.reserve(w.args.size());
  for (size_t i = 0; i < w.args.size(); ++i) {
    futures.push_back(server.Submit("m", CopyArgs(w.args[i]), w.lengths[i]));
  }
  RunResult result;
  for (size_t i = 0; i < futures.size(); ++i) {
    if (!BitIdentical(runtime::AsTensor(futures[i].get()), w.expected[i])) {
      result.correct = false;
    }
  }
  server.Shutdown();
  result.stats = server.stats();
  return result;
}

void Sweep(const ServingWorkload& w) {
  bench::PrintHeader("serving throughput: " + w.name + ", " +
                     std::to_string(w.args.size()) +
                     " requests, MRPC-like lengths");
  std::printf("%8s %7s %9s %10s %9s %9s %9s %6s\n", "workers", "batch",
              "wait_us", "req/s", "p50_us", "p95_us", "p99_us", "ok");
  for (int workers : {1, 2, 4, 8}) {
    for (auto [max_batch, max_wait_us] :
         std::vector<std::pair<int, int64_t>>{{1, 0}, {4, 1000}, {8, 2000}}) {
      RunResult r = RunConfiguration(w, workers, max_batch, max_wait_us);
      std::printf("%8d %7d %9lld %10.1f %9.0f %9.0f %9.0f %6s\n", workers,
                  max_batch, static_cast<long long>(max_wait_us),
                  r.stats.throughput_rps, r.stats.p50_latency_us,
                  r.stats.p95_latency_us, r.stats.p99_latency_us,
                  r.correct ? "yes" : "NO");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 64;
  bool write_json = false;
  bool trace_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      write_json = true;
    } else if (std::string(argv[i]) == "--trace-overhead") {
      trace_overhead = true;
    } else {
      requests = std::atoi(argv[i]);
    }
  }

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("host: %u hardware thread(s)\n", cores);
  if (cores <= 1) {
    std::printf(
        "NOTE: single-core host — worker scaling is serialized by the CPU;\n"
        "      expect pool speedups only where hardware threads exist.\n");
  }

  ServingWorkload lstm = MakeLSTMWorkload(requests);
  Sweep(lstm);
  if (requests <= 0) return 0;  // nothing to compare below

  // Headline comparison for the LSTM workload: 1 worker FIFO vs 4 workers
  // with bucketed batching. Interleaved best-of-3 per configuration, for
  // the same load-drift robustness as bench_util's MeasureInterleaved.
  RunResult single, pooled;
  double single_best = 0.0, pooled_best = 0.0;
  for (int round = 0; round < 3; ++round) {
    RunResult s = RunConfiguration(lstm, 1, 1, 0);
    RunResult p = RunConfiguration(lstm, 4, 8, 2000);
    single.correct = single.correct && s.correct;
    pooled.correct = pooled.correct && p.correct;
    if (s.stats.throughput_rps > single_best) {
      single_best = s.stats.throughput_rps;
      single.stats = s.stats;
    }
    if (p.stats.throughput_rps > pooled_best) {
      pooled_best = p.stats.throughput_rps;
      pooled.stats = p.stats;
    }
  }
  bench::PrintRule();
  std::printf(
      "LSTM: 4 workers + batching vs 1 worker FIFO: %.1f vs %.1f req/s "
      "(%.2fx), outputs %s\n",
      pooled.stats.throughput_rps, single.stats.throughput_rps,
      pooled.stats.throughput_rps / single.stats.throughput_rps,
      (single.correct && pooled.correct) ? "bit-identical to sequential"
                                         : "WRONG");

  // Tensor batching (src/batch/): each dispatched bucket runs as ONE padded
  // [Lmax, B, D] invocation of @main_batched instead of B separate Invokes.
  // The win is per-step: the VM interprets each timestep once for the whole
  // batch, the dense kernels run rows-in-lanes with the weights streamed
  // once instead of B times, and the per-step bookkeeping amortizes over B.
  // A loaded server is the honest setting for the comparison — batching is
  // a throughput optimization, so the queue must be deep enough for buckets
  // to actually fill — and the buckets are a width-8 ladder to keep padding
  // waste low. Same bit-identical-to-sequential validation as every sweep.
  // Serving-scale model: at in 128 / hidden 256 the dense layers dominate
  // the per-step profile, which is where the rows-in-lanes tile kernel pays
  // off (the cell's per-element work can only shrink, never amortize).
  int tb_requests = std::max(requests, 192);
  ServingWorkload tb = MakeLSTMWorkload(tb_requests, 128, 256);
  std::vector<int64_t> tb_buckets = {16, 24, 32, 40, 48, 56, 64, 96, 128};
  bench::PrintHeader(
      "tensor batching: packed [Lmax, B, D] execution vs per-request loop\n"
      "(" + std::to_string(tb_requests) +
      " queued requests, 1 worker isolates the packing win from pool "
      "parallelism)");
  std::printf("%8s %7s %12s %10s %9s %9s %8s %6s\n", "mode", "batch",
              "packed/batch", "req/s", "p50_us", "p99_us", "waste%", "ok");
  auto print_mode = [](const char* mode, int batch,
                       const serve::StatsSnapshot& s, bool correct) {
    std::printf("%8s %7d %7lld/%-4lld %10.1f %9.0f %9.0f %7.1f%% %6s\n", mode,
                batch, static_cast<long long>(s.packed_batches),
                static_cast<long long>(s.batches), s.throughput_rps,
                s.p50_latency_us, s.p99_latency_us, s.padding_waste * 100.0,
                correct ? "yes" : "NO");
  };
  double headline_ratio = 0.0;
  bool tb_correct = true;
  for (int batch : {8, 16}) {
    double loop_best = 0.0, packed_best = 0.0;
    serve::StatsSnapshot loop_stats, packed_stats;
    for (int round = 0; round < 3; ++round) {
      // Deep admission queue (the tensor-batching runs only): the whole
      // burst must buffer so buckets actually fill.
      RunResult loop =
          RunConfiguration(tb, 1, batch, 100000, false, tb_buckets, 256);
      RunResult packed =
          RunConfiguration(tb, 1, batch, 100000, true, tb_buckets, 256);
      tb_correct = tb_correct && loop.correct && packed.correct;
      if (loop.stats.throughput_rps > loop_best) {
        loop_best = loop.stats.throughput_rps;
        loop_stats = loop.stats;
      }
      if (packed.stats.throughput_rps > packed_best) {
        packed_best = packed.stats.throughput_rps;
        packed_stats = packed.stats;
      }
    }
    print_mode("loop", batch, loop_stats, tb_correct);
    print_mode("packed", batch, packed_stats, tb_correct);
    headline_ratio = packed_best / loop_best;
  }
  bench::PrintRule();
  std::printf(
      "LSTM: tensor batching vs per-request loop at batch 16: %.2fx "
      "requests/sec, outputs %s\n",
      headline_ratio,
      tb_correct ? "bit-identical to sequential" : "WRONG");

  // Shape-bucket executable cache (src/serve/exec_cache.h): a production
  // mix of recurring exact lengths, several sharing each width-8 bucket.
  // Baseline = the PR 3 packed path (generic executable, padded to each
  // batch's Lmax). Cached = same policy plus an ExecCache: hot lengths get
  // background-compiled variants with (Lmax, B) baked in, the scheduler
  // carves full same-length batches onto them — zero padding, fully static
  // dataflow, bucket-tuned dispatch. The cache is shared across runs (the
  // warmed cache is the asset; round 0 below is the cold warm-up), so the
  // measured rounds show the steady state a long-running server reaches.
  int cm_requests = std::max(requests * 3, 256);
  support::Rng cm_rng(29);
  ServingWorkload mix = MakeLSTMWorkloadWithLengths(
      SampleProductionMixLengths(cm_requests, cm_rng), 128, 256);
  const int cm_batch = 8;
  bench::PrintHeader(
      "shape-bucket executable cache: length-specialized variants vs the\n"
      "generic packed path (" + std::to_string(cm_requests) +
      " requests, production mix of 8 hot lengths, batch " +
      std::to_string(cm_batch) + ", 1 worker)");

  serve::ExecCacheConfig cache_config;
  cache_config.capacity = 16;
  cache_config.min_observations = 1;
  cache_config.specialize_batch = cm_batch;
  auto cache = std::make_shared<serve::ExecCache>(
      MakeVariantCompiler(mix.lstm_config), cache_config);

  bool cm_correct = true;
  serve::StatsSnapshot packed_stats, cached_stats;
  double packed_best = 0.0, cached_best = 0.0;
  std::vector<double> round_ratios;
  {
    // Cold pass: observes the hot lengths and kicks off the background
    // compiles; serving stays on the generic executable meanwhile.
    RunResult cold = RunConfiguration(mix, 1, cm_batch, 100000, true,
                                      tb_buckets, 256, cache);
    cm_correct = cm_correct && cold.correct;
    std::printf("cold pass: %.1f req/s, hit rate %.0f%%, %lld compiles "
                "in flight\n",
                cold.stats.throughput_rps, cold.stats.cache_hit_rate * 100.0,
                static_cast<long long>(cache->snapshot().compiles));
    cache->WaitIdle();
  }
  for (int round = 0; round < 5; ++round) {
    RunResult packed = RunConfiguration(mix, 1, cm_batch, 100000, true,
                                        tb_buckets, 256);
    RunResult cached = RunConfiguration(mix, 1, cm_batch, 100000, true,
                                        tb_buckets, 256, cache);
    cm_correct = cm_correct && packed.correct && cached.correct;
    if (packed.stats.throughput_rps > 0.0) {
      round_ratios.push_back(cached.stats.throughput_rps /
                             packed.stats.throughput_rps);
    }
    if (packed.stats.throughput_rps > packed_best) {
      packed_best = packed.stats.throughput_rps;
      packed_stats = packed.stats;
    }
    if (cached.stats.throughput_rps > cached_best) {
      cached_best = cached.stats.throughput_rps;
      cached_stats = cached.stats;
    }
  }
  std::printf("%8s %10s %9s %9s %8s %8s %9s %6s\n", "mode", "req/s", "p50_us",
              "p99_us", "waste%", "cached%", "hit-rate", "ok");
  std::printf("%8s %10.1f %9.0f %9.0f %7.1f%% %8s %9s %6s\n", "packed",
              packed_stats.throughput_rps, packed_stats.p50_latency_us,
              packed_stats.p99_latency_us, packed_stats.padding_waste * 100.0,
              "-", "-", cm_correct ? "yes" : "NO");
  std::printf("%8s %10.1f %9.0f %9.0f %7.1f%% %7.1f%% %8.0f%% %6s\n", "cached",
              cached_stats.throughput_rps, cached_stats.p50_latency_us,
              cached_stats.p99_latency_us,
              cached_stats.padding_waste * 100.0,
              cached_stats.variant_padding_waste * 100.0,
              cached_stats.cache_hit_rate * 100.0, cm_correct ? "yes" : "NO");
  auto cache_snap = cache->snapshot();
  // Median per-round ratio: each round interleaves baseline and cached, so
  // machine-load drift hits both sides of a ratio equally — far more stable
  // than comparing bests across rounds.
  double cache_speedup = 0.0;
  if (!round_ratios.empty()) {
    std::sort(round_ratios.begin(), round_ratios.end());
    cache_speedup = round_ratios[round_ratios.size() / 2];
  }
  bench::PrintRule();
  std::printf(
      "LSTM: executable cache vs generic packed: %.2fx requests/sec; "
      "cached-bucket padding waste %.2f%% across %lld variant batches "
      "(%lld variants resident, %lld evictions); outputs %s\n",
      cache_speedup, cached_stats.variant_padding_waste * 100.0,
      static_cast<long long>(cached_stats.variant_batches),
      static_cast<long long>(cache_snap.resident.size()),
      static_cast<long long>(cache_snap.evictions),
      cm_correct ? "bit-identical to sequential" : "WRONG");

  // Continuous (iteration-level) batching vs the bucketed packed path on
  // the workload padding hurts most: short requests mixed with long ones.
  // Bucketed serving pads every batch to its Lmax and a short request can
  // wait behind a whole long flight; the slot-map runner retires each row
  // the step it finishes and splices the next request in, so padding is
  // zero by construction and short-request latency stops being hostage to
  // long neighbors. Latencies are measured client-side per request (the
  // aggregate percentiles would mix the two populations).
  int ct_requests = std::max(requests, 96);
  support::Rng ct_rng(43);
  std::vector<int64_t> ct_lengths;
  std::vector<bool> ct_short;
  for (int i = 0; i < ct_requests; ++i) {
    bool is_short = ct_rng.Next() % 10 < 7;  // 70% short, 30% long
    ct_lengths.push_back(is_short ? ct_rng.UniformInt(4, 8)
                                  : ct_rng.UniformInt(48, 64));
    ct_short.push_back(is_short);
  }
  ServingWorkload ct = MakeLSTMWorkloadWithLengths(ct_lengths, 64, 128);
  bench::PrintHeader(
      "continuous batching: persistent slot map vs bucketed packed path\n(" +
      std::to_string(ct_requests) +
      " requests, 70% short / 30% long, paced arrivals)");

  auto percentile = [](std::vector<double> v, double p) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    size_t rank = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
    return v[rank];
  };
  struct LatencyRun {
    serve::StatsSnapshot stats;
    bool correct = true;
    double rps = 0.0;
    double short_p50_us = 0.0;
    double short_p99_us = 0.0;
    double all_p99_us = 0.0;
  };
  auto run_latency_mode = [&](bool continuous) {
    serve::ServeConfig sc;
    sc.num_workers = 2;
    serve::Server server(sc);
    serve::ModelConfig m;
    m.exec = ct.exec;
    m.queue_capacity = 256;
    if (continuous) {
      m.batch.continuous = true;
      m.batch.continuous_slots = 8;
    } else {
      m.batch.tensor_batching = true;
      m.batch.max_batch_size = 8;
      m.batch.max_wait_micros = 2000;
      m.batch.bucket_edges = {8, 16, 24, 32, 40, 48, 56, 64};
    }
    server.AddModel("m", std::move(m));
    server.Start();

    struct Done {
      std::atomic<bool> done{false};
      runtime::ObjectRef result;
      double latency_us = 0.0;
      std::chrono::steady_clock::time_point submit;
    };
    const size_t n = ct.args.size();
    std::vector<Done> dones(n);
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i) {
      // Light pacing so splice/retire actually interleaves with arrivals
      // (identical for both modes, so the comparison stays fair).
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      Done* d = &dones[i];
      d->submit = std::chrono::steady_clock::now();
      while (true) {
        auto admit = server.TrySubmitCallback(
            "m", CopyArgs(ct.args[i]), ct.lengths[i],
            [d](runtime::ObjectRef result, std::exception_ptr,
                const obs::TraceContext&) {
              d->latency_us =
                  std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - d->submit)
                      .count();
              d->result = std::move(result);
              d->done.store(true, std::memory_order_release);
            });
        if (admit.accepted()) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    server.Drain();
    double elapsed_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    LatencyRun run;
    run.stats = server.stats();
    run.rps = elapsed_s > 0.0 ? static_cast<double>(n) / elapsed_s : 0.0;
    std::vector<double> short_lat, all_lat;
    for (size_t i = 0; i < n; ++i) {
      if (!dones[i].done.load(std::memory_order_acquire) ||
          !BitIdentical(runtime::AsTensor(dones[i].result), ct.expected[i])) {
        run.correct = false;
        continue;
      }
      all_lat.push_back(dones[i].latency_us);
      if (ct_short[i]) short_lat.push_back(dones[i].latency_us);
    }
    run.short_p50_us = percentile(short_lat, 0.50);
    run.short_p99_us = percentile(short_lat, 0.99);
    run.all_p99_us = percentile(all_lat, 0.99);
    return run;
  };
  // Interleaved best-of-3 on short-request p99, the headline number here.
  LatencyRun bucketed_run, continuous_run;
  bool first_round = true;
  for (int round = 0; round < 3; ++round) {
    LatencyRun b = run_latency_mode(false);
    LatencyRun c = run_latency_mode(true);
    bool keep_b = first_round || b.short_p99_us < bucketed_run.short_p99_us;
    bool keep_c = first_round || c.short_p99_us < continuous_run.short_p99_us;
    bool b_ok = bucketed_run.correct && b.correct;
    bool c_ok = continuous_run.correct && c.correct;
    if (keep_b) bucketed_run = b;
    if (keep_c) continuous_run = c;
    bucketed_run.correct = b_ok;
    continuous_run.correct = c_ok;
    first_round = false;
  }
  std::printf("%12s %10s %12s %12s %10s %8s %6s\n", "mode", "req/s",
              "short_p50", "short_p99", "all_p99", "waste%", "ok");
  std::printf("%12s %10.1f %11.0fus %11.0fus %9.0fus %7.1f%% %6s\n",
              "bucketed", bucketed_run.rps, bucketed_run.short_p50_us,
              bucketed_run.short_p99_us, bucketed_run.all_p99_us,
              bucketed_run.stats.padding_waste * 100.0,
              bucketed_run.correct ? "yes" : "NO");
  std::printf("%12s %10.1f %11.0fus %11.0fus %9.0fus %7.1f%% %6s\n",
              "continuous", continuous_run.rps, continuous_run.short_p50_us,
              continuous_run.short_p99_us, continuous_run.all_p99_us,
              continuous_run.stats.padding_waste * 100.0,
              continuous_run.correct ? "yes" : "NO");
  bench::PrintRule();
  std::printf(
      "LSTM: continuous vs bucketed short-request p99 under long-request "
      "mix: %.0fus vs %.0fus (%.2fx); continuous padding %.2f%%, mean "
      "occupancy %.1f/8 (idle %.1f%%); outputs %s\n",
      continuous_run.short_p99_us, bucketed_run.short_p99_us,
      continuous_run.short_p99_us > 0.0
          ? bucketed_run.short_p99_us / continuous_run.short_p99_us
          : 0.0,
      continuous_run.stats.padding_waste * 100.0,
      continuous_run.stats.mean_slot_occupancy,
      continuous_run.stats.idle_slot_fraction * 100.0,
      (bucketed_run.correct && continuous_run.correct)
          ? "bit-identical to sequential"
          : "WRONG");

  // Optional: what does the per-step observability plane (request tracing
  // + the step journal) cost on the continuous hot loop? Unpaced burst so
  // the runner is step-bound, not arrival-bound — the worst case for a
  // per-step Push. Alternating best-of-2 per configuration so one noisy
  // run can't fake (or hide) an overhead; CI holds the result to <= 3%.
  struct ObsOverhead {
    double rps_on = 0.0;
    double rps_off = 0.0;
    double overhead_pct = 0.0;
  };
  ObsOverhead journal_overhead;
  if (trace_overhead) {
    bench::PrintHeader(
        "step-journal overhead: continuous burst, obs on vs off, best of 2");
    auto run_burst = [&](bool obs_on) {
      serve::ServeConfig sc;
      sc.num_workers = 2;
      sc.trace.enabled = obs_on;
      sc.step_journal.enabled = obs_on;
      serve::Server server(sc);
      serve::ModelConfig m;
      m.exec = ct.exec;
      m.queue_capacity = ct.args.size() + 1;
      m.batch.continuous = true;
      m.batch.continuous_slots = 8;
      server.AddModel("m", std::move(m));
      server.Start();
      const size_t n = ct.args.size();
      std::vector<std::future<runtime::ObjectRef>> futures;
      futures.reserve(n);
      auto t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < n; ++i) {
        futures.push_back(
            server.Submit("m", CopyArgs(ct.args[i]), ct.lengths[i]));
      }
      bool ok = true;
      for (size_t i = 0; i < n; ++i) {
        if (!BitIdentical(runtime::AsTensor(futures[i].get()),
                          ct.expected[i])) {
          ok = false;
        }
      }
      double elapsed_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
      server.Drain();
      if (!ok) {
        std::fprintf(stderr, "step-journal A/B produced wrong results\n");
        std::exit(1);
      }
      return elapsed_s > 0.0 ? static_cast<double>(n) / elapsed_s : 0.0;
    };
    for (int round = 0; round < 2; ++round) {
      for (bool obs_on : {true, false}) {
        double rps = run_burst(obs_on);
        double& best =
            obs_on ? journal_overhead.rps_on : journal_overhead.rps_off;
        best = std::max(best, rps);
      }
    }
    if (journal_overhead.rps_off > 0.0) {
      journal_overhead.overhead_pct = std::max(
          0.0, (journal_overhead.rps_off - journal_overhead.rps_on) /
                   journal_overhead.rps_off * 100.0);
    }
    std::printf(
        "obs on %.1f req/s, off %.1f req/s -> overhead %.2f%% (budget "
        "3%%)\n",
        journal_overhead.rps_on, journal_overhead.rps_off,
        journal_overhead.overhead_pct);
  }

  if (write_json) {
    FILE* f = std::fopen("BENCH_serve.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_serve.json\n");
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"requests\": %d,\n"
                 "  \"correct\": %s,\n"
                 "  \"tensor_batching_speedup_vs_loop\": %.3f,\n"
                 "  \"packed_baseline\": {\"rps\": %.1f, \"p99_us\": %.0f, "
                 "\"padding_waste_pct\": %.2f},\n"
                 "  \"exec_cache\": {\"rps\": %.1f, \"p99_us\": %.0f, "
                 "\"padding_waste_pct\": %.2f, "
                 "\"cached_padding_waste_pct\": %.4f, "
                 "\"variant_batches\": %lld, \"cache_hit_rate\": %.3f, "
                 "\"compiles\": %lld, \"evictions\": %lld},\n"
                 "  \"exec_cache_speedup_vs_packed\": %.3f,\n"
                 "  \"bucketed_short_mix\": {\"rps\": %.1f, "
                 "\"short_p50_us\": %.0f, \"short_p99_us\": %.0f, "
                 "\"padding_waste_pct\": %.2f},\n"
                 "  \"continuous\": {\"rps\": %.1f, "
                 "\"short_p50_us\": %.0f, \"short_p99_us\": %.0f, "
                 "\"padding_waste_pct\": %.4f, \"splices\": %lld, "
                 "\"steps\": %lld, \"mean_slot_occupancy\": %.2f, "
                 "\"idle_slot_pct\": %.2f, \"correct\": %s}",
                 cm_requests, (cm_correct && tb_correct) ? "true" : "false",
                 headline_ratio, packed_stats.throughput_rps,
                 packed_stats.p99_latency_us,
                 packed_stats.padding_waste * 100.0,
                 cached_stats.throughput_rps, cached_stats.p99_latency_us,
                 cached_stats.padding_waste * 100.0,
                 cached_stats.variant_padding_waste * 100.0,
                 static_cast<long long>(cached_stats.variant_batches),
                 cached_stats.cache_hit_rate,
                 static_cast<long long>(cache_snap.compiles),
                 static_cast<long long>(cache_snap.evictions), cache_speedup,
                 bucketed_run.rps, bucketed_run.short_p50_us,
                 bucketed_run.short_p99_us,
                 bucketed_run.stats.padding_waste * 100.0,
                 continuous_run.rps, continuous_run.short_p50_us,
                 continuous_run.short_p99_us,
                 continuous_run.stats.padding_waste * 100.0,
                 static_cast<long long>(continuous_run.stats.splices),
                 static_cast<long long>(continuous_run.stats.continuous_steps),
                 continuous_run.stats.mean_slot_occupancy,
                 continuous_run.stats.idle_slot_fraction * 100.0,
                 (bucketed_run.correct && continuous_run.correct) ? "true"
                                                                  : "false");
    if (trace_overhead) {
      std::fprintf(f,
                   ",\n  \"step_journal_overhead\": {\"rps_on\": %.1f, "
                   "\"rps_off\": %.1f, \"overhead_pct\": %.2f}",
                   journal_overhead.rps_on, journal_overhead.rps_off,
                   journal_overhead.overhead_pct);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_serve.json\n");
  }

  Sweep(MakeBERTWorkload(requests));
  return 0;
}
